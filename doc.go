// Package repro is a from-scratch Go reproduction of "Discriminative
// Boosting Algorithm for Diversified Front-End Phonotactic Language
// Recognition" (Liu, Cai, Zhang, Liu, Johnson — J. Signal Processing
// Systems 80(3), 2015): the PPRVSM phonotactic language-recognition stack
// (parallel phone recognizers → lattices → expected N-gram supervectors →
// TFLLR-kernel SVMs → LDA-MMI fusion) and the paper's DBA self-training
// variant, evaluated on a synthetic 23-language LRE09 substitute corpus.
//
// See README.md for the tour, DESIGN.md for the system inventory and the
// paper-metadata note, EXPERIMENTS.md for paper-vs-measured results, and
// bench_test.go for the per-table benchmark harness.
package repro

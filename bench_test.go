// Benchmark harness: one benchmark per paper table and figure, the Table 5
// pipeline-stage timings, micro-benchmarks of the hot kernels, and the
// design-choice ablations called out in DESIGN.md. Quality metrics (EER,
// selection error) are attached to benchmark output via b.ReportMetric so
// `go test -bench=. -benchmem` regenerates both timing and accuracy
// evidence in one run.
package repro

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dba"
	"repro/internal/dsp"
	"repro/internal/experiments"
	"repro/internal/feats"
	"repro/internal/frontend"
	"repro/internal/fusion"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/nap"
	"repro/internal/ngram"
	"repro/internal/parallel"
	"repro/internal/prlm"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
	"repro/internal/synthlang"
	"repro/internal/synthspeech"
	"repro/internal/vsm"
)

var (
	pipeOnce sync.Once
	pipe     *experiments.Pipeline
)

// benchPipeline builds the shared tiny-scale pipeline once; every
// table-level benchmark reuses it, mirroring how the tables share the
// decode work in the paper's cost analysis.
func benchPipeline(b *testing.B) *experiments.Pipeline {
	b.Helper()
	pipeOnce.Do(func() {
		pipe = experiments.BuildPipeline(experiments.ScaleTiny, 42)
	})
	return pipe
}

func meanEER(p *experiments.Pipeline, scores [][][]float64) float64 {
	var sum float64
	var n int
	for q := range scores {
		for _, dur := range corpus.Durations {
			eer, _ := experiments.Eval(scores[q], p.TestLabels, p.TestIdx[dur])
			sum += eer
			n++
		}
	}
	return sum / float64(n)
}

// BenchmarkTable1TrDBA regenerates Table 1: vote counting and T_DBA
// selection across all thresholds.
func BenchmarkTable1TrDBA(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	var t1 *experiments.Table1
	for i := 0; i < b.N; i++ {
		t1 = experiments.RunTable1(p)
	}
	b.ReportMetric(float64(t1.Rows[3].Size), "|T_DBA|@V=3")
	b.ReportMetric(t1.Rows[3].ErrorRatePct, "labelErr%@V=3")
}

// BenchmarkTable2DBAM1 regenerates one Table 2 column: a full DBA-M1 pass
// at V = 3 (retraining all six subsystems and rescoring the test set).
func BenchmarkTable2DBAM1(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	var o *dba.Outcome
	for i := 0; i < b.N; i++ {
		o = dba.Run(p.Data, p.TrainLabels, p.Baseline, p.VoteScores, dba.Config{
			Threshold: 3, Method: dba.M1, NumLangs: experiments.NumLangs, SVMOptions: p.SVMOptions,
		})
	}
	b.ReportMetric(meanEER(p, o.Scores), "meanEER%")
}

// BenchmarkTable3DBAM2 regenerates one Table 3 column: DBA-M2 at V = 3.
func BenchmarkTable3DBAM2(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	var o *dba.Outcome
	for i := 0; i < b.N; i++ {
		o = dba.Run(p.Data, p.TrainLabels, p.Baseline, p.VoteScores, dba.Config{
			Threshold: 3, Method: dba.M2, NumLangs: experiments.NumLangs, SVMOptions: p.SVMOptions,
		})
	}
	b.ReportMetric(meanEER(p, o.Scores), "meanEER%")
	b.ReportMetric(meanEER(p, p.BaselineScores), "baselineEER%")
}

// BenchmarkTable4Fusion regenerates Table 4: per-front-end M1+M2 fusions
// plus the 6- and 12-subsystem LDA-MMI fusions.
func BenchmarkTable4Fusion(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	var t4 *experiments.Table4
	for i := 0; i < b.N; i++ {
		t4 = experiments.RunTable4(p, 3)
	}
	b.ReportMetric(t4.BaselineFusion[3].EER, "baseFusion3sEER%")
	b.ReportMetric(t4.DBAFusion[3].EER, "dbaFusion3sEER%")
}

// BenchmarkFig3DET regenerates Fig. 3's DET curves from the fused systems.
func BenchmarkFig3DET(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	var f *experiments.Fig3
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig3(p, 3)
	}
	b.ReportMetric(float64(len(f.Curves[3].Baseline)), "points3s")
}

// --- Table 5 stage benchmarks (real acoustic path) ---

var (
	acousticOnce sync.Once
	acousticFE   *frontend.AcousticFrontEnd
	acousticWav  []float64
	acousticLat  *lattice.Lattice
)

func acousticSetup(b *testing.B) {
	b.Helper()
	acousticOnce.Do(func() {
		langs := synthlang.Generate(synthlang.DefaultConfig(), 42)
		cfg := frontend.DefaultAcousticConfig("HU", frontend.ANNHMM, 59, 42)
		cfg.TrainUtterances = 12
		cfg.UtteranceDurS = 4
		cfg.HiddenLayers = []int{48}
		cfg.TrainEpochs = 4
		fe, err := frontend.TrainAcoustic(cfg, langs[:4])
		if err != nil {
			panic(err)
		}
		acousticFE = fe
		r := rng.New(7)
		spk := synthlang.NewSpeaker(r, 0)
		u := langs[0].Sample(r, 30, spk, synthlang.ChannelCTSClean)
		acousticWav = synthspeech.New().Render(r, u)
		acousticLat = fe.DecodeAudio(acousticWav)
	})
}

// BenchmarkDecoding measures the Table 5 decoding stage: 30 s of audio
// through feature extraction, hybrid Viterbi, and confusion generation.
// ns/op ÷ 30e9 is the real-time factor.
func BenchmarkDecoding(b *testing.B) {
	acousticSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acousticLat = acousticFE.DecodeAudio(acousticWav)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/30e9, "RTF")
}

// BenchmarkSupervectorGen measures the Table 5 supervector-generation
// stage: expected bigram counting over a 30 s lattice.
func BenchmarkSupervectorGen(b *testing.B) {
	acousticSetup(b)
	space := ngram.NewSpace(59, frontend.NgramOrder)
	b.ResetTimer()
	var v *sparse.Vector
	for i := 0; i < b.N; i++ {
		v = space.Supervector(acousticLat)
	}
	b.ReportMetric(float64(v.NNZ()), "nnz")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/30e9, "RTF")
}

// BenchmarkSupervectorProduct measures the Table 5 scoring stage: one
// utterance against 23 one-vs-rest language models. DBA doubles this cost
// (two scoring passes); decoding and generation are shared.
func BenchmarkSupervectorProduct(b *testing.B) {
	p := benchPipeline(b)
	v := p.Data[0].Test[0]
	ovr := p.SubsystemModels()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ovr.Scores(v)
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md) ---

// BenchmarkAblationVoteCriterion compares the paper's strict Eq. 13 vote
// against a naive arg-max vote; the metrics show the strict criterion buys
// a much cleaner T_DBA.
func BenchmarkAblationVoteCriterion(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	var a *experiments.VoteAblation
	for i := 0; i < b.N; i++ {
		a = experiments.RunVoteAblation(p, 3)
	}
	b.ReportMetric(a.StrictErrorPct, "strictErr%")
	b.ReportMetric(a.NaiveErrorPct, "naiveErr%")
}

// BenchmarkAblationTFLLR compares baseline training with and without the
// TFLLR kernel scaling of Eq. 5 on one front-end.
func BenchmarkAblationTFLLR(b *testing.B) {
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"tfllr", false}, {"raw", true}} {
		b.Run(variant.name, func(b *testing.B) {
			c := corpus.Build(experiments.CorpusConfig(experiments.ScaleTiny, 42))
			fe := frontend.StandardSix(42)[0]
			var eer float64
			for i := 0; i < b.N; i++ {
				f := vsm.Extract(fe, c, vsm.ExtractOptions{Seed: 42, DisableTFLLR: variant.disable})
				trainX := f.Vectors(c.Train)
				ovr := svm.TrainOneVsRest(trainX, c.Train.Labels(), experiments.NumLangs,
					f.Dim(), vsm.DefaultSVMOptions())
				sub := &vsm.Subsystem{Name: fe.Name, Dim: f.Dim(), OVR: ovr}
				scores := sub.ScoreMatrix(f.Vectors(c.Test[30]))
				idx := make([]int, len(scores))
				for j := range idx {
					idx[j] = j
				}
				eer, _ = experiments.Eval(scores, c.Test[30].Labels(), idx)
			}
			b.ReportMetric(eer, "EER30s%")
		})
	}
}

// BenchmarkAblationMMIFusion compares LDA-only fusion (MMIIters = 0)
// against full LDA-MMI on the six baseline subsystems at 3 s.
func BenchmarkAblationMMIFusion(b *testing.B) {
	p := benchPipeline(b)
	for _, variant := range []struct {
		name string
		cfg  fusion.Config
	}{
		{"lda-only", fusion.Config{MMIIters: 0, LearnRate: 0.05, Ridge: 1e-3}},
		{"lda-mmi", fusion.DefaultConfig()},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var eer float64
			for i := 0; i < b.N; i++ {
				eer = p.FusedBaselineEER(variant.cfg, 3)
			}
			b.ReportMetric(eer, "fusedEER3s%")
		})
	}
}

// --- Kernel micro-benchmarks ---

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	r := rng.New(1)
	for i := range x {
		x[i] = complex(r.Norm(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.FFT(x)
	}
}

func BenchmarkMFCC30s(b *testing.B) {
	r := rng.New(2)
	sig := make([]float64, 30*8000)
	for i := range sig {
		sig[i] = 0.3 * math.Sin(float64(i)*0.3) * r.Float64()
	}
	e := feats.NewExtractor(feats.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MFCC(sig)
	}
}

func BenchmarkLatticeExpectedBigrams(b *testing.B) {
	// A 300-slot, 4-alternative sausage ≈ one 30 s utterance.
	r := rng.New(3)
	slots := make([]lattice.SausageSlot, 300)
	for i := range slots {
		var slot lattice.SausageSlot
		for k := 0; k < 4; k++ {
			slot = append(slot, struct {
				Phone int
				Prob  float64
			}{Phone: r.Intn(59), Prob: 0.25})
		}
		slots[i] = slot
	}
	l := lattice.FromSausage(slots)
	space := ngram.NewSpace(59, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space.Supervector(l)
	}
}

func BenchmarkSVMTrainBinary(b *testing.B) {
	p := benchPipeline(b)
	xs := p.Data[0].Train
	ys := make([]int, len(xs))
	for i := range ys {
		if p.TrainLabels[i] == 0 {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	opt := vsm.DefaultSVMOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svm.Train(xs, ys, p.Data[0].Dim, opt)
	}
}

func BenchmarkSparseDot(b *testing.B) {
	r := rng.New(4)
	mk := func() *sparse.Vector {
		m := map[int32]float64{}
		for i := 0; i < 400; i++ {
			m[int32(r.Intn(3540))] = r.Float64()
		}
		return sparse.FromMap(m)
	}
	x, y := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.Dot(x, y)
	}
}

// --- Extension benchmarks ---

// BenchmarkExtensionIterativeDBA measures the multi-round DBA extension
// (3 boosting rounds, DBA-M2, V=3) and reports its final mean EER next to
// the single-round result.
func BenchmarkExtensionIterativeDBA(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	var finalEER, round1EER float64
	for i := 0; i < b.N; i++ {
		out := p.IterativeDBA(3, dba.M2, 3)
		round1EER = meanEER(p, out.Rounds[0].Scores)
		finalEER = meanEER(p, out.Rounds[len(out.Rounds)-1].Scores)
	}
	b.ReportMetric(round1EER, "round1EER%")
	b.ReportMetric(finalEER, "finalEER%")
}

// BenchmarkAblationTrigram compares bigram against trigram supervectors on
// the CZ front-end (the paper's systems go up to trigram; bigram is this
// repository's default — DESIGN.md).
func BenchmarkAblationTrigram(b *testing.B) {
	for _, variant := range []struct {
		name  string
		order int
	}{{"bigram", 2}, {"trigram", 3}} {
		b.Run(variant.name, func(b *testing.B) {
			c := corpus.Build(experiments.CorpusConfig(experiments.ScaleTiny, 42))
			fe := frontend.NewWithOrder("CZ", frontend.ANNHMM, 43, 42, variant.order)
			var eer float64
			for i := 0; i < b.N; i++ {
				f := vsm.Extract(fe, c, vsm.ExtractOptions{Seed: 42})
				ovr := svm.TrainOneVsRest(f.Vectors(c.Train), c.Train.Labels(),
					experiments.NumLangs, f.Dim(), vsm.DefaultSVMOptions())
				sub := &vsm.Subsystem{Name: fe.Name, Dim: f.Dim(), OVR: ovr}
				scores := sub.ScoreMatrix(f.Vectors(c.Test[30]))
				idx := make([]int, len(scores))
				for j := range idx {
					idx[j] = j
				}
				eer, _ = experiments.Eval(scores, c.Test[30].Labels(), idx)
			}
			b.ReportMetric(eer, "EER30s%")
			b.ReportMetric(float64(fe.Space.Dim()), "dim")
		})
	}
}

// BenchmarkAblationCalibrationFA sweeps the vote-calibration operating
// point, the knob that trades T_DBA size against label purity.
func BenchmarkAblationCalibrationFA(b *testing.B) {
	p := benchPipeline(b)
	for _, fa := range []float64{0.01, 0.03, 0.10} {
		b.Run(fmt.Sprintf("fa=%g", fa), func(b *testing.B) {
			var st experiments.SelectionStats
			for i := 0; i < b.N; i++ {
				st = p.SelectionStatsAtFA(fa, 3)
			}
			b.ReportMetric(float64(st.Size), "|T_DBA|")
			b.ReportMetric(st.ErrorRatePct, "labelErr%")
		})
	}
}

// BenchmarkExtensionNAP measures nuisance attribute projection (channel
// compensation — an extension; the paper does not use NAP) on one
// front-end: with the corpus's CTS/VOA shift, removing the dominant
// within-language supervector directions should recover part of the
// headroom DBA also targets.
func BenchmarkExtensionNAP(b *testing.B) {
	for _, variant := range []struct {
		name string
		rank int
	}{{"off", 0}, {"rank16", 16}} {
		b.Run(variant.name, func(b *testing.B) {
			c := corpus.Build(experiments.CorpusConfig(experiments.ScaleTiny, 42))
			fe := frontend.StandardSix(42)[0]
			var eer30, eer3 float64
			for i := 0; i < b.N; i++ {
				f := vsm.Extract(fe, c, vsm.ExtractOptions{Seed: 42})
				trainX := f.Vectors(c.Train)
				trainY := c.Train.Labels()
				test30 := f.Vectors(c.Test[30])
				test3 := f.Vectors(c.Test[3])
				if variant.rank > 0 {
					proj, err := nap.Train(trainX, trainY, f.Dim(),
						nap.Config{Rank: variant.rank, PowerIters: 15})
					if err != nil {
						b.Fatal(err)
					}
					project := func(xs []*sparse.Vector) []*sparse.Vector {
						out := make([]*sparse.Vector, len(xs))
						parallel.For(len(xs), func(j int) { out[j] = proj.Apply(xs[j]) })
						return out
					}
					trainX = project(trainX)
					test30 = project(test30)
					test3 = project(test3)
				}
				ovr := svm.TrainOneVsRest(trainX, trainY, experiments.NumLangs,
					f.Dim(), vsm.DefaultSVMOptions())
				sub := &vsm.Subsystem{Name: fe.Name, Dim: f.Dim(), OVR: ovr}
				eval := func(xs []*sparse.Vector, labels []int) float64 {
					scores := sub.ScoreMatrix(xs)
					idx := make([]int, len(scores))
					for j := range idx {
						idx[j] = j
					}
					eer, _ := experiments.Eval(scores, labels, idx)
					return eer
				}
				eer30 = eval(test30, c.Test[30].Labels())
				eer3 = eval(test3, c.Test[3].Labels())
			}
			b.ReportMetric(eer30, "EER30s%")
			b.ReportMetric(eer3, "EER3s%")
		})
	}
}

// BenchmarkBaselinePRLMvsVSM compares the classical PRLM approach
// (per-language phone LMs, generative scoring — the paper's reference [2])
// against the SVM-based vector space model on identical decoded phone
// streams, reproducing the finding that motivated the field's move to
// PPRVSM.
func BenchmarkBaselinePRLMvsVSM(b *testing.B) {
	c := corpus.Build(experiments.CorpusConfig(experiments.ScaleTiny, 42))
	fe := frontend.StandardSix(42)[0]

	b.Run("prlm", func(b *testing.B) {
		var eer float64
		for i := 0; i < b.N; i++ {
			root := rng.New(42).SplitString("extract:" + fe.Name)
			decode1best := func(it *corpus.Item) []int {
				best, _ := fe.Decode(root.Split(uint64(it.ID)), it.U).BestPath()
				return best
			}
			train := make([][][]int, experiments.NumLangs)
			for _, it := range c.Train.Items {
				train[it.Label] = append(train[it.Label], decode1best(it))
			}
			sys, err := prlm.Train(fe.Set.Size, train, prlm.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			var trials []metrics.Trial
			for _, it := range c.Test[30].Items {
				for k, s := range sys.Score(decode1best(it)) {
					trials = append(trials, metrics.Trial{Score: s, Target: k == it.Label})
				}
			}
			eer = metrics.EER(trials) * 100
		}
		b.ReportMetric(eer, "EER30s%")
	})

	b.Run("vsm", func(b *testing.B) {
		var eer float64
		for i := 0; i < b.N; i++ {
			f := vsm.Extract(fe, c, vsm.ExtractOptions{Seed: 42})
			ovr := svm.TrainOneVsRest(f.Vectors(c.Train), c.Train.Labels(),
				experiments.NumLangs, f.Dim(), vsm.DefaultSVMOptions())
			sub := &vsm.Subsystem{Name: fe.Name, Dim: f.Dim(), OVR: ovr}
			scores := sub.ScoreMatrix(f.Vectors(c.Test[30]))
			idx := make([]int, len(scores))
			for j := range idx {
				idx[j] = j
			}
			eer, _ = experiments.Eval(scores, c.Test[30].Labels(), idx)
		}
		b.ReportMetric(eer, "EER30s%")
	})
}

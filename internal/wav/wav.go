// Package wav reads and writes mono 16-bit PCM RIFF/WAVE files, so the
// synthetic telephone speech can be exported for listening or external
// processing, and externally recorded audio can be fed into the acoustic
// front-ends. Only the canonical 44-byte-header PCM layout is produced;
// the reader additionally tolerates extra chunks (LIST, fact, …) commonly
// emitted by other tools.
package wav

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Write encodes samples in [−1, 1] as 16-bit PCM mono at the given rate.
// Samples outside [−1, 1] are clipped.
func Write(w io.Writer, samples []float64, sampleRate int) error {
	if sampleRate <= 0 {
		return fmt.Errorf("wav: invalid sample rate %d", sampleRate)
	}
	dataLen := uint32(len(samples) * 2)
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], 36+dataLen)
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16)
	binary.LittleEndian.PutUint16(hdr[20:22], 1) // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], 1) // mono
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(sampleRate))
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(sampleRate*2)) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)                    // block align
	binary.LittleEndian.PutUint16(hdr[34:36], 16)                   // bits
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], dataLen)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 2*len(samples))
	for i, s := range samples {
		if s > 1 {
			s = 1
		}
		if s < -1 {
			s = -1
		}
		v := int16(math.Round(s * 32767))
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(v))
	}
	_, err := w.Write(buf)
	return err
}

// WriteFile writes a WAV file.
func WriteFile(path string, samples []float64, sampleRate int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, samples, sampleRate); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes a mono 16-bit PCM WAV stream, returning samples scaled to
// [−1, 1] and the sample rate.
func Read(r io.Reader) (samples []float64, sampleRate int, err error) {
	var riff [12]byte
	if _, err := io.ReadFull(r, riff[:]); err != nil {
		return nil, 0, fmt.Errorf("wav: header: %w", err)
	}
	if string(riff[0:4]) != "RIFF" || string(riff[8:12]) != "WAVE" {
		return nil, 0, fmt.Errorf("wav: not a RIFF/WAVE stream")
	}
	var (
		fmtSeen  bool
		channels uint16
		bits     uint16
	)
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			if err == io.EOF && fmtSeen {
				return nil, 0, fmt.Errorf("wav: missing data chunk")
			}
			return nil, 0, fmt.Errorf("wav: chunk header: %w", err)
		}
		id := string(chunk[0:4])
		size := binary.LittleEndian.Uint32(chunk[4:8])
		switch id {
		case "fmt ":
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, 0, fmt.Errorf("wav: fmt chunk: %w", err)
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			channels = binary.LittleEndian.Uint16(body[2:4])
			sampleRate = int(binary.LittleEndian.Uint32(body[4:8]))
			bits = binary.LittleEndian.Uint16(body[14:16])
			if format != 1 {
				return nil, 0, fmt.Errorf("wav: unsupported format %d (want PCM)", format)
			}
			if channels != 1 {
				return nil, 0, fmt.Errorf("wav: %d channels (want mono)", channels)
			}
			if bits != 16 {
				return nil, 0, fmt.Errorf("wav: %d-bit samples (want 16)", bits)
			}
			fmtSeen = true
		case "data":
			if !fmtSeen {
				return nil, 0, fmt.Errorf("wav: data chunk before fmt")
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, 0, fmt.Errorf("wav: data chunk: %w", err)
			}
			n := int(size) / 2
			samples = make([]float64, n)
			for i := 0; i < n; i++ {
				v := int16(binary.LittleEndian.Uint16(body[2*i:]))
				samples[i] = float64(v) / 32767
			}
			return samples, sampleRate, nil
		default:
			// Skip unknown chunks (word-aligned).
			skip := int64(size)
			if skip%2 == 1 {
				skip++
			}
			if _, err := io.CopyN(io.Discard, r, skip); err != nil {
				return nil, 0, fmt.Errorf("wav: skipping %q chunk: %w", id, err)
			}
		}
	}
}

// ReadFile reads a WAV file.
func ReadFile(path string) ([]float64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return Read(f)
}

package wav

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/rng"
	"repro/internal/synthlang"
	"repro/internal/synthspeech"
)

func TestRoundTrip(t *testing.T) {
	r := rng.New(1)
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = 0.8 * math.Sin(float64(i)*0.1)
		samples[i] += 0.05 * r.Norm()
		if samples[i] > 1 {
			samples[i] = 1
		}
		if samples[i] < -1 {
			samples[i] = -1
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, samples, 8000); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 44+2*len(samples) {
		t.Fatalf("file size %d", buf.Len())
	}
	got, sr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sr != 8000 {
		t.Fatalf("sample rate %d", sr)
	}
	if len(got) != len(samples) {
		t.Fatalf("%d samples", len(got))
	}
	for i := range samples {
		if math.Abs(got[i]-samples[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %v vs %v", i, got[i], samples[i])
		}
	}
}

func TestClipping(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []float64{2, -2, 0}, 8000); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1) > 1e-3 || math.Abs(got[1]+1) > 1e-3 {
		t.Fatalf("clipping wrong: %v", got)
	}
}

func TestReadSkipsUnknownChunks(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []float64{0.5, -0.5}, 16000); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Splice a LIST chunk between fmt and data.
	list := append([]byte("LIST"), 4, 0, 0, 0, 'I', 'N', 'F', 'O')
	spliced := append(append(append([]byte{}, raw[:36]...), list...), raw[36:]...)
	// Fix the RIFF size field.
	spliced[4] = byte(len(spliced) - 8)
	got, sr, err := Read(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	if sr != 16000 || len(got) != 2 {
		t.Fatalf("sr=%d n=%d", sr, len(got))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte("not a wav file at all"))); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
}

func TestWriteRejectsBadRate(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []float64{0}, 0); err == nil {
		t.Fatal("accepted zero sample rate")
	}
}

func TestFileRoundTripWithSynthSpeech(t *testing.T) {
	// Export a real synthetic utterance and read it back.
	langs := synthlang.Generate(synthlang.DefaultConfig(), 42)
	r := rng.New(5)
	spk := synthlang.NewSpeaker(r, 0)
	u := langs[0].Sample(r, 2, spk, synthlang.ChannelCTSClean)
	samples := synthspeech.New().Render(r, u)
	// Normalize to peak 0.99: Render targets an RMS of 0.3, so peaks can
	// exceed full scale and would clip.
	var peak float64
	for _, v := range samples {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	for i := range samples {
		samples[i] *= 0.99 / peak
	}

	path := filepath.Join(t.TempDir(), "utt.wav")
	if err := WriteFile(path, samples, synthspeech.SampleRate); err != nil {
		t.Fatal(err)
	}
	got, sr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sr != synthspeech.SampleRate || len(got) != len(samples) {
		t.Fatalf("sr=%d n=%d want %d", sr, len(got), len(samples))
	}
	// Energy preserved within quantization error.
	var e1, e2 float64
	for i := range samples {
		e1 += samples[i] * samples[i]
		e2 += got[i] * got[i]
	}
	if math.Abs(e1-e2)/e1 > 0.01 {
		t.Fatalf("energy changed: %v vs %v", e1, e2)
	}
}

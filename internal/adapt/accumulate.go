package adapt

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// Observation is one served full-battery utterance: the weight-space
// vectors the batcher scored (already TFLLR-scaled and projected — the
// serve layer's buildVectors output) and the score rows that were
// actually served, both indexed by the bundle's front-end order.
type Observation struct {
	Vectors []*sparse.Vector
	Scores  [][]float64
}

// shadowCap bounds the shadow-sample ring independently of the main
// buffer: the shadow gate needs a representative slice, not the volume.
const shadowCap = 256

// accumulator is the lock-guarded observation store the serving handlers
// feed and the trainer snapshots. Both rings drop oldest-first; the
// shadow ring samples deterministically (every Nth observation for
// N ≈ 1/rate), so two identical traffic sequences accumulate identical
// shadow sets.
type accumulator struct {
	mu     sync.Mutex
	numFE  int
	cap    int
	every  int // shadow sampling stride; 0 = shadow off
	buf    []Observation
	shadow []Observation
	seen   int64 // total observations ever offered
}

func newAccumulator(numFE, capacity int, shadowRate float64) *accumulator {
	every := 0
	if shadowRate > 0 {
		every = int(1/shadowRate + 0.5)
		if every < 1 {
			every = 1
		}
	}
	return &accumulator{numFE: numFE, cap: capacity, every: every}
}

// add offers one observation; incomplete batteries are rejected (the
// voting matrix needs every subsystem's row).
func (a *accumulator) add(o Observation) bool {
	if len(o.Vectors) != a.numFE || len(o.Scores) != a.numFE {
		return false
	}
	for q := 0; q < a.numFE; q++ {
		if o.Vectors[q] == nil || o.Scores[q] == nil {
			return false
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seen++
	if len(a.buf) >= a.cap {
		a.buf = append(a.buf[:0], a.buf[1:]...)
	}
	a.buf = append(a.buf, o)
	if a.every > 0 && a.seen%int64(a.every) == 0 {
		if len(a.shadow) >= shadowCap {
			a.shadow = append(a.shadow[:0], a.shadow[1:]...)
		}
		a.shadow = append(a.shadow, o)
	}
	obs.SetGauge("adapt.buffer_utts", float64(len(a.buf)))
	obs.SetGauge("adapt.shadow_utts", float64(len(a.shadow)))
	return true
}

// snapshot copies both rings (oldest first) for an off-path training
// pass.
func (a *accumulator) snapshot() (buf, shadow []Observation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Observation(nil), a.buf...), append([]Observation(nil), a.shadow...)
}

// reset drops everything — called after a promotion or rollback, so the
// next pass trains on traffic served by the new generation only.
func (a *accumulator) reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.buf, a.shadow = nil, nil
	obs.SetGauge("adapt.buffer_utts", 0)
	obs.SetGauge("adapt.shadow_utts", 0)
}

// counts reports the current ring sizes and total offered observations.
func (a *accumulator) counts() (buffered, shadow int, seen int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.buf), len(a.shadow), a.seen
}

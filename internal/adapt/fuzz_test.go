package adapt

import "testing"

// FuzzParsePolicy asserts the parser never panics and that accepted
// specs are a canonical fixed point: ParsePolicy(p.String()) == p, and
// String is idempotent across that second parse. Runs in CI's fuzz-short
// job alongside the persist and checkpoint targets.
func FuzzParsePolicy(f *testing.F) {
	f.Add("")
	f.Add("on")
	f.Add("default")
	f.Add("cadence=5m;probe=30s;votes=4;method=m2")
	f.Add("cadence=90s;votes=1;method=m1;min-utts=1;buffer=64;shadow-rate=1;shadow-bound=0.5;eer-budget=0;canary-tol=0.125;keep=2")
	f.Add("votes=0")
	f.Add("method=m3")
	f.Add(";;;")
	f.Add("votes=2;votes=3")
	f.Add("shadow-rate=1e308")
	f.Add("cadence=9223372036854775807ns")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePolicy(spec)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParsePolicy(%q) returned an invalid policy: %v", spec, verr)
		}
		s := p.String()
		p2, err := ParsePolicy(s)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", s, spec, err)
		}
		if p2 != p {
			t.Fatalf("round trip of %q: %+v != %+v", spec, p2, p)
		}
		if s2 := p2.String(); s2 != s {
			t.Fatalf("String not a fixed point: %q then %q", s, s2)
		}
	})
}

package adapt

import (
	"context"
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/sparse"
)

// Chaos sites of the promotion pipeline (see internal/faultinject). Any
// injected error or panic at any of them must leave the serving model
// untouched and bit-identical — the chaos suite asserts exactly that.
const (
	// SiteTrain guards the self-training pass (vote, select, retrain).
	SiteTrain = "adapt.train"
	// SiteCanary guards the golden-score canary — both the pre-promotion
	// gate and the post-promotion probe hit it, so one rule can fail
	// either stage deterministically.
	SiteCanary = "adapt.canary"
	// SitePromote guards the CURRENT pointer flip (the promotion commit
	// point); a fault here models a crash mid-promotion.
	SitePromote = "adapt.promote"
)

// Outcome strings of one promotion attempt (Result.Outcome).
const (
	OutcomePromoted   = "promoted"
	OutcomeNoData     = "skipped:not-enough-data"
	OutcomeNoVotes    = "skipped:no-selection"
	OutcomeTrainErr   = "error:train"
	OutcomeSaveErr    = "error:save"
	OutcomePromoteErr = "error:promote"
	OutcomeSwapErr    = "error:swap"
	OutcomeCanaryVeto = "vetoed:canary"
	OutcomeEERVeto    = "vetoed:eer"
	OutcomeShadowVeto = "vetoed:shadow"
	OutcomeRolledBack = "rolled-back:probe"
)

// Config wires an Adapter to its serving process without importing it.
type Config struct {
	// Dir is the registry's bundle root (generation pointer + sidecar).
	Dir string
	// Policy parameterizes the loop; must Validate.
	Policy Policy
	// Swap triggers the serving process's model reload after a pointer
	// flip (the serve layer routes it through its retry/backoff +
	// circuit-breaker reloader). Required.
	Swap func() error
	// Current returns the bundle the serving process is answering with
	// right now (nil before the first load) — the post-promotion probe
	// scores it against the pinned referee set. Required.
	Current func() *persist.Bundle
	// Logf receives progress lines (nil: log.Printf).
	Logf func(format string, args ...any)
}

// Result is the outcome of one promotion attempt (or probe/rollback).
type Result struct {
	Promoted   bool    `json:"promoted"`
	Outcome    string  `json:"outcome"`
	Generation int64   `json:"generation"`
	Observed   int     `json:"observed,omitempty"`
	Selected   int     `json:"selected,omitempty"`
	CanaryMax  float64 `json:"canary_max_drift,omitempty"`
	CandEER    float64 `json:"candidate_eer_pct,omitempty"`
	ServEER    float64 `json:"serving_eer_pct,omitempty"`
	ShadowDiv  float64 `json:"shadow_divergence,omitempty"`
	ShadowN    int     `json:"shadow_sampled,omitempty"`
	Err        string  `json:"error,omitempty"`
}

// Status is the /adaptz view of the loop.
type Status struct {
	Enabled       bool   `json:"enabled"`
	Policy        string `json:"policy,omitempty"`
	Generation    int64  `json:"generation"`
	LastKnownGood string `json:"last_known_good,omitempty"`
	Buffered      int    `json:"buffered_utts"`
	Shadow        int    `json:"shadow_utts"`
	Observed      int64  `json:"observed_utts"`
	Attempts      int64  `json:"attempts"`
	Promotions    int64  `json:"promotions"`
	Rollbacks     int64  `json:"rollbacks"`
	Vetoes        int64  `json:"vetoes"`
	Quarantined   int64  `json:"quarantined"`
	Last          Result `json:"last,omitempty"`
}

// Adapter owns the self-training loop of one serving process.
type Adapter struct {
	cfg   Config
	set   *Set
	numFE int

	// mu serializes promotion attempts, probes, and rollbacks — the
	// pointer flip and its bookkeeping are one critical section. The
	// accumulator has its own lock, so Observe never contends with a
	// training pass.
	mu          sync.Mutex
	acc         *accumulator
	generation  int64
	lkg         string
	attempts    int64
	promotions  int64
	rollbacks   int64
	vetoes      int64
	quarantined int64
	last        Result
}

// New builds an adapter over a bundle root. The root must currently
// resolve to a loadable, adaptable bundle: float-precision batteries
// (int8 bundles ship no trainable weights) and an adapt sidecar whose
// geometry matches. Fails fast otherwise — adaptation is explicit
// opt-in, and a misconfigured loop must not silently no-op.
func New(cfg Config) (*Adapter, error) {
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Dir == "" || cfg.Swap == nil || cfg.Current == nil {
		return nil, fmt.Errorf("adapt: config needs Dir, Swap, and Current")
	}
	b, _, info, err := persist.ResolveBundle(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("adapt: bundle root: %w", err)
	}
	set, err := LoadSet(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if err := checkSetAgainstBundle(set, b); err != nil {
		return nil, err
	}
	a := &Adapter{
		cfg:        cfg,
		set:        set,
		numFE:      len(b.FrontEnds),
		acc:        newAccumulator(len(b.FrontEnds), cfg.Policy.Buffer, cfg.Policy.ShadowRate),
		generation: info.Generation,
		lkg:        info.LastKnownGood,
	}
	obs.SetGauge("adapt.generation", float64(a.generation))
	return a, nil
}

// checkSetAgainstBundle verifies the sidecar belongs to this bundle:
// same languages, same front-end order, matching weight-space
// geometry, trainable precision.
func checkSetAgainstBundle(set *Set, b *persist.Bundle) error {
	if len(set.Languages) != len(b.Languages) {
		return fmt.Errorf("adapt: sidecar lists %d languages, bundle %d", len(set.Languages), len(b.Languages))
	}
	for i, l := range b.Languages {
		if set.Languages[i] != l {
			return fmt.Errorf("adapt: sidecar language %d is %q, bundle has %q", i, set.Languages[i], l)
		}
	}
	if len(set.FrontEnds) != len(b.FrontEnds) {
		return fmt.Errorf("adapt: sidecar covers %d front-ends, bundle has %d", len(set.FrontEnds), len(b.FrontEnds))
	}
	for q := range b.FrontEnds {
		fe := &b.FrontEnds[q]
		sfe := &set.FrontEnds[q]
		if sfe.Name != fe.Name {
			return fmt.Errorf("adapt: sidecar front-end %d is %q, bundle has %q", q, sfe.Name, fe.Name)
		}
		if fe.Quant != nil {
			return fmt.Errorf("adapt: front-end %q is int8-quantized — compressed bundles cannot self-train (serve them with -adapt=off)", fe.Name)
		}
		if d := fe.WeightDim(); sfe.Dim != d {
			return fmt.Errorf("adapt: front-end %q sidecar is %d-dim, bundle's weight space is %d-dim", fe.Name, sfe.Dim, d)
		}
	}
	return nil
}

func (a *Adapter) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
		return
	}
	log.Printf("adapt: "+format, args...)
}

// Observe feeds one served full-battery utterance into the accumulator:
// the weight-space vectors scored and the rows served, keyed by bundle
// front-end index. Degraded or partial-battery results must not be
// offered (their vote rows would be meaningless). Never blocks on a
// training pass.
func (a *Adapter) Observe(vectors map[int]*sparse.Vector, scores map[int][]float64) {
	if len(vectors) != a.numFE || len(scores) != a.numFE {
		return
	}
	o := Observation{Vectors: make([]*sparse.Vector, a.numFE), Scores: make([][]float64, a.numFE)}
	for q := 0; q < a.numFE; q++ {
		o.Vectors[q] = vectors[q]
		o.Scores[q] = scores[q]
	}
	if a.acc.add(o) {
		obs.Inc("adapt.observed")
	}
}

// Status reports the loop's current state.
func (a *Adapter) Status() Status {
	buffered, shadow, seen := a.acc.counts()
	a.mu.Lock()
	defer a.mu.Unlock()
	return Status{
		Enabled:       true,
		Policy:        a.cfg.Policy.String(),
		Generation:    a.generation,
		LastKnownGood: a.lkg,
		Buffered:      buffered,
		Shadow:        shadow,
		Observed:      seen,
		Attempts:      a.attempts,
		Promotions:    a.promotions,
		Rollbacks:     a.rollbacks,
		Vetoes:        a.vetoes,
		Quarantined:   a.quarantined,
		Last:          a.last,
	}
}

// guard runs one promotion stage, converting an injected (or organic)
// panic into an error — the chaos contract says a panic at any adapt.*
// site aborts the attempt, never the process, and never the serving
// model.
func guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("adapt: panic: %v", r)
		}
	}()
	return fn()
}

// TryPromote runs one complete gated promotion attempt. force bypasses
// the MinUtts floor (the /-/adapt/promote endpoint) but never any gate.
// The returned Result is also recorded as Status().Last. The error
// return is non-nil only for infrastructure failures; gate vetoes and
// skips come back as (Result, nil).
func (a *Adapter) TryPromote(force bool) (Result, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.attempts++
	obs.Inc("adapt.attempts")
	res := a.tryPromoteLocked(force)
	a.last = res
	return res, nil
}

func (a *Adapter) tryPromoteLocked(force bool) Result {
	pol := a.cfg.Policy
	root := a.cfg.Dir
	res := Result{Generation: a.generation}

	obss, shadow := a.acc.snapshot()
	res.Observed = len(obss)
	if len(obss) == 0 || (!force && len(obss) < pol.MinUtts) {
		res.Outcome = OutcomeNoData
		return res
	}

	// The serving side of every comparison is the generation the pointer
	// designates on disk — the same bundle a crash-restarted process
	// would load.
	serving, manifest, info, err := persist.ResolveBundle(root)
	if err != nil {
		res.Outcome, res.Err = OutcomeTrainErr, err.Error()
		return res
	}

	// Stage 1: self-training pass (off the request path; a fault or
	// panic here has touched nothing on disk).
	var cand *persist.Bundle
	var stats TrainStats
	err = guard(func() error {
		if err := faultinject.At(SiteTrain); err != nil {
			return err
		}
		var err error
		cand, stats, err = buildCandidate(a.set, serving, obss, pol)
		return err
	})
	res.Selected = stats.Selected
	if err != nil {
		if errors.Is(err, ErrNoSelection) {
			res.Outcome = OutcomeNoVotes
			return res
		}
		obs.Inc("adapt.train_failures")
		res.Outcome, res.Err = OutcomeTrainErr, err.Error()
		a.logf("training pass failed (serving model untouched): %v", err)
		return res
	}

	// Stage the candidate as a complete generation directory. Until the
	// pointer flips, nothing resolves it.
	gen := persist.NextGeneration(root)
	name := persist.GenDirName(gen)
	genDir := filepath.Join(root, name)
	m := *manifest
	m.AdaptGeneration = gen
	if err := persist.SaveBundle(genDir, cand, m); err != nil {
		obs.Inc("adapt.train_failures")
		res.Outcome, res.Err = OutcomeSaveErr, err.Error()
		return res
	}
	res.Generation = gen

	quarantine := func(outcome, msg string) Result {
		a.vetoes++
		obs.Inc("adapt.vetoes")
		if q, qerr := persist.QuarantineGeneration(root, name); qerr == nil {
			a.quarantined++
			obs.Inc("adapt.quarantined")
			a.logf("candidate gen %d %s — quarantined as %s: %s", gen, outcome, q, msg)
		} else {
			a.logf("candidate gen %d %s (quarantine failed: %v): %s", gen, outcome, qerr, msg)
		}
		res.Outcome, res.Err, res.Generation = outcome, msg, a.generation
		return res
	}

	// Gate 1: golden-score canary on the artifact that would actually
	// serve — reloaded from disk, compared bit-exactly against the
	// in-memory candidate and bounded against the pinned referee scores.
	memRef := refereeScores(cand, a.set)
	var diskCand *persist.Bundle
	var diskMan *persist.Manifest
	err = guard(func() error {
		if err := faultinject.At(SiteCanary); err != nil {
			return err
		}
		disk, dm, lerr := persist.LoadBundle(genDir)
		if lerr != nil {
			return lerr
		}
		drift, cerr := canaryCompare(memRef, refereeScores(disk, a.set), a.set, pol.CanaryTol)
		res.CanaryMax = drift
		diskCand, diskMan = disk, dm
		return cerr
	})
	if err != nil {
		obs.Inc("adapt.canary_failures")
		return quarantine(OutcomeCanaryVeto, err.Error())
	}

	// Gate 2: EER on the frozen holdout must not regress past budget.
	candEER := holdoutEER(diskCand, a.set) * 100
	servEER := holdoutEER(serving, a.set) * 100
	res.CandEER, res.ServEER = candEER, servEER
	if candEER > servEER+pol.EERBudget {
		return quarantine(OutcomeEERVeto,
			fmt.Sprintf("holdout EER %.2f%% vs serving %.2f%% exceeds the %.2f pp budget", candEER, servEER, pol.EERBudget))
	}

	// Gate 3: shadow scoring over the sampled live slice.
	div, sampled := shadowDivergence(diskCand, shadow)
	res.ShadowDiv, res.ShadowN = div, sampled
	if div > pol.ShadowBound {
		return quarantine(OutcomeShadowVeto,
			fmt.Sprintf("shadow divergence %.4f over %d sampled utterances exceeds bound %.4f", div, sampled, pol.ShadowBound))
	}

	// Commit point: flip the pointer. A fault here models a crash
	// mid-promotion — the staged generation is quarantined and the
	// previous pointer keeps serving.
	prevPtr, prevErr := persist.ReadCurrent(root)
	err = guard(func() error {
		if err := faultinject.At(SitePromote); err != nil {
			return err
		}
		return persist.WriteCurrent(root, persist.GenPointer{
			Generation:    gen,
			Dir:           name,
			BundleSHA256:  diskMan.BundleSHA256,
			LastKnownGood: info.DirName,
		}, SitePromote)
	})
	if err != nil {
		obs.Inc("adapt.promote_failures")
		return quarantine(OutcomePromoteErr, err.Error())
	}

	// Hot swap through the serving process's reloader. If the swap is
	// refused (breaker open), un-flip: the gates passed, but a promotion
	// the process cannot pick up must not outlive the attempt.
	if err := a.cfg.Swap(); err != nil {
		if prevErr == nil {
			_ = persist.WriteCurrent(root, prevPtr, "")
		} else {
			_ = persist.WriteCurrent(root, persist.GenPointer{Generation: 0, Dir: persist.BaseGenDir}, "")
		}
		obs.Inc("adapt.promote_failures")
		return quarantine(OutcomeSwapErr, fmt.Sprintf("hot swap refused: %v", err))
	}

	a.generation, a.lkg = gen, info.DirName
	a.promotions++
	obs.Inc("adapt.promotions")
	obs.SetGauge("adapt.generation", float64(gen))
	a.acc.reset()
	if _, err := persist.PruneGenerations(root, pol.Keep, name, info.DirName); err != nil {
		a.logf("prune after promotion: %v", err)
	}
	a.logf("promoted generation %d (selected %d/%d, EER %.2f%% vs %.2f%%, shadow %.4f/%d)",
		gen, stats.Selected, len(obss), candEER, servEER, div, sampled)

	// Post-promotion canary probe, immediately: the serving process must
	// now reproduce the pinned referee scores within tolerance. A
	// failure rolls straight back to last-known-good.
	if err := a.probeLocked(); err != nil {
		res.Promoted = false
		res.Outcome = OutcomeRolledBack
		res.Err = err.Error()
		res.Generation = a.generation
		return res
	}
	res.Promoted = true
	res.Outcome = OutcomePromoted
	res.Generation = gen
	return res
}

// probeLocked scores the live serving bundle against the pinned referee
// set (through the adapt.canary site) and rolls back to last-known-good
// on failure. Returns the probe error (nil when healthy).
func (a *Adapter) probeLocked() error {
	err := guard(func() error {
		if err := faultinject.At(SiteCanary); err != nil {
			return err
		}
		cur := a.cfg.Current()
		if cur == nil {
			return fmt.Errorf("adapt: probe: no model loaded")
		}
		_, cerr := canaryCompare(nil, refereeScores(cur, a.set), a.set, a.cfg.Policy.CanaryTol)
		return cerr
	})
	if err == nil {
		return nil
	}
	a.logf("post-promotion canary failed, rolling back: %v", err)
	if rerr := a.rollbackLocked("probe: " + err.Error()); rerr != nil {
		a.logf("automatic rollback failed: %v", rerr)
		return fmt.Errorf("%v (rollback failed: %v)", err, rerr)
	}
	return err
}

// Probe runs the post-promotion canary once — the background loop calls
// it every Policy.Probe while a promoted generation serves; exposed for
// the serve layer's admin surface and tests. A base (generation-0)
// process is not probed: the pinned scores are its own export.
func (a *Adapter) Probe() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.generation == 0 {
		return nil
	}
	return a.probeLocked()
}

// Rollback restores last-known-good: a pure pointer rewrite plus a hot
// swap. One command, no retraining, no byte movement. The abandoned
// generation is quarantined.
func (a *Adapter) Rollback(reason string) (Result, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	err := a.rollbackLocked(reason)
	res := a.last
	return res, err
}

func (a *Adapter) rollbackLocked(reason string) error {
	root := a.cfg.Dir
	ptr, err := persist.ReadCurrent(root)
	if err != nil {
		return fmt.Errorf("adapt: rollback: no promoted generation to roll back (%v)", err)
	}
	target := ptr.LastKnownGood
	if target == "" {
		target = persist.BaseGenDir
	}
	if ptr.Dir == target {
		return fmt.Errorf("adapt: rollback: already serving %s (nothing to roll back)", target)
	}
	var tgen int64
	if target != persist.BaseGenDir {
		if g, ok := persist.ParseGeneration(target); ok {
			tgen = g
		}
	}
	next := persist.GenPointer{Generation: tgen, Dir: target}
	if target != persist.BaseGenDir {
		// The restored generation's own fallback is the base bundle.
		next.LastKnownGood = persist.BaseGenDir
	}
	if err := persist.WriteCurrent(root, next, ""); err != nil {
		return fmt.Errorf("adapt: rollback: %w", err)
	}
	if err := a.cfg.Swap(); err != nil {
		return fmt.Errorf("adapt: rollback swap: %w", err)
	}
	abandoned := ptr.Dir
	if abandoned != persist.BaseGenDir && abandoned != target {
		if _, qerr := persist.QuarantineGeneration(root, abandoned); qerr == nil {
			a.quarantined++
			obs.Inc("adapt.quarantined")
		}
	}
	a.generation, a.lkg = tgen, next.LastKnownGood
	a.rollbacks++
	obs.Inc("adapt.rollbacks")
	obs.SetGauge("adapt.generation", float64(tgen))
	a.acc.reset()
	a.last = Result{Outcome: OutcomeRolledBack, Generation: tgen, Err: reason}
	a.logf("rolled back to %s (generation %d): %s", target, tgen, reason)
	return nil
}

// Run drives the background loop until ctx is cancelled: a training
// attempt every Cadence, and — while a promoted generation serves — a
// canary probe every Probe (so a bad promotion is rolled back within one
// probe interval even if nothing else happens).
func (a *Adapter) Run(ctx context.Context) {
	train := time.NewTicker(a.cfg.Policy.Cadence)
	probe := time.NewTicker(a.cfg.Policy.Probe)
	defer train.Stop()
	defer probe.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-train.C:
			if res, _ := a.TryPromote(false); res.Outcome != OutcomeNoData {
				a.logf("pass: %s (gen %d)", res.Outcome, res.Generation)
			}
		case <-probe.C:
			_ = a.Probe()
		}
	}
}

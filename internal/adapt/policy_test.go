package adapt

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dba"
)

func TestParsePolicyDefaults(t *testing.T) {
	for _, spec := range []string{"", "on", "default", "  on  "} {
		p, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", spec, err)
		}
		if p != DefaultPolicy() {
			t.Fatalf("ParsePolicy(%q) = %+v, want defaults", spec, p)
		}
	}
}

func TestParsePolicyOverrides(t *testing.T) {
	p, err := ParsePolicy("cadence=30s;votes=3;method=m1;eer-budget=1;shadow-rate=0.25;keep=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Cadence != 30*time.Second || p.Votes != 3 || p.Method != dba.M1 ||
		p.EERBudget != 1 || p.ShadowRate != 0.25 || p.Keep != 2 {
		t.Fatalf("parsed %+v", p)
	}
	// Unspecified keys keep their defaults.
	if p.Probe != DefaultPolicy().Probe || p.Buffer != DefaultPolicy().Buffer {
		t.Fatalf("unspecified keys changed: %+v", p)
	}
}

func TestParsePolicyRejects(t *testing.T) {
	for _, spec := range []string{
		"bogus-key=1",          // unknown key
		"votes",                // not key=value
		"votes=",               // empty value
		"votes=zero",           // bad integer
		"votes=0",              // below floor
		"cadence=fast",         // bad duration
		"cadence=-1m",          // non-positive duration
		"method=m3",            // unknown method
		"shadow-rate=1.5",      // out of [0,1]
		"shadow-rate=NaN",      // non-finite
		"eer-budget=-1",        // negative
		"keep=0",               // below floor
		"votes=2;votes=3",      // duplicate key
		"min-utts=100;buffer=8", // buffer < min-utts
	} {
		if _, err := ParsePolicy(spec); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", spec)
		}
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"",
		"cadence=90s;probe=5s;votes=1;method=m1;min-utts=1;buffer=64;shadow-rate=1;shadow-bound=0.5;eer-budget=0;canary-tol=0.125;keep=2",
		"votes=7;shadow-rate=0.333",
	} {
		p, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", spec, err)
		}
		s := p.String()
		// The canonical form names every key, in order.
		for i, k := range policyKeys {
			if !strings.Contains(s, k+"=") {
				t.Fatalf("String() %q misses key %q", s, k)
			}
			if i > 0 && strings.Index(s, k+"=") < strings.Index(s, policyKeys[i-1]+"=") {
				t.Fatalf("String() %q out of canonical order at %q", s, k)
			}
		}
		p2, err := ParsePolicy(s)
		if err != nil {
			t.Fatalf("ParsePolicy(String() = %q): %v", s, err)
		}
		if p2 != p {
			t.Fatalf("round trip of %q: %+v != %+v", spec, p2, p)
		}
	}
}

func TestPolicyValidateCatchesHandBuilt(t *testing.T) {
	p := DefaultPolicy()
	p.Probe = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero probe accepted")
	}
	p = DefaultPolicy()
	p.Method = dba.Method(99)
	if err := p.Validate(); err == nil {
		t.Fatal("unknown method accepted")
	}
}

package adapt

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/persist"
	"repro/internal/sparse"
)

// The three promotion gates. Each is a pure function of frozen data
// (sidecar vectors, pinned scores) and bundles — no registry or clock —
// so the same inputs always reach the same verdict.

// scoreRows scores a set of weight-space vectors with one bundle
// front-end, returning one row per vector.
func scoreRows(b *persist.Bundle, q int, vecs []*sparse.Vector) [][]float64 {
	fe := &b.FrontEnds[q]
	out := make([][]float64, len(vecs))
	for j, v := range vecs {
		out[j] = fe.Scores(v)
	}
	return out
}

// refereeScores computes a bundle's [q][j][k] score matrices over the
// frozen referee set (the first NumReferee holdout vectors).
func refereeScores(b *persist.Bundle, set *Set) [][][]float64 {
	nRef := set.NumReferee()
	out := make([][][]float64, len(set.FrontEnds))
	for q := range set.FrontEnds {
		out[q] = scoreRows(b, q, set.FrontEnds[q].Holdout[:nRef])
	}
	return out
}

// decisionRow fuses one utterance's per-front-end rows exactly like the
// serving path's full-battery AssembleResult: the fusion backend's
// target log-odds per language when the bundle carries one, the mean row
// otherwise.
func decisionRow(b *persist.Bundle, rows [][]float64) []float64 {
	numLangs := len(b.Languages)
	out := make([]float64, numLangs)
	if b.Fusion != nil && len(rows) == len(b.FrontEnds) {
		x := make([]float64, len(rows))
		for k := 0; k < numLangs; k++ {
			for q, row := range rows {
				x[q] = row[k]
			}
			out[k] = b.Fusion.Score(x)[1]
		}
		return out
	}
	for _, row := range rows {
		for k, v := range row {
			out[k] += v / float64(len(rows))
		}
	}
	return out
}

// canaryCompare checks a disk-loaded candidate against its in-memory
// twin (bit-exact — any difference means the persisted artifact is not
// what the trainer built) and bounds its drift from the pinned referee
// scores. Returns the largest absolute drift.
func canaryCompare(mem, disk [][][]float64, set *Set, tol float64) (maxDrift float64, err error) {
	for q := range set.FrontEnds {
		pinned := set.FrontEnds[q].RefereeScores
		for j := range disk[q] {
			for k, v := range disk[q][j] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return maxDrift, fmt.Errorf("adapt: canary: front-end %q referee %d scores non-finite", set.FrontEnds[q].Name, j)
				}
				if mem != nil && v != mem[q][j][k] {
					return maxDrift, fmt.Errorf("adapt: canary: front-end %q referee %d differs from the in-memory candidate (torn or mis-encoded bundle)",
						set.FrontEnds[q].Name, j)
				}
				if d := math.Abs(v - pinned[j][k]); d > maxDrift {
					maxDrift = d
				}
			}
		}
	}
	if maxDrift > tol {
		return maxDrift, fmt.Errorf("adapt: canary: referee drift %.4f exceeds tolerance %.4f", maxDrift, tol)
	}
	return maxDrift, nil
}

// holdoutEER evaluates a bundle's fused EER (fraction, not percent) on
// the sidecar's frozen holdout split — the same pooled pair-trial EER
// the offline tables report.
func holdoutEER(b *persist.Bundle, set *Set) float64 {
	rowBufs := make([][][]float64, len(set.FrontEnds))
	for q := range set.FrontEnds {
		rowBufs[q] = scoreRows(b, q, set.FrontEnds[q].Holdout)
	}
	var pairs []metrics.PairTrial
	rows := make([][]float64, len(set.FrontEnds))
	for j, label := range set.HoldoutLabels {
		for q := range rows {
			rows[q] = rowBufs[q][j]
		}
		dec := decisionRow(b, rows)
		for k, s := range dec {
			pairs = append(pairs, metrics.PairTrial{Model: k, True: label, Score: s})
		}
	}
	return metrics.EER(metrics.PairTrialsToDetection(pairs))
}

// shadowDivergence rescored the shadow-sampled live slice with the
// candidate and measures the mean absolute fused-score divergence from
// what was actually served (the observations' stored rows, fused with
// the same backend). Zero divergence over zero samples — a cold shadow
// ring passes the gate vacuously (reported via the sampled count).
func shadowDivergence(cand *persist.Bundle, obss []Observation) (mean float64, sampled int) {
	if len(obss) == 0 {
		return 0, 0
	}
	var total float64
	for _, o := range obss {
		candRows := make([][]float64, len(cand.FrontEnds))
		for q := range cand.FrontEnds {
			candRows[q] = cand.FrontEnds[q].Scores(o.Vectors[q])
		}
		cd := decisionRow(cand, candRows)
		sd := decisionRow(cand, o.Scores)
		var utt float64
		for k := range cd {
			utt += math.Abs(cd[k] - sd[k])
		}
		total += utt / float64(len(cd))
	}
	return total / float64(len(obss)), len(obss)
}

package adapt

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fusion"
	"repro/internal/ngram"
	"repro/internal/persist"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// Test fixture: a tiny synthetic bundle + adapt sidecar (2 front-ends
// over a 5-phone order-2 space, 3 languages) that trains in
// milliseconds. Vectors are generated directly in the scoring weight
// space (TFLLR-scaled), matching what lre's export writes.

const (
	tfPhones  = 5
	tfOrder   = 2
	tfLangs   = 3
	tfTrain   = 60
	tfHoldout = 30
	tfReferee = 12
)

// synthVector draws one weight-space vector of language k.
func synthVector(r *rng.RNG, dim, k, f int) *sparse.Vector {
	m := map[int32]float64{
		int32(k * 7):              2 + 0.3*r.Norm(),
		int32((k*7 + f + 1) % dim): 1 + 0.2*r.Norm(),
		int32(r.Intn(dim)):        0.5 * r.Float64(),
	}
	return sparse.FromMap(m)
}

// buildFixture constructs a matched (bundle, sidecar) pair.
func buildFixture(seed uint64) (*persist.Bundle, *Set) {
	space := ngram.NewSpace(tfPhones, tfOrder)
	dim := space.Dim()
	r := rng.New(seed)
	opt := svm.DefaultOptions()
	opt.Seed = seed

	b := &persist.Bundle{Languages: []string{"alpha", "beta", "gamma"}}
	set := &Set{
		FormatVersion: SetFormatVersion,
		Languages:     []string{"alpha", "beta", "gamma"},
		SVM:           opt,
		Seed:          seed,
	}
	for i := 0; i < tfTrain; i++ {
		set.TrainLabels = append(set.TrainLabels, i%tfLangs)
	}
	for i := 0; i < tfHoldout; i++ {
		set.HoldoutLabels = append(set.HoldoutLabels, i%tfLangs)
	}

	var all [][]*sparse.Vector
	for f := 0; f < 2; f++ {
		var train, holdout []*sparse.Vector
		for i := 0; i < tfTrain; i++ {
			train = append(train, synthVector(r, dim, i%tfLangs, f))
		}
		for i := 0; i < tfHoldout; i++ {
			holdout = append(holdout, synthVector(r, dim, i%tfLangs, f))
		}
		// The per-front-end seed derivation the trainer uses, so a
		// candidate trained on the unmodified frozen set reproduces these
		// weights.
		fopt := opt
		fopt.Seed = opt.Seed + 7_000_003 + uint64(f)*104729
		ovr := svm.TrainOVR(train, set.TrainLabels, tfLangs, dim, fopt)
		b.FrontEnds = append(b.FrontEnds, persist.FrontEndModel{
			Name:      fmt.Sprintf("FE%d", f),
			NumPhones: tfPhones,
			Order:     tfOrder,
			OVR:       ovr,
		})
		set.FrontEnds = append(set.FrontEnds, SetFrontEnd{
			Name:    fmt.Sprintf("FE%d", f),
			Dim:     dim,
			Train:   train,
			Holdout: holdout,
		})
		all = append(all, train)
	}

	var devX [][]float64
	var devY []int
	for i := range all[0] {
		s0 := b.FrontEnds[0].OVR.Scores(all[0][i])
		s1 := b.FrontEnds[1].OVR.Scores(all[1][i])
		for k := 0; k < tfLangs; k++ {
			devX = append(devX, []float64{s0[k], s1[k]})
			if set.TrainLabels[i] == k {
				devY = append(devY, 1)
			} else {
				devY = append(devY, 0)
			}
		}
	}
	bk, err := fusion.Train(devX, devY, 2, fusion.DefaultConfig())
	if err != nil {
		panic(err)
	}
	b.Fusion = bk

	// Pin the referee scores from the freshly trained battery.
	for q := range set.FrontEnds {
		sfe := &set.FrontEnds[q]
		for j := 0; j < tfReferee; j++ {
			sfe.RefereeScores = append(sfe.RefereeScores, b.FrontEnds[q].Scores(sfe.Holdout[j]))
		}
	}
	return b, set
}

// writeFixture exports the fixture as a generation-0 bundle root.
func writeFixture(t testing.TB, dir string, seed uint64) (*persist.Bundle, *Set) {
	t.Helper()
	b, set := buildFixture(seed)
	if err := SaveSet(dir, set); err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveBundle(dir, b, persist.Manifest{Seed: seed, Scale: "test", AdaptFile: SetFile}); err != nil {
		t.Fatal(err)
	}
	return b, set
}

// host simulates the serving process side of the adapter contract: Swap
// re-resolves the root (like the registry reloader), Current returns the
// live bundle.
type host struct {
	t     testing.TB
	dir   string
	cur   *persist.Bundle
	swaps int
	fail  error // non-nil: Swap refuses (breaker-open simulation)
}

func newHost(t testing.TB, dir string) *host {
	b, _, _, err := persist.ResolveBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	return &host{t: t, dir: dir, cur: b}
}

func (h *host) swap() error {
	if h.fail != nil {
		return h.fail
	}
	b, _, _, err := persist.ResolveBundle(h.dir)
	if err != nil {
		return err
	}
	h.cur = b
	h.swaps++
	return nil
}

func (h *host) current() *persist.Bundle { return h.cur }

// newTestAdapter builds an adapter over an exported fixture root with a
// permissive gate policy (tests tighten individual knobs per case).
func newTestAdapter(t testing.TB, dir string, mutate func(*Policy)) (*Adapter, *host) {
	t.Helper()
	pol := DefaultPolicy()
	pol.MinUtts = 1
	pol.Votes = 1
	pol.ShadowRate = 1
	pol.ShadowBound = 1e9
	pol.EERBudget = 100
	pol.CanaryTol = 1e9
	if mutate != nil {
		mutate(&pol)
	}
	h := newHost(t, dir)
	a, err := New(Config{
		Dir:     dir,
		Policy:  pol,
		Swap:    h.swap,
		Current: h.current,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, h
}

// feed offers n full-battery observations built from the sidecar's
// holdout vectors, with forged served rows voting for label(j) — forged
// rows make Eq. 13 selection deterministic regardless of calibration.
func feed(a *Adapter, set *Set, n int, label func(j int) int) {
	for j := 0; j < n && j < len(set.HoldoutLabels); j++ {
		vectors := make(map[int]*sparse.Vector, len(set.FrontEnds))
		scores := make(map[int][]float64, len(set.FrontEnds))
		k := label(j)
		for q := range set.FrontEnds {
			vectors[q] = set.FrontEnds[q].Holdout[j]
			// Small margins: unambiguous for Eq. 13 voting (one positive,
			// rest negative) without saturating the fused decision — the
			// shadow gate needs served-vs-candidate divergence to be
			// measurable, not flushed to exactly 0/1.
			row := make([]float64, tfLangs)
			for i := range row {
				row[i] = -0.25
			}
			row[k] = 0.25
			scores[q] = row
		}
		a.Observe(vectors, scores)
	}
}

// rootDigest hashes the base bundle files — the serving artifact that
// chaos must leave bit-identical.
func rootDigest(t testing.TB, dir string) [sha256.Size]byte {
	t.Helper()
	h := sha256.New()
	for _, name := range []string{"bundle.gob", "manifest.json", SetFile} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		h.Write(data)
	}
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

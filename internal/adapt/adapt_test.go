package adapt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/persist"
	"repro/internal/sparse"
)

// correct labels the fixture's holdout order (j % 3).
func correct(j int) int { return j % tfLangs }

// wrong deliberately mislabels every observation (EER-regression fuel).
func wrong(j int) int { return (j%tfLangs + 1) % tfLangs }

func TestPromoteSuccess(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 11)
	a, h := newTestAdapter(t, dir, nil)
	feed(a, set, tfHoldout, correct)

	res, err := a.TryPromote(true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || res.Outcome != OutcomePromoted {
		t.Fatalf("outcome %q (err %q), want %q", res.Outcome, res.Err, OutcomePromoted)
	}
	if res.Generation != 1 {
		t.Fatalf("generation %d, want 1", res.Generation)
	}
	if h.swaps != 1 {
		t.Fatalf("swap called %d times, want 1", h.swaps)
	}

	ptr, err := persist.ReadCurrent(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ptr.Dir != persist.GenDirName(1) || ptr.Generation != 1 {
		t.Fatalf("CURRENT = %+v, want gen 1", ptr)
	}
	if ptr.LastKnownGood != persist.BaseGenDir {
		t.Fatalf("last-known-good %q, want %q", ptr.LastKnownGood, persist.BaseGenDir)
	}
	b, _, info, err := persist.ResolveBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 || info.Fallback {
		t.Fatalf("resolved %+v, want generation 1 without fallback", info)
	}
	// The host's serving bundle is the promoted candidate, and the
	// post-promotion probe already verified it against the pinned scores.
	if h.cur == nil || b == nil {
		t.Fatal("no bundle after promotion")
	}
	st := a.Status()
	if st.Generation != 1 || st.Promotions != 1 || st.Rollbacks != 0 {
		t.Fatalf("status %+v", st)
	}
	// A promotion consumes the buffer: the next pass (even forced) skips.
	res, _ = a.TryPromote(true)
	if res.Outcome != OutcomeNoData {
		t.Fatalf("post-promotion pass %q, want %q", res.Outcome, OutcomeNoData)
	}
}

func TestPromoteSkipsBelowMinUtts(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 12)
	a, _ := newTestAdapter(t, dir, func(p *Policy) { p.MinUtts = 8 })
	feed(a, set, 2, correct)
	res, _ := a.TryPromote(false)
	if res.Outcome != OutcomeNoData {
		t.Fatalf("outcome %q, want %q", res.Outcome, OutcomeNoData)
	}
	if _, err := persist.ReadCurrent(dir); !os.IsNotExist(err) {
		t.Fatalf("a skipped pass must not create CURRENT (err %v)", err)
	}
}

// assertUntouched verifies the serving side survived an attempt intact:
// base files bit-identical, no CURRENT pointer, no live generation.
func assertUntouched(t *testing.T, dir string, before [32]byte) {
	t.Helper()
	if rootDigest(t, dir) != before {
		t.Fatal("base bundle files changed")
	}
	if _, err := persist.ReadCurrent(dir); !os.IsNotExist(err) {
		t.Fatalf("CURRENT exists after a failed attempt (err %v)", err)
	}
	if gens := persist.ListGenerations(dir); len(gens) != 0 {
		t.Fatalf("live generations after a failed attempt: %v", gens)
	}
}

// isQuarantined reports whether generation gen exists only under the
// quarantine prefix.
func isQuarantined(t *testing.T, dir string, gen int64) bool {
	t.Helper()
	name := persist.GenDirName(gen)
	if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, "quarantine-"+name))
	return err == nil
}

func TestGateVetoCanary(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 13)
	// Zero drift tolerance: any retrained battery legitimately moves the
	// referee scores, so the canary must veto.
	a, h := newTestAdapter(t, dir, func(p *Policy) { p.CanaryTol = 0 })
	before := rootDigest(t, dir)
	feed(a, set, tfHoldout, correct)

	res, _ := a.TryPromote(true)
	if res.Outcome != OutcomeCanaryVeto {
		t.Fatalf("outcome %q (err %q), want %q", res.Outcome, res.Err, OutcomeCanaryVeto)
	}
	if h.swaps != 0 {
		t.Fatal("swap ran despite a canary veto")
	}
	assertUntouched(t, dir, before)
	if !isQuarantined(t, dir, 1) {
		t.Fatal("vetoed candidate was not quarantined")
	}
}

func TestGateVetoShadow(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 14)
	a, _ := newTestAdapter(t, dir, func(p *Policy) { p.ShadowBound = 0 })
	before := rootDigest(t, dir)
	feed(a, set, tfHoldout, correct)

	res, _ := a.TryPromote(true)
	if res.Outcome != OutcomeShadowVeto {
		t.Fatalf("outcome %q (err %q), want %q", res.Outcome, res.Err, OutcomeShadowVeto)
	}
	if res.ShadowN == 0 {
		t.Fatal("shadow gate fired without sampling anything")
	}
	assertUntouched(t, dir, before)
	if !isQuarantined(t, dir, 1) {
		t.Fatal("vetoed candidate was not quarantined")
	}
}

func TestGateVetoEER(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 15)
	// Zero regression budget + systematically mislabeled self-training
	// data: the candidate must test worse on the frozen holdout.
	a, _ := newTestAdapter(t, dir, func(p *Policy) { p.EERBudget = 0 })
	before := rootDigest(t, dir)
	feed(a, set, tfHoldout, wrong)

	res, _ := a.TryPromote(true)
	if res.Outcome != OutcomeEERVeto {
		t.Fatalf("outcome %q (err %q; cand %.2f serv %.2f), want %q",
			res.Outcome, res.Err, res.CandEER, res.ServEER, OutcomeEERVeto)
	}
	if res.CandEER <= res.ServEER {
		t.Fatalf("mislabeled training did not regress EER: cand %.2f vs serv %.2f", res.CandEER, res.ServEER)
	}
	assertUntouched(t, dir, before)
	if !isQuarantined(t, dir, 1) {
		t.Fatal("vetoed candidate was not quarantined")
	}
}

// TestChaosSitesLeaveServingUntouched is the chaos contract: an injected
// error or panic at any adapt.* site aborts the attempt and leaves the
// base bundle bit-identical with nothing promoted.
func TestChaosSitesLeaveServingUntouched(t *testing.T) {
	cases := []struct {
		site, kind  string
		wantOutcome string
	}{
		{SiteTrain, "error", OutcomeTrainErr},
		{SiteTrain, "panic", OutcomeTrainErr},
		{SiteCanary, "error", OutcomeCanaryVeto},
		{SiteCanary, "panic", OutcomeCanaryVeto},
		{SitePromote, "error", OutcomePromoteErr},
		{SitePromote, "panic", OutcomePromoteErr},
	}
	for _, tc := range cases {
		t.Run(tc.site+"/"+tc.kind, func(t *testing.T) {
			dir := t.TempDir()
			_, set := writeFixture(t, dir, 16)
			a, h := newTestAdapter(t, dir, nil)
			before := rootDigest(t, dir)
			feed(a, set, tfHoldout, correct)

			kind := faultinject.KindError
			if tc.kind == "panic" {
				kind = faultinject.KindPanic
			}
			restore := faultinject.Enable(&faultinject.Plan{Seed: 7, Rules: []faultinject.Rule{
				{Site: tc.site, Kind: kind, Every: 1},
			}})
			res, _ := a.TryPromote(true)
			restore()

			if res.Outcome != tc.wantOutcome {
				t.Fatalf("outcome %q (err %q), want %q", res.Outcome, res.Err, tc.wantOutcome)
			}
			if res.Promoted {
				t.Fatal("promoted under injected fault")
			}
			if h.swaps != 0 {
				t.Fatal("swap ran under injected fault")
			}
			assertUntouched(t, dir, before)
			// Serving still resolves to the untouched base.
			if _, _, info, err := persist.ResolveBundle(dir); err != nil || info.Generation != 0 {
				t.Fatalf("resolve after fault: gen %d err %v", info.Generation, err)
			}
		})
	}
}

// TestSwapRefusedRevertsPointer covers the breaker-open path: the gates
// pass, the pointer flips, but the serving process refuses the hot swap —
// the flip must be reverted and the candidate quarantined.
func TestSwapRefusedRevertsPointer(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 17)
	a, h := newTestAdapter(t, dir, nil)
	h.fail = errors.New("breaker open")
	feed(a, set, tfHoldout, correct)

	res, _ := a.TryPromote(true)
	if res.Outcome != OutcomeSwapErr {
		t.Fatalf("outcome %q (err %q), want %q", res.Outcome, res.Err, OutcomeSwapErr)
	}
	// The pointer must not designate the un-swappable generation.
	if _, _, info, err := persist.ResolveBundle(dir); err != nil || info.Generation != 0 {
		t.Fatalf("resolve after refused swap: gen %d err %v", info.Generation, err)
	}
	if !isQuarantined(t, dir, 1) {
		t.Fatal("un-swappable candidate was not quarantined")
	}
}

func TestProbeRollback(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 18)
	a, h := newTestAdapter(t, dir, nil)
	feed(a, set, tfHoldout, correct)
	if res, _ := a.TryPromote(true); res.Outcome != OutcomePromoted {
		t.Fatalf("setup promotion failed: %q (%s)", res.Outcome, res.Err)
	}
	swapsAfterPromote := h.swaps

	// A failing canary probe on the promoted generation must roll back to
	// last-known-good automatically.
	restore := faultinject.Enable(&faultinject.Plan{Seed: 7, Rules: []faultinject.Rule{
		{Site: SiteCanary, Kind: faultinject.KindError, Every: 1},
	}})
	err := a.Probe()
	restore()
	if err == nil {
		t.Fatal("probe passed under injected canary fault")
	}
	if h.swaps != swapsAfterPromote+1 {
		t.Fatalf("rollback did not swap (swaps %d)", h.swaps)
	}
	if _, _, info, rerr := persist.ResolveBundle(dir); rerr != nil || info.Generation != 0 {
		t.Fatalf("resolve after rollback: gen %d err %v", info.Generation, rerr)
	}
	if !isQuarantined(t, dir, 1) {
		t.Fatal("rolled-back generation was not quarantined")
	}
	st := a.Status()
	if st.Generation != 0 || st.Rollbacks != 1 {
		t.Fatalf("status after rollback: %+v", st)
	}
	// A base-generation adapter does not probe (its pinned scores are its
	// own export).
	if err := a.Probe(); err != nil {
		t.Fatalf("generation-0 probe: %v", err)
	}
}

func TestRollbackCommand(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 19)
	a, h := newTestAdapter(t, dir, nil)
	feed(a, set, tfHoldout, correct)
	if res, _ := a.TryPromote(true); res.Outcome != OutcomePromoted {
		t.Fatalf("setup promotion failed: %q", res.Outcome)
	}
	servingGen1 := h.cur

	res, err := a.Rollback("operator request")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeRolledBack || res.Generation != 0 {
		t.Fatalf("rollback result %+v", res)
	}
	if h.cur == servingGen1 {
		t.Fatal("serving bundle unchanged after rollback")
	}
	if _, _, info, rerr := persist.ResolveBundle(dir); rerr != nil || info.Generation != 0 {
		t.Fatalf("resolve after rollback: gen %d err %v", info.Generation, rerr)
	}
	// Rolling back with nothing promoted is an error, not a crash.
	if _, err := a.Rollback("again"); err == nil {
		t.Fatal("rollback of the base generation should fail")
	}
}

func TestPromotePruneKeepsPinned(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 20)
	a, _ := newTestAdapter(t, dir, func(p *Policy) { p.Keep = 1 })
	for i := 0; i < 4; i++ {
		feed(a, set, tfHoldout, correct)
		res, _ := a.TryPromote(true)
		if res.Outcome != OutcomePromoted {
			t.Fatalf("promotion %d: %q (%s)", i+1, res.Outcome, res.Err)
		}
	}
	// keep=1 plus the pins: gen 4 (serving) and gen 3 (last-known-good)
	// are pinned, gen 2 is the one kept generation, gen 1 is pruned.
	gens := persist.ListGenerations(dir)
	names := make([]string, len(gens))
	for i, g := range gens {
		names[i] = g.Name
	}
	want := persist.GenDirName(4) + "," + persist.GenDirName(3) + "," + persist.GenDirName(2)
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("live generations %q, want %q", got, want)
	}
	if _, err := os.Stat(filepath.Join(dir, "bundle.gob")); err != nil {
		t.Fatalf("prune touched the base bundle: %v", err)
	}
}

// TestCrashRestartResumesPromotedGeneration: a fresh adapter (process
// restart) over a promoted root resumes at the promoted generation.
func TestCrashRestartResumesPromotedGeneration(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 21)
	a, _ := newTestAdapter(t, dir, nil)
	feed(a, set, tfHoldout, correct)
	if res, _ := a.TryPromote(true); res.Outcome != OutcomePromoted {
		t.Fatalf("setup promotion failed: %q", res.Outcome)
	}

	a2, _ := newTestAdapter(t, dir, nil)
	if st := a2.Status(); st.Generation != 1 {
		t.Fatalf("restarted adapter at generation %d, want 1", st.Generation)
	}
}

// TestCorruptPromotedGenerationFallsBack: a promoted generation whose
// bundle is later torn on disk must resolve to an older generation (here
// the base), never to garbage and never to nothing.
func TestCorruptPromotedGenerationFallsBack(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 22)
	a, _ := newTestAdapter(t, dir, nil)
	feed(a, set, tfHoldout, correct)
	if res, _ := a.TryPromote(true); res.Outcome != OutcomePromoted {
		t.Fatalf("setup promotion failed: %q", res.Outcome)
	}
	genBundle := filepath.Join(dir, persist.GenDirName(1), "bundle.gob")
	data, err := os.ReadFile(genBundle)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(genBundle, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	b, _, info, err := persist.ResolveBundle(dir)
	if err != nil || b == nil {
		t.Fatalf("resolution failed entirely: %v", err)
	}
	if !info.Fallback || info.Generation != 0 {
		t.Fatalf("resolved %+v, want fallback to base", info)
	}
}

func TestNewRejectsMismatchedSidecar(t *testing.T) {
	dir := t.TempDir()
	b, set := buildFixture(23)
	set.FrontEnds[1].Name = "WRONG"
	if err := SaveSet(dir, set); err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveBundle(dir, b, persist.Manifest{Seed: 23, Scale: "test"}); err != nil {
		t.Fatal(err)
	}
	h := newHost(t, dir)
	if _, err := New(Config{Dir: dir, Policy: DefaultPolicy(), Swap: h.swap, Current: h.current}); err == nil {
		t.Fatal("mismatched sidecar accepted")
	}
}

func TestNewRejectsMissingSidecar(t *testing.T) {
	dir := t.TempDir()
	b, _ := buildFixture(24)
	if err := persist.SaveBundle(dir, b, persist.Manifest{Seed: 24, Scale: "test"}); err != nil {
		t.Fatal(err)
	}
	h := newHost(t, dir)
	_, err := New(Config{Dir: dir, Policy: DefaultPolicy(), Swap: h.swap, Current: h.current})
	if !errors.Is(err, ErrNoSet) {
		t.Fatalf("err %v, want ErrNoSet", err)
	}
}

func TestObserveRejectsPartialBattery(t *testing.T) {
	dir := t.TempDir()
	_, set := writeFixture(t, dir, 25)
	a, _ := newTestAdapter(t, dir, nil)
	// Only front-end 0 of 2: a partial battery must be dropped.
	a.Observe(
		map[int]*sparse.Vector{0: set.FrontEnds[0].Holdout[0]},
		map[int][]float64{0: {1, -1, -1}},
	)
	if st := a.Status(); st.Buffered != 0 {
		t.Fatalf("partial battery buffered: %+v", st)
	}
}

package adapt

import (
	"errors"
	"fmt"

	"repro/internal/dba"
	"repro/internal/persist"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// ErrNoSelection reports a training pass where Eq. 13 voting selected no
// utterance — nothing to adapt on, the pass is skipped (not an error of
// the serving path).
var ErrNoSelection = errors.New("adapt: voting selected no utterances")

// TrainStats summarizes one candidate build for status surfaces.
type TrainStats struct {
	Observed int `json:"observed"`
	Selected int `json:"selected"`
	Votes    int `json:"votes"`
}

// voteMatrices arranges the buffered observations' served rows as the
// [q][j][k] score matrices dba.CountVotes consumes, applying the
// sidecar's per-front-end vote calibration (raw one-vs-rest rows are
// biased negative by the 1-vs-22 class imbalance; the offline pipeline
// calibrates the same way before voting).
func voteMatrices(set *Set, obss []Observation) [][][]float64 {
	numFE := len(set.FrontEnds)
	mats := make([][][]float64, numFE)
	for q := 0; q < numFE; q++ {
		shifts := set.FrontEnds[q].VoteShifts
		mats[q] = make([][]float64, len(obss))
		for j, o := range obss {
			row := o.Scores[q]
			if len(shifts) == len(row) {
				cal := make([]float64, len(row))
				for k, v := range row {
					cal[k] = v - shifts[k]
				}
				row = cal
			}
			mats[q][j] = row
		}
	}
	return mats
}

// buildCandidate runs one self-training pass: Eq. 13 voting over the
// buffered observations, threshold selection, and a per-front-end
// one-vs-rest retrain (M1: selected only; M2: selected ∪ the sidecar's
// frozen training set). The returned bundle shares the serving bundle's
// fusion backend and cascade model — only the weight batteries change —
// so its decision scale is comparable gate-side.
func buildCandidate(set *Set, serving *persist.Bundle, obss []Observation, pol Policy) (*persist.Bundle, TrainStats, error) {
	stats := TrainStats{Observed: len(obss), Votes: pol.Votes}
	if len(obss) == 0 {
		return nil, stats, ErrNoSelection
	}
	votes := dba.CountVotes(voteMatrices(set, obss))
	sel := dba.Select(votes, pol.Votes)
	stats.Selected = len(sel)
	if len(sel) == 0 {
		return nil, stats, ErrNoSelection
	}

	numLangs := len(set.Languages)
	cand := &persist.Bundle{
		Languages: append([]string(nil), serving.Languages...),
		FrontEnds: append([]persist.FrontEndModel(nil), serving.FrontEnds...),
		Fusion:    serving.Fusion,
		Cascade:   serving.Cascade,
	}
	for q := range cand.FrontEnds {
		sfe := &set.FrontEnds[q]
		test := make([]*sparse.Vector, len(obss))
		for j, o := range obss {
			test[j] = o.Vectors[q]
		}
		d := &dba.SubsystemData{Name: sfe.Name, Dim: sfe.Dim, Train: sfe.Train, Test: test}
		xs, ys := dba.BuildTrainingSet(d, set.TrainLabels, sel, pol.Method)
		// The same per-front-end seed derivation dba.Run uses, so a
		// candidate trained on the full frozen set under M2 with the same
		// selection reproduces the offline second-pass models.
		qopt := set.SVM
		qopt.Seed = set.SVM.Seed + 7_000_003 + uint64(q)*104729
		ovr := svm.TrainOVR(xs, ys, numLangs, d.Dim, qopt)
		cand.FrontEnds[q].OVR = ovr
	}
	if err := cand.Validate(); err != nil {
		return nil, stats, fmt.Errorf("adapt: candidate bundle: %w", err)
	}
	return cand, stats, nil
}

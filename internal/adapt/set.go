package adapt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/persist"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// SetFile is the sidecar file `lre -export-models` writes next to the
// bundle. It freezes everything self-training needs that a serving
// process cannot reconstruct from live traffic: the original training
// supervectors (DBA-M2 appends the selected utterances to them), a
// holdout split with labels (the EER gate), per-front-end vote
// calibration shifts (Eq. 13 on raw one-vs-rest scores almost never
// fires — the 1-vs-22 imbalance biases them negative), and the pinned
// referee scores the canary gate checks candidates against.
const SetFile = "adapt.gob"

// SetFormatVersion versions the sidecar layout.
const SetFormatVersion = 1

// ErrNoSet marks a bundle directory exported without an adapt sidecar —
// such bundles serve normally but cannot self-train.
var ErrNoSet = errors.New("adapt: bundle has no adapt sidecar (re-export with a current lre)")

// Set is the decoded sidecar.
type Set struct {
	FormatVersion int
	// Languages mirrors the bundle's language list (cross-checked at
	// adapter construction).
	Languages []string
	// SVM carries the export-time solver options, so candidate training
	// uses exactly the hyperparameters the base models were trained with.
	SVM svm.Options
	// Seed is the export pipeline's seed (candidate seeds derive from it
	// the same way dba.Run derives per-front-end seeds).
	Seed uint64
	// TrainLabels pairs with every front-end's Train vectors.
	TrainLabels []int
	// HoldoutLabels pairs with every front-end's Holdout vectors.
	HoldoutLabels []int
	// FrontEnds aligns with the bundle's front-end order.
	FrontEnds []SetFrontEnd
}

// SetFrontEnd is one front-end's frozen adaptation data, all vectors in
// that front-end's scoring weight space (TFLLR-scaled, projected if the
// bundle projects) — exactly what FrontEndModel.ScoresInto consumes.
type SetFrontEnd struct {
	Name string
	// Dim is the weight-space dimensionality (must equal the bundle
	// front-end's WeightDim).
	Dim int
	// Train are the original training supervectors (DBA-M2's Tr).
	Train []*sparse.Vector
	// Holdout are the frozen holdout supervectors the EER gate scores.
	Holdout []*sparse.Vector
	// VoteShifts are the per-language vote-calibration thresholds
	// (subtracted from a served score row before the Eq. 13 criterion),
	// computed on dev at export time like the offline pipeline's vote
	// calibration.
	VoteShifts []float64
	// RefereeScores pins the export-time model's score rows for the
	// first len(RefereeScores) holdout vectors — the frozen referee set.
	// The canary gate bounds a candidate's drift against these.
	RefereeScores [][]float64
}

// NumReferee returns the referee-set size (identical across front-ends,
// enforced by Validate).
func (s *Set) NumReferee() int {
	if len(s.FrontEnds) == 0 {
		return 0
	}
	return len(s.FrontEnds[0].RefereeScores)
}

// Validate checks the internal consistency the trainer and gates rely
// on.
func (s *Set) Validate() error {
	if s.FormatVersion != SetFormatVersion {
		return fmt.Errorf("adapt: sidecar format %d (want %d)", s.FormatVersion, SetFormatVersion)
	}
	if len(s.Languages) == 0 {
		return fmt.Errorf("adapt: sidecar lists no languages")
	}
	if len(s.FrontEnds) == 0 {
		return fmt.Errorf("adapt: sidecar has no front-ends")
	}
	k := len(s.Languages)
	nRef := len(s.FrontEnds[0].RefereeScores)
	for i := range s.FrontEnds {
		fe := &s.FrontEnds[i]
		if fe.Name == "" {
			return fmt.Errorf("adapt: sidecar front-end %d has no name", i)
		}
		if fe.Dim <= 0 {
			return fmt.Errorf("adapt: front-end %q has dimension %d", fe.Name, fe.Dim)
		}
		if len(fe.Train) != len(s.TrainLabels) {
			return fmt.Errorf("adapt: front-end %q has %d train vectors for %d labels",
				fe.Name, len(fe.Train), len(s.TrainLabels))
		}
		if len(fe.Holdout) != len(s.HoldoutLabels) {
			return fmt.Errorf("adapt: front-end %q has %d holdout vectors for %d labels",
				fe.Name, len(fe.Holdout), len(s.HoldoutLabels))
		}
		if len(fe.VoteShifts) != 0 && len(fe.VoteShifts) != k {
			return fmt.Errorf("adapt: front-end %q has %d vote shifts for %d languages",
				fe.Name, len(fe.VoteShifts), k)
		}
		if len(fe.RefereeScores) != nRef {
			return fmt.Errorf("adapt: front-end %q pins %d referee rows, front-end %q pins %d",
				fe.Name, len(fe.RefereeScores), s.FrontEnds[0].Name, nRef)
		}
		if nRef > len(fe.Holdout) {
			return fmt.Errorf("adapt: front-end %q pins %d referee rows but has %d holdout vectors",
				fe.Name, nRef, len(fe.Holdout))
		}
		for j, row := range fe.RefereeScores {
			if len(row) != k {
				return fmt.Errorf("adapt: front-end %q referee row %d scores %d languages (want %d)",
					fe.Name, j, len(row), k)
			}
		}
	}
	if nRef == 0 {
		return fmt.Errorf("adapt: sidecar has an empty referee set")
	}
	if len(s.HoldoutLabels) == 0 {
		return fmt.Errorf("adapt: sidecar has an empty holdout split")
	}
	return nil
}

// SaveSet writes the sidecar into a bundle directory (sealed, atomic).
func SaveSet(dir string, s *Set) error {
	if err := s.Validate(); err != nil {
		return err
	}
	return persist.Save(filepath.Join(dir, SetFile), s)
}

// LoadSet reads and validates a bundle directory's sidecar. A missing
// file returns ErrNoSet.
func LoadSet(dir string) (*Set, error) {
	path := filepath.Join(dir, SetFile)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return nil, ErrNoSet
	}
	var s Set
	if err := persist.Load(path, &s); err != nil {
		return nil, fmt.Errorf("adapt: sidecar: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

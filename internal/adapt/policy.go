// Package adapt is the online self-training loop: it accumulates
// high-confidence served utterances by the paper's Eq. 13 voting
// (reusing internal/dba), periodically retrains the one-vs-rest battery
// off the request path (DBA-M1/M2 on the frozen training supervectors
// shipped in the bundle's adapt sidecar), and promotes the candidate
// bundle through a generation-versioned pointer flip — but only after a
// three-stage safety gate:
//
//  1. Golden-score canary: the candidate, reloaded from its on-disk
//     generation directory, must reproduce the export-time pinned scores
//     on a frozen referee set within CanaryTol (and must match its
//     in-memory twin bit for bit — a torn or mis-encoded candidate is
//     quarantined, never served).
//  2. EER-on-holdout: the candidate's fused EER on the frozen holdout
//     split must not regress more than EERBudget percent points past the
//     serving model's.
//  3. Shadow scoring: the candidate rescoring a sampled slice of live
//     traffic must not diverge from what was actually served by more
//     than ShadowBound on the fused decision scale.
//
// Promotion is crash-safe (the generation directory is complete and
// verified before the sealed CURRENT pointer flips; see
// persist.ResolveBundle), reversible (Rollback rewrites the pointer to
// last-known-good), and automatically reverted when the post-promotion
// canary probe fails. The adapt.train, adapt.canary, and adapt.promote
// fault sites let the chaos suite prove an injected failure at any stage
// leaves the serving model untouched.
package adapt

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/dba"
)

// Policy parameterizes the self-training loop. ParsePolicy/String are a
// canonical round trip: String emits every field in a fixed key order,
// and parsing that spec reproduces the policy exactly.
type Policy struct {
	// Cadence is how often the background loop attempts a self-training
	// pass (5m).
	Cadence time.Duration
	// Probe is how often the post-promotion canary re-checks a promoted
	// generation against the pinned referee scores; a failure rolls back
	// to last-known-good (30s).
	Probe time.Duration
	// Votes is the Eq. 13 vote threshold V: an observed utterance enters
	// the self-training set when at least this many front-ends cast an
	// unambiguous calibrated vote for the same language (4).
	Votes int
	// Method selects the retraining set: DBA-M1 (selected utterances
	// only) or DBA-M2 (selected ∪ original training set; the default).
	Method dba.Method
	// MinUtts is the fewest buffered full-battery observations a
	// non-forced pass will train on (16).
	MinUtts int
	// Buffer caps the observation ring; older utterances fall off (4096).
	Buffer int
	// ShadowRate is the fraction of observed traffic retained for the
	// shadow-scoring gate (0.1).
	ShadowRate float64
	// ShadowBound vetoes promotion when the candidate's mean absolute
	// fused-score divergence from served traffic exceeds it (1).
	ShadowBound float64
	// EERBudget is the most the candidate's holdout EER may exceed the
	// serving model's, in percent points (0.5).
	EERBudget float64
	// CanaryTol is the largest absolute drift from the pinned referee
	// scores the canary (and the post-promotion probe) tolerates (5).
	CanaryTol float64
	// Keep is how many live generation directories survive the
	// post-promotion prune; the serving generation and last-known-good
	// are always pinned (4).
	Keep int
}

// DefaultPolicy returns the policy "-adapt=on" selects.
func DefaultPolicy() Policy {
	return Policy{
		Cadence:     5 * time.Minute,
		Probe:       30 * time.Second,
		Votes:       4,
		Method:      dba.M2,
		MinUtts:     16,
		Buffer:      4096,
		ShadowRate:  0.1,
		ShadowBound: 1,
		EERBudget:   0.5,
		CanaryTol:   5,
		Keep:        4,
	}
}

// policyKeys is the canonical key order String emits and ParsePolicy
// accepts.
var policyKeys = []string{
	"cadence", "probe", "votes", "method", "min-utts", "buffer",
	"shadow-rate", "shadow-bound", "eer-budget", "canary-tol", "keep",
}

// ParsePolicy parses a semicolon-separated key=value spec, e.g.
// "cadence=30s;votes=3;eer-budget=1". Empty spec, "on", and "default"
// select DefaultPolicy; unspecified keys keep their defaults. Every
// successfully parsed policy also passes Validate.
func ParsePolicy(spec string) (Policy, error) {
	p := DefaultPolicy()
	spec = strings.TrimSpace(spec)
	switch spec {
	case "", "on", "default":
		return p, nil
	}
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return p, fmt.Errorf("adapt: policy term %q is not key=value", part)
		}
		if seen[key] {
			return p, fmt.Errorf("adapt: duplicate policy key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "cadence":
			p.Cadence, err = parseDuration(val)
		case "probe":
			p.Probe, err = parseDuration(val)
		case "votes":
			p.Votes, err = parseInt(val)
		case "method":
			switch val {
			case "m1":
				p.Method = dba.M1
			case "m2":
				p.Method = dba.M2
			default:
				err = fmt.Errorf("want m1 or m2, got %q", val)
			}
		case "min-utts":
			p.MinUtts, err = parseInt(val)
		case "buffer":
			p.Buffer, err = parseInt(val)
		case "shadow-rate":
			p.ShadowRate, err = parseFloat(val)
		case "shadow-bound":
			p.ShadowBound, err = parseFloat(val)
		case "eer-budget":
			p.EERBudget, err = parseFloat(val)
		case "canary-tol":
			p.CanaryTol, err = parseFloat(val)
		case "keep":
			p.Keep, err = parseInt(val)
		default:
			return p, fmt.Errorf("adapt: unknown policy key %q (want one of %s)",
				key, strings.Join(policyKeys, ", "))
		}
		if err != nil {
			return p, fmt.Errorf("adapt: policy %s: %v", key, err)
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

func parseDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return d, nil
}

func parseInt(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return n, nil
}

func parseFloat(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return f, nil
}

// String renders the canonical spec: every key in policyKeys order, so
// ParsePolicy(p.String()) == p for any valid policy.
func (p Policy) String() string {
	method := "m2"
	if p.Method == dba.M1 {
		method = "m1"
	}
	fl := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	terms := []string{
		"cadence=" + p.Cadence.String(),
		"probe=" + p.Probe.String(),
		"votes=" + strconv.Itoa(p.Votes),
		"method=" + method,
		"min-utts=" + strconv.Itoa(p.MinUtts),
		"buffer=" + strconv.Itoa(p.Buffer),
		"shadow-rate=" + fl(p.ShadowRate),
		"shadow-bound=" + fl(p.ShadowBound),
		"eer-budget=" + fl(p.EERBudget),
		"canary-tol=" + fl(p.CanaryTol),
		"keep=" + strconv.Itoa(p.Keep),
	}
	return strings.Join(terms, ";")
}

// Validate checks the invariants the loop relies on; ParsePolicy runs it,
// so a parsed policy is always valid.
func (p Policy) Validate() error {
	if p.Cadence <= 0 {
		return fmt.Errorf("adapt: cadence must be positive, got %v", p.Cadence)
	}
	if p.Probe <= 0 {
		return fmt.Errorf("adapt: probe must be positive, got %v", p.Probe)
	}
	if p.Votes < 1 {
		return fmt.Errorf("adapt: votes must be >= 1, got %d", p.Votes)
	}
	if p.Method != dba.M1 && p.Method != dba.M2 {
		return fmt.Errorf("adapt: unknown method %v", p.Method)
	}
	if p.MinUtts < 1 {
		return fmt.Errorf("adapt: min-utts must be >= 1, got %d", p.MinUtts)
	}
	if p.Buffer < p.MinUtts {
		return fmt.Errorf("adapt: buffer (%d) must hold at least min-utts (%d)", p.Buffer, p.MinUtts)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"shadow-rate", p.ShadowRate},
		{"shadow-bound", p.ShadowBound},
		{"eer-budget", p.EERBudget},
		{"canary-tol", p.CanaryTol},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("adapt: %s must be finite, got %v", f.name, f.v)
		}
		if f.v < 0 {
			return fmt.Errorf("adapt: %s must be >= 0, got %v", f.name, f.v)
		}
	}
	if p.ShadowRate > 1 {
		return fmt.Errorf("adapt: shadow-rate must be in [0,1], got %v", p.ShadowRate)
	}
	if p.Keep < 1 {
		return fmt.Errorf("adapt: keep must be >= 1, got %d", p.Keep)
	}
	return nil
}

package dba_test

import (
	"fmt"

	"repro/internal/dba"
)

// ExampleVote demonstrates the paper's Eq. 13 criterion: a subsystem votes
// only when exactly its top language scores positive and every other
// language scores negative.
func ExampleVote() {
	fmt.Println(dba.Vote([]float64{1.2, -0.8, -0.3}))  // confident → language 0
	fmt.Println(dba.Vote([]float64{1.2, 0.4, -0.3}))   // two positives → abstain
	fmt.Println(dba.Vote([]float64{-0.2, -0.8, -0.3})) // none positive → abstain
	// Output:
	// 0
	// -1
	// -1
}

// ExampleSelect shows threshold-based T_DBA construction from vote tallies.
func ExampleSelect() {
	votes := [][]int{
		{5, 0, 1}, // utterance 0: 5 votes for language 0
		{0, 2, 0}, // utterance 1: only 2 votes
		{3, 3, 0}, // utterance 2: tie → skipped
	}
	for _, h := range dba.Select(votes, 3) {
		fmt.Printf("utterance %d labeled %d with %d votes\n", h.Utt, h.Label, h.Votes)
	}
	// Output:
	// utterance 0 labeled 0 with 5 votes
}

package dba

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/svm"
)

func TestRunIterativeOneRoundMatchesRun(t *testing.T) {
	r := rng.New(1)
	data, trainLabels, _ := synthData(r, 15, 12, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)
	cfg := Config{Threshold: 1, Method: M2, NumLangs: 3, SVMOptions: opt}

	single := Run(data, trainLabels, baseline, baseScores, cfg)
	iter := RunIterative(data, trainLabels, baseline, baseScores,
		IterativeConfig{Config: cfg, Rounds: 1}, nil)

	if len(iter.Rounds) != 1 {
		t.Fatalf("%d rounds", len(iter.Rounds))
	}
	if len(iter.Rounds[0].Selected) != len(single.Selected) {
		t.Fatalf("round-1 selection %d != single-pass %d",
			len(iter.Rounds[0].Selected), len(single.Selected))
	}
	for i, h := range iter.Rounds[0].Selected {
		if h != single.Selected[i] {
			t.Fatal("round-1 selection differs from single pass")
		}
	}
}

func TestRunIterativeMultipleRounds(t *testing.T) {
	r := rng.New(2)
	data, trainLabels, testLabels := synthData(r, 20, 15, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)
	cfg := IterativeConfig{
		Config: Config{Threshold: 1, Method: M2, NumLangs: 3, SVMOptions: opt},
		Rounds: 3,
	}
	out := RunIterative(data, trainLabels, baseline, baseScores, cfg, nil)
	if len(out.Rounds) != 3 {
		t.Fatalf("%d rounds", len(out.Rounds))
	}
	// Selection error should not explode across rounds on separable data.
	for _, rr := range out.Rounds {
		if err := SelectionErrorRate(rr.Selected, testLabels); err > 0.3 {
			t.Fatalf("round %d selection error %v", rr.Round, err)
		}
	}
	if out.Models == nil {
		t.Fatal("no final models")
	}
}

func TestRunIterativeStopsOnStableSelection(t *testing.T) {
	r := rng.New(3)
	data, trainLabels, _ := synthData(r, 20, 15, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)
	cfg := IterativeConfig{
		Config:       Config{Threshold: 1, Method: M2, NumLangs: 3, SVMOptions: opt},
		Rounds:       8,
		StopOnStable: true,
	}
	out := RunIterative(data, trainLabels, baseline, baseScores, cfg, nil)
	if len(out.Rounds) == 8 && !out.Stable {
		t.Log("selection never stabilized within 8 rounds (acceptable but unusual)")
	}
	if out.Stable && len(out.Rounds) < 2 {
		t.Fatal("stability can only be declared from round 2 on")
	}
}

func TestRunIterativeRecalibrateHookUsed(t *testing.T) {
	r := rng.New(4)
	data, trainLabels, _ := synthData(r, 15, 12, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)
	calls := 0
	hook := func(models []*svm.OneVsRest, scores [][][]float64) [][][]float64 {
		calls++
		return scores
	}
	RunIterative(data, trainLabels, baseline, baseScores, IterativeConfig{
		Config: Config{Threshold: 1, Method: M2, NumLangs: 3, SVMOptions: opt},
		Rounds: 3,
	}, hook)
	if calls != 2 { // rounds 1→2 and 2→3
		t.Fatalf("recalibrate called %d times, want 2", calls)
	}
}

func TestSameSelection(t *testing.T) {
	a := []Hypothesis{{Utt: 1, Label: 2}, {Utt: 3, Label: 0}}
	b := []Hypothesis{{Utt: 3, Label: 0}, {Utt: 1, Label: 2}} // order-free
	if !sameSelection(a, b) {
		t.Fatal("order should not matter")
	}
	c := []Hypothesis{{Utt: 1, Label: 1}, {Utt: 3, Label: 0}}
	if sameSelection(a, c) {
		t.Fatal("label change not detected")
	}
	if sameSelection(a, a[:1]) {
		t.Fatal("length change not detected")
	}
}

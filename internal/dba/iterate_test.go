package dba

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/svm"
)

func TestRunIterativeOneRoundMatchesRun(t *testing.T) {
	r := rng.New(1)
	data, trainLabels, _ := synthData(r, 15, 12, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)
	cfg := Config{Threshold: 1, Method: M2, NumLangs: 3, SVMOptions: opt}

	single := Run(data, trainLabels, baseline, baseScores, cfg)
	iter := RunIterative(data, trainLabels, baseline, baseScores,
		IterativeConfig{Config: cfg, Rounds: 1}, nil)

	if len(iter.Rounds) != 1 {
		t.Fatalf("%d rounds", len(iter.Rounds))
	}
	if len(iter.Rounds[0].Selected) != len(single.Selected) {
		t.Fatalf("round-1 selection %d != single-pass %d",
			len(iter.Rounds[0].Selected), len(single.Selected))
	}
	for i, h := range iter.Rounds[0].Selected {
		if h != single.Selected[i] {
			t.Fatal("round-1 selection differs from single pass")
		}
	}
}

func TestRunIterativeMultipleRounds(t *testing.T) {
	r := rng.New(2)
	data, trainLabels, testLabels := synthData(r, 20, 15, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)
	cfg := IterativeConfig{
		Config: Config{Threshold: 1, Method: M2, NumLangs: 3, SVMOptions: opt},
		Rounds: 3,
	}
	out := RunIterative(data, trainLabels, baseline, baseScores, cfg, nil)
	if len(out.Rounds) != 3 {
		t.Fatalf("%d rounds", len(out.Rounds))
	}
	// Selection error should not explode across rounds on separable data.
	for _, rr := range out.Rounds {
		if err := SelectionErrorRate(rr.Selected, testLabels); err > 0.3 {
			t.Fatalf("round %d selection error %v", rr.Round, err)
		}
	}
	if out.Models == nil {
		t.Fatal("no final models")
	}
}

func TestRunIterativeStopsOnStableSelection(t *testing.T) {
	r := rng.New(3)
	data, trainLabels, _ := synthData(r, 20, 15, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)
	cfg := IterativeConfig{
		Config:       Config{Threshold: 1, Method: M2, NumLangs: 3, SVMOptions: opt},
		Rounds:       8,
		StopOnStable: true,
	}
	out := RunIterative(data, trainLabels, baseline, baseScores, cfg, nil)
	if len(out.Rounds) == 8 && !out.Stable {
		t.Log("selection never stabilized within 8 rounds (acceptable but unusual)")
	}
	if out.Stable && len(out.Rounds) < 2 {
		t.Fatal("stability can only be declared from round 2 on")
	}
}

func TestRunIterativeRecalibrateHookUsed(t *testing.T) {
	r := rng.New(4)
	data, trainLabels, _ := synthData(r, 15, 12, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)
	calls := 0
	hook := func(models []*svm.OneVsRest, scores [][][]float64) [][][]float64 {
		calls++
		return scores
	}
	RunIterative(data, trainLabels, baseline, baseScores, IterativeConfig{
		Config: Config{Threshold: 1, Method: M2, NumLangs: 3, SVMOptions: opt},
		Rounds: 3,
	}, hook)
	if calls != 2 { // rounds 1→2 and 2→3
		t.Fatalf("recalibrate called %d times, want 2", calls)
	}
}

// memRoundCheckpoint is an in-memory RoundCheckpoint for the resume
// tests: rounds saved by one run are replayed by the next.
type memRoundCheckpoint struct {
	saved map[int]*iterSnap
	loads int
	saves int
	// stopAfter, when > 0, panics once that many rounds have been saved —
	// the simulated mid-run kill.
	stopAfter int
}

type iterSnap struct {
	rr     RoundResult
	models []*svm.OneVsRest
}

func (m *memRoundCheckpoint) LoadRound(round int) (*RoundResult, []*svm.OneVsRest, bool) {
	s, ok := m.saved[round]
	if !ok {
		return nil, nil, false
	}
	m.loads++
	rr := s.rr
	return &rr, s.models, true
}

func (m *memRoundCheckpoint) SaveRound(round int, rr *RoundResult, models []*svm.OneVsRest) {
	m.saved[round] = &iterSnap{rr: *rr, models: models}
	m.saves++
	if m.stopAfter > 0 && m.saves >= m.stopAfter {
		panic("memRoundCheckpoint: simulated crash")
	}
}

func scoresEqual(t *testing.T, a, b [][][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("subsystem count %d != %d", len(a), len(b))
	}
	for q := range a {
		if len(a[q]) != len(b[q]) {
			t.Fatalf("subsystem %d: %d rows != %d", q, len(a[q]), len(b[q]))
		}
		for j := range a[q] {
			for k := range a[q][j] {
				if a[q][j][k] != b[q][j][k] {
					t.Fatalf("score [%d][%d][%d] differs: %v != %v", q, j, k, a[q][j][k], b[q][j][k])
				}
			}
		}
	}
}

func TestRunIterativeResumeBitIdentical(t *testing.T) {
	r := rng.New(5)
	data, trainLabels, _ := synthData(r, 20, 15, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)
	base := IterativeConfig{
		Config: Config{Threshold: 1, Method: M2, NumLangs: 3, SVMOptions: opt},
		Rounds: 3,
	}

	// Reference: uninterrupted, no checkpointing.
	ref := RunIterative(data, trainLabels, baseline, baseScores, base, nil)

	// Run 1: dies after saving round 2 (of 3).
	ck := &memRoundCheckpoint{saved: make(map[int]*iterSnap), stopAfter: 2}
	killed := base
	killed.Checkpoint = ck
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("simulated crash did not fire")
			}
		}()
		RunIterative(data, trainLabels, baseline, baseScores, killed, nil)
	}()
	if len(ck.saved) != 2 {
		t.Fatalf("crashed run persisted %d rounds, want 2", len(ck.saved))
	}

	// Run 2: resumes from the two saved rounds, computes only round 3.
	ck.stopAfter = 0
	resumed := base
	resumed.Checkpoint = ck
	out := RunIterative(data, trainLabels, baseline, baseScores, resumed, nil)
	if ck.loads != 2 {
		t.Fatalf("resume replayed %d rounds, want 2", ck.loads)
	}
	if len(out.Rounds) != len(ref.Rounds) {
		t.Fatalf("resumed %d rounds, reference %d", len(out.Rounds), len(ref.Rounds))
	}
	for i := range ref.Rounds {
		a, b := ref.Rounds[i], out.Rounds[i]
		if a.Round != b.Round || len(a.Selected) != len(b.Selected) {
			t.Fatalf("round %d shape differs", i+1)
		}
		for j := range a.Selected {
			if a.Selected[j] != b.Selected[j] {
				t.Fatalf("round %d selection differs at %d", i+1, j)
			}
		}
		scoresEqual(t, a.Scores, b.Scores)
	}
}

func TestRunIterativeResumeStopsOnStable(t *testing.T) {
	// A resumed run must apply the StopOnStable check to replayed rounds
	// too: seed a checkpoint whose rounds 1 and 2 select identically and
	// verify the run stops at round 2 without computing anything.
	r := rng.New(6)
	data, trainLabels, _ := synthData(r, 15, 12, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)

	sel := []Hypothesis{{Utt: 0, Label: 1, Votes: 2}}
	ck := &memRoundCheckpoint{saved: map[int]*iterSnap{
		1: {rr: RoundResult{Round: 1, Selected: sel, Scores: baseScores}, models: baseline},
		2: {rr: RoundResult{Round: 2, Selected: sel, Scores: baseScores}, models: baseline},
	}}
	out := RunIterative(data, trainLabels, baseline, baseScores, IterativeConfig{
		Config:       Config{Threshold: 1, Method: M2, NumLangs: 3, SVMOptions: opt},
		Rounds:       5,
		StopOnStable: true,
		Checkpoint:   ck,
	}, nil)
	if !out.Stable {
		t.Fatal("replayed fixed point not detected")
	}
	if len(out.Rounds) != 2 {
		t.Fatalf("stopped after %d rounds, want 2", len(out.Rounds))
	}
}

func TestSameSelection(t *testing.T) {
	a := []Hypothesis{{Utt: 1, Label: 2}, {Utt: 3, Label: 0}}
	b := []Hypothesis{{Utt: 3, Label: 0}, {Utt: 1, Label: 2}} // order-free
	if !sameSelection(a, b) {
		t.Fatal("order should not matter")
	}
	c := []Hypothesis{{Utt: 1, Label: 1}, {Utt: 3, Label: 0}}
	if sameSelection(a, c) {
		t.Fatal("label change not detected")
	}
	if sameSelection(a, a[:1]) {
		t.Fatal("length change not detected")
	}
}

// Package dba implements the paper's contribution: the Discriminative
// Boosting Algorithm for phonotactic language recognition (Section 3).
//
// Given Q baseline subsystems (one per front-end) trained one-versus-rest
// on the original training set Tr, DBA proceeds:
//
//  1. Score every test utterance with every subsystem's K language models,
//     producing score matrices F_q (Eq. 8–9).
//  2. Each subsystem casts at most one vote per utterance: it votes for
//     language k iff its score for k is positive AND its highest score
//     among all other languages is negative (Eq. 13) — a high-confidence,
//     unambiguous one-vs-rest decision.
//  3. Votes are tallied across subsystems (Eq. 10–12). A test utterance
//     whose top language collects at least V votes enters T_DBA with that
//     language as its hypothesized label.
//  4. New training sets are assembled (step e): DBA-M1 retrains on T_DBA
//     alone; DBA-M2 on T_DBA ∪ Tr. Every subsystem's VSM is retrained and
//     the test set rescored — reusing the cached supervectors, so the only
//     added cost is SVM training (the paper's Eq. 18–19).
//
// The package is deliberately independent of the decoding stack: it
// operates on supervectors and score matrices, so both the simulated and
// the acoustic front-ends drive it.
package dba

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// Method selects how the DBA training set is assembled (paper step e).
type Method int

// DBA variants: M1 uses only the selected test data; M2 appends it to the
// original training set.
const (
	M1 Method = iota
	M2
)

func (m Method) String() string {
	switch m {
	case M1:
		return "DBA-M1"
	case M2:
		return "DBA-M2"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Vote applies the Eq. 13 criterion to one subsystem's score row: it
// returns the voted language, or −1 when the row is not a high-confidence
// unambiguous decision (no positive score, several positive scores, or the
// runner-up non-target score is not negative).
func Vote(scores []float64) int {
	if len(scores) == 0 {
		return -1
	}
	best := 0
	for k, v := range scores {
		if v > scores[best] {
			best = k
		}
	}
	if scores[best] <= 0 {
		return -1
	}
	for k, v := range scores {
		if k != best && v >= 0 {
			return -1
		}
	}
	return best
}

// CountVotes tallies the votes-counting matrix C_v (Eq. 10–12) from the Q
// subsystems' score matrices. scoreMats[q][j][k] is subsystem q's score
// for test utterance j against language k. The result is votes[j][k].
func CountVotes(scoreMats [][][]float64) [][]int {
	if len(scoreMats) == 0 {
		return nil
	}
	m := len(scoreMats[0])
	k := 0
	if m > 0 {
		k = len(scoreMats[0][0])
	}
	votes := make([][]int, m)
	for j := range votes {
		votes[j] = make([]int, k)
	}
	for _, f := range scoreMats {
		if len(f) != m {
			panic("dba: subsystems scored different test-set sizes")
		}
		for j, row := range f {
			if v := Vote(row); v >= 0 {
				votes[j][v]++
			}
		}
	}
	return votes
}

// Hypothesis is one selected test utterance with its voted label.
type Hypothesis struct {
	Utt   int // index into the test set
	Label int
	Votes int
}

// Select applies the threshold (paper step e): utterance j enters T_DBA
// with label k when c_jk ≥ threshold and k is the unique argmax of its
// vote row (ties are ambiguous and skipped).
func Select(votes [][]int, threshold int) []Hypothesis {
	var out []Hypothesis
	for j, row := range votes {
		best, bestV, tie := -1, 0, false
		for k, c := range row {
			switch {
			case c > bestV:
				best, bestV, tie = k, c, false
			case c == bestV && c > 0:
				tie = true
			}
		}
		if best >= 0 && !tie && bestV >= threshold {
			out = append(out, Hypothesis{Utt: j, Label: best, Votes: bestV})
		}
	}
	return out
}

// SubsystemData is the per-front-end input to a DBA run: cached train and
// test supervectors in that front-end's feature space.
type SubsystemData struct {
	Name string
	Dim  int
	// Train[i] pairs with the shared TrainLabels; Test[j] with the shared
	// test order that score matrices and votes use.
	Train []*sparse.Vector
	Test  []*sparse.Vector
}

// Config parameterizes a DBA run.
type Config struct {
	Threshold  int
	Method     Method
	NumLangs   int
	SVMOptions svm.Options
	// Span, when non-nil, nests the run's trace under a caller span
	// (RunIterative's per-round spans use this); nil makes the run a trace
	// root of its own.
	Span *obs.Span
}

// Outcome is the result of one DBA pass.
type Outcome struct {
	// BaselineScores[q][j][k]: first-pass score matrices (Eq. 8–9).
	BaselineScores [][][]float64
	// Votes[j][k]: the tally C_v.
	Votes [][]int
	// Selected is T_DBA (test indices + hypothesized labels).
	Selected []Hypothesis
	// Retrained[q]: second-pass models per subsystem.
	Retrained []*svm.OneVsRest
	// Scores[q][j][k]: second-pass score matrices.
	Scores [][][]float64
}

// TrainBaseline trains the Q baseline subsystems on the original training
// set (paper steps a–b).
func TrainBaseline(data []*SubsystemData, trainLabels []int, numLangs int, opt svm.Options) []*svm.OneVsRest {
	models := make([]*svm.OneVsRest, len(data))
	for q, d := range data {
		qopt := opt
		qopt.Seed = opt.Seed + uint64(q)*104729
		models[q] = svm.TrainOVR(d.Train, trainLabels, numLangs, d.Dim, qopt)
	}
	return models
}

// ScoreAll computes every subsystem's test score matrix (paper step c).
func ScoreAll(models []*svm.OneVsRest, data []*SubsystemData) [][][]float64 {
	out := make([][][]float64, len(models))
	for q, mdl := range models {
		// ScoreAll runs the packed one-pass kernel over the "score" pool
		// with a single flat arena per subsystem.
		out[q] = mdl.ScoreAll(data[q].Test)
	}
	return out
}

// BuildTrainingSet assembles the retraining data for one subsystem from
// the selection (paper step e): the selected test vectors with their
// hypothesized labels, plus the original training set under DBA-M2.
func BuildTrainingSet(d *SubsystemData, trainLabels []int, sel []Hypothesis, method Method) (xs []*sparse.Vector, ys []int) {
	xs = make([]*sparse.Vector, 0, len(sel)+len(d.Train))
	ys = make([]int, 0, len(sel)+len(d.Train))
	for _, h := range sel {
		xs = append(xs, d.Test[h.Utt])
		ys = append(ys, h.Label)
	}
	if method == M2 {
		xs = append(xs, d.Train...)
		ys = append(ys, trainLabels...)
	}
	return xs, ys
}

// Run executes the full DBA pass given already-trained baseline models and
// their first-pass score matrices (so sweeps over V and Method reuse the
// baseline work, as the algorithm itself does).
func Run(data []*SubsystemData, trainLabels []int, baseline []*svm.OneVsRest,
	baselineScores [][][]float64, cfg Config) *Outcome {

	sp := obs.ChildOf(cfg.Span, "dba.run")
	defer sp.End()
	sp.SetLabel("method", cfg.Method.String())
	sp.SetAttr("threshold", float64(cfg.Threshold))

	voteSp := sp.StartChild("vote")
	votes := CountVotes(baselineScores)
	sel := Select(votes, cfg.Threshold)
	voteSp.SetAttr("selected", float64(len(sel)))
	voteSp.End()
	// Accept/reject accounting: a candidate is one test utterance per pass.
	if m := len(votes); m > 0 {
		obs.Add("dba.select.accepted", int64(len(sel)))
		obs.Add("dba.select.rejected", int64(m-len(sel)))
	}
	sp.SetAttr("selected", float64(len(sel)))

	o := &Outcome{
		BaselineScores: baselineScores,
		Votes:          votes,
		Selected:       sel,
		Retrained:      make([]*svm.OneVsRest, len(data)),
	}
	if len(sel) == 0 {
		// Nothing selected: DBA degenerates to the baseline (M2) or to an
		// untrainable set (M1); keep the baseline models in both cases so
		// downstream scoring stays well-defined.
		o.Retrained = baseline
		o.Scores = baselineScores
		return o
	}
	retrainSp := sp.StartChild("retrain")
	for q, d := range data {
		xs, ys := BuildTrainingSet(d, trainLabels, sel, cfg.Method)
		qopt := cfg.SVMOptions
		qopt.Seed = cfg.SVMOptions.Seed + 7_000_003 + uint64(q)*104729
		o.Retrained[q] = svm.TrainOVR(xs, ys, cfg.NumLangs, d.Dim, qopt)
	}
	retrainSp.SetAttr("subsystems", float64(len(data)))
	retrainSp.End()

	rescoreSp := sp.StartChild("rescore")
	o.Scores = ScoreAll(o.Retrained, data)
	rescoreSp.End()
	return o
}

// SelectionErrorRate measures the label error of T_DBA against ground
// truth (Table 1's "error rate" column).
func SelectionErrorRate(sel []Hypothesis, trueLabels []int) float64 {
	if len(sel) == 0 {
		return 0
	}
	wrong := 0
	for _, h := range sel {
		if trueLabels[h.Utt] != h.Label {
			wrong++
		}
	}
	return float64(wrong) / float64(len(sel))
}

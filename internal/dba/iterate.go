package dba

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/svm"
)

// IterativeConfig controls multi-round DBA. The paper runs a single
// boosting pass (steps a–f); its step f ("repeat steps a–c with the
// updated training database") invites iteration, which we implement as an
// extension: each round re-votes with the retrained subsystems, reselects
// T_DBA, and retrains again. Rounds stop early when the selection
// stabilizes (the fixed point of the self-training operator).
type IterativeConfig struct {
	Config
	// Rounds caps the number of boosting rounds (≥ 1; 1 reproduces the
	// paper exactly).
	Rounds int
	// StopOnStable terminates when a round selects the same utterance set
	// with the same labels as the previous one.
	StopOnStable bool
}

// RoundResult records one boosting round.
type RoundResult struct {
	Round    int
	Selected []Hypothesis
	// ErrorRate is filled by the caller when truth is available.
	Scores [][][]float64
}

// IterativeOutcome is the result of RunIterative.
type IterativeOutcome struct {
	Rounds []RoundResult
	// Final models after the last round.
	Models []*svm.OneVsRest
	// Stable reports whether the selection reached a fixed point.
	Stable bool
}

// RunIterative performs multi-round DBA. Round 1 votes with the provided
// baseline scores (identical to Run); round r > 1 votes with round r−1's
// retrained scores, calibrated by the caller-provided recalibrate hook
// (pass nil to vote on raw second-pass scores).
func RunIterative(data []*SubsystemData, trainLabels []int, baseline []*svm.OneVsRest,
	baselineScores [][][]float64, cfg IterativeConfig,
	recalibrate func(models []*svm.OneVsRest, scores [][][]float64) [][][]float64) *IterativeOutcome {

	if cfg.Rounds < 1 {
		cfg.Rounds = 1
	}
	iterSp := obs.ChildOf(cfg.Span, "dba.iterate")
	defer iterSp.End()
	iterSp.SetLabel("method", cfg.Method.String())
	iterSp.SetAttr("max_rounds", float64(cfg.Rounds))

	out := &IterativeOutcome{}
	models := baseline
	voteScores := baselineScores
	var prev []Hypothesis
	for round := 1; round <= cfg.Rounds; round++ {
		roundSp := iterSp.StartChild(fmt.Sprintf("dba.round-%d", round))
		roundCfg := cfg.Config
		roundCfg.Span = roundSp
		o := Run(data, trainLabels, models, voteScores, roundCfg)
		roundSp.SetAttr("selected", float64(len(o.Selected)))
		roundSp.End()
		obs.Inc("dba.rounds")
		out.Rounds = append(out.Rounds, RoundResult{
			Round:    round,
			Selected: o.Selected,
			Scores:   o.Scores,
		})
		models = o.Retrained
		if cfg.StopOnStable && sameSelection(prev, o.Selected) {
			out.Stable = true
			break
		}
		prev = o.Selected
		if round < cfg.Rounds {
			voteScores = o.Scores
			if recalibrate != nil {
				voteScores = recalibrate(models, o.Scores)
			}
		}
	}
	out.Models = models
	iterSp.SetAttr("rounds", float64(len(out.Rounds)))
	return out
}

func sameSelection(a, b []Hypothesis) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[[2]int]bool, len(a))
	for _, h := range a {
		seen[[2]int{h.Utt, h.Label}] = true
	}
	for _, h := range b {
		if !seen[[2]int{h.Utt, h.Label}] {
			return false
		}
	}
	return true
}

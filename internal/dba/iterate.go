package dba

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/svm"
)

// IterativeConfig controls multi-round DBA. The paper runs a single
// boosting pass (steps a–f); its step f ("repeat steps a–c with the
// updated training database") invites iteration, which we implement as an
// extension: each round re-votes with the retrained subsystems, reselects
// T_DBA, and retrains again. Rounds stop early when the selection
// stabilizes (the fixed point of the self-training operator).
type IterativeConfig struct {
	Config
	// Rounds caps the number of boosting rounds (≥ 1; 1 reproduces the
	// paper exactly).
	Rounds int
	// StopOnStable terminates when a round selects the same utterance set
	// with the same labels as the previous one.
	StopOnStable bool
	// Checkpoint, when non-nil, persists each completed round and lets a
	// resumed run skip straight past rounds it already finished. A loaded
	// round replays the exact post-round state transitions (model swap,
	// stability check, recalibrated vote scores), so a resumed run is
	// bit-identical to an uninterrupted one.
	Checkpoint RoundCheckpoint
}

// RoundCheckpoint is the hook RunIterative uses to persist round
// boundaries. LoadRound returns the stored result and retrained models
// for a round, or ok=false when the round must be computed. SaveRound is
// called after each computed round; implementations decide cadence and
// must not fail the run (log and continue).
type RoundCheckpoint interface {
	LoadRound(round int) (rr *RoundResult, models []*svm.OneVsRest, ok bool)
	SaveRound(round int, rr *RoundResult, models []*svm.OneVsRest)
}

// RoundResult records one boosting round.
type RoundResult struct {
	Round    int
	Selected []Hypothesis
	// ErrorRate is filled by the caller when truth is available.
	Scores [][][]float64
}

// IterativeOutcome is the result of RunIterative.
type IterativeOutcome struct {
	Rounds []RoundResult
	// Final models after the last round.
	Models []*svm.OneVsRest
	// Stable reports whether the selection reached a fixed point.
	Stable bool
}

// RunIterative performs multi-round DBA. Round 1 votes with the provided
// baseline scores (identical to Run); round r > 1 votes with round r−1's
// retrained scores, calibrated by the caller-provided recalibrate hook
// (pass nil to vote on raw second-pass scores).
func RunIterative(data []*SubsystemData, trainLabels []int, baseline []*svm.OneVsRest,
	baselineScores [][][]float64, cfg IterativeConfig,
	recalibrate func(models []*svm.OneVsRest, scores [][][]float64) [][][]float64) *IterativeOutcome {

	if cfg.Rounds < 1 {
		cfg.Rounds = 1
	}
	iterSp := obs.ChildOf(cfg.Span, "dba.iterate")
	defer iterSp.End()
	iterSp.SetLabel("method", cfg.Method.String())
	iterSp.SetAttr("max_rounds", float64(cfg.Rounds))

	out := &IterativeOutcome{}
	models := baseline
	voteScores := baselineScores
	var prev []Hypothesis
	for round := 1; round <= cfg.Rounds; round++ {
		var rr RoundResult
		if cfg.Checkpoint != nil {
			if loaded, loadedModels, ok := cfg.Checkpoint.LoadRound(round); ok {
				// Replay the round from its checkpoint: same RoundResult,
				// same retrained models, and exactly the same post-round
				// transitions as the computed path below.
				obs.Inc("dba.rounds.resumed")
				out.Rounds = append(out.Rounds, *loaded)
				models = loadedModels
				if cfg.StopOnStable && sameSelection(prev, loaded.Selected) {
					out.Stable = true
					break
				}
				prev = loaded.Selected
				if round < cfg.Rounds {
					voteScores = loaded.Scores
					if recalibrate != nil {
						voteScores = recalibrate(models, loaded.Scores)
					}
				}
				continue
			}
		}
		roundSp := iterSp.StartChild(fmt.Sprintf("dba.round-%d", round))
		roundCfg := cfg.Config
		roundCfg.Span = roundSp
		o := Run(data, trainLabels, models, voteScores, roundCfg)
		roundSp.SetAttr("selected", float64(len(o.Selected)))
		roundSp.End()
		obs.Inc("dba.rounds")
		rr = RoundResult{
			Round:    round,
			Selected: o.Selected,
			Scores:   o.Scores,
		}
		out.Rounds = append(out.Rounds, rr)
		models = o.Retrained
		if cfg.Checkpoint != nil {
			cfg.Checkpoint.SaveRound(round, &rr, models)
		}
		if cfg.StopOnStable && sameSelection(prev, o.Selected) {
			out.Stable = true
			break
		}
		prev = o.Selected
		if round < cfg.Rounds {
			voteScores = o.Scores
			if recalibrate != nil {
				voteScores = recalibrate(models, o.Scores)
			}
		}
	}
	out.Models = models
	iterSp.SetAttr("rounds", float64(len(out.Rounds)))
	return out
}

func sameSelection(a, b []Hypothesis) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[[2]int]bool, len(a))
	for _, h := range a {
		seen[[2]int{h.Utt, h.Label}] = true
	}
	for _, h := range b {
		if !seen[[2]int{h.Utt, h.Label}] {
			return false
		}
	}
	return true
}

package dba

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
)

func TestVoteCriterion(t *testing.T) {
	cases := []struct {
		scores []float64
		want   int
	}{
		{[]float64{0.8, -0.5, -0.3}, 0},   // confident
		{[]float64{-0.1, -0.5, -0.3}, -1}, // no positive score
		{[]float64{0.8, 0.2, -0.3}, -1},   // second language also positive
		{[]float64{0.8, 0.0, -0.3}, -1},   // runner-up not strictly negative
		{[]float64{-0.2, 1.5, -0.9}, 1},
		{nil, -1},
	}
	for i, c := range cases {
		if got := Vote(c.scores); got != c.want {
			t.Errorf("case %d: Vote(%v) = %d, want %d", i, c.scores, got, c.want)
		}
	}
}

func TestMethodString(t *testing.T) {
	if M1.String() != "DBA-M1" || M2.String() != "DBA-M2" {
		t.Fatal("Method.String wrong")
	}
}

func TestCountVotes(t *testing.T) {
	// 3 subsystems, 2 utterances, 3 languages.
	f := func(rows ...[]float64) [][]float64 { return rows }
	mats := [][][]float64{
		f([]float64{1, -1, -1}, []float64{-1, 1, -1}),  // votes: u0→0, u1→1
		f([]float64{1, -1, -1}, []float64{-1, -1, -1}), // votes: u0→0, u1→none
		f([]float64{1, 1, -1}, []float64{-1, 1, -1}),   // votes: u0→none, u1→1
	}
	votes := CountVotes(mats)
	if votes[0][0] != 2 || votes[0][1] != 0 {
		t.Fatalf("votes[0] = %v", votes[0])
	}
	if votes[1][1] != 2 {
		t.Fatalf("votes[1] = %v", votes[1])
	}
}

func TestSelect(t *testing.T) {
	votes := [][]int{
		{3, 0, 0}, // selected at V≤3
		{1, 0, 0}, // only at V=1
		{0, 0, 0}, // never
		{2, 2, 0}, // tie → never
	}
	sel3 := Select(votes, 3)
	if len(sel3) != 1 || sel3[0].Utt != 0 || sel3[0].Label != 0 || sel3[0].Votes != 3 {
		t.Fatalf("Select V=3: %+v", sel3)
	}
	sel1 := Select(votes, 1)
	if len(sel1) != 2 {
		t.Fatalf("Select V=1 picked %d", len(sel1))
	}
	if len(Select(votes, 4)) != 0 {
		t.Fatal("Select V=4 should be empty")
	}
}

func TestSelectMonotoneInThreshold(t *testing.T) {
	r := rng.New(1)
	votes := make([][]int, 200)
	for j := range votes {
		row := make([]int, 5)
		row[r.Intn(5)] = r.Intn(7)
		votes[j] = row
	}
	prev := len(Select(votes, 1))
	for v := 2; v <= 6; v++ {
		cur := len(Select(votes, v))
		if cur > prev {
			t.Fatalf("selection grew from V=%d (%d) to V=%d (%d)", v-1, prev, v, cur)
		}
		prev = cur
	}
}

func TestSelectionErrorRate(t *testing.T) {
	sel := []Hypothesis{{Utt: 0, Label: 1}, {Utt: 1, Label: 2}, {Utt: 2, Label: 0}}
	truth := []int{1, 2, 1}
	if got := SelectionErrorRate(sel, truth); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("error rate = %v", got)
	}
	if SelectionErrorRate(nil, truth) != 0 {
		t.Fatal("empty selection should have zero error")
	}
}

// synthData builds a small synthetic 3-language problem over 2 subsystems
// where test data is slightly shifted (domain mismatch) — enough structure
// to exercise the full Run pipeline.
func synthData(r *rng.RNG, nTrainPer, nTestPer, numLangs int) (data []*SubsystemData, trainLabels, testLabels []int) {
	dim := 20
	mkVec := func(lang, sub int, shift float64) *sparse.Vector {
		x := make([]float64, dim)
		for d := 0; d < dim; d++ {
			x[d] = 0.2 * r.Norm()
		}
		// Language signature dims differ per subsystem.
		base := (lang*3 + sub*7) % (dim - 3)
		x[base] += 1.5 + shift
		x[base+1] += 1.0
		return sparse.FromDense(x)
	}
	for sub := 0; sub < 2; sub++ {
		d := &SubsystemData{Name: "S", Dim: dim}
		data = append(data, d)
	}
	for lang := 0; lang < numLangs; lang++ {
		for i := 0; i < nTrainPer; i++ {
			for sub := 0; sub < 2; sub++ {
				data[sub].Train = append(data[sub].Train, mkVec(lang, sub, 0))
			}
			trainLabels = append(trainLabels, lang)
		}
	}
	for lang := 0; lang < numLangs; lang++ {
		for i := 0; i < nTestPer; i++ {
			for sub := 0; sub < 2; sub++ {
				data[sub].Test = append(data[sub].Test, mkVec(lang, sub, -0.4))
			}
			testLabels = append(testLabels, lang)
		}
	}
	return data, trainLabels, testLabels
}

func TestRunEndToEnd(t *testing.T) {
	r := rng.New(2)
	data, trainLabels, testLabels := synthData(r, 20, 15, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)

	cfg := Config{Threshold: 2, Method: M2, NumLangs: 3, SVMOptions: opt}
	o := Run(data, trainLabels, baseline, baseScores, cfg)

	if len(o.Selected) == 0 {
		t.Fatal("nothing selected at V=2 on separable data")
	}
	// Selection labels should be mostly right.
	if err := SelectionErrorRate(o.Selected, testLabels); err > 0.2 {
		t.Fatalf("selection error rate %v", err)
	}
	// Second-pass accuracy must not collapse.
	correct := 0
	for j, row := range o.Scores[0] {
		best := 0
		for k, v := range row {
			if v > row[best] {
				best = k
			}
		}
		if best == testLabels[j] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(testLabels))
	if acc < 0.8 {
		t.Fatalf("post-DBA accuracy %v", acc)
	}
}

func TestRunEmptySelectionFallsBack(t *testing.T) {
	r := rng.New(3)
	data, trainLabels, _ := synthData(r, 10, 5, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)
	cfg := Config{Threshold: 99, Method: M1, NumLangs: 3, SVMOptions: opt}
	o := Run(data, trainLabels, baseline, baseScores, cfg)
	if len(o.Selected) != 0 {
		t.Fatal("threshold 99 selected something")
	}
	for q := range o.Retrained {
		if o.Retrained[q] != baseline[q] {
			t.Fatal("empty selection should fall back to baseline models")
		}
	}
}

func TestBuildTrainingSetMethods(t *testing.T) {
	d := &SubsystemData{
		Dim:   2,
		Train: []*sparse.Vector{sparse.FromDense([]float64{1, 0})},
		Test: []*sparse.Vector{
			sparse.FromDense([]float64{0, 1}),
			sparse.FromDense([]float64{1, 1}),
		},
	}
	sel := []Hypothesis{{Utt: 1, Label: 4}}
	xs1, ys1 := BuildTrainingSet(d, []int{7}, sel, M1)
	if len(xs1) != 1 || ys1[0] != 4 || xs1[0] != d.Test[1] {
		t.Fatalf("M1 set: %d items, labels %v", len(xs1), ys1)
	}
	xs2, ys2 := BuildTrainingSet(d, []int{7}, sel, M2)
	if len(xs2) != 2 || ys2[0] != 4 || ys2[1] != 7 {
		t.Fatalf("M2 set: %d items, labels %v", len(xs2), ys2)
	}
}

func TestM1UsesOnlyTestData(t *testing.T) {
	r := rng.New(4)
	data, trainLabels, _ := synthData(r, 10, 20, 3)
	opt := svm.DefaultOptions()
	baseline := TrainBaseline(data, trainLabels, 3, opt)
	baseScores := ScoreAll(baseline, data)
	o := Run(data, trainLabels, baseline, baseScores,
		Config{Threshold: 1, Method: M1, NumLangs: 3, SVMOptions: opt})
	// M1 must produce genuinely retrained models, not the baseline.
	if len(o.Selected) == 0 {
		t.Skip("nothing selected; cannot compare")
	}
	for q := range o.Retrained {
		if o.Retrained[q] == baseline[q] {
			t.Fatal("M1 returned baseline model despite selection")
		}
	}
}

func TestVotesBounded(t *testing.T) {
	// Σ_k votes[j][k] ≤ Q: each subsystem casts at most one vote.
	r := rng.New(5)
	q := 4
	mats := make([][][]float64, q)
	for s := range mats {
		mats[s] = make([][]float64, 50)
		for j := range mats[s] {
			row := make([]float64, 6)
			for k := range row {
				row[k] = r.Norm()
			}
			mats[s][j] = row
		}
	}
	votes := CountVotes(mats)
	for j, row := range votes {
		total := 0
		for _, c := range row {
			total += c
		}
		if total > q {
			t.Fatalf("utterance %d has %d votes from %d subsystems", j, total, q)
		}
	}
}

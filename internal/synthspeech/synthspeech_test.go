package synthspeech

import (
	"math"
	"testing"

	"repro/internal/feats"
	"repro/internal/phones"
	"repro/internal/rng"
	"repro/internal/synthlang"
)

func sampleUtterance(t *testing.T, seed uint64, durS float64, ch synthlang.Channel) *synthlang.Utterance {
	t.Helper()
	langs := synthlang.Generate(synthlang.DefaultConfig(), 42)
	r := rng.New(seed)
	spk := synthlang.NewSpeaker(r, 0)
	return langs[0].Sample(r, durS, spk, ch)
}

func TestRenderLength(t *testing.T) {
	u := sampleUtterance(t, 1, 3, synthlang.ChannelCTSClean)
	s := New()
	wav := s.Render(rng.New(2), u)
	wantSamples := u.TotalDurMs() / 1000 * SampleRate
	if math.Abs(float64(len(wav))-wantSamples) > float64(len(u.Segments)) {
		t.Fatalf("rendered %d samples, expected ~%v", len(wav), wantSamples)
	}
}

func TestRenderFiniteAndNormalized(t *testing.T) {
	u := sampleUtterance(t, 3, 3, synthlang.ChannelCTSNoisy)
	wav := New().Render(rng.New(4), u)
	var e float64
	for _, v := range wav {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite sample")
		}
		e += v * v
	}
	rms := math.Sqrt(e / float64(len(wav)))
	if math.Abs(rms-0.3) > 0.01 {
		t.Fatalf("RMS = %v, want 0.3", rms)
	}
}

func TestRenderDeterministic(t *testing.T) {
	u := sampleUtterance(t, 5, 3, synthlang.ChannelCTSClean)
	a := New().Render(rng.New(7), u)
	b := New().Render(rng.New(7), u)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("rendering not deterministic")
		}
	}
}

func TestVowelsCarryFormantStructure(t *testing.T) {
	// Rendering a front vowel vs a back vowel should produce features an
	// extractor can tell apart. Build single-segment utterances directly.
	inv := phones.Universal()
	var frontV, backV int = -1, -1
	for _, p := range inv {
		if p.Class == phones.Vowel {
			if p.F2 >= 2100 && frontV < 0 {
				frontV = p.ID
			}
			if p.F2 <= 900 && backV < 0 {
				backV = p.ID
			}
		}
	}
	if frontV < 0 || backV < 0 {
		t.Fatal("missing test vowels")
	}
	mk := func(id int) *synthlang.Utterance {
		return &synthlang.Utterance{
			Segments: []synthlang.Segment{{Phone: id, DurMs: 500}},
			Speaker:  synthlang.SpeakerProfile{Rate: 1, PitchHz: 120},
			Channel:  synthlang.ChannelCTSClean,
		}
	}
	s := New()
	e := feats.NewExtractor(feats.DefaultConfig())
	fa := e.MFCC(s.Render(rng.New(1), mk(frontV)))
	fb := e.MFCC(s.Render(rng.New(1), mk(backV)))
	var dist float64
	mid := len(fa) / 2
	for j := 1; j < 13; j++ {
		d := fa[mid][j] - fb[mid][j]
		dist += d * d
	}
	if math.Sqrt(dist) < 0.5 {
		t.Fatalf("front/back vowels indistinct in MFCC space: %v", math.Sqrt(dist))
	}
}

func TestChannelsDiffer(t *testing.T) {
	u := sampleUtterance(t, 9, 3, synthlang.ChannelCTSClean)
	clean := New().Render(rng.New(1), u)
	u.Channel = synthlang.ChannelCTSNoisy
	noisy := New().Render(rng.New(1), u)
	// Same underlying phones, different channel → different waveforms.
	var diff float64
	n := len(clean)
	if len(noisy) < n {
		n = len(noisy)
	}
	for i := 0; i < n; i++ {
		diff += math.Abs(clean[i] - noisy[i])
	}
	if diff/float64(n) < 1e-3 {
		t.Fatal("channel conditions produce near-identical audio")
	}
}

func TestFrameLabels(t *testing.T) {
	u := &synthlang.Utterance{
		Segments: []synthlang.Segment{
			{Phone: 3, DurMs: 100},
			{Phone: 7, DurMs: 200},
		},
		Speaker: synthlang.SpeakerProfile{Rate: 1, PitchHz: 120},
	}
	labels := FrameLabels(u, 10, 25)
	if len(labels) == 0 {
		t.Fatal("no labels")
	}
	// Early frames label phone 3, later frames phone 7.
	if labels[0] != 3 {
		t.Fatalf("first label %d", labels[0])
	}
	if labels[len(labels)-1] != 7 {
		t.Fatalf("last label %d", labels[len(labels)-1])
	}
	// Boundary roughly at 100 ms → frame index ~ (100−12.5)/10 ≈ 8-10.
	var boundary int
	for i, l := range labels {
		if l == 7 {
			boundary = i
			break
		}
	}
	if boundary < 7 || boundary > 11 {
		t.Fatalf("phone boundary at frame %d, want ≈9", boundary)
	}
}

func TestFrameLabelCountMatchesFeatureFrames(t *testing.T) {
	u := sampleUtterance(t, 11, 3, synthlang.ChannelCTSClean)
	wav := New().Render(rng.New(2), u)
	e := feats.NewExtractor(feats.DefaultConfig())
	fr := e.MFCC(wav)
	labels := FrameLabels(u, 10, 25)
	// Allow small mismatch from rounding segment durations to samples.
	if math.Abs(float64(len(fr)-len(labels))) > 3 {
		t.Fatalf("%d feature frames vs %d labels", len(fr), len(labels))
	}
}

func TestSilencePhonesAreQuiet(t *testing.T) {
	inv := phones.Universal()
	var sil int = -1
	for _, p := range inv {
		if p.Class == phones.Silence {
			sil = p.ID
			break
		}
	}
	u := &synthlang.Utterance{
		Segments: []synthlang.Segment{{Phone: sil, DurMs: 300}},
		Speaker:  synthlang.SpeakerProfile{Rate: 1, PitchHz: 120},
		Channel:  synthlang.ChannelCTSClean,
	}
	// Render without normalization visibility: compare silence energy to a
	// vowel's pre-normalization by mixing both in one utterance.
	var vowel int
	for _, p := range inv {
		if p.Class == phones.Vowel {
			vowel = p.ID
			break
		}
	}
	u.Segments = append(u.Segments, synthlang.Segment{Phone: vowel, DurMs: 300})
	wav := New().Render(rng.New(3), u)
	half := len(wav) / 2
	var eSil, eVow float64
	for i := 0; i < half; i++ {
		eSil += wav[i] * wav[i]
	}
	for i := half; i < len(wav); i++ {
		eVow += wav[i] * wav[i]
	}
	if eVow < 5*eSil {
		t.Fatalf("vowel energy (%v) not ≫ silence energy (%v)", eVow, eSil)
	}
}

func TestRenderedPitchMatchesSpeaker(t *testing.T) {
	// Autocorrelation of a rendered vowel should peak at the speaker's
	// glottal period.
	inv := phones.Universal()
	var vowel int = -1
	for _, p := range inv {
		if p.Class == phones.Vowel {
			vowel = p.ID
			break
		}
	}
	for _, pitch := range []float64{100, 200} {
		u := &synthlang.Utterance{
			Segments: []synthlang.Segment{{Phone: vowel, DurMs: 400}},
			Speaker:  synthlang.SpeakerProfile{Rate: 1, PitchHz: pitch},
			Channel:  synthlang.ChannelCTSClean,
		}
		wav := New().Render(rng.New(1), u)
		// Autocorrelation over the steady middle portion.
		mid := wav[len(wav)/4 : 3*len(wav)/4]
		period := float64(SampleRate) / pitch
		lo, hi := int(period*0.85), int(period*1.15)
		bestLag, bestV := 0, -1.0
		for lag := int(period * 0.5); lag < int(period*1.6); lag++ {
			var s float64
			for i := lag; i < len(mid); i++ {
				s += mid[i] * mid[i-lag]
			}
			if s > bestV {
				bestV, bestLag = s, lag
			}
		}
		if bestLag < lo || bestLag > hi {
			t.Fatalf("pitch %v Hz: autocorrelation peak at lag %d, want ≈%.0f",
				pitch, bestLag, period)
		}
	}
}

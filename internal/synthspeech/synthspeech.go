// Package synthspeech renders synthetic utterances as 8 kHz waveforms
// using a small formant synthesizer: voiced phones are an impulse train at
// the speaker's pitch shaped by three second-order resonators at the
// phone's formant targets; voiceless obstruents are shaped noise; silence
// is near-silence. Channel conditions add telephone band-limiting and
// condition-dependent noise.
//
// This is the "real acoustic path" of the reproduction: it exists so the
// full pipeline — waveform → MFCC/PLP → GMM/HMM or MLP decoding → lattice →
// supervector — can be exercised end-to-end (integration tests, the
// acousticpath example, and the Table 5 real-time-factor benchmarks),
// standing in for the telephone audio behind the paper's closed corpora.
package synthspeech

import (
	"math"

	"repro/internal/phones"
	"repro/internal/rng"
	"repro/internal/synthlang"
)

// SampleRate is the telephone-band sample rate used throughout.
const SampleRate = 8000

// resonator is a two-pole IIR bandpass section.
type resonator struct {
	b0, a1, a2 float64
	y1, y2     float64
}

func newResonator(freqHz, bandwidthHz float64) *resonator {
	r := math.Exp(-math.Pi * bandwidthHz / SampleRate)
	theta := 2 * math.Pi * freqHz / SampleRate
	return &resonator{
		b0: (1 - r*r) * math.Sin(theta), // unity-ish gain scaling
		a1: 2 * r * math.Cos(theta),
		a2: -r * r,
	}
}

func (f *resonator) process(x float64) float64 {
	y := f.b0*x + f.a1*f.y1 + f.a2*f.y2
	f.y2, f.y1 = f.y1, y
	return y
}

// Synthesizer renders utterances to waveforms.
type Synthesizer struct {
	inv []phones.Phone
}

// New returns a synthesizer over the universal inventory.
func New() *Synthesizer {
	return &Synthesizer{inv: phones.Universal()}
}

// Render converts an utterance to samples. The rng drives the noise
// sources and jitter; rendering is deterministic given the stream.
func (s *Synthesizer) Render(r *rng.RNG, u *synthlang.Utterance) []float64 {
	totalSamples := int(u.TotalDurMs() / 1000 * SampleRate)
	out := make([]float64, 0, totalSamples)
	pitch := u.Speaker.PitchHz
	var phase float64
	for _, seg := range u.Segments {
		n := int(seg.DurMs / 1000 * SampleRate)
		p := s.inv[seg.Phone]
		out = append(out, s.renderPhone(r, p, n, pitch, &phase)...)
	}
	applyChannel(r, out, u.Channel)
	return out
}

// renderPhone produces n samples for one phone.
func (s *Synthesizer) renderPhone(r *rng.RNG, p phones.Phone, n int, pitchHz float64, phase *float64) []float64 {
	buf := make([]float64, n)
	switch {
	case p.Class == phones.Silence:
		for i := range buf {
			buf[i] = 0.002 * r.Norm()
		}
		return buf
	case p.Voiced && p.F1 > 0:
		// Glottal impulse train through formant resonators.
		res := []*resonator{
			newResonator(p.F1, 90),
			newResonator(p.F2, 120),
			newResonator(p.F3, 160),
		}
		gains := []float64{1.0, 0.6, 0.25}
		period := SampleRate / pitchHz
		for i := range buf {
			*phase++
			var src float64
			if *phase >= period {
				*phase -= period
				src = 1
			}
			// Slight breathiness.
			src += 0.02 * r.Norm()
			var y float64
			for k, f := range res {
				y += gains[k] * f.process(src)
			}
			buf[i] = y
		}
	default:
		// Voiceless obstruent: noise through a single broad resonator at
		// the place-of-articulation locus (F2 field carries the locus).
		loc := p.F2
		if loc <= 0 {
			loc = 2000
		}
		f := newResonator(loc, 500)
		for i := range buf {
			buf[i] = 0.7 * f.process(r.Norm())
		}
	}
	// Amplitude envelope: quick rise/fall to avoid clicks.
	ramp := n / 10
	if ramp < 1 {
		ramp = 1
	}
	for i := 0; i < ramp && i < n; i++ {
		g := float64(i) / float64(ramp)
		buf[i] *= g
		buf[n-1-i] *= g
	}
	return buf
}

// applyChannel imposes the recording condition: a telephone band-limit
// (first-order high-pass at 250 Hz plus resonant low-pass near 3.4 kHz)
// and condition-dependent additive noise. The VOA condition adds a slow
// amplitude flutter emulating broadcast audio processing.
func applyChannel(r *rng.RNG, x []float64, ch synthlang.Channel) {
	// High-pass (remove DC / sub-telephone band).
	var prevIn, prevOut float64
	const hpCoef = 0.95
	for i, v := range x {
		out := hpCoef * (prevOut + v - prevIn)
		prevIn, prevOut = v, out
		x[i] = out
	}
	// Low-pass via resonator near band edge.
	lp := newResonator(3200, 1200)
	for i, v := range x {
		x[i] = 0.5*v + 0.5*lp.process(v)
	}
	var noise float64
	switch ch {
	case synthlang.ChannelCTSClean:
		noise = 0.005
	case synthlang.ChannelCTSNoisy:
		noise = 0.05
	case synthlang.ChannelVOA:
		noise = 0.02
	}
	for i := range x {
		x[i] += noise * r.Norm()
	}
	if ch == synthlang.ChannelVOA {
		// 3 Hz amplitude flutter.
		for i := range x {
			x[i] *= 1 + 0.25*math.Sin(2*math.Pi*3*float64(i)/SampleRate)
		}
	}
	normalize(x)
}

// normalize scales the signal to 0.3 RMS (guards against channel gain
// differences leaking label information through raw energy).
func normalize(x []float64) {
	var e float64
	for _, v := range x {
		e += v * v
	}
	if e == 0 {
		return
	}
	rms := math.Sqrt(e / float64(len(x)))
	g := 0.3 / rms
	for i := range x {
		x[i] *= g
	}
}

// FrameLabels returns the universal phone ID active at each feature frame
// (10 ms hop, 25 ms window), aligned with feats framing of the rendered
// waveform. Used as supervision for acoustic-model training.
func FrameLabels(u *synthlang.Utterance, frameHopMs, frameLenMs float64) []int {
	totalMs := u.TotalDurMs()
	numFrames := int((totalMs - frameLenMs) / frameHopMs)
	if numFrames < 0 {
		numFrames = 0
	}
	labels := make([]int, 0, numFrames+1)
	segEnd := make([]float64, len(u.Segments))
	var acc float64
	for i, s := range u.Segments {
		acc += s.DurMs
		segEnd[i] = acc
	}
	si := 0
	for f := 0; ; f++ {
		center := float64(f)*frameHopMs + frameLenMs/2
		if center > totalMs || f > numFrames {
			break
		}
		for si < len(segEnd)-1 && center > segEnd[si] {
			si++
		}
		labels = append(labels, u.Segments[si].Phone)
	}
	return labels
}

package fusion

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPropertyStackScoresShapeAndWeights(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		q := rr.Intn(4) + 1
		m := rr.Intn(8) + 1
		k := rr.Intn(6) + 1
		mats := make([][][]float64, q)
		for s := range mats {
			mats[s] = make([][]float64, m)
			for j := range mats[s] {
				row := make([]float64, k)
				for c := range row {
					row[c] = rr.Norm()
				}
				mats[s][j] = row
			}
		}
		out := StackScores(mats, nil)
		if len(out) != m {
			return false
		}
		for _, row := range out {
			if len(row) != q*k {
				return false
			}
		}
		// Uniform weights: entry (s,c) equals mats[s][j][c]/q.
		for j := 0; j < m; j++ {
			for s := 0; s < q; s++ {
				for c := 0; c < k; c++ {
					if math.Abs(out[j][s*k+c]-mats[s][j][c]/float64(q)) > 1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBackendScoresFinite(t *testing.T) {
	r := rng.New(2)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		d := rr.Intn(5) + 2
		k := rr.Intn(3) + 2
		n := 40 * k
		x := make([][]float64, n)
		labels := make([]int, n)
		for i := range x {
			labels[i] = i % k
			row := make([]float64, d)
			for j := range row {
				row[j] = rr.Norm()
			}
			row[labels[i]%d] += 2
			x[i] = row
		}
		b, err := Train(x, labels, k, DefaultConfig())
		if err != nil {
			return false
		}
		for _, xi := range x[:10] {
			for _, s := range b.Score(xi) {
				if math.IsNaN(s) || math.IsInf(s, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertySelectionWeightsNormalized(t *testing.T) {
	r := rng.New(3)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		n := rr.Intn(8) + 1
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rr.Intn(100)
		}
		w := SelectionWeights(counts)
		var sum float64
		for _, v := range w {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package fusion

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// trainedBackend fits a small 2-class backend on synthetic subsystem
// scores: both subsystems see the same underlying signal plus independent
// noise, which is the correlation structure real fused subsystems have.
func trainedBackend(t *testing.T, nSub int, seed uint64) (*Backend, [][]float64, []int) {
	t.Helper()
	r := rng.New(seed)
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		k := i % 2
		signal := -1.0
		if k == 1 {
			signal = 1.0
		}
		row := make([]float64, nSub)
		for q := range row {
			row[q] = signal + 0.6*r.Norm()
		}
		x = append(x, row)
		y = append(y, k)
	}
	b, err := Train(x, y, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b, x, y
}

func TestScoreMaskedAllPresentBitIdentical(t *testing.T) {
	b, x, _ := trainedBackend(t, 4, 31)
	all := []bool{true, true, true, true}
	for _, xi := range x[:50] {
		want := b.Score(xi)
		got := b.ScoreMasked(xi, all)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("all-present ScoreMasked diverged: %v vs %v", got, want)
			}
		}
	}
}

func TestScoreMaskedEqualsHandImputation(t *testing.T) {
	b, x, _ := trainedBackend(t, 4, 32)
	for _, dead := range []int{0, 2, 3} {
		present := []bool{true, true, true, true}
		present[dead] = false
		for _, xi := range x[:50] {
			// The documented contract: the missing subsystem is imputed with
			// the survivors' mean, then scored exactly as Score would.
			var sum float64
			for q, ok := range present {
				if ok {
					sum += xi[q]
				}
			}
			mean := sum / 3
			filled := append([]float64(nil), xi...)
			filled[dead] = mean
			want := b.Score(filled)
			got := b.ScoreMasked(xi, present)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("dead=%d: masked %v, hand-imputed %v", dead, got, want)
				}
			}
		}
	}
}

func TestScoreMaskedEdgeCases(t *testing.T) {
	b, x, _ := trainedBackend(t, 3, 33)
	if got := b.ScoreMasked(x[0], []bool{false, false, false}); got != nil {
		t.Fatalf("no survivors should return nil, got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mask length mismatch did not panic")
		}
	}()
	b.ScoreMasked(x[0], []bool{true})
}

// TestFusedMonotoneUnderDuplicatedSubsystems: when every subsystem
// reports the same score s (the fully duplicated-subsystem input), the
// fused target log-odds must be monotone nondecreasing in s — duplication
// must not let the backend invert the evidence.
func TestFusedMonotoneUnderDuplicatedSubsystems(t *testing.T) {
	for _, nSub := range []int{2, 4} {
		b, _, _ := trainedBackend(t, nSub, 34)
		prev := math.Inf(-1)
		for s := -3.0; s <= 3.0; s += 0.125 {
			x := make([]float64, nSub)
			for q := range x {
				x[q] = s
			}
			got := b.Score(x)[1]
			if got < prev {
				t.Fatalf("nSub=%d: fused log-odds not monotone: f(%v) = %v < %v", nSub, s, got, prev)
			}
			prev = got
		}
		if !(prev > b.Score(make([]float64, nSub))[1]) {
			t.Fatalf("nSub=%d: fused log-odds flat across the whole range", nSub)
		}
	}
}

// TestStackScoresDuplicationLinearity: duplicating every subsystem while
// halving its weight leaves the total evidence per (utterance, class)
// unchanged — each duplicated column pair sums to the original column.
func TestStackScoresDuplicationLinearity(t *testing.T) {
	r := rng.New(35)
	const q, m, k = 3, 7, 4
	mats := make([][][]float64, q)
	for s := range mats {
		mats[s] = make([][]float64, m)
		for j := range mats[s] {
			row := make([]float64, k)
			for c := range row {
				row[c] = r.Norm()
			}
			mats[s][j] = row
		}
	}
	weights := []float64{0.5, 0.3, 0.2}
	orig := StackScores(mats, weights)

	dup := make([][][]float64, 0, 2*q)
	dupW := make([]float64, 0, 2*q)
	for s := range mats {
		dup = append(dup, mats[s], mats[s])
		dupW = append(dupW, weights[s]/2, weights[s]/2)
	}
	doubled := StackScores(dup, dupW)
	for j := 0; j < m; j++ {
		for s := 0; s < q; s++ {
			for c := 0; c < k; c++ {
				sum := doubled[j][(2*s)*k+c] + doubled[j][(2*s+1)*k+c]
				if math.Abs(sum-orig[j][s*k+c]) > 1e-12 {
					t.Fatalf("duplicated columns (%d,%d,%d) sum to %v, want %v", j, s, c, sum, orig[j][s*k+c])
				}
			}
		}
	}
}

// TestSelectionWeightsMonotone: more confident trials in a subsystem can
// only raise its weight (and lower everyone else's); weights always sum
// to 1, and a zero total degrades to uniform.
func TestSelectionWeightsMonotone(t *testing.T) {
	base := []int{10, 20, 30}
	w0 := SelectionWeights(base)
	var sum float64
	for _, v := range w0 {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
	bumped := []int{10, 35, 30}
	w1 := SelectionWeights(bumped)
	if !(w1[1] > w0[1]) {
		t.Fatalf("raising subsystem 1's count did not raise its weight: %v vs %v", w1, w0)
	}
	if !(w1[0] < w0[0]) || !(w1[2] < w0[2]) {
		t.Fatalf("other subsystems' weights did not fall: %v vs %v", w1, w0)
	}
	uni := SelectionWeights([]int{0, 0, 0, 0})
	for _, v := range uni {
		if v != 0.25 {
			t.Fatalf("zero counts: %v, want uniform", uni)
		}
	}
}

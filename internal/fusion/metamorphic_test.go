package fusion

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// trainedBackend fits a small 2-class backend on synthetic subsystem
// scores: both subsystems see the same underlying signal plus independent
// noise, which is the correlation structure real fused subsystems have.
func trainedBackend(t *testing.T, nSub int, seed uint64) (*Backend, [][]float64, []int) {
	t.Helper()
	r := rng.New(seed)
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		k := i % 2
		signal := -1.0
		if k == 1 {
			signal = 1.0
		}
		row := make([]float64, nSub)
		for q := range row {
			row[q] = signal + 0.6*r.Norm()
		}
		x = append(x, row)
		y = append(y, k)
	}
	b, err := Train(x, y, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b, x, y
}

func TestScoreMaskedAllPresentBitIdentical(t *testing.T) {
	b, x, _ := trainedBackend(t, 4, 31)
	all := []bool{true, true, true, true}
	for _, xi := range x[:50] {
		want := b.Score(xi)
		got := b.ScoreMasked(xi, all)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("all-present ScoreMasked diverged: %v vs %v", got, want)
			}
		}
	}
}

func TestScoreMaskedEqualsHandImputation(t *testing.T) {
	b, x, _ := trainedBackend(t, 4, 32)
	for _, dead := range []int{0, 2, 3} {
		present := []bool{true, true, true, true}
		present[dead] = false
		for _, xi := range x[:50] {
			// The documented contract: the missing subsystem is imputed with
			// the survivors' mean, then scored exactly as Score would.
			var sum float64
			for q, ok := range present {
				if ok {
					sum += xi[q]
				}
			}
			mean := sum / 3
			filled := append([]float64(nil), xi...)
			filled[dead] = mean
			want := b.Score(filled)
			got := b.ScoreMasked(xi, present)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("dead=%d: masked %v, hand-imputed %v", dead, got, want)
				}
			}
		}
	}
}

func TestScoreMaskedEdgeCases(t *testing.T) {
	b, x, _ := trainedBackend(t, 3, 33)
	if got := b.ScoreMasked(x[0], []bool{false, false, false}); got != nil {
		t.Fatalf("no survivors should return nil, got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mask length mismatch did not panic")
		}
	}()
	b.ScoreMasked(x[0], []bool{true})
}

// TestFusedMonotoneUnderDuplicatedSubsystems: when every subsystem
// reports the same score s (the fully duplicated-subsystem input), the
// fused target log-odds must be monotone nondecreasing in s — duplication
// must not let the backend invert the evidence.
func TestFusedMonotoneUnderDuplicatedSubsystems(t *testing.T) {
	for _, nSub := range []int{2, 4} {
		b, _, _ := trainedBackend(t, nSub, 34)
		prev := math.Inf(-1)
		for s := -3.0; s <= 3.0; s += 0.125 {
			x := make([]float64, nSub)
			for q := range x {
				x[q] = s
			}
			got := b.Score(x)[1]
			if got < prev {
				t.Fatalf("nSub=%d: fused log-odds not monotone: f(%v) = %v < %v", nSub, s, got, prev)
			}
			prev = got
		}
		if !(prev > b.Score(make([]float64, nSub))[1]) {
			t.Fatalf("nSub=%d: fused log-odds flat across the whole range", nSub)
		}
	}
}

// TestStackScoresDuplicationLinearity: duplicating every subsystem while
// halving its weight leaves the total evidence per (utterance, class)
// unchanged — each duplicated column pair sums to the original column.
func TestStackScoresDuplicationLinearity(t *testing.T) {
	r := rng.New(35)
	const q, m, k = 3, 7, 4
	mats := make([][][]float64, q)
	for s := range mats {
		mats[s] = make([][]float64, m)
		for j := range mats[s] {
			row := make([]float64, k)
			for c := range row {
				row[c] = r.Norm()
			}
			mats[s][j] = row
		}
	}
	weights := []float64{0.5, 0.3, 0.2}
	orig := StackScores(mats, weights)

	dup := make([][][]float64, 0, 2*q)
	dupW := make([]float64, 0, 2*q)
	for s := range mats {
		dup = append(dup, mats[s], mats[s])
		dupW = append(dupW, weights[s]/2, weights[s]/2)
	}
	doubled := StackScores(dup, dupW)
	for j := 0; j < m; j++ {
		for s := 0; s < q; s++ {
			for c := 0; c < k; c++ {
				sum := doubled[j][(2*s)*k+c] + doubled[j][(2*s+1)*k+c]
				if math.Abs(sum-orig[j][s*k+c]) > 1e-12 {
					t.Fatalf("duplicated columns (%d,%d,%d) sum to %v, want %v", j, s, c, sum, orig[j][s*k+c])
				}
			}
		}
	}
}

// TestSelectionWeightsMonotone: more confident trials in a subsystem can
// only raise its weight (and lower everyone else's); weights always sum
// to 1, and a zero total degrades to uniform.
func TestSelectionWeightsMonotone(t *testing.T) {
	base := []int{10, 20, 30}
	w0 := SelectionWeights(base)
	var sum float64
	for _, v := range w0 {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
	bumped := []int{10, 35, 30}
	w1 := SelectionWeights(bumped)
	if !(w1[1] > w0[1]) {
		t.Fatalf("raising subsystem 1's count did not raise its weight: %v vs %v", w1, w0)
	}
	if !(w1[0] < w0[0]) || !(w1[2] < w0[2]) {
		t.Fatalf("other subsystems' weights did not fall: %v vs %v", w1, w0)
	}
	uni := SelectionWeights([]int{0, 0, 0, 0})
	for _, v := range uni {
		if v != 0.25 {
			t.Fatalf("zero counts: %v, want uniform", uni)
		}
	}
}

// TestScoreMaskedMultiLossEqualsHandImputation extends the degraded-
// fusion contract to multiple simultaneous losses — the cluster serving
// tier can lose several shard workers at once, each taking a set of
// subsystems with it. Every missing slot is imputed with the survivors'
// mean, then scored exactly as Score would; this must hold for every
// loss pattern down to a single survivor.
func TestScoreMaskedMultiLossEqualsHandImputation(t *testing.T) {
	const nSub = 4
	b, x, _ := trainedBackend(t, nSub, 36)
	// Every non-trivial mask with at least one survivor and at least two
	// losses: pairs, triples (single survivor).
	for mask := 1; mask < 1<<nSub; mask++ {
		present := make([]bool, nSub)
		nPresent := 0
		for q := range present {
			if mask&(1<<q) != 0 {
				present[q] = true
				nPresent++
			}
		}
		if lost := nSub - nPresent; lost < 2 {
			continue
		}
		for _, xi := range x[:25] {
			var sum float64
			for q, ok := range present {
				if ok {
					sum += xi[q]
				}
			}
			mean := sum / float64(nPresent)
			filled := append([]float64(nil), xi...)
			for q, ok := range present {
				if !ok {
					filled[q] = mean
				}
			}
			want := b.Score(filled)
			got := b.ScoreMasked(xi, present)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("mask %04b: masked %v, hand-imputed %v", mask, got, want)
				}
			}
		}
	}
}

// TestScoreMaskedUniformInputMaskInvariant: when every subsystem reports
// the identical score vector, the survivors' mean equals the missing
// values, so masking any non-empty subset must reproduce the unmasked
// score bit-for-bit — a metamorphic check that imputation adds no
// information of its own.
func TestScoreMaskedUniformInputMaskInvariant(t *testing.T) {
	const nSub = 4
	b, _, _ := trainedBackend(t, nSub, 37)
	for _, s := range []float64{-2.5, -0.25, 0, 1.75} {
		x := make([]float64, nSub)
		for q := range x {
			x[q] = s
		}
		want := b.Score(x)
		for mask := 1; mask < 1<<nSub; mask++ {
			present := make([]bool, nSub)
			for q := range present {
				present[q] = mask&(1<<q) != 0
			}
			got := b.ScoreMasked(x, present)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("s=%v mask %04b: %v, want unmasked %v", s, mask, got, want)
				}
			}
		}
	}
}

// TestScoreMaskedLossOrderIrrelevant: the imputation depends only on
// WHICH subsystems survive, never on any ordering of the losses — two
// shard workers dying in either order must fuse identically.
func TestScoreMaskedLossOrderIrrelevant(t *testing.T) {
	const nSub = 4
	b, x, _ := trainedBackend(t, nSub, 38)
	for _, xi := range x[:25] {
		a := b.ScoreMasked(xi, []bool{true, false, false, true})
		c := b.ScoreMasked(xi, []bool{true, false, false, true})
		for k := range a {
			if a[k] != c[k] {
				t.Fatalf("repeated masked scoring diverged: %v vs %v", a, c)
			}
		}
		// Losing {1} then {2} and losing {2} then {1} end at the same mask;
		// simulate by comparing against a fresh backend call with the same
		// survivor set built in reverse.
		rev := []bool{true, false, false, true}
		d := b.ScoreMasked(append([]float64(nil), xi...), rev)
		for k := range a {
			if a[k] != d[k] {
				t.Fatalf("survivor-set scoring depends on construction order: %v vs %v", a, d)
			}
		}
	}
}

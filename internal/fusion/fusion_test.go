package fusion

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestStackScores(t *testing.T) {
	mats := [][][]float64{
		{{1, 2}, {3, 4}}, // subsystem 0: 2 utts × 2 langs
		{{5, 6}, {7, 8}}, // subsystem 1
	}
	out := StackScores(mats, nil)
	if len(out) != 2 || len(out[0]) != 4 {
		t.Fatalf("shape %dx%d", len(out), len(out[0]))
	}
	// Uniform weights = 0.5 each.
	want := []float64{0.5, 1, 2.5, 3}
	for j, v := range want {
		if math.Abs(out[0][j]-v) > 1e-12 {
			t.Fatalf("out[0] = %v", out[0])
		}
	}
	weighted := StackScores(mats, []float64{1, 0})
	if weighted[0][2] != 0 || weighted[0][0] != 1 {
		t.Fatalf("weighted = %v", weighted[0])
	}
}

func TestSelectionWeights(t *testing.T) {
	w := SelectionWeights([]int{30, 10})
	if math.Abs(w[0]-0.75) > 1e-12 || math.Abs(w[1]-0.25) > 1e-12 {
		t.Fatalf("weights = %v", w)
	}
	uniform := SelectionWeights([]int{0, 0, 0})
	for _, v := range uniform {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("zero counts → %v", uniform)
		}
	}
}

// fusionData builds K-class score-like data: informative block per class
// plus correlated noise, in D=K*Q dims mimicking stacked subsystem scores.
func fusionData(r *rng.RNG, n, numClasses, numSubs int) (x [][]float64, labels []int) {
	d := numClasses * numSubs
	for i := 0; i < n; i++ {
		k := i % numClasses
		row := make([]float64, d)
		for q := 0; q < numSubs; q++ {
			for c := 0; c < numClasses; c++ {
				v := -1.0 + 0.6*r.Norm()
				if c == k {
					v = 1.0 + 0.6*r.Norm()
				}
				row[q*numClasses+c] = v
			}
		}
		x = append(x, row)
		labels = append(labels, k)
	}
	return x, labels
}

func TestTrainAndScore(t *testing.T) {
	r := rng.New(1)
	x, labels := fusionData(r, 600, 5, 3)
	b, err := Train(x, labels, 5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	testX, testLabels := fusionData(r, 300, 5, 3)
	if acc := b.Accuracy(testX, testLabels); acc < 0.9 {
		t.Fatalf("fusion accuracy %v", acc)
	}
}

func TestScoreSignConvention(t *testing.T) {
	r := rng.New(2)
	x, labels := fusionData(r, 400, 4, 2)
	b, err := Train(x, labels, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A clean class-0 vector should have positive score for class 0 and
	// negative for the others (log-odds convention).
	probe, _ := fusionData(rng.New(3), 4, 4, 2)
	s := b.Score(probe[0]) // class 0 by construction
	if s[0] <= 0 {
		t.Fatalf("target log-odds %v not positive", s[0])
	}
	for k := 1; k < 4; k++ {
		if s[k] >= s[0] {
			t.Fatalf("non-target %d scored %v >= target %v", k, s[k], s[0])
		}
	}
}

func TestMMIImprovesOverLDAOnly(t *testing.T) {
	// Overlapping classes with unequal spreads: MMI refinement should not
	// hurt and usually helps posterior-based accuracy.
	r := rng.New(4)
	x, labels := fusionData(r, 800, 6, 2)
	// Make it harder: add bias to one class's scores.
	for i := range x {
		if labels[i] == 2 {
			for j := range x[i] {
				x[i][j] += 0.8
			}
		}
	}
	cfgNoMMI := DefaultConfig()
	cfgNoMMI.MMIIters = 0
	cfgMMI := DefaultConfig()
	cfgMMI.MMIIters = 60
	bNo, err := Train(x, labels, 6, cfgNoMMI)
	if err != nil {
		t.Fatal(err)
	}
	bYes, err := Train(x, labels, 6, cfgMMI)
	if err != nil {
		t.Fatal(err)
	}
	accNo := bNo.Accuracy(x, labels)
	accYes := bYes.Accuracy(x, labels)
	if accYes < accNo-0.02 {
		t.Fatalf("MMI hurt: %v -> %v", accNo, accYes)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, 3, DefaultConfig()); err == nil {
		t.Fatal("accepted empty data")
	}
	if _, err := Train([][]float64{{1, 2}}, []int{0, 1}, 2, DefaultConfig()); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

func TestProjectionShape(t *testing.T) {
	r := rng.New(5)
	x, labels := fusionData(r, 300, 4, 3) // D = 12
	b, err := Train(x, labels, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// OutDim defaults to K−1 = 3.
	if b.Projection.Rows != 3 || b.Projection.Cols != 12 {
		t.Fatalf("projection %dx%d", b.Projection.Rows, b.Projection.Cols)
	}
}

func TestPriorsNormalized(t *testing.T) {
	r := rng.New(6)
	x, labels := fusionData(r, 200, 3, 2)
	b, err := Train(x, labels, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, lp := range b.LogPriors {
		sum += math.Exp(lp)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("priors sum to %v", sum)
	}
}

// Package fusion implements the paper's LDA-MMI score-fusion backend
// (step g, Eq. 14–15): per-utterance subsystem score vectors are stacked
// (optionally weighted per subsystem), projected by linear discriminant
// analysis, and classified by a Gaussian backend whose means and priors
// are refined by gradient ascent on the maximum-mutual-information
// objective
//
//	F_MMI(λ) = Σ_i log [ p(x_i|λ_{g(i)})·P(g(i)) / Σ_j p(x_i|λ_j)·P(j) ],
//
// i.e. the sum of log class posteriors. ML initialization gives the
// Gaussians; MMI sharpens the decision boundaries — exactly the
// discriminative calibration the paper fuses its six (or twelve, for
// (DBA-M1)+(DBA-M2)) subsystems with.
package fusion

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// StackScores concatenates per-subsystem score rows into one feature
// vector per utterance (Eq. 15). weights[q] scales subsystem q; pass nil
// for uniform weights. scoreMats[q][j][k] → out[j][q*K+k].
func StackScores(scoreMats [][][]float64, weights []float64) [][]float64 {
	if len(scoreMats) == 0 {
		return nil
	}
	q := len(scoreMats)
	m := len(scoreMats[0])
	k := 0
	if m > 0 {
		k = len(scoreMats[0][0])
	}
	if weights == nil {
		weights = make([]float64, q)
		for i := range weights {
			weights[i] = 1 / float64(q)
		}
	}
	if len(weights) != q {
		panic("fusion: weights length mismatch")
	}
	out := make([][]float64, m)
	for j := 0; j < m; j++ {
		row := make([]float64, q*k)
		for s := 0; s < q; s++ {
			if len(scoreMats[s]) != m {
				panic("fusion: subsystems scored different test-set sizes")
			}
			for c, v := range scoreMats[s][j] {
				row[s*k+c] = weights[s] * v
			}
		}
		out[j] = row
	}
	return out
}

// SelectionWeights computes the paper's subsystem weights
// w_n = M_n / Σ_m M_m, where M_n is how many test utterances met the
// confidence criterion in subsystem n.
func SelectionWeights(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	w := make([]float64, len(counts))
	if total == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return w
	}
	for i, c := range counts {
		w[i] = float64(c) / float64(total)
	}
	return w
}

// Backend is the trained LDA-MMI fusion model.
type Backend struct {
	// Projection is the d×D LDA matrix (rows are discriminant directions).
	Projection *linalg.Matrix
	// Means[k] is class k's Gaussian mean in the projected space.
	Means [][]float64
	// Prec is the shared diagonal precision (1/variance) vector.
	Prec []float64
	// LogPriors per class.
	LogPriors []float64
}

// Config controls backend training.
type Config struct {
	// OutDim is the LDA output dimension; 0 means min(K−1, D).
	OutDim int
	// MMIIters is the number of gradient-ascent epochs (0 disables MMI,
	// leaving the ML-initialized Gaussian backend — the LDA-only ablation).
	MMIIters int
	// LearnRate for the MMI updates.
	LearnRate float64
	// Ridge regularizes the within-class scatter before inversion.
	Ridge float64
}

// DefaultConfig mirrors the paper's backend at our scale.
func DefaultConfig() Config {
	return Config{MMIIters: 30, LearnRate: 0.05, Ridge: 1e-3}
}

// Train fits the backend on development data: x[i] is a stacked score
// vector, labels[i] its language.
func Train(x [][]float64, labels []int, numClasses int, cfg Config) (*Backend, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("fusion: no training data")
	}
	if len(x) != len(labels) {
		return nil, fmt.Errorf("fusion: %d vectors for %d labels", len(x), len(labels))
	}
	d := len(x[0])
	outDim := cfg.OutDim
	if outDim <= 0 || outDim > d {
		outDim = numClasses - 1
		if outDim > d {
			outDim = d
		}
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.05
	}
	if cfg.Ridge <= 0 {
		cfg.Ridge = 1e-3
	}

	// --- LDA ---
	classMean := make([][]float64, numClasses)
	classN := make([]float64, numClasses)
	for k := range classMean {
		classMean[k] = make([]float64, d)
	}
	globalMean := make([]float64, d)
	for i, xi := range x {
		k := labels[i]
		classN[k]++
		linalg.Axpy(1, xi, classMean[k])
		linalg.Axpy(1, xi, globalMean)
	}
	linalg.ScaleVec(1/float64(len(x)), globalMean)
	for k := range classMean {
		if classN[k] > 0 {
			linalg.ScaleVec(1/classN[k], classMean[k])
		}
	}
	sw := linalg.NewMatrix(d, d)
	sb := linalg.NewMatrix(d, d)
	diff := make([]float64, d)
	for i, xi := range x {
		k := labels[i]
		for j := range diff {
			diff[j] = xi[j] - classMean[k][j]
		}
		linalg.Outer(sw, 1, diff, diff)
	}
	for k := range classMean {
		if classN[k] == 0 {
			continue
		}
		for j := range diff {
			diff[j] = classMean[k][j] - globalMean[j]
		}
		linalg.Outer(sb, classN[k], diff, diff)
	}
	// Ridge: Sw + λ·tr(Sw)/d·I keeps Cholesky well-posed.
	var tr float64
	for j := 0; j < d; j++ {
		tr += sw.At(j, j)
	}
	ridge := cfg.Ridge*tr/float64(d) + 1e-8
	for j := 0; j < d; j++ {
		sw.Add(j, j, ridge)
	}
	_, vecs, err := linalg.GenSymEig(sb, sw)
	if err != nil {
		return nil, fmt.Errorf("fusion: LDA eigenproblem: %w", err)
	}
	proj := linalg.NewMatrix(outDim, d)
	for r := 0; r < outDim; r++ {
		for c := 0; c < d; c++ {
			proj.Set(r, c, vecs.At(c, r))
		}
	}

	b := &Backend{Projection: proj}

	// --- ML Gaussian initialization in the projected space ---
	z := make([][]float64, len(x))
	for i, xi := range x {
		z[i] = linalg.MulVec(proj, xi)
	}
	b.Means = make([][]float64, numClasses)
	for k := range b.Means {
		b.Means[k] = make([]float64, outDim)
	}
	counts := make([]float64, numClasses)
	for i, zi := range z {
		k := labels[i]
		counts[k]++
		linalg.Axpy(1, zi, b.Means[k])
	}
	for k := range b.Means {
		if counts[k] > 0 {
			linalg.ScaleVec(1/counts[k], b.Means[k])
		}
	}
	variance := make([]float64, outDim)
	for i, zi := range z {
		mk := b.Means[labels[i]]
		for j := range variance {
			dv := zi[j] - mk[j]
			variance[j] += dv * dv
		}
	}
	b.Prec = make([]float64, outDim)
	for j := range variance {
		v := variance[j] / float64(len(z))
		if v < 1e-6 {
			v = 1e-6
		}
		b.Prec[j] = 1 / v
	}
	b.LogPriors = make([]float64, numClasses)
	for k := range b.LogPriors {
		b.LogPriors[k] = math.Log((counts[k] + 1) / (float64(len(z)) + float64(numClasses)))
	}

	// --- MMI refinement (Eq. 14): gradient ascent on Σ log P(y|z) ---
	// The mean updates use the natural-gradient (covariance-preconditioned)
	// form μ_k += η·E[(1{y=k} − P(k|z))·(z − μ_k)], which removes the
	// precision factor from the raw gradient; with sharp projected
	// variances the plain gradient step diverges.
	post := make([]float64, numClasses)
	for it := 0; it < cfg.MMIIters; it++ {
		gradMeans := make([][]float64, numClasses)
		gradPrior := make([]float64, numClasses)
		for k := range gradMeans {
			gradMeans[k] = make([]float64, outDim)
		}
		for i, zi := range z {
			b.posteriors(zi, post)
			for k := 0; k < numClasses; k++ {
				ind := 0.0
				if labels[i] == k {
					ind = 1
				}
				coef := ind - post[k]
				gradPrior[k] += coef
				gm := gradMeans[k]
				mk := b.Means[k]
				for j := 0; j < outDim; j++ {
					gm[j] += coef * (zi[j] - mk[j])
				}
			}
		}
		scale := cfg.LearnRate / float64(len(z))
		for k := 0; k < numClasses; k++ {
			linalg.Axpy(scale, gradMeans[k], b.Means[k])
			b.LogPriors[k] += scale * gradPrior[k]
		}
		// Renormalize priors.
		b.normalizePriors()
	}
	return b, nil
}

func (b *Backend) normalizePriors() {
	maxv := math.Inf(-1)
	for _, lp := range b.LogPriors {
		if lp > maxv {
			maxv = lp
		}
	}
	var sum float64
	for _, lp := range b.LogPriors {
		sum += math.Exp(lp - maxv)
	}
	logZ := maxv + math.Log(sum)
	for k := range b.LogPriors {
		b.LogPriors[k] -= logZ
	}
}

// logLik returns the Gaussian log likelihood of projected point z under
// class k (up to the shared constant, which cancels in posteriors).
func (b *Backend) logLik(z []float64, k int) float64 {
	var quad float64
	mk := b.Means[k]
	for j, v := range z {
		dv := v - mk[j]
		quad += dv * dv * b.Prec[j]
	}
	return -0.5 * quad
}

// posteriors fills post with P(k|z).
func (b *Backend) posteriors(z []float64, post []float64) {
	maxv := math.Inf(-1)
	for k := range post {
		post[k] = b.LogPriors[k] + b.logLik(z, k)
		if post[k] > maxv {
			maxv = post[k]
		}
	}
	var sum float64
	for k := range post {
		post[k] = math.Exp(post[k] - maxv)
		sum += post[k]
	}
	for k := range post {
		post[k] /= sum
	}
}

// Score returns per-class fused log-posterior scores for a stacked score
// vector (higher = more likely). These are the final detection scores.
func (b *Backend) Score(x []float64) []float64 {
	z := linalg.MulVec(b.Projection, x)
	out := make([]float64, len(b.Means))
	post := make([]float64, len(b.Means))
	b.posteriors(z, post)
	for k := range out {
		p := post[k]
		if p < 1e-12 {
			p = 1e-12
		}
		if p > 1-1e-12 {
			p = 1 - 1e-12
		}
		// Log-odds detection score: positive when the class is more
		// likely than not, matching the SVM sign convention downstream.
		out[k] = math.Log(p / (1 - p))
	}
	return out
}

// ScoreMasked scores a stacked vector in which some subsystem features
// are missing (present[q] == false): each missing feature is imputed with
// the mean of the surviving features, then the backend scores the
// completed vector exactly as Score would. This is the serving layer's
// documented degraded-fusion contract (DESIGN.md "Graceful degradation"):
// subsystem scores for the same trial are strongly correlated — that
// correlation is why fusion helps at all — so the survivors' mean is the
// minimum-assumption estimate of a dead subsystem's score, and it keeps
// the LDA projection's input scale (and hence the backend's calibration)
// intact instead of zeroing a feature the projection weights heavily.
// With every feature present the result is bit-identical to Score; with
// none present it returns nil (the caller falls back to its own combiner).
func (b *Backend) ScoreMasked(x []float64, present []bool) []float64 {
	if len(present) != len(x) {
		panic("fusion: present mask length mismatch")
	}
	var sum float64
	n := 0
	for q, ok := range present {
		if ok {
			sum += x[q]
			n++
		}
	}
	if n == 0 {
		return nil
	}
	if n == len(x) {
		return b.Score(x)
	}
	mean := sum / float64(n)
	filled := make([]float64, len(x))
	for q := range x {
		if present[q] {
			filled[q] = x[q]
		} else {
			filled[q] = mean
		}
	}
	return b.Score(filled)
}

// ScoreAll scores a batch.
func (b *Backend) ScoreAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, xi := range x {
		out[i] = b.Score(xi)
	}
	return out
}

// Accuracy is a convenience diagnostic.
func (b *Backend) Accuracy(x [][]float64, labels []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i, xi := range x {
		s := b.Score(xi)
		best := 0
		for k, v := range s {
			if v > s[best] {
				best = k
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

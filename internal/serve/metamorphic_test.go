package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/rng"
)

// Metamorphic properties of the scoring API: transformations of a request
// that must not change the decision (TFLLR pre-scaling, lattice
// probability rescaling, batching and batch order).

func scoreOne(t *testing.T, ts *httptest.Server, req ScoreRequest) ScoreResponse {
	t.Helper()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func resultsEqual(t *testing.T, label string, a, b ScoreResult) {
	t.Helper()
	if a.Best != b.Best {
		t.Fatalf("%s: best %q vs %q", label, a.Best, b.Best)
	}
	if len(a.Scores) != len(b.Scores) {
		t.Fatalf("%s: %d vs %d front-ends", label, len(a.Scores), len(b.Scores))
	}
	for fe, row := range a.Scores {
		for k := range row {
			if row[k] != b.Scores[fe][k] {
				t.Fatalf("%s: %s score[%d] = %v vs %v", label, fe, k, row[k], b.Scores[fe][k])
			}
		}
	}
	if len(a.Fused) != len(b.Fused) {
		t.Fatalf("%s: fused %d vs %d entries", label, len(a.Fused), len(b.Fused))
	}
	for k := range a.Fused {
		if a.Fused[k] != b.Fused[k] {
			t.Fatalf("%s: fused[%d] = %v vs %v", label, k, a.Fused[k], b.Fused[k])
		}
	}
}

// TestTFLLRScalingInvariance: sending a raw supervector (the server
// applies the bundle's TFLLR) and sending the same vector pre-scaled with
// Scaled=true must produce bit-identical scores — scaling location must
// not matter.
func TestTFLLRScalingInvariance(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 11)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for trial := uint64(0); trial < 5; trial++ {
		raw := testVector(100 + trial)
		rawReq := scoreRequestFor(b, raw)

		preReq := ScoreRequest{ID: "pre", FrontEnds: make(map[string]FrontEndInput)}
		for q := range b.FrontEnds {
			fe := &b.FrontEnds[q]
			v := raw.Clone()
			if fe.TFLLR != nil {
				fe.TFLLR.Apply(v)
			}
			preReq.FrontEnds[fe.Name] = FrontEndInput{
				Supervector: &Supervector{Idx: v.Idx, Val: v.Val, Scaled: true},
			}
		}

		got := scoreOne(t, ts, rawReq)
		want := scoreOne(t, ts, preReq)
		resultsEqual(t, fmt.Sprintf("trial %d", trial), got.ScoreResult, want.ScoreResult)
	}
}

// TestLatticeProbScalingInvariance: sausage slot probabilities are
// globally normalized by the forward–backward pass, so multiplying every
// probability by a constant must leave the scores unchanged (up to float
// rounding) and the decision identical.
func TestLatticeProbScalingInvariance(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 12)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := rng.New(99)
	slots := make([][]Slot, 6)
	for i := range slots {
		nAlt := 1 + r.Intn(3)
		for a := 0; a < nAlt; a++ {
			slots[i] = append(slots[i], Slot{Phone: r.Intn(tbPhones), Prob: 0.1 + r.Float64()})
		}
	}
	scale := func(c float64) ScoreRequest {
		req := ScoreRequest{FrontEnds: make(map[string]FrontEndInput)}
		scaled := make([][]Slot, len(slots))
		for i, slot := range slots {
			for _, alt := range slot {
				scaled[i] = append(scaled[i], Slot{Phone: alt.Phone, Prob: alt.Prob * c})
			}
		}
		for q := range b.FrontEnds {
			req.FrontEnds[b.FrontEnds[q].Name] = FrontEndInput{Lattice: scaled}
		}
		return req
	}

	base := scoreOne(t, ts, scale(1))
	for _, c := range []float64{3.7, 0.01, 250} {
		got := scoreOne(t, ts, scale(c))
		if got.Best != base.Best {
			t.Fatalf("c=%v: best %q vs %q", c, got.Best, base.Best)
		}
		for fe, row := range base.Scores {
			for k := range row {
				if d := math.Abs(got.Scores[fe][k] - row[k]); d > 1e-9 {
					t.Fatalf("c=%v: %s score[%d] drifted by %v", c, fe, k, d)
				}
			}
		}
		for k := range base.Fused {
			if d := math.Abs(got.Fused[k] - base.Fused[k]); d > 1e-9 {
				t.Fatalf("c=%v: fused[%d] drifted by %v", c, k, d)
			}
		}
	}
}

// TestBatchVsSequentialPermutationInvariance: scoring N utterances one by
// one, as a single batch, and as a permuted batch must give bit-identical
// per-utterance results — batching is a throughput optimization, never a
// semantic one.
func TestBatchVsSequentialPermutationInvariance(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 13)
	s := newTestServer(t, dir, func(c *Config) { c.MaxBatch = 4 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 12
	utts := make([]ScoreRequest, n)
	seq := make([]ScoreResult, n)
	for i := range utts {
		utts[i] = scoreRequestFor(b, testVector(uint64(500+i)))
		utts[i].ID = fmt.Sprintf("u%02d", i)
		seq[i] = scoreOne(t, ts, utts[i]).ScoreResult
	}

	batch := func(reqs []ScoreRequest) []ScoreResult {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score/batch", BatchRequest{Utterances: reqs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d: %s", resp.StatusCode, body)
		}
		var br BatchResponse
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatal(err)
		}
		if len(br.Results) != len(reqs) {
			t.Fatalf("batch returned %d results for %d utterances", len(br.Results), len(reqs))
		}
		return br.Results
	}

	inOrder := batch(utts)
	for i := range utts {
		resultsEqual(t, "batch-vs-seq "+utts[i].ID, inOrder[i], seq[i])
	}

	perm := rng.New(77).Perm(n)
	permuted := make([]ScoreRequest, n)
	for i, p := range perm {
		permuted[i] = utts[p]
	}
	shuffled := batch(permuted)
	for i, p := range perm {
		if shuffled[i].ID != utts[p].ID {
			t.Fatalf("batch result %d has id %q, want %q (results must align with the request)", i, shuffled[i].ID, utts[p].ID)
		}
		resultsEqual(t, "permuted-batch "+utts[p].ID, shuffled[i], seq[p])
	}
}

// TestPackedKernelMatchesPerModelScoring extends the batch-vs-sequential
// metamorphic property down into the scoring kernel: the served path now
// scores all languages in one pass over each vector's nonzeros against a
// column-blocked weight matrix (svm.ScoresInto), and that kernel must be
// bit-identical to scoring each language model independently.
func TestPackedKernelMatchesPerModelScoring(t *testing.T) {
	b := testBundle(31)
	for q := range b.FrontEnds {
		fe := &b.FrontEnds[q]
		for trial := 0; trial < 50; trial++ {
			raw := testVector(uint64(900 + trial))
			v := raw.Clone()
			if fe.TFLLR != nil {
				fe.TFLLR.Apply(v)
			}
			got := fe.OVR.Scores(v) // packed one-pass kernel
			for k, m := range fe.OVR.Models {
				if want := m.Score(v); got[k] != want {
					t.Fatalf("fe %s trial %d class %d: packed %v != per-model %v",
						fe.Name, trial, k, got[k], want)
				}
			}
		}
	}
}

package serve

import (
	"sync"
	"time"
)

// Clock abstracts the time source of the batcher and the reload circuit
// breaker so tests can drive timeouts and backoff deterministically
// instead of racing real sleeps (the de-flake contract: no test asserts
// on the outcome of a wall-clock race).
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	// After behaves like time.After.
	After(d time.Duration) <-chan time.Time
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// fakeClock is a manually advanced clock for tests. After-waiters fire
// when Advance moves the clock past their deadline; Sleep blocks until
// advanced past. WaitForWaiters lets a test rendezvous with code that is
// about to block on the clock, eliminating sleep-based synchronization.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	// An arbitrary fixed epoch keeps failures reproducible.
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := &fakeWaiter{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- c.now
		return w.ch
	}
	c.waiters = append(c.waiters, w)
	return w.ch
}

func (c *fakeClock) Sleep(d time.Duration) { <-c.After(d) }

// Advance moves the clock forward and fires every waiter whose deadline
// passed.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []*fakeWaiter
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	c.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}

// WaitForWaiters blocks until at least n goroutines are parked on the
// clock (After/Sleep), so a test can Advance exactly when the code under
// test is listening.
func (c *fakeClock) WaitForWaiters(n int) {
	for {
		c.mu.Lock()
		parked := len(c.waiters)
		c.mu.Unlock()
		if parked >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fusion"
	"repro/internal/ngram"
	"repro/internal/persist"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// Test fixture: a tiny synthetic bundle (2 front-ends over a 5-phone
// order-2 space, 3 languages, fusion backend) that trains in
// milliseconds. Different seeds give different SVM weights, which is what
// the hot-reload test uses to tell model generations apart.

const (
	tbPhones = 5
	tbOrder  = 2
	tbLangs  = 3
)

func testBundle(seed uint64) *persist.Bundle {
	space := ngram.NewSpace(tbPhones, tbOrder)
	r := rng.New(seed)
	b := &persist.Bundle{Languages: []string{"alpha", "beta", "gamma"}}
	var all [][]*sparse.Vector
	var labels []int
	for f := 0; f < 2; f++ {
		var xs []*sparse.Vector
		labels = labels[:0]
		for i := 0; i < 60; i++ {
			k := i % tbLangs
			m := map[int32]float64{
				int32(k * 7):                       2 + 0.3*r.Norm(),
				int32((k*7 + f + 1) % space.Dim()): 1 + 0.2*r.Norm(),
				int32(r.Intn(space.Dim())):         0.5 * r.Float64(),
			}
			xs = append(xs, sparse.FromMap(m))
			labels = append(labels, k)
		}
		tf := ngram.EstimateTFLLR(xs, space.Dim(), 1e-5)
		for _, v := range xs {
			tf.Apply(v)
		}
		opt := svm.DefaultOptions()
		opt.Seed = seed + uint64(f)
		b.FrontEnds = append(b.FrontEnds, persist.FrontEndModel{
			Name:      fmt.Sprintf("FE%d", f),
			NumPhones: tbPhones,
			Order:     tbOrder,
			TFLLR:     tf,
			OVR:       svm.TrainOneVsRest(xs, labels, tbLangs, space.Dim(), opt),
		})
		all = append(all, xs)
	}
	var devX [][]float64
	var devY []int
	for i := range all[0] {
		s0 := b.FrontEnds[0].OVR.Scores(all[0][i])
		s1 := b.FrontEnds[1].OVR.Scores(all[1][i])
		for k := 0; k < tbLangs; k++ {
			devX = append(devX, []float64{s0[k], s1[k]})
			if labels[i] == k {
				devY = append(devY, 1)
			} else {
				devY = append(devY, 0)
			}
		}
	}
	bk, err := fusion.Train(devX, devY, 2, fusion.DefaultConfig())
	if err != nil {
		panic(err)
	}
	b.Fusion = bk
	return b
}

func writeTestBundle(t testing.TB, dir string, seed uint64) *persist.Bundle {
	t.Helper()
	b := testBundle(seed)
	if err := persist.SaveBundle(dir, b, persist.Manifest{Seed: seed, Scale: "test"}); err != nil {
		t.Fatal(err)
	}
	return b
}

// testVector is a deterministic raw (pre-TFLLR) supervector inside the
// fixture space.
func testVector(seed uint64) *sparse.Vector {
	r := rng.New(seed ^ 0xbeef)
	space := ngram.NewSpace(tbPhones, tbOrder)
	m := make(map[int32]float64)
	for i := 0; i < 6; i++ {
		m[int32(r.Intn(space.Dim()))] = r.Float64()
	}
	return sparse.FromMap(m)
}

// expectedScores is the ground truth the server must reproduce exactly:
// TFLLR-apply then OVR-score, per front-end, on a fresh copy.
func expectedScores(b *persist.Bundle, raw *sparse.Vector) map[string][]float64 {
	out := make(map[string][]float64)
	for i := range b.FrontEnds {
		fe := &b.FrontEnds[i]
		v := raw.Clone()
		if fe.TFLLR != nil {
			fe.TFLLR.Apply(v)
		}
		out[fe.Name] = fe.OVR.Scores(v)
	}
	return out
}

func newTestServer(t *testing.T, dir string, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{ModelDir: dir, BatchWait: time.Millisecond}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.batcher.Drain(context.Background())
	})
	return s
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func scoreRequestFor(b *persist.Bundle, raw *sparse.Vector) ScoreRequest {
	req := ScoreRequest{ID: "u1", FrontEnds: make(map[string]FrontEndInput)}
	for i := range b.FrontEnds {
		req.FrontEnds[b.FrontEnds[i].Name] = FrontEndInput{
			Supervector: &Supervector{Idx: raw.Idx, Val: raw.Val},
		}
	}
	return req
}

func TestScoreSupervectorMatchesDirectScoring(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 1)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testVector(7)
	want := expectedScores(b, raw)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", scoreRequestFor(b, raw))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ModelVersion != 1 {
		t.Fatalf("model version %d, want 1", sr.ModelVersion)
	}
	if len(sr.Scores) != len(want) {
		t.Fatalf("scored %d front-ends, want %d", len(sr.Scores), len(want))
	}
	for fe, row := range want {
		for k := range row {
			if sr.Scores[fe][k] != row[k] {
				t.Fatalf("%s score[%d] = %v, want %v", fe, k, sr.Scores[fe][k], row[k])
			}
		}
	}
	// All front-ends present → fused scores from the trial backend.
	if len(sr.Fused) != tbLangs {
		t.Fatalf("fused has %d entries, want %d", len(sr.Fused), tbLangs)
	}
	x := make([]float64, len(b.FrontEnds))
	for k := 0; k < tbLangs; k++ {
		for q := range b.FrontEnds {
			x[q] = want[b.FrontEnds[q].Name][k]
		}
		if got := b.Fusion.Score(x)[1]; sr.Fused[k] != got {
			t.Fatalf("fused[%d] = %v, want %v", k, sr.Fused[k], got)
		}
	}
	if sr.Best == "" {
		t.Fatal("no best language")
	}
}

func TestScoreLatticeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 2)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One front-end by lattice: the server must decode it to the same
	// supervector the ngram layer produces locally.
	slots := [][]Slot{
		{{Phone: 0, Prob: 0.7}, {Phone: 1, Prob: 0.3}},
		{{Phone: 2, Prob: 1}},
		{{Phone: 3, Prob: 0.5}, {Phone: 4, Prob: 0.5}},
	}
	req := ScoreRequest{FrontEnds: map[string]FrontEndInput{
		b.FrontEnds[0].Name: {Lattice: slots},
	}}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	l, err := latticeFromSlots(slots, tbPhones)
	if err != nil {
		t.Fatal(err)
	}
	v := ngram.NewSpace(tbPhones, tbOrder).Supervector(l)
	b.FrontEnds[0].TFLLR.Apply(v)
	want := b.FrontEnds[0].OVR.Scores(v)
	got := sr.Scores[b.FrontEnds[0].Name]
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("lattice score[%d] = %v, want %v", k, got[k], want[k])
		}
	}
	// Partial battery → no fused row.
	if sr.Fused != nil {
		t.Fatal("fused scores from a partial front-end set")
	}
}

func TestScoreBatchEndpoint(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 3)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var req BatchRequest
	var wants []map[string][]float64
	for i := 0; i < 9; i++ {
		raw := testVector(uint64(100 + i))
		u := scoreRequestFor(b, raw)
		u.ID = fmt.Sprintf("u%d", i)
		req.Utterances = append(req.Utterances, u)
		wants = append(wants, expectedScores(b, raw))
	}
	// One utterance with a bogus front-end degrades only itself.
	req.Utterances[4].FrontEnds = map[string]FrontEndInput{"NOPE": {}}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(req.Utterances) {
		t.Fatalf("%d results for %d utterances", len(br.Results), len(req.Utterances))
	}
	for i, res := range br.Results {
		if i == 4 {
			if res.Error == "" {
				t.Fatal("bad utterance did not report an error")
			}
			continue
		}
		if res.Error != "" {
			t.Fatalf("utterance %d failed: %s", i, res.Error)
		}
		for fe, row := range wants[i] {
			for k := range row {
				if res.Scores[fe][k] != row[k] {
					t.Fatalf("utterance %d %s score[%d] mismatch", i, fe, k)
				}
			}
		}
	}
}

func TestBadRequests(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 4)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	fe := b.FrontEnds[0].Name

	cases := []struct {
		name string
		req  ScoreRequest
	}{
		{"no front-ends", ScoreRequest{}},
		{"unknown front-end", ScoreRequest{FrontEnds: map[string]FrontEndInput{"XX": {Supervector: &Supervector{}}}}},
		{"empty input", ScoreRequest{FrontEnds: map[string]FrontEndInput{fe: {}}}},
		{"both inputs", ScoreRequest{FrontEnds: map[string]FrontEndInput{fe: {
			Supervector: &Supervector{Idx: []int32{0}, Val: []float64{1}},
			Lattice:     [][]Slot{{{Phone: 0, Prob: 1}}},
		}}}},
		{"length mismatch", ScoreRequest{FrontEnds: map[string]FrontEndInput{fe: {
			Supervector: &Supervector{Idx: []int32{0, 1}, Val: []float64{1}},
		}}}},
		{"unsorted indices", ScoreRequest{FrontEnds: map[string]FrontEndInput{fe: {
			Supervector: &Supervector{Idx: []int32{3, 1}, Val: []float64{1, 1}},
		}}}},
		{"index out of space", ScoreRequest{FrontEnds: map[string]FrontEndInput{fe: {
			Supervector: &Supervector{Idx: []int32{9999}, Val: []float64{1}},
		}}}},
		{"phone out of inventory", ScoreRequest{FrontEnds: map[string]FrontEndInput{fe: {
			Lattice: [][]Slot{{{Phone: 99, Prob: 1}}},
		}}}},
		{"dead slot", ScoreRequest{FrontEnds: map[string]FrontEndInput{fe: {
			Lattice: [][]Slot{{{Phone: 0, Prob: 0}}},
		}}}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (want 400): %s", tc.name, resp.StatusCode, body)
		}
	}

	if resp, _ := ts.Client().Get(ts.URL + "/v1/score"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/score: status %d (want 405)", resp.StatusCode)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d (want 400)", resp.StatusCode)
	}
}

func TestHealthReadyMetrics(t *testing.T) {
	dir := t.TempDir()
	writeTestBundle(t, dir, 5)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz", "/metricsz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		if !json.Valid(body) {
			t.Fatalf("%s: not JSON: %s", path, body)
		}
	}
}

// TestHotReloadUnderLoad proves the acceptance property: reloads swap the
// model atomically without dropping or corrupting in-flight requests.
// Clients hammer /v1/score while the test rewrites the bundle directory
// and reloads repeatedly; every response must be 200 and bit-identical to
// one of the model generations' direct scores.
func TestHotReloadUnderLoad(t *testing.T) {
	dir := t.TempDir()
	bundles := map[int64]*persist.Bundle{1: writeTestBundle(t, dir, 10)}
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testVector(42)
	// Reloads are deterministic (seed 20+i%2 for generation 2+i), so every
	// generation's expected scores are known before the storm starts — no
	// window where a client can see a version the test can't check.
	wantByVersion := map[int64]map[string][]float64{1: expectedScores(bundles[1], raw)}
	nextBundles := make([]*persist.Bundle, 6)
	for i := range nextBundles {
		nextBundles[i] = testBundle(uint64(20 + i%2))
		wantByVersion[int64(2+i)] = expectedScores(nextBundles[i], raw)
	}
	reqBody, err := json.Marshal(scoreRequestFor(bundles[1], raw))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var failures atomic.Int64
	var scored atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					failures.Add(1)
					t.Errorf("request error: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("status %d during reload: %s", resp.StatusCode, body)
					return
				}
				var sr ScoreResponse
				if err := json.Unmarshal(body, &sr); err != nil {
					failures.Add(1)
					t.Error(err)
					return
				}
				want, ok := wantByVersion[sr.ModelVersion]
				if !ok {
					failures.Add(1)
					t.Errorf("response from unknown model version %d", sr.ModelVersion)
					return
				}
				for fe, row := range want {
					for k := range row {
						if sr.Scores[fe][k] != row[k] {
							failures.Add(1)
							t.Errorf("version %d: %s score[%d] mismatch", sr.ModelVersion, fe, k)
							return
						}
					}
				}
				scored.Add(1)
			}
		}()
	}

	// Reload 6 new generations under load, alternating bundle contents.
	for i, b := range nextBundles {
		if err := persist.SaveBundle(dir, b, persist.Manifest{Seed: uint64(20 + i%2)}); err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, ts.Client(), ts.URL+"/-/reload", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload: status %d: %s", resp.StatusCode, body)
		}
		var rr struct {
			ModelVersion int64 `json:"model_version"`
		}
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.ModelVersion != int64(2+i) {
			t.Fatalf("reload %d produced version %d, want %d", i, rr.ModelVersion, 2+i)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d failed requests during hot reload", failures.Load())
	}
	if scored.Load() == 0 {
		t.Fatal("no requests completed during the reload storm")
	}
	if v := s.Registry().Current().Version; v != 7 {
		t.Fatalf("final model version %d, want 7", v)
	}
}

// TestGracefulDrain proves the acceptance property: under concurrent
// load, shutdown (a) finishes every accepted request, (b) rejects new
// work with 503 while draining, and (c) returns cleanly within the drain
// deadline.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 11)
	s := newTestServer(t, dir, func(c *Config) {
		c.DrainTimeout = 30 * time.Second
		c.MaxBatch = 64
	})
	// Gate the scoring pass so accepted jobs are provably still queued when
	// the drain starts (no sleep-length race: the pass cannot finish until
	// the test releases it).
	gate := make(chan struct{})
	s.batcher.Drain(context.Background())
	s.batcher = newBatcher(64, 256, 2, 20*time.Millisecond, func(batch []*job) {
		<-gate
		scoreJobs(batch, 2)
	}, nil)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	raw := testVector(3)
	reqBody, _ := json.Marshal(scoreRequestFor(b, raw))

	const accepted = 24
	statuses := make(chan int, accepted)
	var wg sync.WaitGroup
	for i := 0; i < accepted; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Post(base+"/v1/score", "application/json", bytes.NewReader(reqBody))
			if err != nil {
				statuses <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	// Pull the plug only once every request is provably in flight (inside a
	// handler, queued, or held at the gate) — polling the server's own
	// in-flight gauge replaces the old sleep-and-hope.
	for s.inflight.Load() < accepted {
		time.Sleep(time.Millisecond)
	}
	cancel()

	// While draining, new work must be rejected with 503 (the listener is
	// still open: Shutdown only runs after the queue is finished).
	saw503 := false
	for i := 0; i < 50 && !saw503; i++ {
		resp, err := client.Post(base+"/v1/score", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			break // listener already closed — drain finished
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			saw503 = true
		} else if resp.StatusCode != http.StatusOK {
			t.Errorf("probe during drain: status %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Release the scoring gate: the drain must now finish every queued job.
	close(gate)
	wg.Wait()
	close(statuses)
	ok200 := 0
	for st := range statuses {
		switch st {
		case http.StatusOK:
			ok200++
		case http.StatusServiceUnavailable:
			// Arrived after the drain flag flipped — rejected, not dropped.
		default:
			t.Errorf("accepted request finished with status %d", st)
		}
	}
	if ok200 == 0 {
		t.Fatal("no accepted request completed during drain")
	}
	if !saw503 {
		t.Error("never observed a 503 while draining")
	}
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v, want nil (clean drain)", err)
	}
}

func TestNewFailsFastOnBadBundleDir(t *testing.T) {
	_, err := New(Config{ModelDir: t.TempDir()})
	if err == nil {
		t.Fatal("New accepted an empty bundle directory")
	}
}

func TestRequestDeadlineWhileQueued(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 12)
	s := newTestServer(t, dir, func(c *Config) {
		c.RequestTimeout = 30 * time.Millisecond
	})
	// A scoring pass that cannot finish before the request deadline: the
	// gate is released only at cleanup, so the handler must come back with
	// 504 — there is no schedule under which the pass wins the race.
	gate := make(chan struct{})
	s.batcher.Drain(context.Background())
	s.batcher = newBatcher(16, 64, 2, time.Millisecond, func(batch []*job) {
		<-gate
		scoreJobs(batch, 2)
	}, nil)
	t.Cleanup(func() { close(gate) })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testVector(4)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", scoreRequestFor(b, raw))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (want 504): %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
		t.Fatalf("no error body: %s", body)
	}
}

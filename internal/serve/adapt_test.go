package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/faultinject"
	"repro/internal/persist"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// adaptTestPolicy is permissive on every gate: these tests exercise the
// serving-layer wiring (endpoints, hot swap, readiness), not the gate
// thresholds — internal/adapt's own suite covers those.
const adaptTestPolicy = "cadence=1h;probe=1h;votes=1;min-utts=1;buffer=64;" +
	"shadow-rate=1;shadow-bound=1e6;eer-budget=100;canary-tol=1e6;keep=4"

// writeAdaptBundle exports the serve fixture bundle plus a matching adapt
// sidecar, the layout `lre -export-models` produces.
func writeAdaptBundle(t *testing.T, dir string, seed uint64) *persist.Bundle {
	t.Helper()
	b := testBundle(seed)
	const (
		nTrain   = 18
		nHoldout = 12
	)
	set := &adapt.Set{
		FormatVersion: adapt.SetFormatVersion,
		Languages:     append([]string(nil), b.Languages...),
		SVM:           svm.DefaultOptions(),
		Seed:          seed,
	}
	set.SVM.Seed = seed
	for i := 0; i < nTrain; i++ {
		set.TrainLabels = append(set.TrainLabels, i%tbLangs)
	}
	for i := 0; i < nHoldout; i++ {
		set.HoldoutLabels = append(set.HoldoutLabels, i%tbLangs)
	}
	for q := range b.FrontEnds {
		fe := &b.FrontEnds[q]
		// Sidecar vectors live in the front-end's weight space: raw
		// fixture vectors with the bundle's own TFLLR applied.
		weightSpace := func(n int, salt uint64) []*sparse.Vector {
			out := make([]*sparse.Vector, n)
			for i := range out {
				v := testVector(seed + salt + uint64(i)*17).Clone()
				if fe.TFLLR != nil {
					fe.TFLLR.Apply(v)
				}
				out[i] = v
			}
			return out
		}
		sfe := adapt.SetFrontEnd{
			Name:    fe.Name,
			Dim:     fe.WeightDim(),
			Train:   weightSpace(nTrain, 1000),
			Holdout: weightSpace(nHoldout, 5000),
		}
		for j := 0; j < nHoldout; j++ {
			sfe.RefereeScores = append(sfe.RefereeScores, fe.Scores(sfe.Holdout[j]))
		}
		set.FrontEnds = append(set.FrontEnds, sfe)
	}
	if err := adapt.SaveSet(dir, set); err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveBundle(dir, b, persist.Manifest{Seed: seed, Scale: "test", AdaptFile: adapt.SetFile}); err != nil {
		t.Fatal(err)
	}
	return b
}

// feedAdapter offers n full-battery observations with forged served rows
// (one small positive, rest negative — an unambiguous Eq. 13 vote that
// does not saturate the fused scale).
func feedAdapter(s *Server, n int) {
	a := s.Adapter()
	m := s.reg.Current()
	for j := 0; j < n; j++ {
		k := j % tbLangs
		vectors := make(map[int]*sparse.Vector)
		scores := make(map[int][]float64)
		for q := range m.Bundle.FrontEnds {
			fe := &m.Bundle.FrontEnds[q]
			v := testVector(900 + uint64(j)*31).Clone()
			if fe.TFLLR != nil {
				fe.TFLLR.Apply(v)
			}
			vectors[q] = v
			row := make([]float64, tbLangs)
			for i := range row {
				row[i] = -0.25
			}
			row[k] = 0.25
			scores[q] = row
		}
		a.Observe(vectors, scores)
	}
}

func TestAdaptDisabledSurfaces(t *testing.T) {
	dir := t.TempDir()
	writeTestBundle(t, dir, 40)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/adaptz")
	if err != nil {
		t.Fatal(err)
	}
	var st adapt.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.Enabled {
		t.Fatalf("disabled /adaptz: status %d, enabled %v", resp.StatusCode, st.Enabled)
	}

	for _, ep := range []string{"/-/adapt/promote", "/-/adapt/rollback"} {
		resp, body := postJSON(t, ts.Client(), ts.URL+ep, struct{}{})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while disabled: status %d: %s", ep, resp.StatusCode, body)
		}
		// Mutating endpoints are POST-only.
		getResp, err := ts.Client().Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		getResp.Body.Close()
		if getResp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: status %d, want 405", ep, getResp.StatusCode)
		}
	}
}

func TestAdaptRequiresSidecar(t *testing.T) {
	dir := t.TempDir()
	writeTestBundle(t, dir, 41) // no sidecar
	_, err := New(Config{ModelDir: dir, Adapt: "on"})
	if err == nil {
		t.Fatal("server started with -adapt but no sidecar")
	}
}

func TestAdaptPromoteAndRollbackEndpoints(t *testing.T) {
	dir := t.TempDir()
	b := writeAdaptBundle(t, dir, 42)
	s := newTestServer(t, dir, func(c *Config) { c.Adapt = adaptTestPolicy })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Forced promote with an empty buffer: 200, outcome explains the skip.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/-/adapt/promote", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty promote: status %d: %s", resp.StatusCode, body)
	}
	var res adapt.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Promoted || res.Outcome != adapt.OutcomeNoData {
		t.Fatalf("empty promote outcome %q", res.Outcome)
	}
	// Rollback with nothing promoted: 409, not a 5xx from a panic.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/-/adapt/rollback", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("no-op rollback: status %d: %s", resp.StatusCode, body)
	}

	// A real promotion through the HTTP surface.
	feedAdapter(s, 12)
	resp, body = postJSON(t, ts.Client(), ts.URL+"/-/adapt/promote", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || res.Generation != 1 {
		t.Fatalf("promote result %+v (%s)", res, body)
	}
	m := s.reg.Current()
	if m.Gen.Generation != 1 {
		t.Fatalf("serving generation %d after promote, want 1", m.Gen.Generation)
	}
	if m.Version != 2 {
		t.Fatalf("model version %d after promote, want 2 (hot swap went through the reloader)", m.Version)
	}

	// /adaptz reflects the new generation.
	azResp, err := ts.Client().Get(ts.URL + "/adaptz")
	if err != nil {
		t.Fatal(err)
	}
	var st adapt.Status
	if err := json.NewDecoder(azResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	azResp.Body.Close()
	if !st.Enabled || st.Generation != 1 || st.Promotions != 1 {
		t.Fatalf("/adaptz after promote: %+v", st)
	}

	// Scoring keeps answering 200 against the promoted generation.
	raw := testVector(7)
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/score", scoreRequestFor(b, raw))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score after promote: status %d: %s", resp.StatusCode, body)
	}

	// One-command rollback restores the base export.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/-/adapt/rollback", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Outcome != adapt.OutcomeRolledBack || res.Generation != 0 {
		t.Fatalf("rollback result %+v", res)
	}
	m = s.reg.Current()
	if m.Gen.Generation != 0 || m.Version != 3 {
		t.Fatalf("after rollback: generation %d version %d, want 0/3", m.Gen.Generation, m.Version)
	}
	// Rolled back to the base export: scores are bit-identical to a fresh
	// load of the original bundle.
	want := expectedScores(b, raw)
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/score", scoreRequestFor(b, raw))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score after rollback: status %d: %s", resp.StatusCode, body)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	for fe, row := range want {
		for k := range row {
			if sr.Scores[fe][k] != row[k] {
				t.Fatalf("post-rollback %s score[%d] = %v, want %v", fe, k, sr.Scores[fe][k], row[k])
			}
		}
	}
}

// TestReadyzBreakerOpen: an open reload circuit breaker makes the process
// not-ready (orchestrators must not route new models at it) and shows up
// as the serve.reload.breaker_open gauge on /metricsz.
func TestReadyzBreakerOpen(t *testing.T) {
	dir := t.TempDir()
	writeTestBundle(t, dir, 43)
	s := newTestServer(t, dir, func(c *Config) {
		c.Reload = ReloadPolicy{BaseBackoff: time.Millisecond, TripAfter: 1, Cooldown: time.Hour}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readyz := func() int {
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	gauge := func() float64 {
		resp, err := ts.Client().Get(ts.URL + "/metricsz")
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			Gauges map[string]float64 `json:"gauges"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return rep.Gauges["serve.reload.breaker_open"]
	}

	if got := readyz(); got != http.StatusOK {
		t.Fatalf("healthy readyz: %d", got)
	}
	if g := gauge(); g != 0 {
		t.Fatalf("closed breaker gauge %v", g)
	}

	// One failed reload call (every retry faults too) trips the breaker
	// (TripAfter=1, hour cooldown).
	restore := faultinject.Enable(&faultinject.Plan{Seed: 5, Rules: []faultinject.Rule{
		{Site: "serve.reload", Kind: faultinject.KindError, Every: 1, Err: "disk gone"},
	}})
	defer restore()
	if _, err := s.Reload(); err == nil {
		t.Fatal("injected reload fault did not surface")
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open readyz: %d, want 503", got)
	}
	if g := gauge(); g != 1 {
		t.Fatalf("open breaker gauge %v, want 1", g)
	}
	// Scoring is unaffected: the previous model keeps serving.
	b := s.reg.Current().Bundle
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", scoreRequestFor(b, testVector(9)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score with open breaker: %d: %s", resp.StatusCode, body)
	}
}

// TestConcurrentReloadRacesPromotion is the torn-swap satellite: SIGHUP
// storms (Server.Reload) racing an adapt promotion and its pointer flip.
// Exactly one generation must win, Current() must never be torn or nil,
// and the final state must be the promoted generation — run under -race.
func TestConcurrentReloadRacesPromotion(t *testing.T) {
	dir := t.TempDir()
	writeAdaptBundle(t, dir, 44)
	s := newTestServer(t, dir, func(c *Config) { c.Adapt = adaptTestPolicy })
	feedAdapter(s, 12)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// SIGHUP storm: concurrent reload requests throughout the promotion.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = s.Reload()
			}
		}()
	}
	// Reader: the hot path's view must always be a complete model of a
	// real generation (0 before the flip wins, 1 after).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := s.reg.Current()
			if m == nil || m.Bundle == nil || m.Manifest == nil {
				t.Error("torn Current() during promotion race")
				return
			}
			if g := m.Gen.Generation; g != 0 && g != 1 {
				t.Errorf("impossible generation %d during race", g)
				return
			}
		}
	}()

	res, err := s.Adapter().TryPromote(true)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || res.Generation != 1 {
		t.Fatalf("promotion under reload storm: %+v", res)
	}
	// The dust settled on exactly one winner: the promoted generation.
	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	m := s.reg.Current()
	if m.Gen.Generation != 1 || m.Gen.Fallback {
		t.Fatalf("final state %+v, want generation 1", m.Gen)
	}
	ptr, err := persist.ReadCurrent(dir)
	if err != nil || ptr.Generation != 1 {
		t.Fatalf("CURRENT after race: %+v err %v", ptr, err)
	}
}

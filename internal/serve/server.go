package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/cascade"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Config sizes the server. Zero values select the defaults noted per
// field.
type Config struct {
	// ModelDir is the bundle directory (required); New fails fast if the
	// initial load fails.
	ModelDir string
	// MaxBatch bounds how many requests share one scoring pass (16).
	MaxBatch int
	// BatchWait is how long a non-full batch waits for company (2 ms).
	BatchWait time.Duration
	// QueueDepth bounds the admission queue; beyond it requests get
	// 429 + Retry-After (256).
	QueueDepth int
	// Workers sizes the scoring pool (GOMAXPROCS).
	Workers int
	// RequestTimeout is the per-request deadline covering queueing and
	// scoring (5 s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: queued work is finished and
	// open connections closed within it (10 s).
	DrainTimeout time.Duration
	// MaxBodyBytes bounds request bodies (32 MiB).
	MaxBodyBytes int64
	// Reload governs reload retry/backoff and the circuit breaker.
	Reload ReloadPolicy
	// Cascade opts into the two-tier scoring cascade (see cascade.go).
	Cascade CascadeConfig
	// Adapt opts into online DBA self-training (see adapt.go): "" or
	// "off" disables it (the default — serving is then bit-identical to a
	// build without the subsystem); "on"/"default" selects
	// adapt.DefaultPolicy; anything else parses as a policy spec.
	Adapt string

	// AccessLog receives sampled JSON access-log lines, one object per
	// line (nil: access logging off).
	AccessLog io.Writer
	// AccessLogEvery samples every Nth request onto AccessLog (1 = all).
	// Degraded and errored requests are always logged regardless.
	AccessLogEvery int
	// DisableTracing turns off per-request trace spans, the /tracez
	// buffer, access logging, and the rolling-window metrics — the
	// baseline configuration of the tracing-overhead benchmark
	// (BENCH_obs.json). Production serving keeps tracing on.
	DisableTracing bool

	// WaitForModel lets the server start with an empty or unloadable
	// bundle directory: scoring requests get 503 "no model loaded" and
	// /readyz stays unready until a later reload succeeds. Cluster shard
	// workers run this way — they boot against an empty spool directory
	// and wait for the coordinator to push their shard bundle.
	WaitForModel bool

	// clock substitutes the time source in tests (nil: real time).
	clock Clock
}

func (c *Config) setDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	c.Reload.setDefaults()
}

// Server is the scoring daemon: registry + batcher + HTTP handlers.
type Server struct {
	cfg       Config
	reg       *Registry
	reloader  *reloader
	batcher   *Batcher
	mux       *http.ServeMux
	traces    *obs.TraceBuffer
	accessLog *accessLogger
	draining  atomic.Bool
	inflight  atomic.Int64

	// cascadePolicy is the parsed threshold-offset policy; read-only
	// after New. Meaningful only when cfg.Cascade.Enabled.
	cascadePolicy cascade.Policy

	// adapter is the online self-training loop, nil unless cfg.Adapt
	// selects a policy (see adapt.go).
	adapter *adapt.Adapter
}

// New loads the bundle and starts the batching dispatcher. The returned
// server is ready to serve; pass its Handler to an http.Server or call
// Run.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	if cfg.ModelDir == "" {
		return nil, fmt.Errorf("serve: no model directory configured")
	}
	s := &Server{cfg: cfg, reg: NewRegistry(cfg.ModelDir)}
	if cfg.Cascade.Enabled {
		pol, err := cascade.ParsePolicy(cfg.Cascade.Margin)
		if err != nil {
			return nil, fmt.Errorf("serve: cascade margin: %w", err)
		}
		s.cascadePolicy = pol
	}
	if _, err := s.reg.Reload(); err != nil && !cfg.WaitForModel {
		return nil, fmt.Errorf("serve: initial model load: %w", err)
	}
	s.reloader = newReloader(s.reg, cfg.Reload, cfg.clock)
	if err := s.initAdapter(); err != nil {
		return nil, fmt.Errorf("serve: adapt: %w", err)
	}
	s.batcher = newBatcher(cfg.MaxBatch, cfg.QueueDepth, cfg.Workers, cfg.BatchWait, nil, cfg.clock)
	s.batcher.windowed = !cfg.DisableTracing
	s.traces = obs.NewTraceBuffer(0, 0, 0) // default bounds (see obs.NewTraceBuffer)
	if !cfg.DisableTracing {
		s.accessLog = newAccessLogger(cfg.AccessLog, cfg.AccessLogEvery)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/score", s.instrument("score", s.handleScore))
	s.mux.HandleFunc("/v1/score/batch", s.instrument("batch", s.handleScoreBatch))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	s.mux.HandleFunc("/tracez", s.handleTracez)
	s.mux.HandleFunc("/-/reload", s.instrument("reload", s.handleReload))
	s.mux.HandleFunc("/adaptz", s.handleAdaptz)
	s.mux.HandleFunc("/-/adapt/promote", s.instrument("adapt_promote", s.handleAdaptPromote))
	s.mux.HandleFunc("/-/adapt/rollback", s.instrument("adapt_rollback", s.handleAdaptRollback))
	return s, nil
}

// Registry exposes the model registry (reload loops, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Reload swaps in a fresh bundle through the retry/backoff and
// circuit-breaker policy; SIGHUP handlers and the /-/reload endpoint both
// go through here. On failure the previous model stays active.
func (s *Server) Reload() (*Model, error) { return s.reloader.Reload() }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// statusWriter records the response status so instrumentation, the
// trace buffer, and the access log can see the request's outcome.
// instrument wraps every scoring/reload handler in one, so those
// handlers may assume their ResponseWriter is a *statusWriter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func statusOf(w http.ResponseWriter) int {
	if sw, ok := w.(*statusWriter); ok {
		return sw.status
	}
	return http.StatusOK
}

// instrument wraps a handler with per-endpoint request counts, latency
// histograms (cumulative + rolling windows), server-error counters, and
// the shared in-flight gauge.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := obs.GetCounter("serve.http." + name + ".requests")
	lat := obs.GetHistogram("serve.http." + name + ".seconds")
	wlat := obs.GetWindow("serve.http." + name + ".seconds")
	errs := obs.GetCounter("serve.http.errors")
	werrs := obs.GetWindowCounter("serve.http.errors")
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		obs.SetGauge("serve.http.inflight", float64(s.inflight.Add(1)))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		defer func() {
			d := time.Since(t0).Seconds()
			lat.Observe(d)
			if !s.cfg.DisableTracing {
				wlat.Observe(d)
			}
			if sw.status >= 500 {
				errs.Inc()
				if !s.cfg.DisableTracing {
					werrs.Inc()
				}
			}
			obs.SetGauge("serve.http.inflight", float64(s.inflight.Add(-1)))
		}()
		h(sw, r)
	}
}

// reqTrace is the per-request tracing context of a scoring handler:
// W3C identifiers plus the detached root span the batcher hangs its
// stage spans off. Fields past root are written only by the handler
// goroutine.
type reqTrace struct {
	id        string // 32-hex trace id (accepted or minted)
	parent    string // caller's span id when the request carried a traceparent
	spanID    string // this server's root span id
	start     time.Time
	root      *obs.Span
	batchID   int64
	modelVer  int64
	degraded  bool
	surviving []string
	errMsg    string
}

// startTrace accepts the request's traceparent (or mints a fresh trace),
// opens the root span, and stamps the response header so the client
// learns the id even on error paths. Returns nil when tracing is off.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request, endpoint string) *reqTrace {
	if s.cfg.DisableTracing {
		return nil
	}
	id, parent, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		id, parent = obs.NewTraceID(), ""
	}
	tr := &reqTrace{
		id:     id,
		parent: parent,
		spanID: obs.NewSpanID(),
		start:  time.Now(),
		root:   obs.NewSpan("serve." + endpoint),
	}
	tr.root.SetLabel("trace_id", id)
	w.Header().Set("traceparent", obs.Traceparent(id, tr.spanID))
	return tr
}

// finishTrace ends the root span, files the finished trace into the
// /tracez buffer, and emits the (sampled) access-log line.
func (s *Server) finishTrace(tr *reqTrace, endpoint string, status int) {
	if tr == nil {
		return
	}
	dur := tr.root.End()
	e := &obs.TraceEntry{
		TraceID:      tr.id,
		SpanID:       tr.spanID,
		ParentSpanID: tr.parent,
		Endpoint:     endpoint,
		Start:        tr.start,
		DurationSec:  dur.Seconds(),
		Status:       status,
		ModelVersion: tr.modelVer,
		BatchID:      tr.batchID,
		Degraded:     tr.degraded,
		Surviving:    tr.surviving,
		Error:        tr.errMsg,
		Root:         tr.root.Data(),
	}
	s.traces.Add(e)
	if s.accessLog != nil {
		s.accessLog.log(recordFromTrace(e), e.Degraded || e.Error != "" || status >= 500)
	}
}

// noteResult folds one job result into the trace: degradation state,
// survivors, and the dispatch batch the job rode in.
func (tr *reqTrace) noteResult(j *job, res *ScoreResult) {
	if tr == nil {
		return
	}
	if j != nil {
		if id := j.batchID.Load(); id > tr.batchID {
			tr.batchID = id
		}
	}
	if res == nil {
		return
	}
	if res.Degraded {
		tr.degraded = true
		tr.surviving = mergeSurvivors(tr.surviving, res.Surviving)
		wobsDegraded.Inc()
	}
	if res.Error != "" {
		tr.errMsg = res.Error
	}
}

// mergeSurvivors unions sorted survivor sets (batch requests may degrade
// several utterances differently).
func mergeSurvivors(a, b []string) []string {
	if len(a) == 0 {
		return append([]string(nil), b...)
	}
	seen := make(map[string]bool, len(a)+len(b))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		seen[x] = true
	}
	out := make([]string, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// admit runs the checks every scoring request passes before decode:
// method, drain state, and model presence. It returns the model to score
// against, or nil after writing the response.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) *Model {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return nil
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return nil
	}
	// Chaos hook: error faults surface as 503 (bounded, well-formed
	// failures), delay faults model a slow handler.
	if err := faultinject.At("serve.handler"); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return nil
	}
	m := s.reg.Current()
	if m == nil {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return nil
	}
	return m
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// submit admits one resolved utterance into the batcher and translates
// backpressure into HTTP semantics. span, when non-nil, becomes the
// job's trace node: resolution and queue wait record as children, and
// the batcher attaches batch-formation and per-front-end scoring spans.
func (s *Server) submit(ctx context.Context, m *Model, id string, req *ScoreRequest, span *obs.Span) (*job, int, error) {
	var rsp *obs.Span
	if span != nil {
		rsp = span.StartChild("resolve")
	}
	vectors, err := buildVectors(m, req)
	if rsp != nil {
		rsp.End()
	}
	if err != nil {
		var re *requestError
		if errors.As(err, &re) {
			return nil, http.StatusBadRequest, err
		}
		return nil, http.StatusInternalServerError, err
	}
	j := &job{
		ctx:      ctx,
		model:    m,
		id:       id,
		vectors:  vectors,
		result:   make(chan jobResult, 1),
		enqueued: time.Now(),
		span:     span,
	}
	if span != nil {
		j.queueSpan = span.StartChild("queue.wait")
	}
	if err := s.batcher.Submit(j); err != nil {
		if j.queueSpan != nil {
			j.queueSpan.SetLabel("error", err.Error())
			j.queueSpan.End()
		}
		switch {
		case errors.Is(err, ErrQueueFull):
			return nil, http.StatusTooManyRequests, err
		case errors.Is(err, ErrDraining):
			return nil, http.StatusServiceUnavailable, err
		default:
			return nil, http.StatusInternalServerError, err
		}
	}
	return j, 0, nil
}

// await blocks until the job completes or its deadline passes.
func await(ctx context.Context, j *job) (jobResult, error) {
	select {
	case res := <-j.result:
		return res, nil
	case <-ctx.Done():
		return jobResult{}, ctx.Err()
	}
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	m := s.admit(w, r)
	if m == nil {
		return
	}
	tr := s.startTrace(w, r, "score")
	defer func() { s.finishTrace(tr, "score", statusOf(w)) }()
	var jobSpan *obs.Span
	if tr != nil {
		tr.modelVer = m.Version
		jobSpan = tr.root
	}
	var req ScoreRequest
	var dsp *obs.Span
	if tr != nil {
		dsp = tr.root.StartChild("decode")
	}
	ok := s.decodeBody(w, r, &req)
	if dsp != nil {
		dsp.End()
	}
	if !ok {
		return
	}
	// Cascade fast path: a confident tier-1 answer returns here without
	// touching the batcher or the SVM battery. Escalations (including
	// tier-1 faults) fall through to the heavy path unchanged, carrying
	// the outcome for the response.
	var casc *CascadeOutcome
	cascStart := time.Now()
	if s.cfg.Cascade.Enabled {
		var fast *ScoreResult
		var parent *obs.Span
		if tr != nil {
			parent = tr.root
		}
		casc, fast = s.tryCascade(m, &req, parent)
		if fast != nil {
			s.noteCascadeExit(time.Since(cascStart))
			resp := ScoreResponse{
				ModelVersion:      m.Version,
				ClusterGeneration: m.ClusterGeneration(),
				Languages:         m.Bundle.Languages,
				ScoreResult:       *fast,
			}
			if tr != nil {
				resp.TraceID = tr.id
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	j, status, err := s.submit(ctx, m, req.ID, &req, jobSpan)
	if err != nil {
		if tr != nil {
			tr.errMsg = err.Error()
		}
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, "%v", err)
		return
	}
	res, err := await(ctx, j)
	tr.noteResult(j, nil)
	if err != nil {
		if tr != nil {
			tr.errMsg = err.Error()
		}
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
		return
	}
	if res.err != nil {
		if tr != nil {
			tr.errMsg = res.err.Error()
		}
		status := http.StatusInternalServerError
		if errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, "%v", res.err)
		return
	}
	var fsp *obs.Span
	if tr != nil {
		fsp = tr.root.StartChild("fuse")
	}
	result := AssembleResult(m, req.ID, res.scores, res.feErrs)
	if fsp != nil {
		fsp.End()
	}
	if casc != nil {
		result.Cascade = casc
		s.noteCascadeEscalate(time.Since(cascStart), result.Degraded)
	}
	s.observeAdapt(j, &result, res.scores)
	tr.noteResult(j, &result)
	resp := ScoreResponse{
		ModelVersion:      m.Version,
		ClusterGeneration: m.ClusterGeneration(),
		Languages:         m.Bundle.Languages,
		ScoreResult:       result,
	}
	if tr != nil {
		resp.TraceID = tr.id
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	m := s.admit(w, r)
	if m == nil {
		return
	}
	tr := s.startTrace(w, r, "batch")
	defer func() { s.finishTrace(tr, "batch", statusOf(w)) }()
	if tr != nil {
		tr.modelVer = m.Version
	}
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Utterances) == 0 {
		writeError(w, http.StatusBadRequest, "batch names no utterances")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	// Admit every utterance first (they coalesce into shared scoring
	// passes), then gather; per-utterance faults degrade that item only.
	// Each utterance gets its own "utt" child span, so a batch trace shows
	// the fan-out: queue wait and per-front-end scoring per utterance.
	jobs := make([]*job, len(req.Utterances))
	results := make([]ScoreResult, len(req.Utterances))
	cascOut := make([]*CascadeOutcome, len(req.Utterances))
	for i := range req.Utterances {
		u := &req.Utterances[i]
		var uttSpan *obs.Span
		if tr != nil {
			uttSpan = tr.root.StartChild("utt")
			uttSpan.SetLabel("id", u.ID)
		}
		// Cascade fast path, per utterance: a tier-1 exit finishes the
		// utterance without a batcher submit; escalations fall through
		// and carry their outcome onto the heavy result.
		if s.cfg.Cascade.Enabled {
			casc, fast := s.tryCascade(m, u, uttSpan)
			if fast != nil {
				s.noteCascadeExit(-1)
				results[i] = *fast
				if uttSpan != nil {
					uttSpan.End()
				}
				continue
			}
			cascOut[i] = casc
		}
		j, _, err := s.submit(ctx, m, u.ID, u, uttSpan)
		if err != nil {
			if uttSpan != nil {
				uttSpan.SetLabel("error", err.Error())
				uttSpan.End()
			}
			results[i] = ScoreResult{ID: u.ID, Error: err.Error()}
			tr.noteResult(nil, &results[i])
			continue
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		if j == nil {
			continue
		}
		res, err := await(ctx, j)
		tr.noteResult(j, nil)
		switch {
		case err != nil:
			results[i] = ScoreResult{ID: j.id, Error: err.Error()}
		case res.err != nil:
			results[i] = ScoreResult{ID: j.id, Error: res.err.Error()}
		default:
			var fsp *obs.Span
			if j.span != nil {
				fsp = j.span.StartChild("fuse")
			}
			results[i] = AssembleResult(m, j.id, res.scores, res.feErrs)
			if fsp != nil {
				fsp.End()
			}
			s.observeAdapt(j, &results[i], res.scores)
		}
		if cascOut[i] != nil {
			results[i].Cascade = cascOut[i]
			s.noteCascadeEscalate(-1, results[i].Degraded)
		}
		tr.noteResult(j, &results[i])
		if j.span != nil {
			j.span.End()
		}
	}
	resp := BatchResponse{
		ModelVersion:      m.Version,
		ClusterGeneration: m.ClusterGeneration(),
		Languages:         m.Bundle.Languages,
		Results:           results,
	}
	// Per-utterance degradation rolls up into the batch summary; the
	// per-utterance flags and survivor sets on Results stay authoritative
	// (one degraded utterance must not smear its batch-mates).
	for i := range results {
		if results[i].Degraded {
			resp.Degraded = true
			resp.DegradedCount++
		}
	}
	if tr != nil {
		resp.TraceID = tr.id
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	m := s.reg.Current()
	if m == nil {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	// An open reload breaker means the process cannot pick up new models
	// (SIGHUP, cluster pushes, adapt promotions all route through it) —
	// not ready for orchestration purposes even though in-flight scoring
	// still works against the current model.
	if s.reloader != nil && s.reloader.breakerOpen() {
		writeError(w, http.StatusServiceUnavailable, "reload circuit breaker open")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ready",
		"model_version": m.Version,
		"loaded_at":     m.LoadedAt.UTC().Format(time.RFC3339),
		"front_ends":    m.Manifest.FrontEnds,
		"languages":     len(m.Bundle.Languages),
		"fusion":        m.Bundle.Fusion != nil,
	})
}

// handleMetricsz serves the process metrics in two formats, negotiated
// by the ?format query parameter (JSON by default, Prometheus text
// exposition for ?format=prom / ?format=prometheus). The JSON view is
// the metrics-only report — counters, gauges, histograms, and the
// 1m/5m rolling windows — without the per-run span dump (that lives at
// /tracez).
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	rep := obs.Snapshot().MetricsOnly()
	rep.Meta = map[string]string{"service": "lred"}
	if m := s.reg.Current(); m != nil {
		rep.Meta["model_version"] = fmt.Sprintf("%d", m.Version)
		rep.Meta["front_ends"] = strings.Join(m.Manifest.FrontEnds, ",")
		rank, prec := m.CompressionSummary()
		rep.Meta["model_precision"] = prec
		if rank > 0 {
			rep.Meta["model_rank"] = fmt.Sprintf("%d", rank)
		}
	}
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rep.WritePrometheus(w)
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		rep.WriteJSON(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or prom)", r.URL.Query().Get("format"))
	}
}

// handleTracez dumps the bounded trace buffer: recent requests, the
// slowest retained, and the degraded/errored exemplars (always kept).
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.traces.Snapshot())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	m, err := s.reloader.Reload()
	if err != nil {
		if errors.Is(err, ErrBreakerOpen) {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.Reload.Cooldown/time.Second)+1))
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "reload failed (previous model still active): %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model_version": m.Version,
		"manifest":      m.Manifest,
	})
}

// Run serves on l until ctx is cancelled (the daemon wires SIGTERM/SIGINT
// into that), then drains gracefully: new scoring work is rejected with
// 503, every queued job is finished and delivered, and open connections
// close — all within DrainTimeout. A clean drain returns nil.
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	return s.RunHandler(ctx, l, s.mux)
}

// RunHandler is Run with a caller-supplied handler tree — a wrapper
// that extends this server's endpoints (the cluster shard worker mounts
// /-/bundle and a generation check in front of the scoring handlers)
// while keeping the server's drain discipline: on ctx cancellation the
// queue finishes, new scoring work gets 503, and connections close
// within DrainTimeout.
func (s *Server) RunHandler(ctx context.Context, l net.Listener, h http.Handler) error {
	hs := &http.Server{Handler: h}
	if s.adapter != nil {
		actx, acancel := context.WithCancel(ctx)
		defer acancel()
		go s.adapter.Run(actx)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(l) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	return s.drain(hs)
}

func (s *Server) drain(hs *http.Server) error {
	s.draining.Store(true)
	obs.SetGauge("serve.draining", 1)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	// Finish the queue first: handlers blocked in await are the open
	// connections Shutdown waits on, and they can only finish once the
	// dispatcher delivers their results.
	if err := s.batcher.Drain(ctx); err != nil {
		hs.Close()
		return fmt.Errorf("serve: drain: %w", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Config sizes the server. Zero values select the defaults noted per
// field.
type Config struct {
	// ModelDir is the bundle directory (required); New fails fast if the
	// initial load fails.
	ModelDir string
	// MaxBatch bounds how many requests share one scoring pass (16).
	MaxBatch int
	// BatchWait is how long a non-full batch waits for company (2 ms).
	BatchWait time.Duration
	// QueueDepth bounds the admission queue; beyond it requests get
	// 429 + Retry-After (256).
	QueueDepth int
	// Workers sizes the scoring pool (GOMAXPROCS).
	Workers int
	// RequestTimeout is the per-request deadline covering queueing and
	// scoring (5 s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: queued work is finished and
	// open connections closed within it (10 s).
	DrainTimeout time.Duration
	// MaxBodyBytes bounds request bodies (32 MiB).
	MaxBodyBytes int64
	// Reload governs reload retry/backoff and the circuit breaker.
	Reload ReloadPolicy

	// clock substitutes the time source in tests (nil: real time).
	clock Clock
}

func (c *Config) setDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	c.Reload.setDefaults()
}

// Server is the scoring daemon: registry + batcher + HTTP handlers.
type Server struct {
	cfg      Config
	reg      *Registry
	reloader *reloader
	batcher  *Batcher
	mux      *http.ServeMux
	draining atomic.Bool
	inflight atomic.Int64
}

// New loads the bundle and starts the batching dispatcher. The returned
// server is ready to serve; pass its Handler to an http.Server or call
// Run.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	if cfg.ModelDir == "" {
		return nil, fmt.Errorf("serve: no model directory configured")
	}
	s := &Server{cfg: cfg, reg: NewRegistry(cfg.ModelDir)}
	if _, err := s.reg.Reload(); err != nil {
		return nil, fmt.Errorf("serve: initial model load: %w", err)
	}
	s.reloader = newReloader(s.reg, cfg.Reload, cfg.clock)
	s.batcher = newBatcher(cfg.MaxBatch, cfg.QueueDepth, cfg.Workers, cfg.BatchWait, nil, cfg.clock)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/score", s.instrument("score", s.handleScore))
	s.mux.HandleFunc("/v1/score/batch", s.instrument("batch", s.handleScoreBatch))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	s.mux.HandleFunc("/-/reload", s.instrument("reload", s.handleReload))
	return s, nil
}

// Registry exposes the model registry (reload loops, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Reload swaps in a fresh bundle through the retry/backoff and
// circuit-breaker policy; SIGHUP handlers and the /-/reload endpoint both
// go through here. On failure the previous model stays active.
func (s *Server) Reload() (*Model, error) { return s.reloader.Reload() }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// instrument wraps a handler with per-endpoint request counts, latency
// histograms, and the shared in-flight gauge.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := obs.GetCounter("serve.http." + name + ".requests")
	lat := obs.GetHistogram("serve.http." + name + ".seconds")
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		obs.SetGauge("serve.http.inflight", float64(s.inflight.Add(1)))
		t0 := time.Now()
		defer func() {
			lat.Observe(time.Since(t0).Seconds())
			obs.SetGauge("serve.http.inflight", float64(s.inflight.Add(-1)))
		}()
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// admit runs the checks every scoring request passes before decode:
// method, drain state, and model presence. It returns the model to score
// against, or nil after writing the response.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) *Model {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return nil
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return nil
	}
	// Chaos hook: error faults surface as 503 (bounded, well-formed
	// failures), delay faults model a slow handler.
	if err := faultinject.At("serve.handler"); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return nil
	}
	m := s.reg.Current()
	if m == nil {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return nil
	}
	return m
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// submit admits one resolved utterance into the batcher and translates
// backpressure into HTTP semantics.
func (s *Server) submit(ctx context.Context, m *Model, id string, req *ScoreRequest) (*job, int, error) {
	vectors, err := buildVectors(m, req)
	if err != nil {
		var re *requestError
		if errors.As(err, &re) {
			return nil, http.StatusBadRequest, err
		}
		return nil, http.StatusInternalServerError, err
	}
	j := &job{
		ctx:      ctx,
		model:    m,
		id:       id,
		vectors:  vectors,
		result:   make(chan jobResult, 1),
		enqueued: time.Now(),
	}
	switch err := s.batcher.Submit(j); {
	case errors.Is(err, ErrQueueFull):
		return nil, http.StatusTooManyRequests, err
	case errors.Is(err, ErrDraining):
		return nil, http.StatusServiceUnavailable, err
	case err != nil:
		return nil, http.StatusInternalServerError, err
	}
	return j, 0, nil
}

// await blocks until the job completes or its deadline passes.
func await(ctx context.Context, j *job) (jobResult, error) {
	select {
	case res := <-j.result:
		return res, nil
	case <-ctx.Done():
		return jobResult{}, ctx.Err()
	}
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	m := s.admit(w, r)
	if m == nil {
		return
	}
	var req ScoreRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	j, status, err := s.submit(ctx, m, req.ID, &req)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, "%v", err)
		return
	}
	res, err := await(ctx, j)
	if err != nil {
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
		return
	}
	if res.err != nil {
		status := http.StatusInternalServerError
		if errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, "%v", res.err)
		return
	}
	writeJSON(w, http.StatusOK, ScoreResponse{
		ModelVersion: m.Version,
		Languages:    m.Bundle.Languages,
		ScoreResult:  assembleResult(m, req.ID, res.scores, res.feErrs),
	})
}

func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	m := s.admit(w, r)
	if m == nil {
		return
	}
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Utterances) == 0 {
		writeError(w, http.StatusBadRequest, "batch names no utterances")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	// Admit every utterance first (they coalesce into shared scoring
	// passes), then gather; per-utterance faults degrade that item only.
	jobs := make([]*job, len(req.Utterances))
	results := make([]ScoreResult, len(req.Utterances))
	for i := range req.Utterances {
		u := &req.Utterances[i]
		j, _, err := s.submit(ctx, m, u.ID, u)
		if err != nil {
			results[i] = ScoreResult{ID: u.ID, Error: err.Error()}
			continue
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		if j == nil {
			continue
		}
		res, err := await(ctx, j)
		switch {
		case err != nil:
			results[i] = ScoreResult{ID: j.id, Error: err.Error()}
		case res.err != nil:
			results[i] = ScoreResult{ID: j.id, Error: res.err.Error()}
		default:
			results[i] = assembleResult(m, j.id, res.scores, res.feErrs)
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{
		ModelVersion: m.Version,
		Languages:    m.Bundle.Languages,
		Results:      results,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	m := s.reg.Current()
	if m == nil {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ready",
		"model_version": m.Version,
		"loaded_at":     m.LoadedAt.UTC().Format(time.RFC3339),
		"front_ends":    m.Manifest.FrontEnds,
		"languages":     len(m.Bundle.Languages),
		"fusion":        m.Bundle.Fusion != nil,
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	rep := obs.Snapshot()
	rep.Meta = map[string]string{"service": "lred"}
	if m := s.reg.Current(); m != nil {
		rep.Meta["model_version"] = fmt.Sprintf("%d", m.Version)
		rep.Meta["front_ends"] = strings.Join(m.Manifest.FrontEnds, ",")
	}
	w.Header().Set("Content-Type", "application/json")
	rep.WriteJSON(w)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	m, err := s.reloader.Reload()
	if err != nil {
		if errors.Is(err, ErrBreakerOpen) {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.Reload.Cooldown/time.Second)+1))
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "reload failed (previous model still active): %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model_version": m.Version,
		"manifest":      m.Manifest,
	})
}

// Run serves on l until ctx is cancelled (the daemon wires SIGTERM/SIGINT
// into that), then drains gracefully: new scoring work is rejected with
// 503, every queued job is finished and delivered, and open connections
// close — all within DrainTimeout. A clean drain returns nil.
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(l) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	return s.drain(hs)
}

func (s *Server) drain(hs *http.Server) error {
	s.draining.Store(true)
	obs.SetGauge("serve.draining", 1)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	// Finish the queue first: handlers blocked in await are the open
	// connections Shutdown waits on, and they can only finish once the
	// dispatcher delivers their results.
	if err := s.batcher.Drain(ctx); err != nil {
		hs.Close()
		return fmt.Errorf("serve: drain: %w", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/persist"
)

// maskedFused recomputes the documented degraded-fusion contract from a
// response's surviving per-front-end scores: missing subsystems are
// mean-imputed by fusion.ScoreMasked, exactly what the server must have
// done.
func maskedFused(b *persist.Bundle, scores map[string][]float64) []float64 {
	nFE := len(b.FrontEnds)
	present := make([]bool, nFE)
	for q := range b.FrontEnds {
		_, present[q] = scores[b.FrontEnds[q].Name]
	}
	numLangs := len(b.Languages)
	fused := make([]float64, numLangs)
	x := make([]float64, nFE)
	for k := 0; k < numLangs; k++ {
		for q := range b.FrontEnds {
			if row, ok := scores[b.FrontEnds[q].Name]; ok {
				x[q] = row[k]
			} else {
				x[q] = 0
			}
		}
		fused[k] = b.Fusion.ScoreMasked(x, present)[1]
	}
	return fused
}

// TestSingleFrontEndLossDegradesFusion is the acceptance property: killing
// any single front-end yields degraded: true responses whose fused scores
// follow the documented surviving-subsystem fusion, with the survivors'
// scores bit-identical to a healthy run.
func TestSingleFrontEndLossDegradesFusion(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 21)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testVector(9)
	want := expectedScores(b, raw)
	req := scoreRequestFor(b, raw)

	for _, victim := range []string{"FE0", "FE1"} {
		disable := faultinject.Enable(&faultinject.Plan{Seed: 5, Rules: []faultinject.Rule{
			{Site: "serve.score.fe." + victim, Kind: faultinject.KindError, Every: 1, Err: "injected outage"},
		}})
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", req)
		disable()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("victim %s: status %d (want 200 degraded): %s", victim, resp.StatusCode, body)
		}
		var sr ScoreResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if !sr.Degraded {
			t.Fatalf("victim %s: response not marked degraded: %s", victim, body)
		}
		survivor := "FE0"
		if victim == "FE0" {
			survivor = "FE1"
		}
		if len(sr.Surviving) != 1 || sr.Surviving[0] != survivor {
			t.Fatalf("victim %s: surviving %v, want [%s]", victim, sr.Surviving, survivor)
		}
		if msg := sr.FrontEndErrors[victim]; !strings.Contains(msg, "injected outage") {
			t.Fatalf("victim %s: frontend_errors = %v", victim, sr.FrontEndErrors)
		}
		if _, ok := sr.Scores[victim]; ok {
			t.Fatalf("victim %s still has scores in a degraded response", victim)
		}
		// Survivor scores are bit-identical to a healthy run.
		for k, v := range want[survivor] {
			if sr.Scores[survivor][k] != v {
				t.Fatalf("victim %s: survivor score[%d] = %v, want %v", victim, k, sr.Scores[survivor][k], v)
			}
		}
		// The fused row follows the documented masked-fusion path, nothing
		// else.
		wantFused := maskedFused(b, sr.Scores)
		if len(sr.Fused) != len(wantFused) {
			t.Fatalf("victim %s: fused has %d entries, want %d", victim, len(sr.Fused), len(wantFused))
		}
		for k := range wantFused {
			if sr.Fused[k] != wantFused[k] {
				t.Fatalf("victim %s: fused[%d] = %v, want %v (masked fusion)", victim, k, sr.Fused[k], wantFused[k])
			}
		}
	}

	// Faults gone → full battery again, bit-identical to the healthy run,
	// not marked degraded.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos request: status %d: %s", resp.StatusCode, body)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Degraded || len(sr.Surviving) != 0 || len(sr.FrontEndErrors) != 0 {
		t.Fatalf("healthy response carries degradation markers: %s", body)
	}
	for fe, row := range want {
		for k := range row {
			if sr.Scores[fe][k] != row[k] {
				t.Fatalf("healthy %s score[%d] changed after chaos", fe, k)
			}
		}
	}
}

// TestChaosServeUnderSeededFaults is the chaos schedule of the acceptance
// criteria: a seeded fault plan across every serving-path injection site,
// thousands of concurrent requests, and the invariants (a) the daemon
// never crashes, (b) non-2xx responses stay bounded and well-formed,
// (c) non-degraded 200s are bit-identical to direct scoring, and
// (d) degraded 200s follow the documented masked-fusion contract.
func TestChaosServeUnderSeededFaults(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 22)
	s := newTestServer(t, dir, func(c *Config) {
		c.QueueDepth = 4096 // the chaos run measures fault handling, not backpressure
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testVector(13)
	want := expectedScores(b, raw)
	req := scoreRequestFor(b, raw)
	reqBody, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	wantFusedFull := make([]float64, tbLangs)
	x := make([]float64, len(b.FrontEnds))
	for k := 0; k < tbLangs; k++ {
		for q := range b.FrontEnds {
			x[q] = want[b.FrontEnds[q].Name][k]
		}
		wantFusedFull[k] = b.Fusion.Score(x)[1]
	}

	total := 10000
	// Coalescing turns requests into far fewer micro-batches, so the
	// serve.batch deterministic rule must fire well within the batch
	// count or the every-site-fired assertion below fails; short mode's
	// ~95 batches can't reach 211.
	batchEvery := 211
	if testing.Short() {
		total = 1500
		batchEvery = 23
	}
	plan := &faultinject.Plan{Seed: 1337, Rules: []faultinject.Rule{
		{Site: "serve.handler", Kind: faultinject.KindError, Prob: 0.03, Err: "chaos: handler fault"},
		{Site: "serve.batch", Kind: faultinject.KindPanic, Every: batchEvery},
		{Site: "serve.score.fe.FE0", Kind: faultinject.KindError, Prob: 0.03, Err: "chaos: FE0 down"},
		{Site: "serve.score.fe.FE1", Kind: faultinject.KindError, Prob: 0.03, Err: "chaos: FE1 down"},
		{Site: "parallel.task", Kind: faultinject.KindPanic, Every: 2003},
	}}
	disable := faultinject.Enable(plan)
	defer disable()

	var ok200, degraded, non2xx, malformed atomic.Int64
	var firstErr atomic.Value
	fail := func(format string, args ...any) {
		malformed.Add(1)
		firstErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	const clients = 16
	var wg sync.WaitGroup
	perClient := total / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json", strings.NewReader(string(reqBody)))
				if err != nil {
					fail("transport error (daemon crashed?): %v", err)
					return
				}
				var sr ScoreResponse
				decErr := json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					// Every failure must still be a well-formed JSON error.
					non2xx.Add(1)
					if decErr != nil {
						fail("status %d with unparseable body: %v", resp.StatusCode, decErr)
					}
					continue
				}
				if decErr != nil {
					fail("200 with unparseable body: %v", decErr)
					continue
				}
				if sr.Degraded {
					degraded.Add(1)
					if len(sr.Surviving) == 0 || len(sr.FrontEndErrors) == 0 {
						fail("degraded response without surviving set or errors")
						continue
					}
					for _, fe := range sr.Surviving {
						for k, v := range want[fe] {
							if sr.Scores[fe][k] != v {
								fail("degraded: survivor %s score[%d] not bit-identical", fe, k)
							}
						}
					}
					mf := maskedFused(b, sr.Scores)
					for k := range mf {
						if sr.Fused[k] != mf[k] {
							fail("degraded: fused[%d] = %v, want %v (masked fusion)", k, sr.Fused[k], mf[k])
						}
					}
				} else {
					ok200.Add(1)
					// Non-degraded responses are bit-identical to direct
					// scoring — chaos elsewhere in the process must not
					// perturb them.
					for fe, row := range want {
						for k := range row {
							if sr.Scores[fe][k] != row[k] {
								fail("healthy response: %s score[%d] not bit-identical", fe, k)
							}
						}
					}
					for k := range wantFusedFull {
						if sr.Fused[k] != wantFusedFull[k] {
							fail("healthy response: fused[%d] not bit-identical", k)
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	if v := firstErr.Load(); v != nil {
		t.Fatalf("%d malformed responses; first: %s", malformed.Load(), v)
	}
	sent := int64(clients * perClient)
	t.Logf("chaos: %d requests → %d healthy, %d degraded, %d non-2xx",
		sent, ok200.Load(), degraded.Load(), non2xx.Load())
	// Error rates stay bounded: the plan injects ~3% handler faults plus
	// occasional batch/pool panics (each costs at most one micro-batch), so
	// well under a quarter of traffic may fail; most must come back 200.
	if non2xx.Load() > sent/4 {
		t.Fatalf("unbounded error rate: %d non-2xx of %d", non2xx.Load(), sent)
	}
	if ok200.Load() < sent/2 {
		t.Fatalf("only %d of %d requests healthy", ok200.Load(), sent)
	}
	if degraded.Load() == 0 {
		t.Fatal("fault plan produced no degraded responses")
	}
	if non2xx.Load() == 0 {
		t.Fatal("fault plan produced no failed responses (sites not wired?)")
	}

	// Every planned site actually fired.
	snap := faultinject.Snapshot()
	for _, r := range plan.Rules {
		if snap[r.Site].Fires == 0 {
			t.Errorf("site %s never fired (hits=%d)", r.Site, snap[r.Site].Hits)
		}
	}
	// Degradations are visible in /metricsz.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", struct{}{})
	_ = resp
	_ = body
	mresp, err := ts.Client().Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Counters map[string]int64  `json:"counters"`
		Meta     map[string]string `json:"meta"`
	}
	decErr := json.NewDecoder(mresp.Body).Decode(&rep)
	mresp.Body.Close()
	if decErr != nil {
		t.Fatal(decErr)
	}
	if rep.Counters["serve.score.degraded"] == 0 {
		t.Error("metricsz: serve.score.degraded counter is zero after chaos")
	}
	if !strings.Contains(rep.Meta["front_ends"], "FE0") {
		t.Errorf("metricsz: meta front_ends = %q", rep.Meta["front_ends"])
	}

	// The daemon survived: disable faults, and a clean request is healthy
	// and bit-identical again.
	disable()
	resp2, body2 := postJSON(t, ts.Client(), ts.URL+"/v1/score", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos request: status %d: %s", resp2.StatusCode, body2)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(body2, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Degraded {
		t.Fatal("post-chaos response still degraded")
	}
	for fe, row := range want {
		for k := range row {
			if sr.Scores[fe][k] != row[k] {
				t.Fatalf("post-chaos %s score[%d] not bit-identical", fe, k)
			}
		}
	}
}

// TestReloadRetryRecoversFromTransientFault: a reload that fails once and
// then succeeds must be absorbed by the retry loop without surfacing an
// error or tripping the breaker.
func TestReloadRetryRecoversFromTransientFault(t *testing.T) {
	dir := t.TempDir()
	writeTestBundle(t, dir, 23)
	reg := NewRegistry(dir)
	rl := newReloader(reg, ReloadPolicy{Retries: 2, BaseBackoff: time.Millisecond}, nil)

	defer faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "serve.reload", Kind: faultinject.KindError, Every: 1, Count: 1, Err: "transient I/O"},
	}})()
	m, err := rl.Reload()
	if err != nil {
		t.Fatalf("retry did not absorb a transient fault: %v", err)
	}
	if m == nil || m.Version != 1 {
		t.Fatalf("reload produced %+v", m)
	}
	if fires := faultinject.Snapshot()["serve.reload"].Fires; fires != 1 {
		t.Fatalf("site fired %d times, want 1", fires)
	}
	if obsReloadRetries.Value() == 0 {
		t.Error("retry counter never moved")
	}
}

// TestReloadBreakerOpensAndRecovers drives the breaker through its full
// cycle on a fake clock: repeated failures open it, reloads are then
// rejected without touching the registry, the cooldown admits a probe,
// and a successful probe closes it again.
func TestReloadBreakerOpensAndRecovers(t *testing.T) {
	dir := t.TempDir() // stays empty: every load fails until the bundle is written
	clk := newFakeClock()
	reg := NewRegistry(dir)
	rl := newReloader(reg, ReloadPolicy{
		Retries:   -1, // no retries: each Reload is exactly one attempt
		TripAfter: 3,
		Cooldown:  30 * time.Second,
	}, clk)

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := rl.Reload(); err == nil {
			t.Fatalf("reload %d of an empty dir succeeded", i)
		}
	}
	// Open: rejected up front with ErrBreakerOpen, even after the
	// underlying cause is fixed.
	writeTestBundle(t, dir, 24)
	if _, err := rl.Reload(); err == nil || !strings.Contains(err.Error(), ErrBreakerOpen.Error()) {
		t.Fatalf("open breaker let a reload through: %v", err)
	}
	// Still open just before the cooldown ends.
	clk.Advance(29 * time.Second)
	if _, err := rl.Reload(); err == nil || !strings.Contains(err.Error(), ErrBreakerOpen.Error()) {
		t.Fatalf("breaker closed before its cooldown: %v", err)
	}
	// Cooldown over → half-open probe runs and succeeds → closed.
	clk.Advance(2 * time.Second)
	m, err := rl.Reload()
	if err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if m.Version != 1 {
		t.Fatalf("probe loaded version %d, want 1", m.Version)
	}
	// Closed again: the next reload is a plain success.
	if _, err := rl.Reload(); err != nil {
		t.Fatalf("breaker did not close after a good probe: %v", err)
	}
}

// TestReloadBreakerHalfOpenFailureReArms: a failed half-open probe must
// re-arm the cooldown rather than close the breaker.
func TestReloadBreakerHalfOpenFailureReArms(t *testing.T) {
	dir := t.TempDir() // never gets a bundle: every probe fails
	clk := newFakeClock()
	rl := newReloader(NewRegistry(dir), ReloadPolicy{
		Retries:   -1,
		TripAfter: 2,
		Cooldown:  10 * time.Second,
	}, clk)

	for i := 0; i < 2; i++ {
		if _, err := rl.Reload(); err == nil {
			t.Fatal("reload of an empty dir succeeded")
		}
	}
	clk.Advance(11 * time.Second)
	// Half-open probe fails (dir still empty) — not ErrBreakerOpen, the
	// real load error.
	if _, err := rl.Reload(); err == nil || strings.Contains(err.Error(), ErrBreakerOpen.Error()) {
		t.Fatalf("half-open probe returned %v, want the load error", err)
	}
	// Immediately after, the breaker is open again.
	if _, err := rl.Reload(); err == nil || !strings.Contains(err.Error(), ErrBreakerOpen.Error()) {
		t.Fatalf("breaker did not re-arm after a failed probe: %v", err)
	}
}

// TestReloadEndpointBreaker503: the HTTP reload endpoint maps an open
// breaker to 503 + Retry-After while scoring keeps working.
func TestReloadEndpointBreaker503(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 25)
	s := newTestServer(t, dir, func(c *Config) {
		c.Reload = ReloadPolicy{Retries: -1, TripAfter: 2, Cooldown: 30 * time.Second}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Every reload fails at the injection site until the breaker trips.
	defer faultinject.Enable(&faultinject.Plan{Seed: 3, Rules: []faultinject.Rule{
		{Site: "serve.reload", Kind: faultinject.KindError, Every: 1, Err: "bundle store down"},
	}})()
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/-/reload", struct{}{})
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failing reload %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/-/reload", struct{}{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d (want 503): %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open breaker response has no Retry-After")
	}
	// Scoring is unaffected: the previous model still serves.
	raw := testVector(11)
	sresp, sbody := postJSON(t, ts.Client(), ts.URL+"/v1/score", scoreRequestFor(b, raw))
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("scoring during open breaker: status %d: %s", sresp.StatusCode, sbody)
	}
}

// TestBatchDegradationIsPerUtterance pins the batch accounting contract:
// a front-end outage degrades exactly the utterances that requested the
// broken front-end — batch-mates that never touched it come back clean
// and bit-identical — and the top-level Degraded/DegradedCount summary
// tallies the per-utterance sets without replacing them.
func TestBatchDegradationIsPerUtterance(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 23)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testVector(15)
	want := expectedScores(b, raw)
	full := scoreRequestFor(b, raw)
	full.ID = "both-fes"
	only1 := ScoreRequest{ID: "fe1-only", FrontEnds: map[string]FrontEndInput{
		"FE1": full.FrontEnds["FE1"],
	}}
	batch := BatchRequest{Utterances: []ScoreRequest{full, only1, only1}}

	disable := faultinject.Enable(&faultinject.Plan{Seed: 5, Rules: []faultinject.Rule{
		{Site: "serve.score.fe.FE0", Kind: faultinject.KindError, Every: 1, Err: "injected outage"},
	}})
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score/batch", batch)
	disable()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("%d results, want 3", len(br.Results))
	}
	hit := br.Results[0]
	if !hit.Degraded || len(hit.Surviving) != 1 || hit.Surviving[0] != "FE1" {
		t.Fatalf("FE0-requesting utterance: %+v, want degraded with surviving [FE1]", hit)
	}
	if msg := hit.FrontEndErrors["FE0"]; !strings.Contains(msg, "injected outage") {
		t.Fatalf("FE0 error %q", msg)
	}
	for i := 1; i < 3; i++ {
		clean := br.Results[i]
		if clean.Degraded || clean.Error != "" || clean.Surviving != nil || clean.FrontEndErrors != nil {
			t.Fatalf("batch-mate %d smeared by its neighbour's degradation: %+v", i, clean)
		}
		for k, v := range want["FE1"] {
			if clean.Scores["FE1"][k] != v {
				t.Fatalf("batch-mate %d score[%d] = %v, want %v (bit-identical)", i, k, clean.Scores["FE1"][k], v)
			}
		}
	}
	if !br.Degraded || br.DegradedCount != 1 {
		t.Fatalf("batch summary degraded=%v count=%d, want true/1", br.Degraded, br.DegradedCount)
	}

	// A healthy batch carries no summary flags at all (wire-compatible
	// with pre-summary clients: the fields marshal away).
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/score/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy batch: status %d", resp.StatusCode)
	}
	if strings.Contains(string(body), "degraded") {
		t.Fatalf("healthy batch response leaks degraded fields: %s", body)
	}
}

// Package serve is the online scoring subsystem: a versioned model
// registry with atomic hot-swap reload (registry.go), a micro-batching
// dispatcher that lets concurrent requests share SVM scoring passes
// (batcher.go), and the HTTP/JSON server that ties them together with
// deadlines, backpressure, and graceful drain (server.go). cmd/lred is the
// daemon entry point; cmd/lre -export-models produces the bundles it
// loads.
//
// The design exploits the shape of PPRVSM scoring (paper Eq. 7–9): once
// the per-front-end TFLLR scalers and one-vs-rest SVM sets are in memory,
// scoring an utterance is one sparse dot-product pass per (front-end,
// language) pair — stateless, read-only, and embarrassingly parallel.
// That is why a single model pointer can be swapped atomically under live
// traffic (in-flight requests keep scoring against the model they
// resolved at admission), and why batching helps: a batch of B requests
// over Q front-ends becomes B·Q independent tasks for one instrumented
// worker pool, amortizing pool spin-up and keeping every core busy
// instead of serializing B small passes.
package serve

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ngram"
	"repro/internal/obs"
	"repro/internal/persist"
)

// Model is one immutable loaded bundle. All fields are read-only after
// construction; requests capture the pointer at admission and keep using
// it even if the registry swaps underneath them.
type Model struct {
	Bundle   *persist.Bundle
	Manifest *persist.Manifest
	// Version counts successful loads in this process (1-based), so
	// responses and metrics can attribute scores to a model generation.
	Version  int64
	LoadedAt time.Time
	// Gen records how the bundle root resolved: which adaptation
	// generation is serving (0 = the base export) and whether resolution
	// had to fall back past an unusable pointer target.
	Gen persist.ResolveInfo

	feIndex map[string]int
	spaces  []*ngram.Space
}

func newModel(b *persist.Bundle, m *persist.Manifest, version int64, info persist.ResolveInfo) *Model {
	mod := &Model{
		Bundle:   b,
		Manifest: m,
		Version:  version,
		LoadedAt: time.Now(),
		Gen:      info,
		feIndex:  make(map[string]int, len(b.FrontEnds)),
		spaces:   make([]*ngram.Space, len(b.FrontEnds)),
	}
	for q := range b.FrontEnds {
		fe := &b.FrontEnds[q]
		mod.feIndex[fe.Name] = q
		mod.spaces[q] = ngram.NewSpace(fe.NumPhones, fe.Order)
	}
	return mod
}

// FrontEndIndex resolves a front-end name to its index in the bundle's
// FrontEnds (the key space of AssembleResult's score rows).
func (m *Model) FrontEndIndex(name string) (int, bool) {
	q, ok := m.feIndex[name]
	return q, ok
}

// CompressionSummary reports the model's compression operating point:
// the largest projection rank across front-ends (0 when unprojected)
// and the narrowest precision in the battery ("float64" for legacy
// bundles, which predate the Precision field).
func (m *Model) CompressionSummary() (rank int, precision string) {
	bits := 64
	precision = "float64"
	for q := range m.Bundle.FrontEnds {
		fe := &m.Bundle.FrontEnds[q]
		if fe.Proj != nil && fe.Proj.Rank > rank {
			rank = fe.Proj.Rank
		}
		if fb := precisionBits(fe.Precision); fb < bits {
			bits = fb
			precision = fe.Precision
		}
	}
	return rank, precision
}

// ClusterGeneration is the fleet generation the bundle was distributed
// under (see internal/cluster), zero for standalone bundles. It rides on
// the model pointer, so a request resolved against this model reports the
// generation it actually scored with even across a concurrent hot swap.
func (m *Model) ClusterGeneration() int64 {
	if m.Manifest == nil {
		return 0
	}
	return m.Manifest.ClusterGeneration
}

// Registry owns the current model of a scoring process. Reload is
// serialized; Current is a single atomic load on the hot path.
type Registry struct {
	dir string

	mu  sync.Mutex // serializes Reload
	gen int64
	cur atomic.Pointer[Model]
}

// NewRegistry returns a registry that loads bundles from dir. No model is
// loaded yet; call Reload.
func NewRegistry(dir string) *Registry {
	return &Registry{dir: dir}
}

// Current returns the active model, or nil before the first successful
// load.
func (r *Registry) Current() *Model { return r.cur.Load() }

// Dir returns the bundle directory the registry reloads from.
func (r *Registry) Dir() string { return r.dir }

// Reload resolves the bundle root (honoring a CURRENT generation pointer
// when internal/adapt has promoted one; plain roots load exactly as
// before) and atomically swaps the result in. On error the previous model
// stays active — a failed reload must never take a serving process down
// or degrade it.
func (r *Registry) Reload() (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b *persist.Bundle
	var m *persist.Manifest
	var info persist.ResolveInfo
	// Chaos hook: an injected fault behaves exactly like a failed bundle
	// load (exercises the retry/backoff and circuit-breaker path).
	err := faultinject.At("serve.reload")
	if err == nil {
		b, m, info, err = persist.ResolveBundle(r.dir)
	}
	if err != nil {
		obs.Inc("serve.model.reload_errors")
		return nil, err
	}
	if info.Fallback {
		// The pointer's designated generation was unusable (torn
		// promotion, disk rot) — an older generation or the base bundle is
		// serving instead.
		obs.Inc("serve.model.gen_fallback")
	}
	r.gen++
	mod := newModel(b, m, r.gen, info)
	r.cur.Store(mod)
	obs.Inc("serve.model.reloads")
	obs.SetGauge("serve.model.version", float64(mod.Version))
	obs.SetGauge("serve.model.front_ends", float64(len(b.FrontEnds)))
	obs.SetGauge("serve.model.generation", float64(info.Generation))
	setFootprintGauges(info.Dir, b, m)
	return mod, nil
}

// setFootprintGauges publishes the live generation's serving footprint:
// sealed bundle size on disk, in-memory packed scoring bytes across all
// front-ends, and the compression operating point (projection rank, the
// narrowest precision in the battery as bits). lrestat's model panel
// reads these from /metricsz.
func setFootprintGauges(dir string, b *persist.Bundle, m *persist.Manifest) {
	file := defaultBundleFileName
	if m != nil && m.BundleFile != "" {
		file = m.BundleFile
	}
	if st, err := os.Stat(filepath.Join(dir, file)); err == nil {
		obs.SetGauge("serve.model.bundle_bytes", float64(st.Size()))
	}
	var packed, rank int
	bits := 64
	for q := range b.FrontEnds {
		fe := &b.FrontEnds[q]
		packed += fe.PackedBytes()
		if fe.Proj != nil && fe.Proj.Rank > rank {
			rank = fe.Proj.Rank
		}
		if fb := precisionBits(fe.Precision); fb < bits {
			bits = fb
		}
	}
	obs.SetGauge("serve.model.packed_bytes", float64(packed))
	obs.SetGauge("serve.model.rank", float64(rank))
	obs.SetGauge("serve.model.precision_bits", float64(bits))
}

// defaultBundleFileName mirrors persist's unexported default for the
// footprint gauge when a manifest predates the BundleFile field.
const defaultBundleFileName = "bundle.gob"

func precisionBits(p string) int {
	switch p {
	case "float32":
		return 32
	case "int8":
		return 8
	default:
		return 64
	}
}

package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing access logs
// (the handler goroutine writes while the test reads).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func getTracez(t *testing.T, ts *httptest.Server) *obs.TracezReport {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez status %d", resp.StatusCode)
	}
	var rep obs.TracezReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

func findTrace(rep *obs.TracezReport, id string) *obs.TraceEntry {
	for _, e := range rep.Recent {
		if e.TraceID == id {
			return e
		}
	}
	return nil
}

// TestTraceparentRoundTrip drives one scored request with a caller-supplied
// traceparent and checks the full propagation contract: the accepted trace
// id comes back in the response header and body, lands in /tracez with the
// caller's span id as parent, and the buffered span tree carries every
// pipeline stage with internally consistent durations.
func TestTraceparentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 1)
	var logBuf syncBuffer
	s := newTestServer(t, dir, func(c *Config) {
		c.AccessLog = &logBuf
		c.AccessLogEvery = 1
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	data, _ := json.Marshal(scoreRequestFor(b, testVector(7)))
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/score", bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+callerTrace+"-"+callerSpan+"-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr ScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// Response header: same trace id, fresh server span id, sampled flag.
	tp := resp.Header.Get("traceparent")
	gotTrace, gotSpan, ok := obs.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", tp)
	}
	if gotTrace != callerTrace {
		t.Fatalf("response trace id %s, want caller's %s", gotTrace, callerTrace)
	}
	if gotSpan == callerSpan {
		t.Fatal("server reused the caller's span id as its own")
	}
	if sr.TraceID != callerTrace {
		t.Fatalf("body trace_id %q, want %q", sr.TraceID, callerTrace)
	}

	// /tracez: the entry correlates by trace id and remembers the caller.
	e := findTrace(getTracez(t, ts), callerTrace)
	if e == nil {
		t.Fatal("trace missing from /tracez recent")
	}
	if e.ParentSpanID != callerSpan {
		t.Fatalf("parent span %q, want caller's %q", e.ParentSpanID, callerSpan)
	}
	if e.SpanID != gotSpan {
		t.Fatalf("buffered span id %s != response header span id %s", e.SpanID, gotSpan)
	}
	if e.Status != http.StatusOK || e.Endpoint != "score" {
		t.Fatalf("entry status=%d endpoint=%q", e.Status, e.Endpoint)
	}
	if e.ModelVersion != 1 {
		t.Fatalf("model version %d, want 1", e.ModelVersion)
	}
	if e.BatchID == 0 {
		t.Fatal("no dispatch batch recorded")
	}
	if e.Degraded {
		t.Fatal("healthy request marked degraded")
	}

	// Span tree: every stage present, each stage no longer than the root.
	if e.Root == nil {
		t.Fatal("no span tree buffered")
	}
	fes := 0
	for _, stage := range []string{"decode", "resolve", "queue.wait", "batch.form", "score.fe", "fuse"} {
		sp := e.Root.Find(stage)
		if sp == nil {
			t.Fatalf("stage %q missing from span tree", stage)
		}
		if sp.DurationSec < 0 || sp.DurationSec > e.DurationSec {
			t.Fatalf("stage %q duration %v outside root %v", stage, sp.DurationSec, e.DurationSec)
		}
	}
	var walk func(d *obs.SpanData)
	walk = func(d *obs.SpanData) {
		if d.Name == "score.fe" {
			fes++
			if fe := d.Labels["fe"]; fe != "FE0" && fe != "FE1" {
				t.Fatalf("score.fe span labeled %q", fe)
			}
		}
		for _, c := range d.Children {
			walk(c)
		}
	}
	walk(e.Root)
	if fes != len(b.FrontEnds) {
		t.Fatalf("%d score.fe spans, want %d", fes, len(b.FrontEnds))
	}
	if got := e.Root.Find("batch.form"); got.DurationSec > e.Root.Find("queue.wait").DurationSec+e.DurationSec {
		t.Fatalf("implausible batch.form duration %v", got.DurationSec)
	}

	// Access log: the same trace id, with per-front-end timings.
	var rec accessRecord
	line := strings.TrimSpace(logBuf.String())
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log line %q: %v", line, err)
	}
	if rec.TraceID != callerTrace {
		t.Fatalf("access log trace_id %q, want %q", rec.TraceID, callerTrace)
	}
	if rec.Status != http.StatusOK || rec.Endpoint != "score" {
		t.Fatalf("access log status=%d endpoint=%q", rec.Status, rec.Endpoint)
	}
	if len(rec.FEMs) != len(b.FrontEnds) {
		t.Fatalf("access log fe_ms has %d entries, want %d", len(rec.FEMs), len(b.FrontEnds))
	}
	if !rec.Sampled {
		t.Fatal("every=1 line not marked sampled")
	}
}

// TestTraceMintedWhenAbsent: a request without (or with a malformed)
// traceparent gets a fresh valid trace id.
func TestTraceMintedWhenAbsent(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 1)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seen := map[string]bool{}
	for _, hdr := range []string{"", "00-zz-bad-01", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"} {
		data, _ := json.Marshal(scoreRequestFor(b, testVector(7)))
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/score", bytes.NewReader(data))
		req.Header.Set("Content-Type", "application/json")
		if hdr != "" {
			req.Header.Set("traceparent", hdr)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var sr ScoreResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id, _, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
		if !ok {
			t.Fatalf("minted traceparent %q invalid", resp.Header.Get("traceparent"))
		}
		if sr.TraceID != id {
			t.Fatalf("body trace_id %q != header trace id %q", sr.TraceID, id)
		}
		if seen[id] {
			t.Fatalf("trace id %s reused", id)
		}
		seen[id] = true
		if e := findTrace(getTracez(t, ts), id); e == nil {
			t.Fatalf("minted trace %s missing from /tracez", id)
		} else if e.ParentSpanID != "" {
			t.Fatalf("minted trace has parent span %q", e.ParentSpanID)
		}
	}
}

// TestDegradedTraceRetainedAsExemplar forces one front-end down and checks
// the failure side of the retention policy: the degraded trace lands in the
// exemplar list with its surviving front-end set, and its access-log line
// is emitted even though sampling would have dropped it.
func TestDegradedTraceRetainedAsExemplar(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 1)
	var logBuf syncBuffer
	s := newTestServer(t, dir, func(c *Config) {
		c.AccessLog = &logBuf
		c.AccessLogEvery = 1000 // sampling alone would drop all but request 1
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A healthy request first occupies the sampling grid's first slot...
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", scoreRequestFor(b, testVector(7)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request status %d: %s", resp.StatusCode, body)
	}

	// ...then FE0 goes down and the next request degrades.
	disable := faultinject.Enable(&faultinject.Plan{Seed: 5, Rules: []faultinject.Rule{
		{Site: "serve.score.fe.FE0", Kind: faultinject.KindError, Every: 1, Err: "injected outage"},
	}})
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/score", scoreRequestFor(b, testVector(7)))
	disable()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request status %d: %s", resp.StatusCode, body)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded {
		t.Fatal("fault did not degrade the request")
	}

	rep := getTracez(t, ts)
	var ex *obs.TraceEntry
	for _, e := range rep.Exemplars {
		if e.TraceID == sr.TraceID {
			ex = e
		}
	}
	if ex == nil {
		t.Fatalf("degraded trace %s not retained as exemplar", sr.TraceID)
	}
	if !ex.Degraded {
		t.Fatal("exemplar not marked degraded")
	}
	if len(ex.Surviving) != 1 || ex.Surviving[0] != "FE1" {
		t.Fatalf("exemplar survivors %v, want [FE1]", ex.Surviving)
	}
	if sp := ex.Root.Find("score.fe"); sp == nil {
		t.Fatal("degraded trace lost its span tree")
	}

	// The degraded request's log line was forced past sampling.
	var lines []accessRecord
	sc := bufio.NewScanner(strings.NewReader(logBuf.String()))
	for sc.Scan() {
		var rec accessRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("access log line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	var forced *accessRecord
	for i := range lines {
		if lines[i].TraceID == sr.TraceID {
			forced = &lines[i]
		}
	}
	if forced == nil {
		t.Fatalf("degraded request %s missing from access log: %v", sr.TraceID, lines)
	}
	if !forced.Degraded || forced.Sampled {
		t.Fatalf("degraded line should be forced (degraded=true, sampled=false): %+v", forced)
	}
}

// TestBatchTraceFansOut: one /v1/score/batch request produces a single
// trace whose tree contains one "utt" subtree per utterance.
func TestBatchTraceFansOut(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 1)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 3
	var batch BatchRequest
	for i := 0; i < n; i++ {
		u := scoreRequestFor(b, testVector(uint64(i+10)))
		u.ID = fmt.Sprintf("u%d", i)
		batch.Utterances = append(batch.Utterances, u)
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.TraceID == "" {
		t.Fatal("batch response has no trace id")
	}
	e := findTrace(getTracez(t, ts), br.TraceID)
	if e == nil {
		t.Fatal("batch trace missing from /tracez")
	}
	if e.Endpoint != "batch" {
		t.Fatalf("endpoint %q, want batch", e.Endpoint)
	}
	utts := 0
	for _, c := range e.Root.Children {
		if c.Name == "utt" {
			utts++
			for _, stage := range []string{"queue.wait", "score.fe", "fuse"} {
				if c.Find(stage) == nil {
					t.Fatalf("utterance subtree missing %q", stage)
				}
			}
		}
	}
	if utts != n {
		t.Fatalf("%d utt spans, want %d", utts, n)
	}
}

// TestMetricszFormats: JSON by default (metrics-only, with rolling
// windows), Prometheus exposition on ?format=prom, 400 on junk.
func TestMetricszFormats(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 1)
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Score once so serve metrics exist.
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", scoreRequestFor(b, testVector(7))); resp.StatusCode != http.StatusOK {
		t.Fatalf("score status %d: %s", resp.StatusCode, body)
	}

	resp, err := ts.Client().Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default Content-Type %q", ct)
	}
	var rep obs.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rep.Spans) != 0 {
		t.Fatalf("/metricsz leaked %d process spans (use /tracez)", len(rep.Spans))
	}
	wd, ok := rep.Windows["serve.http.score.seconds"]
	if !ok {
		t.Fatalf("no rolling window for scoring latency; windows: %v", rep.Windows)
	}
	if wd.M1.Count < 1 || wd.M5.Count < wd.M1.Count {
		t.Fatalf("window counts m1=%d m5=%d", wd.M1.Count, wd.M5.Count)
	}
	if wd.M1.P95Sec < wd.M1.P50Sec {
		t.Fatalf("window p95 %v < p50 %v", wd.M1.P95Sec, wd.M1.P50Sec)
	}

	resp, err = ts.Client().Get(ts.URL + "/metricsz?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	promBody := new(bytes.Buffer)
	promBody.ReadFrom(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prom Content-Type %q", ct)
	}
	text := promBody.String()
	for _, want := range []string{
		"# TYPE serve_http_score_seconds histogram",
		`serve_http_score_seconds_bucket{le="+Inf"}`,
		"serve_http_score_seconds_count",
		"serve_http_score_requests_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, text)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/metricsz?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=xml status %d, want 400", resp.StatusCode)
	}
}

// TestDisableTracing: the benchmark baseline really is dark — no trace
// ids minted, nothing buffered, nothing logged.
func TestDisableTracing(t *testing.T) {
	dir := t.TempDir()
	b := writeTestBundle(t, dir, 1)
	var logBuf syncBuffer
	s := newTestServer(t, dir, func(c *Config) {
		c.DisableTracing = true
		c.AccessLog = &logBuf
		c.AccessLogEvery = 1
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", scoreRequestFor(b, testVector(7)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if tp := resp.Header.Get("traceparent"); tp != "" {
		t.Fatalf("tracing disabled but traceparent %q returned", tp)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.TraceID != "" {
		t.Fatalf("tracing disabled but trace_id %q in body", sr.TraceID)
	}
	if rep := getTracez(t, ts); rep.Added != 0 || len(rep.Recent) != 0 {
		t.Fatalf("tracing disabled but /tracez has %d traces", rep.Added)
	}
	if logBuf.String() != "" {
		t.Fatalf("tracing disabled but access log wrote %q", logBuf.String())
	}
}

package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ngram"
	"repro/internal/persist"
	"repro/internal/proj"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// compressTestBundle rewrites the serve fixture bundle into compressed
// form: a rank-r projection fitted on TFLLR-scaled probe vectors, OVR
// weights projected into the rank space, and for int8 the projected
// weights quantized. The fusion backend is kept — structurally it only
// sees score rows, whatever space they came from.
func compressTestBundle(t *testing.T, seed uint64, rank int, prec svm.Precision) *persist.Bundle {
	t.Helper()
	b := testBundle(seed)
	space := ngram.NewSpace(tbPhones, tbOrder)
	dim := space.Dim()
	r := rng.New(seed ^ 0xc0ffee)
	var probes []*sparse.Vector
	for i := 0; i < 40; i++ {
		m := make(map[int32]float64)
		for j := 0; j < 8; j++ {
			m[int32(r.Intn(dim))] = r.Float64()
		}
		probes = append(probes, sparse.FromMap(m))
	}
	for f := range b.FrontEnds {
		fe := &b.FrontEnds[f]
		scaled := make([]*sparse.Vector, len(probes))
		for i, p := range probes {
			v := p.Clone()
			fe.TFLLR.Apply(v)
			scaled[i] = v
		}
		p, err := proj.Fit(scaled, dim, proj.Config{Rank: rank, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		packed, err := p.Pack(prec)
		if err != nil {
			t.Fatal(err)
		}
		ovr := &svm.OneVsRest{NumClasses: fe.OVR.NumClasses}
		for _, mdl := range fe.OVR.Models {
			w := make([]float64, rank)
			for d := 0; d < rank; d++ {
				row := p.Basis[d*dim : (d+1)*dim]
				var s float64
				for j, wv := range mdl.W {
					s += wv * row[j]
				}
				w[d] = s
			}
			ovr.Models = append(ovr.Models, &svm.Model{W: w, Bias: mdl.Bias})
		}
		fe.Proj = packed
		if prec == svm.Int8 {
			q, err := ovr.Quantize()
			if err != nil {
				t.Fatal(err)
			}
			fe.OVR, fe.Quant, fe.Precision = nil, q, svm.Int8.String()
		} else {
			fe.OVR, fe.Precision = ovr, prec.String()
		}
	}
	return b
}

// expectedCompressedScores is the local ground truth for the projected
// path: TFLLR → projection → precision-dispatched kernel.
func expectedCompressedScores(b *persist.Bundle, raw *sparse.Vector) map[string][]float64 {
	out := make(map[string][]float64)
	for i := range b.FrontEnds {
		fe := &b.FrontEnds[i]
		v := raw.Clone()
		if fe.TFLLR != nil {
			fe.TFLLR.Apply(v)
		}
		out[fe.Name] = fe.Scores(fe.Proj.Apply(v))
	}
	return out
}

// TestServeCompressedBundleEndToEnd drives a raw supervector through the
// full HTTP path against a compressed bundle at every precision rung and
// pins the response to the local projected-scoring ground truth — the
// serving layer must apply TFLLR, then the projection, then the
// precision-dispatched kernel, exactly once each.
func TestServeCompressedBundleEndToEnd(t *testing.T) {
	const rank = 6
	for _, prec := range []svm.Precision{svm.Float64, svm.Float32, svm.Int8} {
		t.Run(prec.String(), func(t *testing.T) {
			dir := t.TempDir()
			b := compressTestBundle(t, 21, rank, prec)
			if err := persist.SaveBundle(dir, b, persist.Manifest{Seed: 21}); err != nil {
				t.Fatal(err)
			}
			s := newTestServer(t, dir, nil)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			raw := testVector(31)
			want := expectedCompressedScores(b, raw)
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", scoreRequestFor(b, raw))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var sr ScoreResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			for fe, row := range want {
				got := sr.Scores[fe]
				if len(got) != len(row) {
					t.Fatalf("%s: %d scores, want %d", fe, len(got), len(row))
				}
				for k := range row {
					if got[k] != row[k] {
						t.Fatalf("%s score[%d] = %v, want %v", fe, k, got[k], row[k])
					}
				}
			}
			if len(sr.Fused) != tbLangs {
				t.Fatalf("fused has %d entries, want %d (full battery)", len(sr.Fused), tbLangs)
			}

			// The model footprint surfaces on /metricsz: precision/rank meta
			// and the compression gauges of the live generation.
			mresp, mbody := getJSON(t, ts.Client(), ts.URL+"/metricsz")
			if mresp.StatusCode != http.StatusOK {
				t.Fatalf("/metricsz status %d", mresp.StatusCode)
			}
			var rep struct {
				Meta   map[string]string  `json:"meta"`
				Gauges map[string]float64 `json:"gauges"`
			}
			if err := json.Unmarshal(mbody, &rep); err != nil {
				t.Fatal(err)
			}
			if got := rep.Meta["model_precision"]; got != prec.String() {
				t.Fatalf("model_precision meta %q, want %q", got, prec)
			}
			if got := rep.Meta["model_rank"]; got != "6" {
				t.Fatalf("model_rank meta %q, want 6", got)
			}
			for _, g := range []string{"serve.model.bundle_bytes", "serve.model.packed_bytes", "serve.model.rank", "serve.model.precision_bits"} {
				if rep.Gauges[g] <= 0 {
					t.Fatalf("gauge %s = %v, want > 0", g, rep.Gauges[g])
				}
			}
			if rep.Gauges["serve.model.rank"] != rank {
				t.Fatalf("rank gauge %v, want %d", rep.Gauges["serve.model.rank"], rank)
			}
		})
	}
}

func getJSON(t *testing.T, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestReloadRejectsDimensionMismatchedBundle is the serving half of the
// manifest-geometry fix: a bundle directory whose manifest records a
// different projection rank than the bundle carries must fail Reload as
// corruption while the previously loaded model keeps serving.
func TestReloadRejectsDimensionMismatchedBundle(t *testing.T) {
	dir := t.TempDir()
	writeTestBundle(t, dir, 4)
	reg := NewRegistry(dir)
	if _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	prev := reg.Current()

	cb := compressTestBundle(t, 22, 5, svm.Int8)
	if err := persist.SaveBundle(dir, cb, persist.Manifest{Seed: 22}); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir, persist.ManifestName)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(data), `"rank": 5`, `"rank": 9`, 1)
	if doctored == string(data) {
		t.Fatal("manifest did not record the projection rank")
	}
	if err := os.WriteFile(mpath, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Reload(); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("reload of rank-mismatched bundle: err=%v, want ErrCorrupt", err)
	}
	if got := reg.Current(); got != prev {
		t.Fatal("failed reload swapped the model")
	}

	// Undoctored, the compressed bundle hot-swaps in cleanly.
	if err := os.WriteFile(mpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if rank, prec := m.CompressionSummary(); rank != 5 || prec != "int8" {
		t.Fatalf("compression summary (%d, %s), want (5, int8)", rank, prec)
	}
}

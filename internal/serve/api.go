package serve

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// Wire types of the HTTP/JSON API. A request supplies, per front-end,
// either a phone lattice (confusion-network slots over that front-end's
// inventory, as its decoder would emit) or a pre-extracted supervector.
// Supervectors are the per-order-normalized expected n-gram counts of
// Eq. 2–3; the server applies the bundle's TFLLR scaling unless the client
// marks them as already scaled.

// Supervector is a sparse vector as (strictly increasing index, value)
// pairs.
type Supervector struct {
	Idx []int32   `json:"idx"`
	Val []float64 `json:"val"`
	// Scaled marks the vector as already TFLLR-scaled (e.g. replayed from
	// an offline extraction); the server then scores it as-is.
	Scaled bool `json:"scaled,omitempty"`
}

// Slot is one confusion-network alternative.
type Slot struct {
	Phone int     `json:"phone"`
	Prob  float64 `json:"prob"`
}

// FrontEndInput carries one front-end's evidence — exactly one of the two
// fields must be set.
type FrontEndInput struct {
	Supervector *Supervector `json:"supervector,omitempty"`
	Lattice     [][]Slot     `json:"lattice,omitempty"`
}

// ScoreRequest is the body of POST /v1/score.
type ScoreRequest struct {
	ID        string                   `json:"id,omitempty"`
	FrontEnds map[string]FrontEndInput `json:"frontends"`
}

// BatchRequest is the body of POST /v1/score/batch.
type BatchRequest struct {
	Utterances []ScoreRequest `json:"utterances"`
}

// ScoreResult is one utterance's outcome. Scores[fe][k] is front-end fe's
// decision value for language k (the row of the paper's score matrix F);
// Fused[k] is the LDA-MMI backend's log-odds when the bundle carries a
// fusion backend and the request covered every front-end.
//
// When a front-end fails mid-request (recognizer or SVM error/panic) the
// server degrades instead of failing the utterance: the broken front-end
// is dropped from the fusion input and the backend combination is
// rescaled over the survivors (see DESIGN.md, "Graceful degradation").
// Such results carry Degraded=true, the surviving front-end set, and the
// per-front-end errors.
type ScoreResult struct {
	ID     string               `json:"id,omitempty"`
	Best   string               `json:"best,omitempty"`
	Scores map[string][]float64 `json:"scores,omitempty"`
	Fused  []float64            `json:"fused,omitempty"`
	// Degraded marks a result computed without one or more of the
	// requested front-ends.
	Degraded bool `json:"degraded,omitempty"`
	// Surviving lists the front-ends that contributed scores; set only on
	// degraded results (otherwise every requested front-end survived).
	Surviving []string `json:"surviving,omitempty"`
	// FrontEndErrors maps each failed front-end to its error.
	FrontEndErrors map[string]string `json:"frontend_errors,omitempty"`
	Error          string            `json:"error,omitempty"`
	// Cascade reports the two-tier cascade decision when the server runs
	// with -cascade (absent otherwise). On a tier-1 exit, Fused carries
	// the calibrated tier-1 decision row (heavy fused-score scale) and
	// Scores is empty — no front-end battery ran.
	Cascade *CascadeOutcome `json:"cascade,omitempty"`
}

// ScoreResponse is the body of a successful POST /v1/score. TraceID is
// the request's W3C trace id (accepted from the caller's traceparent or
// minted by the server) — the key into /tracez and the access log.
type ScoreResponse struct {
	ModelVersion int64 `json:"model_version"`
	// ClusterGeneration is the fleet generation of the serving bundle
	// when the process is a cluster shard worker (see internal/cluster);
	// zero — and omitted — in standalone deployments.
	ClusterGeneration int64    `json:"cluster_generation,omitempty"`
	Languages         []string `json:"languages"`
	TraceID           string   `json:"trace_id,omitempty"`
	ScoreResult
}

// BatchResponse is the body of POST /v1/score/batch. Results align with
// the request's utterances; per-utterance failures carry an Error instead
// of scores.
//
// Degradation is accounted per utterance, never for the batch as a
// whole: each Results[i] carries its own Degraded flag, Surviving set,
// and FrontEndErrors (one utterance losing a front-end says nothing
// about its batch-mates). Degraded and DegradedCount summarize that
// per-utterance accounting — Degraded is true iff at least one
// utterance degraded — so callers that only need the tally (the cluster
// coordinator's per-shard accounting, dashboards) don't have to walk
// Results.
type BatchResponse struct {
	ModelVersion int64 `json:"model_version"`
	// ClusterGeneration is the fleet generation of the serving bundle
	// when the process is a cluster shard worker (see internal/cluster);
	// zero — and omitted — in standalone deployments.
	ClusterGeneration int64         `json:"cluster_generation,omitempty"`
	Languages         []string      `json:"languages"`
	TraceID           string        `json:"trace_id,omitempty"`
	Results           []ScoreResult `json:"results"`
	// Degraded is true when any utterance in Results degraded;
	// DegradedCount is how many did.
	Degraded      bool `json:"degraded,omitempty"`
	DegradedCount int  `json:"degraded_count,omitempty"`
}

// requestError is a client-side fault (HTTP 400).
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &requestError{msg: fmt.Sprintf(format, args...)}
}

// buildVectors resolves a request against a model: every named front-end
// must exist in the bundle, and each input becomes a TFLLR-scaled
// supervector ready for the SVM pass. The returned map is keyed by the
// bundle's front-end index.
func buildVectors(m *Model, req *ScoreRequest) (map[int]*sparse.Vector, error) {
	if len(req.FrontEnds) == 0 {
		return nil, badRequest("request names no front-ends")
	}
	out := make(map[int]*sparse.Vector, len(req.FrontEnds))
	for name, in := range req.FrontEnds {
		q, ok := m.feIndex[name]
		if !ok {
			return nil, badRequest("unknown front-end %q (model has %v)", name, m.Manifest.FrontEnds)
		}
		fe := &m.Bundle.FrontEnds[q]
		space := m.spaces[q]
		var v *sparse.Vector
		switch {
		case in.Supervector != nil && in.Lattice != nil:
			return nil, badRequest("front-end %q: supply a supervector or a lattice, not both", name)
		case in.Supervector != nil:
			sv := in.Supervector
			if len(sv.Idx) != len(sv.Val) {
				return nil, badRequest("front-end %q: %d indices for %d values", name, len(sv.Idx), len(sv.Val))
			}
			// Copy: the vector outlives the request body, and TFLLR scales
			// in place.
			v = &sparse.Vector{
				Idx: append([]int32(nil), sv.Idx...),
				Val: append([]float64(nil), sv.Val...),
			}
			if err := v.Validate(); err != nil {
				return nil, badRequest("front-end %q: %v", name, err)
			}
			if n := len(v.Idx); n > 0 && int(v.Idx[n-1]) >= space.Dim() {
				return nil, badRequest("front-end %q: index %d outside the %d-dim space", name, v.Idx[n-1], space.Dim())
			}
			for _, x := range v.Val {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return nil, badRequest("front-end %q: non-finite supervector value", name)
				}
			}
			if !sv.Scaled && fe.TFLLR != nil {
				fe.TFLLR.Apply(v)
			}
		case in.Lattice != nil:
			l, err := latticeFromSlots(in.Lattice, fe.NumPhones)
			if err != nil {
				return nil, badRequest("front-end %q: %v", name, err)
			}
			v = space.Supervector(l)
			if fe.TFLLR != nil {
				fe.TFLLR.Apply(v)
			}
		default:
			return nil, badRequest("front-end %q: empty input", name)
		}
		// Compressed bundles carry a low-rank projection: the TFLLR-scaled
		// raw-space supervector is mapped into the rank space here, once per
		// request, so the batch kernel only ever sees weight-space vectors.
		if fe.Proj != nil {
			v = fe.Proj.Apply(v)
		}
		out[q] = v
	}
	return out, nil
}

// latticeFromSlots builds a confusion-network lattice from wire slots via
// lattice.ParseSausage, the error-returning parser for untrusted input
// (malformed lattices become 400s, never panics).
func latticeFromSlots(slots [][]Slot, numPhones int) (*lattice.Lattice, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("empty lattice")
	}
	ls := make([]lattice.SausageSlot, len(slots))
	for i, slot := range slots {
		for _, alt := range slot {
			ls[i] = append(ls[i], struct {
				Phone int
				Prob  float64
			}{Phone: alt.Phone, Prob: alt.Prob})
		}
	}
	return lattice.ParseSausage(ls, numPhones)
}

// Degradation counters: cumulative (obs run reports and /metricsz) and
// rolling-window (the RED "errors" of the serving path — degradation is
// the failure mode scoring absorbs instead of surfacing as a 5xx).
var (
	obsDegraded  = obs.GetCounter("serve.score.degraded")
	wobsDegraded = obs.GetWindowCounter("serve.score.degraded")
)

// AssembleResult turns one utterance's per-front-end score rows into the
// wire result: named scores, the fused row (when the bundle has a backend
// and the request covered every front-end — the backend's feature layout
// needs the complete battery), and the argmax language.
//
// feErrs carries front-ends that failed mid-request. When every requested
// front-end survived (feErrs empty) and the request covered the full
// battery, fusion is the backend's exact Score — bit-identical to the
// offline pipeline. When some failed, the result is marked Degraded and
// the fused row is computed by fusion.ScoreMasked over the survivors (the
// documented degraded-fusion contract in DESIGN.md).
//
// Exported because the cluster coordinator (internal/cluster) gathers
// score rows from remote shard workers and must fuse them exactly like
// the in-process scoring path does — a shard that missed its deadline is
// fed in as a feErrs entry per front-end and degrades the request
// precisely like a failed local front-end.
func AssembleResult(m *Model, id string, scores map[int][]float64, feErrs map[int]error) ScoreResult {
	res := ScoreResult{ID: id, Scores: make(map[string][]float64, len(scores))}
	for q, row := range scores {
		res.Scores[m.Bundle.FrontEnds[q].Name] = row
	}
	if len(feErrs) > 0 {
		obsDegraded.Inc()
		res.Degraded = true
		res.FrontEndErrors = make(map[string]string, len(feErrs))
		for q, err := range feErrs {
			res.FrontEndErrors[m.Bundle.FrontEnds[q].Name] = err.Error()
		}
		for q := range scores {
			res.Surviving = append(res.Surviving, m.Bundle.FrontEnds[q].Name)
		}
		sort.Strings(res.Surviving)
	}
	numLangs := len(m.Bundle.Languages)
	// The backend applies when the request asked for the complete battery,
	// even if some front-ends later failed — the fused row then comes from
	// the masked (survivor-rescaled) combination.
	requested := len(scores) + len(feErrs)
	if m.Bundle.Fusion != nil && requested == len(m.Bundle.FrontEnds) {
		nFE := len(m.Bundle.FrontEnds)
		present := make([]bool, nFE)
		for q := range scores {
			present[q] = true
		}
		fused := make([]float64, numLangs)
		x := make([]float64, nFE)
		for k := 0; k < numLangs; k++ {
			for q, row := range scores {
				x[q] = row[k]
			}
			// Class 1 of the 2-class trial backend is "target".
			if len(feErrs) == 0 {
				fused[k] = m.Bundle.Fusion.Score(x)[1]
			} else {
				fused[k] = m.Bundle.Fusion.ScoreMasked(x, present)[1]
			}
		}
		res.Fused = fused
	}
	// Decision scores: fused when available, otherwise the mean across the
	// surviving front-ends.
	decision := res.Fused
	if decision == nil {
		decision = make([]float64, numLangs)
		for _, row := range scores {
			for k, v := range row {
				decision[k] += v / float64(len(scores))
			}
		}
	}
	best := 0
	for k, v := range decision {
		if v > decision[best] {
			best = k
		}
	}
	res.Best = m.Bundle.Languages[best]
	return res
}

package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrBreakerOpen is returned by Reload while the circuit breaker is open:
// recent reloads failed repeatedly, so further attempts are rejected until
// the cooldown passes (the previous model keeps serving throughout).
var ErrBreakerOpen = errors.New("serve: reload circuit breaker open")

// ReloadPolicy governs how the server retries model reloads and when it
// stops trying. Zero values select the defaults noted per field.
type ReloadPolicy struct {
	// Retries is how many extra attempts follow a failed reload within one
	// Reload call (2; negative disables retries).
	Retries int
	// BaseBackoff is the delay before the first retry; it doubles per
	// retry (100 ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry delay (2 s).
	MaxBackoff time.Duration
	// TripAfter is how many consecutive failed Reload calls (each already
	// retried) open the breaker (3).
	TripAfter int
	// Cooldown is how long an open breaker rejects reloads before letting
	// one probe attempt through (30 s).
	Cooldown time.Duration
}

func (p *ReloadPolicy) setDefaults() {
	if p.Retries == 0 {
		p.Retries = 2
	}
	if p.Retries < 0 {
		p.Retries = 0
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.TripAfter <= 0 {
		p.TripAfter = 3
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 30 * time.Second
	}
}

// Reload/breaker counters (obs run reports and /metricsz).
var (
	obsReloadRetries  = obs.GetCounter("serve.reload.retries")
	obsReloadFailures = obs.GetCounter("serve.reload.failures")
	obsBreakerTrips   = obs.GetCounter("serve.reload.breaker_trips")
	obsBreakerDenied  = obs.GetCounter("serve.reload.breaker_denied")
)

// reloader wraps Registry.Reload with retry/backoff and a circuit
// breaker. States: closed (reloads pass through, with retries), open
// (reloads are rejected with ErrBreakerOpen until Cooldown elapses), and
// half-open (after the cooldown one probe attempt runs; success closes
// the breaker, failure re-arms the cooldown). A reload failure never
// disturbs serving — the registry keeps the previous model active.
type reloader struct {
	reg   *Registry
	pol   ReloadPolicy
	clock Clock

	mu        sync.Mutex // serializes reload operations and breaker state
	fails     int        // consecutive failed Reload calls
	openUntil time.Time  // breaker rejects until here while fails >= TripAfter
}

func newReloader(reg *Registry, pol ReloadPolicy, clock Clock) *reloader {
	pol.setDefaults()
	if clock == nil {
		clock = realClock{}
	}
	obs.SetGauge("serve.reload.breaker_open", 0)
	return &reloader{reg: reg, pol: pol, clock: clock}
}

// breakerOpen reports whether the circuit breaker currently rejects
// reloads — surfaced on /readyz (a process that cannot pick up a new
// model is not ready for orchestration purposes) and as the
// serve.reload.breaker_open gauge.
func (rl *reloader) breakerOpen() bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.fails >= rl.pol.TripAfter && rl.clock.Now().Before(rl.openUntil)
}

// Reload runs one reload operation: up to 1+Retries attempts with
// exponential backoff, gated by the breaker.
func (rl *reloader) Reload() (*Model, error) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.clock.Now()
	if rl.fails >= rl.pol.TripAfter && now.Before(rl.openUntil) {
		obsBreakerDenied.Inc()
		return nil, fmt.Errorf("%w (cooldown ends in %v)",
			ErrBreakerOpen, rl.openUntil.Sub(now).Round(time.Millisecond))
	}
	// Closed, or half-open: the cooldown elapsed and this call is the
	// probe.
	var lastErr error
	backoff := rl.pol.BaseBackoff
	for attempt := 0; attempt <= rl.pol.Retries; attempt++ {
		if attempt > 0 {
			obsReloadRetries.Inc()
			rl.clock.Sleep(backoff)
			backoff *= 2
			if backoff > rl.pol.MaxBackoff {
				backoff = rl.pol.MaxBackoff
			}
		}
		m, err := rl.reg.Reload()
		if err == nil {
			rl.fails = 0
			obs.SetGauge("serve.reload.breaker_open", 0)
			return m, nil
		}
		lastErr = err
	}
	obsReloadFailures.Inc()
	rl.fails++
	if rl.fails >= rl.pol.TripAfter {
		obsBreakerTrips.Inc()
		rl.openUntil = rl.clock.Now().Add(rl.pol.Cooldown)
		obs.SetGauge("serve.reload.breaker_open", 1)
	}
	return nil, lastErr
}

package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cascade"
	"repro/internal/faultinject"
	"repro/internal/persist"
	"repro/internal/rng"
)

// Cascade fixture: testBundle plus a tier-1 model over FE0's 5-phone
// inventory, trained so that sequences strongly biased to one phone per
// language carry a high margin (tier-1 exit) and near-uniform sequences a
// low one (escalation).

func cascadeTestBundle(seed uint64) *persist.Bundle {
	b := testBundle(seed)
	r := rng.New(seed ^ 0xca5c)
	train := make([][][]int, tbLangs)
	var dev []cascade.DevExample
	for k := 0; k < tbLangs; k++ {
		for i := 0; i < 15; i++ {
			train[k] = append(train[k], cascSeq(r, k, 50, 0.8))
		}
		for i := 0; i < 10; i++ {
			dev = append(dev, cascade.DevExample{Seq: cascSeq(r, k, 60, 0.8), Label: k, Tier: 0})
			dev = append(dev, cascade.DevExample{Seq: cascSeq(r, k, 10, 0.8), Label: k, Tier: 1})
		}
	}
	m, err := cascade.Train("FE0", tbPhones, train, []string{"30s", "3s"}, dev, cascade.TrainConfig{})
	if err != nil {
		panic(err)
	}
	b.Cascade = m
	return b
}

// cascSeq draws a sequence biased toward language k's signature phone
// with probability bias (0.8 = clean high-margin, 0.34 = confusable).
func cascSeq(r *rng.RNG, k, length int, bias float64) []int {
	seq := make([]int, length)
	for i := range seq {
		if r.Float64() < bias {
			seq[i] = k % tbPhones
		} else {
			seq[i] = r.Intn(tbPhones)
		}
	}
	return seq
}

// slotsFor renders a phone string as a single-alternative sausage: the
// server's 1-best decode recovers exactly seq.
func slotsFor(seq []int) [][]Slot {
	slots := make([][]Slot, len(seq))
	for i, ph := range seq {
		slots[i] = []Slot{{Phone: ph, Prob: 1}}
	}
	return slots
}

func writeCascadeBundle(t testing.TB, dir string, seed uint64) *persist.Bundle {
	t.Helper()
	b := cascadeTestBundle(seed)
	if err := persist.SaveBundle(dir, b, persist.Manifest{Seed: seed, Scale: "test"}); err != nil {
		t.Fatal(err)
	}
	return b
}

// latticeRequestFor covers the full battery with the same lattice so the
// fused row is present and the cascade has its designated input.
func latticeRequestFor(b *persist.Bundle, id string, seq []int) ScoreRequest {
	req := ScoreRequest{ID: id, FrontEnds: make(map[string]FrontEndInput)}
	for i := range b.FrontEnds {
		req.FrontEnds[b.FrontEnds[i].Name] = FrontEndInput{Lattice: slotsFor(seq)}
	}
	return req
}

// TestCascadeEscalateAllBitIdentity is the referee for the cascade's
// transparency contract: at threshold −Inf every request escalates, and
// the responses' Scores/Fused/Best must be bit-identical to a server with
// the cascade disabled — single requests, batches, and permuted batches
// alike. The only permitted difference is the cascade outcome annotation.
func TestCascadeEscalateAllBitIdentity(t *testing.T) {
	dir := t.TempDir()
	b := writeCascadeBundle(t, dir, 21)

	plain := newTestServer(t, dir, nil)
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	casc := newTestServer(t, dir, func(c *Config) {
		c.Cascade = CascadeConfig{Enabled: true, Margin: "-inf"}
	})
	tsCasc := httptest.NewServer(casc.Handler())
	defer tsCasc.Close()

	r := rng.New(99)
	var seqs [][]int
	for k := 0; k < 6; k++ {
		seqs = append(seqs, cascSeq(r, k%tbLangs, 40+r.Intn(30), 0.8))
	}

	sameResult := func(t *testing.T, ctx string, got, want *ScoreResult) {
		t.Helper()
		if got.Best != want.Best {
			t.Fatalf("%s: best %q vs %q", ctx, got.Best, want.Best)
		}
		if len(got.Scores) != len(want.Scores) {
			t.Fatalf("%s: %d score rows vs %d", ctx, len(got.Scores), len(want.Scores))
		}
		for fe, row := range want.Scores {
			for k := range row {
				if got.Scores[fe][k] != row[k] {
					t.Fatalf("%s: %s score[%d] = %v, want %v", ctx, fe, k, got.Scores[fe][k], row[k])
				}
			}
		}
		if len(got.Fused) != len(want.Fused) {
			t.Fatalf("%s: fused %d vs %d", ctx, len(got.Fused), len(want.Fused))
		}
		for k := range want.Fused {
			if got.Fused[k] != want.Fused[k] {
				t.Fatalf("%s: fused[%d] = %v, want %v", ctx, k, got.Fused[k], want.Fused[k])
			}
		}
	}

	// Single requests.
	for i, seq := range seqs {
		req := latticeRequestFor(b, fmt.Sprintf("u%d", i), seq)
		respP, bodyP := postJSON(t, tsPlain.Client(), tsPlain.URL+"/v1/score", req)
		respC, bodyC := postJSON(t, tsCasc.Client(), tsCasc.URL+"/v1/score", req)
		if respP.StatusCode != http.StatusOK || respC.StatusCode != http.StatusOK {
			t.Fatalf("status %d/%d: %s %s", respP.StatusCode, respC.StatusCode, bodyP, bodyC)
		}
		var srP, srC ScoreResponse
		if err := json.Unmarshal(bodyP, &srP); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(bodyC, &srC); err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("single %d", i), &srC.ScoreResult, &srP.ScoreResult)
		if srP.Cascade != nil {
			t.Fatal("cascade outcome on a cascade-disabled server")
		}
		if srC.Cascade == nil || srC.Cascade.Exited || srC.Cascade.Reason != cascade.ReasonLowMargin {
			t.Fatalf("escalate-all outcome: %+v", srC.Cascade)
		}
	}

	// Batch, then the same batch permuted: results must align per
	// utterance and match the plain server's bit for bit.
	batchOf := func(order []int) BatchRequest {
		var br BatchRequest
		for _, i := range order {
			br.Utterances = append(br.Utterances, latticeRequestFor(b, fmt.Sprintf("u%d", i), seqs[i]))
		}
		return br
	}
	orders := [][]int{{0, 1, 2, 3, 4, 5}, {5, 3, 1, 4, 0, 2}}
	var base map[string]ScoreResult
	for oi, order := range orders {
		req := batchOf(order)
		respP, bodyP := postJSON(t, tsPlain.Client(), tsPlain.URL+"/v1/score/batch", req)
		respC, bodyC := postJSON(t, tsCasc.Client(), tsCasc.URL+"/v1/score/batch", req)
		if respP.StatusCode != http.StatusOK || respC.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d/%d", respP.StatusCode, respC.StatusCode)
		}
		var brP, brC BatchResponse
		if err := json.Unmarshal(bodyP, &brP); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(bodyC, &brC); err != nil {
			t.Fatal(err)
		}
		for i := range brP.Results {
			sameResult(t, fmt.Sprintf("batch order %d utt %d", oi, i), &brC.Results[i], &brP.Results[i])
		}
		if oi == 0 {
			base = make(map[string]ScoreResult)
			for _, res := range brC.Results {
				base[res.ID] = res
			}
		} else {
			for _, res := range brC.Results {
				want := base[res.ID]
				sameResult(t, "permuted vs original "+res.ID, &res, &want)
			}
		}
	}
}

// TestCascadeAllTier1AtPlusInf: threshold +Inf answers everything at tier
// 1 — no front-end battery runs, the fused row is the calibrated tier-1
// decision row, and Best matches the model's own Decide.
func TestCascadeAllTier1AtPlusInf(t *testing.T) {
	dir := t.TempDir()
	b := writeCascadeBundle(t, dir, 22)
	s := newTestServer(t, dir, func(c *Config) {
		c.Cascade = CascadeConfig{Enabled: true, Margin: "+inf"}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := rng.New(5)
	for k := 0; k < tbLangs; k++ {
		// Even a deliberately confusable sequence exits at +Inf.
		for _, bias := range []float64{0.8, 0.34} {
			seq := cascSeq(r, k, 30, bias)
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", latticeRequestFor(b, "x", seq))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var sr ScoreResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Cascade == nil || !sr.Cascade.Exited || sr.Cascade.Reason != cascade.ReasonHighMargin {
				t.Fatalf("outcome: %+v", sr.Cascade)
			}
			if len(sr.Scores) != 0 {
				t.Fatal("front-end scores on a tier-1 exit")
			}
			want := b.Cascade.Decide(seq, math.Inf(1))
			if sr.Best != b.Languages[want.Best] {
				t.Fatalf("best %q, want %q", sr.Best, b.Languages[want.Best])
			}
			for k2 := range want.Scores {
				if sr.Fused[k2] != want.Scores[k2] {
					t.Fatalf("fused[%d] = %v, want tier-1 %v", k2, sr.Fused[k2], want.Scores[k2])
				}
			}
		}
	}
}

// TestCascadeExitMonotoneInThreshold: the set of requests that exit at
// tier 1 only grows as the threshold offset grows (−Inf ⊆ calibrated ⊆
// +Inf), request by request.
func TestCascadeExitMonotoneInThreshold(t *testing.T) {
	dir := t.TempDir()
	b := writeCascadeBundle(t, dir, 23)

	margins := []string{"-inf", "-0.1", "0", "0.2", "+inf"}
	exits := make([]map[string]bool, len(margins))
	r := rng.New(77)
	var reqs []ScoreRequest
	for i := 0; i < 12; i++ {
		bias := 0.8
		if i%2 == 1 {
			bias = 0.34
		}
		reqs = append(reqs, latticeRequestFor(b, fmt.Sprintf("u%d", i), cascSeq(r, i%tbLangs, 20+3*i, bias)))
	}
	for mi, margin := range margins {
		s := newTestServer(t, dir, func(c *Config) {
			c.Cascade = CascadeConfig{Enabled: true, Margin: margin}
		})
		ts := httptest.NewServer(s.Handler())
		exits[mi] = make(map[string]bool)
		for _, req := range reqs {
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("margin %s: status %d: %s", margin, resp.StatusCode, body)
			}
			var sr ScoreResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			exits[mi][req.ID] = sr.Cascade != nil && sr.Cascade.Exited
		}
		ts.Close()
	}
	for _, id := range []string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7", "u8", "u9", "u10", "u11"} {
		if exits[0][id] {
			t.Fatalf("%s exited at -inf", id)
		}
		if !exits[len(margins)-1][id] {
			t.Fatalf("%s escalated at +inf", id)
		}
		for mi := 1; mi < len(margins); mi++ {
			if exits[mi-1][id] && !exits[mi][id] {
				t.Fatalf("%s exited at %s but escalated at %s", id, margins[mi-1], margins[mi])
			}
		}
	}
}

// TestCascadeTier1FaultDegradesToEscalation is the chaos gate for the new
// cascade.tier1 site: injected errors and panics in tier 1 must degrade
// to a transparent escalation — 200 with full heavy-path scores, reason
// tier1_fault, the failure counter bumped — and never surface as a 5xx.
func TestCascadeTier1FaultDegradesToEscalation(t *testing.T) {
	dir := t.TempDir()
	b := writeCascadeBundle(t, dir, 24)
	s := newTestServer(t, dir, func(c *Config) {
		c.Cascade = CascadeConfig{Enabled: true, Margin: "+inf"}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := rng.New(31)
	seq := cascSeq(r, 1, 40, 0.8)
	req := latticeRequestFor(b, "chaos", seq)

	for _, kind := range []faultinject.Kind{faultinject.KindError, faultinject.KindPanic} {
		t.Run(kind.String(), func(t *testing.T) {
			defer faultinject.Enable(&faultinject.Plan{
				Seed:  7,
				Rules: []faultinject.Rule{{Site: "cascade.tier1", Kind: kind, Every: 1}},
			})()
			before := cascFailed.Value()
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("tier-1 %s fault surfaced as %d: %s", kind, resp.StatusCode, body)
			}
			var sr ScoreResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Cascade == nil || sr.Cascade.Exited || sr.Cascade.Reason != ReasonTier1Fault {
				t.Fatalf("outcome: %+v", sr.Cascade)
			}
			// The heavy path served the request in full.
			if len(sr.Scores) != len(b.FrontEnds) || len(sr.Fused) != tbLangs || sr.Degraded {
				t.Fatalf("escalated result incomplete: %d rows, %d fused, degraded=%v",
					len(sr.Scores), len(sr.Fused), sr.Degraded)
			}
			if cascFailed.Value() != before+1 {
				t.Fatalf("tier1.failed went %d -> %d, want +1", before, cascFailed.Value())
			}
			st := faultinject.Snapshot()["cascade.tier1"]
			if st.Fires == 0 {
				t.Fatal("cascade.tier1 never fired")
			}
		})
	}
}

// TestCascadeEscalationReasons: requests tier 1 cannot score carry the
// serve-layer reason codes — supervector-only input and cascade-less
// bundles both escalate transparently.
func TestCascadeEscalationReasons(t *testing.T) {
	t.Run("no_tier1_input", func(t *testing.T) {
		dir := t.TempDir()
		b := writeCascadeBundle(t, dir, 25)
		s := newTestServer(t, dir, func(c *Config) {
			c.Cascade = CascadeConfig{Enabled: true, Margin: "+inf"}
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		// Full battery by supervector: no lattice for FE0 → no 1-best.
		req := scoreRequestFor(b, testVector(9))
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var sr ScoreResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Cascade == nil || sr.Cascade.Exited || sr.Cascade.Reason != ReasonNoTier1Input {
			t.Fatalf("outcome: %+v", sr.Cascade)
		}
		if len(sr.Scores) != len(b.FrontEnds) {
			t.Fatal("heavy path did not serve the escalation")
		}
	})
	t.Run("no_cascade_model", func(t *testing.T) {
		dir := t.TempDir()
		b := writeTestBundle(t, dir, 26) // legacy bundle, no cascade
		s := newTestServer(t, dir, func(c *Config) {
			c.Cascade = CascadeConfig{Enabled: true, Margin: "+inf"}
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		req := latticeRequestFor(b, "x", []int{0, 1, 2, 3})
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var sr ScoreResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Cascade == nil || sr.Cascade.Exited || sr.Cascade.Reason != ReasonNoCascadeModel {
			t.Fatalf("outcome: %+v", sr.Cascade)
		}
	})
}

// TestCascadeBadMarginRejectedAtStartup: a malformed policy spec fails
// New, not the first request.
func TestCascadeBadMarginRejectedAtStartup(t *testing.T) {
	dir := t.TempDir()
	writeCascadeBundle(t, dir, 27)
	_, err := New(Config{
		ModelDir: dir,
		Cascade:  CascadeConfig{Enabled: true, Margin: "30s=nan"},
	})
	if err == nil {
		t.Fatal("New accepted a NaN cascade margin")
	}
}

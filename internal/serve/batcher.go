package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// Submit outcomes that map to HTTP backpressure responses.
var (
	// ErrQueueFull means the bounded queue rejected the job (HTTP 429).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining means the batcher no longer accepts work (HTTP 503).
	ErrDraining = errors.New("serve: draining")
)

// job is one admitted utterance: the model it resolved against, its
// TFLLR-scaled vectors by front-end index, and the channel its result is
// delivered on (buffered, so a departed handler never blocks the
// dispatcher).
type job struct {
	ctx      context.Context
	model    *Model
	id       string
	vectors  map[int]*sparse.Vector
	result   chan jobResult
	enqueued time.Time

	// Request-scoped trace state (nil/zero when tracing is disabled).
	// span is the request's span node; queueSpan covers enqueue→dequeue,
	// batchSpan dequeue→dispatch; per-front-end scoring spans hang off
	// span inside scoreJobs. batchID is the dispatch batch the job rode
	// in, written by the dispatcher; atomic because a handler whose
	// deadline fired reads it while the dispatcher may still be assigning
	// the job to a batch.
	span      *obs.Span
	queueSpan *obs.Span
	batchSpan *obs.Span
	batchID   atomic.Int64
}

type jobResult struct {
	scores map[int][]float64
	// feErrs records per-front-end failures of a job that still produced
	// scores for its surviving front-ends (the graceful-degradation path).
	// err is set only when the job produced nothing at all.
	feErrs map[int]error
	err    error
}

// trySend delivers a result without ever blocking: the buffer holds one
// result, and a job is completed at most once (late error deliveries to a
// departed handler are dropped).
func (j *job) trySend(res jobResult) {
	select {
	case j.result <- res:
	default:
	}
}

// Batcher coalesces admitted jobs into micro-batches: the dispatcher
// takes the first queued job, keeps collecting until MaxBatch jobs or
// MaxWait elapsed, then runs the whole batch through one worker pool.
// Under load the queue is never empty, so batches fill instantly and the
// wait never triggers; at low load a lone request pays at most MaxWait of
// added latency.
type Batcher struct {
	maxBatch int
	maxWait  time.Duration
	workers  int
	process  func([]*job)
	clock    Clock
	// windowed feeds the rolling 1m/5m views next to the cumulative
	// metrics; the server turns it off only for the tracing-overhead
	// benchmark baseline.
	windowed bool

	queue   chan *job
	drainCh chan struct{}
	done    chan struct{}

	mu     sync.RWMutex // guards closed against concurrent Submit/Drain
	closed bool
}

// Queue-depth gauge and backpressure counters (obs run reports), plus
// the rolling-window views /metricsz reports as 1m/5m live metrics.
var (
	obsQueueDepth = obs.GetGauge("serve.queue.depth")
	obsQueueWait  = obs.GetHistogram("serve.queue.wait_seconds")
	obsBatches    = obs.GetCounter("serve.batches")
	obsBatchJobs  = obs.GetCounter("serve.batched_jobs")
	obsBatchSize  = obs.GetHistogram("serve.batch.size")
	obsRejected   = obs.GetCounter("serve.queue.rejected")
	obsPanics     = obs.GetCounter("serve.score.panics")
	obsExpired    = obs.GetCounter("serve.jobs.expired")

	wobsQueueWait = obs.GetWindow("serve.queue.wait_seconds")
	wobsBatchSize = obs.GetWindow("serve.batch.size")

	// batchSeq numbers dispatch batches process-wide so traces and
	// access-log lines can say which jobs shared a scoring pass.
	batchSeq atomic.Int64
)

// newBatcher starts a dispatcher. process scores one batch; nil selects
// the real scoring pass (tests inject blocking or panicking stand-ins).
// clock drives the batch-fill wait; nil selects the real clock (tests
// inject a fake one to make coalescing deterministic).
func newBatcher(maxBatch, queueDepth, workers int, maxWait time.Duration, process func([]*job), clock Clock) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if clock == nil {
		clock = realClock{}
	}
	b := &Batcher{
		maxBatch: maxBatch,
		maxWait:  maxWait,
		workers:  workers,
		clock:    clock,
		windowed: true,
		queue:    make(chan *job, queueDepth),
		drainCh:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	b.process = process
	if b.process == nil {
		b.process = b.scoreBatch
	}
	go b.run()
	return b
}

// Submit admits a job without blocking. The job's result channel receives
// exactly one result unless Submit returns an error.
func (b *Batcher) Submit(j *job) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrDraining
	}
	select {
	case b.queue <- j:
		obsQueueDepth.Set(float64(len(b.queue)))
		return nil
	default:
		obsRejected.Inc()
		return ErrQueueFull
	}
}

// Drain stops intake (further Submits fail with ErrDraining), lets the
// dispatcher finish every queued job, and waits for it to exit — or for
// ctx. No accepted job is dropped.
func (b *Batcher) Drain(ctx context.Context) error {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.drainCh)
	}
	b.mu.Unlock()
	select {
	case <-b.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// noteDequeue marks the moment a job leaves the admission queue: the
// queue-wait histogram/window observe here (not at dispatch, so the
// numbers isolate queueing from batch formation), the job's queue.wait
// span closes, and its batch.form span opens.
func (b *Batcher) noteDequeue(j *job) {
	wait := time.Since(j.enqueued).Seconds()
	obsQueueWait.Observe(wait)
	if b.windowed {
		wobsQueueWait.Observe(wait)
	}
	if j.queueSpan != nil {
		j.queueSpan.End()
		j.queueSpan = nil
		if j.span != nil {
			j.batchSpan = j.span.StartChild("batch.form")
		}
	}
}

// run is the dispatcher loop.
func (b *Batcher) run() {
	defer close(b.done)
	for {
		var first *job
		select {
		case first = <-b.queue:
		case <-b.drainCh:
			// Intake is closed: everything still queued is finished in
			// MaxBatch-sized chunks, then the dispatcher exits.
			for {
				batch := b.collectQueued()
				if len(batch) == 0 {
					return
				}
				b.runBatch(batch)
			}
		}
		b.noteDequeue(first)
		batch := []*job{first}
		timeout := b.clock.After(b.maxWait)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case j := <-b.queue:
				b.noteDequeue(j)
				batch = append(batch, j)
			case <-timeout:
				break collect
			case <-b.drainCh:
				break collect
			}
		}
		obsQueueDepth.Set(float64(len(b.queue)))
		b.runBatch(batch)
	}
}

// collectQueued drains up to maxBatch jobs without waiting.
func (b *Batcher) collectQueued() []*job {
	var batch []*job
	for len(batch) < b.maxBatch {
		select {
		case j := <-b.queue:
			b.noteDequeue(j)
			batch = append(batch, j)
		default:
			return batch
		}
	}
	return batch
}

// runBatch invokes process with a safety net: if the whole pass panics
// (beyond the per-task isolation inside scoreBatch), every job in the
// batch still gets an error result so no handler hangs until its
// deadline.
func (b *Batcher) runBatch(batch []*job) {
	if len(batch) == 0 {
		return
	}
	obsBatches.Inc()
	obsBatchJobs.Add(int64(len(batch)))
	obs.SetGauge("serve.batch.last_size", float64(len(batch)))
	obsBatchSize.Observe(float64(len(batch)))
	if b.windowed {
		wobsBatchSize.Observe(float64(len(batch)))
	}
	id := batchSeq.Add(1)
	for _, j := range batch {
		j.batchID.Store(id)
		if j.batchSpan != nil {
			j.batchSpan.End()
			j.batchSpan = nil
		}
		if j.span != nil {
			j.span.SetAttr("batch.id", float64(id))
			j.span.SetAttr("batch.size", float64(len(batch)))
		}
	}
	defer func() {
		if r := recover(); r != nil {
			obsPanics.Inc()
			for _, j := range batch {
				j.trySend(jobResult{err: fmt.Errorf("serve: scoring pass panicked: %v", r)})
			}
		}
	}()
	// Chaos hook: a fault at serve.batch exercises this very safety net —
	// an injected panic here must turn into error results, never a crash.
	faultinject.Disturb("serve.batch")
	b.process(batch)
}

// scoreBatch runs the real scoring pass with the batcher's pool size.
func (b *Batcher) scoreBatch(batch []*job) { scoreJobs(batch, b.workers) }

// scoreJobs is the shared SVM scoring pass: the batch flattens into one
// (job, front-end) task list scored by a single instrumented pool, so B
// concurrent requests cost one pool spin-up instead of B. Tasks are
// ordered front-end-major so a front-end's SVM weight matrices are
// reused across every job in the batch while they are cache-hot, instead
// of being re-streamed per job.
func scoreJobs(batch []*job, workers int) {
	type task struct {
		j  *job
		fe int
	}
	var tasks []task
	live := batch[:0:0]
	for _, j := range batch {
		if err := j.ctx.Err(); err != nil {
			// Expired while queued: don't waste the pool on it.
			obsExpired.Inc()
			if j.span != nil {
				j.span.SetLabel("error", "expired in queue: "+err.Error())
			}
			j.trySend(jobResult{err: err})
			continue
		}
		live = append(live, j)
		for fe := range j.vectors {
			tasks = append(tasks, task{j: j, fe: fe})
		}
	}
	if len(tasks) == 0 {
		return
	}
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].fe < tasks[b].fe })
	type taskOut struct {
		scores []float64
		err    error
	}
	outs := make([]taskOut, len(tasks))
	parallel.ForPoolWorkers("serve-score", len(tasks), workers, func(i int) {
		t := tasks[i]
		fe := &t.j.model.Bundle.FrontEnds[t.fe]
		var sp *obs.Span
		if t.j.span != nil {
			sp = t.j.span.StartChild("score.fe")
			sp.SetLabel("fe", fe.Name)
		}
		// A panicking task poisons only its own front-end within its own
		// job, not the batch or the process (parallel.ForWorkers would
		// re-panic on the pool goroutine).
		defer func() {
			if r := recover(); r != nil {
				obsPanics.Inc()
				outs[i].err = fmt.Errorf("serve: scoring panicked: %v", r)
			}
			if sp != nil {
				if outs[i].err != nil {
					sp.SetLabel("error", outs[i].err.Error())
				}
				sp.End()
			}
		}()
		if err := faultinject.At("serve.score.fe." + fe.Name); err != nil {
			outs[i].err = err
			return
		}
		outs[i].scores = fe.Scores(t.j.vectors[t.fe])
	})
	// Reassemble per job. A front-end failure degrades only that job's
	// fusion input (the surviving front-ends still score); the job-level
	// error path is reserved for jobs where nothing survived.
	scores := make(map[*job]map[int][]float64, len(live))
	feErrs := make(map[*job]map[int]error)
	for i, t := range tasks {
		if outs[i].err != nil {
			m, ok := feErrs[t.j]
			if !ok {
				m = make(map[int]error)
				feErrs[t.j] = m
			}
			m[t.fe] = outs[i].err
			obs.GetCounter("serve.fe.failures." + t.j.model.Bundle.FrontEnds[t.fe].Name).Inc()
			continue
		}
		m, ok := scores[t.j]
		if !ok {
			m = make(map[int][]float64, len(t.j.vectors))
			scores[t.j] = m
		}
		m[t.fe] = outs[i].scores
	}
	for _, j := range live {
		s := scores[j]
		errs := feErrs[j]
		if len(s) == 0 {
			// Every requested front-end failed: no fusion input survives.
			var err error
			for _, e := range errs {
				err = e
				break
			}
			if err == nil {
				err = errors.New("serve: no front-end produced scores")
			}
			j.trySend(jobResult{err: err})
			continue
		}
		j.trySend(jobResult{scores: s, feErrs: errs})
	}
}

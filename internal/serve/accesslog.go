package serve

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Structured access logging: one JSON object per line carrying the
// request's trace identity and the per-stage timings pulled from its
// span tree, so a log line, the /tracez entry, and the client's
// response all correlate by trace id. Lines are sampled (every Nth
// request) to keep high-QPS logging cheap, but degraded and errored
// requests always log — the same "failures are always retained" policy
// the trace buffer applies.

// accessRecord is one access-log line.
type accessRecord struct {
	Time     string  `json:"ts"`
	TraceID  string  `json:"trace_id"`
	Endpoint string  `json:"endpoint"`
	Status   int     `json:"status"`
	DurMs    float64 `json:"dur_ms"`
	// QueueMs sums the request's queue.wait spans (one per utterance for
	// batch requests); FEMs maps front-end name to summed scoring time.
	QueueMs float64            `json:"queue_ms,omitempty"`
	FEMs    map[string]float64 `json:"fe_ms,omitempty"`
	BatchID int64              `json:"batch_id,omitempty"`
	Model   int64              `json:"model_version,omitempty"`
	// Utterances counts the jobs inside a /v1/score/batch request.
	Utterances int      `json:"utterances,omitempty"`
	Degraded   bool     `json:"degraded,omitempty"`
	Surviving  []string `json:"surviving,omitempty"`
	Error      string   `json:"error,omitempty"`
	Sampled    bool     `json:"sampled,omitempty"`
}

// accessLogger serializes sampled records onto one writer. A nil
// *accessLogger is valid and drops everything.
type accessLogger struct {
	mu    sync.Mutex
	enc   *json.Encoder
	every int64
	seen  atomic.Int64
}

func newAccessLogger(w io.Writer, every int) *accessLogger {
	if w == nil {
		return nil
	}
	if every < 1 {
		every = 1
	}
	return &accessLogger{enc: json.NewEncoder(w), every: int64(every)}
}

// log writes rec if it falls on the sampling grid or is forced
// (degraded/errored). Encoding happens outside the hot path's locks but
// inside this logger's own mutex so lines never interleave.
func (al *accessLogger) log(rec *accessRecord, forced bool) {
	if al == nil {
		return
	}
	n := al.seen.Add(1)
	sampled := (n-1)%al.every == 0
	if !sampled && !forced {
		return
	}
	rec.Sampled = sampled
	al.mu.Lock()
	defer al.mu.Unlock()
	// Encode errors are swallowed by design: logging must never fail a
	// request (a full disk or closed pipe degrades to silence).
	_ = al.enc.Encode(rec)
}

// recordFromTrace assembles the log line for one finished request trace.
func recordFromTrace(e *obs.TraceEntry) *accessRecord {
	rec := &accessRecord{
		Time:      e.Start.UTC().Format(time.RFC3339Nano),
		TraceID:   e.TraceID,
		Endpoint:  e.Endpoint,
		Status:    e.Status,
		DurMs:     e.DurationSec * 1e3,
		BatchID:   e.BatchID,
		Model:     e.ModelVersion,
		Degraded:  e.Degraded,
		Surviving: e.Surviving,
		Error:     e.Error,
	}
	if e.Root != nil {
		collectStageTimings(e.Root, rec)
	}
	return rec
}

// collectStageTimings walks a span tree accumulating queue wait and
// per-front-end scoring time; batch requests sum across utterances.
func collectStageTimings(d *obs.SpanData, rec *accessRecord) {
	switch d.Name {
	case "queue.wait":
		rec.QueueMs += d.DurationSec * 1e3
	case "score.fe":
		if fe := d.Labels["fe"]; fe != "" {
			if rec.FEMs == nil {
				rec.FEMs = make(map[string]float64)
			}
			rec.FEMs[fe] += d.DurationSec * 1e3
		}
	case "utt":
		rec.Utterances++
	}
	for _, c := range d.Children {
		collectStageTimings(c, rec)
	}
}

package serve

import (
	"fmt"
	"net/http"

	"repro/internal/adapt"
	"repro/internal/persist"
)

// Online adaptation wiring (see internal/adapt and DESIGN.md "Online
// adaptation & safe promotion"). The server owns the adapter: served
// full-battery results feed its observation buffer, its hot swap routes
// through the reloader (so promotion obeys the same retry/backoff and
// circuit-breaker discipline as SIGHUP and /-/reload), and three admin
// endpoints expose it:
//
//	GET  /adaptz            — loop status (enabled:false when off)
//	POST /-/adapt/promote   — force one gated promotion attempt now
//	POST /-/adapt/rollback  — one-command rollback to last-known-good
//
// With Config.Adapt empty or "off" none of this exists: no sidecar is
// read, no goroutine runs, no observation is buffered — serving is
// bit-identical to a build without the subsystem.

// initAdapter constructs the adapter when Config.Adapt selects a policy.
// Fails fast on a bad policy, a missing/corrupt sidecar, or a bundle that
// cannot self-train (int8-quantized): silently serving without the
// requested adaptation would be worse than not starting.
func (s *Server) initAdapter() error {
	spec := s.cfg.Adapt
	if spec == "" || spec == "off" {
		return nil
	}
	pol, err := adapt.ParsePolicy(spec)
	if err != nil {
		return err
	}
	if s.reg.Current() == nil {
		return fmt.Errorf("serve: -adapt needs a loaded model at startup (WaitForModel is incompatible)")
	}
	a, err := adapt.New(adapt.Config{
		Dir:    s.cfg.ModelDir,
		Policy: pol,
		Swap: func() error {
			_, err := s.reloader.Reload()
			return err
		},
		Current: func() *persist.Bundle {
			if m := s.reg.Current(); m != nil {
				return m.Bundle
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	s.adapter = a
	return nil
}

// Adapter exposes the adaptation loop (nil when off) — tests and the
// daemon's status logging.
func (s *Server) Adapter() *adapt.Adapter { return s.adapter }

// observeAdapt offers one served utterance to the adaptation buffer:
// full-battery, non-degraded results only (a partial battery cannot vote,
// and a degraded row would poison self-training with scores the client
// was warned about). scores is the raw per-front-end-index row map the
// result was assembled from.
func (s *Server) observeAdapt(j *job, res *ScoreResult, scores map[int][]float64) {
	if s.adapter == nil || j == nil || res == nil {
		return
	}
	if res.Degraded || res.Error != "" {
		return
	}
	s.adapter.Observe(j.vectors, scores)
}

func (s *Server) handleAdaptz(w http.ResponseWriter, r *http.Request) {
	if s.adapter == nil {
		writeJSON(w, http.StatusOK, adapt.Status{Enabled: false})
		return
	}
	writeJSON(w, http.StatusOK, s.adapter.Status())
}

// adaptAdmin gates the two mutating endpoints: POST only, not while
// draining, 503 when adaptation is off.
func (s *Server) adaptAdmin(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	if s.adapter == nil {
		writeError(w, http.StatusServiceUnavailable, "adaptation disabled (start with -adapt)")
		return false
	}
	return true
}

// handleAdaptPromote forces one promotion attempt (bypassing only the
// min-utts floor, never a gate). Gate vetoes and skips are 200 with the
// outcome in the body — they are the loop working as designed, not
// server errors.
func (s *Server) handleAdaptPromote(w http.ResponseWriter, r *http.Request) {
	if !s.adaptAdmin(w, r) {
		return
	}
	res, err := s.adapter.TryPromote(true)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleAdaptRollback(w http.ResponseWriter, r *http.Request) {
	if !s.adaptAdmin(w, r) {
		return
	}
	res, err := s.adapter.Rollback("operator request")
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

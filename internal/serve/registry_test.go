package serve

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/persist"
)

func TestRegistryReloadAndVersioning(t *testing.T) {
	dir := t.TempDir()
	writeTestBundle(t, dir, 1)
	reg := NewRegistry(dir)
	if reg.Current() != nil {
		t.Fatal("model present before any reload")
	}
	m1, err := reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if m1.Version != 1 {
		t.Fatalf("first version %d, want 1", m1.Version)
	}
	if reg.Current() != m1 {
		t.Fatal("Current does not return the loaded model")
	}
	if len(m1.spaces) != len(m1.Bundle.FrontEnds) {
		t.Fatalf("%d spaces for %d front-ends", len(m1.spaces), len(m1.Bundle.FrontEnds))
	}

	writeTestBundle(t, dir, 2)
	m2, err := reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 2 {
		t.Fatalf("second version %d, want 2", m2.Version)
	}
	if reg.Current() != m2 {
		t.Fatal("swap did not take")
	}
}

func TestRegistryFailedReloadKeepsPreviousModel(t *testing.T) {
	dir := t.TempDir()
	writeTestBundle(t, dir, 1)
	reg := NewRegistry(dir)
	m1, err := reg.Reload()
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the bundle body; the manifest still parses.
	if err := os.WriteFile(filepath.Join(dir, "bundle.gob"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Reload(); err == nil {
		t.Fatal("reload of a corrupt bundle succeeded")
	}
	if reg.Current() != m1 {
		t.Fatal("failed reload replaced the serving model")
	}
	if reg.Current().Version != 1 {
		t.Fatalf("version advanced to %d on a failed reload", reg.Current().Version)
	}

	// A repaired bundle loads and resumes version numbering.
	writeTestBundle(t, dir, 3)
	m2, err := reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 2 {
		t.Fatalf("version after recovery %d, want 2", m2.Version)
	}
}

func TestRegistryMissingDir(t *testing.T) {
	reg := NewRegistry(filepath.Join(t.TempDir(), "nope"))
	if _, err := reg.Reload(); err == nil {
		t.Fatal("reload from a missing directory succeeded")
	}
	if reg.Current() != nil {
		t.Fatal("model appeared from a missing directory")
	}
}

func TestManifestRoundTripThroughRegistry(t *testing.T) {
	dir := t.TempDir()
	b := testBundle(9)
	if err := persist.SaveBundle(dir, b, persist.Manifest{
		Seed: 9, Scale: "test", GitDescribe: "deadbeef",
	}); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(dir)
	m, err := reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if m.Manifest.Seed != 9 || m.Manifest.Scale != "test" || m.Manifest.GitDescribe != "deadbeef" {
		t.Fatalf("manifest did not round-trip: %+v", m.Manifest)
	}
	if m.Manifest.NumLanguages != len(b.Languages) {
		t.Fatalf("manifest languages %d, want %d", m.Manifest.NumLanguages, len(b.Languages))
	}
	if len(m.Manifest.FrontEnds) != len(b.FrontEnds) {
		t.Fatalf("manifest front-ends %v", m.Manifest.FrontEnds)
	}
}

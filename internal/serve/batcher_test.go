package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newJob(ctx context.Context) *job {
	if ctx == nil {
		ctx = context.Background()
	}
	return &job{ctx: ctx, result: make(chan jobResult, 1), enqueued: time.Now()}
}

func echoProcess(batches *[][]*job, mu *sync.Mutex) func([]*job) {
	return func(batch []*job) {
		mu.Lock()
		*batches = append(*batches, batch)
		mu.Unlock()
		for _, j := range batch {
			j.trySend(jobResult{})
		}
	}
}

func TestBatcherCoalesces(t *testing.T) {
	// The fake clock makes coalescing exact: the batch-fill timeout only
	// fires when the test advances the clock, so the batch boundary is a
	// scheduling fact, not a wall-clock race.
	clk := newFakeClock()
	var batches [][]*job
	var mu sync.Mutex
	gate := make(chan struct{})
	b := newBatcher(8, 64, 1, 50*time.Millisecond, func(batch []*job) {
		<-gate // hold the dispatcher so later submits pile up in the queue
		mu.Lock()
		batches = append(batches, batch)
		mu.Unlock()
		for _, j := range batch {
			j.trySend(jobResult{})
		}
	}, clk)
	defer b.Drain(context.Background())

	var jobs []*job
	for i := 0; i < 9; i++ {
		j := newJob(nil)
		jobs = append(jobs, j)
		if err := b.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	// The dispatcher fills a full batch of 8 from the queue (the timeout
	// never fires on its own), leaving the ninth job queued.
	close(gate)
	for _, j := range jobs[:8] {
		select {
		case <-j.result:
		case <-time.After(2 * time.Second):
			t.Fatal("job never completed")
		}
	}
	// The ninth job sits in a half-empty batch until its MaxWait elapses.
	// Two waiters: the first batch's abandoned fill timer plus the second
	// batch's live one — waiting for both guarantees the second batch has
	// started collecting before the clock moves.
	clk.WaitForWaiters(2)
	clk.Advance(50 * time.Millisecond)
	select {
	case <-jobs[8].result:
	case <-time.After(2 * time.Second):
		t.Fatal("straggler job never completed after MaxWait")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 2 || len(batches[0]) != 8 || len(batches[1]) != 1 {
		sizes := make([]int, len(batches))
		for i := range batches {
			sizes[i] = len(batches[i])
		}
		t.Fatalf("batch sizes %v, want [8 1]", sizes)
	}
}

func TestBatcherQueueFull(t *testing.T) {
	gate := make(chan struct{})
	b := newBatcher(1, 2, 1, time.Millisecond, func(batch []*job) {
		<-gate
		for _, j := range batch {
			j.trySend(jobResult{})
		}
	}, nil)
	defer func() {
		close(gate)
		b.Drain(context.Background())
	}()

	// One job occupies the dispatcher; two fill the queue. The queue can
	// momentarily have free space while the dispatcher pulls a job, so
	// submit until rejection rather than asserting an exact count.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := b.Submit(newJob(nil)); errors.Is(err, ErrQueueFull) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("bounded queue never rejected")
		}
	}
}

func TestBatcherDrainCompletesQueuedJobs(t *testing.T) {
	// The fake clock keeps the fill timeout from ever firing on its own:
	// every job is still queued when Drain starts, which is exactly the
	// case the no-accepted-job-is-dropped contract covers.
	clk := newFakeClock()
	var processed atomic.Int64
	b := newBatcher(4, 64, 1, 10*time.Millisecond, func(batch []*job) {
		processed.Add(int64(len(batch)))
		for _, j := range batch {
			j.trySend(jobResult{})
		}
	}, clk)
	const n = 17
	jobs := make([]*job, n)
	for i := range jobs {
		jobs[i] = newJob(nil)
		if err := b.Submit(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := processed.Load(); got != n {
		t.Fatalf("drain processed %d of %d queued jobs", got, n)
	}
	for i, j := range jobs {
		select {
		case <-j.result:
		default:
			t.Fatalf("job %d got no result after drain", i)
		}
	}
	// Intake is closed for good.
	if err := b.Submit(newJob(nil)); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain: %v, want ErrDraining", err)
	}
	// Drain is idempotent.
	if err := b.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestBatcherDrainTimeout(t *testing.T) {
	// A cancelled context stands in for an elapsed drain deadline — the
	// stuck scoring pass guarantees the dispatcher can never finish, so
	// Drain must return the context's error rather than hang (no wall-clock
	// race: the outcome is the same no matter how the goroutines schedule).
	block := make(chan struct{})
	b := newBatcher(1, 8, 1, time.Millisecond, func(batch []*job) {
		<-block
	}, nil)
	if err := b.Submit(newJob(nil)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain with a stuck pass: %v, want context.Canceled", err)
	}
	close(block)
}

func TestBatcherPanicIsolation(t *testing.T) {
	b := newBatcher(8, 64, 1, time.Millisecond, func(batch []*job) {
		panic("scoring exploded")
	}, nil)
	defer b.Drain(context.Background())
	j := newJob(nil)
	if err := b.Submit(j); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-j.result:
		if res.err == nil || !strings.Contains(res.err.Error(), "scoring exploded") {
			t.Fatalf("panicking pass delivered %v, want wrapped panic error", res.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("panicking pass left the handler hanging")
	}

	// The dispatcher survived: a following job still gets a result.
	j2 := newJob(nil)
	if err := b.Submit(j2); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j2.result:
	case <-time.After(2 * time.Second):
		t.Fatal("dispatcher died after a panic")
	}
}

func TestScoreJobsSkipsExpired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := newJob(ctx)
	scoreJobs([]*job{j}, 1)
	select {
	case res := <-j.result:
		if !errors.Is(res.err, context.Canceled) {
			t.Fatalf("expired job got %v, want context.Canceled", res.err)
		}
	default:
		t.Fatal("expired job got no result")
	}
}

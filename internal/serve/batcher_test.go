package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newJob(ctx context.Context) *job {
	if ctx == nil {
		ctx = context.Background()
	}
	return &job{ctx: ctx, result: make(chan jobResult, 1), enqueued: time.Now()}
}

func echoProcess(batches *[][]*job, mu *sync.Mutex) func([]*job) {
	return func(batch []*job) {
		mu.Lock()
		*batches = append(*batches, batch)
		mu.Unlock()
		for _, j := range batch {
			j.trySend(jobResult{})
		}
	}
}

func TestBatcherCoalesces(t *testing.T) {
	var batches [][]*job
	var mu sync.Mutex
	gate := make(chan struct{})
	b := newBatcher(8, 64, 1, 50*time.Millisecond, func(batch []*job) {
		<-gate // hold the dispatcher so later submits pile up in the queue
		mu.Lock()
		batches = append(batches, batch)
		mu.Unlock()
		for _, j := range batch {
			j.trySend(jobResult{})
		}
	})
	defer b.Drain(context.Background())

	var jobs []*job
	for i := 0; i < 9; i++ {
		j := newJob(nil)
		jobs = append(jobs, j)
		if err := b.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	for _, j := range jobs {
		select {
		case <-j.result:
		case <-time.After(2 * time.Second):
			t.Fatal("job never completed")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// The first batch grabs whatever arrived within MaxWait; once the
	// dispatcher was gated, the remaining jobs must coalesce rather than
	// run one batch per job.
	if len(batches) >= 9 {
		t.Fatalf("no coalescing: %d batches for 9 jobs", len(batches))
	}
	total := 0
	for _, batch := range batches {
		if len(batch) > 8 {
			t.Fatalf("batch of %d exceeds maxBatch 8", len(batch))
		}
		total += len(batch)
	}
	if total != 9 {
		t.Fatalf("processed %d jobs, want 9", total)
	}
}

func TestBatcherQueueFull(t *testing.T) {
	gate := make(chan struct{})
	b := newBatcher(1, 2, 1, time.Millisecond, func(batch []*job) {
		<-gate
		for _, j := range batch {
			j.trySend(jobResult{})
		}
	})
	defer func() {
		close(gate)
		b.Drain(context.Background())
	}()

	// One job occupies the dispatcher; two fill the queue. The queue can
	// momentarily have free space while the dispatcher pulls a job, so
	// submit until rejection rather than asserting an exact count.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := b.Submit(newJob(nil)); errors.Is(err, ErrQueueFull) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("bounded queue never rejected")
		}
	}
}

func TestBatcherDrainCompletesQueuedJobs(t *testing.T) {
	var processed atomic.Int64
	b := newBatcher(4, 64, 1, 10*time.Millisecond, func(batch []*job) {
		time.Sleep(20 * time.Millisecond)
		processed.Add(int64(len(batch)))
		for _, j := range batch {
			j.trySend(jobResult{})
		}
	})
	const n = 17
	jobs := make([]*job, n)
	for i := range jobs {
		jobs[i] = newJob(nil)
		if err := b.Submit(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := processed.Load(); got != n {
		t.Fatalf("drain processed %d of %d queued jobs", got, n)
	}
	for i, j := range jobs {
		select {
		case <-j.result:
		default:
			t.Fatalf("job %d got no result after drain", i)
		}
	}
	// Intake is closed for good.
	if err := b.Submit(newJob(nil)); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain: %v, want ErrDraining", err)
	}
	// Drain is idempotent.
	if err := b.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestBatcherDrainTimeout(t *testing.T) {
	block := make(chan struct{})
	b := newBatcher(1, 8, 1, time.Millisecond, func(batch []*job) {
		<-block
	})
	if err := b.Submit(newJob(nil)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := b.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with a stuck pass: %v, want DeadlineExceeded", err)
	}
	close(block)
}

func TestBatcherPanicIsolation(t *testing.T) {
	b := newBatcher(8, 64, 1, time.Millisecond, func(batch []*job) {
		panic("scoring exploded")
	})
	defer b.Drain(context.Background())
	j := newJob(nil)
	if err := b.Submit(j); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-j.result:
		if res.err == nil || !strings.Contains(res.err.Error(), "scoring exploded") {
			t.Fatalf("panicking pass delivered %v, want wrapped panic error", res.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("panicking pass left the handler hanging")
	}

	// The dispatcher survived: a following job still gets a result.
	j2 := newJob(nil)
	if err := b.Submit(j2); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j2.result:
	case <-time.After(2 * time.Second):
		t.Fatal("dispatcher died after a panic")
	}
}

func TestScoreJobsSkipsExpired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := newJob(ctx)
	scoreJobs([]*job{j}, 1)
	select {
	case res := <-j.result:
		if !errors.Is(res.err, context.Canceled) {
			t.Fatalf("expired job got %v, want context.Canceled", res.err)
		}
	default:
		t.Fatal("expired job got no result")
	}
}

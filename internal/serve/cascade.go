package serve

import (
	"fmt"
	"time"

	"repro/internal/cascade"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// CascadeConfig opts the server into the two-tier scoring cascade
// (DESIGN.md "Cascade serving"): requests whose tier-1 PRLM margin clears
// the bundle's calibrated per-tier bar are answered from the cheap path
// without touching the supervector/SVM machinery; everything else
// escalates to the full battery unchanged.
type CascadeConfig struct {
	// Enabled turns the fast path on. With a bundle that carries no
	// cascade model every request escalates (reason "no_cascade_model") —
	// enabling the cascade never makes a deployment less available.
	Enabled bool
	// Margin is the threshold-offset policy spec (cascade.ParsePolicy): a
	// bare offset ("0.05", "-inf", "+inf") or per-tier overrides
	// ("default=0;30s=0.1"). Empty means offset 0 — the calibrated
	// per-tier margins as-is. "-inf" escalates everything (bit-identical
	// to a cascade-less server); "+inf" answers everything at tier 1.
	Margin string
}

// Serve-layer escalation reasons, complementing the policy's
// cascade.ReasonHighMargin/ReasonLowMargin: requests tier 1 never scored.
const (
	// ReasonNoCascadeModel: the loaded bundle carries no cascade model.
	ReasonNoCascadeModel = "no_cascade_model"
	// ReasonNoTier1Input: the request has no lattice for the cascade's
	// designated front-end (supervector-only or absent), so there is no
	// 1-best to score.
	ReasonNoTier1Input = "no_tier1_input"
	// ReasonTier1Fault: tier 1 errored or panicked; the request degraded
	// to a transparent escalation (never a 5xx).
	ReasonTier1Fault = "tier1_fault"
)

// CascadeOutcome reports the cascade decision on a ScoreResult when the
// server runs with the cascade enabled (absent otherwise).
type CascadeOutcome struct {
	// Exited is true when tier 1 answered the request.
	Exited bool `json:"exited"`
	// Tier is the duration tier the policy assigned (by 1-best length);
	// empty when tier 1 never scored the request.
	Tier string `json:"tier,omitempty"`
	// Reason is the decision code: high_margin, low_margin,
	// no_cascade_model, no_tier1_input, or tier1_fault.
	Reason string `json:"reason"`
	// Margin is the tier-1 best-vs-second-best LLR gap (zero when tier 1
	// never scored).
	Margin float64 `json:"margin,omitempty"`
}

// Cascade counters and per-path latency windows. Exit/escalate partition
// every scoring request of a cascade-enabled server; tier1.failed counts
// transparent fault-escalations (a subset of escalate). The two latency
// histograms split the /v1/score request latency by path — the observable
// the BENCH_cascade.json speedup claims are checked against in
// production.
var (
	cascExit    = obs.GetCounter("serve.cascade.exit")
	wcascExit   = obs.GetWindowCounter("serve.cascade.exit")
	cascEsc     = obs.GetCounter("serve.cascade.escalate")
	wcascEsc    = obs.GetWindowCounter("serve.cascade.escalate")
	cascFailed  = obs.GetCounter("serve.cascade.tier1.failed")
	wcascFailed = obs.GetWindowCounter("serve.cascade.tier1.failed")
	cascT1Lat   = obs.GetHistogram("serve.cascade.tier1.seconds")
	wcascT1Lat  = obs.GetWindow("serve.cascade.tier1.seconds")
	cascEscLat  = obs.GetHistogram("serve.cascade.escalated.seconds")
	wcascEscLat = obs.GetWindow("serve.cascade.escalated.seconds")
	// cascEscDegraded counts escalated requests whose heavy result came
	// back degraded — the per-tier degradation split (tier-1 exits never
	// degrade: they touch no front-end battery).
	cascEscDegraded  = obs.GetCounter("serve.cascade.escalated.degraded")
	wcascEscDegraded = obs.GetWindowCounter("serve.cascade.escalated.degraded")
)

// noteCascadeExit / noteCascadeEscalate fold one request into the
// cascade accounting. d < 0 skips the latency histograms (batch
// utterances share dispatch, so a per-utterance wall time would price
// batch-mates' work; only the counters are meaningful there).
func (s *Server) noteCascadeExit(d time.Duration) {
	cascExit.Inc()
	if d >= 0 {
		cascT1Lat.Observe(d.Seconds())
	}
	if !s.cfg.DisableTracing {
		wcascExit.Inc()
		if d >= 0 {
			wcascT1Lat.Observe(d.Seconds())
		}
	}
}

func (s *Server) noteCascadeEscalate(d time.Duration, degraded bool) {
	cascEsc.Inc()
	if d >= 0 {
		cascEscLat.Observe(d.Seconds())
	}
	if degraded {
		cascEscDegraded.Inc()
	}
	if !s.cfg.DisableTracing {
		wcascEsc.Inc()
		if d >= 0 {
			wcascEscLat.Observe(d.Seconds())
		}
		if degraded {
			wcascEscDegraded.Inc()
		}
	}
}

func (s *Server) noteCascadeFault() {
	cascFailed.Inc()
	if !s.cfg.DisableTracing {
		wcascFailed.Inc()
	}
}

// tryCascade runs tier 1 on one utterance under the server's policy and
// folds the fault accounting in. It returns the outcome (never nil) and,
// on a tier-1 exit, the finished result.
func (s *Server) tryCascade(m *Model, req *ScoreRequest, parent *obs.Span) (*CascadeOutcome, *ScoreResult) {
	out, fast := CascadeTier1(m, s.cascadePolicy, req, parent)
	if out.Reason == ReasonTier1Fault {
		s.noteCascadeFault()
	}
	return out, fast
}

// CascadeTier1 runs the tier-1 decision for one utterance against a
// loaded model under pol. Any tier-1 error or panic — including injected
// faults at the "cascade.tier1" chaos site — degrades to a transparent
// escalation: the caller proceeds down the heavy path exactly as if the
// cascade were disabled, and the fault is visible only in the outcome's
// reason (ReasonTier1Fault — the caller owns the failure counter) and
// the trace span.
//
// Exported because the cluster coordinator (internal/cluster) runs the
// identical decision before scattering any shard RPC: a tier-1 exit
// answers from the coordinator alone, so the fast path's latency win
// compounds with the saved fan-out.
func CascadeTier1(m *Model, pol cascade.Policy, req *ScoreRequest, parent *obs.Span) (*CascadeOutcome, *ScoreResult) {
	out := &CascadeOutcome{Reason: ReasonNoCascadeModel}
	cm := m.Bundle.Cascade
	if cm == nil {
		return out, nil
	}
	in, ok := req.FrontEnds[cm.FrontEnd]
	if !ok || in.Lattice == nil {
		out.Reason = ReasonNoTier1Input
		return out, nil
	}
	var sp *obs.Span
	if parent != nil {
		sp = parent.StartChild("cascade.tier1")
	}
	d, err := decideTier1(cm, pol, in.Lattice)
	if err != nil {
		out.Reason = ReasonTier1Fault
		if sp != nil {
			sp.SetLabel("error", err.Error())
			sp.End()
		}
		escalateSpan(parent, out)
		return out, nil
	}
	out.Tier, out.Margin, out.Reason, out.Exited = d.Tier, d.Margin, d.Reason, d.Exit
	if sp != nil {
		sp.SetLabel("tier", d.Tier)
		sp.SetLabel("reason", d.Reason)
		sp.SetLabel("margin", fmt.Sprintf("%.4f", d.Margin))
		sp.End()
	}
	if !d.Exit {
		escalateSpan(parent, out)
		return out, nil
	}
	return out, &ScoreResult{
		ID:      req.ID,
		Best:    m.Bundle.Languages[d.Best],
		Fused:   d.Scores,
		Cascade: out,
	}
}

// decideTier1 is the fault-isolated tier-1 scoring step: 1-best decode of
// the designated front-end's lattice, PRLM scoring, and the margin
// policy. Panics are converted to errors so a broken tier 1 can never
// take down a request the heavy path would have served.
func decideTier1(cm *cascade.Model, pol cascade.Policy, slots [][]Slot) (d cascade.Decision, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("tier-1 panic: %v", r)
		}
	}()
	// Chaos hook: error faults exercise the transparent-escalation path,
	// panic faults the recovery above.
	if err := faultinject.At("cascade.tier1"); err != nil {
		return d, err
	}
	l, err := latticeFromSlots(slots, cm.NumPhones)
	if err != nil {
		// Malformed lattices escalate; the heavy path rejects them with
		// the canonical 400 so error texts stay identical either way.
		return d, err
	}
	seq, _ := l.BestPath()
	th := pol.Threshold(cm.Tiers[cm.TierFor(len(seq))].Name)
	return cm.Decide(seq, th), nil
}

// escalateSpan marks an escalation in the request trace.
func escalateSpan(parent *obs.Span, out *CascadeOutcome) {
	if parent == nil {
		return
	}
	sp := parent.StartChild("cascade.escalate")
	sp.SetLabel("reason", out.Reason)
	sp.End()
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cascade"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/serve"
)

// CoordinatorConfig sizes the scatter–gather coordinator. Zero values
// select the defaults noted per field.
type CoordinatorConfig struct {
	// ModelDir is the full bundle directory (required); the coordinator
	// owns the complete battery and the fusion backend, and splits
	// per-worker shard bundles out of it.
	ModelDir string
	// Peers are the worker addresses (host:port or http:// URLs), one
	// shard per worker (required, at least one).
	Peers []string
	// ShardTimeout is the per-shard RPC deadline; a shard that misses it
	// degrades the request like a failed front-end (1 s).
	ShardTimeout time.Duration
	// RequestTimeout is the whole-request deadline (5 s).
	RequestTimeout time.Duration
	// ProbeInterval paces the repair loop that health-checks workers and
	// re-pushes the current generation to ones that restarted (2 s).
	ProbeInterval time.Duration
	// Breaker governs the per-peer circuit breakers.
	Breaker BreakerPolicy
	// PushRetries/PushBackoff govern bundle-distribution retries per
	// worker (2 extra attempts, 100 ms doubling) — the same retry shape
	// as model reloads.
	PushRetries int
	PushBackoff time.Duration
	// DrainTimeout bounds graceful shutdown (10 s).
	DrainTimeout time.Duration
	// MaxBodyBytes bounds request bodies (32 MiB).
	MaxBodyBytes int64
	// DisableTracing turns off request spans and the /tracez buffer.
	DisableTracing bool
	// Cascade opts the coordinator into the two-tier cascade fast path:
	// tier 1 runs on the coordinator (which owns the full bundle, cascade
	// model included), and a high-margin request is answered without
	// scattering a single shard RPC. Workers never see the cascade —
	// shard bundles are split without it, like fusion.
	Cascade serve.CascadeConfig
	// Transport overrides the HTTP transport to workers (tests route to
	// in-process handlers; nil = http.DefaultTransport).
	Transport http.RoundTripper

	// clock substitutes the time source in tests (nil: real time).
	clock Clock
}

func (c *CoordinatorConfig) setDefaults() {
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.PushRetries == 0 {
		c.PushRetries = 2
	}
	if c.PushRetries < 0 {
		c.PushRetries = 0
	}
	if c.PushBackoff <= 0 {
		c.PushBackoff = 100 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.clock == nil {
		c.clock = realClock{}
	}
}

// fleetPlan is one immutable routing generation: the coordinator model
// it was split from and the front-end → peer routing table. Swapped
// atomically only after every worker acked its shard bundle for gen, so
// a request admitted under a plan always finds workers that can serve
// its generation (or degrades).
type fleetPlan struct {
	gen   int64
	model *serve.Model
	route map[string]*peer // front-end name → owning peer
}

// Coordinator is the scatter–gather front of the fleet. It serves the
// exact standalone scoring API; see the package comment for the
// contract.
type Coordinator struct {
	cfg   CoordinatorConfig
	reg   *serve.Registry
	peers []*peer
	mux   *http.ServeMux

	plan          atomic.Pointer[fleetPlan]
	traces        *obs.TraceBuffer
	draining      atomic.Bool
	distMu        sync.Mutex // serializes Distribute/repair
	cascadePolicy cascade.Policy
}

// NewCoordinator loads the full bundle and prepares the fleet clients.
// No distribution happens yet — call Distribute (Run's repair loop also
// keeps retrying it), and the coordinator answers 503 on scoring until
// the first distribution lands on every worker.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg.setDefaults()
	if cfg.ModelDir == "" {
		return nil, fmt.Errorf("cluster: no model directory configured")
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: coordinator has no worker peers")
	}
	c := &Coordinator{cfg: cfg, reg: serve.NewRegistry(cfg.ModelDir)}
	if cfg.Cascade.Enabled {
		pol, err := cascade.ParsePolicy(cfg.Cascade.Margin)
		if err != nil {
			return nil, fmt.Errorf("cluster: cascade margin: %w", err)
		}
		c.cascadePolicy = pol
	}
	if _, err := c.reg.Reload(); err != nil {
		return nil, fmt.Errorf("cluster: initial model load: %w", err)
	}
	for _, addr := range cfg.Peers {
		c.peers = append(c.peers, newPeer(addr, cfg.Breaker, cfg.Transport, cfg.clock))
	}
	c.traces = obs.NewTraceBuffer(0, 0, 0)
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/v1/score", c.instrument("score", c.handleScore))
	c.mux.HandleFunc("/v1/score/batch", c.instrument("batch", c.handleScoreBatch))
	c.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	c.mux.HandleFunc("/readyz", c.handleReadyz)
	c.mux.HandleFunc("/metricsz", c.handleMetricsz)
	c.mux.HandleFunc("/tracez", c.handleTracez)
	c.mux.HandleFunc("/clusterz", c.handleClusterz)
	c.mux.HandleFunc("/-/reload", c.instrument("reload", c.handleReload))
	obs.SetGauge("cluster.peers", float64(len(c.peers)))
	return c, nil
}

// Handler returns the coordinator's HTTP handler tree.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Plan returns the active routing generation (0 before the first
// successful distribution).
func (c *Coordinator) Plan() int64 {
	if pl := c.plan.Load(); pl != nil {
		return pl.gen
	}
	return 0
}

// Distribute splits the current bundle into per-worker shard bundles,
// pushes each to its worker (retry/backoff per peer), and — only when
// every worker acked the new generation — atomically swaps the routing
// plan. On any failure the previous plan keeps routing.
func (c *Coordinator) Distribute(ctx context.Context) error {
	c.distMu.Lock()
	defer c.distMu.Unlock()
	m := c.reg.Current()
	gen := m.Version
	shards, err := c.splitShards(m, gen)
	if err != nil {
		return err
	}
	for i, p := range c.peers {
		if _, err := p.push(ctx, shards[i].manifest, shards[i].sealed, c.cfg.PushRetries, c.cfg.PushBackoff); err != nil {
			obs.Inc("cluster.distribute.failures")
			return fmt.Errorf("cluster: distribute generation %d to %s: %w", gen, p.addr, err)
		}
		p.fes = shards[i].fes
	}
	route := make(map[string]*peer, len(m.Manifest.FrontEnds))
	for i, p := range c.peers {
		for _, fe := range shards[i].fes {
			route[fe] = p
		}
	}
	c.plan.Store(&fleetPlan{gen: gen, model: m, route: route})
	obs.Inc("cluster.distributions")
	obs.SetGauge("cluster.generation", float64(gen))
	return nil
}

// shard is one worker's cut of the bundle, sealed for the wire.
type shard struct {
	fes      []string
	manifest persist.Manifest
	sealed   []byte
}

// splitShards cuts the bundle round-robin across the peers. Fusion and
// the cascade model are stripped — only the coordinator fuses, and tier
// 1 runs coordinator-side before any shard RPC — and each shard manifest
// is stamped with the generation and the parent bundle's SHA-256.
func (c *Coordinator) splitShards(m *serve.Model, gen int64) ([]shard, error) {
	assign := Assign(m.Manifest.FrontEnds, len(c.peers))
	byName := make(map[string]persist.FrontEndModel, len(m.Bundle.FrontEnds))
	for _, fe := range m.Bundle.FrontEnds {
		byName[fe.Name] = fe
	}
	shards := make([]shard, len(c.peers))
	for i, fes := range assign {
		sub := &persist.Bundle{Languages: m.Bundle.Languages}
		for _, name := range fes {
			fe, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("cluster: manifest front-end %q missing from bundle", name)
			}
			sub.FrontEnds = append(sub.FrontEnds, fe)
		}
		if err := sub.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		sealed, err := persist.MarshalSealed(sub)
		if err != nil {
			return nil, err
		}
		mf := *m.Manifest
		mf.ShardOf = m.Manifest.BundleSHA256
		mf.ClusterGeneration = gen
		mf.BundleSHA256 = "" // recomputed by the worker's SaveBundle
		// Restamp the contents summary for the shard's cut: fresh slices
		// first (the copy above shares backing arrays with the parent
		// manifest), then the sub-bundle's own front-end list and
		// feature-space geometry — the worker checks its loaded bundle
		// against these dims, so they must describe the shard, not the
		// parent. Fusion/cascade are stripped with the bundle: shards
		// escalate nothing, tier 1 and fusion are coordinator-only.
		mf.FrontEnds = nil
		mf.FrontEndDims = nil
		mf.StampContents(sub)
		shards[i] = shard{fes: fes, manifest: mf, sealed: sealed}
	}
	return shards, nil
}

// repair is the self-healing tick: with no plan yet it retries the
// initial distribution; with a plan it probes each worker's /clusterz
// and re-pushes the current generation to any worker that restarted
// empty or is serving an older generation. A healthy probe (or
// successful re-push) closes the peer's breaker.
func (c *Coordinator) repair(ctx context.Context) {
	pl := c.plan.Load()
	if pl == nil {
		if err := c.Distribute(ctx); err != nil {
			obs.Inc("cluster.repair.failures")
		}
		return
	}
	var shards []shard
	for i, p := range c.peers {
		pctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
		var cz Clusterz
		err := p.rpc(pctx, "/clusterz", nil, nil, &cz)
		cancel()
		if err != nil {
			continue // stays down; the breaker already accounted it
		}
		if cz.Generation == pl.gen {
			continue
		}
		// Worker is off-plan: restarted with an empty spool, missed the
		// last distribution, or took a push from a distribution that
		// failed partway. Re-push the shard split from the PLAN's pinned
		// model — not reg.Current(), which may already hold a newer bundle
		// whose distribution never completed; stamping that content with
		// the plan generation would be exactly the mixed-generation fusion
		// this subsystem exists to prevent.
		if shards == nil {
			var serr error
			if shards, serr = c.splitShards(pl.model, pl.gen); serr != nil {
				obs.Inc("cluster.repair.failures")
				return
			}
		}
		pctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
		_, err = p.push(pctx, shards[i].manifest, shards[i].sealed, 0, c.cfg.PushBackoff)
		cancel()
		if err != nil {
			obs.Inc("cluster.repair.failures")
			continue
		}
		obs.Inc("cluster.repair.repushes")
	}
}

// Run serves on l until ctx is cancelled, with the repair loop ticking
// in the background, then drains gracefully.
func (c *Coordinator) Run(ctx context.Context, l net.Listener) error {
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	go func() {
		for {
			select {
			case <-rctx.Done():
				return
			case <-c.cfg.clock.After(c.cfg.ProbeInterval):
				c.repair(rctx)
			}
		}
	}()
	hs := &http.Server{Handler: c.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(l) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	c.draining.Store(true)
	obs.SetGauge("cluster.draining", 1)
	dctx, cancel := context.WithTimeout(context.Background(), c.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("cluster: shutdown: %w", err)
	}
	return nil
}

// ---- request handling ----

// Coordinator-side RED metrics live under cluster.http.* (the workers'
// serve.http.* names stay theirs, so a co-resident bench or test keeps
// the two tiers apart in one obs registry).
func (c *Coordinator) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := obs.GetCounter("cluster.http." + name + ".requests")
	lat := obs.GetHistogram("cluster.http." + name + ".seconds")
	wlat := obs.GetWindow("cluster.http." + name + ".seconds")
	errs := obs.GetCounter("cluster.http.errors")
	werrs := obs.GetWindowCounter("cluster.http.errors")
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		defer func() {
			d := time.Since(t0).Seconds()
			lat.Observe(d)
			if !c.cfg.DisableTracing {
				wlat.Observe(d)
			}
			if sw.status >= 500 {
				errs.Inc()
				if !c.cfg.DisableTracing {
					werrs.Inc()
				}
			}
		}()
		h(sw, r)
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// coordTrace is the per-request tracing state (nil when tracing off).
type coordTrace struct {
	id     string
	parent string
	spanID string
	start  time.Time
	root   *obs.Span
}

// span returns the request's root span for child annotations (nil when
// tracing is off).
func (tr *coordTrace) span() *obs.Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

func (c *Coordinator) startTrace(w http.ResponseWriter, r *http.Request, endpoint string) *coordTrace {
	if c.cfg.DisableTracing {
		return nil
	}
	id, parent, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		id, parent = obs.NewTraceID(), ""
	}
	tr := &coordTrace{
		id:     id,
		parent: parent,
		spanID: obs.NewSpanID(),
		start:  time.Now(),
		root:   obs.NewSpan("cluster." + endpoint),
	}
	tr.root.SetLabel("trace_id", id)
	w.Header().Set("traceparent", obs.Traceparent(id, tr.spanID))
	return tr
}

func (c *Coordinator) finishTrace(tr *coordTrace, endpoint string, status int, degraded bool, surviving []string, errMsg string) {
	if tr == nil {
		return
	}
	dur := tr.root.End()
	c.traces.Add(&obs.TraceEntry{
		TraceID:      tr.id,
		SpanID:       tr.spanID,
		ParentSpanID: tr.parent,
		Endpoint:     endpoint,
		Start:        tr.start,
		DurationSec:  dur.Seconds(),
		Status:       status,
		Degraded:     degraded,
		Surviving:    surviving,
		Error:        errMsg,
		Root:         tr.root.Data(),
	})
}

func statusOf(w http.ResponseWriter) int {
	if sw, ok := w.(*statusWriter); ok {
		return sw.status
	}
	return http.StatusOK
}

// admit runs the common scoring-request checks and resolves the active
// plan, or writes the response and returns nil.
func (c *Coordinator) admit(w http.ResponseWriter, r *http.Request) *fleetPlan {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return nil
	}
	if c.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "coordinator is draining")
		return nil
	}
	pl := c.plan.Load()
	if pl == nil {
		writeError(w, http.StatusServiceUnavailable, "fleet not yet distributed")
		return nil
	}
	return pl
}

func (c *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// shardCall groups the front-ends of one request that live on one peer.
type shardCall struct {
	p   *peer
	fes []string
}

// planShards groups a request's front-ends by owning peer, validating
// names against the plan's model. The groups come out in routing-table
// (bundle) order via the peers slice, keeping scatter order stable.
func (c *Coordinator) planShards(pl *fleetPlan, req *serve.ScoreRequest) ([]shardCall, error) {
	byPeer := make(map[*peer][]string, len(c.peers))
	for name := range req.FrontEnds {
		p, ok := pl.route[name]
		if !ok {
			return nil, fmt.Errorf("unknown front-end %q (model has %v)", name, pl.model.Manifest.FrontEnds)
		}
		byPeer[p] = append(byPeer[p], name)
	}
	var calls []shardCall
	for _, p := range c.peers {
		if fes, ok := byPeer[p]; ok {
			calls = append(calls, shardCall{p: p, fes: fes})
		}
	}
	return calls, nil
}

// gather collects one request's per-front-end score rows across shard
// RPC outcomes into AssembleResult's input maps: scores by bundle
// front-end index, and per-front-end errors for everything a shard
// failed to score (peer down, deadline missed, breaker open, generation
// conflict, or the worker's own per-front-end degradation).
type gather struct {
	model  *serve.Model
	scores map[int][]float64
	feErrs map[int]error
}

func newGather(m *serve.Model) *gather {
	return &gather{model: m, scores: make(map[int][]float64), feErrs: make(map[int]error)}
}

func (g *gather) failShard(p *peer, fes []string, err error) {
	for _, name := range fes {
		if q, ok := g.model.FrontEndIndex(name); ok {
			g.feErrs[q] = fmt.Errorf("shard %s: %w", p.addr, err)
		}
	}
	obs.Inc("cluster.rpc.errors")
	wobsShardFailed.Inc()
}

func (g *gather) mergeResult(p *peer, fes []string, res *serve.ScoreResult) {
	for _, name := range fes {
		q, ok := g.model.FrontEndIndex(name)
		if !ok {
			continue
		}
		if row, ok := res.Scores[name]; ok {
			g.scores[q] = row
			continue
		}
		msg := res.FrontEndErrors[name]
		if msg == "" {
			if msg = res.Error; msg == "" {
				msg = "no score returned"
			}
		}
		g.feErrs[q] = fmt.Errorf("shard %s: %s", p.addr, msg)
	}
}

var (
	obsDegraded     = obs.GetCounter("cluster.score.degraded")
	wobsDegraded    = obs.GetWindowCounter("cluster.score.degraded")
	wobsShardFailed = obs.GetWindowCounter("cluster.rpc.errors")
)

// assemble fuses one gathered utterance exactly like the standalone
// serving path (AssembleResult: exact fusion when everything survived,
// ScoreMasked survivor fusion otherwise). ok=false when nothing
// survived — the all-shards-lost error path.
func (g *gather) assemble(id string) (serve.ScoreResult, bool) {
	if len(g.scores) == 0 {
		return serve.ScoreResult{}, false
	}
	res := serve.AssembleResult(g.model, id, g.scores, g.feErrs)
	if res.Degraded {
		obsDegraded.Inc()
		wobsDegraded.Inc()
	}
	return res, true
}

// firstErr surfaces a representative shard error for an all-lost
// utterance (deterministic: lowest front-end index).
func (g *gather) firstErr() error {
	for q := 0; ; q++ {
		if err, ok := g.feErrs[q]; ok {
			return err
		}
		if q > len(g.model.Bundle.FrontEnds) {
			return fmt.Errorf("no shard produced scores")
		}
	}
}

func (c *Coordinator) handleScore(w http.ResponseWriter, r *http.Request) {
	pl := c.admit(w, r)
	if pl == nil {
		return
	}
	tr := c.startTrace(w, r, "score")
	var req serve.ScoreRequest
	if !c.decodeBody(w, r, &req) {
		c.finishTrace(tr, "score", statusOf(w), false, nil, "bad request")
		return
	}
	if len(req.FrontEnds) == 0 {
		writeError(w, http.StatusBadRequest, "request names no front-ends")
		c.finishTrace(tr, "score", statusOf(w), false, nil, "no front-ends")
		return
	}
	// Cascade fast path: a high-margin tier-1 decision answers here, with
	// zero shard RPCs in flight; everything else falls through into the
	// ordinary scatter–gather carrying its escalation outcome.
	var casc *serve.CascadeOutcome
	if c.cfg.Cascade.Enabled {
		var fast *serve.ScoreResult
		casc, fast = c.tryCascade(pl, &req, tr.span())
		if fast != nil {
			resp := serve.ScoreResponse{
				ModelVersion:      pl.model.Version,
				ClusterGeneration: pl.gen,
				Languages:         pl.model.Bundle.Languages,
				ScoreResult:       *fast,
			}
			if tr != nil {
				resp.TraceID = tr.id
			}
			writeJSON(w, http.StatusOK, resp)
			c.finishTrace(tr, "score", http.StatusOK, false, nil, "")
			return
		}
	}
	calls, err := c.planShards(pl, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		c.finishTrace(tr, "score", statusOf(w), false, nil, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	defer cancel()

	g := newGather(pl.model)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, call := range calls {
		wg.Add(1)
		go func(call shardCall) {
			defer wg.Done()
			sub := &serve.ScoreRequest{ID: req.ID, FrontEnds: make(map[string]serve.FrontEndInput, len(call.fes))}
			for _, fe := range call.fes {
				sub.FrontEnds[fe] = req.FrontEnds[fe]
			}
			res, err := c.scatterOne(ctx, tr, pl.gen, call, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				g.failShard(call.p, call.fes, err)
				return
			}
			g.mergeResult(call.p, call.fes, &res.ScoreResult)
		}(call)
	}
	wg.Wait()

	result, ok := g.assemble(req.ID)
	if !ok {
		err := g.firstErr()
		writeError(w, http.StatusServiceUnavailable, "all shards failed: %v", err)
		c.finishTrace(tr, "score", statusOf(w), false, nil, err.Error())
		return
	}
	result.Cascade = casc
	resp := serve.ScoreResponse{
		ModelVersion:      pl.model.Version,
		ClusterGeneration: pl.gen,
		Languages:         pl.model.Bundle.Languages,
		ScoreResult:       result,
	}
	if tr != nil {
		resp.TraceID = tr.id
	}
	writeJSON(w, http.StatusOK, resp)
	c.finishTrace(tr, "score", http.StatusOK, result.Degraded, result.Surviving, result.Error)
}

// scatterOne runs one shard's /v1/score RPC under the shard deadline,
// with an rpc.shard child span whose span id becomes the traceparent
// the worker continues — /tracez then shows the coordinator→shard
// subtree on both sides of the hop.
func (c *Coordinator) scatterOne(ctx context.Context, tr *coordTrace, gen int64, call shardCall, sub *serve.ScoreRequest) (*serve.ScoreResponse, error) {
	sctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	var sp *obs.Span
	var traceparent string
	if tr != nil {
		sp = tr.root.StartChild("rpc.shard")
		sp.SetLabel("shard", call.p.addr)
		spanID := obs.NewSpanID()
		sp.SetLabel("span_id", spanID)
		traceparent = obs.Traceparent(tr.id, spanID)
	}
	res, err := call.p.score(sctx, gen, traceparent, sub)
	if sp != nil {
		if err != nil {
			sp.SetLabel("error", err.Error())
		}
		sp.End()
	}
	return res, err
}

func (c *Coordinator) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	pl := c.admit(w, r)
	if pl == nil {
		return
	}
	tr := c.startTrace(w, r, "batch")
	var req serve.BatchRequest
	if !c.decodeBody(w, r, &req) {
		c.finishTrace(tr, "batch", statusOf(w), false, nil, "bad request")
		return
	}
	if len(req.Utterances) == 0 {
		writeError(w, http.StatusBadRequest, "batch names no utterances")
		c.finishTrace(tr, "batch", statusOf(w), false, nil, "empty batch")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	defer cancel()

	// Scatter one batch RPC per peer, carrying only the utterances (and
	// front-end subsets) that peer owns; uttIdx maps the sub-batch back
	// to request positions. Degradation stays per utterance end to end:
	// a peer-level failure fails that peer's front-ends for its
	// utterances, and a worker-side per-utterance degradation (the
	// per-utterance sets on BatchResponse.Results) degrades exactly the
	// utterances it named.
	gathers := make([]*gather, len(req.Utterances))
	for i := range gathers {
		gathers[i] = newGather(pl.model)
	}
	// Cascade runs per utterance, exactly like the standalone batch path:
	// a tier-1 exit carries its finished result straight to the response
	// and contributes nothing to any peer's sub-batch.
	fast := make([]*serve.ScoreResult, len(req.Utterances))
	cascOut := make([]*serve.CascadeOutcome, len(req.Utterances))
	var badReq error
	type peerBatch struct {
		call   shardCall
		sub    serve.BatchRequest
		uttIdx []int
		fes    [][]string // per sub-utterance front-end subset
	}
	var batches []*peerBatch
	byPeer := make(map[*peer]*peerBatch, len(c.peers))
	for i := range req.Utterances {
		u := &req.Utterances[i]
		if c.cfg.Cascade.Enabled {
			casc, res := c.tryCascade(pl, u, tr.span())
			if res != nil {
				fast[i] = res
				continue
			}
			cascOut[i] = casc
		}
		calls, err := c.planShards(pl, u)
		if err != nil {
			badReq = err
			break
		}
		for _, call := range calls {
			pb, ok := byPeer[call.p]
			if !ok {
				pb = &peerBatch{call: call}
				byPeer[call.p] = pb
				batches = append(batches, pb)
			}
			sub := serve.ScoreRequest{ID: u.ID, FrontEnds: make(map[string]serve.FrontEndInput, len(call.fes))}
			for _, fe := range call.fes {
				sub.FrontEnds[fe] = u.FrontEnds[fe]
			}
			pb.sub.Utterances = append(pb.sub.Utterances, sub)
			pb.uttIdx = append(pb.uttIdx, i)
			pb.fes = append(pb.fes, call.fes)
		}
	}
	if badReq != nil {
		writeError(w, http.StatusBadRequest, "%v", badReq)
		c.finishTrace(tr, "batch", statusOf(w), false, nil, badReq.Error())
		return
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, pb := range batches {
		wg.Add(1)
		go func(pb *peerBatch) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
			defer cancel()
			var sp *obs.Span
			var traceparent string
			if tr != nil {
				sp = tr.root.StartChild("rpc.shard")
				sp.SetLabel("shard", pb.call.p.addr)
				sp.SetAttr("utterances", float64(len(pb.sub.Utterances)))
				spanID := obs.NewSpanID()
				sp.SetLabel("span_id", spanID)
				traceparent = obs.Traceparent(tr.id, spanID)
			}
			res, err := pb.call.p.batch(sctx, pl.gen, traceparent, &pb.sub)
			if sp != nil {
				if err != nil {
					sp.SetLabel("error", err.Error())
				}
				sp.End()
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				for k, i := range pb.uttIdx {
					gathers[i].failShard(pb.call.p, pb.fes[k], err)
				}
				return
			}
			for k, i := range pb.uttIdx {
				gathers[i].mergeResult(pb.call.p, pb.fes[k], &res.Results[k])
			}
		}(pb)
	}
	wg.Wait()

	resp := serve.BatchResponse{
		ModelVersion:      pl.model.Version,
		ClusterGeneration: pl.gen,
		Languages:         pl.model.Bundle.Languages,
		Results:           make([]serve.ScoreResult, len(req.Utterances)),
	}
	for i := range req.Utterances {
		if fast[i] != nil {
			resp.Results[i] = *fast[i]
			continue
		}
		res, ok := gathers[i].assemble(req.Utterances[i].ID)
		if !ok {
			res = serve.ScoreResult{ID: req.Utterances[i].ID, Error: fmt.Sprintf("all shards failed: %v", gathers[i].firstErr())}
		}
		res.Cascade = cascOut[i]
		if res.Degraded {
			resp.Degraded = true
			resp.DegradedCount++
		}
		resp.Results[i] = res
	}
	if tr != nil {
		resp.TraceID = tr.id
	}
	writeJSON(w, http.StatusOK, resp)
	c.finishTrace(tr, "batch", http.StatusOK, resp.Degraded, nil, "")
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	pl := c.plan.Load()
	if pl == nil {
		writeError(w, http.StatusServiceUnavailable, "fleet not yet distributed")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ready",
		"generation": pl.gen,
		"peers":      len(c.peers),
		"front_ends": pl.model.Manifest.FrontEnds,
		"languages":  len(pl.model.Bundle.Languages),
	})
}

func (c *Coordinator) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	rep := obs.Snapshot().MetricsOnly()
	rep.Meta = map[string]string{"service": "lred", "role": "coordinator"}
	if pl := c.plan.Load(); pl != nil {
		rep.Meta["cluster_generation"] = fmt.Sprintf("%d", pl.gen)
		rep.Meta["model_version"] = fmt.Sprintf("%d", pl.model.Version)
	}
	for _, p := range c.peers {
		rep.Meta["shard."+p.addr] = joinFEs(p.fes)
	}
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rep.WritePrometheus(w)
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		rep.WriteJSON(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or prom)", r.URL.Query().Get("format"))
	}
}

func (c *Coordinator) handleTracez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.traces.Snapshot())
}

func (c *Coordinator) handleClusterz(w http.ResponseWriter, r *http.Request) {
	cz := Clusterz{Role: "coordinator"}
	if pl := c.plan.Load(); pl != nil {
		cz.Generation = pl.gen
		cz.ModelVersion = pl.model.Version
		cz.FrontEnds = pl.model.Manifest.FrontEnds
	}
	for _, p := range c.peers {
		cz.Peers = append(cz.Peers, p.status())
	}
	writeJSON(w, http.StatusOK, cz)
}

// Reload reloads the full bundle from disk and redistributes it; the
// routing plan only advances when every worker acked the new
// generation. It returns the active generation (SIGHUP parity with the
// standalone daemon's hot reload).
func (c *Coordinator) Reload(ctx context.Context) (int64, error) {
	if _, err := c.reg.Reload(); err != nil {
		return c.Plan(), fmt.Errorf("reload failed (previous bundle still active): %w", err)
	}
	if err := c.Distribute(ctx); err != nil {
		return c.Plan(), fmt.Errorf("distribution failed (previous plan still routing): %w", err)
	}
	return c.Plan(), nil
}

// handleReload reloads the full bundle from disk and redistributes it;
// the routing plan only advances when every worker acked the new
// generation.
func (c *Coordinator) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if c.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "coordinator is draining")
		return
	}
	if _, err := c.reg.Reload(); err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed (previous bundle still active): %v", err)
		return
	}
	if err := c.Distribute(r.Context()); err != nil {
		writeError(w, http.StatusServiceUnavailable, "distribution failed (previous plan still routing): %v", err)
		return
	}
	pl := c.plan.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": pl.gen,
		"manifest":   pl.model.Manifest,
	})
}

func joinFEs(fes []string) string {
	out := ""
	for i, fe := range fes {
		if i > 0 {
			out += ","
		}
		out += fe
	}
	return out
}

package cluster

import (
	"reflect"
	"testing"
)

func TestAssignRoundRobin(t *testing.T) {
	fes := []string{"a", "b", "c", "d", "e"}
	got := Assign(fes, 2)
	want := [][]string{{"a", "c", "e"}, {"b", "d"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Assign = %v, want %v", got, want)
	}
}

func TestAssignProperties(t *testing.T) {
	fes := []string{"FE0", "FE1", "FE2", "FE3", "FE4", "FE5", "FE6"}
	for workers := 1; workers <= 9; workers++ {
		got := Assign(fes, workers)
		if len(got) != workers {
			t.Fatalf("workers=%d: %d shards", workers, len(got))
		}
		// Every front-end lands on exactly one shard, order preserved
		// within a shard, and shard sizes differ by at most one.
		seen := map[string]int{}
		min, max := len(fes), 0
		for _, shard := range got {
			for i := 1; i < len(shard); i++ {
				if shard[i-1] >= shard[i] {
					t.Fatalf("workers=%d: shard order broken: %v", workers, shard)
				}
			}
			if len(shard) < min {
				min = len(shard)
			}
			if len(shard) > max {
				max = len(shard)
			}
			for _, fe := range shard {
				seen[fe]++
			}
		}
		if len(seen) != len(fes) {
			t.Fatalf("workers=%d: covered %d of %d front-ends", workers, len(seen), len(fes))
		}
		for fe, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: %s assigned %d times", workers, fe, n)
			}
		}
		if max-min > 1 {
			t.Fatalf("workers=%d: unbalanced shards (sizes %d..%d)", workers, min, max)
		}
	}
}

func TestAssignDeterministic(t *testing.T) {
	fes := []string{"x", "y", "z"}
	a := Assign(fes, 2)
	b := Assign(fes, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Assign not deterministic: %v vs %v", a, b)
	}
}

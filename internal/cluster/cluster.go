// Package cluster turns the single-process scoring daemon into a
// horizontally scaled tier: a **coordinator** that owns the full model
// bundle and the fusion backend, and shared-nothing **shard workers**
// that each load only their assigned front-ends and score them on
// demand.
//
// The coordinator accepts the exact /v1/score and /v1/score/batch API
// of internal/serve, scatters per-front-end scoring RPCs to the workers
// that own them, gathers the partial score rows under a per-shard
// deadline, and fuses the survivors with serve.AssembleResult — i.e.
// fusion.Score when every shard answered and fusion.ScoreMasked
// survivor fusion when one did not. A shard that misses its deadline,
// trips its circuit breaker, or answers for the wrong model generation
// degrades the request exactly like a failed in-process front-end does
// in standalone mode: the response stays 2xx, marked Degraded with the
// surviving front-end set on the wire.
//
// Model distribution is coordinator-driven and generation-consistent.
// The coordinator splits its bundle into per-worker sub-bundles
// (internal/persist format, fusion stripped — fusion happens only at
// the coordinator), stamps each with the fleet generation, and pushes
// them over POST /-/bundle; a worker installs the bundle into its spool
// directory and hot-swaps it through the ordinary serve reload path.
// Scoring RPCs carry the generation in the X-Cluster-Generation header:
// a worker rejects routed requests for a different generation with 409,
// and the coordinator re-checks the generation echoed in every shard
// response, so a request never fuses scores from mixed model
// generations even across a concurrent redistribution. A background
// repair loop re-pushes the current generation to workers that restart
// empty or fall behind.
//
// Peer health reuses the retry/backoff + circuit-breaker machinery
// introduced for model reloads (serve/reloader.go), generalized per
// peer: TripAfter consecutive RPC failures open the breaker, scoring
// then fails fast (degrading instead of stalling on a dead worker)
// until Cooldown elapses and a half-open probe re-tests the peer.
//
// Chaos: every shard RPC passes the fault-injection site
// "cluster.rpc.<host:port>" (prefix rules: cluster.rpc.*), so the chaos
// plan grammar reaches the scatter path like any other site.
//
// cmd/lred surfaces all of this as -role=coordinator|worker; the
// default -role=standalone is bit-identical to the pre-cluster daemon.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/persist"
)

// Clock abstracts the time source of the breaker cooldowns and the
// repair loop so tests drive them deterministically (same de-flake
// contract as internal/serve: no test asserts on a wall-clock race).
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// bundlePush is the body of POST /-/bundle: the shard's manifest (with
// ClusterGeneration stamped) plus the sealed bundle bytes exactly as
// persist.MarshalSealed produced them.
type bundlePush struct {
	Manifest  persist.Manifest `json:"manifest"`
	BundleB64 string           `json:"bundle_b64"`
}

// bundleAck is a worker's response to a successful bundle install.
type bundleAck struct {
	Generation   int64    `json:"generation"`
	ModelVersion int64    `json:"model_version"`
	FrontEnds    []string `json:"front_ends"`
}

// Clusterz is the GET /clusterz introspection body. Workers report their
// own shard state; the coordinator reports the fleet (Peers filled).
type Clusterz struct {
	Role         string       `json:"role"`
	Generation   int64        `json:"generation"`
	ModelVersion int64        `json:"model_version,omitempty"`
	FrontEnds    []string     `json:"front_ends,omitempty"`
	Peers        []PeerStatus `json:"peers,omitempty"`
}

// PeerStatus is one worker's health as the coordinator sees it.
type PeerStatus struct {
	Addr      string   `json:"addr"`
	FrontEnds []string `json:"front_ends"`
	Up        bool     `json:"up"`
	Breaker   string   `json:"breaker"` // closed | open | half-open
	Failures  int64    `json:"failures"`
	// Generation the peer last acked; 0 until the first install.
	Generation int64 `json:"generation"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/serve"
)

// ErrBreakerOpen marks a shard RPC rejected without touching the
// network because the peer's circuit breaker is open.
var ErrBreakerOpen = errors.New("cluster: peer circuit breaker open")

// GenerationHeader carries the fleet generation a scoring RPC was
// routed for; workers reject mismatches with 409 (see worker.go).
const GenerationHeader = "X-Cluster-Generation"

// peer is the coordinator's client for one shard worker: base URL,
// assigned front-ends, circuit breaker, and per-peer metrics. The
// metric names are flat obs keys suffixed by the peer address —
// cluster.peer.<addr>.up, cluster.peer.<addr>.breaker_open,
// cluster.peer.<addr>.failures, cluster.rpc.<addr>.seconds — which is
// what lrestat's shards panel reads off /metricsz.
type peer struct {
	addr   string   // host:port (metric and log key)
	base   string   // http://host:port
	fes    []string // assigned front-end names, bundle order
	client *http.Client
	br     *breaker
	clock  Clock

	// ackedGen is the generation the worker last acked an install for
	// (0 before the first push); the repair loop keys re-pushes off it.
	ackedGen atomic.Int64

	up       *obs.Gauge
	brOpen   *obs.Gauge
	failures *obs.Counter
	rpcHist  *obs.Histogram
	rpcWin   *obs.Window
}

func newPeer(addr string, pol BreakerPolicy, transport http.RoundTripper, clock Clock) *peer {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	key := strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
	return &peer{
		addr:     key,
		base:     base,
		client:   &http.Client{Transport: transport},
		br:       newBreaker(pol),
		clock:    clock,
		up:       obs.GetGauge("cluster.peer." + key + ".up"),
		brOpen:   obs.GetGauge("cluster.peer." + key + ".breaker_open"),
		failures: obs.GetCounter("cluster.peer." + key + ".failures"),
		rpcHist:  obs.GetHistogram("cluster.rpc." + key + ".seconds"),
		rpcWin:   obs.GetWindow("cluster.rpc." + key + ".seconds"),
	}
}

// status snapshots the peer for /clusterz and the shards panel.
func (p *peer) status() PeerStatus {
	return PeerStatus{
		Addr:       p.addr,
		FrontEnds:  p.fes,
		Up:         p.up.Value() > 0,
		Breaker:    p.br.state(p.clock.Now()),
		Failures:   p.failures.Value(),
		Generation: p.ackedGen.Load(),
	}
}

// rpc runs one POST against the peer with breaker gating, the
// cluster.rpc.<addr> fault-injection site, and per-peer latency/health
// metrics. out, when non-nil, receives the decoded 2xx JSON body.
func (p *peer) rpc(ctx context.Context, path string, hdr http.Header, body []byte, out any) error {
	if !p.br.allow(p.clock.Now()) {
		// Failing fast is the point of the breaker: the shard degrades
		// without a network timeout. Not a recorded failure — the breaker
		// state only moves on real probe outcomes.
		return ErrBreakerOpen
	}
	err := p.do(ctx, path, hdr, body, out)
	if err != nil {
		p.failures.Inc()
		p.up.Set(0)
		if p.br.failure(p.clock.Now()) {
			obs.Inc("cluster.breaker.trips")
		}
		if p.br.state(p.clock.Now()) == BreakerOpen {
			p.brOpen.Set(1)
		}
		return err
	}
	p.br.success()
	p.up.Set(1)
	p.brOpen.Set(0)
	return nil
}

func (p *peer) do(ctx context.Context, path string, hdr http.Header, body []byte, out any) error {
	// Chaos hook: an injected error fails the RPC before it leaves the
	// process (dead peer), a delay stalls it into its shard deadline
	// (slow peer). Site per peer; plans usually use cluster.rpc.*.
	if err := faultinject.At("cluster.rpc." + p.addr); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	t0 := time.Now()
	resp, err := p.client.Do(req)
	d := time.Since(t0).Seconds()
	p.rpcHist.Observe(d)
	p.rpcWin.Observe(d)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("shard status %d: %s", resp.StatusCode, e.Error)
		}
		return fmt.Errorf("shard status %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// score runs one /v1/score RPC routed for generation gen; traceparent,
// when non-empty, propagates the coordinator's trace across the hop.
// The generation echoed in the response is re-checked so a worker that
// hot-swapped between routing and admission degrades this shard instead
// of silently contributing scores from another generation.
func (p *peer) score(ctx context.Context, gen int64, traceparent string, req *serve.ScoreRequest) (*serve.ScoreResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out serve.ScoreResponse
	if err := p.rpc(ctx, "/v1/score", p.headers(gen, traceparent), body, &out); err != nil {
		return nil, err
	}
	if out.ClusterGeneration != gen {
		return nil, fmt.Errorf("shard answered for generation %d, routed for %d", out.ClusterGeneration, gen)
	}
	return &out, nil
}

// batch runs one /v1/score/batch RPC (same contract as score).
func (p *peer) batch(ctx context.Context, gen int64, traceparent string, req *serve.BatchRequest) (*serve.BatchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out serve.BatchResponse
	if err := p.rpc(ctx, "/v1/score/batch", p.headers(gen, traceparent), body, &out); err != nil {
		return nil, err
	}
	if out.ClusterGeneration != gen {
		return nil, fmt.Errorf("shard answered for generation %d, routed for %d", out.ClusterGeneration, gen)
	}
	if len(out.Results) != len(req.Utterances) {
		return nil, fmt.Errorf("shard returned %d results for %d utterances", len(out.Results), len(req.Utterances))
	}
	return &out, nil
}

// push installs a shard bundle on the worker and records the acked
// generation. Distribution retries with backoff (the reload-policy
// idiom) because a push races worker startup; the breaker still gates
// and observes each attempt.
func (p *peer) push(ctx context.Context, m persist.Manifest, sealed []byte, retries int, backoff time.Duration) (*bundleAck, error) {
	body, err := json.Marshal(&bundlePush{Manifest: m, BundleB64: base64.StdEncoding.EncodeToString(sealed)})
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		var ack bundleAck
		lastErr = p.rpc(ctx, "/-/bundle", nil, body, &ack)
		if lastErr == nil {
			if ack.Generation != m.ClusterGeneration {
				return nil, fmt.Errorf("worker %s acked generation %d, pushed %d", p.addr, ack.Generation, m.ClusterGeneration)
			}
			p.ackedGen.Store(ack.Generation)
			return &ack, nil
		}
		if attempt >= retries || ctx.Err() != nil {
			return nil, lastErr
		}
		obs.Inc("cluster.distribute.retries")
		p.clock.Sleep(backoff)
		backoff *= 2
	}
}

func (p *peer) headers(gen int64, traceparent string) http.Header {
	h := make(http.Header, 2)
	h.Set(GenerationHeader, fmt.Sprintf("%d", gen))
	if traceparent != "" {
		h.Set("traceparent", traceparent)
	}
	return h
}

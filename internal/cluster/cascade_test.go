package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"testing"
	"time"

	"repro/internal/cascade"
	"repro/internal/persist"
	"repro/internal/rng"
	"repro/internal/serve"
)

// Fleet cascade fixture: the shared test bundle plus a tier-1 model over
// FE0's inventory, the same construction as internal/serve's cascade
// suite — sequences strongly biased to one phone per language exit,
// near-uniform ones escalate.

func cascadeBundle(seed uint64) *persist.Bundle {
	b := testBundle(seed)
	r := rng.New(seed ^ 0xca5c)
	train := make([][][]int, tbLangs)
	var dev []cascade.DevExample
	for k := 0; k < tbLangs; k++ {
		for i := 0; i < 15; i++ {
			train[k] = append(train[k], cascSeq(r, k, 50, 0.8))
		}
		for i := 0; i < 10; i++ {
			dev = append(dev, cascade.DevExample{Seq: cascSeq(r, k, 60, 0.8), Label: k, Tier: 0})
			dev = append(dev, cascade.DevExample{Seq: cascSeq(r, k, 10, 0.8), Label: k, Tier: 1})
		}
	}
	m, err := cascade.Train("FE0", tbPhones, train, []string{"30s", "3s"}, dev, cascade.TrainConfig{})
	if err != nil {
		panic(err)
	}
	b.Cascade = m
	return b
}

func cascSeq(r *rng.RNG, k, length int, bias float64) []int {
	seq := make([]int, length)
	for i := range seq {
		if r.Float64() < bias {
			seq[i] = k % tbPhones
		} else {
			seq[i] = r.Intn(tbPhones)
		}
	}
	return seq
}

func writeCascadeBundle(t testing.TB, dir string, seed uint64) *persist.Bundle {
	t.Helper()
	b := cascadeBundle(seed)
	if err := persist.SaveBundle(dir, b, persist.Manifest{Seed: seed, Scale: "test"}); err != nil {
		t.Fatal(err)
	}
	return b
}

// latticeRequestFor covers the full battery with the same
// single-alternative sausage, so the fused row is present and the
// cascade has its designated 1-best input.
func latticeRequestFor(b *persist.Bundle, id string, seq []int) serve.ScoreRequest {
	slots := make([][]serve.Slot, len(seq))
	for i, ph := range seq {
		slots[i] = []serve.Slot{{Phone: ph, Prob: 1}}
	}
	req := serve.ScoreRequest{ID: id, FrontEnds: make(map[string]serve.FrontEndInput)}
	for i := range b.FrontEnds {
		req.FrontEnds[b.FrontEnds[i].Name] = serve.FrontEndInput{Lattice: slots}
	}
	return req
}

func sameScoreResult(t *testing.T, ctx string, got, want *serve.ScoreResult) {
	t.Helper()
	if got.Best != want.Best {
		t.Fatalf("%s: best %q vs %q", ctx, got.Best, want.Best)
	}
	sameRows(t, got.Scores, want.Scores)
	if len(got.Fused) != len(want.Fused) {
		t.Fatalf("%s: fused %d vs %d", ctx, len(got.Fused), len(want.Fused))
	}
	for k := range want.Fused {
		if got.Fused[k] != want.Fused[k] {
			t.Fatalf("%s: fused[%d] = %v, want %v (not bit-identical)", ctx, k, got.Fused[k], want.Fused[k])
		}
	}
}

// TestFleetCascadeEscalateAllBitIdentity is the fleet leg of the cascade
// transparency referee: a coordinator running the cascade at threshold
// −Inf must answer byte-identically (Best/Scores/Fused) to the
// standalone daemon over the same bundle directory — every utterance
// escalates into the ordinary scatter–gather, and the only permitted
// difference is the escalation annotation.
func TestFleetCascadeEscalateAllBitIdentity(t *testing.T) {
	f := newFleetBundle(t, 2, writeCascadeBundle, func(cfg *CoordinatorConfig) {
		cfg.Cascade = serve.CascadeConfig{Enabled: true, Margin: "-inf"}
	})
	mustDistribute(t, f)
	s, err := serve.New(serve.Config{ModelDir: f.dir, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	r := rng.New(99)
	var seqs [][]int
	for k := 0; k < 4; k++ {
		seqs = append(seqs, cascSeq(r, k%tbLangs, 40+r.Intn(30), 0.8))
	}

	// Single requests.
	for i, seq := range seqs {
		req := latticeRequestFor(f.bundle, fmt.Sprintf("u%d", i), seq)
		rec, fr := f.score(t, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("fleet status %d: %s", rec.Code, rec.Body.String())
		}
		recS, bodyS := postJSON(t, s.Handler(), "/v1/score", req)
		if recS.Code != http.StatusOK {
			t.Fatalf("standalone status %d: %s", recS.Code, bodyS)
		}
		var sr serve.ScoreResponse
		if err := json.Unmarshal(bodyS, &sr); err != nil {
			t.Fatal(err)
		}
		sameScoreResult(t, fmt.Sprintf("single %d", i), &fr.ScoreResult, &sr.ScoreResult)
		if fr.Cascade == nil || fr.Cascade.Exited || fr.Cascade.Reason != cascade.ReasonLowMargin {
			t.Fatalf("escalate-all outcome: %+v", fr.Cascade)
		}
	}

	// The same utterances as one batch.
	var br serve.BatchRequest
	for i, seq := range seqs {
		br.Utterances = append(br.Utterances, latticeRequestFor(f.bundle, fmt.Sprintf("u%d", i), seq))
	}
	recF, bodyF := postJSON(t, f.coord.Handler(), "/v1/score/batch", br)
	recS, bodyS := postJSON(t, s.Handler(), "/v1/score/batch", br)
	if recF.Code != http.StatusOK || recS.Code != http.StatusOK {
		t.Fatalf("batch status %d/%d", recF.Code, recS.Code)
	}
	var brF, brS serve.BatchResponse
	if err := json.Unmarshal(bodyF, &brF); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyS, &brS); err != nil {
		t.Fatal(err)
	}
	if len(brF.Results) != len(brS.Results) {
		t.Fatalf("batch sizes %d vs %d", len(brF.Results), len(brS.Results))
	}
	for i := range brS.Results {
		sameScoreResult(t, fmt.Sprintf("batch utt %d", i), &brF.Results[i], &brS.Results[i])
		if brF.Results[i].Cascade == nil || brF.Results[i].Cascade.Exited {
			t.Fatalf("batch utt %d outcome: %+v", i, brF.Results[i].Cascade)
		}
	}
}

// TestFleetCascadeExitSkipsShards: at +Inf every lattice request exits
// at tier 1 on the coordinator — proven the hard way, with every worker
// down: the exit still answers 200 with the tier-1 decision row (zero
// shard RPCs), while a supervector request (no tier-1 input) must fan
// out and collapses to the all-shards-failed 503. The shard split also
// strips the cascade model, like fusion: tier 1 is coordinator-only.
func TestFleetCascadeExitSkipsShards(t *testing.T) {
	f := newFleetBundle(t, 2, writeCascadeBundle, func(cfg *CoordinatorConfig) {
		cfg.Cascade = serve.CascadeConfig{Enabled: true, Margin: "+inf"}
	})
	mustDistribute(t, f)
	for i, w := range f.workers {
		m := w.Server().Registry().Current()
		if m.Bundle.Cascade != nil || m.Manifest.Cascade != "" {
			t.Fatalf("worker %d shard bundle carries a cascade model", i)
		}
	}
	for _, h := range f.hosts {
		f.net.setDown(h, true)
	}

	seq := cascSeq(rng.New(3), 1, 40, 0.8)
	rec, sr := f.score(t, latticeRequestFor(f.bundle, "x", seq))
	if rec.Code != http.StatusOK {
		t.Fatalf("tier-1 exit needed a shard: status %d: %s", rec.Code, rec.Body.String())
	}
	if sr.Cascade == nil || !sr.Cascade.Exited || sr.Cascade.Reason != cascade.ReasonHighMargin {
		t.Fatalf("outcome: %+v", sr.Cascade)
	}
	if len(sr.Scores) != 0 {
		t.Fatal("front-end score rows on a tier-1 exit")
	}
	want := f.bundle.Cascade.Decide(seq, math.Inf(1))
	if sr.Best != f.bundle.Languages[want.Best] {
		t.Fatalf("best %q, want %q", sr.Best, f.bundle.Languages[want.Best])
	}
	for k := range want.Scores {
		if sr.Fused[k] != want.Scores[k] {
			t.Fatalf("fused[%d] = %v, want tier-1 %v", k, sr.Fused[k], want.Scores[k])
		}
	}

	rec2, _ := f.score(t, scoreRequestFor(f.bundle, testVector(4)))
	if rec2.Code != http.StatusServiceUnavailable {
		t.Fatalf("supervector request with all shards down: status %d, want 503", rec2.Code)
	}
}

// TestFleetCascadeBadMarginRejectedAtStartup: a malformed policy spec
// fails NewCoordinator, not the first request.
func TestFleetCascadeBadMarginRejectedAtStartup(t *testing.T) {
	dir := t.TempDir()
	writeCascadeBundle(t, dir, 1)
	_, err := NewCoordinator(CoordinatorConfig{
		ModelDir: dir,
		Peers:    []string{"w0.test:9101"},
		Cascade:  serve.CascadeConfig{Enabled: true, Margin: "30s=nan"},
	})
	if err == nil {
		t.Fatal("NewCoordinator accepted a NaN cascade margin")
	}
}

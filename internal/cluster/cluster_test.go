package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fusion"
	"repro/internal/ngram"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// Test fixture: the same tiny synthetic bundle as internal/serve's tests
// (2 front-ends over a 5-phone order-2 space, 3 languages, fusion
// backend) so fleet results can be checked bit-identical against the
// in-process scoring they shard out.

const (
	tbPhones = 5
	tbOrder  = 2
	tbLangs  = 3
)

func testBundle(seed uint64) *persist.Bundle {
	space := ngram.NewSpace(tbPhones, tbOrder)
	r := rng.New(seed)
	b := &persist.Bundle{Languages: []string{"alpha", "beta", "gamma"}}
	var all [][]*sparse.Vector
	var labels []int
	for f := 0; f < 2; f++ {
		var xs []*sparse.Vector
		labels = labels[:0]
		for i := 0; i < 60; i++ {
			k := i % tbLangs
			m := map[int32]float64{
				int32(k * 7):                       2 + 0.3*r.Norm(),
				int32((k*7 + f + 1) % space.Dim()): 1 + 0.2*r.Norm(),
				int32(r.Intn(space.Dim())):         0.5 * r.Float64(),
			}
			xs = append(xs, sparse.FromMap(m))
			labels = append(labels, k)
		}
		tf := ngram.EstimateTFLLR(xs, space.Dim(), 1e-5)
		for _, v := range xs {
			tf.Apply(v)
		}
		opt := svm.DefaultOptions()
		opt.Seed = seed + uint64(f)
		b.FrontEnds = append(b.FrontEnds, persist.FrontEndModel{
			Name:      fmt.Sprintf("FE%d", f),
			NumPhones: tbPhones,
			Order:     tbOrder,
			TFLLR:     tf,
			OVR:       svm.TrainOneVsRest(xs, labels, tbLangs, space.Dim(), opt),
		})
		all = append(all, xs)
	}
	var devX [][]float64
	var devY []int
	for i := range all[0] {
		s0 := b.FrontEnds[0].OVR.Scores(all[0][i])
		s1 := b.FrontEnds[1].OVR.Scores(all[1][i])
		for k := 0; k < tbLangs; k++ {
			devX = append(devX, []float64{s0[k], s1[k]})
			if labels[i] == k {
				devY = append(devY, 1)
			} else {
				devY = append(devY, 0)
			}
		}
	}
	bk, err := fusion.Train(devX, devY, 2, fusion.DefaultConfig())
	if err != nil {
		panic(err)
	}
	b.Fusion = bk
	return b
}

func writeTestBundle(t testing.TB, dir string, seed uint64) *persist.Bundle {
	t.Helper()
	b := testBundle(seed)
	if err := persist.SaveBundle(dir, b, persist.Manifest{Seed: seed, Scale: "test"}); err != nil {
		t.Fatal(err)
	}
	return b
}

// testVector is a deterministic raw (pre-TFLLR) supervector inside the
// fixture space.
func testVector(seed uint64) *sparse.Vector {
	r := rng.New(seed ^ 0xbeef)
	space := ngram.NewSpace(tbPhones, tbOrder)
	m := make(map[int32]float64)
	for i := 0; i < 6; i++ {
		m[int32(r.Intn(space.Dim()))] = r.Float64()
	}
	return sparse.FromMap(m)
}

// expectedScores is the per-front-end ground truth: TFLLR-apply then
// OVR-score on a fresh copy, exactly what each shard must produce.
func expectedScores(b *persist.Bundle, raw *sparse.Vector) map[string][]float64 {
	out := make(map[string][]float64)
	for i := range b.FrontEnds {
		fe := &b.FrontEnds[i]
		v := raw.Clone()
		if fe.TFLLR != nil {
			fe.TFLLR.Apply(v)
		}
		out[fe.Name] = fe.OVR.Scores(v)
	}
	return out
}

func scoreRequestFor(b *persist.Bundle, raw *sparse.Vector) serve.ScoreRequest {
	req := serve.ScoreRequest{ID: "u1", FrontEnds: make(map[string]serve.FrontEndInput)}
	for i := range b.FrontEnds {
		req.FrontEnds[b.FrontEnds[i].Name] = serve.FrontEndInput{
			Supervector: &serve.Supervector{Idx: raw.Idx, Val: raw.Val},
		}
	}
	return req
}

// testNet routes coordinator RPCs to in-process worker handlers by host
// name — no sockets, so tests can kill, restart, and replace workers
// deterministically.
type testNet struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	down     map[string]bool
}

func newTestNet() *testNet {
	return &testNet{handlers: make(map[string]http.Handler), down: make(map[string]bool)}
}

func (n *testNet) register(host string, h http.Handler) {
	n.mu.Lock()
	n.handlers[host] = h
	n.mu.Unlock()
}

// setDown simulates a crashed (or restarted) worker process: every RPC
// to the host fails like a refused connection.
func (n *testNet) setDown(host string, down bool) {
	n.mu.Lock()
	n.down[host] = down
	n.mu.Unlock()
}

func (n *testNet) RoundTrip(req *http.Request) (*http.Response, error) {
	n.mu.Lock()
	h, ok := n.handlers[req.URL.Host]
	down := n.down[req.URL.Host]
	n.mu.Unlock()
	if !ok || down {
		return nil, fmt.Errorf("dial tcp %s: connection refused", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// fakeClock drives breaker cooldowns and push backoffs by hand. After
// never fires (the repair loop stays dormant; tests call repair
// directly), and Sleep advances time instead of blocking — the de-flake
// contract: no cluster test waits on a wall clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) Sleep(d time.Duration) { c.Advance(d) }

func (c *fakeClock) After(d time.Duration) <-chan time.Time { return make(chan time.Time) }

// fleet is a coordinator plus in-process workers wired through a testNet.
type fleet struct {
	coord   *Coordinator
	workers []*Worker
	spools  []string
	hosts   []string
	dir     string
	net     *testNet
	clock   *fakeClock
	bundle  *persist.Bundle
}

var fleetSeq atomic.Int64

// newFleet builds an n-worker fleet over the seed-1 test bundle. Hosts
// are unique per call so per-peer obs metrics never bleed across tests.
// Distribution is NOT run — tests choose when (and whether) it happens.
func newFleet(t *testing.T, n int, mutate func(*CoordinatorConfig)) *fleet {
	t.Helper()
	return newFleetBundle(t, n, writeTestBundle, mutate)
}

// newFleetBundle is newFleet over any bundle writer (the cascade tests
// need the tier-1 model in the coordinator's full bundle).
func newFleetBundle(t *testing.T, n int, write func(t testing.TB, dir string, seed uint64) *persist.Bundle, mutate func(*CoordinatorConfig)) *fleet {
	t.Helper()
	obs.Reset()
	dir := t.TempDir()
	b := write(t, dir, 1)
	f := &fleet{dir: dir, net: newTestNet(), clock: newFakeClock(), bundle: b}
	id := fleetSeq.Add(1)
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("shard%d-%d.test:91%02d", id, i, i)
		spool := t.TempDir()
		w, err := NewWorker(WorkerConfig{Spool: spool, Serve: serve.Config{BatchWait: time.Millisecond}})
		if err != nil {
			t.Fatal(err)
		}
		f.net.register(host, w.Handler())
		f.workers = append(f.workers, w)
		f.spools = append(f.spools, spool)
		f.hosts = append(f.hosts, host)
	}
	cfg := CoordinatorConfig{
		ModelDir:    dir,
		Peers:       f.hosts,
		Transport:   f.net,
		clock:       f.clock,
		PushRetries: -1, // no retries by default: tests assert single-attempt outcomes
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = c
	return f
}

// restartWorker replaces host's worker with a fresh one over an empty
// spool — a process restart that lost its disk.
func (f *fleet) restartWorker(t *testing.T, i int) *Worker {
	t.Helper()
	w, err := NewWorker(WorkerConfig{Spool: t.TempDir(), Serve: serve.Config{BatchWait: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	f.workers[i] = w
	f.net.register(f.hosts[i], w.Handler())
	f.net.setDown(f.hosts[i], false)
	return w
}

func postJSON(t *testing.T, h http.Handler, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	out, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec, out
}

func getJSON(t *testing.T, h http.Handler, path string, v any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, rec.Code, rec.Body.String())
	}
	if err := json.NewDecoder(rec.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// scoreFleet posts a /v1/score request at the coordinator and decodes
// the response, failing the test on non-2xx unless allowErr.
func (f *fleet) score(t *testing.T, req serve.ScoreRequest) (*httptest.ResponseRecorder, serve.ScoreResponse) {
	t.Helper()
	rec, body := postJSON(t, f.coord.Handler(), "/v1/score", req)
	var sr serve.ScoreResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("bad score response: %v: %s", err, body)
		}
	}
	return rec, sr
}

func (f *fleet) peerStatus(t *testing.T, host string) PeerStatus {
	t.Helper()
	var cz Clusterz
	getJSON(t, f.coord.Handler(), "/clusterz", &cz)
	for _, p := range cz.Peers {
		if p.Addr == host {
			return p
		}
	}
	t.Fatalf("peer %s not in clusterz %+v", host, cz)
	return PeerStatus{}
}

func mustDistribute(t *testing.T, f *fleet) {
	t.Helper()
	if err := f.coord.Distribute(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func sameRows(t *testing.T, got, want map[string][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("scored %d front-ends, want %d", len(got), len(want))
	}
	for fe, wrow := range want {
		grow := got[fe]
		if len(grow) != len(wrow) {
			t.Fatalf("%s: %d scores, want %d", fe, len(grow), len(wrow))
		}
		for k := range wrow {
			if grow[k] != wrow[k] {
				t.Fatalf("%s score[%d] = %v, want %v (not bit-identical)", fe, k, grow[k], wrow[k])
			}
		}
	}
}

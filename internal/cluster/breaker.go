package cluster

import (
	"sync"
	"time"
)

// BreakerPolicy governs the per-peer circuit breaker — the same
// state machine as the model-reload breaker (serve/reloader.go),
// generalized from "reload attempts" to "RPCs against one peer". Zero
// values select the defaults noted per field.
type BreakerPolicy struct {
	// TripAfter is how many consecutive failed RPCs open the breaker (3).
	TripAfter int
	// Cooldown is how long an open breaker fails the peer fast before
	// letting one probe RPC through (10 s).
	Cooldown time.Duration
}

func (p *BreakerPolicy) setDefaults() {
	if p.TripAfter <= 0 {
		p.TripAfter = 3
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 10 * time.Second
	}
}

// Breaker states as reported by State and /clusterz.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breaker is one peer's circuit breaker. Closed: RPCs pass through.
// Open (TripAfter consecutive failures): allow returns false until the
// cooldown passes, so the scatter path degrades the shard immediately
// instead of stalling a request on a dead worker. Half-open (cooldown
// elapsed): the next RPC runs as a probe — success closes the breaker,
// failure re-arms the cooldown.
type breaker struct {
	pol BreakerPolicy

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

func newBreaker(pol BreakerPolicy) *breaker {
	pol.setDefaults()
	return &breaker{pol: pol}
}

// allow reports whether an RPC may run now (closed, or half-open probe).
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails < b.pol.TripAfter || !now.Before(b.openUntil)
}

// success records a completed RPC and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.mu.Unlock()
}

// failure records a failed RPC; when the consecutive-failure count
// reaches TripAfter the breaker (re-)arms its cooldown. Returns true
// when this failure tripped the breaker closed→open (for metrics).
func (b *breaker) failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails >= b.pol.TripAfter {
		tripped := b.fails == b.pol.TripAfter
		b.openUntil = now.Add(b.pol.Cooldown)
		return tripped
	}
	return false
}

// state reports the breaker state at time now.
func (b *breaker) state(now time.Time) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.fails < b.pol.TripAfter:
		return BreakerClosed
	case now.Before(b.openUntil):
		return BreakerOpen
	default:
		return BreakerHalfOpen
	}
}

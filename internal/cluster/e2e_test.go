package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// standaloneResponse scores the same request on a plain internal/serve
// server over the same bundle directory — the bit-identity oracle.
func standaloneResponse(t *testing.T, modelDir string, req serve.ScoreRequest) serve.ScoreResponse {
	t.Helper()
	s, err := serve.New(serve.Config{ModelDir: modelDir, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec, body := postJSON(t, s.Handler(), "/v1/score", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("standalone status %d: %s", rec.Code, body)
	}
	var sr serve.ScoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestFleetBitIdenticalToStandalone(t *testing.T) {
	f := newFleet(t, 2, nil)
	mustDistribute(t, f)

	req := scoreRequestFor(f.bundle, testVector(7))
	want := expectedScores(f.bundle, testVector(7))

	rec, sr := f.score(t, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if sr.Degraded {
		t.Fatalf("healthy fleet degraded: %+v", sr.ScoreResult)
	}
	sameRows(t, sr.Scores, want)

	// The full scoring payload — scores, fused row, decision — must be
	// byte-for-byte what the standalone daemon serves from the same
	// bundle (JSON float64 marshaling is shortest-round-trip exact, so a
	// marshal-level comparison is a bit-level comparison).
	std := standaloneResponse(t, f.coord.cfg.ModelDir, req)
	if !reflect.DeepEqual(sr.ScoreResult, std.ScoreResult) {
		t.Fatalf("fleet result differs from standalone:\nfleet      %+v\nstandalone %+v", sr.ScoreResult, std.ScoreResult)
	}
	if sr.ModelVersion != std.ModelVersion {
		t.Fatalf("model version %d vs standalone %d", sr.ModelVersion, std.ModelVersion)
	}
	if len(sr.Fused) == 0 {
		t.Fatal("full-battery request must carry the fused row")
	}
	if sr.ClusterGeneration != 1 {
		t.Fatalf("cluster generation %d, want 1", sr.ClusterGeneration)
	}
	if std.ClusterGeneration != 0 {
		t.Fatalf("standalone response leaked a cluster generation: %d", std.ClusterGeneration)
	}
}

func TestFleetRejectsBeforeDistribution(t *testing.T) {
	f := newFleet(t, 2, nil)
	req := scoreRequestFor(f.bundle, testVector(3))
	rec, _ := f.score(t, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("score before distribution: status %d, want 503", rec.Code)
	}
	r := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	w := httptest.NewRecorder()
	f.coord.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before distribution: status %d, want 503", w.Code)
	}

	mustDistribute(t, f)
	rec, sr := f.score(t, req)
	if rec.Code != http.StatusOK || sr.Degraded {
		t.Fatalf("after distribution: status %d degraded=%v", rec.Code, sr.Degraded)
	}
	w = httptest.NewRecorder()
	f.coord.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("readyz after distribution: status %d", w.Code)
	}
}

func TestFleetUnknownFrontEndIs400(t *testing.T) {
	f := newFleet(t, 2, nil)
	mustDistribute(t, f)
	req := scoreRequestFor(f.bundle, testVector(4))
	req.FrontEnds["nope"] = req.FrontEnds["FE0"]
	rec, _ := f.score(t, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown front-end: status %d, want 400", rec.Code)
	}
}

func TestKillWorkerDegradesWithSurvivorFusion(t *testing.T) {
	f := newFleet(t, 2, nil)
	mustDistribute(t, f)
	raw := testVector(9)
	req := scoreRequestFor(f.bundle, raw)

	// Kill the worker owning FE1 (round-robin: FE0→shard0, FE1→shard1).
	f.net.setDown(f.hosts[1], true)
	rec, sr := f.score(t, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded request must stay 2xx, got %d: %s", rec.Code, rec.Body.String())
	}
	if !sr.Degraded {
		t.Fatal("response must be marked degraded")
	}
	if !reflect.DeepEqual(sr.Surviving, []string{"FE0"}) {
		t.Fatalf("surviving = %v, want [FE0]", sr.Surviving)
	}
	if msg := sr.FrontEndErrors["FE1"]; !strings.Contains(msg, "shard "+f.hosts[1]) {
		t.Fatalf("FE1 error %q must name the dead shard", msg)
	}

	// The fused row must be exactly fusion.ScoreMasked over the
	// survivors — the documented degraded-fusion contract, now across a
	// process boundary.
	want := expectedScores(f.bundle, raw)
	sameRows(t, sr.Scores, map[string][]float64{"FE0": want["FE0"]})
	present := []bool{true, false}
	for k := range f.bundle.Languages {
		x := []float64{want["FE0"][k], 0}
		if got, exp := sr.Fused[k], f.bundle.Fusion.ScoreMasked(x, present)[1]; got != exp {
			t.Fatalf("fused[%d] = %v, want ScoreMasked %v", k, got, exp)
		}
	}

	// Both workers dead: nothing survives — that is a 503, not a
	// fabricated answer.
	f.net.setDown(f.hosts[0], true)
	rec, _ = f.score(t, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all shards dead: status %d, want 503", rec.Code)
	}

	// Worker revives: scoring returns to exact (breaker never tripped —
	// only one failure per peer so far... the second peer has two).
	f.net.setDown(f.hosts[0], false)
	f.net.setDown(f.hosts[1], false)
	rec, sr = f.score(t, req)
	if rec.Code != http.StatusOK || sr.Degraded {
		t.Fatalf("revived fleet: status %d degraded=%v (%s)", rec.Code, sr.Degraded, rec.Body.String())
	}
	sameRows(t, sr.Scores, want)
}

func TestBatchDegradationStaysPerUtterance(t *testing.T) {
	f := newFleet(t, 2, nil)
	mustDistribute(t, f)
	raw := testVector(11)
	full := scoreRequestFor(f.bundle, raw) // FE0 + FE1
	only0 := serve.ScoreRequest{ID: "only-fe0", FrontEnds: map[string]serve.FrontEndInput{
		"FE0": full.FrontEnds["FE0"],
	}}
	full.ID = "full"
	batch := serve.BatchRequest{Utterances: []serve.ScoreRequest{full, only0}}

	f.net.setDown(f.hosts[1], true) // FE1's shard dies
	rec, body := postJSON(t, f.coord.Handler(), "/v1/score/batch", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("%d results, want 2", len(br.Results))
	}
	// The full-battery utterance lost FE1 and degrades; its batch-mate
	// never touched the dead shard and must come back clean — one
	// utterance's loss does not smear its batch-mates.
	if !br.Results[0].Degraded {
		t.Fatalf("utterance %q must degrade: %+v", br.Results[0].ID, br.Results[0])
	}
	if !reflect.DeepEqual(br.Results[0].Surviving, []string{"FE0"}) {
		t.Fatalf("utterance %q surviving = %v, want [FE0]", br.Results[0].ID, br.Results[0].Surviving)
	}
	if br.Results[1].Degraded || br.Results[1].Error != "" {
		t.Fatalf("utterance %q must not degrade: %+v", br.Results[1].ID, br.Results[1])
	}
	want := expectedScores(f.bundle, raw)
	sameRows(t, br.Results[1].Scores, map[string][]float64{"FE0": want["FE0"]})
	if !br.Degraded || br.DegradedCount != 1 {
		t.Fatalf("batch summary degraded=%v count=%d, want true/1", br.Degraded, br.DegradedCount)
	}
}

func TestGenerationConsistencyAcrossFailedRedistribution(t *testing.T) {
	f := newFleet(t, 2, nil)
	mustDistribute(t, f)
	raw := testVector(13)
	req := scoreRequestFor(f.bundle, raw)

	// A new bundle lands on disk, but worker 1 is down when the reload
	// tries to distribute it: worker 0 installs generation 2, the fleet
	// plan must stay pinned at generation 1.
	writeTestBundle(t, f.coord.cfg.ModelDir, 2)
	f.net.setDown(f.hosts[1], true)
	if _, err := f.coord.Reload(context.Background()); err == nil {
		t.Fatal("reload with a dead worker must fail distribution")
	}
	if gen := f.coord.Plan(); gen != 1 {
		t.Fatalf("plan advanced to %d despite failed distribution", gen)
	}
	f.net.setDown(f.hosts[1], false)

	// Scoring now: worker 0 serves generation 2 and must 409 the
	// generation-1-routed shard RPC; worker 1 still serves generation 1.
	// The response is degraded — never a fusion of mixed generations.
	rec, sr := f.score(t, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !sr.Degraded {
		t.Fatal("mixed-generation fleet must degrade, not mix")
	}
	if !reflect.DeepEqual(sr.Surviving, []string{"FE1"}) {
		t.Fatalf("surviving = %v, want [FE1] (the generation-1 shard)", sr.Surviving)
	}
	if sr.ModelVersion != 1 || sr.ClusterGeneration != 1 {
		t.Fatalf("response v%d gen%d, want the pinned v1 gen1", sr.ModelVersion, sr.ClusterGeneration)
	}
	want1 := expectedScores(f.bundle, raw)
	sameRows(t, sr.Scores, map[string][]float64{"FE1": want1["FE1"]})

	// The repair loop walks worker 0 back onto the active plan (its
	// pinned generation-1 model — not the undistributed on-disk bundle).
	f.coord.repair(context.Background())
	rec, sr = f.score(t, req)
	if rec.Code != http.StatusOK || sr.Degraded {
		t.Fatalf("after repair: status %d degraded=%v (%s)", rec.Code, sr.Degraded, rec.Body.String())
	}
	sameRows(t, sr.Scores, want1)

	// With both workers reachable the redistribution completes and the
	// fleet advances atomically. Generations are monotone registry
	// versions, not content hashes: the failed reload above already
	// consumed version 2, so the fleet lands on 3.
	if _, err := f.coord.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	gen := f.coord.Plan()
	if gen != 3 {
		t.Fatalf("plan at %d after successful reload, want 3", gen)
	}
	b2 := testBundle(2)
	rec, sr = f.score(t, req)
	if rec.Code != http.StatusOK || sr.Degraded {
		t.Fatalf("new generation: status %d degraded=%v", rec.Code, sr.Degraded)
	}
	if sr.ModelVersion != gen || sr.ClusterGeneration != gen {
		t.Fatalf("response v%d gen%d, want v%d gen%d", sr.ModelVersion, sr.ClusterGeneration, gen, gen)
	}
	sameRows(t, sr.Scores, expectedScores(b2, raw))
}

func TestWorkerRestartRepushedByRepair(t *testing.T) {
	f := newFleet(t, 2, nil)
	mustDistribute(t, f)
	raw := testVector(17)
	req := scoreRequestFor(f.bundle, raw)

	// Worker 0 is replaced by a fresh process with an empty spool (lost
	// its disk). Until repair runs, its shard degrades…
	f.restartWorker(t, 0)
	rec, sr := f.score(t, req)
	if rec.Code != http.StatusOK || !sr.Degraded {
		t.Fatalf("restarted-empty shard: status %d degraded=%v", rec.Code, sr.Degraded)
	}

	// …then the repair tick notices the generation-0 worker and re-pushes
	// the active shard bundle.
	f.coord.repair(context.Background())
	if st := f.peerStatus(t, f.hosts[0]); st.Generation != 1 {
		t.Fatalf("peer generation %d after repair, want 1", st.Generation)
	}
	rec, sr = f.score(t, req)
	if rec.Code != http.StatusOK || sr.Degraded {
		t.Fatalf("after re-push: status %d degraded=%v (%s)", rec.Code, sr.Degraded, rec.Body.String())
	}
	sameRows(t, sr.Scores, expectedScores(f.bundle, raw))
}

func TestTraceparentPropagatesToShards(t *testing.T) {
	f := newFleet(t, 2, nil)
	mustDistribute(t, f)
	req := scoreRequestFor(f.bundle, testVector(19))
	data, _ := json.Marshal(req)

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	r := httptest.NewRequest(http.MethodPost, "/v1/score", strings.NewReader(string(data)))
	r.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	w := httptest.NewRecorder()
	f.coord.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var sr serve.ScoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.TraceID != traceID {
		t.Fatalf("trace id %q, want the caller's %q", sr.TraceID, traceID)
	}

	// The coordinator's /tracez shows the root with rpc.shard children…
	rec := httptest.NewRecorder()
	f.coord.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/tracez", nil))
	if body := rec.Body.String(); !strings.Contains(body, traceID) || !strings.Contains(body, "rpc.shard") {
		t.Fatalf("coordinator /tracez missing the trace or its rpc.shard spans: %s", body)
	}
	// …and each worker filed its own span tree under the same trace id —
	// the cross-process subtree /tracez stitches by trace id.
	for i, wk := range f.workers {
		rec := httptest.NewRecorder()
		wk.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/tracez", nil))
		if !strings.Contains(rec.Body.String(), traceID) {
			t.Fatalf("worker %d /tracez missing trace %s: %s", i, traceID, rec.Body.String())
		}
	}
}

func TestDistributionStampsShardManifests(t *testing.T) {
	f := newFleet(t, 2, nil)
	mustDistribute(t, f)
	for i, w := range f.workers {
		m := w.Server().Registry().Current()
		if m == nil {
			t.Fatalf("worker %d has no model after distribution", i)
		}
		if m.ClusterGeneration() != 1 {
			t.Fatalf("worker %d generation %d, want 1", i, m.ClusterGeneration())
		}
		if m.Manifest.ShardOf == "" {
			t.Fatalf("worker %d shard manifest missing the parent bundle hash", i)
		}
		if m.Bundle.Fusion != nil {
			t.Fatalf("worker %d shard bundle carries a fusion backend — fusion is coordinator-only", i)
		}
		if len(m.Bundle.FrontEnds) != 1 {
			t.Fatalf("worker %d loaded %d front-ends, want its 1 assigned shard", i, len(m.Bundle.FrontEnds))
		}
	}
	// Worker without the routing header still serves (ops curl paths).
	req := scoreRequestFor(f.bundle, testVector(23))
	sub := serve.ScoreRequest{ID: "direct", FrontEnds: map[string]serve.FrontEndInput{
		"FE0": req.FrontEnds["FE0"],
	}}
	rec, body := postJSON(t, f.workers[0].Handler(), "/v1/score", sub)
	if rec.Code != http.StatusOK {
		t.Fatalf("headerless worker request: status %d: %s", rec.Code, body)
	}
}

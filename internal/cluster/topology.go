package cluster

// Assign partitions front-ends across workers round-robin in bundle
// order: front-end i goes to worker i mod n. The assignment is a pure
// function of (bundle front-end order, worker count), so the
// coordinator, the repair loop, and every test derive the identical
// routing table without negotiation — and a redistribution after a
// worker restart lands each front-end back on the same worker.
//
// Round-robin (rather than contiguous blocks) keeps per-worker load
// even when front-ends differ in cost by inventory size: the paper's
// battery orders front-ends by recognizer, and adjacent recognizers
// have correlated phone-set sizes.
func Assign(frontEnds []string, workers int) [][]string {
	if workers < 1 {
		workers = 1
	}
	out := make([][]string, workers)
	for i, fe := range frontEnds {
		w := i % workers
		out[w] = append(out[w], fe)
	}
	return out
}

package cluster

import (
	"repro/internal/obs"
	"repro/internal/serve"
)

// Coordinator-side cascade accounting, namespaced cluster.cascade.* for
// the same reason the RED metrics are cluster.http.*: a co-resident
// bench or test keeps the coordinator's tier apart from the workers'
// serve.cascade.* in one obs registry. Exit/escalate partition every
// scoring utterance of a cascade-enabled coordinator; tier1.failed
// counts transparent fault-escalations (a subset of escalate).
var (
	cascExit    = obs.GetCounter("cluster.cascade.exit")
	wcascExit   = obs.GetWindowCounter("cluster.cascade.exit")
	cascEsc     = obs.GetCounter("cluster.cascade.escalate")
	wcascEsc    = obs.GetWindowCounter("cluster.cascade.escalate")
	cascFailed  = obs.GetCounter("cluster.cascade.tier1.failed")
	wcascFailed = obs.GetWindowCounter("cluster.cascade.tier1.failed")
)

// tryCascade runs the tier-1 decision for one utterance before any shard
// RPC is planned. A tier-1 exit answers from the coordinator alone —
// zero fan-out, so the fast path also sheds the whole scatter–gather
// cost; everything else (low margin, no tier-1 input, no cascade model
// in the bundle, tier-1 fault) escalates into the ordinary shard fan-out
// unchanged. The decision machinery is serve.CascadeTier1, the exact
// code the standalone daemon runs, so fleet and standalone cascades are
// bit-identical by construction.
func (c *Coordinator) tryCascade(pl *fleetPlan, req *serve.ScoreRequest, parent *obs.Span) (*serve.CascadeOutcome, *serve.ScoreResult) {
	out, fast := serve.CascadeTier1(pl.model, c.cascadePolicy, req, parent)
	if out.Reason == serve.ReasonTier1Fault {
		cascFailed.Inc()
		if !c.cfg.DisableTracing {
			wcascFailed.Inc()
		}
	}
	if fast != nil {
		cascExit.Inc()
		if !c.cfg.DisableTracing {
			wcascExit.Inc()
		}
	} else {
		cascEsc.Inc()
		if !c.cfg.DisableTracing {
			wcascEsc.Inc()
		}
	}
	return out, fast
}

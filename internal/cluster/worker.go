package cluster

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/serve"
)

// WorkerConfig sizes a shard worker. Serve carries the ordinary serving
// knobs (batching, queue, deadlines, tracing); its ModelDir is ignored —
// the worker serves whatever the coordinator last pushed into Spool.
type WorkerConfig struct {
	// Spool is the worker-local bundle directory the coordinator
	// distributes into (created if missing; may start empty).
	Spool string
	// Serve configures the embedded scoring server.
	Serve serve.Config
}

// Worker is a shared-nothing shard: the ordinary internal/serve scoring
// server (micro-batching, degradation, reload breaker, tracing — all of
// it) loading only the front-ends the coordinator assigned it, plus the
// cluster endpoints:
//
//	POST /-/bundle   install a pushed shard bundle and hot-swap it
//	GET  /clusterz   shard introspection (role, generation, front-ends)
//
// Scoring requests carrying an X-Cluster-Generation header are admitted
// only when the header matches the generation of the currently loaded
// bundle; mismatches get 409 so the coordinator degrades that shard
// rather than fusing scores across model generations. Requests without
// the header (ops curl, standalone clients) pass through unchanged.
type Worker struct {
	srv   *serve.Server
	spool string
	mux   *http.ServeMux

	installMu sync.Mutex // serializes bundle installs
}

// NewWorker builds a worker over its spool directory. Unlike standalone
// serving, an empty spool is not an error: the worker starts unready
// (503 on scoring, /readyz) and waits for the coordinator's first push.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Spool == "" {
		return nil, fmt.Errorf("cluster: worker has no spool directory")
	}
	if err := os.MkdirAll(cfg.Spool, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: spool: %w", err)
	}
	cfg.Serve.ModelDir = cfg.Spool
	cfg.Serve.WaitForModel = true
	srv, err := serve.New(cfg.Serve)
	if err != nil {
		return nil, err
	}
	w := &Worker{srv: srv, spool: cfg.Spool}
	w.mux = http.NewServeMux()
	w.mux.HandleFunc("/-/bundle", w.handleBundle)
	w.mux.HandleFunc("/clusterz", w.handleClusterz)
	w.mux.Handle("/", w.generationCheck(srv.Handler()))
	obs.SetGauge("cluster.worker", 1)
	return w, nil
}

// Server exposes the embedded scoring server (tests, reload loops).
func (w *Worker) Server() *serve.Server { return w.srv }

// Handler returns the worker's HTTP handler tree.
func (w *Worker) Handler() http.Handler { return w.mux }

// Run serves until ctx is cancelled, then drains like the standalone
// daemon (queued scoring work finishes before connections close).
func (w *Worker) Run(ctx context.Context, l net.Listener) error {
	return w.srv.RunHandler(ctx, l, w.mux)
}

// generationCheck rejects scoring requests routed for a generation
// other than the one currently loaded. The check reads the same model
// pointer admission will resolve, and the serve layer's response echoes
// the admitted model's generation, which the coordinator re-verifies —
// together that closes the race where a push lands between this check
// and admission.
func (w *Worker) generationCheck(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if want := r.Header.Get(GenerationHeader); want != "" && strings.HasPrefix(r.URL.Path, "/v1/") {
			gen, err := strconv.ParseInt(want, 10, 64)
			if err != nil {
				writeError(rw, http.StatusBadRequest, "bad %s %q", GenerationHeader, want)
				return
			}
			m := w.srv.Registry().Current()
			if m == nil {
				writeError(rw, http.StatusServiceUnavailable, "no shard bundle installed")
				return
			}
			if got := m.ClusterGeneration(); got != gen {
				obs.Inc("cluster.worker.generation_conflicts")
				writeError(rw, http.StatusConflict,
					"request routed for generation %d, worker serves %d", gen, got)
				return
			}
		}
		next.ServeHTTP(rw, r)
	})
}

// handleBundle installs a coordinator-pushed shard bundle: decode and
// validate the sealed payload, write it into the spool through the
// ordinary persist bundle writer (manifest-last, atomic), and hot-swap
// it through the serve reload path (retry/backoff + breaker). On any
// failure the previously installed bundle keeps serving.
func (w *Worker) handleBundle(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rw.Header().Set("Allow", http.MethodPost)
		writeError(rw, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var push bundlePush
	r.Body = http.MaxBytesReader(rw, r.Body, 256<<20)
	if err := decodeJSON(r, &push); err != nil {
		writeError(rw, http.StatusBadRequest, "bad bundle push: %v", err)
		return
	}
	sealed, err := base64.StdEncoding.DecodeString(push.BundleB64)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "bad bundle payload: %v", err)
		return
	}
	var b persist.Bundle
	if err := persist.UnmarshalSealed(sealed, &b); err != nil {
		writeError(rw, http.StatusBadRequest, "bundle does not unseal: %v", err)
		return
	}
	if err := b.Validate(); err != nil {
		writeError(rw, http.StatusBadRequest, "invalid shard bundle: %v", err)
		return
	}
	w.installMu.Lock()
	defer w.installMu.Unlock()
	if err := persist.SaveBundle(w.spool, &b, push.Manifest); err != nil {
		writeError(rw, http.StatusInternalServerError, "spool write: %v", err)
		return
	}
	m, err := w.srv.Reload()
	if err != nil {
		writeError(rw, http.StatusInternalServerError, "install reload failed (previous bundle still active): %v", err)
		return
	}
	obs.Inc("cluster.worker.installs")
	obs.SetGauge("cluster.generation", float64(m.ClusterGeneration()))
	writeJSON(rw, http.StatusOK, bundleAck{
		Generation:   m.ClusterGeneration(),
		ModelVersion: m.Version,
		FrontEnds:    m.Manifest.FrontEnds,
	})
}

func (w *Worker) handleClusterz(rw http.ResponseWriter, r *http.Request) {
	cz := Clusterz{Role: "worker"}
	if m := w.srv.Registry().Current(); m != nil {
		cz.Generation = m.ClusterGeneration()
		cz.ModelVersion = m.Version
		cz.FrontEnds = m.Manifest.FrontEnds
	}
	writeJSON(rw, http.StatusOK, cz)
}

func decodeJSON(r *http.Request, v any) error {
	return json.NewDecoder(r.Body).Decode(v)
}

package cluster

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	b := newBreaker(BreakerPolicy{TripAfter: 3, Cooldown: 10 * time.Second})

	if got := b.state(now); got != BreakerClosed {
		t.Fatalf("initial state %s, want closed", got)
	}
	if !b.allow(now) {
		t.Fatal("closed breaker must allow")
	}

	// Two failures: still closed (TripAfter is 3).
	if b.failure(now) {
		t.Fatal("first failure must not trip")
	}
	if b.failure(now) {
		t.Fatal("second failure must not trip")
	}
	if got := b.state(now); got != BreakerClosed {
		t.Fatalf("after 2 failures: %s, want closed", got)
	}

	// Third failure trips it open; trip is reported exactly once.
	if !b.failure(now) {
		t.Fatal("third failure must trip")
	}
	if got := b.state(now); got != BreakerOpen {
		t.Fatalf("after trip: %s, want open", got)
	}
	if b.allow(now) {
		t.Fatal("open breaker must fail fast")
	}
	if b.allow(now.Add(9 * time.Second)) {
		t.Fatal("open breaker must stay open within the cooldown")
	}

	// Cooldown elapsed: half-open, one probe allowed.
	probeAt := now.Add(10 * time.Second)
	if got := b.state(probeAt); got != BreakerHalfOpen {
		t.Fatalf("after cooldown: %s, want half-open", got)
	}
	if !b.allow(probeAt) {
		t.Fatal("half-open breaker must allow the probe")
	}

	// Failed probe re-arms the cooldown (open again, no new trip event).
	if b.failure(probeAt) {
		t.Fatal("re-arming failure must not report a second trip")
	}
	if got := b.state(probeAt.Add(time.Second)); got != BreakerOpen {
		t.Fatalf("after failed probe: %s, want open (re-armed)", got)
	}
	if b.allow(probeAt.Add(9 * time.Second)) {
		t.Fatal("re-armed breaker must hold the fresh cooldown")
	}

	// Successful probe after the second cooldown closes it fully.
	probe2 := probeAt.Add(10 * time.Second)
	if !b.allow(probe2) {
		t.Fatal("second probe window must open")
	}
	b.success()
	if got := b.state(probe2); got != BreakerClosed {
		t.Fatalf("after successful probe: %s, want closed", got)
	}
	if b.failure(probe2) {
		t.Fatal("a single failure after close must not trip")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(BreakerPolicy{})
	if b.pol.TripAfter != 3 || b.pol.Cooldown != 10*time.Second {
		t.Fatalf("defaults = %+v", b.pol)
	}
}

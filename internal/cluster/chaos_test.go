package cluster

import (
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// The cluster chaos suite: worker crash/restart schedules driven either
// through the testNet (process death) or the cluster.rpc.* fault-
// injection sites (seeded, deterministic RPC faults), asserting the
// exact per-peer breaker lifecycle and that the coordinator never
// crashes or serves a 5xx while any shard survives. Run under -race in
// CI like every other test.

func TestBreakerLifecycleUnderWorkerCrash(t *testing.T) {
	f := newFleet(t, 2, func(cfg *CoordinatorConfig) {
		cfg.Breaker = BreakerPolicy{TripAfter: 3, Cooldown: 10 * time.Second}
	})
	mustDistribute(t, f)
	req := scoreRequestFor(f.bundle, testVector(29))
	trips := obs.GetCounter("cluster.breaker.trips")

	// Healthy baseline: breaker closed, peer up.
	rec, sr := f.score(t, req)
	if rec.Code != http.StatusOK || sr.Degraded {
		t.Fatalf("baseline: status %d degraded=%v", rec.Code, sr.Degraded)
	}
	if st := f.peerStatus(t, f.hosts[1]); st.Breaker != BreakerClosed || !st.Up {
		t.Fatalf("baseline peer state %+v", st)
	}

	// Worker 1 crashes. Three consecutive failures trip its breaker;
	// every response along the way stays a degraded 2xx.
	f.net.setDown(f.hosts[1], true)
	for i := 1; i <= 3; i++ {
		rec, sr = f.score(t, req)
		if rec.Code != http.StatusOK || !sr.Degraded {
			t.Fatalf("crash request %d: status %d degraded=%v", i, rec.Code, sr.Degraded)
		}
	}
	st := f.peerStatus(t, f.hosts[1])
	if st.Breaker != BreakerOpen || st.Up || st.Failures != 3 {
		t.Fatalf("after 3 failures: %+v, want open/down/3", st)
	}
	if got := trips.Value(); got != 1 {
		t.Fatalf("cluster.breaker.trips = %d, want 1", got)
	}

	// Open breaker fails the shard fast: still degraded 2xx, and the RPC
	// never leaves the coordinator (failure count frozen).
	rec, sr = f.score(t, req)
	if rec.Code != http.StatusOK || !sr.Degraded {
		t.Fatalf("open-breaker request: status %d degraded=%v", rec.Code, sr.Degraded)
	}
	if st = f.peerStatus(t, f.hosts[1]); st.Failures != 3 {
		t.Fatalf("open breaker let an RPC through: failures %d, want still 3", st.Failures)
	}

	// Cooldown elapses → half-open → the probe fails (worker still dead)
	// → the breaker re-arms for a fresh cooldown without a new trip event.
	f.clock.Advance(10 * time.Second)
	if st = f.peerStatus(t, f.hosts[1]); st.Breaker != BreakerHalfOpen {
		t.Fatalf("after cooldown: %+v, want half-open", st)
	}
	rec, sr = f.score(t, req)
	if rec.Code != http.StatusOK || !sr.Degraded {
		t.Fatalf("failed-probe request: status %d degraded=%v", rec.Code, sr.Degraded)
	}
	st = f.peerStatus(t, f.hosts[1])
	if st.Breaker != BreakerOpen || st.Failures != 4 {
		t.Fatalf("after failed probe: %+v, want re-armed open with 4 failures", st)
	}
	if got := trips.Value(); got != 1 {
		t.Fatalf("re-arm counted as a new trip: %d", got)
	}

	// Second cooldown elapses and the worker restarts: the half-open
	// probe succeeds, the breaker closes, and scoring is exact again.
	f.clock.Advance(10 * time.Second)
	f.net.setDown(f.hosts[1], false)
	rec, sr = f.score(t, req)
	if rec.Code != http.StatusOK || sr.Degraded {
		t.Fatalf("recovered request: status %d degraded=%v (%s)", rec.Code, sr.Degraded, rec.Body.String())
	}
	sameRows(t, sr.Scores, expectedScores(f.bundle, testVector(29)))
	if st = f.peerStatus(t, f.hosts[1]); st.Breaker != BreakerClosed || !st.Up {
		t.Fatalf("after recovery: %+v, want closed/up", st)
	}
}

// TestCoordinatorSurvivesConcurrentCrashes hammers the coordinator from
// many goroutines while a worker dies and revives mid-burst: no
// response may be a 5xx (one shard always survives) and the race
// detector must stay quiet — the "zero coordinator crashes" gate.
func TestCoordinatorSurvivesConcurrentCrashes(t *testing.T) {
	f := newFleet(t, 2, nil)
	mustDistribute(t, f)
	req := scoreRequestFor(f.bundle, testVector(31))

	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rec, _ := f.score(t, req)
				if rec.Code >= 500 {
					errs <- fmt.Errorf("goroutine %d request %d: status %d: %s", g, i, rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	// Kill and revive worker 1 while the burst runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			f.net.setDown(f.hosts[1], i%2 == 0)
		}
		f.net.setDown(f.hosts[1], false)
	}()
	wg.Wait()
	<-done
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestChaosPlanDrivesShardRPCs proves the chaos-plan grammar reaches the
// scatter path: a cluster.rpc.* rule at p=1 kills every shard RPC (503,
// since nothing survives), the per-peer sites show up in the injection
// snapshot, and disabling the plan restores exact scoring.
func TestChaosPlanDrivesShardRPCs(t *testing.T) {
	f := newFleet(t, 2, func(cfg *CoordinatorConfig) {
		cfg.Breaker = BreakerPolicy{TripAfter: 1000} // isolate injection from breaker effects
	})
	mustDistribute(t, f)
	req := scoreRequestFor(f.bundle, testVector(37))

	plan, err := faultinject.ParsePlan("seed=7; cluster.rpc.*:error:p=1")
	if err != nil {
		t.Fatal(err)
	}
	disable := faultinject.Enable(plan)
	rec, _ := f.score(t, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all RPCs injected dead: status %d, want 503", rec.Code)
	}
	snap := faultinject.Snapshot()
	for _, host := range f.hosts {
		st, ok := snap["cluster.rpc."+host]
		if !ok || st.Fires == 0 {
			t.Fatalf("site cluster.rpc.%s not hit/fired: %+v", host, snap)
		}
	}
	disable()

	rec, sr := f.score(t, req)
	if rec.Code != http.StatusOK || sr.Degraded {
		t.Fatalf("after disabling chaos: status %d degraded=%v", rec.Code, sr.Degraded)
	}
	sameRows(t, sr.Scores, expectedScores(f.bundle, testVector(37)))
}

// TestChaosScheduleIsDeterministic replays the same seeded plan twice
// against the same fleet: the per-request (status, degraded, surviving)
// schedule must repeat exactly — the determinism contract that lets the
// CI cluster-smoke job assert exact degradation behavior.
func TestChaosScheduleIsDeterministic(t *testing.T) {
	f := newFleet(t, 2, func(cfg *CoordinatorConfig) {
		cfg.Breaker = BreakerPolicy{TripAfter: 1000} // keep every RPC site-gated, not breaker-gated
	})
	mustDistribute(t, f)
	req := scoreRequestFor(f.bundle, testVector(41))

	type outcome struct {
		Status    int
		Degraded  bool
		Surviving []string
	}
	run := func() []outcome {
		plan, err := faultinject.ParsePlan("seed=11; cluster.rpc.*:error:p=0.5")
		if err != nil {
			t.Fatal(err)
		}
		disable := faultinject.Enable(plan)
		defer disable()
		var out []outcome
		for i := 0; i < 24; i++ {
			rec, sr := f.score(t, req)
			out = append(out, outcome{rec.Code, sr.Degraded, sr.Surviving})
		}
		return out
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("seeded chaos schedule not deterministic:\nfirst  %+v\nsecond %+v", first, second)
	}
	// The schedule must actually exercise both faulted and clean paths.
	var sawDegraded, sawClean bool
	for _, o := range first {
		switch {
		case o.Status == http.StatusOK && o.Degraded:
			sawDegraded = true
		case o.Status == http.StatusOK && !o.Degraded:
			sawClean = true
		}
	}
	if !sawDegraded || !sawClean {
		t.Fatalf("p=0.5 schedule too one-sided: degraded=%v clean=%v (%+v)", sawDegraded, sawClean, first)
	}
}

package nap

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// channelData builds two classes whose within-class variation is
// concentrated along known nuisance directions.
func channelData(r *rng.RNG, n, dim int) (xs []*sparse.Vector, labels []int, nuisance []float64) {
	nuisance = make([]float64, dim)
	nuisance[0], nuisance[1] = 1/math.Sqrt2, 1/math.Sqrt2
	for i := 0; i < n; i++ {
		k := i % 2
		x := make([]float64, dim)
		// Class signal on dims 4/5.
		x[4+k] = 2
		// Strong nuisance (channel) along the known direction.
		ch := 3 * r.Norm()
		for d := range x {
			x[d] += ch * nuisance[d]
		}
		// Small isotropic noise.
		for d := range x {
			x[d] += 0.05 * r.Norm()
		}
		xs = append(xs, sparse.FromDense(x))
		labels = append(labels, k)
	}
	return xs, labels, nuisance
}

func TestTrainFindsNuisanceDirection(t *testing.T) {
	r := rng.New(1)
	xs, labels, nuisance := channelData(r, 200, 12)
	p, err := Train(xs, labels, 12, Config{Rank: 1, PowerIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	if p.Rank() != 1 {
		t.Fatalf("rank = %d", p.Rank())
	}
	// The found direction should align with the planted nuisance axis.
	var dot float64
	for d := range nuisance {
		dot += p.Basis[0][d] * nuisance[d]
	}
	if math.Abs(dot) < 0.98 {
		t.Fatalf("|cos| with planted nuisance = %v", math.Abs(dot))
	}
}

func TestApplyRemovesNuisanceKeepsSignal(t *testing.T) {
	r := rng.New(2)
	xs, labels, _ := channelData(r, 200, 12)
	p, err := Train(xs, labels, 12, Config{Rank: 2, PowerIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	before := WithinClassVariance(xs, labels, 12, nil)
	after := WithinClassVariance(xs, labels, 12, p)
	if after > before/10 {
		t.Fatalf("within-class variance only reduced %v -> %v", before, after)
	}
	// Class separation (difference of projected class means on the signal
	// dims) must survive.
	v0 := p.Apply(xs[0]) // class 0
	v1 := p.Apply(xs[1]) // class 1
	if math.Abs(v0.At(4)-v1.At(4)) < 1 {
		t.Fatalf("signal dim squashed: %v vs %v", v0.At(4), v1.At(4))
	}
}

func TestBasisOrthonormal(t *testing.T) {
	r := rng.New(3)
	xs, labels, _ := channelData(r, 150, 10)
	p, err := Train(xs, labels, 10, Config{Rank: 4, PowerIters: 25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Rank(); i++ {
		for j := i; j < p.Rank(); j++ {
			var dot float64
			for d := range p.Basis[i] {
				dot += p.Basis[i][d] * p.Basis[j][d]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Fatalf("basis[%d]·basis[%d] = %v", i, j, dot)
			}
		}
	}
}

func TestApplyIdempotent(t *testing.T) {
	r := rng.New(4)
	xs, labels, _ := channelData(r, 100, 8)
	p, err := Train(xs, labels, 8, Config{Rank: 2, PowerIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	once := p.Apply(xs[0])
	twice := p.Apply(once)
	for d := int32(0); d < 8; d++ {
		if math.Abs(once.At(d)-twice.At(d)) > 1e-9 {
			t.Fatalf("projection not idempotent at dim %d", d)
		}
	}
}

func TestProjectedVectorsOrthogonalToBasis(t *testing.T) {
	r := rng.New(5)
	xs, labels, _ := channelData(r, 100, 8)
	p, err := Train(xs, labels, 8, Config{Rank: 2, PowerIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[:20] {
		v := p.Apply(x)
		for _, u := range p.Basis {
			if dot := v.DotDense(u); math.Abs(dot) > 1e-8 {
				t.Fatalf("projected vector has residual %v along nuisance", dot)
			}
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, 4, DefaultConfig()); err == nil {
		t.Fatal("accepted empty input")
	}
	xs := []*sparse.Vector{sparse.FromDense([]float64{1})}
	if _, err := Train(xs, []int{0, 1}, 1, DefaultConfig()); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

func TestRankCappedByData(t *testing.T) {
	// With near-zero within-class variance, few directions survive.
	xs := []*sparse.Vector{
		sparse.FromDense([]float64{1, 0, 0}),
		sparse.FromDense([]float64{1, 0, 0}),
		sparse.FromDense([]float64{0, 1, 0}),
		sparse.FromDense([]float64{0, 1, 0}),
	}
	labels := []int{0, 0, 1, 1}
	if _, err := Train(xs, labels, 3, Config{Rank: 3, PowerIters: 10}); err == nil {
		t.Log("degenerate data accepted (some numeric residual direction found) — acceptable")
	}
}

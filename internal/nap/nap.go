// Package nap implements Nuisance Attribute Projection (Campbell et al.),
// the channel-compensation technique customarily paired with SVM-based
// phonotactic systems like the paper's PPRVSM baseline: the dominant
// within-language variability directions of the training supervectors —
// channel and session effects, by construction orthogonal to language
// identity — are estimated and projected out of every supervector before
// SVM training and scoring.
//
// The within-class covariance operator is never materialized (supervector
// spaces run to thousands of dimensions); eigenvectors are found by power
// iteration with deflation, where each operator application is a
// matrix-free pass over the sparse centered data:
//
//	W·v = Σ_i ((x_i − μ_{y_i})·v) · (x_i − μ_{y_i}).
//
// NAP is an extension here (the paper does not mention it), motivated by
// the corpus's deliberate CTS/VOA channel shift; the ablation bench
// measures how much of DBA's adaptation headroom NAP already covers.
package nap

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Projection is a trained rank-k nuisance subspace.
type Projection struct {
	// Basis holds k orthonormal nuisance directions (dense, length Dim).
	Basis [][]float64
	Dim   int
}

// Config controls training.
type Config struct {
	// Rank is the number of nuisance directions to remove (typically
	// 10–64 for supervector systems).
	Rank int
	// PowerIters per eigenvector (power iteration converges quickly on
	// the dominant within-class directions; 20 is plenty).
	PowerIters int
}

// DefaultConfig returns a small-rank setup suitable for the synthetic
// corpus.
func DefaultConfig() Config { return Config{Rank: 16, PowerIters: 20} }

// Train estimates the nuisance subspace from labeled training
// supervectors. Labels group vectors by language; the dominant directions
// of variation *within* the groups are the nuisance basis.
func Train(xs []*sparse.Vector, labels []int, dim int, cfg Config) (*Projection, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("nap: no training vectors")
	}
	if len(xs) != len(labels) {
		return nil, fmt.Errorf("nap: %d vectors for %d labels", len(xs), len(labels))
	}
	if cfg.Rank <= 0 {
		cfg.Rank = 16
	}
	if cfg.PowerIters <= 0 {
		cfg.PowerIters = 20
	}

	// Per-class means (dense).
	numClasses := 0
	for _, l := range labels {
		if l+1 > numClasses {
			numClasses = l + 1
		}
	}
	means := make([][]float64, numClasses)
	counts := make([]int, numClasses)
	for c := range means {
		means[c] = make([]float64, dim)
	}
	for i, x := range xs {
		counts[labels[i]]++
		x.AxpyDense(1, means[labels[i]])
	}
	for c := range means {
		if counts[c] > 0 {
			scale := 1 / float64(counts[c])
			for d := range means[c] {
				means[c][d] *= scale
			}
		}
	}

	// centered(i, out): out = x_i − μ_{y_i}, dense.
	centered := func(i int, out []float64) {
		mu := means[labels[i]]
		copy(out, mu)
		for d := range out {
			out[d] = -out[d]
		}
		xs[i].AxpyDense(1, out)
	}

	// Matrix-free W·v with deflation against previously found basis
	// vectors: v is first orthogonalized, then W is applied.
	applyW := func(v []float64, buf []float64, out []float64) {
		for d := range out {
			out[d] = 0
		}
		for i := range xs {
			centered(i, buf)
			var dot float64
			for d := range v {
				dot += buf[d] * v[d]
			}
			if dot == 0 {
				continue
			}
			for d := range out {
				out[d] += dot * buf[d]
			}
		}
	}

	p := &Projection{Dim: dim}
	buf := make([]float64, dim)
	next := make([]float64, dim)
	// Deterministic pseudo-random init per eigenvector.
	seedVec := func(k int, v []float64) {
		h := uint64(k)*0x9e3779b97f4a7c15 + 0x123456789
		for d := range v {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			v[d] = float64(int64(h%2001)-1000) / 1000
		}
	}
	orthogonalize := func(v []float64) {
		for _, u := range p.Basis {
			var dot float64
			for d := range v {
				dot += u[d] * v[d]
			}
			for d := range v {
				v[d] -= dot * u[d]
			}
		}
	}
	normalize := func(v []float64) float64 {
		var nrm float64
		for _, x := range v {
			nrm += x * x
		}
		nrm = math.Sqrt(nrm)
		if nrm > 0 {
			for d := range v {
				v[d] /= nrm
			}
		}
		return nrm
	}

	v := make([]float64, dim)
	for k := 0; k < cfg.Rank; k++ {
		seedVec(k, v)
		orthogonalize(v)
		if normalize(v) == 0 {
			break
		}
		var lastNorm float64
		for it := 0; it < cfg.PowerIters; it++ {
			applyW(v, buf, next)
			orthogonalizeInto(p.Basis, next)
			lastNorm = normalize(next)
			if lastNorm == 0 {
				break
			}
			copy(v, next)
		}
		if lastNorm < 1e-12 {
			break // remaining within-class variance is negligible
		}
		u := make([]float64, dim)
		copy(u, v)
		p.Basis = append(p.Basis, u)
	}
	if len(p.Basis) == 0 {
		return nil, fmt.Errorf("nap: no nuisance directions found (degenerate data)")
	}
	return p, nil
}

func orthogonalizeInto(basis [][]float64, v []float64) {
	for _, u := range basis {
		var dot float64
		for d := range v {
			dot += u[d] * v[d]
		}
		for d := range v {
			v[d] -= dot * u[d]
		}
	}
}

// Rank returns the number of removed directions.
func (p *Projection) Rank() int { return len(p.Basis) }

// Apply returns (I − UUᵀ)·x. The result is dense in general and is
// returned as a sparse vector with full support; callers batching many
// projections should reuse ApplyDense.
func (p *Projection) Apply(x *sparse.Vector) *sparse.Vector {
	out := make([]float64, p.Dim)
	x.AxpyDense(1, out)
	p.ApplyDense(out)
	return sparse.FromDense(out)
}

// ApplyDense projects a dense vector in place.
func (p *Projection) ApplyDense(x []float64) {
	for _, u := range p.Basis {
		var dot float64
		for d := range x {
			dot += u[d] * x[d]
		}
		if dot == 0 {
			continue
		}
		for d := range x {
			x[d] -= dot * u[d]
		}
	}
}

// WithinClassVariance measures Σ_i ‖x_i − μ_{y_i}‖² of (optionally
// projected) vectors — the quantity NAP minimizes in its subspace. Used by
// tests and the ablation bench.
func WithinClassVariance(xs []*sparse.Vector, labels []int, dim int, proj *Projection) float64 {
	numClasses := 0
	for _, l := range labels {
		if l+1 > numClasses {
			numClasses = l + 1
		}
	}
	dense := make([][]float64, len(xs))
	for i, x := range xs {
		v := make([]float64, dim)
		x.AxpyDense(1, v)
		if proj != nil {
			proj.ApplyDense(v)
		}
		dense[i] = v
	}
	means := make([][]float64, numClasses)
	counts := make([]int, numClasses)
	for c := range means {
		means[c] = make([]float64, dim)
	}
	for i, v := range dense {
		counts[labels[i]]++
		for d := range v {
			means[labels[i]][d] += v[d]
		}
	}
	for c := range means {
		if counts[c] > 0 {
			for d := range means[c] {
				means[c][d] /= float64(counts[c])
			}
		}
	}
	var total float64
	for i, v := range dense {
		mu := means[labels[i]]
		for d := range v {
			diff := v[d] - mu[d]
			total += diff * diff
		}
	}
	return total
}

// Package dsp implements the signal-processing primitives behind the
// acoustic front-ends: a radix-2 FFT, analysis windows, pre-emphasis, the
// mel filterbank, the DCT-II used by cepstral analysis, autocorrelation and
// Levinson–Durbin recursion for the PLP-style linear-prediction path, and
// delta (derivative) feature computation.
//
// The paper's front-ends consume 13-dimensional PLP (+Δ +ΔΔ) and MFCC
// features computed every 10 ms over 25 ms Hamming windows at telephone
// bandwidth; this package provides exactly those building blocks.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x, whose
// length must be a power of two.
func FFT(x []complex128) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// IFFT computes the inverse FFT in place.
func IFFT(x []complex128) {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	FFT(x)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// PowerSpectrum returns the one-sided power spectrum |X[k]|² for
// k = 0..nfft/2 of the real frame, zero-padded to nfft (a power of two).
func PowerSpectrum(frame []float64, nfft int) []float64 {
	if nfft&(nfft-1) != 0 {
		panic("dsp: nfft must be a power of two")
	}
	buf := make([]complex128, nfft)
	for i, v := range frame {
		if i >= nfft {
			break
		}
		buf[i] = complex(v, 0)
	}
	FFT(buf)
	out := make([]float64, nfft/2+1)
	for k := range out {
		re, im := real(buf[k]), imag(buf[k])
		out[k] = re*re + im*im
	}
	return out
}

// HammingWindow returns an n-point Hamming window.
func HammingWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// HannWindow returns an n-point Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// ApplyWindow multiplies frame by window element-wise in place.
func ApplyWindow(frame, window []float64) {
	if len(frame) != len(window) {
		panic("dsp: window length mismatch")
	}
	for i := range frame {
		frame[i] *= window[i]
	}
}

// PreEmphasize applies the first-order high-pass y[t] = x[t] − coef·x[t−1]
// in place (coef typically 0.97).
func PreEmphasize(x []float64, coef float64) {
	for i := len(x) - 1; i > 0; i-- {
		x[i] -= coef * x[i-1]
	}
}

// HzToMel converts frequency in Hz to mel scale (O'Shaughnessy formula).
func HzToMel(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }

// MelToHz converts mel to Hz.
func MelToHz(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

// MelFilterbank holds triangular filters over FFT bins.
type MelFilterbank struct {
	NumFilters int
	// weights[f] is a dense vector over the one-sided spectrum bins.
	weights [][]float64
}

// NewMelFilterbank constructs numFilters triangular mel-spaced filters for
// an nfft-point FFT at the given sample rate, spanning [lowHz, highHz].
func NewMelFilterbank(numFilters, nfft int, sampleRate, lowHz, highHz float64) *MelFilterbank {
	if highHz <= lowHz {
		panic("dsp: mel filterbank requires highHz > lowHz")
	}
	nBins := nfft/2 + 1
	lowMel, highMel := HzToMel(lowHz), HzToMel(highHz)
	// numFilters+2 edge points, evenly spaced in mel.
	edges := make([]float64, numFilters+2)
	for i := range edges {
		mel := lowMel + (highMel-lowMel)*float64(i)/float64(numFilters+1)
		edges[i] = MelToHz(mel)
	}
	binHz := sampleRate / float64(nfft)
	fb := &MelFilterbank{NumFilters: numFilters, weights: make([][]float64, numFilters)}
	for f := 0; f < numFilters; f++ {
		w := make([]float64, nBins)
		left, center, right := edges[f], edges[f+1], edges[f+2]
		for b := 0; b < nBins; b++ {
			hz := float64(b) * binHz
			switch {
			case hz <= left || hz >= right:
				// zero
			case hz <= center:
				w[b] = (hz - left) / (center - left)
			default:
				w[b] = (right - hz) / (right - center)
			}
		}
		fb.weights[f] = w
	}
	return fb
}

// Apply returns the log filterbank energies of the one-sided power
// spectrum, flooring at logFloor to avoid −Inf.
func (fb *MelFilterbank) Apply(power []float64, logFloor float64) []float64 {
	out := make([]float64, fb.NumFilters)
	for f, w := range fb.weights {
		var e float64
		n := len(power)
		if len(w) < n {
			n = len(w)
		}
		for b := 0; b < n; b++ {
			e += w[b] * power[b]
		}
		if e < logFloor {
			e = logFloor
		}
		out[f] = math.Log(e)
	}
	return out
}

// Energies returns the linear (not log) filterbank energies; the PLP path
// applies its own compression.
func (fb *MelFilterbank) Energies(power []float64) []float64 {
	out := make([]float64, fb.NumFilters)
	for f, w := range fb.weights {
		var e float64
		n := len(power)
		if len(w) < n {
			n = len(w)
		}
		for b := 0; b < n; b++ {
			e += w[b] * power[b]
		}
		out[f] = e
	}
	return out
}

// DCT2 computes the orthonormal DCT-II of x, returning the first numCoeffs
// coefficients. This is the standard cepstral-lifter transform used after
// log filterbank energies.
func DCT2(x []float64, numCoeffs int) []float64 {
	n := len(x)
	out := make([]float64, numCoeffs)
	if n == 0 {
		return out
	}
	scale0 := math.Sqrt(1 / float64(n))
	scale := math.Sqrt(2 / float64(n))
	for k := 0; k < numCoeffs; k++ {
		var s float64
		for i, v := range x {
			s += v * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/float64(n))
		}
		if k == 0 {
			out[k] = s * scale0
		} else {
			out[k] = s * scale
		}
	}
	return out
}

// Autocorrelation returns lags 0..maxLag of the biased autocorrelation of x.
func Autocorrelation(x []float64, maxLag int) []float64 {
	r := make([]float64, maxLag+1)
	n := len(x)
	for lag := 0; lag <= maxLag; lag++ {
		var s float64
		for i := lag; i < n; i++ {
			s += x[i] * x[i-lag]
		}
		r[lag] = s
	}
	return r
}

// LevinsonDurbin solves the Toeplitz normal equations for linear prediction
// from autocorrelation r (lags 0..order). It returns the LP coefficients
// a[1..order] (with the convention x̂[t] = Σ a[k]·x[t−k]), the reflection
// coefficients, and the final prediction error. A zero-energy input yields
// zero coefficients.
func LevinsonDurbin(r []float64, order int) (lpc, reflection []float64, predErr float64) {
	if len(r) < order+1 {
		panic("dsp: autocorrelation too short for requested order")
	}
	lpc = make([]float64, order)
	reflection = make([]float64, order)
	if r[0] == 0 {
		return lpc, reflection, 0
	}
	e := r[0]
	a := make([]float64, order+1)
	for i := 1; i <= order; i++ {
		acc := r[i]
		for j := 1; j < i; j++ {
			acc -= a[j] * r[i-j]
		}
		k := acc / e
		reflection[i-1] = k
		a[i] = k
		for j := 1; j <= i/2; j++ {
			tmp := a[j] - k*a[i-j]
			a[i-j] -= k * a[j]
			a[j] = tmp
		}
		e *= 1 - k*k
		if e <= 0 {
			e = 1e-12
		}
	}
	copy(lpc, a[1:])
	return lpc, reflection, e
}

// LPCToCepstrum converts LP coefficients (prediction convention as returned
// by LevinsonDurbin) and prediction error gain into numCeps cepstral
// coefficients via the standard recursion; c[0] = ln(gain).
func LPCToCepstrum(lpc []float64, gain float64, numCeps int) []float64 {
	c := make([]float64, numCeps)
	if numCeps == 0 {
		return c
	}
	if gain <= 0 {
		gain = 1e-12
	}
	c[0] = math.Log(gain)
	p := len(lpc)
	for n := 1; n < numCeps; n++ {
		var acc float64
		if n <= p {
			acc = lpc[n-1]
		}
		for k := 1; k < n; k++ {
			if n-k <= p && n-k >= 1 {
				acc += float64(k) / float64(n) * c[k] * lpc[n-k-1]
			}
		}
		c[n] = acc
	}
	return c
}

// Deltas computes first-order regression deltas over a sequence of feature
// frames with the standard window parameter w (typically 2):
// d[t] = Σ_{k=1..w} k·(x[t+k] − x[t−k]) / (2·Σ k²), with edge replication.
func Deltas(frames [][]float64, w int) [][]float64 {
	n := len(frames)
	out := make([][]float64, n)
	if n == 0 {
		return out
	}
	dim := len(frames[0])
	var denom float64
	for k := 1; k <= w; k++ {
		denom += float64(k * k)
	}
	denom *= 2
	clamp := func(i int) int {
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}
	for t := 0; t < n; t++ {
		d := make([]float64, dim)
		for k := 1; k <= w; k++ {
			fp := frames[clamp(t+k)]
			fm := frames[clamp(t-k)]
			for j := 0; j < dim; j++ {
				d[j] += float64(k) * (fp[j] - fm[j])
			}
		}
		for j := range d {
			d[j] /= denom
		}
		out[t] = d
	}
	return out
}

// Frame slices signal into overlapping frames of frameLen samples advancing
// by hop samples; the final partial frame is dropped. Each frame is a copy.
func Frame(signal []float64, frameLen, hop int) [][]float64 {
	if frameLen <= 0 || hop <= 0 {
		panic("dsp: Frame requires positive frameLen and hop")
	}
	var frames [][]float64
	for start := 0; start+frameLen <= len(signal); start += hop {
		f := make([]float64, frameLen)
		copy(f, signal[start:start+frameLen])
		frames = append(frames, f)
	}
	return frames
}

package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSinusoid(t *testing.T) {
	// A pure tone at bin 3 of a 32-point FFT concentrates all energy there.
	n := 32
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*3*float64(i)/float64(n)), 0)
	}
	FFT(x)
	for k, v := range x {
		mag := cmplx.Abs(v)
		if k == 3 || k == n-3 {
			if math.Abs(mag-float64(n)/2) > 1e-9 {
				t.Fatalf("bin %d magnitude %v, want %v", k, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Fatalf("leakage at bin %d: %v", k, mag)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		n := 1 << (uint(rr.Intn(7)) + 1) // 2..128
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rr.Norm(), rr.Norm())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	r := rng.New(2)
	n := 64
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		v := r.Norm()
		x[i] = complex(v, 0)
		timeEnergy += v * v
	}
	FFT(x)
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-9*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT accepted length 12")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 200: 256, 256: 256, 257: 512}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPowerSpectrumTone(t *testing.T) {
	// 200 samples of a tone at bin 10 of a 256-point FFT.
	nfft := 256
	sig := make([]float64, nfft)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 10 * float64(i) / float64(nfft))
	}
	ps := PowerSpectrum(sig, nfft)
	if len(ps) != nfft/2+1 {
		t.Fatalf("spectrum length %d", len(ps))
	}
	best := 0
	for k, v := range ps {
		if v > ps[best] {
			best = k
		}
	}
	if best != 10 {
		t.Fatalf("peak at bin %d, want 10", best)
	}
}

func TestWindows(t *testing.T) {
	h := HammingWindow(25)
	if math.Abs(h[0]-0.08) > 1e-9 || math.Abs(h[24]-0.08) > 1e-9 {
		t.Fatalf("Hamming endpoints %v %v", h[0], h[24])
	}
	if math.Abs(h[12]-1.0) > 1e-9 {
		t.Fatalf("Hamming center %v", h[12])
	}
	hn := HannWindow(25)
	if math.Abs(hn[0]) > 1e-12 || math.Abs(hn[12]-1) > 1e-9 {
		t.Fatalf("Hann shape wrong: %v %v", hn[0], hn[12])
	}
	if HammingWindow(1)[0] != 1 || HannWindow(1)[0] != 1 {
		t.Fatal("single-point windows must be 1")
	}
}

func TestPreEmphasize(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	PreEmphasize(x, 0.97)
	if x[0] != 1 {
		t.Fatalf("first sample changed: %v", x[0])
	}
	for i := 1; i < len(x); i++ {
		if math.Abs(x[i]-0.03) > 1e-12 {
			t.Fatalf("x[%d] = %v, want 0.03", i, x[i])
		}
	}
}

func TestMelHzRoundTrip(t *testing.T) {
	for _, hz := range []float64{0, 100, 1000, 4000} {
		back := MelToHz(HzToMel(hz))
		if math.Abs(back-hz) > 1e-6*(1+hz) {
			t.Errorf("mel round trip %v -> %v", hz, back)
		}
	}
	if HzToMel(1000) < HzToMel(500) {
		t.Error("mel scale not monotone")
	}
}

func TestMelFilterbankShape(t *testing.T) {
	fb := NewMelFilterbank(23, 256, 8000, 100, 3800)
	if fb.NumFilters != 23 {
		t.Fatalf("NumFilters = %d", fb.NumFilters)
	}
	// Each filter must be non-negative and have positive mass.
	for f, w := range fb.weights {
		var sum float64
		for _, v := range w {
			if v < 0 {
				t.Fatalf("filter %d has negative weight", f)
			}
			sum += v
		}
		if sum <= 0 {
			t.Fatalf("filter %d has zero mass", f)
		}
	}
}

func TestMelFilterbankTone(t *testing.T) {
	// Energy from a 1 kHz tone should land in the filter whose center is
	// nearest 1 kHz.
	sr := 8000.0
	nfft := 512
	sig := make([]float64, nfft)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 1000 * float64(i) / sr)
	}
	fb := NewMelFilterbank(20, nfft, sr, 100, 3800)
	e := fb.Energies(PowerSpectrum(sig, nfft))
	best := 0
	for f, v := range e {
		if v > e[best] {
			best = f
		}
	}
	// 1 kHz is mel 999.9; filters span mel(100)≈150 to mel(3800)≈2135, so
	// filter centers are at mel 150 + (2135-150)*(f+1)/21 — center nearest
	// 1000 mel is around f≈8. Allow ±1.
	if best < 7 || best > 9 {
		t.Fatalf("tone energy peaked in filter %d", best)
	}
}

func TestDCT2Orthonormal(t *testing.T) {
	// DCT of a constant vector: only c0 nonzero, equal to mean*sqrt(n).
	n := 16
	x := make([]float64, n)
	for i := range x {
		x[i] = 2
	}
	c := DCT2(x, n)
	if math.Abs(c[0]-2*math.Sqrt(float64(n))) > 1e-9 {
		t.Fatalf("c0 = %v", c[0])
	}
	for k := 1; k < n; k++ {
		if math.Abs(c[k]) > 1e-9 {
			t.Fatalf("c%d = %v, want 0", k, c[k])
		}
	}
	// Energy preservation for full-length DCT.
	r := rng.New(3)
	y := make([]float64, n)
	var te float64
	for i := range y {
		y[i] = r.Norm()
		te += y[i] * y[i]
	}
	cy := DCT2(y, n)
	var fe float64
	for _, v := range cy {
		fe += v * v
	}
	if math.Abs(te-fe) > 1e-9*te {
		t.Fatalf("DCT not orthonormal: %v vs %v", te, fe)
	}
}

func TestAutocorrelation(t *testing.T) {
	x := []float64{1, 2, 3}
	r := Autocorrelation(x, 2)
	if r[0] != 14 || r[1] != 8 || r[2] != 3 {
		t.Fatalf("autocorrelation = %v", r)
	}
}

func TestLevinsonDurbinRecoversAR1(t *testing.T) {
	// Synthesize an AR(1) process x[t] = a·x[t−1] + e[t]; LPC(1) ≈ a.
	r := rng.New(4)
	a := 0.8
	n := 20000
	x := make([]float64, n)
	for t1 := 1; t1 < n; t1++ {
		x[t1] = a*x[t1-1] + r.Norm()
	}
	ac := Autocorrelation(x, 2)
	lpc, refl, e := LevinsonDurbin(ac, 1)
	if math.Abs(lpc[0]-a) > 0.03 {
		t.Fatalf("LPC[0] = %v, want ~%v", lpc[0], a)
	}
	if math.Abs(refl[0]-a) > 0.03 {
		t.Fatalf("reflection[0] = %v", refl[0])
	}
	if e <= 0 {
		t.Fatalf("prediction error %v", e)
	}
}

func TestLevinsonDurbinZeroSignal(t *testing.T) {
	lpc, refl, e := LevinsonDurbin([]float64{0, 0, 0}, 2)
	for i := range lpc {
		if lpc[i] != 0 || refl[i] != 0 {
			t.Fatal("zero-energy input must give zero coefficients")
		}
	}
	if e != 0 {
		t.Fatalf("error = %v", e)
	}
}

func TestLPCToCepstrum(t *testing.T) {
	c := LPCToCepstrum([]float64{0.5}, 1.0, 4)
	// c0 = ln(1) = 0; c1 = a1 = 0.5; c2 = a1²/2... for AR(1):
	// c_n = a^n / n.
	if math.Abs(c[0]) > 1e-12 {
		t.Fatalf("c0 = %v", c[0])
	}
	if math.Abs(c[1]-0.5) > 1e-12 {
		t.Fatalf("c1 = %v", c[1])
	}
	if math.Abs(c[2]-0.125) > 1e-12 {
		t.Fatalf("c2 = %v, want 0.125", c[2])
	}
	if math.Abs(c[3]-math.Pow(0.5, 3)/3) > 1e-12 {
		t.Fatalf("c3 = %v", c[3])
	}
}

func TestDeltasConstantSequence(t *testing.T) {
	frames := [][]float64{{1, 2}, {1, 2}, {1, 2}, {1, 2}}
	d := Deltas(frames, 2)
	for t1, f := range d {
		for j, v := range f {
			if v != 0 {
				t.Fatalf("delta of constant sequence nonzero at (%d,%d): %v", t1, j, v)
			}
		}
	}
}

func TestDeltasLinearRamp(t *testing.T) {
	// x[t] = t → delta should be 1 in the interior.
	var frames [][]float64
	for i := 0; i < 10; i++ {
		frames = append(frames, []float64{float64(i)})
	}
	d := Deltas(frames, 2)
	for t1 := 2; t1 < 8; t1++ {
		if math.Abs(d[t1][0]-1) > 1e-12 {
			t.Fatalf("interior delta = %v at %d", d[t1][0], t1)
		}
	}
}

func TestFrame(t *testing.T) {
	sig := make([]float64, 100)
	frames := Frame(sig, 25, 10)
	if len(frames) != 8 {
		t.Fatalf("frame count = %d, want 8", len(frames))
	}
	for _, f := range frames {
		if len(f) != 25 {
			t.Fatalf("frame length %d", len(f))
		}
	}
	// Frames are copies: mutating one must not affect the signal.
	frames[0][0] = 99
	if sig[0] != 0 {
		t.Fatal("Frame returned views, not copies")
	}
	if got := Frame(make([]float64, 10), 25, 10); len(got) != 0 {
		t.Fatalf("short signal produced %d frames", len(got))
	}
}

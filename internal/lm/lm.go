// Package lm implements smoothed phone N-gram language models — the
// counterpart of the SRILM toolkit in the paper's pipeline (Section 4.1
// uses SRILM/RNNLM when turning decoded phone streams into statistics, and
// the HVite decoder consumes a phone-level LM). Two estimators are
// provided: interpolated Kneser–Ney (the standard for N-gram smoothing)
// and additive (Laplace) smoothing as the simple baseline. The bigram
// models plug into the HMM decoder's phone-transition matrix and improve
// phone accuracy on matched data.
package lm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
)

// Bigram is a smoothed bigram language model over a phone inventory.
type Bigram struct {
	NumPhones int
	// logProb[a][b] = log P(b|a).
	logProb [][]float64
	// logInit[b] = log P(b | <s>).
	logInit []float64
}

// LogProb returns log P(b|a).
func (m *Bigram) LogProb(a, b int) float64 { return m.logProb[a][b] }

// LogInit returns log P(b|<s>).
func (m *Bigram) LogInit(b int) float64 { return m.logInit[b] }

// Matrix exposes the full log-transition matrix, ready to assign to an
// hmm.Model's LogPhoneTrans.
func (m *Bigram) Matrix() [][]float64 { return m.logProb }

// Perplexity computes the per-phone perplexity of the model on held-out
// phone strings.
func (m *Bigram) Perplexity(sequences [][]int) float64 {
	var logSum float64
	var n int
	for _, seq := range sequences {
		for i, p := range seq {
			if i == 0 {
				logSum += m.LogInit(p)
			} else {
				logSum += m.LogProb(seq[i-1], p)
			}
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logSum / float64(n))
}

// counts accumulates bigram statistics.
type counts struct {
	numPhones int
	bi        [][]float64
	initCnt   []float64
	// continuation[b] = number of distinct predecessors of b (KN).
	continuation []float64
	// followers[a] = number of distinct successors of a (KN).
	followers []float64
}

func newCounts(numPhones int) *counts {
	c := &counts{
		numPhones:    numPhones,
		bi:           make([][]float64, numPhones),
		initCnt:      make([]float64, numPhones),
		continuation: make([]float64, numPhones),
		followers:    make([]float64, numPhones),
	}
	for a := range c.bi {
		c.bi[a] = make([]float64, numPhones)
	}
	return c
}

func (c *counts) add(sequences [][]int) {
	for _, seq := range sequences {
		for i, p := range seq {
			if p < 0 || p >= c.numPhones {
				panic(fmt.Sprintf("lm: phone %d out of range", p))
			}
			if i == 0 {
				c.initCnt[p]++
			} else {
				a := seq[i-1]
				if c.bi[a][p] == 0 {
					c.continuation[p]++
					c.followers[a]++
				}
				c.bi[a][p]++
			}
		}
	}
}

// TrainKneserNey estimates an interpolated Kneser–Ney bigram model with
// absolute discount d (0 < d < 1; 0.75 is the classic choice).
func TrainKneserNey(numPhones int, sequences [][]int, discount float64) *Bigram {
	if discount <= 0 || discount >= 1 {
		discount = 0.75
	}
	c := newCounts(numPhones)
	c.add(sequences)

	// Continuation unigram: P_cont(b) = distinct predecessors of b /
	// distinct bigram types.
	var biTypes float64
	for _, cc := range c.continuation {
		biTypes += cc
	}
	pCont := make([]float64, numPhones)
	for b := range pCont {
		if biTypes > 0 {
			pCont[b] = (c.continuation[b] + 0.5) / (biTypes + 0.5*float64(numPhones))
		} else {
			pCont[b] = 1 / float64(numPhones)
		}
	}

	m := &Bigram{
		NumPhones: numPhones,
		logProb:   make([][]float64, numPhones),
		logInit:   make([]float64, numPhones),
	}
	for a := 0; a < numPhones; a++ {
		row := make([]float64, numPhones)
		var rowTotal float64
		for b := 0; b < numPhones; b++ {
			rowTotal += c.bi[a][b]
		}
		if rowTotal == 0 {
			// Unseen history: back off entirely to the continuation model.
			for b := 0; b < numPhones; b++ {
				row[b] = math.Log(pCont[b])
			}
			m.logProb[a] = row
			continue
		}
		// Interpolation weight: lambda(a) = d·|followers(a)| / total(a).
		lambda := discount * c.followers[a] / rowTotal
		for b := 0; b < numPhones; b++ {
			disc := c.bi[a][b] - discount
			if disc < 0 {
				disc = 0
			}
			p := disc/rowTotal + lambda*pCont[b]
			if p <= 0 {
				p = 1e-12
			}
			row[b] = math.Log(p)
		}
		m.logProb[a] = row
	}
	// Initial distribution: additive smoothing over sentence starts.
	var initTotal float64
	for _, v := range c.initCnt {
		initTotal += v
	}
	for b := 0; b < numPhones; b++ {
		m.logInit[b] = math.Log((c.initCnt[b] + 1) / (initTotal + float64(numPhones)))
	}
	return m
}

// TrainAdditive estimates a bigram model with add-alpha smoothing — the
// baseline the Kneser–Ney perplexity tests compare against.
func TrainAdditive(numPhones int, sequences [][]int, alpha float64) *Bigram {
	if alpha <= 0 {
		alpha = 1
	}
	c := newCounts(numPhones)
	c.add(sequences)
	m := &Bigram{
		NumPhones: numPhones,
		logProb:   make([][]float64, numPhones),
		logInit:   make([]float64, numPhones),
	}
	for a := 0; a < numPhones; a++ {
		row := make([]float64, numPhones)
		var rowTotal float64
		for b := 0; b < numPhones; b++ {
			rowTotal += c.bi[a][b]
		}
		for b := 0; b < numPhones; b++ {
			row[b] = math.Log((c.bi[a][b] + alpha) / (rowTotal + alpha*float64(numPhones)))
		}
		m.logProb[a] = row
	}
	var initTotal float64
	for _, v := range c.initCnt {
		initTotal += v
	}
	for b := 0; b < numPhones; b++ {
		m.logInit[b] = math.Log((c.initCnt[b] + 1) / (initTotal + float64(numPhones)))
	}
	return m
}

// Validate checks that every history's distribution sums to one.
func (m *Bigram) Validate() error {
	rows := append([][]float64{m.logInit}, m.logProb...)
	for i, row := range rows {
		var s float64
		for _, lp := range row {
			s += math.Exp(lp)
		}
		if math.Abs(s-1) > 1e-6 {
			return fmt.Errorf("lm: row %d sums to %v", i-1, s)
		}
	}
	return nil
}

// bigramWire is the gob wire format of Bigram.
type bigramWire struct {
	NumPhones int
	LogProb   [][]float64
	LogInit   []float64
}

// GobEncode implements gob.GobEncoder.
func (m *Bigram) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(bigramWire{
		NumPhones: m.NumPhones, LogProb: m.logProb, LogInit: m.logInit,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *Bigram) GobDecode(data []byte) error {
	var w bigramWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	m.NumPhones, m.logProb, m.logInit = w.NumPhones, w.LogProb, w.LogInit
	return nil
}

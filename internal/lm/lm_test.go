package lm

import (
	"math"
	"testing"

	"repro/internal/phones"
	"repro/internal/rng"
	"repro/internal/synthlang"
)

// sampleSequences draws phone strings from a synthetic language.
func sampleSequences(seed uint64, n int, durS float64) [][]int {
	langs := synthlang.Generate(synthlang.DefaultConfig(), 42)
	r := rng.New(seed)
	var out [][]int
	for i := 0; i < n; i++ {
		spk := synthlang.NewSpeaker(r, i)
		u := langs[0].Sample(r, durS, spk, synthlang.ChannelCTSClean)
		out = append(out, u.PhoneIDs())
	}
	return out
}

func TestKneserNeyValid(t *testing.T) {
	seqs := sampleSequences(1, 20, 10)
	m := TrainKneserNey(phones.UniversalSize, seqs, 0.75)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdditiveValid(t *testing.T) {
	seqs := sampleSequences(2, 20, 10)
	m := TrainAdditive(phones.UniversalSize, seqs, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPerplexityBeatsUniform(t *testing.T) {
	train := sampleSequences(3, 30, 10)
	test := sampleSequences(4, 10, 10)
	m := TrainKneserNey(phones.UniversalSize, train, 0.75)
	pp := m.Perplexity(test)
	uniform := float64(phones.UniversalSize)
	if pp >= uniform {
		t.Fatalf("KN perplexity %v not below uniform %v", pp, uniform)
	}
}

func TestKneserNeyBeatsAdditiveOnHeldOut(t *testing.T) {
	// The KN advantage shows on skewed data where histories have few
	// successors: add-1 bleeds mass onto the (many) unseen successors,
	// while KN discounts lightly and backs off by continuation diversity.
	// (On the Dirichlet-generated synthlang corpora add-1 is close to the
	// Bayes estimator, so this test uses a sparse deterministic-ish
	// Markov chain instead.)
	const vocab = 50
	gen := func(seed uint64, n, length int) [][]int {
		r := rng.New(seed)
		var out [][]int
		for i := 0; i < n; i++ {
			seq := make([]int, length)
			seq[0] = r.Intn(vocab)
			for t := 1; t < length; t++ {
				prev := seq[t-1]
				// Three fixed successors per phone, heavily skewed.
				succ := [3]int{(prev * 7) % vocab, (prev*7 + 1) % vocab, (prev*7 + 13) % vocab}
				u := r.Float64()
				switch {
				case u < 0.7:
					seq[t] = succ[0]
				case u < 0.95:
					seq[t] = succ[1]
				default:
					seq[t] = succ[2]
				}
			}
			out = append(out, seq)
		}
		return out
	}
	train := gen(5, 6, 60)
	test := gen(6, 20, 60)
	kn := TrainKneserNey(vocab, train, 0.75)
	add := TrainAdditive(vocab, train, 1)
	ppKN := kn.Perplexity(test)
	ppAdd := add.Perplexity(test)
	if ppKN >= ppAdd {
		t.Fatalf("KN perplexity %v not better than add-1 %v", ppKN, ppAdd)
	}
}

func TestTrainPerplexityBelowHeldOut(t *testing.T) {
	train := sampleSequences(7, 30, 10)
	test := sampleSequences(8, 10, 10)
	m := TrainKneserNey(phones.UniversalSize, train, 0.75)
	if m.Perplexity(train) >= m.Perplexity(test) {
		t.Fatal("train perplexity should be below held-out perplexity")
	}
}

func TestUnseenHistoryBacksOff(t *testing.T) {
	// Train on a tiny corpus so some histories are unseen; probabilities
	// there must still be a valid distribution.
	seqs := [][]int{{0, 1, 2, 0, 1}}
	m := TrainKneserNey(8, seqs, 0.75)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// History 7 never occurred: its row must be finite everywhere.
	for b := 0; b < 8; b++ {
		if math.IsInf(m.LogProb(7, b), 0) || math.IsNaN(m.LogProb(7, b)) {
			t.Fatalf("unseen history gave %v", m.LogProb(7, b))
		}
	}
}

func TestFrequentBigramMoreProbable(t *testing.T) {
	// 0→1 occurs often, 0→2 once: P(1|0) > P(2|0).
	seqs := [][]int{{0, 1, 0, 1, 0, 1, 0, 1, 0, 2}}
	m := TrainKneserNey(3, seqs, 0.75)
	if m.LogProb(0, 1) <= m.LogProb(0, 2) {
		t.Fatal("frequent bigram not more probable")
	}
}

func TestMatrixPluggableIntoDecoder(t *testing.T) {
	seqs := sampleSequences(9, 10, 5)
	m := TrainKneserNey(phones.UniversalSize, seqs, 0.75)
	mat := m.Matrix()
	if len(mat) != phones.UniversalSize || len(mat[0]) != phones.UniversalSize {
		t.Fatal("matrix shape wrong")
	}
}

func TestPerplexityEmpty(t *testing.T) {
	m := TrainAdditive(4, nil, 1)
	if !math.IsInf(m.Perplexity(nil), 1) {
		t.Fatal("perplexity of empty test set should be +Inf")
	}
}

func TestOutOfRangePhonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted out-of-range phone")
		}
	}()
	TrainAdditive(4, [][]int{{0, 9}}, 1)
}

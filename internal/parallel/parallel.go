// Package parallel provides the worker-pool helpers used by the experiment
// sweeps: deterministic parallel-for over an index range and a bounded
// task runner. Work items must be independent; determinism comes from
// writing results into per-index slots rather than sharing accumulators.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs body(i) for i in [0, n) across min(GOMAXPROCS, n) workers and
// waits for completion. body must not panic; a panic in any worker
// propagates after all workers stop.
func For(n int, body func(i int)) {
	ForWorkers(n, runtime.GOMAXPROCS(0), body)
}

// ForWorkers is For with an explicit worker count (1 degrades to a serial
// loop, useful for benchmarking parallel speedups).
func ForWorkers(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Value
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.Store(r)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// Map applies f to every index and collects results in order.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = f(i) })
	return out
}

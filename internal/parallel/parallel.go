// Package parallel provides the worker-pool helpers used by the experiment
// sweeps: deterministic parallel-for over an index range and a bounded
// task runner. Work items must be independent; determinism comes from
// writing results into per-index slots rather than sharing accumulators.
//
// The ForPool variants additionally record per-worker busy time and task
// counts into the obs registry, making worker utilization and stragglers
// visible in run reports.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// For runs body(i) for i in [0, n) across min(GOMAXPROCS, n) workers and
// waits for completion. body must not panic; a panic in any worker
// propagates after all workers stop.
func For(n int, body func(i int)) {
	ForWorkers(n, runtime.GOMAXPROCS(0), body)
}

// ForWorkers is For with an explicit worker count (1 degrades to a serial
// loop, useful for benchmarking parallel speedups).
func ForWorkers(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			// Chaos hook: injected panics/stalls exercise the pool's
			// first-panic-wins propagation and its callers' recovery.
			faultinject.Disturb("parallel.task")
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	// The first panicking worker wins deterministically (sync.Once);
	// remaining workers drain and their panics are dropped.
	var panicOnce sync.Once
	var panicVal any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				faultinject.Disturb("parallel.task")
				body(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Map applies f to every index and collects results in order.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = f(i) })
	return out
}

// Stats summarizes one instrumented pool run.
type Stats struct {
	Workers int
	// Tasks[w] and Busy[w] are worker w's completed task count and summed
	// task wall time.
	Tasks []int64
	Busy  []time.Duration
	// Elapsed is the pool's end-to-end wall time.
	Elapsed time.Duration
}

// TotalTasks sums the per-worker task counts.
func (s Stats) TotalTasks() int64 {
	var t int64
	for _, v := range s.Tasks {
		t += v
	}
	return t
}

// TotalBusy sums the per-worker busy time.
func (s Stats) TotalBusy() time.Duration {
	var t time.Duration
	for _, v := range s.Busy {
		t += v
	}
	return t
}

// Utilization is the fraction of worker-seconds spent in the body
// (1 = every worker busy the whole run; low values mean tail latency or
// contention).
func (s Stats) Utilization() float64 {
	if s.Workers == 0 || s.Elapsed <= 0 {
		return 0
	}
	return float64(s.TotalBusy()) / (float64(s.Workers) * float64(s.Elapsed))
}

// StragglerRatio is max(worker busy) / mean(worker busy); 1 means a
// perfectly balanced pool, large values mean one worker dominated the run
// (typically one oversized task).
func (s Stats) StragglerRatio() float64 {
	busy := s.TotalBusy()
	if s.Workers == 0 || busy <= 0 {
		return 0
	}
	var max time.Duration
	for _, v := range s.Busy {
		if v > max {
			max = v
		}
	}
	mean := float64(busy) / float64(s.Workers)
	return float64(max) / mean
}

// ForPool is For with per-worker instrumentation: each task is timed, and
// the pool's totals are recorded under the pool name in the obs default
// registry — counter "pool.<name>.tasks", histogram
// "pool.<name>.task_seconds", and gauges "pool.<name>.utilization" /
// "pool.<name>.straggler_ratio" (last run wins). The stats are also
// returned for direct inspection.
func ForPool(name string, n int, body func(i int)) Stats {
	return ForPoolWorkers(name, n, runtime.GOMAXPROCS(0), body)
}

// ForPoolWorkers is ForPool with an explicit worker count.
func ForPoolWorkers(name string, n, workers int, body func(i int)) Stats {
	if n <= 0 {
		return Stats{}
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	st := Stats{
		Workers: workers,
		Tasks:   make([]int64, workers),
		Busy:    make([]time.Duration, workers),
	}
	hist := obs.GetHistogram("pool." + name + ".task_seconds")
	var next atomic.Int64
	start := time.Now()
	// Each outer index is one worker; tasks are claimed from the shared
	// cursor exactly as in ForWorkers, but timed per task.
	ForWorkers(workers, workers, func(w int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			faultinject.Disturb("parallel.task")
			t0 := time.Now()
			body(i)
			d := time.Since(t0)
			st.Tasks[w]++
			st.Busy[w] += d
			hist.Observe(d.Seconds())
		}
	})
	st.Elapsed = time.Since(start)
	obs.Add("pool."+name+".tasks", st.TotalTasks())
	obs.Add("pool."+name+".busy_ns", int64(st.TotalBusy()))
	obs.SetGauge("pool."+name+".utilization", st.Utilization())
	obs.SetGauge("pool."+name+".straggler_ratio", st.StragglerRatio())
	return st
}

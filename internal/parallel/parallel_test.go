package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestForCoversAllIndices(t *testing.T) {
	n := 1000
	seen := make([]atomic.Int32, n)
	For(n, func(i int) { seen[i].Add(1) })
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, seen[i].Load())
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(i int) { called = true })
	For(-5, func(i int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestForWorkersSerial(t *testing.T) {
	// With 1 worker, execution is in-order and serial.
	var order []int
	ForWorkers(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	For(100, func(i int) {
		if i == 50 {
			panic("boom")
		}
	})
}

// TestForFirstPanicWins pins the deterministic-first-panic contract: when
// two bodies panic concurrently, exactly one recorded panic propagates,
// and it is the first one to be recovered — not whichever worker happened
// to write last (the old atomic.Value.Store bug kept the last writer).
func TestForFirstPanicWins(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		var barrier sync.WaitGroup
		barrier.Add(2)
		got := func() (r any) {
			defer func() { r = recover() }()
			ForWorkers(2, 2, func(i int) {
				// Both workers reach the barrier, then panic as close to
				// simultaneously as the scheduler allows.
				barrier.Done()
				barrier.Wait()
				panic(i)
			})
			return nil
		}()
		v, ok := got.(int)
		if !ok || (v != 0 && v != 1) {
			t.Fatalf("trial %d: propagated %v, want panic value 0 or 1", trial, got)
		}
	}
}

// TestForPanicExactlyOnce checks that a multi-panic run surfaces a single
// panic to the caller (the losing worker's panic is swallowed, not
// re-raised on some later call).
func TestForPanicExactlyOnce(t *testing.T) {
	panics := 0
	func() {
		defer func() {
			if recover() != nil {
				panics++
			}
		}()
		ForWorkers(64, 8, func(i int) { panic(i) })
	}()
	if panics != 1 {
		t.Fatalf("observed %d panics, want 1", panics)
	}
	// The pool must be fully reusable afterwards.
	var sum atomic.Int64
	ForWorkers(100, 4, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 100*99/2 {
		t.Fatalf("pool broken after panic: sum=%d", sum.Load())
	}
}

func TestForPoolCoversAllIndicesAndCounts(t *testing.T) {
	n := 500
	seen := make([]atomic.Int32, n)
	st := ForPoolWorkers("test-cover", n, 4, func(i int) {
		seen[i].Add(1)
	})
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, seen[i].Load())
		}
	}
	if st.TotalTasks() != int64(n) {
		t.Fatalf("TotalTasks = %d, want %d", st.TotalTasks(), n)
	}
	if st.Workers != 4 || len(st.Tasks) != 4 || len(st.Busy) != 4 {
		t.Fatalf("bad worker accounting: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
}

func TestForPoolStatsUtilization(t *testing.T) {
	st := ForPoolWorkers("test-util", 8, 2, func(i int) {
		time.Sleep(2 * time.Millisecond)
	})
	if u := st.Utilization(); u <= 0 || u > 1.001 {
		t.Fatalf("utilization = %g, want (0, 1]", u)
	}
	if r := st.StragglerRatio(); r < 1 || r > float64(st.Workers) {
		t.Fatalf("straggler ratio = %g, want [1, workers]", r)
	}
	if st.TotalBusy() < 8*2*time.Millisecond {
		t.Fatalf("busy %v below the 16ms of sleeping that happened", st.TotalBusy())
	}
}

func TestForPoolRecordsObsMetrics(t *testing.T) {
	before := obs.GetCounter("pool.test-obs.tasks").Value()
	ForPoolWorkers("test-obs", 10, 2, func(i int) {})
	if got := obs.GetCounter("pool.test-obs.tasks").Value() - before; got != 10 {
		t.Fatalf("obs task counter advanced by %d, want 10", got)
	}
	if obs.GetHistogram("pool.test-obs.task_seconds").Count() < 10 {
		t.Fatal("task latency histogram not populated")
	}
	if u := obs.GetGauge("pool.test-obs.utilization").Value(); u <= 0 {
		t.Fatalf("utilization gauge = %g", u)
	}
}

func TestForPoolSerialAndEmpty(t *testing.T) {
	var order []int
	st := ForPoolWorkers("test-serial", 5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial pool order broken: %v", order)
		}
	}
	if st.TotalTasks() != 5 {
		t.Fatalf("TotalTasks = %d", st.TotalTasks())
	}
	if st := ForPool("test-empty", 0, func(i int) { t.Fatal("called") }); st.TotalTasks() != 0 {
		t.Fatal("empty pool ran tasks")
	}
}

func TestMapOrdered(t *testing.T) {
	out := Map(100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForParallelSum(t *testing.T) {
	var sum atomic.Int64
	For(10000, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 10000*9999/2 {
		t.Fatalf("sum = %d", got)
	}
}

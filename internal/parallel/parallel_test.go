package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	n := 1000
	seen := make([]atomic.Int32, n)
	For(n, func(i int) { seen[i].Add(1) })
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, seen[i].Load())
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(i int) { called = true })
	For(-5, func(i int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestForWorkersSerial(t *testing.T) {
	// With 1 worker, execution is in-order and serial.
	var order []int
	ForWorkers(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	For(100, func(i int) {
		if i == 50 {
			panic("boom")
		}
	})
}

func TestMapOrdered(t *testing.T) {
	out := Map(100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForParallelSum(t *testing.T) {
	var sum atomic.Int64
	For(10000, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 10000*9999/2 {
		t.Fatalf("sum = %d", got)
	}
}

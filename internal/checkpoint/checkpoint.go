// Package checkpoint is the crash-safe snapshot store behind the
// experiment pipeline's checkpoint/resume support. The expensive phases —
// per-front-end decoding/supervector extraction, OVR SVM training,
// baseline scoring, every DBA boosting round, the fusion backend — run
// for minutes at full scale; a Store lets a killed run restart from the
// last completed phase boundary instead of from zero, with bit-identical
// final results (the resume-equivalence suite and the CI
// crash-resume-smoke job are the referees).
//
// # On-disk layout and crash safety
//
//	<dir>/
//	  MANIFEST-000007.json   newest generation manifest (sealed JSON)
//	  MANIFEST-000006.json   previous generation (kept for fallback)
//	  features-HU.g000001.ckpt   sealed gob entries (persist format)
//	  baseline.g000007.ckpt
//	  ...
//
// Every file is published with the write-rename protocol and carries the
// persist package's CRC32 + SHA-256 + length integrity footer. A Save is
// one new *generation*: the entry file lands first, then a new manifest —
// listing every entry of the generation with its size and SHA-256 — is
// written and renamed into place. The manifest rename is the commit
// point (manifest-last): a crash anywhere before it leaves the previous
// generation untouched; a crash after it leaves the new generation fully
// readable. Entry files are immutable once referenced — a re-saved key
// gets a fresh generation-stamped file — so older manifests always
// describe intact data.
//
// # Fallback
//
// Open walks the manifests newest-first and verifies each candidate
// generation completely: the manifest's own footer, then every listed
// entry's footer and SHA-256. The first generation that checks out wins;
// corrupt or torn newer generations are counted (FellBack, the
// checkpoint.fallback counter) and skipped, so a damaged newest
// checkpoint degrades the resume point instead of failing the run.
//
// # Fault sites
//
//	checkpoint.save             before any write (a fired error aborts the save cleanly)
//	checkpoint.save.prepublish  after all bytes are on disk, before the manifest rename
//	checkpoint.save.postpublish after the manifest rename (crash-after-commit)
//	checkpoint.load             entry load entry point
//	checkpoint.load.read        entry read stream (torn/partial reads)
package checkpoint

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/persist"
)

// FormatVersion versions the manifest schema; readers reject others.
const FormatVersion = 1

// manifestPrefix names generation manifests: MANIFEST-%06d.json.
const manifestPrefix = "MANIFEST-"

// Meta binds a store to one experiment run. Resuming with a different
// scale or seed would silently mix incompatible state, so Open refuses.
type Meta struct {
	Scale string `json:"scale"`
	Seed  uint64 `json:"seed"`
}

// EntryRef locates and pins one entry of a generation.
type EntryRef struct {
	File   string `json:"file"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// manifest is one generation's sealed JSON index.
type manifest struct {
	FormatVersion int                 `json:"format_version"`
	Generation    int                 `json:"generation"`
	Meta          Meta                `json:"meta"`
	Entries       map[string]EntryRef `json:"entries"`
}

// Errors callers branch on.
var (
	// ErrMetaMismatch: the directory holds checkpoints of a different
	// (scale, seed) run.
	ErrMetaMismatch = errors.New("checkpoint: store belongs to a different run")
	// ErrNotFound: the key has no entry in the loaded generation.
	ErrNotFound = errors.New("checkpoint: no such entry")
)

// Store is a generation-versioned checkpoint directory. All methods are
// safe for concurrent use (the extraction phase saves from pool workers).
type Store struct {
	dir  string
	meta Meta

	mu       sync.Mutex
	gen      int // latest good generation (0 = empty store)
	entries  map[string]EntryRef
	fellBack int // corrupt generations skipped at Open
}

// Open loads (or initializes) a checkpoint directory for the run
// described by meta. It walks existing generation manifests newest-first
// and adopts the first one that verifies completely; corrupt newer
// generations are skipped and counted. An empty directory yields an
// empty store at generation 0.
func Open(dir string, meta Meta) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{dir: dir, meta: meta, entries: make(map[string]EntryRef)}

	names, err := manifestNames(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names { // newest first
		m, err := readManifest(filepath.Join(dir, name))
		if err == nil {
			err = s.verifyGeneration(m)
		}
		if err != nil {
			s.fellBack++
			obs.Inc("checkpoint.fallback")
			continue
		}
		if m.Meta != meta {
			return nil, fmt.Errorf("%w: dir holds scale=%q seed=%d, run wants scale=%q seed=%d",
				ErrMetaMismatch, m.Meta.Scale, m.Meta.Seed, meta.Scale, meta.Seed)
		}
		s.gen = m.Generation
		s.entries = m.Entries
		if s.entries == nil {
			s.entries = make(map[string]EntryRef)
		}
		break
	}
	return s, nil
}

// manifestNames lists generation manifests newest-first.
func manifestNames(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, de := range des {
		n := de.Name()
		if strings.HasPrefix(n, manifestPrefix) && strings.HasSuffix(n, ".json") {
			names = append(names, n)
		}
	}
	// Zero-padded generation numbers sort lexically; newest first.
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names, nil
}

// readManifest reads and verifies one sealed manifest file.
func readManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := persist.Unseal(data)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest JSON: %v", persist.ErrCorrupt, err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("checkpoint: manifest format %d (want %d)", m.FormatVersion, FormatVersion)
	}
	return &m, nil
}

// verifyGeneration checks every entry a manifest references: presence,
// size, integrity footer, and the manifest-pinned SHA-256.
func (s *Store) verifyGeneration(m *manifest) error {
	for key, ref := range m.Entries {
		data, err := os.ReadFile(filepath.Join(s.dir, ref.File))
		if err != nil {
			return fmt.Errorf("checkpoint: entry %q: %w", key, err)
		}
		if err := verifyEntry(data, ref); err != nil {
			return fmt.Errorf("checkpoint: entry %q (%s): %w", key, ref.File, err)
		}
	}
	return nil
}

// verifyEntry checks one entry image against its manifest ref.
func verifyEntry(data []byte, ref EntryRef) error {
	if int64(len(data)) != ref.Bytes {
		return fmt.Errorf("%w: %d bytes on disk, manifest says %d", persist.ErrCorrupt, len(data), ref.Bytes)
	}
	if _, err := persist.Unseal(data); err != nil {
		return err
	}
	if sha256Hex(data) != ref.SHA256 {
		return fmt.Errorf("%w: SHA-256 does not match manifest", persist.ErrCorrupt)
	}
	return nil
}

// Generation returns the loaded (or last published) generation number; 0
// means the store is empty.
func (s *Store) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Len returns the number of entries in the current generation.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// FellBack reports how many corrupt newer generations Open skipped.
func (s *Store) FellBack() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fellBack
}

// Keys returns the sorted entry keys of the current generation.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Has reports whether the current generation holds an entry for key.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Load reads, verifies, and gob-decodes the entry for key into v (a
// pointer). Integrity failures return a wrapped persist.ErrCorrupt —
// callers treat any Load error as a cache miss and recompute; generation
// fallback happens at Open.
func (s *Store) Load(key string, v any) error {
	sp := obs.StartSpan("checkpoint.load")
	defer sp.End()
	sp.SetLabel("key", key)
	if err := faultinject.At("checkpoint.load"); err != nil {
		obs.Inc("checkpoint.load.error")
		return err
	}
	s.mu.Lock()
	ref, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	f, err := os.Open(filepath.Join(s.dir, ref.File))
	if err != nil {
		obs.Inc("checkpoint.load.error")
		return fmt.Errorf("checkpoint: entry %q: %w", key, err)
	}
	defer f.Close()
	data, err := io.ReadAll(faultinject.Reader("checkpoint.load.read", bufio.NewReader(f)))
	if err != nil {
		obs.Inc("checkpoint.load.error")
		return fmt.Errorf("checkpoint: entry %q: %w", key, err)
	}
	if err := verifyEntry(data, ref); err != nil {
		obs.Inc("checkpoint.load.error")
		return fmt.Errorf("checkpoint: entry %q: %w", key, err)
	}
	if err := persist.UnmarshalSealed(data, v); err != nil {
		obs.Inc("checkpoint.load.error")
		return fmt.Errorf("checkpoint: entry %q: %w", key, err)
	}
	obs.Inc("checkpoint.load")
	obs.Add("checkpoint.load.bytes", int64(len(data)))
	return nil
}

// Save gob-encodes v, seals it, and publishes it under key as a new
// generation. The sequence is entry-file-first, manifest-last: the entry
// is written and renamed, then a manifest listing the whole new
// generation is written and renamed — that final rename is the commit
// point. A crash (or injected fault) at any earlier moment leaves the
// previous generation authoritative; a fired checkpoint.save or
// checkpoint.save.prepublish error aborts the save without corrupting
// anything, and the caller's run continues uncheckpointed.
func (s *Store) Save(key string, v any) error {
	sp := obs.StartSpan("checkpoint.save")
	defer sp.End()
	sp.SetLabel("key", key)
	if err := faultinject.At("checkpoint.save"); err != nil {
		obs.Inc("checkpoint.save.error")
		return err
	}
	data, err := persist.MarshalSealed(v)
	if err != nil {
		obs.Inc("checkpoint.save.error")
		return fmt.Errorf("checkpoint: encode %q: %w", key, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.gen + 1
	file := fmt.Sprintf("%s.g%06d.ckpt", sanitizeKey(key), gen)
	if err := persist.WriteFileAtomic(filepath.Join(s.dir, file), data, ""); err != nil {
		obs.Inc("checkpoint.save.error")
		return fmt.Errorf("checkpoint: entry %q: %w", key, err)
	}

	entries := make(map[string]EntryRef, len(s.entries)+1)
	for k, r := range s.entries {
		entries[k] = r
	}
	entries[key] = EntryRef{File: file, Bytes: int64(len(data)), SHA256: sha256Hex(data)}
	mdata, err := json.MarshalIndent(&manifest{
		FormatVersion: FormatVersion,
		Generation:    gen,
		Meta:          s.meta,
		Entries:       entries,
	}, "", "  ")
	if err != nil {
		obs.Inc("checkpoint.save.error")
		return fmt.Errorf("checkpoint: manifest: %w", err)
	}
	mpath := filepath.Join(s.dir, fmt.Sprintf("%s%06d.json", manifestPrefix, gen))
	// The prepublish fault site sits inside the atomic write, after the
	// sealed manifest bytes are complete but before the rename — firing a
	// panic there is the crash-before-commit the kill-and-resume suite
	// schedules.
	if err := persist.WriteFileAtomic(mpath, persist.Seal(mdata), "checkpoint.save.prepublish"); err != nil {
		obs.Inc("checkpoint.save.error")
		return fmt.Errorf("checkpoint: manifest: %w", err)
	}
	// Commit happened; a fault here models dying right after it. Disturb
	// (not At): there is no way to report an error that un-publishes.
	faultinject.Disturb("checkpoint.save.postpublish")
	s.gen = gen
	s.entries = entries
	obs.Inc("checkpoint.save")
	obs.Add("checkpoint.save.bytes", int64(len(data)))
	return nil
}

// Prune removes all but the newest keep generations: older manifests are
// deleted first (newest-first ordering is never violated on disk), then
// entry files no surviving manifest references. keep < 1 is a no-op.
func (s *Store) Prune(keep int) error {
	if keep < 1 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names, err := manifestNames(s.dir)
	if err != nil {
		return err
	}
	if len(names) <= keep {
		return nil
	}
	referenced := make(map[string]bool)
	for _, name := range names[:keep] {
		m, err := readManifest(filepath.Join(s.dir, name))
		if err != nil {
			continue // corrupt survivor: keep its files untouched
		}
		for _, ref := range m.Entries {
			referenced[ref.File] = true
		}
	}
	for _, name := range names[keep:] {
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
			return fmt.Errorf("checkpoint: prune: %w", err)
		}
	}
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: prune: %w", err)
	}
	for _, de := range des {
		n := de.Name()
		if strings.HasSuffix(n, ".ckpt") && !referenced[n] {
			if err := os.Remove(filepath.Join(s.dir, n)); err != nil {
				return fmt.Errorf("checkpoint: prune: %w", err)
			}
		}
	}
	return nil
}

// sha256Hex hashes a complete entry image for the manifest pin.
func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// sanitizeKey maps an entry key to a safe file-name stem.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, key)
}

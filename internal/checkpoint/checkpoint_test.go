package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/persist"
)

type payload struct {
	Name string
	Vals []float64
}

var testMeta = Meta{Scale: "tiny", Seed: 42}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, testMeta)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestRoundTripAndGenerations(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if s.Generation() != 0 || s.Len() != 0 {
		t.Fatalf("fresh store: gen=%d len=%d", s.Generation(), s.Len())
	}
	if err := s.Save("alpha", &payload{Name: "a", Vals: []float64{1.5, -2.25}}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := s.Save("beta", &payload{Name: "b", Vals: []float64{3}}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if s.Generation() != 2 || s.Len() != 2 {
		t.Fatalf("after two saves: gen=%d len=%d", s.Generation(), s.Len())
	}

	// Reopen: the newest generation carries both entries.
	s2 := openStore(t, dir)
	if s2.Generation() != 2 || s2.Len() != 2 || s2.FellBack() != 0 {
		t.Fatalf("reopened: gen=%d len=%d fellBack=%d", s2.Generation(), s2.Len(), s2.FellBack())
	}
	var got payload
	if err := s2.Load("alpha", &got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != "a" || len(got.Vals) != 2 || got.Vals[0] != 1.5 || got.Vals[1] != -2.25 {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	// Re-saving a key makes a new generation; the old entry file stays.
	if err := s2.Save("alpha", &payload{Name: "a2"}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s3 := openStore(t, dir)
	if s3.Generation() != 3 {
		t.Fatalf("gen after re-save: %d", s3.Generation())
	}
	if err := s3.Load("alpha", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "a2" {
		t.Fatalf("re-saved key loaded stale value: %+v", got)
	}
}

func TestLoadMissingKey(t *testing.T) {
	s := openStore(t, t.TempDir())
	var got payload
	if err := s.Load("nope", &got); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if s.Has("nope") {
		t.Fatal("Has reported a missing key")
	}
}

func TestMetaMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Save("k", &payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Meta{Scale: "tiny", Seed: 7}); !errors.Is(err, ErrMetaMismatch) {
		t.Fatalf("seed mismatch: %v", err)
	}
	if _, err := Open(dir, Meta{Scale: "small", Seed: 42}); !errors.Is(err, ErrMetaMismatch) {
		t.Fatalf("scale mismatch: %v", err)
	}
}

// corruptNewest flips a byte in the newest file matching pattern.
func corruptNewest(t *testing.T, dir, pattern string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil || len(names) == 0 {
		t.Fatalf("glob %s: %v (%d matches)", pattern, err, len(names))
	}
	path := names[len(names)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFallbackOnCorruptNewestManifest(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Save("k", &payload{Name: "gen1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("k", &payload{Name: "gen2"}); err != nil {
		t.Fatal(err)
	}
	corruptNewest(t, dir, "MANIFEST-000002.json")

	s2 := openStore(t, dir)
	if s2.FellBack() != 1 {
		t.Fatalf("fellBack=%d, want 1", s2.FellBack())
	}
	if s2.Generation() != 1 {
		t.Fatalf("fell back to gen %d, want 1", s2.Generation())
	}
	var got payload
	if err := s2.Load("k", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "gen1" {
		t.Fatalf("fallback loaded %q, want gen1", got.Name)
	}
}

func TestFallbackOnCorruptNewestEntry(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Save("k", &payload{Name: "gen1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("k", &payload{Name: "gen2"}); err != nil {
		t.Fatal(err)
	}
	// Damage generation 2's entry file; its manifest is intact, but
	// verifyGeneration must reject the generation and fall back.
	corruptNewest(t, dir, "k.g000002.ckpt")

	s2 := openStore(t, dir)
	if s2.FellBack() != 1 || s2.Generation() != 1 {
		t.Fatalf("fellBack=%d gen=%d, want 1/1", s2.FellBack(), s2.Generation())
	}
	var got payload
	if err := s2.Load("k", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "gen1" {
		t.Fatalf("fallback loaded %q", got.Name)
	}
}

func TestTornManifestTailFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Save("k", &payload{Name: "gen1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("k", &payload{Name: "gen2"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "MANIFEST-000002.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	if s2.FellBack() != 1 || s2.Generation() != 1 {
		t.Fatalf("fellBack=%d gen=%d, want 1/1", s2.FellBack(), s2.Generation())
	}
}

func TestCrashBeforePublishLeavesPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Save("k", &payload{Name: "gen1"}); err != nil {
		t.Fatal(err)
	}

	plan, err := faultinject.ParsePlan("seed=1; checkpoint.save.prepublish:panic:every=1,count=1")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Enable(plan)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("prepublish panic did not fire")
			}
		}()
		_ = s.Save("k", &payload{Name: "gen2"})
	}()
	restore()

	// The process "died" before the manifest rename: a fresh Open must see
	// generation 1 with no fallback (the torn state is invisible — only a
	// stray .tmp and an unreferenced entry file remain).
	s2 := openStore(t, dir)
	if s2.Generation() != 1 || s2.FellBack() != 0 {
		t.Fatalf("gen=%d fellBack=%d, want 1/0", s2.Generation(), s2.FellBack())
	}
	var got payload
	if err := s2.Load("k", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "gen1" {
		t.Fatalf("loaded %q, want gen1", got.Name)
	}
}

func TestCrashAfterPublishKeepsNewGeneration(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Save("k", &payload{Name: "gen1"}); err != nil {
		t.Fatal(err)
	}

	plan, err := faultinject.ParsePlan("seed=1; checkpoint.save.postpublish:panic:every=1,count=1")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Enable(plan)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("postpublish panic did not fire")
			}
		}()
		_ = s.Save("k", &payload{Name: "gen2"})
	}()
	restore()

	// The manifest rename had already happened: the new generation is the
	// durable one.
	s2 := openStore(t, dir)
	if s2.Generation() != 2 || s2.FellBack() != 0 {
		t.Fatalf("gen=%d fellBack=%d, want 2/0", s2.Generation(), s2.FellBack())
	}
	var got payload
	if err := s2.Load("k", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "gen2" {
		t.Fatalf("loaded %q, want gen2", got.Name)
	}
}

func TestSaveErrorFaultAbortsCleanly(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Save("k", &payload{Name: "gen1"}); err != nil {
		t.Fatal(err)
	}
	plan, err := faultinject.ParsePlan("seed=1; checkpoint.save:error:every=1,count=1")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Enable(plan)
	saveErr := s.Save("k", &payload{Name: "gen2"})
	restore()
	if saveErr == nil {
		t.Fatal("injected save error did not surface")
	}
	if s.Generation() != 1 {
		t.Fatalf("aborted save advanced the generation to %d", s.Generation())
	}
	var got payload
	if err := s.Load("k", &got); err != nil || got.Name != "gen1" {
		t.Fatalf("store damaged by aborted save: %v %+v", err, got)
	}
}

func TestLoadCorruptEntryIsErrCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Save("k", &payload{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the only generation's entry after Open verified it (mid-run
	// disk rot): Load must report ErrCorrupt, not decode garbage.
	corruptNewest(t, dir, "k.g000001.ckpt")
	var got payload
	err := s.Load("k", &got)
	if err == nil {
		t.Fatal("corrupt entry loaded")
	}
	if !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("error %v is not persist.ErrCorrupt", err)
	}
}

func TestPruneKeepsNewestGenerations(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for i, name := range []string{"a", "b", "a", "c"} {
		if err := s.Save(name, &payload{Name: name, Vals: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Prune(1); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var manifests, ckpts []string
	for _, de := range des {
		if strings.HasPrefix(de.Name(), manifestPrefix) {
			manifests = append(manifests, de.Name())
		}
		if strings.HasSuffix(de.Name(), ".ckpt") {
			ckpts = append(ckpts, de.Name())
		}
	}
	if len(manifests) != 1 || manifests[0] != "MANIFEST-000004.json" {
		t.Fatalf("manifests after prune: %v", manifests)
	}
	// Generation 4 references a.g000003 (re-save), b.g000002, c.g000004 —
	// the stale a.g000001 must be gone.
	if len(ckpts) != 3 {
		t.Fatalf("ckpt files after prune: %v", ckpts)
	}
	s2 := openStore(t, dir)
	if s2.Generation() != 4 || s2.Len() != 3 {
		t.Fatalf("pruned store: gen=%d len=%d", s2.Generation(), s2.Len())
	}
	for _, name := range []string{"a", "b", "c"} {
		var got payload
		if err := s2.Load(name, &got); err != nil {
			t.Fatalf("after prune, %s: %v", name, err)
		}
	}
}

func TestKeysSortedAndSanitizedFiles(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for _, k := range []string{"dba-v3-DBA-M1", "features/odd name", "baseline"} {
		if err := s.Save(k, &payload{Name: k}); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	want := []string{"baseline", "dba-v3-DBA-M1", "features/odd name"}
	if len(keys) != len(want) {
		t.Fatalf("keys: %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
	// The slashed/spaced key must live in a sanitized file but round-trip
	// under its original name.
	var got payload
	if err := s.Load("features/odd name", &got); err != nil || got.Name != "features/odd name" {
		t.Fatalf("sanitized key round trip: %v %+v", err, got)
	}
	des, _ := os.ReadDir(dir)
	for _, de := range des {
		if strings.ContainsAny(de.Name(), "/ ") {
			t.Fatalf("unsanitized file name %q", de.Name())
		}
	}
}

package lattice

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func twoSlotSausage() *Lattice {
	return FromSausage([]SausageSlot{
		{{Phone: 1, Prob: 0.7}, {Phone: 2, Prob: 0.3}},
		{{Phone: 3, Prob: 0.6}, {Phone: 4, Prob: 0.4}},
	})
}

func TestNBestOrderAndScores(t *testing.T) {
	l := twoSlotSausage()
	paths := l.NBest(4)
	if len(paths) != 4 {
		t.Fatalf("%d paths", len(paths))
	}
	// Best path must match BestPath and scores must be descending.
	best, bestScore := l.BestPath()
	if len(paths[0].Phones) != len(best) {
		t.Fatal("top path mismatch")
	}
	for i := range best {
		if paths[0].Phones[i] != best[i] {
			t.Fatal("top path differs from Viterbi")
		}
	}
	if math.Abs(paths[0].LogScore-bestScore) > 1e-12 {
		t.Fatalf("top score %v vs BestPath %v", paths[0].LogScore, bestScore)
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].LogScore > paths[i-1].LogScore+1e-12 {
			t.Fatal("N-best not in descending order")
		}
	}
	// Probabilities of the four paths sum to 1.
	var total float64
	for _, p := range paths {
		total += math.Exp(p.LogScore)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("path probabilities sum to %v", total)
	}
}

func TestNBestRequestMoreThanExists(t *testing.T) {
	l := FromString([]int{1, 2, 3})
	paths := l.NBest(10)
	if len(paths) != 1 {
		t.Fatalf("%d paths from single-path lattice", len(paths))
	}
	if l.NBest(0) != nil {
		t.Fatal("NBest(0) should be nil")
	}
}

func TestNBestDeduplicates(t *testing.T) {
	// Two distinct alignments producing the same phone string: phone 5
	// via node 1 or node 2.
	l := New(4)
	l.AddEdge(0, 1, 5, math.Log(0.5))
	l.AddEdge(0, 2, 5, math.Log(0.5))
	l.AddEdge(1, 3, 6, 0)
	l.AddEdge(2, 3, 6, 0)
	paths := l.NBest(5)
	if len(paths) != 1 {
		t.Fatalf("duplicate phone strings not merged: %d paths", len(paths))
	}
}

func TestPruneKeepsBestPath(t *testing.T) {
	l := twoSlotSausage()
	pruned := l.Prune(0.99) // threshold above every posterior
	if err := pruned.Validate(); err != nil {
		t.Fatal(err)
	}
	best, _ := pruned.BestPath()
	origBest, _ := l.BestPath()
	for i := range origBest {
		if best[i] != origBest[i] {
			t.Fatal("pruning lost the Viterbi path")
		}
	}
	if pruned.NumEdges() != 2 {
		t.Fatalf("expected only the best path, got %d edges", pruned.NumEdges())
	}
}

func TestPruneThresholdZeroKeepsAll(t *testing.T) {
	l := twoSlotSausage()
	pruned := l.Prune(0)
	if pruned.NumEdges() != l.NumEdges() {
		t.Fatalf("lossless prune dropped edges: %d vs %d", pruned.NumEdges(), l.NumEdges())
	}
}

func TestPrunePosteriorMass(t *testing.T) {
	// Pruning at 0.35 drops only the 0.3 edge.
	l := twoSlotSausage()
	pruned := l.Prune(0.35)
	if pruned.NumEdges() != 3 {
		t.Fatalf("%d edges after pruning", pruned.NumEdges())
	}
	if err := pruned.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOracleErrorRatePerfect(t *testing.T) {
	l := twoSlotSausage()
	// Reference 2,4 is in the lattice (the lowest-probability path).
	if per := l.OracleErrorRate([]int{2, 4}); per != 0 {
		t.Fatalf("oracle PER %v for in-lattice reference", per)
	}
}

func TestOracleErrorRateSubstitution(t *testing.T) {
	l := FromString([]int{1, 2, 3})
	if per := l.OracleErrorRate([]int{1, 9, 3}); math.Abs(per-1.0/3) > 1e-12 {
		t.Fatalf("oracle PER %v, want 1/3", per)
	}
}

func TestOracleErrorRateInsertionsAndDeletions(t *testing.T) {
	l := FromString([]int{1, 2})
	// Reference longer: one deletion needed.
	if per := l.OracleErrorRate([]int{1, 7, 2}); math.Abs(per-1.0/3) > 1e-12 {
		t.Fatalf("PER %v", per)
	}
	// Reference shorter: one insertion needed.
	if per := l.OracleErrorRate([]int{1}); math.Abs(per-1.0) > 1e-12 {
		t.Fatalf("PER %v", per)
	}
}

func TestOracleBelowOneBest(t *testing.T) {
	// A lattice whose 1-best is wrong but which contains the truth: the
	// oracle must beat the 1-best.
	l := FromSausage([]SausageSlot{
		{{Phone: 9, Prob: 0.6}, {Phone: 1, Prob: 0.4}},
		{{Phone: 2, Prob: 1.0}},
	})
	ref := []int{1, 2}
	best, _ := l.BestPath()
	oneBestErrors := 0
	for i := range ref {
		if best[i] != ref[i] {
			oneBestErrors++
		}
	}
	if oneBestErrors == 0 {
		t.Fatal("test setup wrong: 1-best should be wrong")
	}
	if per := l.OracleErrorRate(ref); per != 0 {
		t.Fatalf("oracle PER %v, truth is in the lattice", per)
	}
}

func TestOracleEmptyRef(t *testing.T) {
	l := FromString([]int{1})
	if l.OracleErrorRate(nil) != 0 {
		t.Fatal("empty reference should cost 0")
	}
}

func TestNBestLargeRandomLatticeConsistency(t *testing.T) {
	// On random sausages: NBest scores descend, and the top path always
	// matches Viterbi.
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		slots := make([]SausageSlot, 5+r.Intn(10))
		for i := range slots {
			var slot SausageSlot
			k := 2 + r.Intn(3)
			for j := 0; j < k; j++ {
				slot = append(slot, struct {
					Phone int
					Prob  float64
				}{Phone: r.Intn(20), Prob: r.Float64() + 0.01})
			}
			slots[i] = slot
		}
		l := FromSausage(slots)
		paths := l.NBest(8)
		if len(paths) == 0 {
			t.Fatal("no paths")
		}
		best, bestScore := l.BestPath()
		if math.Abs(paths[0].LogScore-bestScore) > 1e-9 {
			t.Fatalf("trial %d: top score %v vs Viterbi %v", trial, paths[0].LogScore, bestScore)
		}
		_ = best
		for i := 1; i < len(paths); i++ {
			if paths[i].LogScore > paths[i-1].LogScore+1e-9 {
				t.Fatalf("trial %d: scores not descending", trial)
			}
		}
	}
}

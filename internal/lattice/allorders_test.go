package lattice

import (
	"testing"

	"repro/internal/rng"
)

type emission struct {
	order int
	gram  [4]int
	n     int
	w     float64
}

func capture(gram []int, w float64, order int) emission {
	e := emission{order: order, n: len(gram), w: w}
	copy(e.gram[:], gram)
	return e
}

// TestExpectedNgramCountsAllMatchesPerOrder pins the single-pass
// ExpectedNgramCountsAll to the per-order ExpectedNgramCounts calls it
// replaces: same emissions, same order, bit-identical weights — the
// property ngram.Supervector's bit-identity rests on.
func TestExpectedNgramCountsAllMatchesPerOrder(t *testing.T) {
	root := rng.New(13)
	const maxN = 3
	for trial := 0; trial < 80; trial++ {
		r := root.Split(uint64(trial))
		l := randomSausage(r, 10, 4, 8)

		var want []emission
		for n := 1; n <= maxN; n++ {
			order := n
			l.ExpectedNgramCounts(n, func(g []int, w float64) {
				want = append(want, capture(g, w, order))
			})
		}
		var got []emission
		l.ExpectedNgramCountsAll(maxN, func(order int, g []int, w float64) {
			if len(g) != order {
				t.Fatalf("trial %d: gram len %d for order %d", trial, len(g), order)
			}
			got = append(got, capture(g, w, order))
		})

		if len(got) != len(want) {
			t.Fatalf("trial %d: %d emissions != %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d emission %d: got %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestExpectedNgramCountsAllPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for maxN < 1")
		}
	}()
	FromString([]int{1, 2}).ExpectedNgramCountsAll(0, func(int, []int, float64) {})
}

// BenchmarkExpectedCountsPerOrder vs ...SinglePass measure the win from
// hoisting forward–backward out of the per-order loop.
func benchLattice() *Lattice {
	return randomSausage(rng.New(21), 40, 4, 20)
}

func BenchmarkExpectedCountsPerOrder(b *testing.B) {
	l := benchLattice()
	b.ReportAllocs()
	var s float64
	for n := 0; n < b.N; n++ {
		for ord := 1; ord <= 3; ord++ {
			l.ExpectedNgramCounts(ord, func(_ []int, w float64) { s += w })
		}
	}
	benchSink = s
}

func BenchmarkExpectedCountsSinglePass(b *testing.B) {
	l := benchLattice()
	b.ReportAllocs()
	var s float64
	for n := 0; n < b.N; n++ {
		l.ExpectedNgramCountsAll(3, func(_ int, _ []int, w float64) { s += w })
	}
	benchSink = s
}

var benchSink float64

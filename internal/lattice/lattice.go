// Package lattice implements phone lattices and the expected N-gram
// counting of the paper's Section 2.2: given a lattice ℓ produced by a
// phone recognizer, the expected count of an N-gram h_i…h_{i+N−1} is the
// posterior-weighted sum over all length-N edge paths,
//
//	c_E(h_i,…,h_{i+N−1}|ℓ) = Σ_paths α(e_i)·Π_j w(e_j)·β(e_{i+N−1}) / P(ℓ),
//
// where α and β are forward/backward scores at the path's end nodes, w(e)
// the edge weight, and P(ℓ) the total lattice likelihood (the paper's
// Eq. 2 normalizes these into N-gram probabilities).
//
// Nodes are topologically ordered by construction: every edge must go from
// a lower-numbered node to a higher-numbered one; node 0 is the unique
// start and node NumNodes−1 the unique end. This matches the output of
// both the simulated decoders and the confusion-network generator of the
// acoustic path (a "sausage" is a linear lattice with parallel edges).
package lattice

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/faultinject"
)

// Edge is a scored phone arc.
type Edge struct {
	From, To int
	Phone    int
	// LogScore is the combined acoustic+LM log weight of the edge.
	LogScore float64
}

// Lattice is a DAG of phone edges over topologically ordered nodes.
type Lattice struct {
	NumNodes int
	Edges    []Edge
	// out[n] lists indices into Edges leaving node n.
	out [][]int32
	// in[n] lists indices into Edges entering node n.
	in [][]int32
}

// New returns an empty lattice with numNodes nodes.
func New(numNodes int) *Lattice {
	if numNodes < 2 {
		panic("lattice: need at least start and end nodes")
	}
	return &Lattice{
		NumNodes: numNodes,
		out:      make([][]int32, numNodes),
		in:       make([][]int32, numNodes),
	}
}

// AddEdge appends an edge; from must be < to (topological order).
func (l *Lattice) AddEdge(from, to, phone int, logScore float64) {
	if from < 0 || to >= l.NumNodes || from >= to {
		panic(fmt.Sprintf("lattice: bad edge %d→%d with %d nodes", from, to, l.NumNodes))
	}
	idx := int32(len(l.Edges))
	l.Edges = append(l.Edges, Edge{From: from, To: to, Phone: phone, LogScore: logScore})
	l.out[from] = append(l.out[from], idx)
	l.in[to] = append(l.in[to], idx)
}

// NumEdges returns the edge count.
func (l *Lattice) NumEdges() int { return len(l.Edges) }

// Validate checks connectivity invariants: every node except the start has
// incoming edges, every node except the end has outgoing edges.
func (l *Lattice) Validate() error {
	if len(l.Edges) == 0 {
		return fmt.Errorf("lattice: no edges")
	}
	for n := 0; n < l.NumNodes; n++ {
		if n != 0 && len(l.in[n]) == 0 {
			return fmt.Errorf("lattice: node %d unreachable", n)
		}
		if n != l.NumNodes-1 && len(l.out[n]) == 0 {
			return fmt.Errorf("lattice: node %d is a dead end", n)
		}
	}
	return nil
}

// logAdd returns log(exp(a)+exp(b)) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// ForwardBackward computes log forward scores α (by node), log backward
// scores β (by node), and the total log likelihood log P(ℓ).
func (l *Lattice) ForwardBackward() (alpha, beta []float64, logTotal float64) {
	alpha = make([]float64, l.NumNodes)
	beta = make([]float64, l.NumNodes)
	logTotal = l.forwardBackwardInto(alpha, beta)
	return alpha, beta, logTotal
}

// forwardBackwardInto runs forward–backward into caller-provided slices
// (each of length NumNodes). Every element is fully (re)initialized, so
// recycled scratch produces the same bits as fresh allocations.
func (l *Lattice) forwardBackwardInto(alpha, beta []float64) (logTotal float64) {
	negInf := math.Inf(-1)
	for i := range alpha {
		alpha[i] = negInf
		beta[i] = negInf
	}
	alpha[0] = 0
	for n := 0; n < l.NumNodes; n++ {
		if math.IsInf(alpha[n], -1) {
			continue
		}
		for _, ei := range l.out[n] {
			e := &l.Edges[ei]
			alpha[e.To] = logAdd(alpha[e.To], alpha[n]+e.LogScore)
		}
	}
	beta[l.NumNodes-1] = 0
	for n := l.NumNodes - 1; n >= 0; n-- {
		if math.IsInf(beta[n], -1) {
			continue
		}
		for _, ei := range l.in[n] {
			e := &l.Edges[ei]
			beta[e.From] = logAdd(beta[e.From], e.LogScore+beta[n])
		}
	}
	return alpha[l.NumNodes-1]
}

// EdgePosteriors returns ξ(e) = P(e ∈ path) for every edge.
func (l *Lattice) EdgePosteriors() []float64 {
	alpha, beta, logTotal := l.ForwardBackward()
	post := make([]float64, len(l.Edges))
	for i := range l.Edges {
		e := &l.Edges[i]
		post[i] = math.Exp(alpha[e.From] + e.LogScore + beta[e.To] - logTotal)
	}
	return post
}

// ExpectedNgramCounts walks all consecutive-edge paths of length n and
// reports each N-gram's expected count through emit. Unigram (n=1) counts
// are the edge posteriors; higher orders follow the path formula in the
// package comment. The emit callback receives the phone tuple (valid only
// during the call) and the path's posterior weight.
func (l *Lattice) ExpectedNgramCounts(n int, emit func(ngram []int, weight float64)) {
	if n < 1 {
		panic("lattice: n-gram order must be >= 1")
	}
	alpha, beta, logTotal := l.ForwardBackward()
	if math.IsInf(logTotal, -1) {
		return
	}
	l.countOrder(n, make([]int, n), alpha, beta, logTotal, emit)
}

// countOrder walks all consecutive-edge paths of length n given the
// precomputed forward/backward scores, filling the caller's gram scratch.
func (l *Lattice) countOrder(n int, gram []int, alpha, beta []float64, logTotal float64,
	emit func(ngram []int, weight float64)) {

	var walk func(depth int, node int, logAcc float64)
	walk = func(depth int, node int, logAcc float64) {
		if depth == n {
			emit(gram, math.Exp(logAcc+beta[node]-logTotal))
			return
		}
		for _, ei := range l.out[node] {
			e := &l.Edges[ei]
			gram[depth] = e.Phone
			walk(depth+1, e.To, logAcc+e.LogScore)
		}
	}
	for start := 0; start < l.NumNodes; start++ {
		if math.IsInf(alpha[start], -1) || len(l.out[start]) == 0 {
			continue
		}
		walk(0, start, alpha[start])
	}
}

// ExpectedNgramCountsAll emits the expected counts of every order
// 1..maxN from a single forward–backward pass — the supervector
// extraction hot path, which would otherwise recompute α/β once per
// order. Orders are emitted in ascending sequence, and within an order
// the walk visits paths in exactly the order ExpectedNgramCounts does,
// so any per-index or per-order accumulation over this stream is
// bit-identical to per-order calls. One gram scratch slice of length
// maxN is reused across all orders and callbacks (the tuple passed to
// emit is valid only during the call).
func (l *Lattice) ExpectedNgramCountsAll(maxN int, emit func(order int, ngram []int, weight float64)) {
	if maxN < 1 {
		panic("lattice: n-gram order must be >= 1")
	}
	fb := fbPool.Get().(*fbScratch)
	defer fbPool.Put(fb)
	alpha, beta := fb.grow(l.NumNodes)
	logTotal := l.forwardBackwardInto(alpha, beta)
	if math.IsInf(logTotal, -1) {
		return
	}
	gram := make([]int, maxN)
	for n := 1; n <= maxN; n++ {
		order := n
		l.countOrder(n, gram[:n], alpha, beta, logTotal, func(g []int, w float64) {
			emit(order, g, w)
		})
	}
}

// fbScratch holds pooled α/β slices for the extraction hot path, where
// forward–backward scratch would otherwise be reallocated per lattice.
type fbScratch struct{ alpha, beta []float64 }

func (fb *fbScratch) grow(n int) (alpha, beta []float64) {
	if cap(fb.alpha) < n {
		fb.alpha = make([]float64, n)
		fb.beta = make([]float64, n)
	}
	return fb.alpha[:n], fb.beta[:n]
}

var fbPool = sync.Pool{New: func() any { return new(fbScratch) }}

// BestPath returns the Viterbi (max-score) phone sequence through the
// lattice and its log score.
func (l *Lattice) BestPath() ([]int, float64) {
	negInf := math.Inf(-1)
	best := make([]float64, l.NumNodes)
	from := make([]int32, l.NumNodes)
	for i := range best {
		best[i] = negInf
		from[i] = -1
	}
	best[0] = 0
	for n := 0; n < l.NumNodes; n++ {
		if math.IsInf(best[n], -1) {
			continue
		}
		for _, ei := range l.out[n] {
			e := &l.Edges[ei]
			if v := best[n] + e.LogScore; v > best[e.To] {
				best[e.To] = v
				from[e.To] = ei
			}
		}
	}
	end := l.NumNodes - 1
	if math.IsInf(best[end], -1) {
		return nil, negInf
	}
	var rev []int
	for n := end; n != 0; {
		e := &l.Edges[from[n]]
		rev = append(rev, e.Phone)
		n = e.From
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, best[end]
}

// SausageSlot is one confusion-set slot: parallel phone hypotheses with
// probabilities (need not be normalized; the lattice normalizes globally).
type SausageSlot []struct {
	Phone int
	Prob  float64
}

// FromSausage builds a linear confusion-network lattice: slot i spans
// nodes i→i+1 with one edge per alternative, weighted by log probability.
// Zero-probability alternatives are dropped; a slot with no positive
// alternatives panics (it would disconnect the lattice). Trusted-input
// paths (the decoders) use this; untrusted input goes through
// ParseSausage.
func FromSausage(slots []SausageSlot) *Lattice {
	if len(slots) == 0 {
		panic("lattice: empty sausage")
	}
	l := New(len(slots) + 1)
	for i, slot := range slots {
		added := 0
		for _, alt := range slot {
			if alt.Prob <= 0 {
				continue
			}
			l.AddEdge(i, i+1, alt.Phone, math.Log(alt.Prob))
			added++
		}
		if added == 0 {
			panic(fmt.Sprintf("lattice: sausage slot %d has no positive-probability alternative", i))
		}
	}
	return l
}

// ParseSausage is the error-returning sausage builder for untrusted input
// (the serving API, fuzzers): malformed slots — NaN/Inf/negative
// probabilities, no positive alternative, out-of-range phones when
// numPhones > 0 — return an error instead of panicking. A valid sausage
// produces exactly the lattice FromSausage would.
func ParseSausage(slots []SausageSlot, numPhones int) (*Lattice, error) {
	// Chaos hook: an injected fault behaves like a malformed decode.
	if err := faultinject.At("lattice.sausage"); err != nil {
		return nil, err
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("lattice: empty sausage")
	}
	l := New(len(slots) + 1)
	for i, slot := range slots {
		added := 0
		for _, alt := range slot {
			if math.IsNaN(alt.Prob) || math.IsInf(alt.Prob, 0) || alt.Prob < 0 {
				return nil, fmt.Errorf("lattice: slot %d: invalid probability %v", i, alt.Prob)
			}
			if numPhones > 0 && (alt.Phone < 0 || alt.Phone >= numPhones) {
				return nil, fmt.Errorf("lattice: slot %d: phone %d outside inventory [0,%d)", i, alt.Phone, numPhones)
			}
			if alt.Prob == 0 {
				continue
			}
			l.AddEdge(i, i+1, alt.Phone, math.Log(alt.Prob))
			added++
		}
		if added == 0 {
			return nil, fmt.Errorf("lattice: slot %d has no positive-probability alternative", i)
		}
	}
	return l, nil
}

// FromString builds the degenerate single-path lattice of a 1-best phone
// sequence.
func FromString(phoneSeq []int) *Lattice {
	if len(phoneSeq) == 0 {
		panic("lattice: empty phone string")
	}
	l := New(len(phoneSeq) + 1)
	for i, p := range phoneSeq {
		l.AddEdge(i, i+1, p, 0)
	}
	return l
}

package lattice

import (
	"container/heap"
	"math"
	"sort"
)

// Path is one complete hypothesis through the lattice.
type Path struct {
	Phones   []int
	LogScore float64
}

// bestExitScores computes, per node, the best (max) log score of any
// suffix path from that node to the end node — the admissible A*
// heuristic for N-best search.
func (l *Lattice) bestExitScores() []float64 {
	h := make([]float64, l.NumNodes)
	for i := range h {
		h[i] = math.Inf(-1)
	}
	h[l.NumNodes-1] = 0
	for n := l.NumNodes - 1; n >= 0; n-- {
		for _, ei := range l.out[n] {
			e := &l.Edges[ei]
			if v := e.LogScore + h[e.To]; v > h[n] {
				h[n] = v
			}
		}
	}
	return h
}

// partial is a search node in the N-best A* expansion.
type partial struct {
	node     int
	logAcc   float64
	priority float64 // logAcc + heuristic(node)
	phones   []int
}

type partialHeap []*partial

func (h partialHeap) Len() int            { return len(h) }
func (h partialHeap) Less(i, j int) bool  { return h[i].priority > h[j].priority }
func (h partialHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *partialHeap) Push(x interface{}) { *h = append(*h, x.(*partial)) }
func (h *partialHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NBest returns up to n complete paths in descending score order using A*
// search with the exact suffix heuristic (so paths pop in score order and
// the first is the Viterbi path). Duplicate phone strings arising from
// distinct alignments are deduplicated.
func (l *Lattice) NBest(n int) []Path {
	if n <= 0 {
		return nil
	}
	hScores := l.bestExitScores()
	if math.IsInf(hScores[0], -1) {
		return nil
	}
	pq := &partialHeap{{node: 0, logAcc: 0, priority: hScores[0]}}
	var out []Path
	seen := make(map[string]bool)
	// Guard against exponential blowup on dense lattices.
	maxPops := 200 * n
	for pq.Len() > 0 && len(out) < n && maxPops > 0 {
		maxPops--
		p := heap.Pop(pq).(*partial)
		if p.node == l.NumNodes-1 {
			key := phoneKey(p.phones)
			if !seen[key] {
				seen[key] = true
				out = append(out, Path{Phones: p.phones, LogScore: p.logAcc})
			}
			continue
		}
		for _, ei := range l.out[p.node] {
			e := &l.Edges[ei]
			if math.IsInf(hScores[e.To], -1) {
				continue
			}
			acc := p.logAcc + e.LogScore
			phones := make([]int, len(p.phones)+1)
			copy(phones, p.phones)
			phones[len(p.phones)] = e.Phone
			heap.Push(pq, &partial{
				node:     e.To,
				logAcc:   acc,
				priority: acc + hScores[e.To],
				phones:   phones,
			})
		}
	}
	return out
}

func phoneKey(phones []int) string {
	b := make([]byte, 0, len(phones)*2)
	for _, p := range phones {
		b = append(b, byte(p), byte(p>>8))
	}
	return string(b)
}

// Prune returns a new lattice containing only edges whose posterior is at
// least minPosterior, plus the Viterbi-path edges (so the result is always
// connected). Nodes are renumbered compactly in topological order.
func (l *Lattice) Prune(minPosterior float64) *Lattice {
	post := l.EdgePosteriors()
	keep := make([]bool, len(l.Edges))
	for i, p := range post {
		if p >= minPosterior {
			keep[i] = true
		}
	}
	// Always keep the best path.
	for _, ei := range l.bestPathEdges() {
		keep[ei] = true
	}
	// Collect used nodes in order.
	usedNodes := make(map[int]bool)
	for i, k := range keep {
		if k {
			usedNodes[l.Edges[i].From] = true
			usedNodes[l.Edges[i].To] = true
		}
	}
	nodes := make([]int, 0, len(usedNodes))
	for n := range usedNodes {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	renum := make(map[int]int, len(nodes))
	for i, n := range nodes {
		renum[n] = i
	}
	out := New(len(nodes))
	for i, k := range keep {
		if !k {
			continue
		}
		e := l.Edges[i]
		out.AddEdge(renum[e.From], renum[e.To], e.Phone, e.LogScore)
	}
	return out
}

// bestPathEdges returns the edge indices of the Viterbi path.
func (l *Lattice) bestPathEdges() []int32 {
	negInf := math.Inf(-1)
	best := make([]float64, l.NumNodes)
	from := make([]int32, l.NumNodes)
	for i := range best {
		best[i] = negInf
		from[i] = -1
	}
	best[0] = 0
	for n := 0; n < l.NumNodes; n++ {
		if math.IsInf(best[n], -1) {
			continue
		}
		for _, ei := range l.out[n] {
			e := &l.Edges[ei]
			if v := best[n] + e.LogScore; v > best[e.To] {
				best[e.To] = v
				from[e.To] = ei
			}
		}
	}
	var edges []int32
	for n := l.NumNodes - 1; n != 0; {
		ei := from[n]
		if ei < 0 {
			return nil
		}
		edges = append(edges, ei)
		n = l.Edges[ei].From
	}
	return edges
}

// OracleErrorRate returns the minimal phone error rate achievable by any
// path through the lattice against the reference string — the standard
// lattice-quality diagnostic (a rich lattice has a much lower oracle PER
// than its 1-best PER). The rate is edits/len(ref).
func (l *Lattice) OracleErrorRate(ref []int) float64 {
	if len(ref) == 0 {
		return 0
	}
	const inf = math.MaxInt32
	m := len(ref)
	// dist[n][i]: minimal edits for some path from start to node n
	// consuming ref[:i].
	dist := make([][]int32, l.NumNodes)
	for n := range dist {
		dist[n] = make([]int32, m+1)
		for i := range dist[n] {
			dist[n][i] = inf
		}
	}
	// At the start node, consuming ref[:i] costs i deletions.
	for i := 0; i <= m; i++ {
		dist[0][i] = int32(i)
	}
	for n := 0; n < l.NumNodes; n++ {
		// Within-node closure: consuming one more ref phone is a deletion.
		for i := 1; i <= m; i++ {
			if dist[n][i-1] < inf && dist[n][i-1]+1 < dist[n][i] {
				dist[n][i] = dist[n][i-1] + 1
			}
		}
		for _, ei := range l.out[n] {
			e := &l.Edges[ei]
			for i := 0; i <= m; i++ {
				if dist[n][i] == inf {
					continue
				}
				// Insertion: hypothesis phone with no ref consumption.
				if dist[n][i]+1 < dist[e.To][i] {
					dist[e.To][i] = dist[n][i] + 1
				}
				// Match or substitution.
				if i < m {
					cost := int32(1)
					if e.Phone == ref[i] {
						cost = 0
					}
					if dist[n][i]+cost < dist[e.To][i+1] {
						dist[e.To][i+1] = dist[n][i] + cost
					}
				}
			}
		}
	}
	end := l.NumNodes - 1
	bestEdits := dist[end][m]
	if bestEdits == inf {
		return 1
	}
	return float64(bestEdits) / float64(m)
}

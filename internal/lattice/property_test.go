package lattice

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomSausage builds a random confusion network.
func randomSausage(r *rng.RNG, maxSlots, maxAlts, numPhones int) *Lattice {
	slots := make([]SausageSlot, r.Intn(maxSlots)+1)
	for i := range slots {
		var slot SausageSlot
		k := r.Intn(maxAlts) + 1
		for j := 0; j < k; j++ {
			slot = append(slot, struct {
				Phone int
				Prob  float64
			}{Phone: r.Intn(numPhones), Prob: r.Float64() + 0.01})
		}
		slots[i] = slot
	}
	return FromSausage(slots)
}

func TestPropertyUnigramMassEqualsSlots(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		l := randomSausage(rr, 12, 4, 10)
		var total float64
		l.ExpectedNgramCounts(1, func(_ []int, w float64) { total += w })
		return math.Abs(total-float64(l.NumNodes-1)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBigramMassEqualsInteriorSlots(t *testing.T) {
	// Total expected bigram mass in a sausage = #slots − 1 (one bigram
	// crossing per interior boundary, summed over the distribution).
	r := rng.New(2)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		l := randomSausage(rr, 12, 4, 10)
		slots := l.NumNodes - 1
		if slots < 2 {
			return true
		}
		var total float64
		l.ExpectedNgramCounts(2, func(_ []int, w float64) { total += w })
		return math.Abs(total-float64(slots-1)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertySlotPosteriorsNormalized(t *testing.T) {
	r := rng.New(3)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		l := randomSausage(rr, 10, 5, 8)
		post := l.EdgePosteriors()
		bySlot := map[int]float64{}
		for i, e := range l.Edges {
			bySlot[e.From] += post[i]
		}
		for _, s := range bySlot {
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPruneKeepsViterbiAndValidity(t *testing.T) {
	r := rng.New(4)
	f := func(seed uint16, thrRaw uint8) bool {
		rr := r.Split(uint64(seed))
		l := randomSausage(rr, 10, 4, 8)
		thr := float64(thrRaw) / 255
		pruned := l.Prune(thr)
		if pruned.Validate() != nil {
			return false
		}
		a, _ := l.BestPath()
		b, _ := pruned.BestPath()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return pruned.NumEdges() <= l.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOracleNeverWorseThanOneBest(t *testing.T) {
	r := rng.New(5)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		l := randomSausage(rr, 10, 4, 6)
		// Random reference of similar length.
		ref := make([]int, l.NumNodes-1)
		for i := range ref {
			ref[i] = rr.Intn(6)
		}
		best, _ := l.BestPath()
		// 1-best PER via alignment-free bound: count positional mismatches
		// is an upper bound on edit distance only for equal lengths, which
		// holds in a sausage.
		errs := 0
		for i := range ref {
			if best[i] != ref[i] {
				errs++
			}
		}
		oracle := l.OracleErrorRate(ref)
		return oracle <= float64(errs)/float64(len(ref))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNBestScoresConsistent(t *testing.T) {
	r := rng.New(6)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		l := randomSausage(rr, 8, 3, 6)
		paths := l.NBest(6)
		if len(paths) == 0 {
			return false
		}
		_, bestScore := l.BestPath()
		if math.Abs(paths[0].LogScore-bestScore) > 1e-9 {
			return false
		}
		for i := 1; i < len(paths); i++ {
			if paths[i].LogScore > paths[i-1].LogScore+1e-9 {
				return false
			}
		}
		// All path probabilities ≤ 1 and > 0 given normalized-by-FB mass.
		_, _, total := l.ForwardBackward()
		for _, p := range paths {
			if p.LogScore > total+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

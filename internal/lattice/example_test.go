package lattice_test

import (
	"fmt"

	"repro/internal/lattice"
)

// ExampleFromSausage builds a two-slot confusion network and reads its
// edge posteriors and expected bigram counts — the quantities the paper's
// Eq. 2 supervectors are made of.
func ExampleFromSausage() {
	l := lattice.FromSausage([]lattice.SausageSlot{
		{{Phone: 1, Prob: 0.7}, {Phone: 2, Prob: 0.3}},
		{{Phone: 3, Prob: 1.0}},
	})
	post := l.EdgePosteriors()
	fmt.Printf("P(edge 1)=%.2f P(edge 2)=%.2f\n", post[0], post[1])
	l.ExpectedNgramCounts(2, func(gram []int, w float64) {
		fmt.Printf("c(%d,%d)=%.2f\n", gram[0], gram[1], w)
	})
	// Output:
	// P(edge 1)=0.70 P(edge 2)=0.30
	// c(1,3)=0.70
	// c(2,3)=0.30
}

// ExampleLattice_NBest extracts ranked hypotheses from a lattice.
func ExampleLattice_NBest() {
	l := lattice.FromSausage([]lattice.SausageSlot{
		{{Phone: 1, Prob: 0.6}, {Phone: 2, Prob: 0.4}},
		{{Phone: 3, Prob: 0.9}, {Phone: 4, Prob: 0.1}},
	})
	for _, p := range l.NBest(2) {
		fmt.Println(p.Phones)
	}
	// Output:
	// [1 3]
	// [2 3]
}

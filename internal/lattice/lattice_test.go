package lattice

import (
	"math"
	"testing"
)

func TestFromStringBestPath(t *testing.T) {
	l := FromString([]int{4, 2, 7})
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	path, score := l.BestPath()
	if len(path) != 3 || path[0] != 4 || path[1] != 2 || path[2] != 7 {
		t.Fatalf("path = %v", path)
	}
	if score != 0 {
		t.Fatalf("score = %v", score)
	}
}

func TestForwardBackwardSinglePath(t *testing.T) {
	l := FromString([]int{1, 2})
	alpha, beta, total := l.ForwardBackward()
	if total != 0 {
		t.Fatalf("logTotal = %v", total)
	}
	if alpha[0] != 0 || beta[l.NumNodes-1] != 0 {
		t.Fatal("boundary conditions wrong")
	}
	// α(end) = total; β(start) = total.
	if alpha[l.NumNodes-1] != total || beta[0] != total {
		t.Fatal("alpha/beta inconsistent")
	}
}

func TestEdgePosteriorsDiamond(t *testing.T) {
	// Two parallel paths: phone 1 with weight 0.75, phone 2 with 0.25.
	l := New(2)
	l.AddEdge(0, 1, 1, math.Log(0.75))
	l.AddEdge(0, 1, 2, math.Log(0.25))
	post := l.EdgePosteriors()
	if math.Abs(post[0]-0.75) > 1e-12 || math.Abs(post[1]-0.25) > 1e-12 {
		t.Fatalf("posteriors = %v", post)
	}
}

func TestEdgePosteriorsSumPerSlice(t *testing.T) {
	// In a sausage, posteriors of each slot's parallel edges sum to 1.
	slots := []SausageSlot{
		{{Phone: 1, Prob: 0.6}, {Phone: 2, Prob: 0.4}},
		{{Phone: 3, Prob: 0.5}, {Phone: 4, Prob: 0.3}, {Phone: 5, Prob: 0.2}},
		{{Phone: 6, Prob: 1.0}},
	}
	l := FromSausage(slots)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	post := l.EdgePosteriors()
	bySlot := map[int]float64{}
	for i, e := range l.Edges {
		bySlot[e.From] += post[i]
	}
	for slot, sum := range bySlot {
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("slot %d posteriors sum to %v", slot, sum)
		}
	}
}

func TestUnigramCountsEqualEdgePosteriors(t *testing.T) {
	slots := []SausageSlot{
		{{Phone: 0, Prob: 0.7}, {Phone: 1, Prob: 0.3}},
		{{Phone: 0, Prob: 0.2}, {Phone: 2, Prob: 0.8}},
	}
	l := FromSausage(slots)
	counts := map[int]float64{}
	l.ExpectedNgramCounts(1, func(ng []int, w float64) {
		counts[ng[0]] += w
	})
	if math.Abs(counts[0]-0.9) > 1e-9 {
		t.Fatalf("count(0) = %v, want 0.9", counts[0])
	}
	if math.Abs(counts[1]-0.3) > 1e-9 || math.Abs(counts[2]-0.8) > 1e-9 {
		t.Fatalf("counts = %v", counts)
	}
	// Total unigram mass = number of slots.
	var total float64
	for _, v := range counts {
		total += v
	}
	if math.Abs(total-2) > 1e-9 {
		t.Fatalf("total unigram mass = %v", total)
	}
}

func TestBigramCountsSausageFactorize(t *testing.T) {
	// In a sausage, bigram expected counts factor into slot posteriors.
	slots := []SausageSlot{
		{{Phone: 1, Prob: 0.6}, {Phone: 2, Prob: 0.4}},
		{{Phone: 3, Prob: 0.9}, {Phone: 4, Prob: 0.1}},
	}
	l := FromSausage(slots)
	counts := map[[2]int]float64{}
	l.ExpectedNgramCounts(2, func(ng []int, w float64) {
		counts[[2]int{ng[0], ng[1]}] += w
	})
	want := map[[2]int]float64{
		{1, 3}: 0.54, {1, 4}: 0.06, {2, 3}: 0.36, {2, 4}: 0.04,
	}
	for k, v := range want {
		if math.Abs(counts[k]-v) > 1e-9 {
			t.Fatalf("count%v = %v, want %v", k, counts[k], v)
		}
	}
}

func TestTrigramCounts(t *testing.T) {
	l := FromString([]int{5, 6, 7, 8})
	counts := map[[3]int]float64{}
	l.ExpectedNgramCounts(3, func(ng []int, w float64) {
		counts[[3]int{ng[0], ng[1], ng[2]}] += w
	})
	if len(counts) != 2 {
		t.Fatalf("trigram count entries = %d", len(counts))
	}
	if math.Abs(counts[[3]int{5, 6, 7}]-1) > 1e-12 || math.Abs(counts[[3]int{6, 7, 8}]-1) > 1e-12 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestNonSausageLattice(t *testing.T) {
	// Branching lattice with unequal path lengths:
	//   0 →(a)→ 1 →(b)→ 3
	//   0 →(c)→ 2 →(d)→ 3, and 0→(e)→3 direct.
	l := New(4)
	l.AddEdge(0, 1, 10, math.Log(0.5))
	l.AddEdge(1, 3, 11, math.Log(1.0))
	l.AddEdge(0, 2, 12, math.Log(0.3))
	l.AddEdge(2, 3, 13, math.Log(1.0))
	l.AddEdge(0, 3, 14, math.Log(0.2))
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	_, _, total := l.ForwardBackward()
	if math.Abs(math.Exp(total)-1.0) > 1e-9 {
		t.Fatalf("total mass = %v", math.Exp(total))
	}
	post := l.EdgePosteriors()
	// Edge 0 (phone 10) lies on the 0.5 path.
	if math.Abs(post[0]-0.5) > 1e-9 || math.Abs(post[4]-0.2) > 1e-9 {
		t.Fatalf("posteriors = %v", post)
	}
	// Bigram counts exist only along 2-edge paths.
	counts := map[[2]int]float64{}
	l.ExpectedNgramCounts(2, func(ng []int, w float64) {
		counts[[2]int{ng[0], ng[1]}] += w
	})
	if math.Abs(counts[[2]int{10, 11}]-0.5) > 1e-9 {
		t.Fatalf("count(10,11) = %v", counts[[2]int{10, 11}])
	}
	if math.Abs(counts[[2]int{12, 13}]-0.3) > 1e-9 {
		t.Fatalf("count(12,13) = %v", counts[[2]int{12, 13}])
	}
	if len(counts) != 2 {
		t.Fatalf("unexpected bigrams: %v", counts)
	}
}

func TestBestPathPrefersHighWeight(t *testing.T) {
	l := New(3)
	l.AddEdge(0, 1, 1, math.Log(0.9))
	l.AddEdge(0, 1, 2, math.Log(0.1))
	l.AddEdge(1, 2, 3, math.Log(0.5))
	path, _ := l.BestPath()
	if len(path) != 2 || path[0] != 1 || path[1] != 3 {
		t.Fatalf("best path = %v", path)
	}
}

func TestValidateCatchesDeadEnds(t *testing.T) {
	l := New(3)
	l.AddEdge(0, 2, 1, 0)
	// Node 1 unreachable and dead-end.
	if l.Validate() == nil {
		t.Fatal("Validate accepted disconnected node")
	}
}

func TestAddEdgePanicsOnBackwardEdge(t *testing.T) {
	l := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge accepted backward edge")
		}
	}()
	l.AddEdge(2, 1, 0, 0)
}

func TestFromSausagePanicsOnEmptySlot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSausage accepted an all-zero slot")
		}
	}()
	FromSausage([]SausageSlot{{{Phone: 1, Prob: 0}}})
}

func TestUnnormalizedSausage(t *testing.T) {
	// Slot probabilities that do not sum to 1 still give normalized
	// posteriors after forward-backward.
	slots := []SausageSlot{
		{{Phone: 1, Prob: 3}, {Phone: 2, Prob: 1}},
	}
	l := FromSausage(slots)
	post := l.EdgePosteriors()
	if math.Abs(post[0]-0.75) > 1e-12 {
		t.Fatalf("unnormalized slot posterior = %v", post[0])
	}
}

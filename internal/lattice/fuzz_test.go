package lattice_test

import (
	"math"
	"testing"

	"repro/internal/lattice"
)

// decodeSausage maps fuzz bytes onto a sausage and a phone-inventory
// size. The encoding deliberately reaches every validation branch of
// ParseSausage: empty slots, out-of-range and negative phones, and
// NaN/±Inf/negative probabilities via reserved byte values.
func decodeSausage(data []byte) ([]lattice.SausageSlot, int) {
	if len(data) == 0 {
		return nil, 0
	}
	numPhones := int(data[0]%9) - 1 // -1..7; <=0 disables the range check
	data = data[1:]
	var slots []lattice.SausageSlot
	for len(data) >= 1 {
		nAlt := int(data[0] % 4) // 0 → empty slot (must be rejected)
		data = data[1:]
		var slot lattice.SausageSlot
		for a := 0; a < nAlt && len(data) >= 2; a++ {
			phone := int(int8(data[0]))
			var prob float64
			switch b := data[1]; b {
			case 255:
				prob = math.NaN()
			case 254:
				prob = math.Inf(1)
			case 253:
				prob = math.Inf(-1)
			case 252:
				prob = -1.5
			default:
				prob = float64(b) / 64
			}
			slot = append(slot, struct {
				Phone int
				Prob  float64
			}{Phone: phone, Prob: prob})
			data = data[2:]
		}
		slots = append(slots, slot)
	}
	return slots, numPhones
}

// FuzzParseSausage: the untrusted-input parser must never panic, and on
// success must hand back a connected lattice with a finite likelihood
// that matches what the trusted builder produces.
func FuzzParseSausage(f *testing.F) {
	// Valid two-slot sausage over a 5-phone inventory.
	f.Add([]byte{6, 2, 1, 64, 2, 32, 1, 3, 64})
	// Empty slot, NaN and Inf probabilities, negative phone.
	f.Add([]byte{6, 0})
	f.Add([]byte{6, 1, 1, 255})
	f.Add([]byte{6, 1, 1, 254, 1, 2, 253})
	f.Add([]byte{0, 1, 131, 64})
	// Zero-probability alternative alongside a live one.
	f.Add([]byte{3, 2, 1, 0, 2, 64})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		slots, numPhones := decodeSausage(data)
		l, err := lattice.ParseSausage(slots, numPhones)
		if err != nil {
			return
		}
		if verr := l.Validate(); verr != nil {
			t.Fatalf("accepted sausage fails Validate: %v", verr)
		}
		_, _, logTotal := l.ForwardBackward()
		if math.IsNaN(logTotal) || math.IsInf(logTotal, 1) {
			t.Fatalf("accepted sausage has log-likelihood %v", logTotal)
		}
		// A sausage ParseSausage accepts is by definition trusted input, so
		// FromSausage must build the identical lattice without panicking.
		l2 := lattice.FromSausage(slots)
		if l2.NumNodes != l.NumNodes || l2.NumEdges() != l.NumEdges() {
			t.Fatalf("ParseSausage built %d nodes/%d edges, FromSausage %d/%d",
				l.NumNodes, l.NumEdges(), l2.NumNodes, l2.NumEdges())
		}
		for i := range l.Edges {
			if l.Edges[i] != l2.Edges[i] {
				t.Fatalf("edge %d differs: %+v vs %+v", i, l.Edges[i], l2.Edges[i])
			}
		}
	})
}

// Package synthlang generates the synthetic 23-language closed set that
// stands in for the NIST LRE 2009 corpus (closed data gate — see
// DESIGN.md).
//
// Each language is a phonotactic first-order Markov model over the
// universal phone space: an initial distribution and a transition matrix,
// both drawn from Dirichlet distributions seeded per language. What makes
// phonotactic language recognition work in reality — and what DBA exploits
// — is that languages differ in their N-gram statistics while remaining
// confusable; we control that with a three-level mixture: a global base
// phonotactics (shared by all languages, keeping them confusable), a family
// model (shared by related-language pairs like Hindi/Urdu or
// Bosnian/Croatian, reproducing LRE09's notoriously hard clusters), and a
// language-specific component.
//
// Utterance realizations add the nuisance variability the paper leans on:
// per-speaker pronunciation substitution toward articulatorily adjacent
// phones, speech-rate scaling, and channel tags that the front-end decoder
// turns into condition-dependent error rates — the train/test mismatch that
// motivates DBA.
package synthlang

import (
	"fmt"
	"math"

	"repro/internal/phones"
	"repro/internal/rng"
)

// LanguageNames is the LRE09 closed-set list of 23 target languages.
var LanguageNames = []string{
	"amharic", "bosnian", "cantonese", "creole", "croatian",
	"dari", "english-am", "english-in", "farsi", "french",
	"georgian", "hausa", "hindi", "korean", "mandarin",
	"pashto", "portuguese", "russian", "spanish", "turkish",
	"ukrainian", "urdu", "vietnamese",
}

// families groups the notoriously confusable LRE09 pairs; languages in the
// same family share a family-level phonotactic component.
var families = map[string]string{
	"bosnian": "south-slavic", "croatian": "south-slavic",
	"hindi": "hindustani", "urdu": "hindustani",
	"dari": "persian", "farsi": "persian",
	"english-am": "english", "english-in": "english",
	"russian": "east-slavic", "ukrainian": "east-slavic",
	"cantonese": "chinese", "mandarin": "chinese",
}

// NumLanguages is the closed-set size (the LRE09 closed condition has 23
// target languages).
const NumLanguages = 23

// Language is a phonotactic Markov model over the universal phone space.
type Language struct {
	Index   int
	Name    string
	Family  string
	Initial []float64   // len UniversalSize
	Trans   [][]float64 // Trans[a][b] = P(b | a), rows sum to 1
}

// Config controls how distinct the synthetic languages are.
type Config struct {
	// BaseWeight is the mixture weight of the global base phonotactics;
	// higher values make languages more confusable. The remainder is split
	// between family and language components.
	BaseWeight float64
	// FamilyWeight is the weight of the family component for languages in
	// a family (added to BaseWeight; the rest is language-specific).
	FamilyWeight float64
	// Concentration of the language-specific Dirichlet draws; below 1
	// yields peaky, distinctive transitions.
	Concentration float64
	// SilenceProb is the probability mass steered toward the silence-class
	// phones in every row (pauses occur in all languages).
	SilenceProb float64
}

// DefaultConfig returns the calibration used for the experiments: languages
// share 35 % of their phonotactics globally, family pairs share another
// 25 %, and the rest is language-specific. The weights were calibrated so
// that the baseline PPRVSM system lands in the paper's EER regime (a few
// percent at 30 s, ~20 % at 3 s) at the corpus scales this repository runs.
func DefaultConfig() Config {
	return Config{
		BaseWeight:    0.35,
		FamilyWeight:  0.25,
		Concentration: 0.22,
		SilenceProb:   0.05,
	}
}

// Generate builds the closed set of languages deterministically from seed.
func Generate(cfg Config, seed uint64) []*Language {
	root := rng.New(seed)
	inv := phones.Universal()
	n := phones.UniversalSize

	// Identify silence-class phones; they get special handling so every
	// language pauses the same way.
	isSil := make([]bool, n)
	for _, p := range inv {
		if p.Class == phones.Silence {
			isSil[p.ID] = true
		}
	}

	drawModel := func(r *rng.RNG, conc float64) (init []float64, trans [][]float64) {
		init = make([]float64, n)
		r.Dirichlet(conc, init)
		trans = make([][]float64, n)
		for a := 0; a < n; a++ {
			row := make([]float64, n)
			r.Dirichlet(conc, row)
			trans[a] = row
		}
		return init, trans
	}

	baseInit, baseTrans := drawModel(root.SplitString("base"), 1.0)

	famModels := make(map[string]struct {
		init  []float64
		trans [][]float64
	})
	for _, fam := range families {
		if _, ok := famModels[fam]; ok {
			continue
		}
		i, tr := drawModel(root.SplitString("family:"+fam), 0.6)
		famModels[fam] = struct {
			init  []float64
			trans [][]float64
		}{i, tr}
	}

	langs := make([]*Language, 0, NumLanguages)
	for idx, name := range LanguageNames {
		r := root.SplitString("lang:" + name)
		ownInit, ownTrans := drawModel(r, cfg.Concentration)
		fam := families[name]

		bw := cfg.BaseWeight
		fw := 0.0
		if fam != "" {
			fw = cfg.FamilyWeight
		}
		lw := 1 - bw - fw

		mix := func(a, b, c []float64) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = bw*a[i] + lw*b[i]
				if c != nil {
					out[i] += fw * c[i]
				}
			}
			return out
		}

		var famInit []float64
		var famTrans [][]float64
		if fam != "" {
			famInit = famModels[fam].init
			famTrans = famModels[fam].trans
		}

		lang := &Language{
			Index:   idx,
			Name:    name,
			Family:  fam,
			Initial: mix(baseInit, ownInit, famInit),
			Trans:   make([][]float64, n),
		}
		for a := 0; a < n; a++ {
			var fr []float64
			if famTrans != nil {
				fr = famTrans[a]
			}
			row := mix(baseTrans[a], ownTrans[a], fr)
			// Redistribute mass: silence-class targets get exactly
			// SilenceProb of each row, uniformly, in every language.
			var silMass, spMass float64
			silCount := 0
			for b := 0; b < n; b++ {
				if isSil[b] {
					silMass += row[b]
					row[b] = 0
					silCount++
				} else {
					spMass += row[b]
				}
			}
			_ = silMass
			if spMass > 0 {
				scale := (1 - cfg.SilenceProb) / spMass
				for b := 0; b < n; b++ {
					row[b] *= scale
				}
			}
			for b := 0; b < n; b++ {
				if isSil[b] {
					row[b] = cfg.SilenceProb / float64(silCount)
				}
			}
			lang.Trans[a] = row
		}
		langs = append(langs, lang)
	}
	return langs
}

// Validate checks stochasticity invariants of the model.
func (l *Language) Validate() error {
	if len(l.Initial) != phones.UniversalSize {
		return fmt.Errorf("synthlang: %s initial has %d entries", l.Name, len(l.Initial))
	}
	var s float64
	for _, p := range l.Initial {
		if p < 0 {
			return fmt.Errorf("synthlang: %s negative initial prob", l.Name)
		}
		s += p
	}
	if s < 0.999 || s > 1.001 {
		return fmt.Errorf("synthlang: %s initial sums to %v", l.Name, s)
	}
	for a, row := range l.Trans {
		var rs float64
		for _, p := range row {
			if p < 0 {
				return fmt.Errorf("synthlang: %s negative transition prob in row %d", l.Name, a)
			}
			rs += p
		}
		if rs < 0.999 || rs > 1.001 {
			return fmt.Errorf("synthlang: %s row %d sums to %v", l.Name, a, rs)
		}
	}
	return nil
}

// Segment is one realized phone with its duration.
type Segment struct {
	Phone int // universal phone ID
	DurMs float64
}

// Utterance is a realized phone string with speaker/channel metadata.
type Utterance struct {
	Language int // language index within the closed set
	Segments []Segment
	Speaker  SpeakerProfile
	Channel  Channel
	// NominalDurS is the duration tier (3, 10 or 30 seconds).
	NominalDurS float64
}

// TotalDurMs returns the realized total duration.
func (u *Utterance) TotalDurMs() float64 {
	var t float64
	for _, s := range u.Segments {
		t += s.DurMs
	}
	return t
}

// PhoneIDs returns the bare universal phone sequence.
func (u *Utterance) PhoneIDs() []int {
	out := make([]int, len(u.Segments))
	for i, s := range u.Segments {
		out[i] = s.Phone
	}
	return out
}

// SpeakerProfile captures per-speaker nuisance variation.
type SpeakerProfile struct {
	ID int
	// Rate scales phone durations (0.8 = fast talker).
	Rate float64
	// SubstitutionProb is the chance a phone is realized as an
	// articulatorily adjacent one (idiolect/pronunciation variation).
	SubstitutionProb float64
	// PitchHz is the F0 used by waveform synthesis.
	PitchHz float64
}

// Channel identifies a recording condition. The front-end decoders key
// their error processes on it; the paper's train/test mismatch (different
// collections: CallFriend/VOA vs LRE09 test) is modeled by drawing train
// and test utterances from different channel pools.
type Channel int

// Channel conditions. Train pools draw mostly CTS (conversational
// telephone speech); the LRE09 test pool mixes CTS with VOA broadcast
// audio, which is the paper's domain mismatch.
const (
	ChannelCTSClean Channel = iota // clean telephone
	ChannelCTSNoisy                // noisy telephone
	ChannelVOA                     // broadcast (narrowband-ified), the mismatch source
	NumChannels
)

func (c Channel) String() string {
	switch c {
	case ChannelCTSClean:
		return "cts-clean"
	case ChannelCTSNoisy:
		return "cts-noisy"
	case ChannelVOA:
		return "voa"
	}
	return fmt.Sprintf("Channel(%d)", int(c))
}

// NewSpeaker draws a speaker profile.
func NewSpeaker(r *rng.RNG, id int) SpeakerProfile {
	return SpeakerProfile{
		ID:               id,
		Rate:             clamp(r.NormMuSigma(1.0, 0.12), 0.7, 1.4),
		SubstitutionProb: clamp(r.NormMuSigma(0.04, 0.02), 0, 0.1),
		PitchHz:          clamp(r.NormMuSigma(160, 40), 80, 300),
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// neighborSubstitution returns an articulatorily adjacent phone of the same
// class (for pronunciation variation), or the phone itself if no neighbor
// exists.
func neighborSubstitution(r *rng.RNG, inv []phones.Phone, id int) int {
	c := inv[id].Class
	// Collect same-class candidates, weight by inverse F2 distance.
	var cands []int
	var weights []float64
	for _, p := range inv {
		if p.Class == c && p.ID != id {
			cands = append(cands, p.ID)
			d := p.F2 - inv[id].F2
			weights = append(weights, 1/(1+d*d/1e4))
		}
	}
	if len(cands) == 0 {
		return id
	}
	return cands[r.Categorical(weights)]
}

// Sample realizes an utterance of the given nominal duration (seconds) in
// the language. Durations are drawn per phone from the inventory's duration
// model scaled by the speaker rate; sampling stops when the accumulated
// duration reaches the nominal target.
func (l *Language) Sample(r *rng.RNG, nominalDurS float64, spk SpeakerProfile, ch Channel) *Utterance {
	inv := phones.Universal()
	u := &Utterance{
		Language:    l.Index,
		Speaker:     spk,
		Channel:     ch,
		NominalDurS: nominalDurS,
	}
	targetMs := nominalDurS * 1000
	var elapsed float64
	cur := r.Categorical(l.Initial)
	for elapsed < targetMs {
		realized := cur
		if inv[cur].Class != phones.Silence && r.Bernoulli(spk.SubstitutionProb) {
			realized = neighborSubstitution(r, inv, cur)
		}
		p := inv[realized]
		dur := clamp(r.NormMuSigma(p.MeanDurMs, p.StdDurMs), 20, 400) * spk.Rate
		u.Segments = append(u.Segments, Segment{Phone: realized, DurMs: dur})
		elapsed += dur
		cur = r.Categorical(l.Trans[cur])
	}
	return u
}

// KLDivergence returns the KL divergence between the stationary bigram
// statistics of two languages, a diagnostic for closed-set difficulty.
func KLDivergence(a, b *Language) float64 {
	var kl float64
	n := phones.UniversalSize
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pa := a.Initial[i] * a.Trans[i][j]
			pb := b.Initial[i] * b.Trans[i][j]
			if pa > 1e-15 && pb > 1e-15 {
				kl += pa * math.Log(pa/pb)
			}
		}
	}
	return kl
}

package synthlang

import (
	"math"
	"testing"

	"repro/internal/phones"
	"repro/internal/rng"
)

func TestGenerateClosedSet(t *testing.T) {
	langs := Generate(DefaultConfig(), 42)
	if len(langs) != NumLanguages || NumLanguages != 23 {
		t.Fatalf("got %d languages, want 23", len(langs))
	}
	for i, l := range langs {
		if l.Index != i {
			t.Fatalf("language %s has index %d at position %d", l.Name, l.Index, i)
		}
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(), 42)
	b := Generate(DefaultConfig(), 42)
	for i := range a {
		for j := range a[i].Initial {
			if a[i].Initial[j] != b[i].Initial[j] {
				t.Fatal("same seed produced different languages")
			}
		}
	}
}

func TestFamilies(t *testing.T) {
	langs := Generate(DefaultConfig(), 42)
	byName := map[string]*Language{}
	for _, l := range langs {
		byName[l.Name] = l
	}
	if byName["bosnian"].Family != "south-slavic" || byName["croatian"].Family != "south-slavic" {
		t.Fatal("bosnian/croatian not in the same family")
	}
	if byName["amharic"].Family != "" {
		t.Fatal("amharic should have no family")
	}
	// Family pairs should be phonotactically closer than unrelated pairs.
	related := KLDivergence(byName["hindi"], byName["urdu"])
	unrelated := KLDivergence(byName["hindi"], byName["korean"])
	if related >= unrelated {
		t.Fatalf("hindi↔urdu KL (%v) not smaller than hindi↔korean (%v)", related, unrelated)
	}
}

func TestLanguagesAreDistinct(t *testing.T) {
	langs := Generate(DefaultConfig(), 42)
	for i := 0; i < len(langs); i++ {
		for j := i + 1; j < len(langs); j++ {
			if kl := KLDivergence(langs[i], langs[j]); kl < 1e-4 {
				t.Fatalf("%s and %s nearly identical (KL=%v)", langs[i].Name, langs[j].Name, kl)
			}
		}
	}
}

func TestSampleDuration(t *testing.T) {
	langs := Generate(DefaultConfig(), 42)
	r := rng.New(1)
	spk := NewSpeaker(r, 0)
	for _, dur := range []float64{3, 10, 30} {
		u := langs[0].Sample(r, dur, spk, ChannelCTSClean)
		total := u.TotalDurMs()
		if total < dur*1000 {
			t.Fatalf("%vs utterance realized only %v ms", dur, total)
		}
		// One extra phone max overshoot (400 ms · 1.4 rate).
		if total > dur*1000+600 {
			t.Fatalf("%vs utterance overshot to %v ms", dur, total)
		}
		if u.NominalDurS != dur || u.Language != 0 {
			t.Fatal("utterance metadata wrong")
		}
	}
}

func TestSampleLongerUtterancesHaveMorePhones(t *testing.T) {
	langs := Generate(DefaultConfig(), 42)
	r := rng.New(2)
	spk := NewSpeaker(r, 0)
	short := langs[3].Sample(r, 3, spk, ChannelCTSClean)
	long := langs[3].Sample(r, 30, spk, ChannelCTSClean)
	if len(long.Segments) < 5*len(short.Segments) {
		t.Fatalf("30s has %d segments vs 3s %d", len(long.Segments), len(short.Segments))
	}
}

func TestSamplePhoneIDsInRange(t *testing.T) {
	langs := Generate(DefaultConfig(), 42)
	r := rng.New(3)
	spk := NewSpeaker(r, 0)
	u := langs[5].Sample(r, 10, spk, ChannelVOA)
	for _, id := range u.PhoneIDs() {
		if id < 0 || id >= phones.UniversalSize {
			t.Fatalf("phone ID %d out of range", id)
		}
	}
}

func TestSampleReflectsPhonotactics(t *testing.T) {
	// Empirical bigram counts from many samples of language A should fit
	// language A's model better than language B's.
	langs := Generate(DefaultConfig(), 42)
	r := rng.New(4)
	a, b := langs[0], langs[10]
	spk := SpeakerProfile{ID: 0, Rate: 1, SubstitutionProb: 0, PitchHz: 150}
	var llA, llB float64
	for trial := 0; trial < 20; trial++ {
		u := a.Sample(r, 10, spk, ChannelCTSClean)
		ids := u.PhoneIDs()
		for k := 1; k < len(ids); k++ {
			pa := a.Trans[ids[k-1]][ids[k]]
			pb := b.Trans[ids[k-1]][ids[k]]
			if pa > 0 && pb > 0 {
				llA += math.Log(pa)
				llB += math.Log(pb)
			}
		}
	}
	if llA <= llB {
		t.Fatalf("samples from %s scored higher under %s: %v vs %v", a.Name, b.Name, llA, llB)
	}
}

func TestSpeakerProfiles(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 200; i++ {
		s := NewSpeaker(r, i)
		if s.Rate < 0.7 || s.Rate > 1.4 {
			t.Fatalf("rate %v out of range", s.Rate)
		}
		if s.SubstitutionProb < 0 || s.SubstitutionProb > 0.2 {
			t.Fatalf("substitution prob %v out of range", s.SubstitutionProb)
		}
		if s.PitchHz < 80 || s.PitchHz > 300 {
			t.Fatalf("pitch %v out of range", s.PitchHz)
		}
	}
}

func TestChannelString(t *testing.T) {
	if ChannelCTSClean.String() != "cts-clean" || ChannelVOA.String() != "voa" {
		t.Fatal("Channel.String wrong")
	}
}

func TestSilenceMassUniformAcrossLanguages(t *testing.T) {
	cfg := DefaultConfig()
	langs := Generate(cfg, 42)
	inv := phones.Universal()
	for _, l := range langs {
		for a := 0; a < phones.UniversalSize; a++ {
			var sil float64
			for b := 0; b < phones.UniversalSize; b++ {
				if inv[b].Class == phones.Silence {
					sil += l.Trans[a][b]
				}
			}
			if math.Abs(sil-cfg.SilenceProb) > 1e-9 {
				t.Fatalf("%s row %d silence mass %v, want %v", l.Name, a, sil, cfg.SilenceProb)
			}
		}
	}
}

func TestValidateCatchesBrokenModel(t *testing.T) {
	l := Generate(DefaultConfig(), 42)[0]
	l.Trans[0][0] += 0.5
	if l.Validate() == nil {
		t.Fatal("Validate accepted non-stochastic row")
	}
}

package sparse

import (
	"slices"
	"sync"
)

// accumulator.go is the map-free accumulation hot path. Expected N-gram
// counting touches every (index, weight) observation of every utterance ×
// every order, so the accumulator's constant factors dominate supervector
// extraction. A Go map pays hashing, bucket chasing, and (worst of all)
// fresh bucket allocations per utterance; this open-addressing table over
// two flat arrays is allocation-free in steady state and is recycled
// across utterances and orders via a sync.Pool (GetAccumulator /
// PutAccumulator).

// accMinSlots is the initial table size (power of two). Typical
// utterances populate a few hundred distinct grams, so the table rarely
// grows more than once after warm-up.
const accMinSlots = 1024

// accEmptyKey marks a free slot. Accumulator indices are supervector
// indices and therefore non-negative.
const accEmptyKey = int32(-1)

// Accumulator builds supervectors incrementally from (index, weight)
// observations without requiring sorted insertion. It is the workhorse of
// expected N-gram counting. Indices must be non-negative. The zero value
// is not usable; construct with NewAccumulator or GetAccumulator.
//
// State machine note: Total iterates `used`, which holds first-insertion
// order only until Vector() is called — Vector() sorts `used` in place,
// so Total afterwards sums in ascending-index order (still deterministic,
// just a different float addition sequence). Callers that want the
// insertion-order sum must call Total before Vector, as Normalized does.
// Reset and correctness of the table do not depend on the order of
// `used`; only Total's summation order is affected.
type Accumulator struct {
	// keys/vals form an open-addressing (linear probing) hash table;
	// keys[s] == accEmptyKey means slot s is free.
	keys []int32
	vals []float64
	// used records distinct indices in first-insertion order, giving
	// deterministic iteration (unlike map range order) and cheap Reset.
	used []int32
	// slots is Reset's scratch: the sparse-clear path must resolve every
	// live slot before clearing any (see Reset), so it stages them here.
	slots []uint32
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	a := &Accumulator{
		keys: make([]int32, accMinSlots),
		vals: make([]float64, accMinSlots),
	}
	for i := range a.keys {
		a.keys[i] = accEmptyKey
	}
	return a
}

// accPool recycles accumulators across utterances and N-gram orders; the
// tables inside survive, so steady-state accumulation allocates nothing.
var accPool = sync.Pool{New: func() any { return NewAccumulator() }}

// GetAccumulator returns a reset accumulator from the shared pool. Pair
// with PutAccumulator; safe for concurrent use from worker pools (each
// caller owns the instance it got until it puts it back).
func GetAccumulator() *Accumulator { return accPool.Get().(*Accumulator) }

// PutAccumulator resets a and returns it to the shared pool. a must not
// be used afterwards.
func PutAccumulator(a *Accumulator) {
	a.Reset()
	accPool.Put(a)
}

// accHash is Fibonacci multiplicative hashing onto a power-of-two table.
func accHash(k int32, mask uint32) uint32 {
	return (uint32(k) * 2654435761) & mask
}

// slot returns the table position of key k: its current slot if present,
// otherwise the free slot where it would be inserted.
func (a *Accumulator) slot(k int32) uint32 {
	mask := uint32(len(a.keys) - 1)
	s := accHash(k, mask)
	for a.keys[s] != k && a.keys[s] != accEmptyKey {
		s = (s + 1) & mask
	}
	return s
}

// Add accumulates weight w at index i (i must be ≥ 0).
func (a *Accumulator) Add(i int32, w float64) {
	if i < 0 {
		panic("sparse: accumulator index must be non-negative")
	}
	s := a.slot(i)
	if a.keys[s] == i {
		a.vals[s] += w
		return
	}
	// Keep the load factor under 3/4 so probe chains stay short.
	if (len(a.used)+1)*4 > len(a.keys)*3 {
		a.grow()
		s = a.slot(i)
	}
	a.keys[s] = i
	a.vals[s] = w
	a.used = append(a.used, i)
}

// grow doubles the table and rehashes every live entry. The used list is
// keyed by index, not slot, so it survives unchanged.
func (a *Accumulator) grow() {
	oldKeys, oldVals := a.keys, a.vals
	a.keys = make([]int32, 2*len(oldKeys))
	a.vals = make([]float64, 2*len(oldVals))
	for i := range a.keys {
		a.keys[i] = accEmptyKey
	}
	for s, k := range oldKeys {
		if k == accEmptyKey {
			continue
		}
		ns := a.slot(k)
		a.keys[ns] = k
		a.vals[ns] = oldVals[s]
	}
}

// at returns the accumulated value of index k (which must be present).
func (a *Accumulator) at(k int32) float64 { return a.vals[a.slot(k)] }

// Reset empties the accumulator, keeping its table capacity.
func (a *Accumulator) Reset() {
	if len(a.used)*8 < len(a.keys) {
		// Sparse occupancy: clear only the live slots. This must happen
		// in two passes — resolve every key's slot first, then clear —
		// because deleting from a linear-probe table entry by entry
		// breaks the probe chains of keys displaced past a cleared slot:
		// slot(k) would stop at the fresh hole and miss k's real slot,
		// leaving a stale entry that later silently absorbs Add mass
		// without appearing in `used`. (No single clearing order is safe:
		// insertion order fails as above, and reverse insertion order
		// fails after grow(), which rehashes in slot order.)
		if cap(a.slots) < len(a.used) {
			a.slots = make([]uint32, len(a.used))
		}
		slots := a.slots[:len(a.used)]
		for i, k := range a.used {
			slots[i] = a.slot(k)
		}
		for _, s := range slots {
			a.keys[s] = accEmptyKey
		}
	} else {
		for i := range a.keys {
			a.keys[i] = accEmptyKey
		}
	}
	a.used = a.used[:0]
}

// Total returns the sum of all accumulated mass, in first-insertion
// order (deterministic, unlike the map-backed predecessor).
func (a *Accumulator) Total() float64 {
	var s float64
	for _, k := range a.used {
		s += a.at(k)
	}
	return s
}

// Len returns the number of distinct indices seen.
func (a *Accumulator) Len() int { return len(a.used) }

// Vector materializes the accumulated contents as a sorted sparse vector,
// dropping exact zeros (matching FromMap semantics). The used list is
// sorted in place — after this call Total sums in index order rather
// than insertion order (still deterministic; call Total first if the
// insertion-order sum is wanted, as Normalized does).
func (a *Accumulator) Vector() *Vector {
	slices.Sort(a.used)
	v := New(len(a.used))
	for _, k := range a.used {
		if x := a.at(k); x != 0 {
			v.Idx = append(v.Idx, k)
			v.Val = append(v.Val, x)
		}
	}
	return v
}

// Normalized materializes the contents scaled to sum to one. An empty
// accumulator yields an empty vector.
func (a *Accumulator) Normalized() *Vector {
	t := a.Total()
	v := a.Vector()
	if t > 0 {
		v.Scale(1 / t)
	}
	return v
}

// Package sparse implements sparse vectors for phonotactic supervectors.
//
// A supervector over an N-gram space of dimension F = fⁿ (f phones, order
// n) is extremely sparse for short utterances — a 3-second utterance emits
// a few dozen distinct bigrams out of thousands of possible ones — so both
// SVM training and scoring operate on sorted (index, value) pairs. Dot
// products between two sparse vectors are linear merges; dot products
// against dense weight vectors are gathers.
package sparse

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Vector is a sparse vector with strictly increasing indices.
type Vector struct {
	Idx []int32
	Val []float64
}

// New returns an empty sparse vector with the given capacity hint.
func New(capacity int) *Vector {
	return &Vector{
		Idx: make([]int32, 0, capacity),
		Val: make([]float64, 0, capacity),
	}
}

// FromMap builds a sorted sparse vector from an index→value map, dropping
// zeros.
func FromMap(m map[int32]float64) *Vector {
	v := New(len(m))
	for i, x := range m {
		if x != 0 {
			v.Idx = append(v.Idx, i)
		}
	}
	// Co-sort by sorting the (distinct) indices alone and gathering the
	// values afterwards — no interface-based pair sort.
	slices.Sort(v.Idx)
	for _, i := range v.Idx {
		v.Val = append(v.Val, m[i])
	}
	return v
}

// FromDense builds a sparse vector from a dense slice, dropping zeros.
func FromDense(d []float64) *Vector {
	v := New(8)
	for i, x := range d {
		if x != 0 {
			v.Idx = append(v.Idx, int32(i))
			v.Val = append(v.Val, x)
		}
	}
	return v
}

// NNZ returns the number of stored (non-zero) entries.
func (v *Vector) NNZ() int { return len(v.Idx) }

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	out := &Vector{
		Idx: make([]int32, len(v.Idx)),
		Val: make([]float64, len(v.Val)),
	}
	copy(out.Idx, v.Idx)
	copy(out.Val, v.Val)
	return out
}

// At returns the value at index i (zero if not stored) by binary search
// over the sorted index slice.
func (v *Vector) At(i int32) float64 {
	if k, ok := slices.BinarySearch(v.Idx, i); ok {
		return v.Val[k]
	}
	return 0
}

// Dot returns the inner product of two sparse vectors via linear merge.
func Dot(a, b *Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			s += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return s
}

// DotDense returns the inner product of v against a dense weight vector w.
// Indices beyond len(w) contribute zero. This is the SVM solver's
// innermost kernel, so it is tuned: indices are compared unsigned
// against len(w) (enforcing the cutoff while proving 0 ≤ j < len(w) to
// the compiler, which drops the per-element bounds checks), and the
// gather is unrolled 4-wide. The accumulator is a single chain updated
// in ascending-index order — the identical float addition sequence as
// the scalar loop — so results are bit-for-bit unchanged. The block
// guard ORs the four indices: it can only over-trigger (OR ≥ each
// operand for non-negative values), and the scalar tail re-checks
// element by element, so the cutoff stays exact. A negative index —
// an invariant violation — wraps to a huge uint and stops the loop;
// the post-loop check then panics so corrupted vectors fail as loudly
// as they did under the pre-optimization w[i] bounds check instead of
// silently truncating the product.
func (v *Vector) DotDense(w []float64) float64 {
	var s float64
	idx := v.Idx
	val := v.Val[:len(idx)]
	lw := uint(len(w))
	k := 0
	for ; k+3 < len(idx); k += 4 {
		j0, j1 := uint(int(idx[k])), uint(int(idx[k+1]))
		j2, j3 := uint(int(idx[k+2])), uint(int(idx[k+3]))
		if j0|j1|j2|j3 >= lw {
			break
		}
		s += val[k] * w[j0]
		s += val[k+1] * w[j1]
		s += val[k+2] * w[j2]
		s += val[k+3] * w[j3]
	}
	for ; k < len(idx); k++ {
		j := uint(int(idx[k]))
		if j >= lw {
			break
		}
		s += val[k] * w[j]
	}
	if k < len(idx) && idx[k] < 0 {
		panic("sparse: DotDense on vector with negative index")
	}
	return s
}

// AxpyDense computes w += alpha·v into the dense vector w, with the
// same unrolled-gather structure (and negative-index panic) as
// DotDense. Stores hit strictly increasing (hence distinct) slots, so
// the unroll cannot reorder two updates to the same element.
func (v *Vector) AxpyDense(alpha float64, w []float64) {
	idx := v.Idx
	val := v.Val[:len(idx)]
	lw := uint(len(w))
	k := 0
	for ; k+3 < len(idx); k += 4 {
		j0, j1 := uint(int(idx[k])), uint(int(idx[k+1]))
		j2, j3 := uint(int(idx[k+2])), uint(int(idx[k+3]))
		if j0|j1|j2|j3 >= lw {
			break
		}
		w[j0] += alpha * val[k]
		w[j1] += alpha * val[k+1]
		w[j2] += alpha * val[k+2]
		w[j3] += alpha * val[k+3]
	}
	for ; k < len(idx); k++ {
		j := uint(int(idx[k]))
		if j >= lw {
			break
		}
		w[j] += alpha * val[k]
	}
	if k < len(idx) && idx[k] < 0 {
		panic("sparse: AxpyDense on vector with negative index")
	}
}

// Norm2 returns the Euclidean norm.
func (v *Vector) Norm2() float64 {
	var s float64
	for _, x := range v.Val {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of stored values.
func (v *Vector) Sum() float64 {
	var s float64
	for _, x := range v.Val {
		s += x
	}
	return s
}

// Scale multiplies all stored values by alpha in place.
func (v *Vector) Scale(alpha float64) {
	for k := range v.Val {
		v.Val[k] *= alpha
	}
}

// Map applies f to every stored value in place.
func (v *Vector) Map(f func(idx int32, val float64) float64) {
	for k := range v.Val {
		v.Val[k] = f(v.Idx[k], v.Val[k])
	}
}

// Add returns a + b as a new sparse vector.
func Add(a, b *Vector) *Vector {
	out := New(len(a.Idx) + len(b.Idx))
	i, j := 0, 0
	for i < len(a.Idx) || j < len(b.Idx) {
		switch {
		case j >= len(b.Idx) || (i < len(a.Idx) && a.Idx[i] < b.Idx[j]):
			out.Idx = append(out.Idx, a.Idx[i])
			out.Val = append(out.Val, a.Val[i])
			i++
		case i >= len(a.Idx) || b.Idx[j] < a.Idx[i]:
			out.Idx = append(out.Idx, b.Idx[j])
			out.Val = append(out.Val, b.Val[j])
			j++
		default:
			s := a.Val[i] + b.Val[j]
			if s != 0 {
				out.Idx = append(out.Idx, a.Idx[i])
				out.Val = append(out.Val, s)
			}
			i++
			j++
		}
	}
	return out
}

// String renders the first few entries, for debugging.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteString("[")
	for k := 0; k < len(v.Idx) && k < 8; k++ {
		if k > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d:%.4g", v.Idx[k], v.Val[k])
	}
	if len(v.Idx) > 8 {
		fmt.Fprintf(&b, " …+%d", len(v.Idx)-8)
	}
	b.WriteString("]")
	return b.String()
}

// Validate checks the strictly-increasing index invariant; it returns an
// error describing the first violation, or nil.
func (v *Vector) Validate() error {
	if len(v.Idx) != len(v.Val) {
		return fmt.Errorf("sparse: len(Idx)=%d != len(Val)=%d", len(v.Idx), len(v.Val))
	}
	for k := 1; k < len(v.Idx); k++ {
		if v.Idx[k] <= v.Idx[k-1] {
			return fmt.Errorf("sparse: indices not strictly increasing at %d: %d <= %d", k, v.Idx[k], v.Idx[k-1])
		}
	}
	return nil
}

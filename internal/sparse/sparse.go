// Package sparse implements sparse vectors for phonotactic supervectors.
//
// A supervector over an N-gram space of dimension F = fⁿ (f phones, order
// n) is extremely sparse for short utterances — a 3-second utterance emits
// a few dozen distinct bigrams out of thousands of possible ones — so both
// SVM training and scoring operate on sorted (index, value) pairs. Dot
// products between two sparse vectors are linear merges; dot products
// against dense weight vectors are gathers.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Vector is a sparse vector with strictly increasing indices.
type Vector struct {
	Idx []int32
	Val []float64
}

// New returns an empty sparse vector with the given capacity hint.
func New(capacity int) *Vector {
	return &Vector{
		Idx: make([]int32, 0, capacity),
		Val: make([]float64, 0, capacity),
	}
}

// FromMap builds a sorted sparse vector from an index→value map, dropping
// zeros.
func FromMap(m map[int32]float64) *Vector {
	v := New(len(m))
	for i, x := range m {
		if x != 0 {
			v.Idx = append(v.Idx, i)
			v.Val = append(v.Val, x)
		}
	}
	sort.Sort(byIndex{v})
	return v
}

// FromDense builds a sparse vector from a dense slice, dropping zeros.
func FromDense(d []float64) *Vector {
	v := New(8)
	for i, x := range d {
		if x != 0 {
			v.Idx = append(v.Idx, int32(i))
			v.Val = append(v.Val, x)
		}
	}
	return v
}

type byIndex struct{ v *Vector }

func (b byIndex) Len() int           { return len(b.v.Idx) }
func (b byIndex) Less(i, j int) bool { return b.v.Idx[i] < b.v.Idx[j] }
func (b byIndex) Swap(i, j int) {
	b.v.Idx[i], b.v.Idx[j] = b.v.Idx[j], b.v.Idx[i]
	b.v.Val[i], b.v.Val[j] = b.v.Val[j], b.v.Val[i]
}

// NNZ returns the number of stored (non-zero) entries.
func (v *Vector) NNZ() int { return len(v.Idx) }

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	out := &Vector{
		Idx: make([]int32, len(v.Idx)),
		Val: make([]float64, len(v.Val)),
	}
	copy(out.Idx, v.Idx)
	copy(out.Val, v.Val)
	return out
}

// At returns the value at index i (zero if not stored).
func (v *Vector) At(i int32) float64 {
	lo, hi := 0, len(v.Idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.Idx[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.Idx) && v.Idx[lo] == i {
		return v.Val[lo]
	}
	return 0
}

// Dot returns the inner product of two sparse vectors via linear merge.
func Dot(a, b *Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			s += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return s
}

// DotDense returns the inner product of v against a dense weight vector w.
// Indices beyond len(w) contribute zero.
func (v *Vector) DotDense(w []float64) float64 {
	var s float64
	n := int32(len(w))
	for k, i := range v.Idx {
		if i >= n {
			break
		}
		s += v.Val[k] * w[i]
	}
	return s
}

// AxpyDense computes w += alpha·v into the dense vector w.
func (v *Vector) AxpyDense(alpha float64, w []float64) {
	n := int32(len(w))
	for k, i := range v.Idx {
		if i >= n {
			break
		}
		w[i] += alpha * v.Val[k]
	}
}

// Norm2 returns the Euclidean norm.
func (v *Vector) Norm2() float64 {
	var s float64
	for _, x := range v.Val {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of stored values.
func (v *Vector) Sum() float64 {
	var s float64
	for _, x := range v.Val {
		s += x
	}
	return s
}

// Scale multiplies all stored values by alpha in place.
func (v *Vector) Scale(alpha float64) {
	for k := range v.Val {
		v.Val[k] *= alpha
	}
}

// Map applies f to every stored value in place.
func (v *Vector) Map(f func(idx int32, val float64) float64) {
	for k := range v.Val {
		v.Val[k] = f(v.Idx[k], v.Val[k])
	}
}

// Add returns a + b as a new sparse vector.
func Add(a, b *Vector) *Vector {
	out := New(len(a.Idx) + len(b.Idx))
	i, j := 0, 0
	for i < len(a.Idx) || j < len(b.Idx) {
		switch {
		case j >= len(b.Idx) || (i < len(a.Idx) && a.Idx[i] < b.Idx[j]):
			out.Idx = append(out.Idx, a.Idx[i])
			out.Val = append(out.Val, a.Val[i])
			i++
		case i >= len(a.Idx) || b.Idx[j] < a.Idx[i]:
			out.Idx = append(out.Idx, b.Idx[j])
			out.Val = append(out.Val, b.Val[j])
			j++
		default:
			s := a.Val[i] + b.Val[j]
			if s != 0 {
				out.Idx = append(out.Idx, a.Idx[i])
				out.Val = append(out.Val, s)
			}
			i++
			j++
		}
	}
	return out
}

// Accumulator builds supervectors incrementally from (index, weight)
// observations without requiring sorted insertion. It is the workhorse of
// expected N-gram counting.
type Accumulator struct {
	m map[int32]float64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{m: make(map[int32]float64)}
}

// Add accumulates weight w at index i.
func (a *Accumulator) Add(i int32, w float64) { a.m[i] += w }

// Total returns the sum of all accumulated mass.
func (a *Accumulator) Total() float64 {
	var s float64
	for _, v := range a.m {
		s += v
	}
	return s
}

// Len returns the number of distinct indices seen.
func (a *Accumulator) Len() int { return len(a.m) }

// Vector materializes the accumulated contents as a sorted sparse vector.
func (a *Accumulator) Vector() *Vector { return FromMap(a.m) }

// Normalized materializes the contents scaled to sum to one. An empty
// accumulator yields an empty vector.
func (a *Accumulator) Normalized() *Vector {
	t := a.Total()
	v := a.Vector()
	if t > 0 {
		v.Scale(1 / t)
	}
	return v
}

// String renders the first few entries, for debugging.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteString("[")
	for k := 0; k < len(v.Idx) && k < 8; k++ {
		if k > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d:%.4g", v.Idx[k], v.Val[k])
	}
	if len(v.Idx) > 8 {
		fmt.Fprintf(&b, " …+%d", len(v.Idx)-8)
	}
	b.WriteString("]")
	return b.String()
}

// Validate checks the strictly-increasing index invariant; it returns an
// error describing the first violation, or nil.
func (v *Vector) Validate() error {
	if len(v.Idx) != len(v.Val) {
		return fmt.Errorf("sparse: len(Idx)=%d != len(Val)=%d", len(v.Idx), len(v.Val))
	}
	for k := 1; k < len(v.Idx); k++ {
		if v.Idx[k] <= v.Idx[k-1] {
			return fmt.Errorf("sparse: indices not strictly increasing at %d: %d <= %d", k, v.Idx[k], v.Idx[k-1])
		}
	}
	return nil
}

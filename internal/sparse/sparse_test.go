package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFromMapSortedAndValid(t *testing.T) {
	v := FromMap(map[int32]float64{5: 1, 2: 2, 9: 3, 7: 0})
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 3 {
		t.Fatalf("NNZ = %d, zero entry not dropped?", v.NNZ())
	}
	if v.At(2) != 2 || v.At(5) != 1 || v.At(9) != 3 || v.At(7) != 0 || v.At(100) != 0 {
		t.Fatalf("At lookups wrong: %v", v)
	}
}

func TestFromDense(t *testing.T) {
	v := FromDense([]float64{0, 1.5, 0, 0, -2})
	if v.NNZ() != 2 || v.At(1) != 1.5 || v.At(4) != -2 {
		t.Fatalf("FromDense = %v", v)
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDotMatchesDense(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		n := 50
		da := make([]float64, n)
		db := make([]float64, n)
		for i := 0; i < n; i++ {
			if rr.Bernoulli(0.3) {
				da[i] = rr.Norm()
			}
			if rr.Bernoulli(0.3) {
				db[i] = rr.Norm()
			}
		}
		var want float64
		for i := range da {
			want += da[i] * db[i]
		}
		got := Dot(FromDense(da), FromDense(db))
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDotDenseAndAxpy(t *testing.T) {
	v := FromMap(map[int32]float64{0: 1, 3: 2, 7: -1})
	w := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if got := v.DotDense(w); got != 2 {
		t.Fatalf("DotDense = %v", got)
	}
	v.AxpyDense(2, w)
	if w[0] != 3 || w[3] != 5 || w[7] != -1 {
		t.Fatalf("AxpyDense = %v", w)
	}
	// Indices beyond len(w) must be ignored, not panic.
	long := FromMap(map[int32]float64{1: 1, 99: 5})
	short := []float64{0, 0}
	if got := long.DotDense(short); got != 0 {
		t.Fatalf("DotDense out-of-range = %v", got)
	}
	long.AxpyDense(1, short)
	if short[1] != 1 {
		t.Fatalf("AxpyDense out-of-range = %v", short)
	}
}

// A negative index is an invariant violation; the kernels must fail
// loudly (as the pre-optimization w[i] bounds check did) rather than
// silently truncate the gather at the corrupted element.
func TestDotDenseNegativeIndexPanics(t *testing.T) {
	bad := &Vector{Idx: []int32{1, -4, 6}, Val: []float64{1, 1, 1}}
	w := make([]float64, 8)
	mustPanic(t, "DotDense", func() { bad.DotDense(w) })
	mustPanic(t, "AxpyDense", func() { bad.AxpyDense(1, w) })
	// The same corruption inside the 4-wide unrolled block.
	bad4 := &Vector{Idx: []int32{0, 1, -2, 3, 5}, Val: []float64{1, 1, 1, 1, 1}}
	mustPanic(t, "DotDense unrolled", func() { bad4.DotDense(w) })
	mustPanic(t, "AxpyDense unrolled", func() { bad4.AxpyDense(1, w) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic on negative index", name)
		}
	}()
	f()
}

func TestAddMatchesDense(t *testing.T) {
	r := rng.New(2)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		n := 40
		da := make([]float64, n)
		db := make([]float64, n)
		for i := 0; i < n; i++ {
			if rr.Bernoulli(0.4) {
				da[i] = float64(rr.Intn(5) - 2)
			}
			if rr.Bernoulli(0.4) {
				db[i] = float64(rr.Intn(5) - 2)
			}
		}
		sum := Add(FromDense(da), FromDense(db))
		if err := sum.Validate(); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if sum.At(int32(i)) != da[i]+db[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNormSumScale(t *testing.T) {
	v := FromDense([]float64{3, 0, 4})
	if v.Norm2() != 5 {
		t.Fatalf("Norm2 = %v", v.Norm2())
	}
	if v.Sum() != 7 {
		t.Fatalf("Sum = %v", v.Sum())
	}
	v.Scale(2)
	if v.At(0) != 6 || v.At(2) != 8 {
		t.Fatalf("Scale result %v", v)
	}
}

func TestMap(t *testing.T) {
	v := FromDense([]float64{1, 0, 2})
	v.Map(func(idx int32, val float64) float64 { return val * float64(idx+1) })
	if v.At(0) != 1 || v.At(2) != 6 {
		t.Fatalf("Map result %v", v)
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator()
	a.Add(4, 0.5)
	a.Add(1, 1.5)
	a.Add(4, 0.5)
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	if a.Total() != 2.5 {
		t.Fatalf("Total = %v", a.Total())
	}
	v := a.Normalized()
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Sum()-1) > 1e-12 {
		t.Fatalf("Normalized sum = %v", v.Sum())
	}
	if math.Abs(v.At(4)-0.4) > 1e-12 {
		t.Fatalf("At(4) = %v, want 0.4", v.At(4))
	}
}

func TestEmptyAccumulatorNormalized(t *testing.T) {
	v := NewAccumulator().Normalized()
	if v.NNZ() != 0 {
		t.Fatalf("empty accumulator gave %v", v)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := FromDense([]float64{1, 2})
	c := v.Clone()
	c.Scale(10)
	if v.At(0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	v := &Vector{Idx: []int32{3, 1}, Val: []float64{1, 1}}
	if v.Validate() == nil {
		t.Fatal("Validate accepted out-of-order indices")
	}
	v2 := &Vector{Idx: []int32{1}, Val: []float64{1, 2}}
	if v2.Validate() == nil {
		t.Fatal("Validate accepted length mismatch")
	}
}

func TestString(t *testing.T) {
	v := FromDense(make([]float64, 0))
	if v.String() != "[]" {
		t.Fatalf("empty String = %q", v.String())
	}
	big := NewAccumulator()
	for i := int32(0); i < 20; i++ {
		big.Add(i, 1)
	}
	s := big.Vector().String()
	if len(s) == 0 {
		t.Fatal("String of large vector empty")
	}
}

package sparse

import (
	"math"
	"testing"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// refAccumulate is the old map-backed accumulation path, kept as the
// equivalence oracle: per-index addition order under a map equals
// emission order, which is exactly what the open-addressing table does,
// so results must match bit for bit.
func refAccumulate(obs []struct {
	idx int32
	w   float64
}) *Vector {
	m := make(map[int32]float64)
	for _, o := range obs {
		m[o.idx] += o.w
	}
	return FromMap(m)
}

func randObservations(r *rng.RNG, n, idxRange int) []struct {
	idx int32
	w   float64
} {
	obs := make([]struct {
		idx int32
		w   float64
	}, n)
	for i := range obs {
		obs[i].idx = int32(r.Intn(idxRange))
		// Mix signs and magnitudes so addition order matters if broken.
		obs[i].w = (r.Float64() - 0.3) * math.Exp(float64(r.Intn(8)))
	}
	return obs
}

func TestAccumulatorMatchesMapReference(t *testing.T) {
	root := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		r := root.Split(uint64(trial))
		n := r.Intn(3000) + 1
		idxRange := []int{7, 100, 5000, 200000}[trial%4]
		obs := randObservations(r, n, idxRange)

		acc := GetAccumulator()
		for _, o := range obs {
			acc.Add(o.idx, o.w)
		}
		got := acc.Vector()
		gotTotal := acc.Total()
		PutAccumulator(acc)

		want := refAccumulate(obs)
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got.Idx) != len(want.Idx) {
			t.Fatalf("trial %d: nnz %d != %d", trial, len(got.Idx), len(want.Idx))
		}
		for k := range got.Idx {
			if got.Idx[k] != want.Idx[k] || got.Val[k] != want.Val[k] {
				t.Fatalf("trial %d entry %d: got (%d,%v) want (%d,%v)",
					trial, k, got.Idx[k], got.Val[k], want.Idx[k], want.Val[k])
			}
		}
		// Total sums in first-insertion order — deterministic, but only
		// approximately equal to the map-ordered sum.
		var wantTotal float64
		for _, x := range want.Val {
			wantTotal += x
		}
		if math.Abs(gotTotal-wantTotal) > 1e-9*(1+math.Abs(wantTotal)) {
			t.Fatalf("trial %d: total %v != %v", trial, gotTotal, wantTotal)
		}
	}
}

func TestAccumulatorResetReuse(t *testing.T) {
	a := NewAccumulator()
	for round := 0; round < 5; round++ {
		for i := int32(0); i < 500; i++ {
			a.Add(i*3, float64(i+int32(round)))
		}
		if a.Len() != 500 {
			t.Fatalf("round %d: len %d", round, a.Len())
		}
		v := a.Vector()
		if v.NNZ() == 500 {
			// First value is 0+round which is zero only in round 0.
			wantNNZ := 500
			if round == 0 {
				wantNNZ = 499
			}
			if v.NNZ() != wantNNZ {
				t.Fatalf("round %d: nnz %d", round, v.NNZ())
			}
		}
		a.Reset()
		if a.Len() != 0 || a.Total() != 0 {
			t.Fatalf("round %d: reset left %d entries", round, a.Len())
		}
	}
}

// TestAccumulatorResetSparseCollisions forces the sparse-occupancy Reset
// branch (few live keys, so len(used)*8 < len(keys)) with keys that
// collide under accHash: the multiplier is odd, so k and k+len(keys)
// hash to the same slot of the power-of-two table. A Reset that clears
// probe chains entry by entry leaves the displaced key's slot live; the
// next round's Add then accumulates into that hidden stale slot without
// appending to used, and Vector() silently drops the key's mass.
func TestAccumulatorResetSparseCollisions(t *testing.T) {
	a := NewAccumulator()
	span := int32(len(a.keys))
	k1, k2, k3 := int32(7), int32(7)+span, int32(7)+2*span
	if accHash(k1, uint32(span-1)) != accHash(k2, uint32(span-1)) ||
		accHash(k1, uint32(span-1)) != accHash(k3, uint32(span-1)) {
		t.Fatal("test premise broken: keys no longer collide under accHash")
	}
	for round := 0; round < 4; round++ {
		// Insertion order makes k2/k3 displaced past k1's slot.
		a.Add(k1, 1)
		a.Add(k2, 2)
		a.Add(k3, 4)
		if a.Len() != 3 {
			t.Fatalf("round %d: len %d, want 3", round, a.Len())
		}
		if got := a.Total(); got != 7 {
			t.Fatalf("round %d: total %v, want 7 (stale colliding slot survived Reset)", round, got)
		}
		v := a.Vector()
		if v.NNZ() != 3 || v.At(k1) != 1 || v.At(k2) != 2 || v.At(k3) != 4 {
			t.Fatalf("round %d: vector %v dropped or corrupted a colliding key", round, v)
		}
		a.Reset() // 3*8 < len(keys): must take the sparse-clear path
	}
}

// TestAccumulatorResetSparseCollisionsAfterGrow repeats the collision
// check after grow() has rehashed the table in slot order (not insertion
// order), which defeats reverse-insertion-order clearing too. Each round
// stays under the sparse-Reset threshold of the grown table.
func TestAccumulatorResetSparseCollisionsAfterGrow(t *testing.T) {
	a := NewAccumulator()
	// Grow once: exceed 3/4 of accMinSlots, then Reset (dense path).
	for i := int32(0); i < int32(accMinSlots); i++ {
		a.Add(i, 1)
	}
	if len(a.keys) == accMinSlots {
		t.Fatal("test premise broken: table did not grow")
	}
	a.Reset()
	span := int32(len(a.keys))
	for round := 0; round < 4; round++ {
		var want float64
		for c := int32(0); c < 8; c++ { // 8 clusters × 3 colliding keys = 24 live ≪ span/8
			base := 11 + c*997
			for j := int32(0); j < 3; j++ {
				a.Add(base+j*span, float64(base+j))
				want += float64(base + j)
			}
		}
		if a.Len() != 24 {
			t.Fatalf("round %d: len %d, want 24", round, a.Len())
		}
		if got := a.Total(); got != want {
			t.Fatalf("round %d: total %v, want %v", round, got, want)
		}
		if v := a.Vector(); v.NNZ() != 24 {
			t.Fatalf("round %d: nnz %d, want 24", round, v.NNZ())
		}
		a.Reset()
	}
}

func TestAccumulatorGrow(t *testing.T) {
	a := NewAccumulator()
	const n = 100_000
	for i := int32(0); i < n; i++ {
		a.Add(i, 1)
	}
	if a.Len() != n {
		t.Fatalf("len %d", a.Len())
	}
	v := a.Vector()
	if v.NNZ() != n || v.Idx[0] != 0 || v.Idx[n-1] != n-1 {
		t.Fatalf("bad vector after grow: nnz=%d", v.NNZ())
	}
}

func TestAccumulatorNegativeIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative index")
		}
	}()
	NewAccumulator().Add(-1, 1)
}

// TestPooledAccumulatorRace exercises the pool from a worker pool: every
// worker must get an exclusive instance and produce correct results.
// Run with -race to check the pool handoff.
func TestPooledAccumulatorRace(t *testing.T) {
	root := rng.New(7)
	const tasks = 64
	out := make([]*Vector, tasks)
	parallel.ForPool("test-acc", tasks, func(i int) {
		r := root.Split(uint64(i))
		obs := randObservations(r, 2000, 300)
		acc := GetAccumulator()
		defer PutAccumulator(acc)
		for _, o := range obs {
			acc.Add(o.idx, o.w)
		}
		out[i] = acc.Vector()
	})
	for i := range out {
		r := root.Split(uint64(i))
		want := refAccumulate(randObservations(r, 2000, 300))
		got := out[i]
		if len(got.Idx) != len(want.Idx) {
			t.Fatalf("task %d: nnz %d != %d", i, len(got.Idx), len(want.Idx))
		}
		for k := range got.Idx {
			if got.Idx[k] != want.Idx[k] || got.Val[k] != want.Val[k] {
				t.Fatalf("task %d entry %d mismatch", i, k)
			}
		}
	}
}

// Benchmarks: map-backed vs open-addressing accumulation over a
// realistic workload (a few thousand observations over a few hundred
// distinct grams, the shape of one utterance × order pass).

func benchObservations() []struct {
	idx int32
	w   float64
} {
	return randObservations(rng.New(99), 4096, 400)
}

func BenchmarkAccumulateMap(b *testing.B) {
	obs := benchObservations()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		m := make(map[int32]float64)
		for _, o := range obs {
			m[o.idx] += o.w
		}
		v := FromMap(m)
		if v.NNZ() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkAccumulateOpenAddressing(b *testing.B) {
	obs := benchObservations()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		acc := GetAccumulator()
		for _, o := range obs {
			acc.Add(o.idx, o.w)
		}
		v := acc.Vector()
		PutAccumulator(acc)
		if v.NNZ() == 0 {
			b.Fatal("empty")
		}
	}
}

package sparse

// Matrix is a compressed-sparse-row batch of vectors: all rows share one
// contiguous Idx arena, one Val arena, and a RowPtr offset table, so a
// training set is a handful of allocations instead of thousands of boxed
// *Vector pairs scattered across the heap. Row returns a *Vector view
// aliasing the arenas, which keeps every existing Dot/DotDense/AxpyDense
// call site working unchanged while the solver streams rows out of
// contiguous memory.
type Matrix struct {
	// RowPtr[i] is the arena offset of row i; RowPtr[len(rows)] == NNZ.
	RowPtr []int
	Idx    []int32
	Val    []float64

	// rows holds the pre-built view headers so Row(i) allocates nothing.
	rows []Vector
}

// MatrixFromRows packs vectors into one CSR matrix, copying their
// contents. The inputs are not retained; in-place mutation of a returned
// Row view (TFLLR scaling, Scale, Map) writes to the arena.
func MatrixFromRows(vs []*Vector) *Matrix {
	nnz := 0
	for _, v := range vs {
		nnz += v.NNZ()
	}
	m := &Matrix{
		RowPtr: make([]int, len(vs)+1),
		Idx:    make([]int32, 0, nnz),
		Val:    make([]float64, 0, nnz),
		rows:   make([]Vector, len(vs)),
	}
	for i, v := range vs {
		m.RowPtr[i] = len(m.Idx)
		m.Idx = append(m.Idx, v.Idx...)
		m.Val = append(m.Val, v.Val...)
	}
	m.RowPtr[len(vs)] = len(m.Idx)
	for i := range m.rows {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		// Full-slice expressions cap each view so an (erroneous) append
		// through a row could never clobber its neighbor.
		m.rows[i] = Vector{Idx: m.Idx[lo:hi:hi], Val: m.Val[lo:hi:hi]}
	}
	return m
}

// NumRows returns the number of rows.
func (m *Matrix) NumRows() int { return len(m.rows) }

// NNZ returns the total number of stored entries.
func (m *Matrix) NNZ() int { return len(m.Idx) }

// Row returns a view of row i. The view aliases the matrix arenas: value
// mutations are shared, and the view stays valid for the matrix lifetime.
func (m *Matrix) Row(i int) *Vector { return &m.rows[i] }

// Rows returns views of every row in order (one header-slice allocation;
// the data is not copied).
func (m *Matrix) Rows() []*Vector {
	out := make([]*Vector, len(m.rows))
	for i := range m.rows {
		out[i] = &m.rows[i]
	}
	return out
}

// Validate checks every row's strictly-increasing index invariant and the
// monotone RowPtr invariant.
func (m *Matrix) Validate() error {
	for i := range m.rows {
		if err := m.rows[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

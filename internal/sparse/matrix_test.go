package sparse

import (
	"testing"

	"repro/internal/rng"
)

func randBoxedVectors(r *rng.RNG, rows, dim, maxNNZ int) []*Vector {
	out := make([]*Vector, rows)
	for i := range out {
		m := make(map[int32]float64)
		for k := 0; k < r.Intn(maxNNZ)+1; k++ {
			m[int32(r.Intn(dim))] = r.Norm()
		}
		out[i] = FromMap(m)
	}
	return out
}

func TestMatrixRowsMatchBoxed(t *testing.T) {
	root := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		r := root.Split(uint64(trial))
		boxed := randBoxedVectors(r, r.Intn(40)+1, 2000, 80)
		m := MatrixFromRows(boxed)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if m.NumRows() != len(boxed) {
			t.Fatalf("trial %d: rows %d != %d", trial, m.NumRows(), len(boxed))
		}
		w := make([]float64, 2000)
		for j := range w {
			w[j] = r.Norm()
		}
		for i, b := range boxed {
			row := m.Row(i)
			if len(row.Idx) != len(b.Idx) {
				t.Fatalf("trial %d row %d: nnz mismatch", trial, i)
			}
			for k := range row.Idx {
				if row.Idx[k] != b.Idx[k] || row.Val[k] != b.Val[k] {
					t.Fatalf("trial %d row %d entry %d mismatch", trial, i, k)
				}
			}
			// The dot kernels over a CSR row view must produce the same
			// bits as over the boxed original.
			if got, want := row.DotDense(w), b.DotDense(w); got != want {
				t.Fatalf("trial %d row %d: DotDense %v != %v", trial, i, got, want)
			}
			if got, want := Dot(row, b), Dot(b, b); got != want {
				t.Fatalf("trial %d row %d: Dot %v != %v", trial, i, got, want)
			}
		}
	}
}

func TestMatrixRowMutationShared(t *testing.T) {
	m := MatrixFromRows([]*Vector{FromDense([]float64{1, 0, 2}), FromDense([]float64{0, 3, 0})})
	m.Row(0).Scale(10)
	if m.Val[0] != 10 || m.Val[1] != 20 {
		t.Fatalf("row mutation did not reach arena: %v", m.Val)
	}
	if m.Row(1).Val[0] != 3 {
		t.Fatalf("neighbor row clobbered: %v", m.Row(1).Val)
	}
}

func TestMatrixRowsAccessor(t *testing.T) {
	boxed := randBoxedVectors(rng.New(3), 10, 500, 20)
	m := MatrixFromRows(boxed)
	rows := m.Rows()
	for i := range rows {
		if rows[i] != m.Row(i) {
			t.Fatalf("Rows()[%d] is not the canonical view", i)
		}
	}
}

// CSR-vs-boxed dot kernel benchmarks: same arithmetic, different memory
// layout — the CSR pass streams one contiguous arena.

func benchDotSetup(b *testing.B) ([]*Vector, *Matrix, []float64) {
	b.Helper()
	r := rng.New(5)
	boxed := randBoxedVectors(r, 512, 3540, 400)
	m := MatrixFromRows(boxed)
	w := make([]float64, 3540)
	for j := range w {
		w[j] = r.Norm()
	}
	return boxed, m, w
}

func BenchmarkDotDenseBoxed(b *testing.B) {
	boxed, _, w := benchDotSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for n := 0; n < b.N; n++ {
		for _, v := range boxed {
			s += v.DotDense(w)
		}
	}
	sinkFloat = s
}

func BenchmarkDotDenseCSR(b *testing.B) {
	_, m, w := benchDotSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for n := 0; n < b.N; n++ {
		for i := 0; i < m.NumRows(); i++ {
			s += m.Row(i).DotDense(w)
		}
	}
	sinkFloat = s
}

var sinkFloat float64

package proj

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// plantedData draws n sparse vectors concentrated on a planted rank-k
// subspace plus small isotropic noise, so a rank-k fit must capture
// almost all of the energy.
func plantedData(n, dim, k int, seed uint64) ([]*sparse.Vector, [][]float64) {
	r := rng.New(seed)
	basis := make([][]float64, k)
	for d := range basis {
		basis[d] = make([]float64, dim)
		for j := range basis[d] {
			basis[d][j] = r.Norm()
		}
	}
	xs := make([]*sparse.Vector, n)
	for i := range xs {
		dense := make([]float64, dim)
		for d := range basis {
			c := r.Norm() * float64(k-d) // decaying spectrum
			for j, b := range basis[d] {
				dense[j] += c * b
			}
		}
		for j := range dense {
			dense[j] += 0.01 * r.Norm()
		}
		xs[i] = sparse.FromDense(dense)
	}
	return xs, basis
}

func TestFitRecoversPlantedSubspace(t *testing.T) {
	const n, dim, k = 60, 120, 4
	xs, _ := plantedData(n, dim, k, 7)
	p, err := Fit(xs, dim, Config{Rank: k, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Orthonormal rows.
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			var dot float64
			for j := 0; j < dim; j++ {
				dot += p.Basis[a*dim+j] * p.Basis[b*dim+j]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("basis rows %d·%d = %v, want %v", a, b, dot, want)
			}
		}
	}
	// The projection must capture nearly all the energy of each vector.
	out := make([]float64, k)
	var kept, total float64
	for _, x := range xs {
		p.ApplyInto(x, out)
		for _, v := range out {
			kept += v * v
		}
		n2 := x.Norm2()
		total += n2 * n2
	}
	if kept/total < 0.99 {
		t.Fatalf("rank-%d fit kept %.4f of the energy, want ≥ 0.99", k, kept/total)
	}
	// Energy estimates are reported in decreasing order (up to power
	// iteration slack on near-ties; the planted spectrum is well split).
	for d := 1; d < k; d++ {
		if p.Energy[d] > p.Energy[d-1]*1.01 {
			t.Fatalf("energy not decreasing: %v", p.Energy)
		}
	}
}

func TestFitDeterministic(t *testing.T) {
	xs, _ := plantedData(40, 80, 3, 11)
	a, err := Fit(xs, 80, Config{Rank: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(xs, 80, Config{Rank: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Basis {
		if a.Basis[i] != b.Basis[i] {
			t.Fatalf("basis differs at %d: %v vs %v", i, a.Basis[i], b.Basis[i])
		}
	}
}

// TestFitSupervisedClassDirections: with labels, the leading basis rows
// span the class-mean differences, so projecting preserves the
// between-class geometry even at tiny rank — three unit-separated
// clusters keep their full pairwise mean distances after a rank-2
// supervised fit even though a nuisance direction carries 100× the
// class-split variance.
func TestFitSupervisedClassDirections(t *testing.T) {
	const n, dim, k = 90, 60, 3
	r := rng.New(19)
	// Class c lives at mean e_c (axes 0..2); a shared nuisance direction
	// on axes 10..59 carries 100× the variance of the class split.
	xs := make([]*sparse.Vector, n)
	labels := make([]int, n)
	nuis := make([]float64, dim)
	for j := 10; j < dim; j++ {
		nuis[j] = r.Norm()
	}
	for i := range xs {
		c := i % k
		labels[i] = c
		dense := make([]float64, dim)
		dense[c] = 1 + 0.05*r.Norm()
		// ±10 alternating: each class sees the nuisance with an exactly
		// zero mean, so it cannot leak into the class-mean directions.
		a := 10.0
		if i%2 == 1 {
			a = -10
		}
		for j, v := range nuis {
			dense[j] += a * v
		}
		xs[i] = sparse.FromDense(dense)
	}
	sep := func(p *Projection) float64 {
		// Smallest pairwise distance between projected class means.
		out := make([]float64, p.Rank)
		means := make([][]float64, k)
		for c := range means {
			means[c] = make([]float64, p.Rank)
		}
		for i, x := range xs {
			p.ApplyInto(x, out)
			for d, v := range out {
				means[labels[i]][d] += v * k / float64(n)
			}
		}
		min := math.Inf(1)
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				var d2 float64
				for d := 0; d < p.Rank; d++ {
					diff := means[a][d] - means[b][d]
					d2 += diff * diff
				}
				if d2 < min {
					min = d2
				}
			}
		}
		return math.Sqrt(min)
	}
	sup, err := Fit(xs, dim, Config{Rank: 2, Seed: 1, Labels: labels, NumClasses: k})
	if err != nil {
		t.Fatal(err)
	}
	// The two supervised rows span all three mean differences (they sum
	// to ~zero), so projection preserves the pairwise mean distances —
	// ≈ √2 for unit class axes — regardless of the 100×-variance
	// nuisance direction an unsupervised rank-2 fit would spend a row on.
	if s := sep(sup); s < 1.0 {
		t.Fatalf("supervised rank-2 separation %v, want ≥ 1.0 (≈√2 expected)", s)
	}
	// Orthonormal leading rows (greedy deflation must still normalize).
	for a := 0; a < 2; a++ {
		for b := a; b < 2; b++ {
			var dot float64
			for j := 0; j < dim; j++ {
				dot += sup.Basis[a*dim+j] * sup.Basis[b*dim+j]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("supervised rows %d·%d = %v, want %v", a, b, dot, want)
			}
		}
	}
	// Supervised fits stay deterministic.
	again, err := Fit(xs, dim, Config{Rank: 2, Seed: 1, Labels: labels, NumClasses: k})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sup.Basis {
		if sup.Basis[i] != again.Basis[i] {
			t.Fatalf("supervised basis not deterministic at %d", i)
		}
	}
	// Rank beyond the k−1 independent class directions falls through to
	// variance directions — the basis stays orthonormal end to end.
	full, err := Fit(xs, dim, Config{Rank: 5, Seed: 1, Labels: labels, NumClasses: k})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			var dot float64
			for j := 0; j < dim; j++ {
				dot += full.Basis[a*dim+j] * full.Basis[b*dim+j]
			}
			// One-pass deflation against a dominant removed direction
			// leaves ~1e-6 residual — blurs the split, never breaks it.
			if math.Abs(dot) > 1e-4 {
				t.Fatalf("mixed supervised/variance rows %d·%d = %v, want ~0", a, b, dot)
			}
		}
	}
}

// TestFitAnchorsPreserveLinearScores: anchoring the fit on a set of
// weight vectors makes the projection lossless for those classifiers —
// w·x equals the rank-space score (w projected into the basis) · (x
// projected into the basis) for every x, because w lies in the span.
func TestFitAnchorsPreserveLinearScores(t *testing.T) {
	const n, dim, k = 40, 50, 4
	xs, _ := plantedData(n, dim, 6, 13)
	r := rng.New(29)
	anchors := make([][]float64, k)
	for c := range anchors {
		anchors[c] = make([]float64, dim)
		for j := range anchors[c] {
			anchors[c][j] = r.Norm()
		}
	}
	p, err := Fit(xs, dim, Config{Rank: 6, Seed: 3, Anchors: anchors})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, p.Rank)
	for c, w := range anchors {
		// w expressed in the rank space.
		wr := make([]float64, p.Rank)
		for d := 0; d < p.Rank; d++ {
			for j, wv := range w {
				wr[d] += wv * p.Basis[d*dim+j]
			}
		}
		for i, x := range xs {
			direct := x.DotDense(w)
			p.ApplyInto(x, out)
			var projected float64
			for d, v := range out {
				projected += wr[d] * v
			}
			scale := math.Abs(direct) + 1
			if math.Abs(direct-projected) > 1e-8*scale {
				t.Fatalf("anchor %d vector %d: direct %v vs rank-space %v", c, i, direct, projected)
			}
		}
	}
	// Anchors must not be mutated by the fit.
	r2 := rng.New(29)
	for c := range anchors {
		for j := range anchors[c] {
			if want := r2.Norm(); anchors[c][j] != want {
				t.Fatalf("anchor %d mutated at %d", c, j)
			}
		}
	}
	if _, err := Fit(xs, dim, Config{Rank: 6, Anchors: [][]float64{make([]float64, dim-1)}}); err == nil {
		t.Error("wrong-length anchor accepted")
	}
}

func TestFitSupervisedArgumentErrors(t *testing.T) {
	xs, _ := plantedData(6, 10, 2, 3)
	if _, err := Fit(xs, 10, Config{Rank: 2, Labels: []int{0, 1}}); err == nil {
		t.Error("label/vector count mismatch accepted")
	}
	labels := []int{0, 1, 0, 1, 0, 1}
	if _, err := Fit(xs, 10, Config{Rank: 2, Labels: labels}); err == nil {
		t.Error("missing NumClasses accepted")
	}
	if _, err := Fit(xs, 10, Config{Rank: 2, Labels: []int{0, 1, 0, 1, 0, 7}, NumClasses: 2}); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestFitArgumentErrors(t *testing.T) {
	xs, _ := plantedData(5, 10, 2, 3)
	if _, err := Fit(xs, 10, Config{Rank: 0}); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := Fit(xs, 10, Config{Rank: 11}); err == nil {
		t.Error("rank > dim accepted")
	}
	if _, err := Fit(nil, 10, Config{Rank: 2}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Fit(xs, 0, Config{Rank: 2}); err == nil {
		t.Error("dim 0 accepted")
	}
}

// TestPackedMatchesFloat64 pins every precision rung of the packed apply
// against the row-major float64 oracle.
func TestPackedMatchesFloat64(t *testing.T) {
	const n, dim, k = 30, 64, 5
	xs, _ := plantedData(n, dim, k, 19)
	p, err := Fit(xs, dim, Config{Rank: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	oracle := make([]float64, k)
	got := make([]float64, k)
	for _, prec := range []svm.Precision{svm.Float64, svm.Float32, svm.Int8} {
		pk, err := p.Pack(prec)
		if err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		if err := pk.Validate(); err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		for _, x := range xs {
			p.ApplyInto(x, oracle)
			pk.ApplyInto(x, got)
			var scale float64
			for d := range oracle {
				if a := math.Abs(oracle[d]); a > scale {
					scale = a
				}
			}
			tol := 0.0 // float64 pack reorders additions: allow tiny slack
			switch prec {
			case svm.Float64:
				tol = 1e-12 * scale
			case svm.Float32:
				tol = 1e-6 * scale
			case svm.Int8:
				tol = 0.02 * scale // 1/127 per-component step, accumulated
			}
			for d := range oracle {
				if math.Abs(got[d]-oracle[d]) > tol {
					t.Fatalf("%v: direction %d: got %v, oracle %v (tol %v)", prec, d, got[d], oracle[d], tol)
				}
			}
		}
	}
}

func TestPackedGobRoundTrip(t *testing.T) {
	xs, _ := plantedData(20, 40, 3, 23)
	p, err := Fit(xs, 40, Config{Rank: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pk, err := p.Pack(svm.Int8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pk); err != nil {
		t.Fatal(err)
	}
	var back Packed
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	a, b := make([]float64, 3), make([]float64, 3)
	for _, x := range xs {
		pk.ApplyInto(x, a)
		back.ApplyInto(x, b)
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("round trip changed apply: %v vs %v", a, b)
			}
		}
	}
}

func TestPackedValidateRejects(t *testing.T) {
	xs, _ := plantedData(10, 20, 2, 29)
	p, _ := Fit(xs, 20, Config{Rank: 2, Seed: 3})
	fresh := func() *Packed {
		pk, err := p.Pack(svm.Int8)
		if err != nil {
			t.Fatal(err)
		}
		return pk
	}
	cases := map[string]*Packed{}
	pk := fresh()
	pk.Q8 = pk.Q8[:len(pk.Q8)-1]
	cases["truncated weights"] = pk
	pk = fresh()
	pk.Scale[0] = math.NaN()
	cases["NaN scale"] = pk
	pk = fresh()
	pk.Scale[1] = 0
	cases["zero scale"] = pk
	pk = fresh()
	pk.Rank = pk.Dim + 1
	cases["rank over dim"] = pk
	pk = fresh()
	pk.Precision = "int4"
	cases["unknown precision"] = pk
	pk = fresh()
	pk.F32 = make([]float32, 4)
	cases["mixed precisions"] = pk
	for name, bad := range cases {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt projection", name)
		}
	}
	var nilPk *Packed
	if err := nilPk.Validate(); err != nil {
		t.Errorf("nil packed projection should validate: %v", err)
	}
}

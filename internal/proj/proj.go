// Package proj learns and applies trained low-rank projections of
// phonotactic supervectors. "Subspace-based Representation and Learning
// for Phonotactic Spoken Language Recognition" (arXiv:2203.15576) shows
// the TFLLR-scaled supervectors of a front-end live close to a low-rank
// subspace; projecting onto the top principal directions before the SVM
// shrinks both the model (rank-r weight vectors instead of dim-length
// ones) and — once the basis itself is quantized — the serving bundle by
// an order of magnitude, at a measured EER cost (`lre -compress-eval`).
//
// Fitting reuses the matrix-free machinery style of internal/nap: the
// top-r eigenvectors of the uncentered second-moment matrix Xᵀ X are
// found by deflated power iteration, never materializing the dim×dim
// Gram matrix. Callers can steer the leading directions: anchor
// directions (e.g. the full-dimension SVM weight vectors, whose span
// preserves linear scores exactly) come first, then between-class
// (class-mean difference) directions when labels are supplied — the
// part of the space a linear classifier actually uses — and only the
// remaining rank is spent on variance. Everything is seeded and
// greedily deflated, so fits are deterministic and a rank-R basis
// truncates exactly to any r < R.
package proj

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// Config controls a projection fit.
type Config struct {
	// Rank is the subspace dimension r (required, 1 ≤ r ≤ dim).
	Rank int
	// Iters is the power-iteration budget per direction; 0 means
	// DefaultIters.
	Iters int
	// Tol stops a direction early when its Rayleigh quotient moves by
	// less than Tol relative per iteration; 0 means DefaultTol.
	Tol float64
	// Seed drives the deterministic start vectors.
	Seed uint64
	// Anchors are dense dim-length directions folded into the basis
	// before anything else, greedily deflated by residual energy — the
	// caller's "must-span" set. Passing a linear classifier's weight
	// vectors makes the projection lossless for that classifier's
	// scores (w·x = w·Px whenever w lies in the projected span), so a
	// rank just past the class count preserves full-dimension accuracy.
	Anchors [][]float64
	// Labels supervises the fit when non-empty (one class id per
	// training vector, NumClasses must then be > 1): after any anchors,
	// the next directions become the between-class (class-mean
	// difference) directions, deflated greedily by residual energy, and
	// only the remaining rank is spent on variance directions. For a
	// linear classifier this is the part of the space scoring actually
	// uses — unsupervised variance directions at small rank discard
	// almost all class separation (measured: +14 EER points at rank 16
	// on the medium corpus, vs ~1 supervised).
	Labels []int
	// NumClasses is the label alphabet size when Labels is set.
	NumClasses int
}

// DefaultIters bounds power iteration per direction. Convergence here is
// fast because supervector spectra decay steeply — and an imperfect
// direction only blurs the subspace split, it cannot break correctness.
const DefaultIters = 50

// DefaultTol is the relative Rayleigh-quotient change that counts as
// converged.
const DefaultTol = 1e-6

// Projection is the training-time form of a fitted rank-r projection:
// orthonormal basis rows in float64. The serving form (quantized,
// column-major) is built by Pack.
type Projection struct {
	Dim  int
	Rank int
	// Basis is row-major rank×dim: Basis[r*Dim : (r+1)*Dim] is the r-th
	// principal direction.
	Basis []float64
	// Energy[r] is the Rayleigh quotient (eigenvalue estimate) of
	// direction r at convergence, in fitting order — diagnostics for the
	// compress-eval sweep, not used in Apply.
	Energy []float64
}

// Fit learns a rank-r projection from training supervectors by deflated
// power iteration on S = Σᵢ xᵢxᵢᵀ. Each direction iterates v ← S v with
// re-orthogonalization against the directions already found (deflation),
// so the basis comes out orthonormal to working precision.
func Fit(xs []*sparse.Vector, dim int, cfg Config) (*Projection, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("proj: non-positive dimension %d", dim)
	}
	if cfg.Rank <= 0 || cfg.Rank > dim {
		return nil, fmt.Errorf("proj: rank %d outside [1, %d]", cfg.Rank, dim)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("proj: no training vectors")
	}
	iters := cfg.Iters
	if iters <= 0 {
		iters = DefaultIters
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = DefaultTol
	}
	p := &Projection{
		Dim:    dim,
		Rank:   cfg.Rank,
		Basis:  make([]float64, cfg.Rank*dim),
		Energy: make([]float64, cfg.Rank),
	}
	super := 0
	if len(cfg.Anchors) > 0 {
		cands := make([][]float64, len(cfg.Anchors))
		for k, a := range cfg.Anchors {
			if len(a) != dim {
				return nil, fmt.Errorf("proj: anchor %d has %d components, want %d", k, len(a), dim)
			}
			cands[k] = append([]float64(nil), a...)
		}
		super = greedyDeflate(p, cands, super, dim)
	}
	if len(cfg.Labels) > 0 {
		cands, err := classCandidates(xs, cfg, dim)
		if err != nil {
			return nil, err
		}
		super = greedyDeflate(p, cands, super, dim)
	}
	r := rng.New(cfg.Seed).SplitString("proj.fit")
	v := make([]float64, dim)
	sv := make([]float64, dim)
	for d := super; d < cfg.Rank; d++ {
		// Deterministic start: dense uniform(-1,1), independent per rank.
		rd := r.Split(uint64(d))
		for j := range v {
			v[j] = 2*rd.Float64() - 1
		}
		orthogonalize(v, p.Basis[:d*dim], dim)
		if normalize(v) == 0 {
			return nil, fmt.Errorf("proj: degenerate start for direction %d", d)
		}
		var lastQ float64
		for it := 0; it < iters; it++ {
			// sv = S v = Σᵢ (xᵢ·v) xᵢ, matrix-free over the sparse rows.
			for j := range sv {
				sv[j] = 0
			}
			for _, x := range xs {
				c := x.DotDense(v)
				if c != 0 {
					x.AxpyDense(c, sv)
				}
			}
			orthogonalize(sv, p.Basis[:d*dim], dim)
			q := normalize(sv)
			if q == 0 {
				// The residual space carries no energy: data rank < r.
				// Keep the orthonormal start direction with zero energy.
				break
			}
			copy(v, sv)
			if lastQ > 0 && math.Abs(q-lastQ) <= tol*lastQ {
				lastQ = q
				break
			}
			lastQ = q
		}
		copy(p.Basis[d*dim:(d+1)*dim], v)
		p.Energy[d] = lastQ
	}
	return p, nil
}

// classCandidates builds the between-class direction candidates
// μ_c − μ from the labelled training vectors.
func classCandidates(xs []*sparse.Vector, cfg Config, dim int) ([][]float64, error) {
	if len(cfg.Labels) != len(xs) {
		return nil, fmt.Errorf("proj: %d labels for %d vectors", len(cfg.Labels), len(xs))
	}
	if cfg.NumClasses <= 1 {
		return nil, fmt.Errorf("proj: supervised fit needs NumClasses > 1, got %d", cfg.NumClasses)
	}
	sums := make([][]float64, cfg.NumClasses)
	counts := make([]int, cfg.NumClasses)
	total := make([]float64, dim)
	for i, x := range xs {
		c := cfg.Labels[i]
		if c < 0 || c >= cfg.NumClasses {
			return nil, fmt.Errorf("proj: label %d outside [0, %d)", c, cfg.NumClasses)
		}
		if sums[c] == nil {
			sums[c] = make([]float64, dim)
		}
		x.AxpyDense(1, sums[c])
		x.AxpyDense(1, total)
		counts[c]++
	}
	n := float64(len(xs))
	var cands [][]float64
	for c, s := range sums {
		if s == nil {
			continue
		}
		inv := 1 / float64(counts[c])
		for j := range s {
			s[j] = s[j]*inv - total[j]/n
		}
		cands = append(cands, s)
	}
	return cands, nil
}

// greedyDeflate fills basis rows of p starting at row `start` with the
// orthonormalized candidates, chosen greedily by residual norm so the
// deflation ordering (and therefore exact truncation to any smaller
// rank) is preserved. Candidates are consumed destructively; linearly
// dependent ones are dropped once their residual energy is numerically
// exhausted. Returns the next free row.
func greedyDeflate(p *Projection, cands [][]float64, start, dim int) int {
	// Remove the span of rows already in the basis (earlier tiers).
	for _, c := range cands {
		orthogonalize(c, p.Basis[:start*dim], dim)
	}
	// Greedy deflation: pick the largest residual, normalize it into the
	// basis, remove its span from every remaining candidate.
	d := start
	var first float64
	for d < p.Rank && len(cands) > 0 {
		best, bestSq := 0, 0.0
		for k, c := range cands {
			var sq float64
			for _, v := range c {
				sq += v * v
			}
			if sq > bestSq {
				best, bestSq = k, sq
			}
		}
		if first == 0 {
			first = bestSq
		}
		// Candidate sets are often linearly dependent (class-mean
		// residuals sum to ~zero when classes are balanced): once the
		// residual energy is numerically exhausted the remaining
		// candidates are noise.
		if bestSq <= 1e-18 || bestSq <= 1e-20*first {
			break
		}
		b := cands[best]
		inv := 1 / math.Sqrt(bestSq)
		row := p.Basis[d*dim : (d+1)*dim]
		for j, v := range b {
			row[j] = v * inv
		}
		p.Energy[d] = bestSq
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
		for _, c := range cands {
			var dot float64
			for j, v := range c {
				dot += v * row[j]
			}
			if dot != 0 {
				for j := range c {
					c[j] -= dot * row[j]
				}
			}
		}
		d++
	}
	return d
}

// orthogonalize removes from v its components along the given basis rows
// (classical Gram–Schmidt, two passes — "twice is enough": one pass
// leaves O(ε·‖v‖) residuals along dominant removed directions, which
// power iteration re-amplifies into a duplicated direction once the
// genuine residual space is exhausted).
func orthogonalize(v, basis []float64, dim int) {
	for pass := 0; pass < 2; pass++ {
		for r := 0; r*dim < len(basis); r++ {
			b := basis[r*dim : (r+1)*dim]
			var c float64
			for j, bv := range b {
				c += v[j] * bv
			}
			if c != 0 {
				for j, bv := range b {
					v[j] -= c * bv
				}
			}
		}
	}
}

// normalize scales v to unit length, returning the pre-normalization
// norm (0 leaves v untouched).
func normalize(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	n := math.Sqrt(s)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for j := range v {
		v[j] *= inv
	}
	return n
}

// ApplyInto writes the projection of a supervector into out (length
// Rank): out[d] = basis row d · x.
func (p *Projection) ApplyInto(x *sparse.Vector, out []float64) {
	for d := 0; d < p.Rank; d++ {
		out[d] = x.DotDense(p.Basis[d*p.Dim : (d+1)*p.Dim])
	}
}

// Apply returns the projection of a supervector as a dense rank-dim
// sparse vector (indices 0..Rank-1; exact zeros are dropped, which inner
// products ignore).
func (p *Projection) Apply(x *sparse.Vector) *sparse.Vector {
	out := make([]float64, p.Rank)
	p.ApplyInto(x, out)
	return sparse.FromDense(out)
}

// Pack builds the serving form of the projection at the requested
// precision: column-major (feature-major) so applying it walks a
// supervector's nonzeros once with Rank contiguous multiply-adds per
// nonzero — the same access pattern as the packed SVM kernel. Int8
// packing quantizes symmetrically per direction (per output component),
// so the dequantization is a single per-direction scale in the epilogue.
func (p *Projection) Pack(prec svm.Precision) (*Packed, error) {
	pk := &Packed{Dim: p.Dim, Rank: p.Rank, Precision: prec.String()}
	switch prec {
	case svm.Float64:
		pk.F64 = make([]float64, len(p.Basis))
		for d := 0; d < p.Rank; d++ {
			for j := 0; j < p.Dim; j++ {
				pk.F64[j*p.Rank+d] = p.Basis[d*p.Dim+j]
			}
		}
	case svm.Float32:
		pk.F32 = make([]float32, len(p.Basis))
		for d := 0; d < p.Rank; d++ {
			for j := 0; j < p.Dim; j++ {
				pk.F32[j*p.Rank+d] = float32(p.Basis[d*p.Dim+j])
			}
		}
	case svm.Int8:
		pk.Q8 = make([]byte, len(p.Basis))
		pk.Scale = make([]float64, p.Rank)
		for d := 0; d < p.Rank; d++ {
			row := p.Basis[d*p.Dim : (d+1)*p.Dim]
			var maxAbs float64
			for _, w := range row {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					return nil, fmt.Errorf("proj: direction %d has a non-finite component", d)
				}
				if a := math.Abs(w); a > maxAbs {
					maxAbs = a
				}
			}
			s := maxAbs / 127
			if s == 0 {
				s = 1
			}
			pk.Scale[d] = s
			for j, w := range row {
				pk.Q8[j*p.Rank+d] = byte(int8(math.RoundToEven(w / s)))
			}
		}
	default:
		return nil, fmt.Errorf("proj: cannot pack at precision %v", prec)
	}
	return pk, nil
}

// Packed is the persisted, serve-time form of a projection: the basis in
// column-major (feature-major) layout at one precision. Exactly one of
// F64/F32/Q8 is populated, matching Precision. Q8 is byte-encoded int8
// (gob stores byte slices at one byte per element — the reason a rank-32
// int8 basis is ~9× smaller than its float64 form on disk) with a
// per-direction symmetric dequantization scale.
type Packed struct {
	Dim       int
	Rank      int
	Precision string
	F64       []float64
	F32       []float32
	Q8        []byte
	// Scale[d] dequantizes direction d of Q8 (int8 precision only).
	Scale []float64
}

// Validate checks the invariants ApplyInto relies on — the backstop
// behind untrusted gob decodes (truncated blocks, NaN scales), which must
// error cleanly rather than panic at scoring time.
func (pk *Packed) Validate() error {
	if pk == nil {
		return nil
	}
	if pk.Dim <= 0 || pk.Rank <= 0 || pk.Rank > pk.Dim {
		return fmt.Errorf("proj: packed projection rank %d over dimension %d", pk.Rank, pk.Dim)
	}
	prec, err := svm.ParsePrecision(pk.Precision)
	if err != nil {
		return err
	}
	want := pk.Dim * pk.Rank
	switch prec {
	case svm.Float64:
		if len(pk.F64) != want || len(pk.F32) != 0 || len(pk.Q8) != 0 {
			return fmt.Errorf("proj: float64 packed projection holds %d weights, want %d", len(pk.F64), want)
		}
	case svm.Float32:
		if len(pk.F32) != want || len(pk.F64) != 0 || len(pk.Q8) != 0 {
			return fmt.Errorf("proj: float32 packed projection holds %d weights, want %d", len(pk.F32), want)
		}
	case svm.Int8:
		if len(pk.Q8) != want || len(pk.F64) != 0 || len(pk.F32) != 0 {
			return fmt.Errorf("proj: int8 packed projection holds %d weights, want %d", len(pk.Q8), want)
		}
		if len(pk.Scale) != pk.Rank {
			return fmt.Errorf("proj: int8 packed projection has %d scales, want %d", len(pk.Scale), pk.Rank)
		}
		for d, s := range pk.Scale {
			if math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
				return fmt.Errorf("proj: packed projection direction %d has scale %v", d, s)
			}
		}
	}
	return nil
}

// ApplyInto writes the projection of a raw-space supervector into out
// (length Rank), dequantizing in the epilogue for int8 bases.
// Allocation-free.
func (pk *Packed) ApplyInto(x *sparse.Vector, out []float64) {
	R := pk.Rank
	for d := range out {
		out[d] = 0
	}
	val := x.Val[:len(x.Idx)]
	switch {
	case pk.F64 != nil:
		for k, i := range x.Idx {
			j := int(i)
			if j >= pk.Dim {
				break
			}
			xv := val[k]
			col := pk.F64[j*R : j*R+R]
			for d, w := range col {
				out[d] += xv * w
			}
		}
	case pk.F32 != nil:
		for k, i := range x.Idx {
			j := int(i)
			if j >= pk.Dim {
				break
			}
			xv := val[k]
			col := pk.F32[j*R : j*R+R]
			for d, w := range col {
				out[d] += xv * float64(w)
			}
		}
	default:
		for k, i := range x.Idx {
			j := int(i)
			if j >= pk.Dim {
				break
			}
			xv := val[k]
			col := pk.Q8[j*R : j*R+R]
			for d, w := range col {
				out[d] += xv * float64(int8(w))
			}
		}
		for d := range out {
			out[d] *= pk.Scale[d]
		}
	}
}

// Apply returns the projection as a dense rank-dim sparse vector.
func (pk *Packed) Apply(x *sparse.Vector) *sparse.Vector {
	out := make([]float64, pk.Rank)
	pk.ApplyInto(x, out)
	return sparse.FromDense(out)
}

// Bytes reports the in-memory footprint of the packed basis.
func (pk *Packed) Bytes() int {
	if pk == nil {
		return 0
	}
	return len(pk.F64)*8 + len(pk.F32)*4 + len(pk.Q8) + len(pk.Scale)*8
}

// Package linalg implements the dense linear algebra needed by the
// reproduction: vector/matrix arithmetic, Cholesky and LU factorizations,
// a symmetric Jacobi eigensolver, and the generalized symmetric
// eigenproblem used by linear discriminant analysis in the fusion backend.
//
// Matrices are dense row-major. Dimensions in this project are modest
// (fusion operates in at most a few dozen dimensions), so clarity is
// preferred over blocking or SIMD tricks; the hot paths of the system are
// in the sparse supervector code, not here.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (shared backing array).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product a·x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddMat adds b into m in place.
func (m *Matrix) AddMat(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: AddMat dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// ErrSingular is returned by LU-based solves for singular systems.
var ErrSingular = errors.New("linalg: singular matrix")

// Cholesky computes the lower-triangular L with a = L·Lᵀ. Only the lower
// triangle of a is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskySolve solves a·x = b given the Cholesky factor L of a.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: CholeskySolve dimension mismatch")
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// LU holds a row-pivoted LU factorization.
type LU struct {
	lu   *Matrix
	piv  []int
	sign float64
}

// NewLU factors a (which is not modified) with partial pivoting.
func NewLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		panic("linalg: LU of non-square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for col := 0; col < n; col++ {
		// Pivot.
		p, maxAbs := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if ab := math.Abs(lu.At(r, col)); ab > maxAbs {
				p, maxAbs = r, ab
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != col {
			rp, rc := lu.Row(p), lu.Row(col)
			for j := range rp {
				rp[j], rc[j] = rc[j], rp[j]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		// Eliminate below.
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			rr, rc := lu.Row(r), lu.Row(col)
			for j := col + 1; j < n; j++ {
				rr[j] -= f * rc[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves a·x = b for the factored matrix.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	x := make([]float64, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward: L (unit diagonal).
	for i := 1; i < n; i++ {
		for k := 0; k < i; k++ {
			x[i] -= f.lu.At(i, k) * x[k]
		}
	}
	// Backward: U.
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			x[i] -= f.lu.At(i, k) * x[k]
		}
		x[i] /= f.lu.At(i, i)
	}
	return x
}

// LogDet returns log |det a| and the sign of the determinant.
func (f *LU) LogDet() (logAbs, sign float64) {
	sign = f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d := f.lu.At(i, i)
		if d < 0 {
			sign = -sign
			d = -d
		}
		logAbs += math.Log(d)
	}
	return logAbs, sign
}

// Inverse returns a⁻¹ via LU factorization.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// SymEig computes all eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi method. Eigenpairs are returned in descending
// eigenvalue order; column j of the returned matrix is the j-th
// eigenvector.
func SymEig(a *Matrix) (values []float64, vectors *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: SymEig of non-square matrix")
	}
	n := a.Rows
	s := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += s.At(i, j) * s.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := s.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := s.At(p, p), s.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := t * c
				// Apply rotation to S from both sides.
				for k := 0; k < n; k++ {
					skp, skq := s.At(k, p), s.At(k, q)
					s.Set(k, p, c*skp-sn*skq)
					s.Set(k, q, sn*skp+c*skq)
				}
				for k := 0; k < n; k++ {
					spk, sqk := s.At(p, k), s.At(q, k)
					s.Set(p, k, c*spk-sn*sqk)
					s.Set(q, k, sn*spk+c*sqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-sn*vkq)
					v.Set(k, q, sn*vkp+c*vkq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = s.At(i, i)
	}
	// Sort descending by eigenvalue, permuting vector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if values[idx[j]] > values[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	sorted := make([]float64, n)
	vectors = NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			vectors.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sorted, vectors
}

// GenSymEig solves the generalized symmetric eigenproblem A·x = λ·B·x for
// symmetric A and symmetric positive definite B, as needed by LDA
// (A = between-class scatter, B = within-class scatter). It reduces the
// problem to a standard one via the Cholesky factor of B. Eigenpairs are
// returned in descending order; column j of the returned matrix is the j-th
// generalized eigenvector (B-orthonormal).
func GenSymEig(a, b *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		panic("linalg: GenSymEig dimension mismatch")
	}
	l, err := Cholesky(b)
	if err != nil {
		return nil, nil, err
	}
	n := a.Rows
	// C = L⁻¹ · A · L⁻ᵀ, computed column-by-column with triangular solves.
	// First Y = L⁻¹·A (solve L·Y = A column-wise), then C = Y·L⁻ᵀ i.e.
	// solve L·Cᵀ = Yᵀ column-wise (C symmetric).
	y := NewMatrix(n, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = a.At(i, j)
		}
		sol := forwardSolve(l, col)
		for i := 0; i < n; i++ {
			y.Set(i, j, sol[i])
		}
	}
	c := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(col, y.Row(i))
		sol := forwardSolve(l, col)
		for j := 0; j < n; j++ {
			c.Set(i, j, sol[j])
		}
	}
	// Symmetrize against round-off before Jacobi.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := 0.5 * (c.At(i, j) + c.At(j, i))
			c.Set(i, j, m)
			c.Set(j, i, m)
		}
	}
	values, u := SymEig(c)
	// Back-transform: x = L⁻ᵀ·u, column-wise back substitution.
	vectors = NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = u.At(i, j)
		}
		sol := backSolveT(l, col)
		for i := 0; i < n; i++ {
			vectors.Set(i, j, sol[i])
		}
	}
	return values, vectors, nil
}

// forwardSolve solves L·x = b for lower-triangular L.
func forwardSolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// backSolveT solves Lᵀ·x = b for lower-triangular L.
func backSolveT(l *Matrix, b []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// Outer accumulates the outer product scale·x·yᵀ into m in place.
func Outer(m *Matrix, scale float64, x, y []float64) {
	if m.Rows != len(x) || m.Cols != len(y) {
		panic("linalg: Outer dimension mismatch")
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		f := scale * xi
		for j, yj := range y {
			row[j] += f * yj
		}
	}
}

// Mean returns the column-wise mean of the rows of m.
func Mean(m *Matrix) []float64 {
	out := make([]float64, m.Cols)
	if m.Rows == 0 {
		return out
	}
	for i := 0; i < m.Rows; i++ {
		Axpy(1, m.Row(i), out)
	}
	ScaleVec(1/float64(m.Rows), out)
	return out
}

package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	p := Mul(a, Identity(2))
	for i := range a.Data {
		if a.Data[i] != p.Data[i] {
			t.Fatalf("A·I != A at %d", i)
		}
	}
	p2 := Mul(Identity(3), a)
	for i := range a.Data {
		if a.Data[i] != p2.Data[i] {
			t.Fatalf("I·A != A at %d", i)
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	p := Mul(a, b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Errorf("(%d,%d)=%v want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	y := MulVec(a, []float64{5, 6})
	if y[0] != 17 || y[1] != 39 {
		t.Fatalf("MulVec = %v", y)
	}
}

func randSPD(r *rng.RNG, n int) *Matrix {
	// A = G·Gᵀ + n·I is SPD.
	g := NewMatrix(n, n)
	for i := range g.Data {
		g.Data[i] = r.Norm()
	}
	a := Mul(g, g.T())
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 5, 12} {
		a := randSPD(r, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := Mul(l, l.T())
		for i := range a.Data {
			if !approxEq(a.Data[i], rec.Data[i], 1e-9) {
				t.Fatalf("n=%d: L·Lᵀ mismatch at %d: %v vs %v", n, i, rec.Data[i], a.Data[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

func TestCholeskySolve(t *testing.T) {
	r := rng.New(2)
	n := 8
	a := randSPD(r, n)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Norm()
	}
	b := MulVec(a, x)
	got := CholeskySolve(l, b)
	for i := range x {
		if !approxEq(got[i], x[i], 1e-8) {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, got[i], x[i])
		}
	}
}

func TestLUSolveAndDet(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{10, 12})
	// 4x+3y=10, 6x+3y=12 → x=1, y=2.
	if !approxEq(x[0], 1, 1e-12) || !approxEq(x[1], 2, 1e-12) {
		t.Fatalf("LU solve = %v", x)
	}
	logAbs, sign := f.LogDet()
	// det = 4·3 - 3·6 = -6.
	if sign != -1 || !approxEq(math.Exp(logAbs), 6, 1e-9) {
		t.Fatalf("LogDet: |det|=%v sign=%v", math.Exp(logAbs), sign)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := NewLU(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestInverse(t *testing.T) {
	r := rng.New(3)
	n := 6
	a := randSPD(r, n)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	p := Mul(a, inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !approxEq(p.At(i, j), want, 1e-8) {
				t.Fatalf("A·A⁻¹ at (%d,%d) = %v", i, j, p.At(i, j))
			}
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs := SymEig(a)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if !approxEq(vals[i], w, 1e-10) {
			t.Fatalf("eigenvalue %d = %v, want %v", i, vals[i], w)
		}
	}
	// Eigenvectors should be signed unit axes.
	for j := 0; j < 3; j++ {
		var nrm float64
		for i := 0; i < 3; i++ {
			nrm += vecs.At(i, j) * vecs.At(i, j)
		}
		if !approxEq(nrm, 1, 1e-10) {
			t.Fatalf("eigenvector %d not unit: %v", j, nrm)
		}
	}
}

func TestSymEigReconstruction(t *testing.T) {
	r := rng.New(4)
	n := 10
	a := randSPD(r, n)
	vals, vecs := SymEig(a)
	// Check A·v_j = λ_j·v_j and descending order.
	for j := 0; j < n; j++ {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = vecs.At(i, j)
		}
		av := MulVec(a, v)
		for i := 0; i < n; i++ {
			if !approxEq(av[i], vals[j]*v[i], 1e-7*math.Abs(vals[j])+1e-9) {
				t.Fatalf("A·v != λ·v at eig %d comp %d: %v vs %v", j, i, av[i], vals[j]*v[i])
			}
		}
		if j > 0 && vals[j] > vals[j-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
}

func TestGenSymEig(t *testing.T) {
	r := rng.New(5)
	n := 7
	a := randSPD(r, n)
	b := randSPD(r, n)
	vals, vecs, err := GenSymEig(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = vecs.At(i, j)
		}
		av := MulVec(a, v)
		bv := MulVec(b, v)
		for i := 0; i < n; i++ {
			if !approxEq(av[i], vals[j]*bv[i], 1e-6*(1+math.Abs(vals[j]))) {
				t.Fatalf("A·v != λ·B·v at eig %d comp %d: %v vs %v", j, i, av[i], vals[j]*bv[i])
			}
		}
	}
}

func TestDotAxpyNorm(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("Axpy = %v", y)
	}
	if !approxEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2(3,4) != 5")
	}
}

func TestOuterAndMean(t *testing.T) {
	m := NewMatrix(2, 2)
	Outer(m, 2, []float64{1, 2}, []float64{3, 4})
	if m.At(0, 0) != 6 || m.At(0, 1) != 8 || m.At(1, 0) != 12 || m.At(1, 1) != 16 {
		t.Fatalf("Outer = %v", m.Data)
	}
	mm := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	mean := Mean(mm)
	if mean[0] != 3 || mean[1] != 4 {
		t.Fatalf("Mean = %v", mean)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	r := rng.New(6)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		n := rr.Intn(5) + 1
		mk := func() *Matrix {
			m := NewMatrix(n, n)
			for i := range m.Data {
				m.Data[i] = rr.Norm()
			}
			return m
		}
		a, b, c := mk(), mk(), mk()
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		for i := range left.Data {
			if !approxEq(left.Data[i], right.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

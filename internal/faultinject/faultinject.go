// Package faultinject is a deterministic, seeded fault-injection layer
// for chaos testing the pipeline and the online scoring service. Code
// under test declares *named injection points* ("sites"); a test (or the
// lred -chaos flag) activates a Plan of per-site rules that decide, per
// hit, whether the site faults — by returning an error, panicking, or
// stalling. With no plan active every check is a single atomic load, so
// instrumented code pays nothing in production.
//
// Determinism: every site gets its own splitmix64 stream seeded from
// (plan seed ⊕ site-name hash), and rules fire as a pure function of the
// site's hit index. Two runs that hit a site the same number of times see
// the identical fault schedule at that site regardless of what other
// sites (or goroutine interleavings elsewhere) do — which is what lets
// the chaos suite assert exact failure behavior instead of "something
// broke somewhere".
//
// Named sites threaded through the stack (see the packages that call
// At/Disturb/Reader):
//
//	lattice.sausage        confusion-network construction (panic/delay)
//	frontend.decode        simulated recognizer decode (error→quarantine/panic/delay)
//	persist.save           model save before the atomic rename (error)
//	persist.load.read      model read stream — partial/torn reads (error)
//	parallel.task          worker-pool task body (panic/stall)
//	serve.handler          HTTP scoring handler entry (delay/error)
//	serve.batch            batch dispatch — queue pressure (delay/panic)
//	serve.score.fe.<name>  one front-end's scoring pass (error/panic)
//	serve.reload           model registry reload (error)
//	cascade.tier1          cascade tier-1 scoring (error/panic → transparent
//	                       escalation to the heavy path, never a 5xx)
//
// Online-adaptation sites (internal/adapt; any injected error, panic, or
// crash leaves the serving model untouched and bit-identical — the
// promotion pipeline aborts or quarantines instead):
//
//	adapt.train            self-training pass — vote, select, retrain (error/panic)
//	adapt.canary           golden-score canary; hit both by the pre-promotion
//	                       gate and the post-promotion probe, so after=N can
//	                       fail either one deterministically (error/panic →
//	                       quarantine or automatic rollback)
//	adapt.promote          the CURRENT pointer flip — the promotion commit
//	                       point (error/panic models a crash mid-promotion)
//
// Cluster sites (the coordinator hits one per shard RPC — scoring,
// bundle push, and health probe alike; internal/cluster):
//
//	cluster.rpc.<host:port>  one shard RPC about to leave the coordinator
//	                         (error→shard degrades or breaker trips,
//	                         delay→RPC stalls into its shard deadline).
//	                         Plans usually match by prefix: cluster.rpc.*
//
// Checkpoint/resume sites (the kill-and-resume suite and lre -chaos
// schedule crashes here; see internal/checkpoint):
//
//	checkpoint.save             save entry point (error aborts cleanly)
//	checkpoint.save.prepublish  bytes durable, before the manifest rename (crash-before-commit)
//	checkpoint.save.postpublish after the manifest rename (crash-after-commit)
//	checkpoint.load             entry load entry point (error)
//	checkpoint.load.read        entry read stream — partial/torn reads (error)
package faultinject

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is what happens when a rule fires.
type Kind int

const (
	// KindError makes At return an error (sites with an error path
	// degrade; sites without one — Disturb — panic instead).
	KindError Kind = iota
	// KindPanic panics at the site.
	KindPanic
	// KindDelay stalls the site for Rule.Delay, then proceeds normally.
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule schedules faults at one site. Site matches exactly, or by prefix
// when it ends in ".*" (e.g. "serve.score.fe.*" covers every front-end).
// A rule fires on a hit when the hit survives After, matches Every and/or
// the Prob draw, and Count has not been exhausted. Zero Every with zero
// Prob never fires.
type Rule struct {
	Site string
	Kind Kind
	// Prob fires with this per-hit probability, drawn from the site's
	// deterministic stream.
	Prob float64
	// Every fires on hits Every, 2·Every, … (counted after After). Both
	// Every and Prob set means either firing condition suffices.
	Every int
	// After skips the site's first After hits entirely.
	After int
	// Count caps the total number of fires (0 = unlimited).
	Count int
	// Err is the error/panic message (a default naming the site is used
	// when empty).
	Err string
	// Delay is the stall duration for KindDelay.
	Delay time.Duration
	// Bytes delays a Reader fault until that many bytes were read
	// (simulating a torn/partial read instead of an immediate failure).
	Bytes int64
}

// Plan is a complete fault schedule.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// InjectedError marks every error produced by this package, so tests and
// handlers can tell injected faults from organic ones.
type InjectedError struct {
	Site string
	Msg  string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: %s at %s", e.Msg, e.Site)
}

// siteState is one concrete site's deterministic stream and counters.
type siteState struct {
	rule *Rule

	mu    sync.Mutex
	rng   uint64 // splitmix64 state
	hits  int64
	fires int64
}

// active is one Enable'd plan compiled for lookup.
type active struct {
	seed  uint64
	exact map[string]*Rule
	// prefixes are ".*" rules, longest prefix first.
	prefixes []prefixRule

	mu    sync.Mutex
	sites map[string]*siteState
}

type prefixRule struct {
	prefix string
	rule   *Rule
}

var (
	mu      sync.Mutex
	current *active
	enabled atomic.Bool
)

// Enable activates a plan (replacing any active one). Call Disable (or
// the returned restore function) when done; tests should defer it.
func Enable(p *Plan) func() {
	a := &active{
		seed:  p.Seed,
		exact: make(map[string]*Rule, len(p.Rules)),
		sites: make(map[string]*siteState),
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if strings.HasSuffix(r.Site, ".*") {
			a.prefixes = append(a.prefixes, prefixRule{prefix: strings.TrimSuffix(r.Site, "*"), rule: r})
		} else {
			a.exact[r.Site] = r
		}
	}
	sort.Slice(a.prefixes, func(i, j int) bool {
		return len(a.prefixes[i].prefix) > len(a.prefixes[j].prefix)
	})
	mu.Lock()
	current = a
	enabled.Store(true)
	mu.Unlock()
	return Disable
}

// Disable deactivates fault injection. Idempotent.
func Disable() {
	mu.Lock()
	enabled.Store(false)
	current = nil
	mu.Unlock()
}

// Enabled reports whether a plan is active.
func Enabled() bool { return enabled.Load() }

// SiteStats is one site's hit/fire counters under the active plan.
type SiteStats struct {
	Hits  int64
	Fires int64
}

// Snapshot returns per-site counters of the active plan (nil when
// disabled). The chaos suite uses it to assert that every named site
// actually fired.
func Snapshot() map[string]SiteStats {
	mu.Lock()
	a := current
	mu.Unlock()
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]SiteStats, len(a.sites))
	for name, st := range a.sites {
		st.mu.Lock()
		out[name] = SiteStats{Hits: st.hits, Fires: st.fires}
		st.mu.Unlock()
	}
	return out
}

// lookup resolves the rule for a concrete site name.
func (a *active) lookup(site string) *Rule {
	if r, ok := a.exact[site]; ok {
		return r
	}
	for _, p := range a.prefixes {
		if strings.HasPrefix(site, p.prefix) {
			return p.rule
		}
	}
	return nil
}

// state returns (creating if needed) the per-site state.
func (a *active) state(site string) *siteState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.sites[site]
	if !ok {
		st = &siteState{rule: a.lookup(site), rng: a.seed ^ fnv64(site)}
		a.sites[site] = st
	}
	return st
}

// hit records one hit at the site and returns the scheduled fault rule if
// this hit fires, else nil.
func hit(site string) *Rule {
	if !enabled.Load() {
		return nil
	}
	mu.Lock()
	a := current
	mu.Unlock()
	if a == nil {
		return nil
	}
	st := a.state(site)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.hits++
	r := st.rule
	if r == nil {
		return nil
	}
	if st.hits <= int64(r.After) {
		return nil
	}
	if r.Count > 0 && st.fires >= int64(r.Count) {
		return nil
	}
	// Exactly one stream draw per hit (when Prob is in play) keeps the
	// schedule a pure function of the hit index, whatever Every decides.
	draw := 1.0
	if r.Prob > 0 {
		draw = u01(&st.rng)
	}
	fired := r.Every > 0 && (st.hits-int64(r.After))%int64(r.Every) == 0
	if draw < r.Prob {
		fired = true
	}
	if !fired {
		return nil
	}
	st.fires++
	return r
}

// errFor builds the injected error for a fired rule.
func errFor(site string, r *Rule) *InjectedError {
	msg := r.Err
	if msg == "" {
		msg = "injected " + r.Kind.String()
	}
	return &InjectedError{Site: site, Msg: msg}
}

// At checks a named site: a fired error rule returns its error, a panic
// rule panics with an *InjectedError, a delay rule sleeps then returns
// nil. The normal (no plan / no fault) path is a single atomic load.
func At(site string) error {
	r := hit(site)
	if r == nil {
		return nil
	}
	switch r.Kind {
	case KindPanic:
		panic(errFor(site, r))
	case KindDelay:
		time.Sleep(r.Delay)
		return nil
	default:
		return errFor(site, r)
	}
}

// Disturb is At for call sites with no error return (lattice builders,
// worker-pool bodies): error-kind rules surface as panics so a scheduled
// fault never silently disappears.
func Disturb(site string) {
	r := hit(site)
	if r == nil {
		return
	}
	switch r.Kind {
	case KindDelay:
		time.Sleep(r.Delay)
	default:
		panic(errFor(site, r))
	}
}

// Reader wraps r with the fault scheduled at site on this hit, if any: a
// fired error rule makes the stream fail after Rule.Bytes bytes (0 =
// immediately), simulating a torn or partial read. Other kinds, and the
// no-fault path, return r unchanged (after any delay).
func Reader(site string, r io.Reader) io.Reader {
	rule := hit(site)
	if rule == nil {
		return r
	}
	switch rule.Kind {
	case KindPanic:
		panic(errFor(site, rule))
	case KindDelay:
		time.Sleep(rule.Delay)
		return r
	}
	return &faultReader{r: r, remaining: rule.Bytes, err: errFor(site, rule)}
}

type faultReader struct {
	r         io.Reader
	remaining int64
	err       error
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if fr.remaining <= 0 {
		return 0, fr.err
	}
	if int64(len(p)) > fr.remaining {
		p = p[:fr.remaining]
	}
	n, err := fr.r.Read(p)
	fr.remaining -= int64(n)
	if err == io.EOF {
		// The underlying stream ended before the budget: keep the real EOF.
		return n, err
	}
	if fr.remaining <= 0 && err == nil {
		err = fr.err
	}
	return n, err
}

// fnv64 hashes a site name (FNV-1a).

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 step; u01 maps it to [0,1).
func u01(state *uint64) float64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("enabled with no plan")
	}
	if err := At("any.site"); err != nil {
		t.Fatalf("disabled At returned %v", err)
	}
	Disturb("any.site") // must not panic
	if Snapshot() != nil {
		t.Fatal("disabled snapshot not nil")
	}
}

func TestEveryScheduleIsExact(t *testing.T) {
	defer Enable(&Plan{Seed: 1, Rules: []Rule{
		{Site: "s", Kind: KindError, Every: 3, After: 2},
	}})()
	var fired []int
	for i := 1; i <= 12; i++ {
		if err := At("s"); err != nil {
			fired = append(fired, i)
		}
	}
	// After skips hits 1–2; Every=3 then fires on post-skip hits 3,6,9 →
	// absolute hits 5, 8, 11.
	want := []int{5, 8, 11}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	st := Snapshot()["s"]
	if st.Hits != 12 || st.Fires != 3 {
		t.Fatalf("stats %+v, want 12 hits / 3 fires", st)
	}
}

func TestProbScheduleIsDeterministic(t *testing.T) {
	run := func() []int {
		defer Enable(&Plan{Seed: 42, Rules: []Rule{
			{Site: "p", Kind: KindError, Prob: 0.3},
		}})()
		var fired []int
		for i := 0; i < 200; i++ {
			if err := At("p"); err != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("degenerate schedule: %d fires of 200 at p=0.3", len(a))
	}
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
	// A different seed must give a different schedule.
	defer Enable(&Plan{Seed: 43, Rules: []Rule{
		{Site: "p", Kind: KindError, Prob: 0.3},
	}})()
	var c []int
	for i := 0; i < 200; i++ {
		if err := At("p"); err != nil {
			c = append(c, i)
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestSitesHaveIndependentStreams(t *testing.T) {
	// Hitting site B must not perturb site A's schedule.
	fire := func(interleave bool) []int {
		defer Enable(&Plan{Seed: 7, Rules: []Rule{
			{Site: "a", Kind: KindError, Prob: 0.25},
			{Site: "b", Kind: KindError, Prob: 0.9},
		}})()
		var fired []int
		for i := 0; i < 100; i++ {
			if interleave {
				_ = At("b")
				_ = At("b")
			}
			if err := At("a"); err != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := fire(false), fire(true)
	if len(a) != len(b) {
		t.Fatalf("site A schedule changed when B was hit: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("site A schedule changed when B was hit")
		}
	}
}

func TestCountCapsFires(t *testing.T) {
	defer Enable(&Plan{Seed: 1, Rules: []Rule{
		{Site: "c", Kind: KindError, Every: 1, Count: 2},
	}})()
	n := 0
	for i := 0; i < 10; i++ {
		if At("c") != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("%d fires with Count=2", n)
	}
}

func TestPrefixRuleAndPrecedence(t *testing.T) {
	defer Enable(&Plan{Seed: 1, Rules: []Rule{
		{Site: "serve.score.fe.*", Kind: KindError, Every: 1, Err: "wild"},
		{Site: "serve.score.fe.HU", Kind: KindError, Every: 1, Err: "exact"},
	}})()
	err := At("serve.score.fe.HU")
	if err == nil || !strings.Contains(err.Error(), "exact") {
		t.Fatalf("exact rule did not win: %v", err)
	}
	err = At("serve.score.fe.RU")
	if err == nil || !strings.Contains(err.Error(), "wild") {
		t.Fatalf("prefix rule did not match: %v", err)
	}
	if At("serve.batch") != nil {
		t.Fatal("unrelated site fired")
	}
}

func TestPanicAndDisturb(t *testing.T) {
	defer Enable(&Plan{Seed: 1, Rules: []Rule{
		{Site: "boom", Kind: KindPanic, Every: 1},
		{Site: "err", Kind: KindError, Every: 1},
	}})()
	mustPanic := func(f func()) (val any) {
		defer func() { val = recover() }()
		f()
		return nil
	}
	v := mustPanic(func() { _ = At("boom") })
	ie, ok := v.(*InjectedError)
	if !ok || ie.Site != "boom" {
		t.Fatalf("panic value %v, want *InjectedError at boom", v)
	}
	// Disturb surfaces error-kind rules as panics too.
	if v := mustPanic(func() { Disturb("err") }); v == nil {
		t.Fatal("Disturb swallowed an error-kind fault")
	}
}

func TestDelayKind(t *testing.T) {
	defer Enable(&Plan{Seed: 1, Rules: []Rule{
		{Site: "slow", Kind: KindDelay, Every: 1, Delay: 10 * time.Millisecond},
	}})()
	t0 := time.Now()
	if err := At("slow"); err != nil {
		t.Fatalf("delay fault returned error %v", err)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Fatalf("delay fault stalled only %v", d)
	}
}

func TestReaderTornStream(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 100)
	defer Enable(&Plan{Seed: 1, Rules: []Rule{
		{Site: "read", Kind: KindError, Every: 1, Bytes: 37},
	}})()
	r := Reader("read", bytes.NewReader(data))
	got, err := io.ReadAll(r)
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("torn read ended with %v, want *InjectedError", err)
	}
	if len(got) != 37 {
		t.Fatalf("read %d bytes before the tear, want 37", len(got))
	}
	// No fault scheduled → stream untouched.
	Disable()
	r2 := Reader("read", bytes.NewReader(data))
	if got, err := io.ReadAll(r2); err != nil || len(got) != 100 {
		t.Fatalf("clean read got %d bytes, err %v", len(got), err)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=9; serve.score.fe.HU:error:p=0.25,count=3; parallel.task:panic:every=50,after=10; serve.batch:delay:p=0.1,delay=5ms; persist.load.read:error:bytes=128,every=2,err=torn")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || len(p.Rules) != 4 {
		t.Fatalf("parsed %+v", p)
	}
	r := p.Rules[0]
	if r.Site != "serve.score.fe.HU" || r.Kind != KindError || r.Prob != 0.25 || r.Count != 3 {
		t.Fatalf("rule 0: %+v", r)
	}
	if p.Rules[1].Every != 50 || p.Rules[1].After != 10 || p.Rules[1].Kind != KindPanic {
		t.Fatalf("rule 1: %+v", p.Rules[1])
	}
	if p.Rules[2].Delay != 5*time.Millisecond {
		t.Fatalf("rule 2: %+v", p.Rules[2])
	}
	if p.Rules[3].Bytes != 128 || p.Rules[3].Err != "torn" {
		t.Fatalf("rule 3: %+v", p.Rules[3])
	}
	for _, bad := range []string{
		"", "seed=1", "site", "site:nope:p=1", "site:error", "site:error:p=2",
		"site:error:q=1", "seed=x; site:error:p=1", "site:error:p",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", bad)
		}
	}
}

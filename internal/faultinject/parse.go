package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParsePlan builds a Plan from the compact spec the lred -chaos flag (and
// the CI chaos-smoke job) uses. The spec is semicolon-separated; the
// first clause may set the seed, every other clause is one rule:
//
//	seed=7; serve.score.fe.HU:error:p=0.3; parallel.task:panic:every=50;
//	serve.batch:delay:p=0.1,delay=5ms; persist.load.read:error:bytes=128,count=2
//
// Rule form: <site>:<kind>[:opt,opt,…] with kind error|panic|delay and
// options p=<prob> every=<n> after=<n> count=<n> delay=<duration>
// bytes=<n> err=<msg>.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{Seed: 1}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			p.Seed = seed
			continue
		}
		parts := strings.SplitN(clause, ":", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("faultinject: rule %q needs <site>:<kind>", clause)
		}
		r := Rule{Site: parts[0]}
		switch parts[1] {
		case "error":
			r.Kind = KindError
		case "panic":
			r.Kind = KindPanic
		case "delay":
			r.Kind = KindDelay
		default:
			return nil, fmt.Errorf("faultinject: unknown kind %q in %q", parts[1], clause)
		}
		if len(parts) == 3 {
			for _, opt := range strings.Split(parts[2], ",") {
				opt = strings.TrimSpace(opt)
				if opt == "" {
					continue
				}
				key, val, ok := strings.Cut(opt, "=")
				if !ok {
					return nil, fmt.Errorf("faultinject: option %q in %q is not key=value", opt, clause)
				}
				var err error
				switch key {
				case "p":
					r.Prob, err = strconv.ParseFloat(val, 64)
					if err == nil && (r.Prob < 0 || r.Prob > 1) {
						err = fmt.Errorf("probability %v outside [0,1]", r.Prob)
					}
				case "every":
					r.Every, err = strconv.Atoi(val)
				case "after":
					r.After, err = strconv.Atoi(val)
				case "count":
					r.Count, err = strconv.Atoi(val)
				case "delay":
					r.Delay, err = time.ParseDuration(val)
				case "bytes":
					r.Bytes, err = strconv.ParseInt(val, 10, 64)
				case "err":
					r.Err = val
				default:
					err = fmt.Errorf("unknown option %q", key)
				}
				if err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: %v", clause, err)
				}
			}
		}
		if r.Prob == 0 && r.Every == 0 {
			return nil, fmt.Errorf("faultinject: rule %q never fires (set p= or every=)", clause)
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("faultinject: spec %q has no rules", spec)
	}
	return p, nil
}

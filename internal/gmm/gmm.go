// Package gmm implements diagonal-covariance Gaussian mixture models with
// k-means initialization and expectation–maximization training. GMMs are
// the emission densities of the GMM-HMM phone recognizers (the paper's
// Mandarin and English GMM-HMM front-ends use 32 Gaussians per tied state)
// and the class-conditional models of the MMI fusion backend.
package gmm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/rng"
)

// GMM is a mixture of diagonal-covariance Gaussians.
type GMM struct {
	Dim        int
	NumComp    int
	Weights    []float64   // len NumComp, sums to 1
	Means      [][]float64 // NumComp × Dim
	Vars       [][]float64 // NumComp × Dim, floored
	logConst   []float64   // per-component log normalizer cache
	logWeights []float64
}

const varFloor = 1e-3

// New allocates an untrained GMM.
func New(dim, numComp int) *GMM {
	g := &GMM{
		Dim:     dim,
		NumComp: numComp,
		Weights: make([]float64, numComp),
		Means:   make([][]float64, numComp),
		Vars:    make([][]float64, numComp),
	}
	for c := 0; c < numComp; c++ {
		g.Means[c] = make([]float64, dim)
		g.Vars[c] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			g.Vars[c][d] = 1
		}
		g.Weights[c] = 1 / float64(numComp)
	}
	g.RefreshCache()
	return g
}

// RefreshCache recomputes the cached log normalizers; call after any
// direct parameter mutation (MAP adaptation mutates means in place).
func (g *GMM) RefreshCache() {
	g.logConst = make([]float64, g.NumComp)
	g.logWeights = make([]float64, g.NumComp)
	for c := 0; c < g.NumComp; c++ {
		var logDet float64
		for d := 0; d < g.Dim; d++ {
			logDet += math.Log(g.Vars[c][d])
		}
		g.logConst[c] = -0.5 * (float64(g.Dim)*math.Log(2*math.Pi) + logDet)
		if g.Weights[c] > 0 {
			g.logWeights[c] = math.Log(g.Weights[c])
		} else {
			g.logWeights[c] = math.Inf(-1)
		}
	}
}

// LogProbComp returns the log density of x under component c (without the
// mixture weight).
func (g *GMM) LogProbComp(c int, x []float64) float64 {
	var quad float64
	mean, vr := g.Means[c], g.Vars[c]
	for d, v := range x {
		diff := v - mean[d]
		quad += diff * diff / vr[d]
	}
	return g.logConst[c] - 0.5*quad
}

// LogProb returns the log mixture density of x.
func (g *GMM) LogProb(x []float64) float64 {
	maxv := math.Inf(-1)
	lps := make([]float64, g.NumComp)
	for c := 0; c < g.NumComp; c++ {
		lp := g.logWeights[c] + g.LogProbComp(c, x)
		lps[c] = lp
		if lp > maxv {
			maxv = lp
		}
	}
	if math.IsInf(maxv, -1) {
		return maxv
	}
	var sum float64
	for _, lp := range lps {
		sum += math.Exp(lp - maxv)
	}
	return maxv + math.Log(sum)
}

// Posteriors fills post with the component posteriors of x and returns the
// total log density.
func (g *GMM) Posteriors(x []float64, post []float64) float64 {
	maxv := math.Inf(-1)
	for c := 0; c < g.NumComp; c++ {
		lp := g.logWeights[c] + g.LogProbComp(c, x)
		post[c] = lp
		if lp > maxv {
			maxv = lp
		}
	}
	var sum float64
	for c := range post {
		post[c] = math.Exp(post[c] - maxv)
		sum += post[c]
	}
	for c := range post {
		post[c] /= sum
	}
	return maxv + math.Log(sum)
}

// KMeansInit seeds the means with k-means++ style sampling followed by a
// few Lloyd iterations, and sets variances from cluster scatter.
func (g *GMM) KMeansInit(r *rng.RNG, data [][]float64, iters int) {
	n := len(data)
	if n == 0 {
		return
	}
	// k-means++ seeding.
	first := r.Intn(n)
	copy(g.Means[0], data[first])
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(data[i], g.Means[0])
	}
	for c := 1; c < g.NumComp; c++ {
		var total float64
		for _, d := range minDist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = r.Intn(n)
		} else {
			u := r.Float64() * total
			var acc float64
			for i, d := range minDist {
				acc += d
				if u < acc {
					pick = i
					break
				}
			}
		}
		copy(g.Means[c], data[pick])
		for i := range minDist {
			if d := sqDist(data[i], g.Means[c]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	// Lloyd iterations.
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		for i, x := range data {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < g.NumComp; c++ {
				if d := sqDist(x, g.Means[c]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
		counts := make([]int, g.NumComp)
		for c := range g.Means {
			for d := range g.Means[c] {
				g.Means[c][d] = 0
			}
		}
		for i, x := range data {
			c := assign[i]
			counts[c]++
			for d, v := range x {
				g.Means[c][d] += v
			}
		}
		for c := 0; c < g.NumComp; c++ {
			if counts[c] == 0 {
				// Re-seed empty cluster at a random point.
				copy(g.Means[c], data[r.Intn(n)])
				continue
			}
			for d := range g.Means[c] {
				g.Means[c][d] /= float64(counts[c])
			}
		}
	}
	// Cluster scatter → variances and weights.
	counts := make([]float64, g.NumComp)
	for c := range g.Vars {
		for d := range g.Vars[c] {
			g.Vars[c][d] = 0
		}
	}
	for i, x := range data {
		c := assign[i]
		counts[c]++
		for d, v := range x {
			diff := v - g.Means[c][d]
			g.Vars[c][d] += diff * diff
		}
	}
	for c := 0; c < g.NumComp; c++ {
		if counts[c] < 2 {
			for d := range g.Vars[c] {
				g.Vars[c][d] = 1
			}
			g.Weights[c] = 1 / float64(n)
			continue
		}
		for d := range g.Vars[c] {
			g.Vars[c][d] /= counts[c]
			if g.Vars[c][d] < varFloor {
				g.Vars[c][d] = varFloor
			}
		}
		g.Weights[c] = counts[c] / float64(n)
	}
	normalizeWeights(g.Weights)
	g.RefreshCache()
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

func normalizeWeights(w []float64) {
	var s float64
	for _, v := range w {
		s += v
	}
	if s <= 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= s
	}
}

// TrainEM runs EM on data; returns the per-frame log likelihood after the
// final iteration. Weighted variant available via TrainEMWeighted.
func (g *GMM) TrainEM(data [][]float64, iters int) float64 {
	w := make([]float64, len(data))
	for i := range w {
		w[i] = 1
	}
	return g.TrainEMWeighted(data, w, iters)
}

// TrainEMWeighted runs EM with per-frame weights (used by HMM training
// where state occupancies weight the frames).
func (g *GMM) TrainEMWeighted(data [][]float64, frameWeights []float64, iters int) float64 {
	if len(data) != len(frameWeights) {
		panic("gmm: data/weight length mismatch")
	}
	if len(data) == 0 {
		return math.Inf(-1)
	}
	post := make([]float64, g.NumComp)
	var ll float64
	for it := 0; it < iters; it++ {
		occ := make([]float64, g.NumComp)
		meanAcc := make([][]float64, g.NumComp)
		varAcc := make([][]float64, g.NumComp)
		for c := range meanAcc {
			meanAcc[c] = make([]float64, g.Dim)
			varAcc[c] = make([]float64, g.Dim)
		}
		ll = 0
		var totalW float64
		for i, x := range data {
			fw := frameWeights[i]
			if fw <= 0 {
				continue
			}
			ll += fw * g.Posteriors(x, post)
			totalW += fw
			for c := 0; c < g.NumComp; c++ {
				pw := post[c] * fw
				if pw == 0 {
					continue
				}
				occ[c] += pw
				ma, va := meanAcc[c], varAcc[c]
				for d, v := range x {
					ma[d] += pw * v
					va[d] += pw * v * v
				}
			}
		}
		if totalW == 0 {
			return math.Inf(-1)
		}
		for c := 0; c < g.NumComp; c++ {
			if occ[c] < 1e-8 {
				continue // leave starving component untouched
			}
			for d := 0; d < g.Dim; d++ {
				m := meanAcc[c][d] / occ[c]
				g.Means[c][d] = m
				v := varAcc[c][d]/occ[c] - m*m
				if v < varFloor {
					v = varFloor
				}
				g.Vars[c][d] = v
			}
			g.Weights[c] = occ[c] / totalW
		}
		normalizeWeights(g.Weights)
		g.RefreshCache()
	}
	// Final log likelihood per unit weight.
	var totalW float64
	for _, fw := range frameWeights {
		totalW += fw
	}
	return ll / totalW
}

// Train is the standard recipe: k-means init then EM.
func Train(r *rng.RNG, data [][]float64, dim, numComp, kmeansIters, emIters int) *GMM {
	g := New(dim, numComp)
	g.KMeansInit(r, data, kmeansIters)
	g.TrainEM(data, emIters)
	return g
}

// Sample draws a point from the mixture.
func (g *GMM) Sample(r *rng.RNG) []float64 {
	c := r.Categorical(g.Weights)
	x := make([]float64, g.Dim)
	for d := 0; d < g.Dim; d++ {
		x[d] = g.Means[c][d] + math.Sqrt(g.Vars[c][d])*r.Norm()
	}
	return x
}

// Validate checks model invariants.
func (g *GMM) Validate() error {
	var s float64
	for c, w := range g.Weights {
		if w < 0 {
			return fmt.Errorf("gmm: negative weight at %d", c)
		}
		s += w
		for d, v := range g.Vars[c] {
			if v < varFloor-1e-12 {
				return fmt.Errorf("gmm: variance %v below floor at (%d,%d)", v, c, d)
			}
		}
	}
	if math.Abs(s-1) > 1e-6 {
		return fmt.Errorf("gmm: weights sum to %v", s)
	}
	return nil
}

// gmmWire is the gob wire format (the cache fields are rebuilt on load).
type gmmWire struct {
	Dim, NumComp int
	Weights      []float64
	Means, Vars  [][]float64
}

// GobEncode implements gob.GobEncoder.
func (g *GMM) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gmmWire{
		Dim: g.Dim, NumComp: g.NumComp,
		Weights: g.Weights, Means: g.Means, Vars: g.Vars,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder and rebuilds the likelihood caches.
func (g *GMM) GobDecode(data []byte) error {
	var w gmmWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	g.Dim, g.NumComp = w.Dim, w.NumComp
	g.Weights, g.Means, g.Vars = w.Weights, w.Means, w.Vars
	g.RefreshCache()
	return nil
}

package gmm

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// twoClusterData draws points from two well-separated Gaussians.
func twoClusterData(r *rng.RNG, n int) [][]float64 {
	data := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		x := make([]float64, 2)
		if i%2 == 0 {
			x[0] = r.NormMuSigma(-3, 0.5)
			x[1] = r.NormMuSigma(0, 0.5)
		} else {
			x[0] = r.NormMuSigma(3, 0.5)
			x[1] = r.NormMuSigma(1, 0.5)
		}
		data = append(data, x)
	}
	return data
}

func TestSingleGaussianMLE(t *testing.T) {
	r := rng.New(1)
	data := make([][]float64, 5000)
	for i := range data {
		data[i] = []float64{r.NormMuSigma(2, 1.5), r.NormMuSigma(-1, 0.8)}
	}
	g := New(2, 1)
	g.TrainEM(data, 5)
	if math.Abs(g.Means[0][0]-2) > 0.1 || math.Abs(g.Means[0][1]+1) > 0.1 {
		t.Fatalf("mean = %v", g.Means[0])
	}
	if math.Abs(g.Vars[0][0]-2.25) > 0.25 || math.Abs(g.Vars[0][1]-0.64) > 0.1 {
		t.Fatalf("vars = %v", g.Vars[0])
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoComponentsRecovered(t *testing.T) {
	r := rng.New(2)
	data := twoClusterData(r, 4000)
	g := Train(r, data, 2, 2, 10, 15)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// One component near (−3,0), the other near (3,1); order free.
	m0, m1 := g.Means[0], g.Means[1]
	if m0[0] > m1[0] {
		m0, m1 = m1, m0
	}
	if math.Abs(m0[0]+3) > 0.3 || math.Abs(m1[0]-3) > 0.3 {
		t.Fatalf("means not recovered: %v %v", m0, m1)
	}
	for _, w := range g.Weights {
		if math.Abs(w-0.5) > 0.1 {
			t.Fatalf("weights = %v", g.Weights)
		}
	}
}

func TestEMImprovesLikelihood(t *testing.T) {
	r := rng.New(3)
	data := twoClusterData(r, 1000)
	g := New(2, 4)
	g.KMeansInit(r, data, 3)
	ll1 := g.TrainEM(data, 1)
	ll5 := g.TrainEM(data, 5)
	if ll5 < ll1-1e-9 {
		t.Fatalf("EM decreased likelihood: %v -> %v", ll1, ll5)
	}
}

func TestLogProbMatchesClosedForm(t *testing.T) {
	g := New(1, 1)
	g.Means[0][0] = 0
	g.Vars[0][0] = 1
	g.Weights[0] = 1
	g.RefreshCache()
	// Standard normal at 0: log(1/sqrt(2π)).
	want := -0.5 * math.Log(2*math.Pi)
	if got := g.LogProb([]float64{0}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogProb = %v, want %v", got, want)
	}
	// At x=2: −0.5·log(2π) − 2.
	if got := g.LogProb([]float64{2}); math.Abs(got-(want-2)) > 1e-12 {
		t.Fatalf("LogProb(2) = %v", got)
	}
}

func TestPosteriorsSumToOne(t *testing.T) {
	r := rng.New(4)
	data := twoClusterData(r, 500)
	g := Train(r, data, 2, 3, 5, 5)
	post := make([]float64, 3)
	for _, x := range data[:50] {
		g.Posteriors(x, post)
		var s float64
		for _, p := range post {
			if p < 0 {
				t.Fatal("negative posterior")
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("posteriors sum to %v", s)
		}
	}
}

func TestPosteriorsIdentifyCluster(t *testing.T) {
	r := rng.New(5)
	data := twoClusterData(r, 2000)
	g := Train(r, data, 2, 2, 10, 10)
	post := make([]float64, 2)
	// A point far left should strongly prefer the left component.
	g.Posteriors([]float64{-3, 0}, post)
	leftComp := 0
	if g.Means[1][0] < g.Means[0][0] {
		leftComp = 1
	}
	if post[leftComp] < 0.99 {
		t.Fatalf("left point posterior = %v", post)
	}
}

func TestSampleRoundTrip(t *testing.T) {
	// Samples from a trained model should score well under it.
	r := rng.New(6)
	data := twoClusterData(r, 2000)
	g := Train(r, data, 2, 2, 10, 10)
	var ll float64
	n := 500
	for i := 0; i < n; i++ {
		ll += g.LogProb(g.Sample(r))
	}
	ll /= float64(n)
	// Per-point LL should be near the training LL (≈ −2±0.5 here).
	if ll < -4 || ll > 0 {
		t.Fatalf("sample LL = %v, implausible", ll)
	}
}

func TestWeightedEM(t *testing.T) {
	r := rng.New(7)
	// Two clusters, but zero-weight the right one: model should fit left.
	data := twoClusterData(r, 2000)
	w := make([]float64, len(data))
	for i := range w {
		if data[i][0] < 0 {
			w[i] = 1
		}
	}
	g := New(2, 1)
	g.TrainEMWeighted(data, w, 10)
	if math.Abs(g.Means[0][0]+3) > 0.3 {
		t.Fatalf("weighted EM mean = %v, want ≈−3", g.Means[0])
	}
}

func TestVarianceFloor(t *testing.T) {
	// Degenerate data (all identical) must not collapse variances to 0.
	data := make([][]float64, 100)
	for i := range data {
		data[i] = []float64{1, 2}
	}
	g := New(2, 2)
	r := rng.New(8)
	g.KMeansInit(r, data, 3)
	g.TrainEM(data, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(g.LogProb([]float64{1, 2}), 0) && math.IsNaN(g.LogProb([]float64{1, 2})) {
		t.Fatal("NaN log prob on degenerate data")
	}
}

func TestEmptyData(t *testing.T) {
	g := New(2, 2)
	if ll := g.TrainEM(nil, 3); !math.IsInf(ll, -1) {
		t.Fatalf("TrainEM(nil) = %v", ll)
	}
}

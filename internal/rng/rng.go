// Package rng provides deterministic, splittable pseudo-random number
// generation and the probability distributions used throughout the
// reproduction: Gaussians for acoustic perturbation, Dirichlets for
// phonotactic model sampling, and categorical draws for phone sequences.
//
// Every experiment in this repository is seeded, so results are exactly
// reproducible run-to-run. The generator is a SplitMix64/xoshiro256**
// combination implemented locally so that streams can be split
// hierarchically (corpus → language → utterance) without correlation.
package rng

import (
	"math"
)

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New or Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64, which
// guarantees a well-mixed initial state even for small consecutive seeds.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent child generator keyed by label. The parent's
// state is not advanced, so splits are order-independent: Split(7) yields
// the same stream regardless of any draws made between splits.
func (r *RNG) Split(label uint64) *RNG {
	// Mix the parent state with the label through SplitMix64 finalizers.
	h := r.s[0] ^ rotl(r.s[1], 17) ^ rotl(r.s[2], 33) ^ rotl(r.s[3], 47)
	h ^= label * 0x9e3779b97f4a7c15
	return New(h)
}

// SplitString derives a child generator keyed by a string label.
func (r *RNG) SplitString(label string) *RNG {
	var h uint64 = 14695981039346656037 // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return r.Split(h)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul128(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al*bh + (al*bl)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += ah * bl
	hi = ah*bh + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Norm returns a standard normal draw via the polar Box–Muller method.
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormMuSigma returns a normal draw with the given mean and standard
// deviation.
func (r *RNG) NormMuSigma(mu, sigma float64) float64 {
	return mu + sigma*r.Norm()
}

// Exp returns an exponential draw with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Gamma returns a draw from the Gamma distribution with shape alpha and
// scale 1, using the Marsaglia–Tsang method.
func (r *RNG) Gamma(alpha float64) float64 {
	if alpha <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if alpha < 1 {
		// Boosting: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet fills out with a draw from a symmetric Dirichlet distribution
// with concentration alpha over len(out) categories. Larger alpha yields
// flatter distributions; alpha < 1 yields sparse, peaky ones.
func (r *RNG) Dirichlet(alpha float64, out []float64) {
	var sum float64
	for i := range out {
		out[i] = r.Gamma(alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// DirichletAsym fills out with a draw from an asymmetric Dirichlet whose
// concentration vector is alphas. out and alphas must have equal length.
func (r *RNG) DirichletAsym(alphas, out []float64) {
	if len(alphas) != len(out) {
		panic("rng: DirichletAsym length mismatch")
	}
	var sum float64
	for i := range out {
		out[i] = r.Gamma(alphas[i])
		sum += out[i]
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Categorical draws an index from the (not necessarily normalized)
// non-negative weight vector w. It panics if all weights are zero.
func (r *RNG) Categorical(w []float64) int {
	var total float64
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		panic("rng: Categorical with zero total weight")
	}
	u := r.Float64() * total
	var acc float64
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1 // guard against floating-point shortfall
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Poisson returns a Poisson draw with the given mean (Knuth's method for
// small means, normal approximation above 30).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		k := int(math.Round(r.NormMuSigma(mean, math.Sqrt(mean))))
		if k < 0 {
			return 0
		}
		return k
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws", same)
	}
}

func TestSplitOrderIndependent(t *testing.T) {
	p1 := New(7)
	c1 := p1.Split(3)
	p2 := New(7)
	_ = p2.Split(9) // unrelated split must not perturb Split(3)
	c2 := p2.Split(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split streams diverged at draw %d", i)
		}
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	p := New(7)
	a, b := p.Split(1), p.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split(1) and split(2) collided %d times", same)
	}
}

func TestSplitString(t *testing.T) {
	p := New(7)
	a := p.SplitString("hungarian")
	b := p.SplitString("hungarian")
	c := p.SplitString("czech")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same string label produced different streams")
	}
	if a.Uint64() == c.Uint64() {
		t.Fatal("different string labels produced identical draws")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for k, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn(7) bucket %d has count %d, expected ~10000", k, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(6)
	for _, alpha := range []float64{0.5, 1, 2.5, 8} {
		n := 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += r.Gamma(alpha)
		}
		mean := sum / float64(n)
		if math.Abs(mean-alpha) > 0.08*alpha+0.02 {
			t.Errorf("Gamma(%v) mean = %v, want ~%v", alpha, mean, alpha)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(8)
	out := make([]float64, 23)
	for trial := 0; trial < 100; trial++ {
		r.Dirichlet(0.7, out)
		var sum float64
		for _, x := range out {
			if x < 0 {
				t.Fatal("negative Dirichlet component")
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sums to %v", sum)
		}
	}
}

func TestDirichletAsymMean(t *testing.T) {
	r := New(9)
	alphas := []float64{1, 2, 3, 4}
	out := make([]float64, 4)
	means := make([]float64, 4)
	n := 20000
	for i := 0; i < n; i++ {
		r.DirichletAsym(alphas, out)
		for j, x := range out {
			means[j] += x / float64(n)
		}
	}
	for j, a := range alphas {
		want := a / 10.0
		if math.Abs(means[j]-want) > 0.01 {
			t.Errorf("component %d mean = %v, want ~%v", j, means[j], want)
		}
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(10)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("categorical ratio = %v, want ~3", ratio)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPoisson(t *testing.T) {
	r := New(12)
	for _, mean := range []float64{0.5, 4, 50} {
		n := 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
}

func TestBernoulli(t *testing.T) {
	r := New(13)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	p := float64(hits) / 100000
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) rate = %v", p)
	}
}

func TestExpMean(t *testing.T) {
	r := New(14)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	if m := sum / float64(n); math.Abs(m-1) > 0.03 {
		t.Errorf("Exp mean = %v, want ~1", m)
	}
}

// Package prlm implements PRLM — Phone Recognition followed by Language
// Modeling (Zissman, the paper's reference [2]) — the classical
// phonotactic approach that vector space modeling (PPRVSM) superseded:
// instead of supervectors and SVMs, a smoothed phone N-gram language model
// is trained per target language on the decoded training transcriptions,
// and a test utterance is scored by each model's normalized log likelihood
// against a background model.
//
// The package exists as the historical baseline the paper's line of work
// builds on; the ablation bench compares PRLM against the SVM-based VSM on
// identical decoded phone streams, reproducing the classical finding that
// discriminative VSM training beats generative LM scoring.
package prlm

import (
	"fmt"

	"repro/internal/lm"
)

// System is a trained PRLM recognizer over one front-end's phone space.
type System struct {
	NumPhones  int
	Models     []*lm.Bigram
	Background *lm.Bigram
}

// Config controls training.
type Config struct {
	// Discount is the Kneser–Ney absolute discount.
	Discount float64
}

// DefaultConfig returns the standard smoothing setup.
func DefaultConfig() Config { return Config{Discount: 0.75} }

// Train fits one language model per language plus a pooled background
// model. seqsPerLang[k] holds language k's decoded phone strings.
func Train(numPhones int, seqsPerLang [][][]int, cfg Config) (*System, error) {
	if len(seqsPerLang) == 0 {
		return nil, fmt.Errorf("prlm: no languages")
	}
	s := &System{NumPhones: numPhones, Models: make([]*lm.Bigram, len(seqsPerLang))}
	var pooled [][]int
	for k, seqs := range seqsPerLang {
		if len(seqs) == 0 {
			return nil, fmt.Errorf("prlm: language %d has no training sequences", k)
		}
		s.Models[k] = lm.TrainKneserNey(numPhones, seqs, cfg.Discount)
		pooled = append(pooled, seqs...)
	}
	s.Background = lm.TrainKneserNey(numPhones, pooled, cfg.Discount)
	return s, nil
}

// Score returns per-language detection scores for a decoded phone string:
// the per-phone log-likelihood ratio of each language model against the
// background model (length-normalized so durations are comparable).
func (s *System) Score(seq []int) []float64 {
	out := make([]float64, len(s.Models))
	if len(seq) == 0 {
		return out
	}
	bg := logLik(s.Background, seq)
	for k, m := range s.Models {
		out[k] = (logLik(m, seq) - bg) / float64(len(seq))
	}
	return out
}

func logLik(m *lm.Bigram, seq []int) float64 {
	var ll float64
	for i, p := range seq {
		if i == 0 {
			ll += m.LogInit(p)
		} else {
			ll += m.LogProb(seq[i-1], p)
		}
	}
	return ll
}

// Classify returns the arg-max language.
func (s *System) Classify(seq []int) int {
	scores := s.Score(seq)
	best := 0
	for k, v := range scores {
		if v > scores[best] {
			best = k
		}
	}
	return best
}

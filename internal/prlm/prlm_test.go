package prlm

import (
	"testing"

	"repro/internal/frontend"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/synthlang"
)

// decodeStrings produces decoded 1-best phone strings for a language
// through a front-end.
func decodeStrings(fe *frontend.FrontEnd, lang *synthlang.Language, split string, n int, durS float64) [][]int {
	root := rng.New(7).SplitString(split).SplitString(lang.Name)
	var out [][]int
	for i := 0; i < n; i++ {
		r := root.Split(uint64(i))
		spk := synthlang.NewSpeaker(r, i)
		u := lang.Sample(r, durS, spk, synthlang.ChannelCTSClean)
		best, _ := fe.Decode(r, u).BestPath()
		out = append(out, best)
	}
	return out
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(10, nil, DefaultConfig()); err == nil {
		t.Fatal("accepted no languages")
	}
	if _, err := Train(10, [][][]int{{}}, DefaultConfig()); err == nil {
		t.Fatal("accepted empty language")
	}
}

func TestScoreShapeAndEmpty(t *testing.T) {
	s, err := Train(4, [][][]int{{{0, 1, 2}}, {{3, 2, 1}}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Score(nil); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty-utterance score %v", got)
	}
	if got := s.Score([]int{0, 1}); len(got) != 2 {
		t.Fatalf("%d scores", len(got))
	}
}

func TestPRLMRecognizesLanguages(t *testing.T) {
	langs := synthlang.Generate(synthlang.DefaultConfig(), 42)[:5]
	fe := frontend.New("HU", frontend.ANNHMM, 59, 3)
	var train [][][]int
	for _, lang := range langs {
		train = append(train, decodeStrings(fe, lang, "train", 15, 20))
	}
	s, err := Train(fe.Set.Size, train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	var trials []metrics.Trial
	for li, lang := range langs {
		for _, seq := range decodeStrings(fe, lang, "test", 8, 20) {
			if s.Classify(seq) == li {
				correct++
			}
			total++
			for k, sc := range s.Score(seq) {
				trials = append(trials, metrics.Trial{Score: sc, Target: k == li})
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.6 {
		t.Fatalf("PRLM accuracy %.2f (chance 0.2)", acc)
	}
	if eer := metrics.EER(trials); eer > 0.3 {
		t.Fatalf("PRLM EER %.2f", eer)
	}
}

func TestTargetModelScoresOwnLanguageHigher(t *testing.T) {
	langs := synthlang.Generate(synthlang.DefaultConfig(), 42)[:3]
	fe := frontend.New("CZ", frontend.ANNHMM, 43, 4)
	var train [][][]int
	for _, lang := range langs {
		train = append(train, decodeStrings(fe, lang, "train", 12, 15))
	}
	s, err := Train(fe.Set.Size, train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Average own-model score must exceed average other-model score.
	var own, other float64
	var nOwn, nOther int
	for li, lang := range langs {
		for _, seq := range decodeStrings(fe, lang, "test", 6, 15) {
			for k, sc := range s.Score(seq) {
				if k == li {
					own += sc
					nOwn++
				} else {
					other += sc
					nOther++
				}
			}
		}
	}
	if own/float64(nOwn) <= other/float64(nOther) {
		t.Fatalf("own-language LLR %.4f not above other %.4f",
			own/float64(nOwn), other/float64(nOther))
	}
}

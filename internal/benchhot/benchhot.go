// Package benchhot is the hot-path benchmark protocol: it measures the
// seed implementations of supervector accumulation, extraction, the
// sparse dot kernel, and one-vs-rest SVM training against the current
// ones, verifies the two produce bit-identical outputs, and emits a
// machine-readable before/after report (committed as BENCH_hotpath.json
// at the repo root). Later perf PRs extend or re-run this protocol so
// speedups are tracked, not asserted.
//
// The "before" references are frozen copies of the pre-optimization
// code: map-backed accumulation, per-order forward–backward in
// extraction, boxed per-example vectors with the signed-compare dot
// kernel, and per-class Norm2/slice allocation in OVR training. They
// live here, not in git archaeology, so the comparison stays runnable.
package benchhot

import (
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/lattice"
	"repro/internal/ngram"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// Metric is one side of a benchmark comparison.
type Metric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Entry is one before/after benchmark pair.
type Entry struct {
	Name    string `json:"name"`
	Desc    string `json:"desc"`
	Before  Metric `json:"before"`
	After   Metric `json:"after"`
	Speedup float64 `json:"speedup"`
	// AllocReduction is the ratio of bytes allocated per op
	// (before/after); AllocCountReduction the same for object counts.
	AllocReduction      float64 `json:"alloc_reduction"`
	AllocCountReduction float64 `json:"alloc_count_reduction"`
}

// Report is the committed benchmark artifact.
type Report struct {
	GoVersion    string  `json:"go_version"`
	GOOS         string  `json:"goos"`
	GOARCH       string  `json:"goarch"`
	NumCPU       int     `json:"num_cpu"`
	Benchmarks   []Entry `json:"benchmarks"`
	BitIdentical bool    `json:"bit_identical"`
}

// JSON renders the report with stable indentation.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

func metricOf(res testing.BenchmarkResult) Metric {
	return Metric{
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

func entry(name, desc string, before, after testing.BenchmarkResult) Entry {
	e := Entry{Name: name, Desc: desc, Before: metricOf(before), After: metricOf(after)}
	if e.After.NsPerOp > 0 {
		e.Speedup = e.Before.NsPerOp / e.After.NsPerOp
	}
	// +1 smoothing keeps the ratios finite and honest when a side
	// allocates nothing (0→0 reads as 1.0x, not 0.0x or +Inf).
	e.AllocReduction = float64(e.Before.BytesPerOp+1) / float64(e.After.BytesPerOp+1)
	e.AllocCountReduction = float64(e.Before.AllocsPerOp+1) / float64(e.After.AllocsPerOp+1)
	return e
}

// Bench exposes the min-of-3 protocol to other benchmark harnesses
// (the compress-eval sweep measures its throughput points with the same
// discipline as the hot-path report).
func Bench(f func(b *testing.B)) testing.BenchmarkResult { return bench(f) }

// MetricOf converts a benchmark result to the report metric form.
func MetricOf(res testing.BenchmarkResult) Metric { return metricOf(res) }

// bench runs f under testing.Benchmark three times and keeps the run
// with the lowest ns/op. Allocation stats are deterministic across runs;
// wall time on a busy single-core box is not, and min-of-N is the
// standard way to strip scheduler noise from a CPU-bound measurement.
func bench(f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 0; i < 2; i++ {
		r := testing.Benchmark(f)
		if r.N > 0 && best.N > 0 &&
			float64(r.T.Nanoseconds())/float64(r.N) < float64(best.T.Nanoseconds())/float64(best.N) {
			best = r
		}
	}
	return best
}

// ---- frozen "before" reference implementations ----

// refDotDense is the seed dot kernel: int32 signed compare, per-element
// bounds checks the compiler cannot eliminate.
func refDotDense(v *sparse.Vector, w []float64) float64 {
	var s float64
	n := int32(len(w))
	for k, i := range v.Idx {
		if i >= n {
			break
		}
		s += v.Val[k] * w[i]
	}
	return s
}

// refAxpyDense is the seed update kernel.
func refAxpyDense(v *sparse.Vector, alpha float64, w []float64) {
	n := int32(len(w))
	for k, i := range v.Idx {
		if i >= n {
			break
		}
		w[i] += alpha * v.Val[k]
	}
}

// refSupervector is the seed extraction path: a map-backed accumulator
// and one full forward–backward pass per N-gram order.
func refSupervector(s *ngram.Space, l *lattice.Lattice) *sparse.Vector {
	m := make(map[int32]float64)
	totals := make([]float64, s.Order)
	for n := 1; n <= s.Order; n++ {
		order := n
		l.ExpectedNgramCounts(n, func(gram []int, w float64) {
			if w <= 0 {
				return
			}
			m[s.Index(gram)] += w
			totals[order-1] += w
		})
	}
	v := sparse.FromMap(m)
	v.Map(func(idx int32, val float64) float64 {
		t := totals[s.OrderOf(idx)-1]
		if t <= 0 {
			return 0
		}
		return val / t
	})
	return v
}

// refTrain is the seed binary solver: fresh order/alpha/qii/cost slices
// and a per-call Norm2 pass, with the seed kernels above.
func refTrain(xs []*sparse.Vector, ys []int, dim int, opt svm.Options) *svm.Model {
	n := len(xs)
	m := &svm.Model{W: make([]float64, dim)}
	if n == 0 {
		return m
	}
	if opt.C <= 0 {
		opt.C = 1
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 200
	}
	if opt.PositiveWeight <= 0 {
		opt.PositiveWeight = 1
	}
	alpha := make([]float64, n)
	qii := make([]float64, n)
	cost := make([]float64, n)
	for i, x := range xs {
		nrm := x.Norm2()
		qii[i] = nrm*nrm + 1
		if ys[i] > 0 {
			cost[i] = opt.C * opt.PositiveWeight
		} else {
			cost[i] = opt.C
		}
	}
	r := rng.New(opt.Seed)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for pass := 0; pass < opt.MaxIters; pass++ {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		maxViolation := 0.0
		for _, i := range order {
			yi := float64(ys[i])
			g := yi*(refDotDense(xs[i], m.W)+m.Bias) - 1
			pg := g
			if alpha[i] <= 0 && g > 0 {
				pg = 0
			}
			if alpha[i] >= cost[i] && g < 0 {
				pg = 0
			}
			v := pg
			if v < 0 {
				v = -v
			}
			if v > maxViolation {
				maxViolation = v
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			a := old - g/qii[i]
			if a < 0 {
				a = 0
			} else if a > cost[i] {
				a = cost[i]
			}
			alpha[i] = a
			d := (a - old) * yi
			if d != 0 {
				refAxpyDense(xs[i], d, m.W)
				m.Bias += d
			}
		}
		if maxViolation < opt.Eps {
			break
		}
	}
	return m
}

// refTrainOneVsRest is the seed multiclass wrapper: a fresh ±1 label
// slice and a full refTrain (with its per-class Norm2 pass and slice
// allocations) for every class.
func refTrainOneVsRest(xs []*sparse.Vector, labels []int, numClasses, dim int, opt svm.Options) []*svm.Model {
	models := make([]*svm.Model, numClasses)
	for k := 0; k < numClasses; k++ {
		ys := make([]int, len(labels))
		for i, l := range labels {
			if l == k {
				ys[i] = 1
			} else {
				ys[i] = -1
			}
		}
		kopt := opt
		kopt.Seed = opt.Seed + uint64(k)*7919
		models[k] = refTrain(xs, ys, dim, kopt)
	}
	return models
}

// ---- workloads ----

// extractionWorkload is a corpus of deterministic confusion networks
// with the shape of real utterances (~100 slots, 3 alternatives, the
// 59-phone bigram space of the pipeline's front-ends).
func extractionWorkload() (*ngram.Space, []*lattice.Lattice) {
	space := ngram.NewSpace(59, 2)
	root := rng.New(4242)
	lats := make([]*lattice.Lattice, 48)
	for i := range lats {
		r := root.Split(uint64(i))
		slots := make([]lattice.SausageSlot, r.Intn(60)+60)
		for s := range slots {
			var slot lattice.SausageSlot
			alts := r.Intn(3) + 2
			for a := 0; a < alts; a++ {
				slot = append(slot, struct {
					Phone int
					Prob  float64
				}{Phone: r.Intn(59), Prob: r.Float64() + 0.05})
			}
			slots[s] = slot
		}
		lats[i] = lattice.FromSausage(slots)
	}
	return space, lats
}

// trainingWorkload is an OVR problem with the pipeline's shape: 23
// languages, the 3540-dim bigram space, a few thousand supervectors.
func trainingWorkload(n int) ([]*sparse.Vector, []int, int, int, svm.Options) {
	const numClasses, dim = 23, 3540
	root := rng.New(777)
	boxed := make([]*sparse.Vector, n)
	labels := make([]int, n)
	for i := range boxed {
		r := root.Split(uint64(i))
		labels[i] = r.Intn(numClasses)
		m := make(map[int32]float64)
		base := labels[i] * (dim / numClasses)
		for k := 0; k < 60; k++ {
			m[int32(base+r.Intn(dim/numClasses))] = r.Float64()
		}
		for k := 0; k < 120; k++ {
			m[int32(r.Intn(dim))] = r.Float64() * 0.4
		}
		boxed[i] = sparse.FromMap(m)
	}
	opt := svm.DefaultOptions()
	opt.C = 1
	opt.PositiveWeight = 4
	opt.MaxIters = 12
	opt.Eps = 0.02
	opt.Seed = 9
	return boxed, labels, numClasses, dim, opt
}

func vecsEqual(a, b *sparse.Vector) bool {
	if len(a.Idx) != len(b.Idx) {
		return false
	}
	for k := range a.Idx {
		if a.Idx[k] != b.Idx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// Run executes the full before/after protocol and returns the report.
// Each pair is verified bit-identical before it is timed; a mismatch
// sets BitIdentical=false (and poisons the report — the numbers of a
// non-equivalent optimization are meaningless).
func Run() *Report {
	rep := &Report{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		BitIdentical: true,
	}

	// 1. Supervector extraction: map + per-order FB vs pooled + single FB.
	space, lats := extractionWorkload()
	for _, l := range lats {
		if !vecsEqual(refSupervector(space, l), space.Supervector(l)) {
			rep.BitIdentical = false
		}
	}
	before := bench(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			for _, l := range lats {
				refSupervector(space, l)
			}
		}
	})
	after := bench(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			for _, l := range lats {
				space.Supervector(l)
			}
		}
	})
	rep.Benchmarks = append(rep.Benchmarks, entry("supervector-extract",
		"48 utterances × 59-phone bigram space; map+per-order FB vs pooled accumulator+single FB",
		before, after))

	// 2. Sparse dot kernel over a batch: boxed vectors + seed kernel vs
	// CSR rows + unsigned-compare kernel.
	boxed, _, _, dim, _ := trainingWorkload(512)
	mat := sparse.MatrixFromRows(boxed)
	w := make([]float64, dim)
	r := rng.New(5)
	for j := range w {
		w[j] = r.Norm()
	}
	var sBefore, sAfter float64
	for i, v := range boxed {
		sBefore += refDotDense(v, w)
		sAfter += mat.Row(i).DotDense(w)
	}
	if sBefore != sAfter {
		rep.BitIdentical = false
	}
	before = bench(func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for n := 0; n < b.N; n++ {
			for _, v := range boxed {
				s += refDotDense(v, w)
			}
		}
		sink = s
	})
	after = bench(func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for n := 0; n < b.N; n++ {
			for i := 0; i < mat.NumRows(); i++ {
				s += mat.Row(i).DotDense(w)
			}
		}
		sink = s
	})
	rep.Benchmarks = append(rep.Benchmarks, entry("csr-dot",
		"512 rows × 3540 dim; boxed vectors + signed-compare kernel vs CSR rows + BCE kernel",
		before, after))

	// 3. OVR training: per-class allocations + Norm2 vs shared qii +
	// pooled scratch over CSR rows.
	trainBoxed, labels, numClasses, dim, opt := trainingWorkload(3000)
	trainMat := sparse.MatrixFromRows(trainBoxed)
	rows := trainMat.Rows()
	refModels := refTrainOneVsRest(trainBoxed, labels, numClasses, dim, opt)
	newOVR := svm.TrainOVR(rows, labels, numClasses, dim, opt)
	for k := range refModels {
		if refModels[k].Bias != newOVR.Models[k].Bias {
			rep.BitIdentical = false
		}
		for j := range refModels[k].W {
			if refModels[k].W[j] != newOVR.Models[k].W[j] {
				rep.BitIdentical = false
				break
			}
		}
	}
	before = bench(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			refTrainOneVsRest(trainBoxed, labels, numClasses, dim, opt)
		}
	})
	after = bench(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			svm.TrainOVR(rows, labels, numClasses, dim, opt)
		}
	})
	rep.Benchmarks = append(rep.Benchmarks, entry("ovr-train",
		"3000 examples × 23 classes × 3540 dim; per-class Norm2+allocs vs shared qii+pooled scratch over CSR",
		before, after))

	// 4. Batch scoring: per-model gathers vs the column-blocked one-pass
	// kernel.
	scoreVecs := rows[:512]
	perModel := func() [][]float64 {
		out := make([][]float64, len(scoreVecs))
		for i, v := range scoreVecs {
			row := make([]float64, numClasses)
			for k, m := range newOVR.Models {
				row[k] = refDotDense(v, m.W) + m.Bias
			}
			out[i] = row
		}
		return out
	}
	wantScores := perModel()
	gotScores := newOVR.ScoreAll(scoreVecs)
	for i := range wantScores {
		for k := range wantScores[i] {
			if wantScores[i][k] != gotScores[i][k] {
				rep.BitIdentical = false
			}
		}
	}
	before = bench(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			perModel()
		}
	})
	after = bench(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			newOVR.ScoreAll(scoreVecs)
		}
	})
	rep.Benchmarks = append(rep.Benchmarks, entry("batch-score",
		"512 rows × 23 classes; per-model gather loop vs column-blocked single-pass kernel",
		before, after))

	return rep
}

var sink float64

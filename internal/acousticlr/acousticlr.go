// Package acousticlr implements the *acoustic* language-recognition
// baseline that the paper's introduction contrasts phonotactic systems
// against (its reference [3], Torres-Carrasquillo et al.): shifted-delta-
// cepstral (SDC) features modeled by Gaussian mixture models with a
// universal background model (GMM-UBM) and MAP-adapted per-language
// models, scored by average frame log-likelihood ratio.
//
// The package exists so the repository carries both families the paper
// positions itself between; examples and tests compare the acoustic
// baseline against the phonotactic PPRVSM stack on the same synthetic
// audio.
package acousticlr

import (
	"fmt"

	"repro/internal/gmm"
	"repro/internal/rng"
)

// SDCConfig is the classic N-d-P-k shifted-delta-cepstra configuration;
// LRE systems conventionally use 7-1-3-7: 7 cepstra, delta spread 1,
// block shift 3, 7 stacked blocks → 49 dimensions.
type SDCConfig struct {
	N int // cepstral coefficients used per frame
	D int // delta spread (frames each side)
	P int // shift between blocks
	K int // number of stacked blocks
}

// DefaultSDC returns the 7-1-3-7 configuration.
func DefaultSDC() SDCConfig { return SDCConfig{N: 7, D: 1, P: 3, K: 7} }

// Dim returns the SDC feature dimension.
func (c SDCConfig) Dim() int { return c.N * c.K }

// ComputeSDC stacks K delta blocks over the first N cepstral coefficients:
// block k of frame t is c[t+k·P+D][0:N] − c[t+k·P−D][0:N]. Frames whose
// context exceeds the utterance are dropped, matching standard practice.
func ComputeSDC(cepstra [][]float64, cfg SDCConfig) [][]float64 {
	if cfg.N <= 0 || cfg.D <= 0 || cfg.P <= 0 || cfg.K <= 0 {
		panic("acousticlr: invalid SDC configuration")
	}
	t := len(cepstra)
	last := t - ((cfg.K-1)*cfg.P + cfg.D) // exclusive bound for t
	var out [][]float64
	for i := cfg.D; i < last; i++ {
		row := make([]float64, 0, cfg.Dim())
		ok := true
		for k := 0; k < cfg.K; k++ {
			hi := i + k*cfg.P + cfg.D
			lo := i + k*cfg.P - cfg.D
			if lo < 0 || hi >= t || len(cepstra[hi]) < cfg.N || len(cepstra[lo]) < cfg.N {
				ok = false
				break
			}
			for n := 0; n < cfg.N; n++ {
				row = append(row, cepstra[hi][n]-cepstra[lo][n])
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

// Config controls recognizer training.
type Config struct {
	SDC SDCConfig
	// UBMMix is the UBM mixture size (LRE systems use 512–2048; tests use
	// far fewer).
	UBMMix int
	// MAPTau is the MAP relevance factor for mean adaptation (16 classic).
	MAPTau float64
	// EMIters for UBM training.
	EMIters int
	// Seed drives k-means and EM initialization.
	Seed uint64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{SDC: DefaultSDC(), UBMMix: 32, MAPTau: 16, EMIters: 6, Seed: 1}
}

// Recognizer is a trained GMM-UBM acoustic language recognizer.
type Recognizer struct {
	Cfg        Config
	UBM        *gmm.GMM
	LangModels []*gmm.GMM
}

// Train fits the UBM on pooled frames and MAP-adapts the means per
// language. framesPerLang[k] holds language k's training SDC frames.
func Train(cfg Config, framesPerLang [][][]float64) (*Recognizer, error) {
	if len(framesPerLang) == 0 {
		return nil, fmt.Errorf("acousticlr: no training languages")
	}
	var pooled [][]float64
	for _, frames := range framesPerLang {
		pooled = append(pooled, frames...)
	}
	if len(pooled) == 0 {
		return nil, fmt.Errorf("acousticlr: no training frames")
	}
	dim := len(pooled[0])
	mix := cfg.UBMMix
	if len(pooled) < 4*mix {
		mix = len(pooled)/4 + 1
	}
	r := rng.New(cfg.Seed)
	ubm := gmm.Train(r, pooled, dim, mix, 8, cfg.EMIters)

	rec := &Recognizer{Cfg: cfg, UBM: ubm, LangModels: make([]*gmm.GMM, len(framesPerLang))}
	for k, frames := range framesPerLang {
		rec.LangModels[k] = mapAdaptMeans(ubm, frames, cfg.MAPTau)
	}
	return rec, nil
}

// mapAdaptMeans performs classic relevance-MAP adaptation of the UBM means
// toward the language data; weights and variances stay tied to the UBM.
func mapAdaptMeans(ubm *gmm.GMM, frames [][]float64, tau float64) *gmm.GMM {
	adapted := gmm.New(ubm.Dim, ubm.NumComp)
	// Copy UBM parameters.
	copy(adapted.Weights, ubm.Weights)
	for c := 0; c < ubm.NumComp; c++ {
		copy(adapted.Means[c], ubm.Means[c])
		copy(adapted.Vars[c], ubm.Vars[c])
	}
	if len(frames) == 0 || tau < 0 {
		adapted.RefreshCache()
		return adapted
	}
	occ := make([]float64, ubm.NumComp)
	acc := make([][]float64, ubm.NumComp)
	for c := range acc {
		acc[c] = make([]float64, ubm.Dim)
	}
	post := make([]float64, ubm.NumComp)
	for _, x := range frames {
		ubm.Posteriors(x, post)
		for c, p := range post {
			if p < 1e-8 {
				continue
			}
			occ[c] += p
			row := acc[c]
			for d, v := range x {
				row[d] += p * v
			}
		}
	}
	for c := 0; c < ubm.NumComp; c++ {
		if occ[c] <= 0 {
			continue
		}
		alpha := occ[c] / (occ[c] + tau)
		for d := 0; d < ubm.Dim; d++ {
			ml := acc[c][d] / occ[c]
			adapted.Means[c][d] = alpha*ml + (1-alpha)*ubm.Means[c][d]
		}
	}
	adapted.RefreshCache()
	return adapted
}

// Score returns per-language average-frame log-likelihood ratios against
// the UBM — the standard GMM-UBM detection score.
func (rec *Recognizer) Score(frames [][]float64) []float64 {
	out := make([]float64, len(rec.LangModels))
	if len(frames) == 0 {
		return out
	}
	for k, m := range rec.LangModels {
		var llr float64
		for _, x := range frames {
			llr += m.LogProb(x) - rec.UBM.LogProb(x)
		}
		out[k] = llr / float64(len(frames))
	}
	return out
}

// Classify returns the arg-max language.
func (rec *Recognizer) Classify(frames [][]float64) int {
	s := rec.Score(frames)
	best := 0
	for k, v := range s {
		if v > s[best] {
			best = k
		}
	}
	return best
}

// FrameCount is a helper for sizing checks in callers.
func FrameCount(framesPerLang [][][]float64) int {
	n := 0
	for _, f := range framesPerLang {
		n += len(f)
	}
	return n
}

// SDCFromCepstra is a convenience wrapper when the caller already has
// static cepstra: it validates dimensions before computing SDC.
func SDCFromCepstra(cepstra [][]float64, cfg SDCConfig) ([][]float64, error) {
	if len(cepstra) > 0 && len(cepstra[0]) < cfg.N {
		return nil, fmt.Errorf("acousticlr: cepstra have %d coefficients, SDC needs %d",
			len(cepstra[0]), cfg.N)
	}
	out := ComputeSDC(cepstra, cfg)
	if len(out) == 0 {
		return nil, fmt.Errorf("acousticlr: utterance too short for SDC context (%d frames)", len(cepstra))
	}
	return out, nil
}

package acousticlr

import (
	"math"
	"testing"

	"repro/internal/feats"
	"repro/internal/rng"
	"repro/internal/synthlang"
	"repro/internal/synthspeech"
)

func TestSDCDimensionsAndContext(t *testing.T) {
	cfg := DefaultSDC()
	if cfg.Dim() != 49 {
		t.Fatalf("7-1-3-7 dim = %d", cfg.Dim())
	}
	// 100 frames of 13-dim cepstra → frames with full context only.
	cep := make([][]float64, 100)
	for i := range cep {
		cep[i] = make([]float64, 13)
		cep[i][0] = float64(i)
	}
	sdc := ComputeSDC(cep, cfg)
	if len(sdc) == 0 {
		t.Fatal("no SDC frames")
	}
	// Need (K−1)·P + D = 19 future frames and D = 1 past.
	wantLen := 100 - 19 - 1
	if len(sdc) != wantLen {
		t.Fatalf("%d SDC frames, want %d", len(sdc), wantLen)
	}
	for _, f := range sdc {
		if len(f) != 49 {
			t.Fatalf("SDC frame dim %d", len(f))
		}
	}
	// With c0 = t, every delta is hi−lo = 2·D = 2.
	for _, f := range sdc {
		for k := 0; k < cfg.K; k++ {
			if math.Abs(f[k*cfg.N]-2) > 1e-12 {
				t.Fatalf("delta = %v, want 2", f[k*cfg.N])
			}
		}
	}
}

func TestSDCTooShort(t *testing.T) {
	cep := make([][]float64, 10)
	for i := range cep {
		cep[i] = make([]float64, 13)
	}
	if got := ComputeSDC(cep, DefaultSDC()); len(got) != 0 {
		t.Fatalf("short input produced %d frames", len(got))
	}
	if _, err := SDCFromCepstra(cep, DefaultSDC()); err == nil {
		t.Fatal("SDCFromCepstra accepted too-short input")
	}
}

func TestSDCValidatesCoefficients(t *testing.T) {
	cep := [][]float64{{1, 2, 3}}
	if _, err := SDCFromCepstra(cep, DefaultSDC()); err == nil {
		t.Fatal("accepted cepstra narrower than N")
	}
}

// langFrames renders audio for a language and returns its SDC frames.
func langFrames(t *testing.T, lang *synthlang.Language, seed uint64, utts int, durS float64) [][]float64 {
	t.Helper()
	ext := feats.NewExtractor(feats.DefaultConfig())
	synth := synthspeech.New()
	r := rng.New(seed)
	var out [][]float64
	for i := 0; i < utts; i++ {
		spk := synthlang.NewSpeaker(r, i)
		u := lang.Sample(r, durS, spk, synthlang.ChannelCTSClean)
		wav := synth.Render(r, u)
		cep := ext.MFCC(wav)
		feats.CMVN(cep)
		out = append(out, ComputeSDC(cep, DefaultSDC())...)
	}
	return out
}

func TestRecognizerSeparatesGaussianLanguages(t *testing.T) {
	// Machinery check on data with a genuine acoustic difference:
	// "languages" are shifted Gaussian clouds. The GMM-UBM recognizer
	// must separate them perfectly.
	r := rng.New(1)
	mk := func(mu float64, n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = []float64{mu + r.Norm(), r.Norm()}
		}
		return out
	}
	train := [][][]float64{mk(-2, 500), mk(2, 500)}
	cfg := DefaultConfig()
	cfg.UBMMix = 4
	rec, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for li, mu := range []float64{-2, 2} {
		for i := 0; i < 10; i++ {
			if rec.Classify(mk(mu, 50)) == li {
				correct++
			}
		}
	}
	if correct < 19 {
		t.Fatalf("separable Gaussian languages: %d/20 correct", correct)
	}
	// MAP adaptation must have moved means.
	moved := false
	for c := 0; c < rec.UBM.NumComp && !moved; c++ {
		for d := 0; d < rec.UBM.Dim; d++ {
			if rec.LangModels[0].Means[c][d] != rec.UBM.Means[c][d] {
				moved = true
				break
			}
		}
	}
	if !moved {
		t.Fatal("MAP adaptation did not move any mean")
	}
}

func TestAcousticBaselineNearChanceOnPhonotacticCorpus(t *testing.T) {
	// A corpus property this repository depends on and documents
	// (EXPERIMENTS.md): the synthetic languages share one acoustic phone
	// inventory and differ only phonotactically, so the *acoustic*
	// GMM-UBM baseline carries almost no language information here —
	// while the phonotactic stack reaches single-digit 30s EERs. The
	// test pins that contrast (and would flag a corpus change that leaks
	// language identity into the raw audio).
	if testing.Short() {
		t.Skip("acoustic training is slow")
	}
	langs := synthlang.Generate(synthlang.DefaultConfig(), 42)[:3]
	var trainFrames [][][]float64
	for li, lang := range langs {
		trainFrames = append(trainFrames, langFrames(t, lang, uint64(10+li), 6, 8))
	}
	cfg := DefaultConfig()
	cfg.UBMMix = 16
	rec, err := Train(cfg, trainFrames)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for li, lang := range langs {
		for i := 0; i < 4; i++ {
			frames := langFrames(t, lang, uint64(100+10*li+i), 1, 10)
			if rec.Classify(frames) == li {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	// Anywhere from chance to moderate is acceptable; near-perfect would
	// mean the corpus leaks language identity acoustically.
	if acc > 0.9 {
		t.Fatalf("acoustic baseline suspiciously strong (%.2f) on a phonotactic-only corpus", acc)
	}
	for _, frames := range trainFrames {
		s := rec.Score(frames[:100])
		for _, v := range s {
			if v != v { // NaN
				t.Fatal("non-finite score")
			}
		}
	}
}

func TestScoreEmptyUtterance(t *testing.T) {
	langs := synthlang.Generate(synthlang.DefaultConfig(), 42)[:2]
	var trainFrames [][][]float64
	for li, lang := range langs {
		trainFrames = append(trainFrames, langFrames(t, lang, uint64(20+li), 2, 4))
	}
	cfg := DefaultConfig()
	cfg.UBMMix = 4
	rec, err := Train(cfg, trainFrames)
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Score(nil)
	for _, v := range s {
		if v != 0 {
			t.Fatal("empty utterance should score zero")
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(DefaultConfig(), nil); err == nil {
		t.Fatal("accepted no languages")
	}
	if _, err := Train(DefaultConfig(), [][][]float64{{}, {}}); err == nil {
		t.Fatal("accepted no frames")
	}
}

func TestFrameCount(t *testing.T) {
	f := [][][]float64{{{1}}, {{1}, {2}}}
	if FrameCount(f) != 3 {
		t.Fatalf("FrameCount = %d", FrameCount(f))
	}
}

package vsm

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/frontend"
	"repro/internal/sparse"
)

func tinyCorpus() *corpus.Corpus {
	cfg := corpus.TinyConfig()
	cfg.TrainPerLang = 4
	cfg.DevPerLang = 2
	cfg.TestPerLang = 2
	return corpus.Build(cfg)
}

func TestExtractCoversAllSplits(t *testing.T) {
	c := tinyCorpus()
	fe := frontend.New("CZ", frontend.ANNHMM, 43, 5)
	f := Extract(fe, c, ExtractOptions{Seed: 7})
	splits := []*corpus.Split{c.Train, c.AllDev(), c.AllTest()}
	for _, s := range splits {
		vecs := f.Vectors(s)
		if len(vecs) != s.Len() {
			t.Fatalf("%s: %d vectors for %d items", s.Name, len(vecs), s.Len())
		}
		for i, v := range vecs {
			if v == nil || v.NNZ() == 0 {
				t.Fatalf("%s item %d has empty supervector", s.Name, i)
			}
			if err := v.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if f.Dim() != fe.Space.Dim() {
		t.Fatal("Dim mismatch")
	}
	if f.TF == nil {
		t.Fatal("TFLLR not estimated")
	}
}

func TestExtractDeterministic(t *testing.T) {
	c := tinyCorpus()
	fe := frontend.New("CZ", frontend.ANNHMM, 43, 5)
	a := Extract(fe, c, ExtractOptions{Seed: 7})
	b := Extract(fe, c, ExtractOptions{Seed: 7})
	it := c.Train.Items[0]
	va, vb := a.Vector(it.ID), b.Vector(it.ID)
	if va.NNZ() != vb.NNZ() {
		t.Fatal("extraction not deterministic")
	}
	for k := range va.Idx {
		if va.Idx[k] != vb.Idx[k] || va.Val[k] != vb.Val[k] {
			t.Fatal("extraction not deterministic")
		}
	}
}

func TestExtractTFLLRChangesScaling(t *testing.T) {
	c := tinyCorpus()
	fe := frontend.New("CZ", frontend.ANNHMM, 43, 5)
	with := Extract(fe, c, ExtractOptions{Seed: 7})
	without := Extract(fe, c, ExtractOptions{Seed: 7, DisableTFLLR: true})
	if without.TF != nil {
		t.Fatal("TF estimated despite DisableTFLLR")
	}
	it := c.Train.Items[0]
	vw, vr := with.Vector(it.ID), without.Vector(it.ID)
	diff := false
	for k := range vw.Val {
		if vw.Val[k] != vr.Val[k] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("TFLLR scaling had no effect")
	}
}

func TestVectorPanicsOnUnknownID(t *testing.T) {
	c := tinyCorpus()
	fe := frontend.New("CZ", frontend.ANNHMM, 43, 5)
	f := Extract(fe, c, ExtractOptions{Seed: 7})
	defer func() {
		if recover() == nil {
			t.Fatal("Vector accepted unknown ID")
		}
	}()
	f.Vector(99999999)
}

func TestTrainSubsystemAndScoreMatrix(t *testing.T) {
	c := tinyCorpus()
	fe := frontend.New("CZ", frontend.ANNHMM, 43, 5)
	f := Extract(fe, c, ExtractOptions{Seed: 7})
	trainX := f.Vectors(c.Train)
	sub := TrainSubsystem(fe.Name, trainX, c.Train.Labels(), 23, f.Dim(), DefaultSVMOptions())
	if sub.OVR.NumClasses != 23 {
		t.Fatalf("NumClasses = %d", sub.OVR.NumClasses)
	}
	testX := f.Vectors(c.Test[30])
	mat := sub.ScoreMatrix(testX)
	if len(mat) != len(testX) || len(mat[0]) != 23 {
		t.Fatal("score matrix shape wrong")
	}
	// Training accuracy should be far above 1/23 chance.
	if acc := sub.OVR.Accuracy(trainX, c.Train.Labels()); acc < 0.5 {
		t.Fatalf("training accuracy %v", acc)
	}
}

func TestScoreMatrixMatchesDirectScores(t *testing.T) {
	c := tinyCorpus()
	fe := frontend.New("CZ", frontend.ANNHMM, 43, 5)
	f := Extract(fe, c, ExtractOptions{Seed: 7})
	sub := TrainSubsystem(fe.Name, f.Vectors(c.Train), c.Train.Labels(), 23, f.Dim(), DefaultSVMOptions())
	xs := []*sparse.Vector{f.Vectors(c.Test[10])[0]}
	mat := sub.ScoreMatrix(xs)
	direct := sub.OVR.Scores(xs[0])
	for k := range direct {
		if mat[0][k] != direct[k] {
			t.Fatal("ScoreMatrix disagrees with direct scoring")
		}
	}
}

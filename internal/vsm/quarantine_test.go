package vsm

import (
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/frontend"
)

// chaosExtract runs ExtractChecked under a fault plan and returns the
// result after restoring the clean state.
func chaosExtract(t *testing.T, plan string, opt ExtractOptions) (*Features, error) {
	t.Helper()
	c := tinyCorpus()
	fe := frontend.New("CZ", frontend.ANNHMM, 43, 5)
	p, err := faultinject.ParsePlan(plan)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	restore := faultinject.Enable(p)
	defer restore()
	return ExtractChecked(fe, c, opt)
}

func TestQuarantineSkipsCorruptUtterances(t *testing.T) {
	// Inject a handful of lattice corruptions (well under the 5% default
	// cap: the tiny corpus decodes 23 langs × 16 utts = 368 utterances).
	f, err := chaosExtract(t, "seed=3; frontend.decode:error:every=100", ExtractOptions{Seed: 7})
	if err != nil {
		t.Fatalf("extraction failed instead of quarantining: %v", err)
	}
	if len(f.Quarantined) == 0 {
		t.Fatal("no utterances quarantined despite injected faults")
	}
	clean := Extract(frontend.New("CZ", frontend.ANNHMM, 43, 5), tinyCorpus(), ExtractOptions{Seed: 7})
	for _, q := range f.Quarantined {
		if q.Err == "" {
			t.Fatalf("quarantined item %d has no error text", q.ItemID)
		}
		// Quarantined items keep a placeholder so downstream shapes hold.
		if !f.Has(q.ItemID) {
			t.Fatalf("quarantined item %d missing from the cache", q.ItemID)
		}
		if f.Vector(q.ItemID).NNZ() != 0 {
			t.Fatalf("quarantined item %d has a non-empty supervector", q.ItemID)
		}
		if clean.Vector(q.ItemID).NNZ() == 0 {
			t.Fatalf("item %d is empty even in the clean run — bad test premise", q.ItemID)
		}
	}
}

func TestQuarantineCapFailsThePhase(t *testing.T) {
	// Fail every third decode: far above any sane cap.
	_, err := chaosExtract(t, "seed=3; frontend.decode:error:every=3", ExtractOptions{Seed: 7})
	if err == nil {
		t.Fatal("mass corruption did not fail the phase")
	}
	if !strings.Contains(err.Error(), "quarantined") || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("cap error is unhelpful: %v", err)
	}
}

func TestQuarantineCapConfigurable(t *testing.T) {
	// The same fault rate passes when the caller raises the cap.
	f, err := chaosExtract(t, "seed=3; frontend.decode:error:every=3",
		ExtractOptions{Seed: 7, MaxQuarantineFrac: 0.9})
	if err != nil {
		t.Fatalf("raised cap still failed: %v", err)
	}
	if len(f.Quarantined) < 100 {
		t.Fatalf("expected ~1/3 of 368 utterances quarantined, got %d", len(f.Quarantined))
	}
}

func TestExtractCleanRunHasNoQuarantine(t *testing.T) {
	c := tinyCorpus()
	fe := frontend.New("CZ", frontend.ANNHMM, 43, 5)
	f, err := ExtractChecked(fe, c, ExtractOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Quarantined) != 0 {
		t.Fatalf("clean run quarantined %d utterances", len(f.Quarantined))
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c := tinyCorpus()
	fe := frontend.New("CZ", frontend.ANNHMM, 43, 5)
	f := Extract(fe, c, ExtractOptions{Seed: 7})
	snap := f.Snapshot()
	r, err := RestoreFeatures(fe, snap)
	if err != nil {
		t.Fatalf("RestoreFeatures: %v", err)
	}
	for _, it := range c.Train.Items {
		a, b := f.Vector(it.ID), r.Vector(it.ID)
		if a.NNZ() != b.NNZ() {
			t.Fatalf("item %d: NNZ %d != %d", it.ID, a.NNZ(), b.NNZ())
		}
		for k := range a.Idx {
			if a.Idx[k] != b.Idx[k] || a.Val[k] != b.Val[k] {
				t.Fatalf("item %d differs after restore", it.ID)
			}
		}
	}
	if r.TF == nil {
		t.Fatal("TFLLR lost in snapshot round trip")
	}

	// Wrong front-end: refused.
	other := frontend.New("HU", frontend.ANNHMM, 43, 5)
	if _, err := RestoreFeatures(other, snap); err == nil {
		t.Fatal("snapshot restored into the wrong front-end")
	}
	wrongDim := frontend.New("CZ", frontend.ANNHMM, 61, 5)
	if _, err := RestoreFeatures(wrongDim, snap); err == nil {
		t.Fatal("snapshot restored into a different feature space")
	}
}

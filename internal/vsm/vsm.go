// Package vsm implements the vector-space-modeling layer of PPRVSM
// (paper Section 2.3): per-front-end supervector extraction with TFLLR
// scaling, one-versus-rest SVM language models (the model matrix M of
// Eq. 7), and score matrices (F of Eq. 8–9).
//
// Extraction is the expensive stage (decoding dominates the paper's cost
// analysis, Section 5.4), so each (front-end, utterance) pair is decoded
// exactly once and cached; both the baseline pass and every DBA retraining
// pass reuse the cached supervectors, which is why DBA's overhead is only
// the extra SVM training — the property behind the paper's Eq. 19.
package vsm

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/frontend"
	"repro/internal/ngram"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// Features caches one front-end's supervectors for an entire corpus.
type Features struct {
	FE *frontend.FrontEnd
	// TF is nil when TFLLR scaling is disabled (ablation).
	TF      *ngram.TFLLR
	vectors map[int]*sparse.Vector
	// mat is the CSR arena backing every cached vector: one contiguous
	// Idx/Val/RowPtr triple for the whole corpus instead of thousands of
	// boxed slice pairs.
	mat *sparse.Matrix
}

// ExtractOptions controls feature extraction.
type ExtractOptions struct {
	Seed uint64
	// DisableTFLLR turns off background scaling (raw probabilities), for
	// the ablation bench.
	DisableTFLLR bool
	// TFLLRFloor is the background probability floor.
	TFLLRFloor float64
}

// Extract decodes every utterance of the corpus through the front-end and
// builds TFLLR-scaled supervectors. The TFLLR background is estimated from
// the training split only (no test leakage). Decoding randomness derives
// from (seed, front-end name, item ID), so extraction is deterministic and
// order-independent.
func Extract(fe *frontend.FrontEnd, c *corpus.Corpus, opt ExtractOptions) *Features {
	if opt.TFLLRFloor <= 0 {
		opt.TFLLRFloor = 1e-5
	}
	root := rng.New(opt.Seed).SplitString("extract:" + fe.Name)
	f := &Features{FE: fe, vectors: make(map[int]*sparse.Vector)}

	splits := []*corpus.Split{c.Train}
	for _, dur := range corpus.Durations {
		splits = append(splits, c.Dev[dur], c.Test[dur])
	}
	// Flatten items for parallel decoding.
	var items []*corpus.Item
	for _, s := range splits {
		items = append(items, s.Items...)
	}
	// The decode pool is the pipeline's dominant cost (Table 5); per-worker
	// busy time and task latencies land in the obs registry under
	// "pool.decode.*", making utilization and straggler utterances visible
	// in run reports.
	vecs := make([]*sparse.Vector, len(items))
	parallel.ForPool("decode", len(items), func(i int) {
		it := items[i]
		r := root.Split(uint64(it.ID))
		vecs[i] = fe.Space.Supervector(fe.Decode(r, it.U))
	})
	// Repack the per-utterance vectors into one CSR matrix so the whole
	// feature cache lives in three contiguous arenas; the cached entries
	// are row views into them. TFLLR scaling below mutates values through
	// the views, which writes into the shared arena as intended.
	f.mat = sparse.MatrixFromRows(vecs)
	var nnz int64
	for i, it := range items {
		f.vectors[it.ID] = f.mat.Row(i)
		nnz += int64(f.mat.Row(i).NNZ())
	}
	obs.Add("supervector.count", int64(len(items)))
	obs.Add("supervector.nnz", nnz)
	obs.SetGauge("supervector.dim."+fe.Name, float64(fe.Space.Dim()))

	if !opt.DisableTFLLR {
		trainVecs := make([]*sparse.Vector, 0, c.Train.Len())
		for _, it := range c.Train.Items {
			trainVecs = append(trainVecs, f.vectors[it.ID])
		}
		f.TF = ngram.EstimateTFLLR(trainVecs, fe.Space.Dim(), opt.TFLLRFloor)
		for _, v := range f.vectors {
			f.TF.Apply(v)
		}
	}
	return f
}

// Vector returns the cached supervector for a corpus item ID.
func (f *Features) Vector(id int) *sparse.Vector {
	v, ok := f.vectors[id]
	if !ok {
		panic(fmt.Sprintf("vsm: no cached vector for item %d", id))
	}
	return v
}

// Vectors returns the supervectors of a split in item order.
func (f *Features) Vectors(s *corpus.Split) []*sparse.Vector {
	out := make([]*sparse.Vector, s.Len())
	for i, it := range s.Items {
		out[i] = f.Vector(it.ID)
	}
	return out
}

// Matrix returns the CSR arena backing the feature cache (nil for
// hand-assembled Features without one).
func (f *Features) Matrix() *sparse.Matrix { return f.mat }

// Dim returns the supervector dimension of the front-end.
func (f *Features) Dim() int { return f.FE.Space.Dim() }

// Subsystem is one trained VSM: a front-end's one-vs-rest language models
// (one row M_q of the paper's model matrix, Eq. 7).
type Subsystem struct {
	Name string
	Dim  int
	OVR  *svm.OneVsRest
}

// TrainSubsystem fits the one-vs-rest SVMs on supervectors.
func TrainSubsystem(name string, xs []*sparse.Vector, labels []int, numLangs, dim int, opt svm.Options) *Subsystem {
	return &Subsystem{
		Name: name,
		Dim:  dim,
		OVR:  svm.TrainOVR(xs, labels, numLangs, dim, opt),
	}
}

// ScoreMatrix scores a set of utterances against all language models,
// returning the m×K matrix F_q of Eq. 9.
func (s *Subsystem) ScoreMatrix(xs []*sparse.Vector) [][]float64 {
	return s.OVR.ScoreAll(xs)
}

// DefaultSVMOptions returns the solver settings used across the
// experiments: LIBLINEAR-like defaults with the positive class upweighted
// to counter the 1-vs-22 imbalance.
func DefaultSVMOptions() svm.Options {
	opt := svm.DefaultOptions()
	opt.C = 1
	opt.PositiveWeight = 4
	opt.MaxIters = 120
	opt.Eps = 0.02
	return opt
}

// Package vsm implements the vector-space-modeling layer of PPRVSM
// (paper Section 2.3): per-front-end supervector extraction with TFLLR
// scaling, one-versus-rest SVM language models (the model matrix M of
// Eq. 7), and score matrices (F of Eq. 8–9).
//
// Extraction is the expensive stage (decoding dominates the paper's cost
// analysis, Section 5.4), so each (front-end, utterance) pair is decoded
// exactly once and cached; both the baseline pass and every DBA retraining
// pass reuse the cached supervectors, which is why DBA's overhead is only
// the extra SVM training — the property behind the paper's Eq. 19.
package vsm

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/corpus"
	"repro/internal/frontend"
	"repro/internal/ngram"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// Features caches one front-end's supervectors for an entire corpus.
type Features struct {
	FE *frontend.FrontEnd
	// TF is nil when TFLLR scaling is disabled (ablation).
	TF *ngram.TFLLR
	// Quarantined lists utterances whose decode produced a corrupt
	// lattice; each carries an empty supervector in the cache (it scores
	// as bias-only) so downstream shapes stay intact. Empty on healthy
	// runs.
	Quarantined []QuarantinedUtterance
	vectors     map[int]*sparse.Vector
	// mat is the CSR arena backing every cached vector: one contiguous
	// Idx/Val/RowPtr triple for the whole corpus instead of thousands of
	// boxed slice pairs.
	mat *sparse.Matrix
}

// QuarantinedUtterance records one utterance skipped during extraction.
type QuarantinedUtterance struct {
	ItemID int
	Err    string
}

// DefaultMaxQuarantineFrac is the fraction of corrupt utterances a
// front-end's extraction tolerates before the phase fails outright: a
// handful of bad lattices is data damage worth surviving, a third of the
// corpus is a broken decoder worth failing loudly on.
const DefaultMaxQuarantineFrac = 0.05

// ExtractOptions controls feature extraction.
type ExtractOptions struct {
	Seed uint64
	// DisableTFLLR turns off background scaling (raw probabilities), for
	// the ablation bench.
	DisableTFLLR bool
	// TFLLRFloor is the background probability floor.
	TFLLRFloor float64
	// MaxQuarantineFrac caps the tolerated quarantine rate (corrupt
	// lattices skipped with an empty supervector); above it
	// ExtractChecked fails the phase. ≤ 0 means
	// DefaultMaxQuarantineFrac.
	MaxQuarantineFrac float64
}

// Extract decodes every utterance of the corpus through the front-end and
// builds TFLLR-scaled supervectors. The TFLLR background is estimated from
// the training split only (no test leakage). Decoding randomness derives
// from (seed, front-end name, item ID), so extraction is deterministic and
// order-independent.
func Extract(fe *frontend.FrontEnd, c *corpus.Corpus, opt ExtractOptions) *Features {
	f, err := ExtractChecked(fe, c, opt)
	if err != nil {
		panic(err)
	}
	return f
}

// ExtractChecked is Extract with per-utterance quarantine: a corrupt
// lattice (a lattice.ParseSausage error, organic or injected) skips that
// utterance — it keeps an empty supervector, is logged, counted
// (extract.quarantined), and reported on Features.Quarantined — instead
// of aborting the whole phase. If the quarantine rate exceeds
// MaxQuarantineFrac the phase fails with an error naming the first
// offender (cap-and-fail: mass corruption means a broken decoder, not
// salvageable data).
func ExtractChecked(fe *frontend.FrontEnd, c *corpus.Corpus, opt ExtractOptions) (*Features, error) {
	if opt.TFLLRFloor <= 0 {
		opt.TFLLRFloor = 1e-5
	}
	root := rng.New(opt.Seed).SplitString("extract:" + fe.Name)
	f := &Features{FE: fe, vectors: make(map[int]*sparse.Vector)}

	splits := []*corpus.Split{c.Train}
	for _, dur := range corpus.Durations {
		splits = append(splits, c.Dev[dur], c.Test[dur])
	}
	// Flatten items for parallel decoding.
	var items []*corpus.Item
	for _, s := range splits {
		items = append(items, s.Items...)
	}
	// The decode pool is the pipeline's dominant cost (Table 5); per-worker
	// busy time and task latencies land in the obs registry under
	// "pool.decode.*", making utilization and straggler utterances visible
	// in run reports.
	vecs := make([]*sparse.Vector, len(items))
	decodeErrs := make([]error, len(items))
	parallel.ForPool("decode", len(items), func(i int) {
		it := items[i]
		r := root.Split(uint64(it.ID))
		lat, err := fe.DecodeChecked(r, it.U)
		if err != nil {
			decodeErrs[i] = err
			vecs[i] = sparse.New(0)
			return
		}
		vecs[i] = fe.Space.Supervector(lat)
	})
	for i, err := range decodeErrs {
		if err != nil {
			f.Quarantined = append(f.Quarantined, QuarantinedUtterance{ItemID: items[i].ID, Err: err.Error()})
		}
	}
	if n := len(f.Quarantined); n > 0 {
		obs.Add("extract.quarantined", int64(n))
		first := f.Quarantined[0]
		log.Printf("vsm: front-end %s: quarantined %d/%d utterances (first: item %d: %s)",
			fe.Name, n, len(items), first.ItemID, first.Err)
		maxFrac := opt.MaxQuarantineFrac
		if maxFrac <= 0 {
			maxFrac = DefaultMaxQuarantineFrac
		}
		if float64(n) > maxFrac*float64(len(items)) {
			obs.Inc("extract.quarantine_overflow")
			return nil, fmt.Errorf("vsm: front-end %s: %d/%d utterances (%.1f%%) quarantined, above the %.1f%% cap; first: item %d: %s",
				fe.Name, n, len(items), 100*float64(n)/float64(len(items)), 100*maxFrac, first.ItemID, first.Err)
		}
	}
	// Repack the per-utterance vectors into one CSR matrix so the whole
	// feature cache lives in three contiguous arenas; the cached entries
	// are row views into them. TFLLR scaling below mutates values through
	// the views, which writes into the shared arena as intended.
	f.mat = sparse.MatrixFromRows(vecs)
	var nnz int64
	for i, it := range items {
		f.vectors[it.ID] = f.mat.Row(i)
		nnz += int64(f.mat.Row(i).NNZ())
	}
	obs.Add("supervector.count", int64(len(items)))
	obs.Add("supervector.nnz", nnz)
	obs.SetGauge("supervector.dim."+fe.Name, float64(fe.Space.Dim()))

	if !opt.DisableTFLLR {
		trainVecs := make([]*sparse.Vector, 0, c.Train.Len())
		for _, it := range c.Train.Items {
			trainVecs = append(trainVecs, f.vectors[it.ID])
		}
		f.TF = ngram.EstimateTFLLR(trainVecs, fe.Space.Dim(), opt.TFLLRFloor)
		for _, v := range f.vectors {
			f.TF.Apply(v)
		}
	}
	return f, nil
}

// FeaturesSnapshot is the serializable form of a Features cache — what
// the checkpoint store persists per front-end after the extraction
// phase. Rows hold the post-TFLLR supervectors in ascending-item-ID
// order; float64 values round-trip through gob bit-exactly, which is
// what makes resumed runs bit-identical to uninterrupted ones.
type FeaturesSnapshot struct {
	FEName      string
	Dim         int
	TF          *ngram.TFLLR
	IDs         []int
	Rows        []*sparse.Vector
	Quarantined []QuarantinedUtterance
}

// Snapshot captures the cache for checkpointing.
func (f *Features) Snapshot() *FeaturesSnapshot {
	ids := make([]int, 0, len(f.vectors))
	for id := range f.vectors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	rows := make([]*sparse.Vector, len(ids))
	for i, id := range ids {
		rows[i] = f.vectors[id]
	}
	return &FeaturesSnapshot{
		FEName:      f.FE.Name,
		Dim:         f.Dim(),
		TF:          f.TF,
		IDs:         ids,
		Rows:        rows,
		Quarantined: f.Quarantined,
	}
}

// RestoreFeatures rebuilds a Features cache from a snapshot, repacking
// the rows into a fresh CSR arena. The snapshot must belong to a
// front-end with the same name and supervector dimension; item coverage
// is the caller's check (Has).
func RestoreFeatures(fe *frontend.FrontEnd, snap *FeaturesSnapshot) (*Features, error) {
	if snap.FEName != fe.Name {
		return nil, fmt.Errorf("vsm: snapshot belongs to front-end %q, not %q", snap.FEName, fe.Name)
	}
	if snap.Dim != fe.Space.Dim() {
		return nil, fmt.Errorf("vsm: snapshot dimension %d, front-end %q has %d", snap.Dim, fe.Name, fe.Space.Dim())
	}
	if len(snap.IDs) != len(snap.Rows) {
		return nil, fmt.Errorf("vsm: snapshot has %d IDs but %d rows", len(snap.IDs), len(snap.Rows))
	}
	f := &Features{
		FE:          fe,
		TF:          snap.TF,
		Quarantined: snap.Quarantined,
		vectors:     make(map[int]*sparse.Vector, len(snap.IDs)),
		mat:         sparse.MatrixFromRows(snap.Rows),
	}
	for i, id := range snap.IDs {
		f.vectors[id] = f.mat.Row(i)
	}
	return f, nil
}

// Has reports whether the cache holds a supervector for a corpus item ID.
func (f *Features) Has(id int) bool {
	_, ok := f.vectors[id]
	return ok
}

// Vector returns the cached supervector for a corpus item ID.
func (f *Features) Vector(id int) *sparse.Vector {
	v, ok := f.vectors[id]
	if !ok {
		panic(fmt.Sprintf("vsm: no cached vector for item %d", id))
	}
	return v
}

// Vectors returns the supervectors of a split in item order.
func (f *Features) Vectors(s *corpus.Split) []*sparse.Vector {
	out := make([]*sparse.Vector, s.Len())
	for i, it := range s.Items {
		out[i] = f.Vector(it.ID)
	}
	return out
}

// Matrix returns the CSR arena backing the feature cache (nil for
// hand-assembled Features without one).
func (f *Features) Matrix() *sparse.Matrix { return f.mat }

// Projector is anything that maps a raw-space supervector into a
// fixed-rank output row — proj.Projection (exact float64 basis) and
// proj.Packed (the serialized float64/float32/int8 forms) both qualify.
type Projector interface {
	ApplyInto(x *sparse.Vector, out []float64)
}

// ProjectVectors maps supervectors into a projection's rank space in
// parallel and repacks the results into one CSR arena — the same
// locality layout extraction builds, so downstream SVM training and
// scoring over projected features touch contiguous memory. The inputs
// are not modified.
func ProjectVectors(p Projector, rank int, xs []*sparse.Vector) []*sparse.Vector {
	rows := make([]*sparse.Vector, len(xs))
	parallel.ForPool("project", len(xs), func(i int) {
		out := make([]float64, rank)
		p.ApplyInto(xs[i], out)
		rows[i] = sparse.FromDense(out)
	})
	mat := sparse.MatrixFromRows(rows)
	for i := range rows {
		rows[i] = mat.Row(i)
	}
	return rows
}

// Dim returns the supervector dimension of the front-end.
func (f *Features) Dim() int { return f.FE.Space.Dim() }

// Subsystem is one trained VSM: a front-end's one-vs-rest language models
// (one row M_q of the paper's model matrix, Eq. 7).
type Subsystem struct {
	Name string
	Dim  int
	OVR  *svm.OneVsRest
}

// TrainSubsystem fits the one-vs-rest SVMs on supervectors.
func TrainSubsystem(name string, xs []*sparse.Vector, labels []int, numLangs, dim int, opt svm.Options) *Subsystem {
	return &Subsystem{
		Name: name,
		Dim:  dim,
		OVR:  svm.TrainOVR(xs, labels, numLangs, dim, opt),
	}
}

// ScoreMatrix scores a set of utterances against all language models,
// returning the m×K matrix F_q of Eq. 9.
func (s *Subsystem) ScoreMatrix(xs []*sparse.Vector) [][]float64 {
	return s.OVR.ScoreAll(xs)
}

// DefaultSVMOptions returns the solver settings used across the
// experiments: LIBLINEAR-like defaults with the positive class upweighted
// to counter the 1-vs-22 imbalance.
func DefaultSVMOptions() svm.Options {
	opt := svm.DefaultOptions()
	opt.C = 1
	opt.PositiveWeight = 4
	opt.MaxIters = 120
	opt.Eps = 0.02
	return opt
}

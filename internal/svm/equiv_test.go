package svm

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// refTrain is a frozen copy of the pre-scratch Train implementation
// (fresh slices, per-call Norm2), the oracle the pooled/shared-qii
// solver must match bit for bit.
func refTrain(xs []*sparse.Vector, ys []int, dim int, opt Options) *Model {
	n := len(xs)
	m := &Model{W: make([]float64, dim)}
	if n == 0 {
		return m
	}
	if opt.C <= 0 {
		opt.C = 1
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 200
	}
	if opt.PositiveWeight <= 0 {
		opt.PositiveWeight = 1
	}
	alpha := make([]float64, n)
	qii := make([]float64, n)
	cost := make([]float64, n)
	for i, x := range xs {
		nrm := x.Norm2()
		qii[i] = nrm*nrm + 1
		if ys[i] > 0 {
			cost[i] = opt.C * opt.PositiveWeight
		} else {
			cost[i] = opt.C
		}
	}
	r := rng.New(opt.Seed)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for pass := 0; pass < opt.MaxIters; pass++ {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		maxViolation := 0.0
		for _, i := range order {
			yi := float64(ys[i])
			g := yi*(xs[i].DotDense(m.W)+m.Bias) - 1
			pg := g
			if alpha[i] <= 0 && g > 0 {
				pg = 0
			}
			if alpha[i] >= cost[i] && g < 0 {
				pg = 0
			}
			if v := pg; v < 0 {
				v = -v
				if v > maxViolation {
					maxViolation = v
				}
			} else if v > maxViolation {
				maxViolation = v
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			a := old - g/qii[i]
			if a < 0 {
				a = 0
			} else if a > cost[i] {
				a = cost[i]
			}
			alpha[i] = a
			d := (a - old) * yi
			if d != 0 {
				xs[i].AxpyDense(d, m.W)
				m.Bias += d
			}
		}
		if maxViolation < opt.Eps {
			break
		}
	}
	return m
}

func randProblem(r *rng.RNG, n, dim, numClasses int) ([]*sparse.Vector, []int) {
	xs := make([]*sparse.Vector, n)
	labels := make([]int, n)
	for i := range xs {
		labels[i] = r.Intn(numClasses)
		m := make(map[int32]float64)
		// Give each class a signature region so problems are learnable.
		base := labels[i] * (dim / numClasses)
		for k := 0; k < r.Intn(30)+5; k++ {
			m[int32(base+r.Intn(dim/numClasses))] = r.Float64()
		}
		for k := 0; k < r.Intn(20); k++ {
			m[int32(r.Intn(dim))] = r.Float64() * 0.3
		}
		xs[i] = sparse.FromMap(m)
	}
	return xs, labels
}

func TestTrainOVRMatchesReference(t *testing.T) {
	root := rng.New(77)
	for trial := 0; trial < 6; trial++ {
		r := root.Split(uint64(trial))
		const numClasses, dim = 5, 400
		xs, labels := randProblem(r, 120, dim, numClasses)
		opt := DefaultOptions()
		opt.MaxIters = 60
		opt.Seed = uint64(trial + 1)
		opt.PositiveWeight = 3

		o := TrainOVR(xs, labels, numClasses, dim, opt)
		for k := 0; k < numClasses; k++ {
			ys := make([]int, len(labels))
			for i, l := range labels {
				if l == k {
					ys[i] = 1
				} else {
					ys[i] = -1
				}
			}
			kopt := opt
			kopt.Seed = opt.Seed + uint64(k)*7919
			want := refTrain(xs, ys, dim, kopt)
			got := o.Models[k]
			if got.Bias != want.Bias {
				t.Fatalf("trial %d class %d: bias %v != %v", trial, k, got.Bias, want.Bias)
			}
			for j := range want.W {
				if got.W[j] != want.W[j] {
					t.Fatalf("trial %d class %d: W[%d] %v != %v", trial, k, j, got.W[j], want.W[j])
				}
			}
		}
	}
}

func TestTrainScratchMatchesTrain(t *testing.T) {
	r := rng.New(31)
	xs, labels := randProblem(r, 80, 300, 3)
	ys := make([]int, len(labels))
	for i, l := range labels {
		if l == 0 {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	opt := DefaultOptions()
	opt.MaxIters = 40
	want := Train(xs, ys, 300, opt)
	var sc Scratch
	for round := 0; round < 3; round++ {
		got := TrainScratch(xs, ys, 300, opt, &sc)
		if got.Bias != want.Bias {
			t.Fatalf("round %d: bias %v != %v", round, got.Bias, want.Bias)
		}
		for j := range want.W {
			if got.W[j] != want.W[j] {
				t.Fatalf("round %d: W[%d] differs", round, j)
			}
		}
	}
}

func TestScoresMatchPerModel(t *testing.T) {
	root := rng.New(53)
	const numClasses, dim = 7, 600
	xs, labels := randProblem(root, 150, dim, numClasses)
	opt := DefaultOptions()
	opt.MaxIters = 40
	o := TrainOVR(xs, labels, numClasses, dim, opt)

	for trial := 0; trial < 100; trial++ {
		r := root.Split(uint64(trial))
		m := make(map[int32]float64)
		for k := 0; k < r.Intn(60)+1; k++ {
			// Include out-of-range indices: the packed kernel must apply
			// the same >= len(W) cutoff as Model.Score.
			m[int32(r.Intn(dim+200))] = r.Norm()
		}
		x := sparse.FromMap(m)
		got := o.Scores(x)
		for k, mdl := range o.Models {
			if want := mdl.Score(x); got[k] != want {
				t.Fatalf("trial %d class %d: %v != %v", trial, k, got[k], want)
			}
		}
	}
}

func TestScoreAllMatchesScores(t *testing.T) {
	root := rng.New(59)
	const numClasses, dim = 4, 300
	xs, labels := randProblem(root, 90, dim, numClasses)
	opt := DefaultOptions()
	opt.MaxIters = 30
	o := TrainOVR(xs, labels, numClasses, dim, opt)

	all := o.ScoreAll(xs)
	if len(all) != len(xs) {
		t.Fatalf("rows %d != %d", len(all), len(xs))
	}
	for i, x := range xs {
		want := o.Scores(x)
		for k := range want {
			if all[i][k] != want[k] {
				t.Fatalf("row %d class %d: %v != %v", i, k, all[i][k], want[k])
			}
		}
	}
}

func TestScoresHeterogeneousModelsFallback(t *testing.T) {
	// Hand-assembled OVR with mismatched weight lengths must fall back to
	// per-model scoring rather than pack.
	o := &OneVsRest{NumClasses: 2, Models: []*Model{
		{W: []float64{1, 2, 3}, Bias: 0.5},
		{W: []float64{4}, Bias: -1},
	}}
	x := sparse.FromDense([]float64{1, 1, 1})
	got := o.Scores(x)
	for k, m := range o.Models {
		if want := m.Score(x); got[k] != want {
			t.Fatalf("class %d: %v != %v", k, got[k], want)
		}
	}
}

// TestTrainScratchAllocs pins the satellite requirement: with a warm
// Scratch, repeated training allocates only the returned model (weight
// slice + header), not the solver's working set.
func TestTrainScratchAllocs(t *testing.T) {
	r := rng.New(41)
	xs, labels := randProblem(r, 60, 200, 2)
	ys := make([]int, len(labels))
	for i, l := range labels {
		if l == 0 {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	opt := DefaultOptions()
	opt.MaxIters = 10
	var sc Scratch
	TrainScratch(xs, ys, 200, opt, &sc) // warm the buffers
	allocs := testing.AllocsPerRun(20, func() {
		TrainScratch(xs, ys, 200, opt, &sc)
	})
	// Model struct + W slice + the solver's rng; everything else reused.
	if allocs > 6 {
		t.Fatalf("TrainScratch allocates %v objects per run with warm scratch", allocs)
	}
}

func TestScoresIntoAllocs(t *testing.T) {
	r := rng.New(43)
	xs, labels := randProblem(r, 60, 200, 3)
	opt := DefaultOptions()
	opt.MaxIters = 10
	o := TrainOVR(xs, labels, 3, 200, opt)
	out := make([]float64, 3)
	o.ScoresInto(xs[0], out) // force pack
	allocs := testing.AllocsPerRun(50, func() {
		o.ScoresInto(xs[0], out)
	})
	if allocs != 0 {
		t.Fatalf("ScoresInto allocates %v per run", allocs)
	}
}

func BenchmarkTrainOVR(b *testing.B) {
	r := rng.New(61)
	const numClasses, dim = 23, 3540
	xs, labels := randProblem(r, 400, dim, numClasses)
	opt := DefaultOptions()
	opt.MaxIters = 30
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		o := TrainOVR(xs, labels, numClasses, dim, opt)
		if o.Models[0] == nil {
			b.Fatal("nil model")
		}
	}
}

func BenchmarkScoreAll(b *testing.B) {
	r := rng.New(67)
	const numClasses, dim = 23, 3540
	xs, labels := randProblem(r, 400, dim, numClasses)
	opt := DefaultOptions()
	opt.MaxIters = 20
	o := TrainOVR(xs, labels, numClasses, dim, opt)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		out := o.ScoreAll(xs)
		if len(out) != len(xs) {
			b.Fatal("bad rows")
		}
	}
}

package svm

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// quantFixture trains a small OVR problem so the precision rungs are
// exercised on real solver output, not synthetic weights.
func quantFixture(t testing.TB, n, dim, K int) (*OneVsRest, []*sparse.Vector) {
	t.Helper()
	r := rng.New(99)
	xs := make([]*sparse.Vector, n)
	labels := make([]int, n)
	for i := range xs {
		labels[i] = i % K
		dense := make([]float64, dim)
		for j := 0; j < dim/3; j++ {
			dense[r.Intn(dim)] = r.Float64() + 0.2*float64(labels[i])
		}
		xs[i] = sparse.FromDense(dense)
	}
	opt := DefaultOptions()
	opt.MaxIters = 30
	return TrainOVR(xs, labels, K, dim, opt), xs
}

// TestFloat32KernelULPBound pins the float32 packed kernel against the
// float64 oracle. The only deviation the float32 rung introduces is
// rounding each weight once to float32 (≤ 2⁻²⁴ relative per weight);
// accumulation stays float64 with the same addition chain, so the
// documented bound is Σ|xⱼ·wⱼ| · 2⁻²⁴ per class plus accumulation slack —
// checked here with a 4× safety factor.
func TestFloat32KernelULPBound(t *testing.T) {
	const n, dim, K = 40, 200, 7
	o, xs := quantFixture(t, n, dim, K)
	oracle := make([]float64, K)
	got := make([]float64, K)
	for _, x := range xs {
		o.ScoresInto(x, oracle)
		o.ScoresAtInto(Float32, x, got)
		// Magnitude sum bounds the rounding error accumulation.
		var mag float64
		for k, i := range x.Idx {
			for c := 0; c < K; c++ {
				mag += math.Abs(x.Val[k] * o.Models[c].W[i])
			}
		}
		bound := 4 * mag * math.Exp2(-24)
		for c := range oracle {
			if d := math.Abs(got[c] - oracle[c]); d > bound {
				t.Fatalf("class %d: float32 kernel off by %v, documented bound %v", c, d, bound)
			}
		}
	}
}

// TestScoresAtFloat64IsExact pins the Float64 rung to the exact kernel:
// same function, bit-identical values.
func TestScoresAtFloat64IsExact(t *testing.T) {
	o, xs := quantFixture(t, 20, 80, 5)
	a := make([]float64, 5)
	b := make([]float64, 5)
	for _, x := range xs {
		o.ScoresInto(x, a)
		o.ScoresAtInto(Float64, x, b)
		for c := range a {
			if a[c] != b[c] {
				t.Fatalf("Float64 rung is not bit-identical: %v vs %v", a[c], b[c])
			}
		}
	}
}

// TestQuantizedMatchesDequantizedOracle pins the int8 kernel's dequant
// epilogue against scoring the explicitly dequantized float64 models:
// identical weights, so the only difference is reassociating the scale
// multiply — argmax must match everywhere and values must agree tightly.
func TestQuantizedMatchesDequantizedOracle(t *testing.T) {
	const n, dim, K = 60, 150, 9
	o, xs := quantFixture(t, n, dim, K)
	q, err := o.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	oracle := q.Dequantize()
	qs := make([]float64, K)
	os := make([]float64, K)
	for _, x := range xs {
		q.ScoresInto(x, qs)
		oracle.ScoresInto(x, os)
		var scale float64
		for c := range os {
			if a := math.Abs(os[c]); a > scale {
				scale = a
			}
		}
		argQ, argO := 0, 0
		for c := range qs {
			if qs[c] > qs[argQ] {
				argQ = c
			}
			if os[c] > os[argO] {
				argO = c
			}
			if math.Abs(qs[c]-os[c]) > 1e-10*(1+scale) {
				t.Fatalf("class %d: quantized kernel %v vs dequantized oracle %v", c, qs[c], os[c])
			}
		}
		if argQ != argO {
			t.Fatalf("argmax differs: kernel %d, oracle %d", argQ, argO)
		}
	}
}

// TestQuantizedApproximatesFloat64 bounds the quantization loss itself:
// each weight moves by at most Scale[c]/2, so scores move by at most
// (Σ|xⱼ|)·Scale[c]/2.
func TestQuantizedApproximatesFloat64(t *testing.T) {
	const K = 6
	o, xs := quantFixture(t, 30, 100, K)
	q, err := o.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	exact := make([]float64, K)
	approx := make([]float64, K)
	for _, x := range xs {
		o.ScoresInto(x, exact)
		q.ScoresInto(x, approx)
		var l1 float64
		for _, v := range x.Val {
			l1 += math.Abs(v)
		}
		for c := range exact {
			bound := l1*q.Scale[c]/2 + 1e-12
			if d := math.Abs(approx[c] - exact[c]); d > bound {
				t.Fatalf("class %d: quantization error %v above bound %v", c, d, bound)
			}
		}
	}
}

func TestQuantizedValidateRejects(t *testing.T) {
	o, _ := quantFixture(t, 20, 60, 4)
	fresh := func() *Quantized {
		q, err := o.Quantize()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	cases := map[string]func(*Quantized){
		"truncated weights": func(q *Quantized) { q.W8 = q.W8[:len(q.W8)-3] },
		"NaN scale":         func(q *Quantized) { q.Scale[1] = math.NaN() },
		"Inf scale":         func(q *Quantized) { q.Scale[0] = math.Inf(1) },
		"negative scale":    func(q *Quantized) { q.Scale[2] = -1 },
		"zero-point overflow": func(q *Quantized) {
			q.Zero[3] = 4096 // outside int8 range
		},
		"NaN zero point": func(q *Quantized) { q.Zero[0] = math.NaN() },
		"NaN bias":       func(q *Quantized) { q.Bias[1] = math.NaN() },
		"short scales":   func(q *Quantized) { q.Scale = q.Scale[:2] },
		"bad classes":    func(q *Quantized) { q.NumClasses = 0 },
		"bad dim":        func(q *Quantized) { q.Dim = -5 },
	}
	for name, mutate := range cases {
		q := fresh()
		mutate(q)
		if err := q.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt kernel", name)
		}
	}
}

// TestQuantizedZeroPointEpilogue checks the full affine dequantization:
// a hand-built kernel with nonzero zero points must score exactly like
// its Dequantize form.
func TestQuantizedZeroPointEpilogue(t *testing.T) {
	enc := func(v int8) byte { return byte(v) }
	q := &Quantized{
		NumClasses: 2, Dim: 3,
		W8:    []byte{enc(10), enc(-4), enc(0), enc(7), enc(100), enc(-100)},
		Scale: []float64{0.5, 0.25},
		Zero:  []float64{3, -2},
		Bias:  []float64{0.1, -0.2},
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	x := &sparse.Vector{Idx: []int32{0, 2}, Val: []float64{1.5, -2}}
	got := q.Scores(x)
	want := q.Dequantize().Scores(x)
	for c := range got {
		if math.Abs(got[c]-want[c]) > 1e-12 {
			t.Fatalf("class %d: epilogue %v, dequantized oracle %v", c, got[c], want[c])
		}
	}
}

// TestQuantizedScoresIntoAllocFree is the AllocsPerRun gate on the
// quantized hot path: with a caller-provided output row, scoring must
// not allocate.
func TestQuantizedScoresIntoAllocFree(t *testing.T) {
	o, xs := quantFixture(t, 20, 80, 5)
	q, err := o.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, q.NumClasses)
	x := xs[0]
	if n := testing.AllocsPerRun(100, func() { q.ScoresInto(x, out) }); n != 0 {
		t.Fatalf("quantized ScoresInto allocates %v per run, want 0", n)
	}
	// The float32 rung shares the gate once its block is built.
	o.ScoresAtInto(Float32, x, out)
	if n := testing.AllocsPerRun(100, func() { o.ScoresAtInto(Float32, x, out) }); n != 0 {
		t.Fatalf("float32 ScoresAtInto allocates %v per run, want 0", n)
	}
}

func TestQuantizeHeterogeneousFails(t *testing.T) {
	o := &OneVsRest{NumClasses: 2, Models: []*Model{
		{W: []float64{1, 2}, Bias: 0},
		{W: []float64{1, 2, 3}, Bias: 0},
	}}
	if _, err := o.Quantize(); err == nil {
		t.Fatal("heterogeneous models quantized")
	}
}

package svm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestPropertyScoreIsLinear(t *testing.T) {
	// f(x) = w·x + b is affine: f(a·x) − b = a·(f(x) − b).
	r := rng.New(1)
	f := func(seed uint16, scaleRaw uint8) bool {
		rr := r.Split(uint64(seed))
		dim := 10
		m := &Model{W: make([]float64, dim)}
		for i := range m.W {
			m.W[i] = rr.Norm()
		}
		m.Bias = rr.Norm()
		x := make([]float64, dim)
		for i := range x {
			x[i] = rr.Norm()
		}
		a := float64(scaleRaw)/32 + 0.1
		v := sparse.FromDense(x)
		scaled := v.Clone()
		scaled.Scale(a)
		lhs := m.Score(scaled) - m.Bias
		rhs := a * (m.Score(v) - m.Bias)
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDualFeasibility(t *testing.T) {
	// After training, every margin violation must be bounded: for
	// separable-ish data with large C, training points satisfy
	// y·f(x) ≥ 1 − slack with bounded slack mass. We check the weaker,
	// always-true property that the solution is deterministic and scores
	// are finite.
	r := rng.New(2)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		n := rr.Intn(40) + 10
		dim := rr.Intn(10) + 2
		xs := make([]*sparse.Vector, n)
		ys := make([]int, n)
		for i := range xs {
			x := make([]float64, dim)
			y := 1
			if rr.Bernoulli(0.5) {
				y = -1
			}
			for j := range x {
				x[j] = rr.Norm()
			}
			x[0] += float64(y)
			xs[i] = sparse.FromDense(x)
			ys[i] = y
		}
		opt := DefaultOptions()
		opt.MaxIters = 40
		m1 := Train(xs, ys, dim, opt)
		m2 := Train(xs, ys, dim, opt)
		for i := range m1.W {
			if m1.W[i] != m2.W[i] {
				return false
			}
			if math.IsNaN(m1.W[i]) || math.IsInf(m1.W[i], 0) {
				return false
			}
		}
		return m1.Bias == m2.Bias
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOneVsRestScoresMatchBinaryModels(t *testing.T) {
	r := rng.New(3)
	dim := 8
	var xs []*sparse.Vector
	var labels []int
	for i := 0; i < 90; i++ {
		x := make([]float64, dim)
		k := i % 3
		x[k] += 2
		for j := range x {
			x[j] += 0.3 * r.Norm()
		}
		xs = append(xs, sparse.FromDense(x))
		labels = append(labels, k)
	}
	o := TrainOneVsRest(xs, labels, 3, dim, DefaultOptions())
	for _, x := range xs[:15] {
		s := o.Scores(x)
		for k, m := range o.Models {
			if s[k] != m.Score(x) {
				t.Fatal("Scores disagrees with per-model Score")
			}
		}
	}
}

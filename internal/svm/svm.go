// Package svm implements the linear support vector machine behind the
// paper's vector space models: an L2-regularized hinge-loss SVM trained by
// dual coordinate descent — the same solver family as LIBLINEAR, which the
// paper uses — over sparse TFLLR-scaled supervectors, with a one-versus-
// rest multiclass wrapper (the paper trains every language model
// one-versus-rest, Section 2.3).
//
// The dual problem is min_α ½αᵀQα − eᵀα subject to 0 ≤ α_i ≤ C with
// Q_ij = y_i·y_j·x_iᵀx_j. The solver sweeps coordinates in random order,
// maintaining the primal vector w = Σ α_i·y_i·x_i so each update is O(nnz).
// A bias term is included by augmenting every example with a constant
// feature (LIBLINEAR's -B 1).
package svm

import (
	"math"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// Training-work counters (obs run reports): models trained, solver passes
// actually executed (vs the MaxIters budget), and per-model train latency.
var (
	obsModels = obs.GetCounter("svm.train.models")
	obsPasses = obs.GetCounter("svm.train.passes")
	obsTrainS = obs.GetHistogram("svm.train.seconds")
)

// Model is a trained linear decision function f(x) = w·x + b.
type Model struct {
	W    []float64
	Bias float64
}

// Score returns the signed decision value; its magnitude is the distance
// to the separating hyperplane scaled by ‖w‖, which DBA uses as its
// confidence (paper Eq. 13 rationale).
func (m *Model) Score(x *sparse.Vector) float64 {
	return x.DotDense(m.W) + m.Bias
}

// Options controls training.
type Options struct {
	// C is the soft-margin cost (LIBLINEAR default 1).
	C float64
	// MaxIters bounds the number of full passes over the data.
	MaxIters int
	// Eps is the stopping tolerance on the maximal projected gradient
	// violation within a pass.
	Eps float64
	// Seed drives the coordinate permutation.
	Seed uint64
	// PositiveWeight scales C for positive examples; one-versus-rest
	// language recognition is heavily imbalanced (1 target language vs
	// 22), so the positive class usually gets a larger cost.
	PositiveWeight float64
}

// DefaultOptions mirrors the LIBLINEAR defaults with a class-imbalance
// correction suitable for the 23-language one-vs-rest setting.
func DefaultOptions() Options {
	return Options{
		C:              1,
		MaxIters:       200,
		Eps:            0.01,
		Seed:           1,
		PositiveWeight: 1,
	}
}

// Scratch holds the solver's per-problem working buffers (coordinate
// order, dual variables, diagonal, costs, and one-vs-rest labels) so
// repeated training — DBA retraining rounds, the 23 OVR problems —
// reuses memory instead of reallocating every slice per call. The zero
// value is ready; buffers grow on demand and are retained.
type Scratch struct {
	order []int
	alpha []float64
	qii   []float64
	cost  []float64
	ys    []int
}

// grow resizes the scratch buffers to n elements, reusing capacity.
func (sc *Scratch) grow(n int) {
	if cap(sc.order) < n {
		sc.order = make([]int, n)
		sc.alpha = make([]float64, n)
		sc.qii = make([]float64, n)
		sc.cost = make([]float64, n)
		sc.ys = make([]int, n)
	}
	sc.order = sc.order[:n]
	sc.alpha = sc.alpha[:n]
	sc.qii = sc.qii[:n]
	sc.cost = sc.cost[:n]
	sc.ys = sc.ys[:n]
}

// scratchPool recycles Scratch instances across TrainOVR workers and
// DBA retraining rounds.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Train fits a binary SVM. ys must be ±1; dim is the feature dimension
// (indices ≥ dim are ignored).
func Train(xs []*sparse.Vector, ys []int, dim int, opt Options) *Model {
	return trainInto(xs, ys, nil, dim, opt, nil)
}

// TrainScratch is Train with caller-provided working buffers; repeated
// calls (DBA retraining) allocate only the model itself.
func TrainScratch(xs []*sparse.Vector, ys []int, dim int, opt Options, sc *Scratch) *Model {
	return trainInto(xs, ys, nil, dim, opt, sc)
}

// trainInto is the dual coordinate-descent core. sharedQii, when
// non-nil, supplies the precomputed Q_ii diagonal (‖x_i‖²+1) shared by
// every one-vs-rest problem over the same examples; sc, when non-nil,
// provides reusable working buffers. The arithmetic — including the
// Norm2-then-square form of Q_ii — is identical regardless of which
// buffers are borrowed, so results are bit-for-bit the same as the
// original Train.
func trainInto(xs []*sparse.Vector, ys []int, sharedQii []float64, dim int, opt Options, sc *Scratch) *Model {
	if len(xs) != len(ys) {
		panic("svm: xs/ys length mismatch")
	}
	n := len(xs)
	m := &Model{W: make([]float64, dim)}
	if n == 0 {
		return m
	}
	if opt.C <= 0 {
		opt.C = 1
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 200
	}
	if opt.PositiveWeight <= 0 {
		opt.PositiveWeight = 1
	}

	if sc == nil {
		sc = new(Scratch)
	}
	sc.grow(n)
	alpha := sc.alpha
	for i := range alpha {
		alpha[i] = 0
	}
	// Q_ii = ‖x_i‖² + 1 (bias augmentation).
	qii := sc.qii
	if sharedQii != nil {
		qii = sharedQii
	}
	cost := sc.cost
	for i, x := range xs {
		if sharedQii == nil {
			nrm := x.Norm2()
			qii[i] = nrm*nrm + 1
		}
		if ys[i] > 0 {
			cost[i] = opt.C * opt.PositiveWeight
		} else {
			cost[i] = opt.C
		}
	}
	r := rng.New(opt.Seed)
	order := sc.order
	for i := range order {
		order[i] = i
	}
	t0 := time.Now()
	passes := 0
	// Hoist the weight slice and bias into locals: m escapes (it is
	// returned), so m.Bias would otherwise be a memory load per
	// coordinate and a store per update.
	w := m.W
	bias := m.Bias
	for pass := 0; pass < opt.MaxIters; pass++ {
		passes++
		// Inline Fisher–Yates with the exact rng.Shuffle draw sequence
		// (j = Intn(i+1) for i = n-1…1): same swaps, same bits, no
		// closure call per element.
		for i := n - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		maxViolation := 0.0
		for _, i := range order {
			yi := float64(ys[i])
			g := yi*(xs[i].DotDense(w)+bias) - 1
			// Projected gradient for the box constraint.
			pg := g
			if alpha[i] <= 0 && g > 0 {
				pg = 0
			}
			if alpha[i] >= cost[i] && g < 0 {
				pg = 0
			}
			if v := math.Abs(pg); v > maxViolation {
				maxViolation = v
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			a := old - g/qii[i]
			if a < 0 {
				a = 0
			} else if a > cost[i] {
				a = cost[i]
			}
			alpha[i] = a
			d := (a - old) * yi
			if d != 0 {
				xs[i].AxpyDense(d, w)
				bias += d
			}
		}
		if maxViolation < opt.Eps {
			break
		}
	}
	m.Bias = bias
	obsModels.Inc()
	obsPasses.Add(int64(passes))
	obsTrainS.Observe(time.Since(t0).Seconds())
	return m
}

// OneVsRest is a multiclass classifier of K binary models.
type OneVsRest struct {
	NumClasses int
	Models     []*Model

	// Lazily built column-blocked (feature-major) scoring kernel:
	// packed[j*K+c] = Models[c].W[j], so scoring all K classes is one
	// pass over a row's nonzeros with K contiguous multiply-adds per
	// nonzero instead of K separate gathers. Unexported fields are
	// invisible to gob, so persisted bundles are unchanged.
	packOnce   sync.Once
	packed     []float64
	packedBias []float64
	packedDim  int
	packOK     bool

	// Float32 rung of the precision ladder (quant.go), built lazily from
	// the float64 block so requesting it never perturbs the exact kernel.
	pack32Once sync.Once
	packedF32  []float32
}

// TrainOVR trains one binary model per class with the remaining classes
// as negatives (the paper's Eq. 6 initialization). The per-example
// Q_ii = ‖x_i‖²+1 diagonal is computed once and shared read-only by all
// K problems — it depends only on the features, not the labels — and
// each worker draws its order/alpha/cost/label buffers from a pool, so
// the 23 one-vs-rest problems stop redoing 23× the norm work and slice
// allocations. Classes train in parallel over shared read-only data.
func TrainOVR(xs []*sparse.Vector, labels []int, numClasses, dim int, opt Options) *OneVsRest {
	o := &OneVsRest{NumClasses: numClasses, Models: make([]*Model, numClasses)}
	sharedQii := make([]float64, len(xs))
	for i, x := range xs {
		nrm := x.Norm2()
		sharedQii[i] = nrm*nrm + 1
	}
	parallel.ForPool("svm-ovr", numClasses, func(k int) {
		sc := scratchPool.Get().(*Scratch)
		defer scratchPool.Put(sc)
		sc.grow(len(labels))
		ys := sc.ys
		for i, l := range labels {
			if l == k {
				ys[i] = 1
			} else {
				ys[i] = -1
			}
		}
		kopt := opt
		kopt.Seed = opt.Seed + uint64(k)*7919
		o.Models[k] = trainInto(xs, ys, sharedQii, dim, kopt, sc)
	})
	return o
}

// TrainOneVsRest is the historical name for TrainOVR.
func TrainOneVsRest(xs []*sparse.Vector, labels []int, numClasses, dim int, opt Options) *OneVsRest {
	return TrainOVR(xs, labels, numClasses, dim, opt)
}

// pack builds the column-blocked weight matrix. All models must share
// one weight length for the blocked layout to apply; heterogeneous
// models (hand-assembled, partial) fall back to per-model scoring.
func (o *OneVsRest) pack() {
	if len(o.Models) == 0 {
		return
	}
	dim := -1
	for _, m := range o.Models {
		if m == nil {
			return
		}
		if dim == -1 {
			dim = len(m.W)
		} else if len(m.W) != dim {
			return
		}
	}
	K := len(o.Models)
	packed := make([]float64, dim*K)
	bias := make([]float64, K)
	for c, m := range o.Models {
		bias[c] = m.Bias
		for j, w := range m.W {
			packed[j*K+c] = w
		}
	}
	o.packed, o.packedBias, o.packedDim, o.packOK = packed, bias, dim, true
}

// ScoresInto writes the decision values of all class models for x into
// out (length NumClasses) and returns it. The packed kernel walks x's
// nonzeros once in ascending-index order and accumulates K classes per
// nonzero; per class this is the same addition chain — same index
// order, same w·x then +bias — as Model.Score, so values are
// bit-identical to the per-model path.
func (o *OneVsRest) ScoresInto(x *sparse.Vector, out []float64) []float64 {
	o.packOnce.Do(o.pack)
	if !o.packOK {
		for k, m := range o.Models {
			out[k] = m.Score(x)
		}
		return out
	}
	K := o.NumClasses
	for c := range out {
		out[c] = 0
	}
	val := x.Val[:len(x.Idx)]
	for k, i := range x.Idx {
		j := int(i)
		if j >= o.packedDim {
			break
		}
		xv := val[k]
		row := o.packed[j*K : j*K+K]
		for c, w := range row {
			out[c] += xv * w
		}
	}
	for c := range out {
		out[c] += o.packedBias[c]
	}
	return out
}

// Scores returns the decision values of all class models for x (the row
// of the paper's score matrix F, Eq. 9).
func (o *OneVsRest) Scores(x *sparse.Vector) []float64 {
	return o.ScoresInto(x, make([]float64, o.NumClasses))
}

// ScoreAll scores every row against all classes in parallel, returning
// one score row per input. Rows are slices of a single flat arena — one
// allocation for the whole batch instead of one per utterance.
func (o *OneVsRest) ScoreAll(xs []*sparse.Vector) [][]float64 {
	K := o.NumClasses
	flat := make([]float64, len(xs)*K)
	out := make([][]float64, len(xs))
	parallel.ForPool("score", len(xs), func(i int) {
		row := flat[i*K : (i+1)*K : (i+1)*K]
		out[i] = o.ScoresInto(xs[i], row)
	})
	return out
}

// Classify returns the argmax class.
func (o *OneVsRest) Classify(x *sparse.Vector) int {
	s := o.Scores(x)
	best := 0
	for k, v := range s {
		if v > s[best] {
			best = k
		}
	}
	return best
}

// Accuracy evaluates classification accuracy on a labeled set.
func (o *OneVsRest) Accuracy(xs []*sparse.Vector, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if o.Classify(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

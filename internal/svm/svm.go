// Package svm implements the linear support vector machine behind the
// paper's vector space models: an L2-regularized hinge-loss SVM trained by
// dual coordinate descent — the same solver family as LIBLINEAR, which the
// paper uses — over sparse TFLLR-scaled supervectors, with a one-versus-
// rest multiclass wrapper (the paper trains every language model
// one-versus-rest, Section 2.3).
//
// The dual problem is min_α ½αᵀQα − eᵀα subject to 0 ≤ α_i ≤ C with
// Q_ij = y_i·y_j·x_iᵀx_j. The solver sweeps coordinates in random order,
// maintaining the primal vector w = Σ α_i·y_i·x_i so each update is O(nnz).
// A bias term is included by augmenting every example with a constant
// feature (LIBLINEAR's -B 1).
package svm

import (
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// Training-work counters (obs run reports): models trained, solver passes
// actually executed (vs the MaxIters budget), and per-model train latency.
var (
	obsModels = obs.GetCounter("svm.train.models")
	obsPasses = obs.GetCounter("svm.train.passes")
	obsTrainS = obs.GetHistogram("svm.train.seconds")
)

// Model is a trained linear decision function f(x) = w·x + b.
type Model struct {
	W    []float64
	Bias float64
}

// Score returns the signed decision value; its magnitude is the distance
// to the separating hyperplane scaled by ‖w‖, which DBA uses as its
// confidence (paper Eq. 13 rationale).
func (m *Model) Score(x *sparse.Vector) float64 {
	return x.DotDense(m.W) + m.Bias
}

// Options controls training.
type Options struct {
	// C is the soft-margin cost (LIBLINEAR default 1).
	C float64
	// MaxIters bounds the number of full passes over the data.
	MaxIters int
	// Eps is the stopping tolerance on the maximal projected gradient
	// violation within a pass.
	Eps float64
	// Seed drives the coordinate permutation.
	Seed uint64
	// PositiveWeight scales C for positive examples; one-versus-rest
	// language recognition is heavily imbalanced (1 target language vs
	// 22), so the positive class usually gets a larger cost.
	PositiveWeight float64
}

// DefaultOptions mirrors the LIBLINEAR defaults with a class-imbalance
// correction suitable for the 23-language one-vs-rest setting.
func DefaultOptions() Options {
	return Options{
		C:              1,
		MaxIters:       200,
		Eps:            0.01,
		Seed:           1,
		PositiveWeight: 1,
	}
}

// Train fits a binary SVM. ys must be ±1; dim is the feature dimension
// (indices ≥ dim are ignored).
func Train(xs []*sparse.Vector, ys []int, dim int, opt Options) *Model {
	if len(xs) != len(ys) {
		panic("svm: xs/ys length mismatch")
	}
	n := len(xs)
	m := &Model{W: make([]float64, dim)}
	if n == 0 {
		return m
	}
	if opt.C <= 0 {
		opt.C = 1
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 200
	}
	if opt.PositiveWeight <= 0 {
		opt.PositiveWeight = 1
	}

	alpha := make([]float64, n)
	// Q_ii = ‖x_i‖² + 1 (bias augmentation).
	qii := make([]float64, n)
	cost := make([]float64, n)
	for i, x := range xs {
		nrm := x.Norm2()
		qii[i] = nrm*nrm + 1
		if ys[i] > 0 {
			cost[i] = opt.C * opt.PositiveWeight
		} else {
			cost[i] = opt.C
		}
	}
	r := rng.New(opt.Seed)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	t0 := time.Now()
	passes := 0
	for pass := 0; pass < opt.MaxIters; pass++ {
		passes++
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		maxViolation := 0.0
		for _, i := range order {
			yi := float64(ys[i])
			g := yi*(xs[i].DotDense(m.W)+m.Bias) - 1
			// Projected gradient for the box constraint.
			pg := g
			if alpha[i] <= 0 && g > 0 {
				pg = 0
			}
			if alpha[i] >= cost[i] && g < 0 {
				pg = 0
			}
			if v := math.Abs(pg); v > maxViolation {
				maxViolation = v
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			a := old - g/qii[i]
			if a < 0 {
				a = 0
			} else if a > cost[i] {
				a = cost[i]
			}
			alpha[i] = a
			d := (a - old) * yi
			if d != 0 {
				xs[i].AxpyDense(d, m.W)
				m.Bias += d
			}
		}
		if maxViolation < opt.Eps {
			break
		}
	}
	obsModels.Inc()
	obsPasses.Add(int64(passes))
	obsTrainS.Observe(time.Since(t0).Seconds())
	return m
}

// OneVsRest is a multiclass classifier of K binary models.
type OneVsRest struct {
	NumClasses int
	Models     []*Model
}

// TrainOneVsRest trains one binary model per class with the remaining
// classes as negatives (the paper's Eq. 6 initialization). Classes train
// in parallel — they are independent problems over shared read-only data.
func TrainOneVsRest(xs []*sparse.Vector, labels []int, numClasses, dim int, opt Options) *OneVsRest {
	o := &OneVsRest{NumClasses: numClasses, Models: make([]*Model, numClasses)}
	parallel.ForPool("svm-ovr", numClasses, func(k int) {
		ys := make([]int, len(labels))
		for i, l := range labels {
			if l == k {
				ys[i] = 1
			} else {
				ys[i] = -1
			}
		}
		kopt := opt
		kopt.Seed = opt.Seed + uint64(k)*7919
		o.Models[k] = Train(xs, ys, dim, kopt)
	})
	return o
}

// Scores returns the decision values of all class models for x (the row
// of the paper's score matrix F, Eq. 9).
func (o *OneVsRest) Scores(x *sparse.Vector) []float64 {
	out := make([]float64, o.NumClasses)
	for k, m := range o.Models {
		out[k] = m.Score(x)
	}
	return out
}

// Classify returns the argmax class.
func (o *OneVsRest) Classify(x *sparse.Vector) int {
	s := o.Scores(x)
	best := 0
	for k, v := range s {
		if v > s[best] {
			best = k
		}
	}
	return best
}

// Accuracy evaluates classification accuracy on a labeled set.
func (o *OneVsRest) Accuracy(xs []*sparse.Vector, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if o.Classify(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

package svm

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Precision selects the packed scoring kernel's weight representation.
// The ladder trades score fidelity for footprint:
//
//	Float64 — the exact kernel. Scores are bit-identical to the
//	          per-model path (the repo's referee suites pin this).
//	Float32 — weights rounded to float32, accumulation still float64.
//	          Scores agree with the float64 oracle within ~2⁻²⁴ relative
//	          per term (see TestFloat32KernelULPBound for the documented
//	          bound).
//	Int8    — symmetric per-class int8 weights with a scale/zero-point
//	          dequant epilogue (see Quantized). Scores are approximate;
//	          the guarantee that replaces bit-identity is rank
//	          preservation, enforced by the order-preservation referee.
type Precision int

const (
	Float64 Precision = iota
	Float32
	Int8
)

// String renders the precision as its flag/manifest spelling.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	case Int8:
		return "int8"
	}
	return fmt.Sprintf("precision(%d)", int(p))
}

// ParsePrecision parses the flag/manifest spelling. The empty string is
// Float64: bundles written before the precision field existed carry no
// value and must keep scoring exactly as they always did.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "float64":
		return Float64, nil
	case "float32":
		return Float32, nil
	case "int8":
		return Int8, nil
	}
	return Float64, fmt.Errorf("svm: unknown precision %q (want float64, float32, or int8)", s)
}

// pack32 builds the float32 column-blocked weight matrix, lazily and
// independently of the float64 pack so that selecting Float32 never
// perturbs the exact kernel's state.
func (o *OneVsRest) pack32() {
	o.packOnce.Do(o.pack) // reuse the homogeneity check + float64 layout
	if !o.packOK {
		return
	}
	f32 := make([]float32, len(o.packed))
	for i, w := range o.packed {
		f32[i] = float32(w)
	}
	o.packedF32 = f32
}

// ScoresAtInto writes the decision values of all class models for x into
// out (length NumClasses) at the requested precision and returns it.
// Float64 is exactly ScoresInto. Float32 uses weights rounded to float32
// with float64 accumulation — same addition chain, so the only deviation
// from the oracle is the per-weight rounding. Int8 is not served from the
// OneVsRest (the float64 weights may not even be present in a compressed
// bundle); callers hold a Quantized for that rung.
func (o *OneVsRest) ScoresAtInto(prec Precision, x *sparse.Vector, out []float64) []float64 {
	if prec != Float32 {
		return o.ScoresInto(x, out)
	}
	o.pack32Once.Do(o.pack32)
	if o.packedF32 == nil {
		return o.ScoresInto(x, out)
	}
	K := o.NumClasses
	for c := range out {
		out[c] = 0
	}
	val := x.Val[:len(x.Idx)]
	for k, i := range x.Idx {
		j := int(i)
		if j >= o.packedDim {
			break
		}
		xv := val[k]
		row := o.packedF32[j*K : j*K+K]
		for c, w := range row {
			out[c] += xv * float64(w)
		}
	}
	for c := range out {
		out[c] += o.packedBias[c]
	}
	return out
}

// PackedBytes reports the in-memory footprint of the packed scoring
// kernels built so far (float64 + float32 blocks), for the serve layer's
// model-footprint gauges.
func (o *OneVsRest) PackedBytes() int {
	return len(o.packed)*8 + len(o.packedBias)*8 + len(o.packedF32)*4
}

// Quantized is the int8 rung of the precision ladder: the column-blocked
// kernel's weights quantized symmetrically per class,
//
//	W[c][j] ≈ Scale[c] × (W8[j*K+c] − Zero[c]),
//
// stored as []byte (gob encodes byte slices at one byte per element,
// which is the entire point — float64 weights cost ~9). Quantize always
// produces Zero[c] = 0 (symmetric quantization), but the wire format
// carries the zero points so the dequant epilogue is the full
// scale/zero-point affine and decoders validate rather than assume.
//
// Unlike OneVsRest, a Quantized carries no float64 weights at all: a
// compressed bundle ships only this, and scoring dequantizes on the fly
// in the epilogue.
type Quantized struct {
	NumClasses int
	// Dim is the weight-space dimensionality (the projection rank for
	// compressed bundles).
	Dim int
	// W8 is the column-blocked int8 weight matrix, byte-encoded:
	// int8(W8[j*NumClasses+c]) is class c's quantized weight for feature j.
	W8 []byte
	// Scale[c] is class c's dequantization step (max|W[c]|/127 at
	// quantization time); Zero[c] its zero point in quantized units.
	Scale []float64
	Zero  []float64
	Bias  []float64
}

// Quantize builds the int8 form of the packed kernel. Fails on
// heterogeneous or empty model sets (nothing to pack) and on non-finite
// weights.
func (o *OneVsRest) Quantize() (*Quantized, error) {
	o.packOnce.Do(o.pack)
	if !o.packOK {
		return nil, fmt.Errorf("svm: quantize: models are heterogeneous or missing, nothing to pack")
	}
	K, dim := o.NumClasses, o.packedDim
	q := &Quantized{
		NumClasses: K,
		Dim:        dim,
		W8:         make([]byte, dim*K),
		Scale:      make([]float64, K),
		Zero:       make([]float64, K),
		Bias:       append([]float64(nil), o.packedBias...),
	}
	for c := 0; c < K; c++ {
		var maxAbs float64
		for j := 0; j < dim; j++ {
			w := o.packed[j*K+c]
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("svm: quantize: class %d weight %d is not finite", c, j)
			}
			if a := math.Abs(w); a > maxAbs {
				maxAbs = a
			}
		}
		s := maxAbs / 127
		if s == 0 {
			s = 1 // all-zero class: any scale dequantizes 0 to 0
		}
		q.Scale[c] = s
		for j := 0; j < dim; j++ {
			q.W8[j*K+c] = byte(int8(math.RoundToEven(o.packed[j*K+c] / s)))
		}
	}
	return q, nil
}

// Validate checks the invariants the scoring kernel relies on. It is the
// backstop behind untrusted gob decodes (see the persist fuzz targets):
// truncated weight blocks, NaN/Inf scales, and out-of-range zero points
// must all fail here, never panic in ScoresInto.
func (q *Quantized) Validate() error {
	if q.NumClasses <= 0 {
		return fmt.Errorf("svm: quantized kernel has %d classes", q.NumClasses)
	}
	if q.Dim <= 0 {
		return fmt.Errorf("svm: quantized kernel has dimension %d", q.Dim)
	}
	if len(q.W8) != q.Dim*q.NumClasses {
		return fmt.Errorf("svm: quantized kernel holds %d weights, want %d×%d", len(q.W8), q.Dim, q.NumClasses)
	}
	if len(q.Scale) != q.NumClasses || len(q.Zero) != q.NumClasses || len(q.Bias) != q.NumClasses {
		return fmt.Errorf("svm: quantized kernel scale/zero/bias lengths %d/%d/%d, want %d",
			len(q.Scale), len(q.Zero), len(q.Bias), q.NumClasses)
	}
	for c := 0; c < q.NumClasses; c++ {
		if s := q.Scale[c]; math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
			return fmt.Errorf("svm: quantized kernel class %d has scale %v", c, s)
		}
		if z := q.Zero[c]; math.IsNaN(z) || math.Abs(z) > 127 {
			return fmt.Errorf("svm: quantized kernel class %d zero point %v overflows int8", c, z)
		}
		if b := q.Bias[c]; math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("svm: quantized kernel class %d has bias %v", c, b)
		}
	}
	return nil
}

// ScoresInto writes the dequantized decision values for x into out
// (length NumClasses) and returns it. The loop accumulates raw int8
// products in float64 and applies the affine dequantization once per
// class:
//
//	score[c] = Scale[c]×(Σⱼ xⱼ·q[c][j] − Zero[c]·Σⱼ xⱼ) + Bias[c]
//
// which equals scoring against the dequantized weights exactly up to
// float64 reassociation of the scale multiply. Allocation-free when out
// is provided (gated by BenchmarkQuantizedScoresIntoAllocs).
func (q *Quantized) ScoresInto(x *sparse.Vector, out []float64) []float64 {
	K := q.NumClasses
	for c := range out {
		out[c] = 0
	}
	var sumX float64
	val := x.Val[:len(x.Idx)]
	for k, i := range x.Idx {
		j := int(i)
		if j >= q.Dim {
			break
		}
		xv := val[k]
		sumX += xv
		row := q.W8[j*K : j*K+K]
		for c, w := range row {
			out[c] += xv * float64(int8(w))
		}
	}
	for c := range out {
		out[c] = q.Scale[c]*(out[c]-q.Zero[c]*sumX) + q.Bias[c]
	}
	return out
}

// Scores returns the dequantized decision values for x.
func (q *Quantized) Scores(x *sparse.Vector) []float64 {
	return q.ScoresInto(x, make([]float64, q.NumClasses))
}

// Dequantize reconstructs the float64 one-vs-rest models the kernel
// approximates — the oracle the order-preservation referee scores
// against.
func (q *Quantized) Dequantize() *OneVsRest {
	o := &OneVsRest{NumClasses: q.NumClasses, Models: make([]*Model, q.NumClasses)}
	for c := 0; c < q.NumClasses; c++ {
		w := make([]float64, q.Dim)
		for j := 0; j < q.Dim; j++ {
			w[j] = q.Scale[c] * (float64(int8(q.W8[j*q.NumClasses+c])) - q.Zero[c])
		}
		o.Models[c] = &Model{W: w, Bias: q.Bias[c]}
	}
	return o
}

// Bytes reports the in-memory footprint of the quantized kernel.
func (q *Quantized) Bytes() int {
	return len(q.W8) + 8*(len(q.Scale)+len(q.Zero)+len(q.Bias))
}

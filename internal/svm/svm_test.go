package svm

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// separableData generates ±1-labeled points linearly separable along a
// random direction, in sparse form.
func separableData(r *rng.RNG, n, dim int, margin float64) (xs []*sparse.Vector, ys []int) {
	w := make([]float64, dim)
	for i := range w {
		w[i] = r.Norm()
	}
	nrm := 0.0
	for _, v := range w {
		nrm += v * v
	}
	nrm = math.Sqrt(nrm)
	for i := range w {
		w[i] /= nrm
	}
	for len(xs) < n {
		x := make([]float64, dim)
		for j := range x {
			if r.Bernoulli(0.5) {
				x[j] = r.Norm()
			}
		}
		var dot float64
		for j := range x {
			dot += w[j] * x[j]
		}
		if math.Abs(dot) < margin {
			continue
		}
		xs = append(xs, sparse.FromDense(x))
		if dot > 0 {
			ys = append(ys, 1)
		} else {
			ys = append(ys, -1)
		}
	}
	return xs, ys
}

func TestTrainSeparable(t *testing.T) {
	r := rng.New(1)
	xs, ys := separableData(r, 300, 20, 0.5)
	m := Train(xs, ys, 20, DefaultOptions())
	errs := 0
	for i, x := range xs {
		if (m.Score(x) > 0) != (ys[i] > 0) {
			errs++
		}
	}
	if errs > 3 {
		t.Fatalf("%d training errors on separable data", errs)
	}
}

func TestTrainGeneralizes(t *testing.T) {
	r := rng.New(2)
	// Same generator for train and test.
	gen := func(seed uint64) ([]*sparse.Vector, []int) {
		rr := rng.New(seed)
		var xs []*sparse.Vector
		var ys []int
		for i := 0; i < 300; i++ {
			x := make([]float64, 10)
			y := 1
			if rr.Bernoulli(0.5) {
				y = -1
			}
			for j := range x {
				x[j] = rr.Norm()
			}
			x[0] += float64(y) * 2 // informative dimension
			xs = append(xs, sparse.FromDense(x))
			ys = append(ys, y)
		}
		return xs, ys
	}
	_ = r
	trainX, trainY := gen(10)
	testX, testY := gen(20)
	m := Train(trainX, trainY, 10, DefaultOptions())
	errs := 0
	for i, x := range testX {
		if (m.Score(x) > 0) != (testY[i] > 0) {
			errs++
		}
	}
	if rate := float64(errs) / float64(len(testX)); rate > 0.1 {
		t.Fatalf("test error rate %v", rate)
	}
}

func TestScoreSignConvention(t *testing.T) {
	// Positive class on +x axis: score of far-positive point must be > 0.
	xs := []*sparse.Vector{
		sparse.FromDense([]float64{2}),
		sparse.FromDense([]float64{-2}),
		sparse.FromDense([]float64{3}),
		sparse.FromDense([]float64{-3}),
	}
	ys := []int{1, -1, 1, -1}
	m := Train(xs, ys, 1, DefaultOptions())
	if m.Score(sparse.FromDense([]float64{5})) <= 0 {
		t.Fatal("positive point scored negative")
	}
	if m.Score(sparse.FromDense([]float64{-5})) >= 0 {
		t.Fatal("negative point scored positive")
	}
}

func TestMarginProperty(t *testing.T) {
	// Support vectors end near |score| ≈ 1 for separable data with large C.
	xs := []*sparse.Vector{
		sparse.FromDense([]float64{1}),
		sparse.FromDense([]float64{-1}),
	}
	ys := []int{1, -1}
	opt := DefaultOptions()
	opt.C = 100
	opt.MaxIters = 2000
	opt.Eps = 1e-6
	m := Train(xs, ys, 1, opt)
	if math.Abs(m.Score(xs[0])-1) > 0.05 || math.Abs(m.Score(xs[1])+1) > 0.05 {
		t.Fatalf("margins: %v, %v", m.Score(xs[0]), m.Score(xs[1]))
	}
}

func TestPositiveWeightShiftsBoundary(t *testing.T) {
	// Imbalanced data: 1 positive vs many negatives near it. A higher
	// positive weight should increase the positive example's score.
	var xs []*sparse.Vector
	var ys []int
	xs = append(xs, sparse.FromDense([]float64{0.5}))
	ys = append(ys, 1)
	r := rng.New(3)
	for i := 0; i < 30; i++ {
		xs = append(xs, sparse.FromDense([]float64{-0.5 + 0.1*r.Norm()}))
		ys = append(ys, -1)
	}
	optLow := DefaultOptions()
	optLow.PositiveWeight = 1
	optHigh := DefaultOptions()
	optHigh.PositiveWeight = 20
	mLow := Train(xs, ys, 1, optLow)
	mHigh := Train(xs, ys, 1, optHigh)
	if mHigh.Score(xs[0]) <= mLow.Score(xs[0]) {
		t.Fatalf("positive weight had no effect: %v vs %v", mHigh.Score(xs[0]), mLow.Score(xs[0]))
	}
}

func TestOneVsRest(t *testing.T) {
	// 4 classes at distinct corners in 2-D.
	r := rng.New(4)
	var xs []*sparse.Vector
	var labels []int
	centers := [][]float64{{3, 3}, {-3, 3}, {-3, -3}, {3, -3}}
	for i := 0; i < 400; i++ {
		c := i % 4
		xs = append(xs, sparse.FromDense([]float64{
			centers[c][0] + 0.5*r.Norm(),
			centers[c][1] + 0.5*r.Norm(),
		}))
		labels = append(labels, c)
	}
	o := TrainOneVsRest(xs, labels, 4, 2, DefaultOptions())
	if acc := o.Accuracy(xs, labels); acc < 0.98 {
		t.Fatalf("OvR accuracy = %v", acc)
	}
	s := o.Scores(xs[0])
	if len(s) != 4 {
		t.Fatalf("scores len = %d", len(s))
	}
	// The true class should be the unique positive score for a clean point.
	if s[0] <= 0 {
		t.Fatalf("target class score %v not positive", s[0])
	}
	for k := 1; k < 4; k++ {
		if s[k] >= s[0] {
			t.Fatalf("non-target score %v >= target %v", s[k], s[0])
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	r := rng.New(5)
	xs, ys := separableData(r, 100, 8, 0.3)
	a := Train(xs, ys, 8, DefaultOptions())
	b := Train(xs, ys, 8, DefaultOptions())
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("training not deterministic")
		}
	}
	if a.Bias != b.Bias {
		t.Fatal("bias not deterministic")
	}
}

func TestEmptyTraining(t *testing.T) {
	m := Train(nil, nil, 5, DefaultOptions())
	if m.Score(sparse.FromDense([]float64{1, 1, 1, 1, 1})) != 0 {
		t.Fatal("empty model should score 0")
	}
}

func TestSparseHighDimensional(t *testing.T) {
	// Supervector-like regime: dim ≫ n, few non-zeros.
	r := rng.New(6)
	dim := 5000
	var xs []*sparse.Vector
	var ys []int
	for i := 0; i < 100; i++ {
		m := map[int32]float64{}
		y := 1
		if i%2 == 1 {
			y = -1
		}
		// Class-informative index blocks.
		base := int32(0)
		if y < 0 {
			base = 2500
		}
		for j := 0; j < 20; j++ {
			m[base+int32(r.Intn(2500))] = r.Float64()
		}
		xs = append(xs, sparse.FromMap(m))
		ys = append(ys, y)
	}
	mdl := Train(xs, ys, dim, DefaultOptions())
	errs := 0
	for i, x := range xs {
		if (mdl.Score(x) > 0) != (ys[i] > 0) {
			errs++
		}
	}
	if errs > 2 {
		t.Fatalf("%d errors in sparse regime", errs)
	}
}

package nnet

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// blobs generates a k-class Gaussian blob dataset in 2-D.
func blobs(r *rng.RNG, n, k int) (x [][]float64, y []int) {
	for i := 0; i < n; i++ {
		c := i % k
		angle := 2 * math.Pi * float64(c) / float64(k)
		x = append(x, []float64{
			3*math.Cos(angle) + 0.5*r.Norm(),
			3*math.Sin(angle) + 0.5*r.Norm(),
		})
		y = append(y, c)
	}
	return x, y
}

func TestPredictIsDistribution(t *testing.T) {
	r := rng.New(1)
	m := New(r, 4, 8, 3)
	p := m.Predict([]float64{1, -1, 0.5, 2})
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability %v out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sums to %v", sum)
	}
}

func TestTrainLearnsBlobs(t *testing.T) {
	r := rng.New(2)
	x, y := blobs(r, 600, 3)
	devX, devY := blobs(r, 200, 3)
	m := New(r, 2, 16, 3)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	acc := m.Train(r, x, y, devX, devY, cfg)
	if acc < 0.95 {
		t.Fatalf("dev accuracy %v < 0.95", acc)
	}
}

func TestDeepNetworkLearnsXOR(t *testing.T) {
	// XOR is not linearly separable; requires the hidden layer to work.
	r := rng.New(3)
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		a, b := r.Intn(2), r.Intn(2)
		x = append(x, []float64{float64(a) + 0.1*r.Norm(), float64(b) + 0.1*r.Norm()})
		y = append(y, a^b)
	}
	m := New(r, 2, 8, 8, 2)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 120
	cfg.LearnRate = 0.5
	acc := m.Train(r, x, y, nil, nil, cfg)
	if acc < 0.95 {
		t.Fatalf("XOR accuracy %v", acc)
	}
}

func TestTrainReducesCrossEntropy(t *testing.T) {
	r := rng.New(4)
	x, y := blobs(r, 300, 4)
	m := New(r, 2, 12, 4)
	before := m.CrossEntropy(x, y)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	m.Train(r, x, y, nil, nil, cfg)
	after := m.CrossEntropy(x, y)
	if after >= before {
		t.Fatalf("cross entropy did not decrease: %v -> %v", before, after)
	}
}

func TestLogPredictFinite(t *testing.T) {
	r := rng.New(5)
	m := New(r, 3, 5, 4)
	lp := m.LogPredict([]float64{100, -100, 0})
	for i, v := range lp {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("log posterior %d = %v", i, v)
		}
	}
}

func TestClassifyAgreesWithPredict(t *testing.T) {
	r := rng.New(6)
	m := New(r, 2, 6, 5)
	for i := 0; i < 20; i++ {
		x := []float64{r.Norm(), r.Norm()}
		p := m.Predict(x)
		best := 0
		for j, v := range p {
			if v > p[best] {
				best = j
			}
		}
		if m.Classify(x) != best {
			t.Fatal("Classify disagrees with Predict argmax")
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	mk := func() *MLP {
		r := rng.New(7)
		x, y := blobs(r, 200, 3)
		m := New(r, 2, 8, 3)
		cfg := DefaultTrainConfig()
		cfg.Epochs = 5
		m.Train(r, x, y, nil, nil, cfg)
		return m
	}
	a, b := mk(), mk()
	for l := range a.W {
		for i := range a.W[l] {
			if a.W[l][i] != b.W[l][i] {
				t.Fatal("training not deterministic")
			}
		}
	}
}

func TestPretrainImprovesInit(t *testing.T) {
	// Pre-training should not break the network and should produce finite
	// weights; on blobs it should keep (or improve) trainability.
	r := rng.New(8)
	x, y := blobs(r, 300, 3)
	m := New(r, 2, 10, 10, 3)
	m.Pretrain(r, x, 3, 0.01, 0.1)
	for l := range m.W {
		for _, w := range m.W[l] {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatal("pretraining produced non-finite weight")
			}
		}
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	acc := m.Train(r, x, y, nil, nil, cfg)
	if acc < 0.9 {
		t.Fatalf("accuracy after pretraining+training = %v", acc)
	}
}

func TestEmptyTrainSet(t *testing.T) {
	r := rng.New(9)
	m := New(r, 2, 4, 2)
	if acc := m.Train(r, nil, nil, nil, nil, DefaultTrainConfig()); acc != 0 {
		t.Fatalf("Train on empty set = %v", acc)
	}
}

func TestStringAndShape(t *testing.T) {
	r := rng.New(10)
	m := New(r, 3, 7, 2)
	if m.String() != "MLP[3 7 2]" {
		t.Fatalf("String = %q", m.String())
	}
	if m.NumLayers() != 2 {
		t.Fatalf("NumLayers = %d", m.NumLayers())
	}
	if len(m.W[0]) != 21 || len(m.W[1]) != 14 {
		t.Fatal("weight shapes wrong")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a single layer")
		}
	}()
	New(rng.New(1), 5)
}

// TestBackpropMatchesNumericGradient is the canonical backprop check: the
// analytic gradient of the cross-entropy loss must match centered finite
// differences on every weight and bias of a small network.
func TestBackpropMatchesNumericGradient(t *testing.T) {
	r := rng.New(20)
	m := New(r, 3, 4, 3)
	x := []float64{0.5, -1.2, 0.8}
	label := 2

	// Analytic gradients via one backward pass.
	acts := m.newActs()
	deltas := make([][]float64, len(m.Sizes))
	for i, s := range m.Sizes {
		deltas[i] = make([]float64, s)
	}
	gW := make([][]float64, len(m.W))
	gB := make([][]float64, len(m.B))
	for l := range m.W {
		gW[l] = make([]float64, len(m.W[l]))
		gB[l] = make([]float64, len(m.B[l]))
	}
	m.forward(x, acts)
	m.backward(x, label, acts, deltas, gW, gB)

	loss := func() float64 {
		p := m.Predict(x)
		return -math.Log(p[label])
	}
	const eps = 1e-6
	checkGrad := func(param *float64, analytic float64, what string) {
		orig := *param
		*param = orig + eps
		up := loss()
		*param = orig - eps
		down := loss()
		*param = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-analytic) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("%s: analytic %v vs numeric %v", what, analytic, numeric)
		}
	}
	for l := range m.W {
		for i := range m.W[l] {
			checkGrad(&m.W[l][i], gW[l][i], "weight")
		}
		for i := range m.B[l] {
			checkGrad(&m.B[l][i], gB[l][i], "bias")
		}
	}
}

// Package nnet implements the feed-forward networks behind the hybrid
// front-ends: the shallow ANN of the BUT-style TRAPs ANN-HMM recognizers
// and the deeper DNN of the Tsinghua DNN-HMM recognizer. Networks have
// sigmoid hidden layers and a softmax output trained with cross-entropy
// via mini-batch SGD with momentum; the learning-rate schedule follows the
// paper's "halve when dev frame accuracy decreases" rule ("newbob").
package nnet

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// MLP is a feed-forward network with sigmoid hidden layers and a softmax
// output layer.
type MLP struct {
	// Sizes is the layer widths: input, hidden..., output.
	Sizes []int
	// W[l] is a Sizes[l+1]×Sizes[l] weight matrix (row-major); B[l] the
	// biases of layer l+1.
	W [][]float64
	B [][]float64
	// Momentum buffers.
	vW [][]float64
	vB [][]float64
}

// New builds an MLP with the given layer sizes; weights are initialized
// with the scaled uniform scheme (±√(6/(fanIn+fanOut))).
func New(r *rng.RNG, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nnet: need at least input and output layers")
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		limit := math.Sqrt(6.0 / float64(in+out))
		for i := range w {
			w[i] = (2*r.Float64() - 1) * limit
		}
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float64, out))
		m.vW = append(m.vW, make([]float64, in*out))
		m.vB = append(m.vB, make([]float64, out))
	}
	return m
}

// NumLayers returns the count of weight layers.
func (m *MLP) NumLayers() int { return len(m.W) }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// forward computes all layer activations; acts[0] is the input, the last
// entry is the softmax output.
func (m *MLP) forward(x []float64, acts [][]float64) {
	copy(acts[0], x)
	for l := 0; l < len(m.W); l++ {
		in, out := m.Sizes[l], m.Sizes[l+1]
		prev, cur := acts[l], acts[l+1]
		w, b := m.W[l], m.B[l]
		for j := 0; j < out; j++ {
			s := b[j]
			row := w[j*in : (j+1)*in]
			for i, v := range prev {
				s += row[i] * v
			}
			cur[j] = s
		}
		if l < len(m.W)-1 {
			for j := range cur {
				cur[j] = sigmoid(cur[j])
			}
		} else {
			softmaxInPlace(cur)
		}
	}
}

func softmaxInPlace(z []float64) {
	maxv := math.Inf(-1)
	for _, v := range z {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for j, v := range z {
		z[j] = math.Exp(v - maxv)
		sum += z[j]
	}
	for j := range z {
		z[j] /= sum
	}
}

// newActs allocates activation buffers for one example.
func (m *MLP) newActs() [][]float64 {
	acts := make([][]float64, len(m.Sizes))
	for i, s := range m.Sizes {
		acts[i] = make([]float64, s)
	}
	return acts
}

// Predict returns the softmax output probabilities for x.
func (m *MLP) Predict(x []float64) []float64 {
	acts := m.newActs()
	m.forward(x, acts)
	out := make([]float64, m.Sizes[len(m.Sizes)-1])
	copy(out, acts[len(acts)-1])
	return out
}

// LogPredict returns log posteriors (floored to avoid −Inf).
func (m *MLP) LogPredict(x []float64) []float64 {
	p := m.Predict(x)
	for i := range p {
		if p[i] < 1e-30 {
			p[i] = 1e-30
		}
		p[i] = math.Log(p[i])
	}
	return p
}

// Classify returns the argmax class for x.
func (m *MLP) Classify(x []float64) int {
	p := m.Predict(x)
	best := 0
	for i, v := range p {
		if v > p[best] {
			best = i
		}
	}
	return best
}

// TrainConfig controls SGD.
type TrainConfig struct {
	LearnRate    float64 // initial rate (paper: 0.2 at fine-tuning)
	Momentum     float64
	BatchSize    int
	Epochs       int
	HalveOnDecay bool // halve rate when dev accuracy decreases (paper rule)
	L2           float64
}

// DefaultTrainConfig mirrors the paper's fine-tuning setup at toy scale.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		LearnRate:    0.2,
		Momentum:     0.5,
		BatchSize:    32,
		Epochs:       10,
		HalveOnDecay: true,
	}
}

// Train runs mini-batch SGD with cross-entropy loss. dev may be nil; when
// present and HalveOnDecay is set, the learning rate halves whenever dev
// frame accuracy drops between epochs (the paper's schedule). Returns the
// final dev accuracy (or train accuracy if dev is nil).
func (m *MLP) Train(r *rng.RNG, x [][]float64, y []int, devX [][]float64, devY []int, cfg TrainConfig) float64 {
	if len(x) != len(y) {
		panic("nnet: x/y length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	acts := m.newActs()
	deltas := make([][]float64, len(m.Sizes))
	for i, s := range m.Sizes {
		deltas[i] = make([]float64, s)
	}
	gW := make([][]float64, len(m.W))
	gB := make([][]float64, len(m.B))
	for l := range m.W {
		gW[l] = make([]float64, len(m.W[l]))
		gB[l] = make([]float64, len(m.B[l]))
	}

	rate := cfg.LearnRate
	lastDevAcc := -1.0
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for l := range gW {
				zero(gW[l])
				zero(gB[l])
			}
			for _, idx := range order[start:end] {
				m.forward(x[idx], acts)
				m.backward(x[idx], y[idx], acts, deltas, gW, gB)
			}
			scale := 1 / float64(end-start)
			for l := range m.W {
				vw, w, gw := m.vW[l], m.W[l], gW[l]
				for i := range w {
					vw[i] = cfg.Momentum*vw[i] - rate*(gw[i]*scale+cfg.L2*w[i])
					w[i] += vw[i]
				}
				vb, b, gb := m.vB[l], m.B[l], gB[l]
				for i := range b {
					vb[i] = cfg.Momentum*vb[i] - rate*gb[i]*scale
					b[i] += vb[i]
				}
			}
		}
		if devX != nil && cfg.HalveOnDecay {
			acc := m.Accuracy(devX, devY)
			if lastDevAcc >= 0 && acc < lastDevAcc {
				rate /= 2
			}
			lastDevAcc = acc
		}
	}
	if devX != nil {
		return m.Accuracy(devX, devY)
	}
	return m.Accuracy(x, y)
}

// backward accumulates gradients for one example into gW/gB. acts must
// hold the forward pass of x.
func (m *MLP) backward(x []float64, label int, acts, deltas [][]float64, gW, gB [][]float64) {
	lout := len(m.Sizes) - 1
	out := acts[lout]
	d := deltas[lout]
	// Softmax + cross-entropy gradient: p − onehot.
	for j := range d {
		d[j] = out[j]
		if j == label {
			d[j] -= 1
		}
	}
	for l := len(m.W) - 1; l >= 0; l-- {
		in := m.Sizes[l]
		prev := acts[l]
		dcur := deltas[l+1]
		gw, gb := gW[l], gB[l]
		for j, dj := range dcur {
			if dj == 0 {
				continue
			}
			row := gw[j*in : (j+1)*in]
			for i, v := range prev {
				row[i] += dj * v
			}
			gb[j] += dj
		}
		if l > 0 {
			dprev := deltas[l]
			w := m.W[l]
			for i := 0; i < in; i++ {
				var s float64
				for j, dj := range dcur {
					s += w[j*in+i] * dj
				}
				// Sigmoid derivative.
				a := prev[i]
				dprev[i] = s * a * (1 - a)
			}
		}
	}
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Accuracy returns the fraction of examples classified correctly.
func (m *MLP) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i := range x {
		if m.Classify(x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// CrossEntropy returns the mean cross-entropy loss over the dataset.
func (m *MLP) CrossEntropy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	var loss float64
	for i := range x {
		p := m.Predict(x[i])
		v := p[y[i]]
		if v < 1e-30 {
			v = 1e-30
		}
		loss -= math.Log(v)
	}
	return loss / float64(len(x))
}

// Pretrain performs the greedy layer-wise pre-training pass the paper
// applies before fine-tuning (its DBN pre-training), approximated as
// denoising-autoencoder pre-training per hidden layer: each hidden layer is
// trained to reconstruct its (noise-corrupted) input through a transient
// decoder. Only hidden layers are pre-trained; the softmax layer is left
// at its random initialization for fine-tuning.
func (m *MLP) Pretrain(r *rng.RNG, x [][]float64, epochs int, rate, noiseStd float64) {
	if len(x) == 0 {
		return
	}
	// Current representation of the data as we move up the stack.
	rep := make([][]float64, len(x))
	for i := range x {
		rep[i] = append([]float64(nil), x[i]...)
	}
	for l := 0; l < len(m.W)-1; l++ {
		in, out := m.Sizes[l], m.Sizes[l+1]
		// Transient decoder.
		dec := make([]float64, in*out)
		decB := make([]float64, in)
		limit := math.Sqrt(6.0 / float64(in+out))
		for i := range dec {
			dec[i] = (2*r.Float64() - 1) * limit
		}
		h := make([]float64, out)
		recon := make([]float64, in)
		dH := make([]float64, out)
		for e := 0; e < epochs; e++ {
			for _, v := range rep {
				// Corrupt.
				noisy := make([]float64, in)
				for i := range noisy {
					noisy[i] = v[i] + noiseStd*r.Norm()
				}
				// Encode.
				w, b := m.W[l], m.B[l]
				for j := 0; j < out; j++ {
					s := b[j]
					row := w[j*in : (j+1)*in]
					for i, vi := range noisy {
						s += row[i] * vi
					}
					h[j] = sigmoid(s)
				}
				// Decode (linear).
				for i := 0; i < in; i++ {
					s := decB[i]
					for j := 0; j < out; j++ {
						s += dec[i*out+j] * h[j]
					}
					recon[i] = s
				}
				// Squared-error gradients.
				for j := 0; j < out; j++ {
					dH[j] = 0
				}
				for i := 0; i < in; i++ {
					diff := recon[i] - v[i]
					for j := 0; j < out; j++ {
						dH[j] += diff * dec[i*out+j]
						dec[i*out+j] -= rate * diff * h[j]
					}
					decB[i] -= rate * diff
				}
				w, b = m.W[l], m.B[l]
				for j := 0; j < out; j++ {
					g := dH[j] * h[j] * (1 - h[j])
					row := w[j*in : (j+1)*in]
					for i, vi := range noisy {
						row[i] -= rate * g * vi
					}
					b[j] -= rate * g
				}
			}
		}
		// Propagate representation through the trained layer.
		next := make([][]float64, len(rep))
		for i, v := range rep {
			nh := make([]float64, out)
			w, b := m.W[l], m.B[l]
			for j := 0; j < out; j++ {
				s := b[j]
				row := w[j*in : (j+1)*in]
				for k, vk := range v {
					s += row[k] * vk
				}
				nh[j] = sigmoid(s)
			}
			next[i] = nh
		}
		rep = next
	}
}

// String describes the architecture.
func (m *MLP) String() string {
	return fmt.Sprintf("MLP%v", m.Sizes)
}

package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestEERPerfectSeparation(t *testing.T) {
	var trials []Trial
	for i := 0; i < 50; i++ {
		trials = append(trials, Trial{Score: 1 + float64(i)*0.01, Target: true})
		trials = append(trials, Trial{Score: -1 - float64(i)*0.01, Target: false})
	}
	if eer := EER(trials); eer > 1e-9 {
		t.Fatalf("EER of separable data = %v", eer)
	}
}

func TestEERRandomScoresNearHalf(t *testing.T) {
	r := rng.New(1)
	var trials []Trial
	for i := 0; i < 20000; i++ {
		trials = append(trials, Trial{Score: r.Norm(), Target: i%2 == 0})
	}
	eer := EER(trials)
	if math.Abs(eer-0.5) > 0.02 {
		t.Fatalf("EER of random scores = %v, want ≈0.5", eer)
	}
}

func TestEERKnownOverlap(t *testing.T) {
	// Targets ~ N(1,1), nontargets ~ N(-1,1): EER = Φ(-1) ≈ 0.1587.
	r := rng.New(2)
	var trials []Trial
	for i := 0; i < 50000; i++ {
		trials = append(trials, Trial{Score: r.NormMuSigma(1, 1), Target: true})
		trials = append(trials, Trial{Score: r.NormMuSigma(-1, 1), Target: false})
	}
	eer := EER(trials)
	if math.Abs(eer-0.1587) > 0.01 {
		t.Fatalf("EER = %v, want ≈0.1587", eer)
	}
}

func TestEERInvariantToMonotoneTransform(t *testing.T) {
	r := rng.New(3)
	var a, b []Trial
	for i := 0; i < 5000; i++ {
		s := r.Norm()
		target := r.Bernoulli(0.5)
		if target {
			s += 1
		}
		a = append(a, Trial{Score: s, Target: target})
		b = append(b, Trial{Score: math.Exp(s), Target: target}) // monotone
	}
	if math.Abs(EER(a)-EER(b)) > 1e-12 {
		t.Fatalf("EER not invariant: %v vs %v", EER(a), EER(b))
	}
}

func TestEERDegenerate(t *testing.T) {
	if !math.IsNaN(EER([]Trial{{Score: 1, Target: true}})) {
		t.Fatal("EER without nontargets should be NaN")
	}
	if !math.IsNaN(EER(nil)) {
		t.Fatal("EER of empty set should be NaN")
	}
}

func TestDETMonotone(t *testing.T) {
	r := rng.New(4)
	var trials []Trial
	for i := 0; i < 2000; i++ {
		s := r.Norm()
		target := r.Bernoulli(0.5)
		if target {
			s += 1.5
		}
		trials = append(trials, Trial{Score: s, Target: target})
	}
	pts := DET(trials)
	if len(pts) == 0 {
		t.Fatal("no DET points")
	}
	if pts[0].Pmiss != 1 || pts[0].Pfa != 0 {
		t.Fatalf("DET start = %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Pmiss != 0 || last.Pfa != 1 {
		t.Fatalf("DET end = %+v", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Pfa < pts[i-1].Pfa || pts[i].Pmiss > pts[i-1].Pmiss {
			t.Fatalf("DET not monotone at %d", i)
		}
	}
}

func TestDETBetterSystemDominates(t *testing.T) {
	r := rng.New(5)
	mk := func(sep float64) []Trial {
		var trials []Trial
		for i := 0; i < 5000; i++ {
			target := i%2 == 0
			s := r.Norm()
			if target {
				s += sep
			}
			trials = append(trials, Trial{Score: s, Target: target})
		}
		return trials
	}
	good := EER(mk(3))
	bad := EER(mk(1))
	if good >= bad {
		t.Fatalf("better separation gave worse EER: %v vs %v", good, bad)
	}
}

func TestProbit(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.1587: -1,
		0.8413: 1,
		0.0228: -2,
		0.9772: 2,
	}
	for p, want := range cases {
		if got := Probit(p); math.Abs(got-want) > 0.01 {
			t.Errorf("Probit(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(Probit(0), -1) || !math.IsInf(Probit(1), 1) {
		t.Error("Probit endpoints wrong")
	}
}

func TestCavgPerfectSystem(t *testing.T) {
	var trials []PairTrial
	k := 5
	for m := 0; m < k; m++ {
		for tr := 0; tr < k; tr++ {
			score := -2.0
			if m == tr {
				score = 2.0
			}
			for rep := 0; rep < 10; rep++ {
				trials = append(trials, PairTrial{Model: m, True: tr, Score: score})
			}
		}
	}
	if c := Cavg(trials, k, 0); c > 1e-12 {
		t.Fatalf("Cavg of perfect system = %v", c)
	}
}

func TestCavgAllWrong(t *testing.T) {
	var trials []PairTrial
	k := 3
	for m := 0; m < k; m++ {
		for tr := 0; tr < k; tr++ {
			score := 2.0
			if m == tr {
				score = -2.0
			}
			trials = append(trials, PairTrial{Model: m, True: tr, Score: score})
		}
	}
	// Pmiss = 1 and Pfa = 1 → cost = 0.5 + 0.5 = 1 per language.
	if c := Cavg(trials, k, 0); math.Abs(c-1) > 1e-12 {
		t.Fatalf("Cavg of inverted system = %v", c)
	}
}

func TestCavgHalfForChance(t *testing.T) {
	// Random scores around threshold: Pmiss ≈ Pfa ≈ 0.5 → Cavg ≈ 0.5.
	r := rng.New(6)
	var trials []PairTrial
	k := 4
	for m := 0; m < k; m++ {
		for tr := 0; tr < k; tr++ {
			for rep := 0; rep < 2000; rep++ {
				trials = append(trials, PairTrial{Model: m, True: tr, Score: r.Norm()})
			}
		}
	}
	if c := Cavg(trials, k, 0); math.Abs(c-0.5) > 0.03 {
		t.Fatalf("Cavg of chance system = %v", c)
	}
}

func TestMinCavgNotWorseThanZeroThreshold(t *testing.T) {
	r := rng.New(7)
	var trials []PairTrial
	k := 3
	for m := 0; m < k; m++ {
		for tr := 0; tr < k; tr++ {
			for rep := 0; rep < 200; rep++ {
				s := r.Norm() + 3 // miscalibrated: all scores shifted
				if m == tr {
					s += 2
				}
				trials = append(trials, PairTrial{Model: m, True: tr, Score: s})
			}
		}
	}
	at0 := Cavg(trials, k, 0)
	minC, th := MinCavg(trials, k)
	if minC > at0+1e-12 {
		t.Fatalf("MinCavg %v worse than Cavg@0 %v", minC, at0)
	}
	if th <= 0 {
		t.Fatalf("optimal threshold %v should be positive for shifted scores", th)
	}
}

func TestPairTrialsToDetection(t *testing.T) {
	pts := []PairTrial{
		{Model: 1, True: 1, Score: 0.5},
		{Model: 1, True: 2, Score: -0.5},
	}
	det := PairTrialsToDetection(pts)
	if !det[0].Target || det[1].Target {
		t.Fatal("target flags wrong")
	}
	if det[0].Score != 0.5 || det[1].Score != -0.5 {
		t.Fatal("scores not preserved")
	}
}

func TestCavgEmptyNaN(t *testing.T) {
	if !math.IsNaN(Cavg(nil, 3, 0)) {
		t.Fatal("Cavg of no trials should be NaN")
	}
	minC, _ := MinCavg(nil, 3)
	if !math.IsNaN(minC) {
		t.Fatal("MinCavg of no trials should be NaN")
	}
}

func TestBootstrapEER(t *testing.T) {
	r := rng.New(20)
	var trials []Trial
	for i := 0; i < 2000; i++ {
		target := i%2 == 0
		s := r.Norm()
		if target {
			s += 2
		}
		trials = append(trials, Trial{Score: s, Target: target})
	}
	point := EER(trials)
	lo, hi := BootstrapEER(trials, 200, 0.025, 0.975, 7)
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatal("bootstrap returned NaN")
	}
	if lo > point || hi < point {
		t.Fatalf("point EER %v outside bootstrap CI [%v, %v]", point, lo, hi)
	}
	if hi-lo <= 0 || hi-lo > 0.2 {
		t.Fatalf("implausible CI width %v", hi-lo)
	}
	// Deterministic.
	lo2, hi2 := BootstrapEER(trials, 200, 0.025, 0.975, 7)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic")
	}
	if l, h := BootstrapEER(nil, 100, 0.025, 0.975, 1); !math.IsNaN(l) || !math.IsNaN(h) {
		t.Fatal("empty input should give NaN CI")
	}
}

func TestPairwiseEER(t *testing.T) {
	// 3 languages; language 2 is confusable with language 0 but not 1.
	r := rng.New(21)
	var trials []PairTrial
	for i := 0; i < 3000; i++ {
		truth := i % 3
		for model := 0; model < 3; model++ {
			var s float64
			switch {
			case model == truth:
				s = 2 + r.Norm()
			case (model == 0 && truth == 2) || (model == 2 && truth == 0):
				s = 1.5 + r.Norm() // confusable pair
			default:
				s = -2 + r.Norm()
			}
			trials = append(trials, PairTrial{Model: model, True: truth, Score: s})
		}
	}
	m := PairwiseEER(trials, 3)
	if !math.IsNaN(m[0][0]) {
		t.Fatal("diagonal should be NaN")
	}
	if m[0][2] < m[0][1]+0.1 {
		t.Fatalf("confusable pair EER %v not above easy pair %v", m[0][2], m[0][1])
	}
	if m[2][0] < m[2][1]+0.1 {
		t.Fatalf("confusable pair EER %v not above easy pair %v", m[2][0], m[2][1])
	}
}

package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

// ExampleEER computes the equal error rate of a small trial set.
func ExampleEER() {
	trials := []metrics.Trial{
		{Score: 2.0, Target: true},
		{Score: 1.0, Target: true},
		{Score: 0.5, Target: false},
		{Score: 1.5, Target: false}, // one confusable non-target
		{Score: 0.8, Target: true},  // one confusable target
		{Score: -1.0, Target: false},
	}
	fmt.Printf("EER = %.1f%%\n", metrics.EER(trials)*100)
	// Output:
	// EER = 33.3%
}

// ExampleCavg evaluates the NIST LRE 2009 average cost of hard decisions
// at threshold 0.
func ExampleCavg() {
	trials := []metrics.PairTrial{
		{Model: 0, True: 0, Score: 1.0},  // hit
		{Model: 1, True: 0, Score: -1.0}, // correct rejection
		{Model: 0, True: 1, Score: 0.5},  // false alarm
		{Model: 1, True: 1, Score: -0.5}, // miss
	}
	fmt.Printf("Cavg = %.3f\n", metrics.Cavg(trials, 2, 0))
	// Output:
	// Cavg = 0.500
}

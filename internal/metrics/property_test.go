package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomTrials(r *rng.RNG, n int, sep float64) []Trial {
	out := make([]Trial, n)
	for i := range out {
		target := r.Bernoulli(0.3)
		s := r.Norm()
		if target {
			s += sep
		}
		out[i] = Trial{Score: s, Target: target}
	}
	return out
}

func TestPropertyEERInvariantToShiftAndScale(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint16, shiftRaw int8, scaleRaw uint8) bool {
		rr := r.Split(uint64(seed))
		trials := randomTrials(rr, 200, 1)
		shift := float64(shiftRaw)
		scale := float64(scaleRaw)/64 + 0.1 // positive
		shifted := make([]Trial, len(trials))
		for i, tr := range trials {
			shifted[i] = Trial{Score: tr.Score*scale + shift, Target: tr.Target}
		}
		a, b := EER(trials), EER(shifted)
		if math.IsNaN(a) {
			return math.IsNaN(b)
		}
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEERBounds(t *testing.T) {
	r := rng.New(2)
	f := func(seed uint16, sepRaw uint8) bool {
		rr := r.Split(uint64(seed))
		trials := randomTrials(rr, 150, float64(sepRaw)/32)
		eer := EER(trials)
		if math.IsNaN(eer) {
			return true // single-class draw
		}
		return eer >= 0 && eer <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMoreSeparationLowerEER(t *testing.T) {
	// Statistically, increasing the separation lowers EER.
	r := rng.New(3)
	wins := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		rr := r.Split(uint64(i))
		weak := EER(randomTrials(rr, 400, 0.5))
		strong := EER(randomTrials(rr, 400, 2.5))
		if strong <= weak {
			wins++
		}
	}
	if wins < trials-3 {
		t.Fatalf("stronger separation beat weaker only %d/%d times", wins, trials)
	}
}

func TestPropertyCavgBounds(t *testing.T) {
	r := rng.New(4)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		k := rr.Intn(5) + 2
		var pts []PairTrial
		for j := 0; j < 200; j++ {
			pts = append(pts, PairTrial{
				Model: rr.Intn(k),
				True:  rr.Intn(k),
				Score: rr.Norm(),
			})
		}
		c := Cavg(pts, k, 0)
		if math.IsNaN(c) {
			return true
		}
		if c < 0 || c > 1 {
			return false
		}
		minC, _ := MinCavg(pts, k)
		return minC <= c+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyThresholdAtFAConsistent(t *testing.T) {
	// Accepting at the returned threshold yields a false-alarm rate close
	// to the requested one.
	r := rng.New(5)
	f := func(seed uint16, faRaw uint8) bool {
		rr := r.Split(uint64(seed))
		trials := randomTrials(rr, 500, 1)
		fa := float64(faRaw%90+5) / 100 // 5%..94%
		th := ThresholdAtFA(trials, fa)
		if math.IsNaN(th) {
			return true
		}
		nNon, accepted := 0, 0
		for _, tr := range trials {
			if !tr.Target {
				nNon++
				if tr.Score > th {
					accepted++
				}
			}
		}
		if nNon == 0 {
			return true
		}
		got := float64(accepted) / float64(nNon)
		return math.Abs(got-fa) < 0.02+2.0/float64(nNon)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDETContainsEERPoint(t *testing.T) {
	// The DET curve passes within a step of the EER diagonal crossing.
	r := rng.New(6)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		trials := randomTrials(rr, 300, 1.5)
		eer := EER(trials)
		if math.IsNaN(eer) {
			return true
		}
		pts := DET(trials)
		bestGap := math.Inf(1)
		for _, pt := range pts {
			gap := math.Abs(pt.Pfa-eer) + math.Abs(pt.Pmiss-eer)
			if gap < bestGap {
				bestGap = gap
			}
		}
		// Step size ~ 1/min(nTar, nNon); allow a few steps.
		return bestGap < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Package metrics implements the paper's evaluation measures: equal error
// rate (EER) over detection trials, the NIST LRE 2009 average cost Cavg,
// and detection-error-tradeoff (DET) curves (Fig. 3).
//
// A detection trial pairs a system score with whether the trial's model
// matched the true language (a "target" trial). EER is the operating point
// where the miss rate equals the false-alarm rate. Cavg follows the LRE09
// evaluation plan: with C_miss = C_fa = 1 and P_target = 0.5,
//
//	Cavg = (1/K)·Σ_LT [ P_tar·P_miss(LT) + (1−P_tar)/(K−1)·Σ_LN P_fa(LT,LN) ].
package metrics

import (
	"math"
	"sort"
)

// Trial is one detection trial: a score and whether it is a target trial.
type Trial struct {
	Score  float64
	Target bool
}

// EER returns the equal error rate of the trial set, in [0, 1], using
// linear interpolation between the ROC steps where miss and false-alarm
// rates cross. It returns NaN when either class is empty.
func EER(trials []Trial) float64 {
	eer, _ := EERPoint(trials)
	return eer
}

// EERPoint returns the equal error rate together with the score threshold
// at the crossing point (scores above the threshold are accepted). The
// threshold is what per-model score calibration subtracts so that the
// Eq. 13 vote criterion operates at each model's equal-error operating
// point.
func EERPoint(trials []Trial) (eer, threshold float64) {
	nTar, nNon := 0, 0
	for _, t := range trials {
		if t.Target {
			nTar++
		} else {
			nNon++
		}
	}
	if nTar == 0 || nNon == 0 {
		return math.NaN(), 0
	}
	sorted := append([]Trial(nil), trials...)
	// Descending by score: sweeping the threshold downward accepts trials
	// one at a time.
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })

	// At the strictest threshold everything is rejected: Pmiss=1, Pfa=0.
	missed := nTar
	falseAlarms := 0
	prevMiss, prevFa := 1.0, 0.0
	prevScore := sorted[0].Score
	for _, t := range sorted {
		if t.Target {
			missed--
		} else {
			falseAlarms++
		}
		pm := float64(missed) / float64(nTar)
		pf := float64(falseAlarms) / float64(nNon)
		if pm <= pf {
			// Crossed; interpolate linearly between the previous point
			// (prevFa, prevMiss) and this one (pf, pm) to find where the
			// miss and false-alarm rates meet.
			d1 := prevMiss - prevFa // ≥ 0 before the crossing
			d2 := pf - pm           // ≥ 0 after the crossing
			th := (prevScore + t.Score) / 2
			if d1+d2 <= 0 {
				return (pm + pf) / 2, th
			}
			w := d1 / (d1 + d2)
			return prevMiss + w*(pm-prevMiss), th
		}
		prevMiss, prevFa = pm, pf
		prevScore = t.Score
	}
	return prevMiss, sorted[len(sorted)-1].Score // never crossed (degenerate)
}

// ThresholdAtFA returns the score threshold at which the false-alarm rate
// equals fa (interpolated between adjacent non-target scores). Scores
// above the threshold are accepted. It returns NaN without non-target
// trials.
func ThresholdAtFA(trials []Trial, fa float64) float64 {
	var non []float64
	for _, t := range trials {
		if !t.Target {
			non = append(non, t.Score)
		}
	}
	if len(non) == 0 {
		return math.NaN()
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(non)))
	if fa <= 0 {
		return non[0] + 1e-9
	}
	if fa >= 1 {
		return non[len(non)-1] - 1e-9
	}
	// Accepting the top ceil(fa·n) non-targets yields rate ≥ fa; place the
	// threshold between that score and the next.
	pos := fa * float64(len(non))
	k := int(pos)
	if k >= len(non)-1 {
		k = len(non) - 1
	}
	if k == 0 {
		return (non[0] + non[1]) / 2
	}
	return (non[k-1] + non[k]) / 2
}

// DETPoint is one operating point of a DET curve.
type DETPoint struct {
	Pfa, Pmiss float64
}

// DET returns the detection error tradeoff curve as (Pfa, Pmiss) pairs
// swept over all thresholds (one point per accepted trial plus endpoints).
func DET(trials []Trial) []DETPoint {
	nTar, nNon := 0, 0
	for _, t := range trials {
		if t.Target {
			nTar++
		} else {
			nNon++
		}
	}
	if nTar == 0 || nNon == 0 {
		return nil
	}
	sorted := append([]Trial(nil), trials...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	points := make([]DETPoint, 0, len(sorted)+1)
	missed, falseAlarms := nTar, 0
	points = append(points, DETPoint{Pfa: 0, Pmiss: 1})
	for _, t := range sorted {
		if t.Target {
			missed--
		} else {
			falseAlarms++
		}
		points = append(points, DETPoint{
			Pfa:   float64(falseAlarms) / float64(nNon),
			Pmiss: float64(missed) / float64(nTar),
		})
	}
	return points
}

// Probit is the standard-normal quantile function used for DET plot axes,
// computed with the Acklam rational approximation (|error| < 1.2e-9).
func Probit(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// PairTrial is a language-detection trial against a specific language
// model: Model is the hypothesized target language index, True the trial's
// actual language, Score the system's detection score.
type PairTrial struct {
	Model int
	True  int
	Score float64
}

// Cavg computes the NIST LRE 2009 average detection cost at the given
// hard-decision threshold, with C_miss = C_fa = 1 and P_target = 0.5.
// numLangs is the closed-set size K.
func Cavg(trials []PairTrial, numLangs int, threshold float64) float64 {
	const pTarget = 0.5
	missCnt := make([]int, numLangs)
	missTot := make([]int, numLangs)
	// faCnt[LT][LN], faTot[LT][LN].
	faCnt := make([][]int, numLangs)
	faTot := make([][]int, numLangs)
	for i := range faCnt {
		faCnt[i] = make([]int, numLangs)
		faTot[i] = make([]int, numLangs)
	}
	for _, t := range trials {
		if t.Model == t.True {
			missTot[t.Model]++
			if t.Score <= threshold {
				missCnt[t.Model]++
			}
		} else {
			faTot[t.Model][t.True]++
			if t.Score > threshold {
				faCnt[t.Model][t.True]++
			}
		}
	}
	var cavg float64
	langsCounted := 0
	for lt := 0; lt < numLangs; lt++ {
		if missTot[lt] == 0 {
			continue
		}
		langsCounted++
		pMiss := float64(missCnt[lt]) / float64(missTot[lt])
		var faSum float64
		faLangs := 0
		for ln := 0; ln < numLangs; ln++ {
			if ln == lt || faTot[lt][ln] == 0 {
				continue
			}
			faSum += float64(faCnt[lt][ln]) / float64(faTot[lt][ln])
			faLangs++
		}
		cost := pTarget * pMiss
		if faLangs > 0 {
			cost += (1 - pTarget) * faSum / float64(faLangs)
		}
		cavg += cost
	}
	if langsCounted == 0 {
		return math.NaN()
	}
	return cavg / float64(langsCounted)
}

// MinCavg searches all candidate thresholds (the distinct trial scores)
// for the minimal Cavg and returns it with the minimizing threshold.
func MinCavg(trials []PairTrial, numLangs int) (minCost, bestThreshold float64) {
	if len(trials) == 0 {
		return math.NaN(), 0
	}
	scores := make([]float64, 0, len(trials)+1)
	for _, t := range trials {
		scores = append(scores, t.Score)
	}
	sort.Float64s(scores)
	// Candidate thresholds: midpoints between consecutive distinct scores,
	// plus the extremes.
	cands := []float64{scores[0] - 1}
	for i := 1; i < len(scores); i++ {
		if scores[i] != scores[i-1] {
			cands = append(cands, (scores[i]+scores[i-1])/2)
		}
	}
	cands = append(cands, scores[len(scores)-1]+1)
	minCost = math.Inf(1)
	for _, th := range cands {
		if c := Cavg(trials, numLangs, th); c < minCost {
			minCost, bestThreshold = c, th
		}
	}
	return minCost, bestThreshold
}

// PairTrialsToDetection flattens language-pair trials into detection
// trials for EER/DET computation (every pair trial is a detection trial
// with target = Model==True), the standard pooled LRE scoring.
func PairTrialsToDetection(trials []PairTrial) []Trial {
	out := make([]Trial, len(trials))
	for i, t := range trials {
		out[i] = Trial{Score: t.Score, Target: t.Model == t.True}
	}
	return out
}

// BootstrapEER estimates a confidence interval for the EER by resampling
// trials with replacement. It returns the lower and upper quantiles
// (e.g. 0.025/0.975 for a 95 % interval) over numResamples bootstrap
// replicates. Deterministic given the seed.
func BootstrapEER(trials []Trial, numResamples int, lowerQ, upperQ float64, seed uint64) (lo, hi float64) {
	if len(trials) == 0 || numResamples <= 0 {
		return math.NaN(), math.NaN()
	}
	eers := make([]float64, 0, numResamples)
	resample := make([]Trial, len(trials))
	state := seed*2862933555777941757 + 3037000493
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for b := 0; b < numResamples; b++ {
		for i := range resample {
			resample[i] = trials[next()%uint64(len(trials))]
		}
		if e := EER(resample); !math.IsNaN(e) {
			eers = append(eers, e)
		}
	}
	if len(eers) == 0 {
		return math.NaN(), math.NaN()
	}
	sort.Float64s(eers)
	quantile := func(q float64) float64 {
		pos := q * float64(len(eers)-1)
		i := int(pos)
		if i >= len(eers)-1 {
			return eers[len(eers)-1]
		}
		frac := pos - float64(i)
		return eers[i]*(1-frac) + eers[i+1]*frac
	}
	return quantile(lowerQ), quantile(upperQ)
}

// PairwiseEER computes the language-pair confusion structure: entry
// [a][b] (a ≠ b) is the EER of detecting language a against impostor
// language b only — target trials are (model a, true a), non-target trials
// are (model a, true b). Diagonal entries are NaN. Confusable pairs
// (Hindi/Urdu, Bosnian/Croatian, …) surface as high off-diagonal EERs.
func PairwiseEER(trials []PairTrial, numLangs int) [][]float64 {
	out := make([][]float64, numLangs)
	byPair := make(map[[2]int][]Trial)
	for _, t := range trials {
		if t.Model == t.True {
			// Target trial for model t.Model: applies to every impostor row.
			for b := 0; b < numLangs; b++ {
				if b != t.Model {
					key := [2]int{t.Model, b}
					byPair[key] = append(byPair[key], Trial{Score: t.Score, Target: true})
				}
			}
		} else {
			key := [2]int{t.Model, t.True}
			byPair[key] = append(byPair[key], Trial{Score: t.Score, Target: false})
		}
	}
	for a := 0; a < numLangs; a++ {
		out[a] = make([]float64, numLangs)
		for b := 0; b < numLangs; b++ {
			if a == b {
				out[a][b] = math.NaN()
				continue
			}
			out[a][b] = EER(byPair[[2]int{a, b}])
		}
	}
	return out
}

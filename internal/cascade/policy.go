package cascade

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Policy is the serve-time threshold configuration (the `-cascade-margin`
// flag): one default offset plus optional per-tier overrides. The offset
// is subtracted from each tier's calibrated required margin, so larger
// values exit more traffic; −Inf escalates everything (bit-identity
// referee) and +Inf answers everything at tier 1.
type Policy struct {
	Default float64
	// PerTier overrides the default for named tiers ("30s", "10s", "3s").
	// Nil when no overrides were given.
	PerTier map[string]float64
}

// Threshold returns the offset to use for a tier.
func (p Policy) Threshold(tier string) float64 {
	if v, ok := p.PerTier[tier]; ok {
		return v
	}
	return p.Default
}

// String renders the canonical spec form, a ParsePolicy fixed point.
func (p Policy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "default=%s", formatThreshold(p.Default))
	names := make([]string, 0, len(p.PerTier))
	for name := range p.PerTier {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, ";%s=%s", name, formatThreshold(p.PerTier[name]))
	}
	return b.String()
}

func formatThreshold(v float64) string {
	// %g renders ±Inf as "+Inf"/"-Inf", which ParseFloat accepts back.
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParsePolicy parses a threshold spec. Accepted forms:
//
//	""                          default 0 (calibrated margins as-is)
//	"0.15" / "-inf" / "+Inf"    a bare offset applied to every tier
//	"default=0;30s=0.2;3s=-1"   per-tier overrides, ';' or ',' separated
//
// Values are Go floats (±Inf allowed, NaN rejected); tier names are free
//-form but must be nonempty and unique. Unknown tier names are tolerated
// at parse time — the policy is validated against a concrete model's tier
// set when serving starts.
func ParsePolicy(s string) (Policy, error) {
	p := Policy{}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	// Bare-number form.
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		if math.IsNaN(v) {
			return Policy{}, fmt.Errorf("cascade: threshold is NaN")
		}
		p.Default = v
		return p, nil
	}
	seen := make(map[string]bool)
	for _, item := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == ',' }) {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, val, ok := strings.Cut(item, "=")
		if !ok {
			return Policy{}, fmt.Errorf("cascade: %q is not name=threshold", item)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return Policy{}, fmt.Errorf("cascade: empty tier name in %q", item)
		}
		if seen[name] {
			return Policy{}, fmt.Errorf("cascade: duplicate tier %q", name)
		}
		seen[name] = true
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return Policy{}, fmt.Errorf("cascade: tier %q: bad threshold %q", name, strings.TrimSpace(val))
		}
		if math.IsNaN(v) {
			return Policy{}, fmt.Errorf("cascade: tier %q: threshold is NaN", name)
		}
		if name == "default" {
			p.Default = v
			continue
		}
		if p.PerTier == nil {
			p.PerTier = make(map[string]float64)
		}
		p.PerTier[name] = v
	}
	return p, nil
}

// ValidateFor checks a parsed policy against a concrete model: every
// per-tier override must name one of the model's tiers (catching typos
// like "30sec" before they silently fall back to the default).
func (p Policy) ValidateFor(m *Model) error {
	for name := range p.PerTier {
		found := false
		for _, t := range m.Tiers {
			if t.Name == name {
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(m.Tiers))
			for i, t := range m.Tiers {
				known[i] = t.Name
			}
			return fmt.Errorf("cascade: policy names unknown tier %q (model has %v)", name, known)
		}
	}
	return nil
}

package cascade

import (
	"math"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		def     float64
		perTier map[string]float64
	}{
		{"", 0, nil},
		{"0.25", 0.25, nil},
		{"-0.5", -0.5, nil},
		{"-inf", math.Inf(-1), nil},
		{"+Inf", math.Inf(1), nil},
		{"default=0.1", 0.1, nil},
		{"default=0.1;30s=0.3", 0.1, map[string]float64{"30s": 0.3}},
		{"30s=0.3, 3s=-inf", 0, map[string]float64{"30s": 0.3, "3s": math.Inf(-1)}},
		{" default = 1 ; 10s = 2 ", 1, map[string]float64{"10s": 2}},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if p.Default != c.def {
			t.Fatalf("%q: default %g, want %g", c.in, p.Default, c.def)
		}
		if len(p.PerTier) != len(c.perTier) {
			t.Fatalf("%q: overrides %v, want %v", c.in, p.PerTier, c.perTier)
		}
		for k, v := range c.perTier {
			if p.PerTier[k] != v {
				t.Fatalf("%q: tier %s = %g, want %g", c.in, k, p.PerTier[k], v)
			}
		}
		// Canonical form is a parse fixed point.
		p2, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("%q: reparse %q: %v", c.in, p.String(), err)
		}
		if !policiesEqual(p, p2) {
			t.Fatalf("%q: round trip %q gave %+v, want %+v", c.in, p.String(), p2, p)
		}
	}
}

func policiesEqual(a, b Policy) bool {
	if a.Default != b.Default || len(a.PerTier) != len(b.PerTier) {
		return false
	}
	for k, v := range a.PerTier {
		w, ok := b.PerTier[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

func TestParsePolicyErrors(t *testing.T) {
	for _, in := range []string{
		"nan", "NaN", "30s=nan", "abc", "=1", "30s=", "30s=x",
		"30s=1;30s=2", "default=1;default=2", "30s",
	} {
		if p, err := ParsePolicy(in); err == nil {
			t.Fatalf("%q: accepted as %+v", in, p)
		}
	}
}

func TestPolicyThresholdLookup(t *testing.T) {
	p, err := ParsePolicy("default=0.1;30s=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Threshold("30s"); got != 0.5 {
		t.Fatalf("30s = %g", got)
	}
	if got := p.Threshold("3s"); got != 0.1 {
		t.Fatalf("3s = %g", got)
	}
}

func TestPolicyValidateFor(t *testing.T) {
	m, _ := fixtureModel(t, 0)
	good, _ := ParsePolicy("default=0;long=0.2")
	if err := good.ValidateFor(m); err != nil {
		t.Fatal(err)
	}
	bad, _ := ParsePolicy("longg=0.2")
	if err := bad.ValidateFor(m); err == nil {
		t.Fatal("unknown tier accepted")
	}
}

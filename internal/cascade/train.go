package cascade

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/prlm"
)

// TrainConfig controls cascade training and calibration.
type TrainConfig struct {
	// Discount is the Kneser–Ney absolute discount of the tier-1 LMs
	// (≤ 0 means the PRLM default).
	Discount float64
	// TargetAccuracy is the per-tier accuracy bar the exiting dev subset
	// must meet at threshold offset 0; the calibrated required margin is
	// the loosest bar that still meets it (≤ 0 means
	// DefaultTargetAccuracy).
	TargetAccuracy float64
	// MarginSafety multiplies the highest dev-error margin into a
	// generalization guard band: the required margin is at least
	// MarginSafety × the worst dev mistake's margin (≤ 0 means
	// DefaultMarginSafety; 1 disables the guard).
	MarginSafety float64
}

// DefaultTargetAccuracy is the calibration accuracy bar: the dev subset
// that exits at the default threshold must be perfectly classified — the
// required margin sits just above the highest-margin dev mistake. The
// heavy path is near-perfect on the 30 s tier, so any looser bar shows up
// directly as EER cost; perfect-on-dev keeps the serve-time exit error in
// the generalization-gap regime (≲ the ROADMAP's "negligible" budget)
// while still exiting the high-margin bulk.
const DefaultTargetAccuracy = 1.0

// DefaultMarginSafety is the generalization guard over the dev-perfect
// bar. The prefix scan places the bar just above the highest-margin dev
// mistake — zero headroom, so unseen-data mistakes land just past it (the
// tail of the error-margin distribution keeps growing with sample size).
// Requiring 1.5× the worst dev error margin prices that tail in: on the
// medium reference run it moves the 30 s bar past both test-set mistakes
// that the bare dev-perfect bar let exit, at a few points of exit rate.
const DefaultMarginSafety = 1.5

// DevExample is one development utterance for calibration: its 1-best
// decode, ground truth, duration tier, and (optionally) the heavy path's
// decision scores for the same utterance, used to put tier-1 scores on
// the heavy score scale.
type DevExample struct {
	Seq   []int
	Label int
	// Tier indexes the tierNames argument of Train.
	Tier int
	// Heavy is the heavy path's per-language decision row (fused scores);
	// nil when unavailable, which disables affine calibration for the
	// example's tier.
	Heavy []float64
}

// Train fits the tier-1 PRLM on the per-language training sequences and
// calibrates the per-tier exit policy on dev: tier membership boundaries
// from the 1-best lengths, required margins from the accuracy target, and
// the affine map onto the heavy score scale from moment matching.
// tierNames is ordered longest duration first.
func Train(frontEnd string, numPhones int, trainSeqs [][][]int, tierNames []string, dev []DevExample, cfg TrainConfig) (*Model, error) {
	if frontEnd == "" {
		return nil, fmt.Errorf("cascade: no front-end name")
	}
	if len(tierNames) == 0 {
		return nil, fmt.Errorf("cascade: no tiers")
	}
	prlmCfg := prlm.DefaultConfig()
	if cfg.Discount > 0 {
		prlmCfg.Discount = cfg.Discount
	}
	target := cfg.TargetAccuracy
	if target <= 0 {
		target = DefaultTargetAccuracy
	}
	safety := cfg.MarginSafety
	if safety <= 0 {
		safety = DefaultMarginSafety
	}
	sys, err := prlm.Train(numPhones, trainSeqs, prlmCfg)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Version:   ModelVersion,
		FrontEnd:  frontEnd,
		NumPhones: numPhones,
		LM:        sys,
		Tiers:     make([]TierPolicy, len(tierNames)),
	}

	byTier := make([][]DevExample, len(tierNames))
	for _, ex := range dev {
		if ex.Tier < 0 || ex.Tier >= len(tierNames) {
			return nil, fmt.Errorf("cascade: dev example names tier %d of %d", ex.Tier, len(tierNames))
		}
		byTier[ex.Tier] = append(byTier[ex.Tier], ex)
	}
	meanLen := make([]float64, len(tierNames))
	for ti, exs := range byTier {
		if len(exs) == 0 {
			return nil, fmt.Errorf("cascade: tier %q has no dev examples", tierNames[ti])
		}
		total := 0
		for _, ex := range exs {
			total += len(ex.Seq)
		}
		meanLen[ti] = float64(total) / float64(len(exs))
	}
	for ti := range tierNames {
		t := TierPolicy{Name: tierNames[ti]}
		// Tier boundary: geometric midpoint between adjacent tiers' mean
		// 1-best lengths (the last tier catches everything shorter).
		if ti < len(tierNames)-1 {
			if meanLen[ti] <= meanLen[ti+1] {
				return nil, fmt.Errorf("cascade: tier %q mean length %.1f not above %q's %.1f",
					tierNames[ti], meanLen[ti], tierNames[ti+1], meanLen[ti+1])
			}
			t.MinPhones = int(math.Round(math.Sqrt(meanLen[ti] * meanLen[ti+1])))
		}
		t.RequiredMargin = calibrateMargin(m.LM, byTier[ti], target, safety)
		t.TargetA, t.TargetB, t.NontargetA, t.NontargetB = calibrateClassScales(m.LM, byTier[ti])
		m.Tiers[ti] = t
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// calibrateMargin returns the loosest margin bar whose exiting dev subset
// (margin ≥ bar) is at least target-accurate — raised to the guard band
// safety × the highest dev-error margin below it (see DefaultMarginSafety)
// — or +Inf when no subset qualifies (the tier then never exits at the
// default threshold).
func calibrateMargin(sys *prlm.System, exs []DevExample, target, safety float64) float64 {
	type point struct {
		margin  float64
		correct bool
	}
	pts := make([]point, len(exs))
	for i, ex := range exs {
		raw := sys.Score(ex.Seq)
		best, second := 0, -1
		for k, v := range raw {
			if v > raw[best] {
				best = k
			}
		}
		for k, v := range raw {
			if k != best && (second < 0 || v > raw[second]) {
				second = k
			}
		}
		margin := 0.0
		if second >= 0 {
			margin = raw[best] - raw[second]
		}
		pts[i] = point{margin: margin, correct: best == ex.Label}
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].margin > pts[j].margin })
	bestN := 0
	correct := 0
	for n := 1; n <= len(pts); n++ {
		if pts[n-1].correct {
			correct++
		}
		// Skip mid-tie prefixes: the bar margin ≥ m admits every example
		// tied at m, so only prefixes ending at a strict margin drop are
		// realizable operating points.
		if n < len(pts) && pts[n].margin == pts[n-1].margin {
			continue
		}
		if float64(correct)/float64(n) >= target {
			bestN = n
		}
	}
	if bestN == 0 {
		return math.Inf(1)
	}
	bar := pts[bestN-1].margin
	for _, p := range pts {
		if !p.correct && p.margin < bar && safety*p.margin > bar {
			bar = safety * p.margin
		}
	}
	return bar
}

// calibrateClassScales maps tier-1 scores onto the heavy decision scale
// with one least-squares affine per trial class: target pairs (the true
// language's tier-1 vs heavy score) and nontarget pairs fit separately,
// because the heavy backend's class-conditional locations are far apart
// and a single global affine lands both classes between them — a location
// mismatch that pooled detection EER punishes directly. At serve time the
// winning language gets the target map (exits are calibrated to be
// near-certain, so the argmax is the target with dev-accuracy odds).
// Identity maps when no heavy scores were supplied.
func calibrateClassScales(sys *prlm.System, exs []DevExample) (ta, tb, na, nb float64) {
	var tT1, tHv, nT1, nHv []float64
	for _, ex := range exs {
		if ex.Heavy == nil {
			continue
		}
		raw := sys.Score(ex.Seq)
		if len(ex.Heavy) != len(raw) || ex.Label < 0 || ex.Label >= len(raw) {
			continue
		}
		for k := range raw {
			if k == ex.Label {
				tT1 = append(tT1, raw[k])
				tHv = append(tHv, ex.Heavy[k])
			} else {
				nT1 = append(nT1, raw[k])
				nHv = append(nHv, ex.Heavy[k])
			}
		}
	}
	ta, tb = fitAffine(tT1, tHv)
	na, nb = fitAffine(nT1, nHv)
	return ta, tb, na, nb
}

// fitAffine is a guarded least-squares fit y ≈ a·x + b (A = cov/var —
// moment matching shrunk by the correlation, so weakly-informative tier-1
// tails are pulled toward the heavy mean instead of inflated past it).
// Identity when no pairs were supplied; mean shift when degenerate;
// moment-matched slope when the fit is flat or anticorrelated, rather
// than flipping the within-class order.
func fitAffine(xs, ys []float64) (a, b float64) {
	if len(xs) == 0 {
		return 1, 0
	}
	mX, sX := moments(xs)
	mY, sY := moments(ys)
	if sX <= 0 || sY <= 0 {
		return 1, mY - mX
	}
	var cov float64
	for i := range xs {
		cov += (xs[i] - mX) * (ys[i] - mY)
	}
	cov /= float64(len(xs))
	a = cov / (sX * sX)
	if !(a > 0) {
		a = sY / sX
	}
	return a, mY - a*mX
}

func moments(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

package cascade

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// Fixture: 3 toy languages over a 12-phone inventory, each biased toward
// its own phone subset, so the PRLM separates them with realistic (not
// perfect) margins.

const (
	fxPhones = 12
	fxLangs  = 3
)

func genSeq(r *rng.RNG, lang, length int) []int {
	seq := make([]int, length)
	for i := range seq {
		if r.Float64() < 0.7 {
			seq[i] = lang*4 + r.Intn(4)
		} else {
			seq[i] = r.Intn(fxPhones)
		}
	}
	return seq
}

func fixtureModel(t *testing.T, target float64) (*Model, []DevExample) {
	t.Helper()
	r := rng.New(7)
	train := make([][][]int, fxLangs)
	for k := 0; k < fxLangs; k++ {
		for i := 0; i < 30; i++ {
			train[k] = append(train[k], genSeq(r, k, 80))
		}
	}
	var dev []DevExample
	for k := 0; k < fxLangs; k++ {
		for i := 0; i < 20; i++ {
			dev = append(dev, DevExample{Seq: genSeq(r, k, 120), Label: k, Tier: 0})
			dev = append(dev, DevExample{Seq: genSeq(r, k, 12), Label: k, Tier: 1})
		}
	}
	m, err := Train("FE0", fxPhones, train, []string{"long", "short"}, dev, TrainConfig{TargetAccuracy: target})
	if err != nil {
		t.Fatal(err)
	}
	return m, dev
}

func TestTrainValidatesAndMapsTiers(t *testing.T) {
	m, _ := fixtureModel(t, 0)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Tiers[0].Name; got != "long" {
		t.Fatalf("tier 0 = %q", got)
	}
	if m.Tiers[1].MinPhones != 0 {
		t.Fatalf("last tier MinPhones = %d, want 0", m.Tiers[1].MinPhones)
	}
	// The boundary sits between the two length populations.
	if b := m.Tiers[0].MinPhones; b <= 12 || b >= 120 {
		t.Fatalf("tier boundary %d outside (12, 120)", b)
	}
	if ti := m.TierFor(120); ti != 0 {
		t.Fatalf("TierFor(120) = %d", ti)
	}
	if ti := m.TierFor(12); ti != 1 {
		t.Fatalf("TierFor(12) = %d", ti)
	}
	if ti := m.TierFor(0); ti != 1 {
		t.Fatalf("TierFor(0) = %d", ti)
	}
}

func TestDecideThresholdEndpoints(t *testing.T) {
	m, dev := fixtureModel(t, 0)
	for _, ex := range dev {
		if d := m.Decide(ex.Seq, math.Inf(-1)); d.Exit {
			t.Fatalf("threshold -Inf exited (margin %g, required %g)", d.Margin, d.Required)
		}
		if d := m.Decide(ex.Seq, math.Inf(1)); !d.Exit {
			t.Fatalf("threshold +Inf escalated (margin %g, required %g)", d.Margin, d.Required)
		} else if d.Reason != ReasonHighMargin {
			t.Fatalf("exit reason %q", d.Reason)
		}
	}
	// The empty sequence follows the same endpoint contract.
	if d := m.Decide(nil, math.Inf(1)); !d.Exit {
		t.Fatal("empty sequence escalated at +Inf")
	}
	if d := m.Decide(nil, math.Inf(-1)); d.Exit {
		t.Fatal("empty sequence exited at -Inf")
	}
}

func TestDecideMonotoneInThresholdAndMargin(t *testing.T) {
	m, dev := fixtureModel(t, 0)
	thresholds := []float64{math.Inf(-1), -1, -0.01, 0, 0.01, 1, math.Inf(1)}
	for _, ex := range dev {
		prev := false
		for _, th := range thresholds {
			d := m.Decide(ex.Seq, th)
			if prev && !d.Exit {
				t.Fatalf("exit not monotone in threshold at %g", th)
			}
			prev = d.Exit
		}
	}
	// At a fixed threshold, within one tier, the exit set is upward-closed
	// in the margin.
	for _, th := range []float64{-0.02, 0, 0.02} {
		perTier := make(map[string][]Decision)
		for _, ex := range dev {
			d := m.Decide(ex.Seq, th)
			perTier[d.Tier] = append(perTier[d.Tier], d)
		}
		for tier, ds := range perTier {
			sort.Slice(ds, func(i, j int) bool { return ds[i].Margin < ds[j].Margin })
			seenExit := false
			for _, d := range ds {
				if seenExit && !d.Exit {
					t.Fatalf("tier %s threshold %g: exit not monotone in margin", tier, th)
				}
				seenExit = seenExit || d.Exit
			}
		}
	}
}

func TestCalibrationMeetsAccuracyTarget(t *testing.T) {
	const target = 0.95
	m, dev := fixtureModel(t, target)
	correct, exited := make(map[string]int), make(map[string]int)
	for _, ex := range dev {
		d := m.Decide(ex.Seq, 0)
		if !d.Exit {
			continue
		}
		exited[d.Tier]++
		if d.Best == ex.Label {
			correct[d.Tier]++
		}
	}
	for tier, n := range exited {
		if acc := float64(correct[tier]) / float64(n); acc < target {
			t.Fatalf("tier %s: exit accuracy %.3f below target %.2f (n=%d)", tier, acc, target, n)
		}
	}
	// The long tier must exit a nontrivial fraction — the whole point of
	// the cascade — and both tiers assign the fixture correctly enough.
	if exited["long"] == 0 {
		t.Fatal("long tier never exits at the default threshold")
	}
}

func TestScaleCalibrationMatchesMoments(t *testing.T) {
	r := rng.New(9)
	train := make([][][]int, fxLangs)
	for k := 0; k < fxLangs; k++ {
		for i := 0; i < 20; i++ {
			train[k] = append(train[k], genSeq(r, k, 60))
		}
	}
	// Heavy scores with well-separated class-conditional locations
	// (targets near +25, nontargets near −15), mimicking the heavy
	// backend's log-odds geometry on a scale far from tier-1 LLRs.
	var dev []DevExample
	for k := 0; k < fxLangs; k++ {
		for i := 0; i < 15; i++ {
			seq := genSeq(r, k, 60)
			heavy := make([]float64, fxLangs)
			for j := range heavy {
				if j == k {
					heavy[j] = 25 + 2*r.Norm()
				} else {
					heavy[j] = -15 + 2*r.Norm()
				}
			}
			dev = append(dev, DevExample{Seq: seq, Label: k, Tier: 0, Heavy: heavy})
		}
	}
	m, err := Train("FE0", fxPhones, train, []string{"all"}, dev, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The class-conditional maps must land mapped tier-1 scores near the
	// heavy class locations: winning languages around +25, the rest
	// around −15.
	var tgtSum, ntSum float64
	var tgtN, ntN int
	for _, ex := range dev {
		d := m.Decide(ex.Seq, 0)
		for k, s := range d.Scores {
			if k == d.Best {
				tgtSum += s
				tgtN++
			} else {
				ntSum += s
				ntN++
			}
		}
	}
	tgtMean, ntMean := tgtSum/float64(tgtN), ntSum/float64(ntN)
	if tgtMean < 15 || tgtMean > 35 {
		t.Fatalf("mapped target location %.1f, want near +25", tgtMean)
	}
	if ntMean < -25 || ntMean > -5 {
		t.Fatalf("mapped nontarget location %.1f, want near -15", ntMean)
	}
	// Calibrated scores must preserve the argmax (positive slopes,
	// target location above nontarget).
	seq := genSeq(r, 1, 60)
	d := m.Decide(seq, 0)
	raw := m.LM.Score(seq)
	bestRaw := 0
	for k, v := range raw {
		if v > raw[bestRaw] {
			bestRaw = k
		}
	}
	if d.Best != bestRaw {
		t.Fatalf("calibration changed the argmax: %d vs %d", d.Best, bestRaw)
	}
	bestMapped := 0
	for k, v := range d.Scores {
		if v > d.Scores[bestMapped] {
			bestMapped = k
		}
	}
	if bestMapped != d.Best {
		t.Fatalf("mapped scores changed the argmax: %d vs %d", bestMapped, d.Best)
	}
}

func TestTrainErrors(t *testing.T) {
	r := rng.New(3)
	train := make([][][]int, fxLangs)
	for k := 0; k < fxLangs; k++ {
		train[k] = append(train[k], genSeq(r, k, 40))
	}
	dev := []DevExample{{Seq: genSeq(r, 0, 40), Label: 0, Tier: 0}}
	if _, err := Train("", fxPhones, train, []string{"a"}, dev, TrainConfig{}); err == nil {
		t.Fatal("empty front-end accepted")
	}
	if _, err := Train("FE0", fxPhones, train, nil, dev, TrainConfig{}); err == nil {
		t.Fatal("no tiers accepted")
	}
	if _, err := Train("FE0", fxPhones, train, []string{"a", "b"}, dev, TrainConfig{}); err == nil {
		t.Fatal("tier without dev examples accepted")
	}
	if _, err := Train("FE0", fxPhones, train, []string{"a"},
		[]DevExample{{Seq: genSeq(r, 0, 40), Tier: 5}}, TrainConfig{}); err == nil {
		t.Fatal("out-of-range tier index accepted")
	}
}

func TestValidateRejectsCorruptModels(t *testing.T) {
	m, _ := fixtureModel(t, 0)
	check := func(name string, mutate func(c Model) Model) {
		bad := mutate(*m)
		if err := bad.Validate(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	check("version", func(c Model) Model { c.Version = 99; return c })
	check("no front-end", func(c Model) Model { c.FrontEnd = ""; return c })
	check("no LM", func(c Model) Model { c.LM = nil; return c })
	check("no tiers", func(c Model) Model { c.Tiers = nil; return c })
	check("phone mismatch", func(c Model) Model { c.NumPhones = 99; return c })
	check("nonzero last tier", func(c Model) Model {
		c.Tiers = append([]TierPolicy(nil), c.Tiers...)
		c.Tiers[len(c.Tiers)-1].MinPhones = 3
		return c
	})
	check("duplicate tier", func(c Model) Model {
		c.Tiers = append([]TierPolicy(nil), c.Tiers...)
		c.Tiers[1].Name = c.Tiers[0].Name
		return c
	})
	check("unordered tiers", func(c Model) Model {
		c.Tiers = append([]TierPolicy(nil), c.Tiers...)
		c.Tiers[0].MinPhones = 0
		return c
	})
	check("NaN margin", func(c Model) Model {
		c.Tiers = append([]TierPolicy(nil), c.Tiers...)
		c.Tiers[0].RequiredMargin = math.NaN()
		return c
	})
	check("bad target scale", func(c Model) Model {
		c.Tiers = append([]TierPolicy(nil), c.Tiers...)
		c.Tiers[0].TargetA = -1
		return c
	})
	check("bad nontarget scale", func(c Model) Model {
		c.Tiers = append([]TierPolicy(nil), c.Tiers...)
		c.Tiers[0].NontargetA = 0
		return c
	})
}

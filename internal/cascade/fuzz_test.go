package cascade

import (
	"math"
	"testing"
)

// FuzzParsePolicy guards the threshold-spec parser (the -cascade-margin
// flag, untrusted operator input): malformed specs must error, never
// panic; accepted specs must be finite-or-±Inf (never NaN) and must
// survive a String() → ParsePolicy round trip unchanged.
func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"", "0", "0.25", "-0.5", "-inf", "+Inf", "inf",
		"default=0.1", "default=0.1;30s=0.3", "30s=0.3,3s=-inf",
		" default = 1 ; 10s = 2 ", "default=-Inf;3s=+Inf",
		"nan", "30s=nan", "abc", "=1", "30s=", "30s=1;30s=2", ";;,,",
		"a=1e308;b=-1e308", "x=0x1p-2", "default=1_0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			return
		}
		if math.IsNaN(p.Default) {
			t.Fatalf("%q: NaN default accepted", s)
		}
		for name, v := range p.PerTier {
			if name == "" || name == "default" {
				t.Fatalf("%q: bad override name %q", s, name)
			}
			if math.IsNaN(v) {
				t.Fatalf("%q: NaN threshold accepted for %q", s, name)
			}
		}
		canon := p.String()
		p2, err := ParsePolicy(canon)
		if err != nil {
			t.Fatalf("%q: canonical form %q does not reparse: %v", s, canon, err)
		}
		if !policiesEqual(p, p2) {
			t.Fatalf("%q: round trip %q gave %+v, want %+v", s, canon, p2, p)
		}
		if canon2 := p2.String(); canon2 != canon {
			t.Fatalf("%q: canonical form not a fixed point: %q vs %q", s, canon, canon2)
		}
	})
}

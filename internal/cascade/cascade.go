// Package cascade implements the two-tier scoring cascade's cheap first
// tier: a phone-string n-gram LM classifier (PRLM, internal/prlm) over the
// 1-best decode of a single designated front-end, plus the calibrated
// margin policy that decides — per duration tier — whether a request's
// tier-1 answer is confident enough to return immediately or must be
// escalated to the full lattice → supervector → OVR-SVM path.
//
// The decision contract (DESIGN.md "Cascade serving"):
//
//   - Every request is scored by tier 1 first (when its designated
//     front-end arrived as a lattice); the margin is the gap between the
//     best and second-best language LLR.
//   - The request exits at tier 1 iff margin ≥ required(tier), where
//     required(tier) = calibrated(tier) − threshold. The threshold is an
//     aggressiveness offset: −Inf forces required = +Inf (escalate
//     everything — the bit-identity referee), +Inf forces required = −Inf
//     (everything exits at tier 1), 0 uses the dev-calibrated per-tier
//     margins as-is.
//   - Exit decisions are monotone in both the margin and the threshold: a
//     request that exits keeps exiting if its margin grows or the
//     threshold grows.
package cascade

import (
	"fmt"
	"math"

	"repro/internal/prlm"
)

// ModelVersion versions the persisted cascade artifact inside a bundle.
// Loaders reject other versions instead of guessing (legacy bundles carry
// no cascade at all and load with the cascade disabled).
const ModelVersion = 1

// TierPolicy is one duration tier's calibrated exit policy. Tiers are
// ordered longest-first (matching corpus.Durations); membership is decided
// by the decoded phone-string length — the only duration proxy available
// at serve time.
type TierPolicy struct {
	Name string
	// MinPhones is the smallest 1-best length that belongs to this tier.
	// The last tier's MinPhones is 0, so every length maps somewhere.
	MinPhones int
	// RequiredMargin is the exit bar at threshold offset 0, calibrated on
	// dev so the exiting subset meets the training accuracy target. +Inf
	// means "never exit at the default threshold" (calibration found no
	// safe operating point).
	RequiredMargin float64
	// Class-conditional affine maps onto the heavy path's fused score
	// scale, fit on dev with true labels (least squares per class):
	// TargetA/TargetB map the winning language's LLR (tier-1 exits are
	// calibrated to be near-certain, so the argmax stands in for the
	// target class), NontargetA/NontargetB map the rest. Separate maps
	// matter because the heavy backend emits log-odds with well-separated
	// class-conditional locations that one global affine cannot
	// reproduce — and a location mismatch shows up directly as pooled
	// detection EER. Positive slopes keep each class's ordering.
	TargetA, TargetB       float64
	NontargetA, NontargetB float64
}

// Model is the persisted tier-1 artifact carried inside a persist.Bundle:
// the PRLM scorer for one designated front-end plus the per-tier policy.
type Model struct {
	Version int
	// FrontEnd names the bundle front-end whose 1-best decode feeds tier 1.
	FrontEnd  string
	NumPhones int
	LM        *prlm.System
	// Tiers is ordered by MinPhones descending (longest tier first).
	Tiers []TierPolicy
}

// Decision reason codes. The serve layer adds its own escalation reasons
// for requests tier 1 never scored (no lattice for the designated
// front-end, tier-1 fault); these two are the policy's.
const (
	ReasonHighMargin = "high_margin" // exit: margin cleared the tier's bar
	ReasonLowMargin  = "low_margin"  // escalate: margin under the bar
)

// Decision is the tier-1 outcome for one utterance.
type Decision struct {
	// Exit is true when tier 1 answers the request.
	Exit   bool
	Reason string
	// Tier is the duration tier the utterance was assigned to.
	Tier string
	// Margin is the best-vs-second-best gap of the raw tier-1 LLRs;
	// Required is the bar it was compared against (calibrated − threshold).
	Margin   float64
	Required float64
	// Scores are the tier-1 per-language scores on the heavy fused-score
	// scale (the tier's class-conditional calibration applied: the target
	// map on the winning language, the nontarget map elsewhere). Best is
	// the argmax of the raw LLRs (= of Scores, since the target location
	// sits above the nontarget one).
	Scores []float64
	Best   int
}

// TierFor maps a 1-best length to a tier index (first tier whose
// MinPhones the length reaches; the last tier catches everything).
func (m *Model) TierFor(numPhones int) int {
	for i, t := range m.Tiers {
		if numPhones >= t.MinPhones {
			return i
		}
	}
	return len(m.Tiers) - 1
}

// requiredMargin computes the exit bar for a tier under a threshold
// offset. ±Inf thresholds are handled explicitly so the endpoints hold
// even for a tier calibrated to ±Inf.
func requiredMargin(calibrated, threshold float64) float64 {
	if math.IsInf(threshold, -1) {
		return math.Inf(1) // escalate everything
	}
	if math.IsInf(threshold, 1) {
		return math.Inf(-1) // everything exits
	}
	return calibrated - threshold
}

// Decide scores one 1-best phone string and applies the exit policy under
// the given threshold offset.
func (m *Model) Decide(seq []int, threshold float64) Decision {
	ti := m.TierFor(len(seq))
	tier := &m.Tiers[ti]
	raw := m.LM.Score(seq)
	best, second := 0, -1
	for k, v := range raw {
		if v > raw[best] {
			best = k
		}
	}
	for k, v := range raw {
		if k != best && (second < 0 || v > raw[second]) {
			second = k
		}
	}
	margin := 0.0
	if second >= 0 {
		margin = raw[best] - raw[second]
	}
	scores := make([]float64, len(raw))
	for k, v := range raw {
		if k == best {
			scores[k] = tier.TargetA*v + tier.TargetB
		} else {
			scores[k] = tier.NontargetA*v + tier.NontargetB
		}
	}
	d := Decision{
		Tier:     tier.Name,
		Margin:   margin,
		Required: requiredMargin(tier.RequiredMargin, threshold),
		Scores:   scores,
		Best:     best,
	}
	if d.Exit = margin >= d.Required; d.Exit {
		d.Reason = ReasonHighMargin
	} else {
		d.Reason = ReasonLowMargin
	}
	return d
}

// Validate checks the internal consistency a scoring process relies on.
func (m *Model) Validate() error {
	if m.Version != ModelVersion {
		return fmt.Errorf("cascade: model version %d (want %d)", m.Version, ModelVersion)
	}
	if m.FrontEnd == "" {
		return fmt.Errorf("cascade: model names no front-end")
	}
	if m.NumPhones <= 0 {
		return fmt.Errorf("cascade: invalid phone inventory %d", m.NumPhones)
	}
	if m.LM == nil || len(m.LM.Models) == 0 || m.LM.Background == nil {
		return fmt.Errorf("cascade: model has no language models")
	}
	if m.LM.NumPhones != m.NumPhones {
		return fmt.Errorf("cascade: LM inventory %d does not match model inventory %d", m.LM.NumPhones, m.NumPhones)
	}
	if len(m.Tiers) == 0 {
		return fmt.Errorf("cascade: model has no tiers")
	}
	seen := make(map[string]bool, len(m.Tiers))
	for i, t := range m.Tiers {
		if t.Name == "" {
			return fmt.Errorf("cascade: tier %d has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("cascade: duplicate tier %q", t.Name)
		}
		seen[t.Name] = true
		if t.MinPhones < 0 {
			return fmt.Errorf("cascade: tier %q has negative MinPhones", t.Name)
		}
		if i > 0 && t.MinPhones >= m.Tiers[i-1].MinPhones {
			return fmt.Errorf("cascade: tier %q MinPhones %d not below previous tier's %d",
				t.Name, t.MinPhones, m.Tiers[i-1].MinPhones)
		}
		if math.IsNaN(t.RequiredMargin) || math.IsInf(t.RequiredMargin, -1) {
			return fmt.Errorf("cascade: tier %q has invalid required margin", t.Name)
		}
		for _, s := range [][2]float64{{t.TargetA, t.TargetB}, {t.NontargetA, t.NontargetB}} {
			if !(s[0] > 0) || math.IsInf(s[0], 0) || math.IsNaN(s[1]) || math.IsInf(s[1], 0) {
				return fmt.Errorf("cascade: tier %q has invalid score calibration (%g, %g)", t.Name, s[0], s[1])
			}
		}
	}
	if last := m.Tiers[len(m.Tiers)-1].MinPhones; last != 0 {
		return fmt.Errorf("cascade: last tier starts at %d phones, leaving shorter inputs unmapped", last)
	}
	return nil
}

package scorefile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func sample() []Record {
	return []Record{
		{System: "baseline", DurationS: 30, Model: "farsi", Segment: "seg1", Truth: "farsi", Score: 1.25},
		{System: "baseline", DurationS: 30, Model: "hindi", Segment: "seg1", Truth: "farsi", Score: -0.5},
		{System: "dba", DurationS: 3, Model: "farsi", Segment: "seg2", Truth: "-", Score: 0},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("%d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("foo\tbar\n")); err == nil {
		t.Fatal("accepted bad header")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("accepted empty input")
	}
}

func TestReadRejectsBadLines(t *testing.T) {
	header := "system\tduration_s\tmodel\tsegment\ttruth\tscore\n"
	if _, err := Read(strings.NewReader(header + "a\tb\n")); err == nil {
		t.Fatal("accepted short line")
	}
	if _, err := Read(strings.NewReader(header + "s\tx\tm\tseg\tt\t1.0\n")); err == nil {
		t.Fatal("accepted non-numeric duration")
	}
	if _, err := Read(strings.NewReader(header + "s\t30\tm\tseg\tt\tx\n")); err == nil {
		t.Fatal("accepted non-numeric score")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()[:1]); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n\n")
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d records", len(got))
	}
}

func TestReadEmptyInputError(t *testing.T) {
	_, err := Read(strings.NewReader(""))
	if err == nil {
		t.Fatal("accepted empty input")
	}
	if !strings.Contains(err.Error(), "empty input") {
		t.Fatalf("empty input error %q does not say so", err)
	}
}

func TestReadHeaderOnly(t *testing.T) {
	recs, err := Read(strings.NewReader("system\tduration_s\tmodel\tsegment\ttruth\tscore\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("header-only file yielded %d records", len(recs))
	}
}

func TestReadTrailingNewlineAndNoFinalNewline(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	// Extra trailing newlines must be harmless.
	withTrailing := buf.String() + "\n"
	recs, err := Read(strings.NewReader(withTrailing))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sample()) {
		t.Fatalf("trailing newline changed record count: %d", len(recs))
	}
	// A file whose last line lacks the final newline must parse too.
	noFinal := strings.TrimSuffix(buf.String(), "\n")
	recs, err = Read(strings.NewReader(noFinal))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sample()) {
		t.Fatalf("missing final newline changed record count: %d", len(recs))
	}
}

func TestReadMalformedLineReportsLineNumber(t *testing.T) {
	header := "system\tduration_s\tmodel\tsegment\ttruth\tscore\n"
	good := "s\t30\tm\tseg\tt\t1.0\n"
	cases := []struct {
		name  string
		input string
		line  string // the line number the error must name
	}{
		{"wrong field count", header + good + "only\ttwo\n", "line 3"},
		{"bad duration", header + good + good + "s\tNaN?\tm\tseg\tt\t1\n", "line 4"},
		{"bad score", header + "s\t30\tm\tseg\tt\tbogus\n", "line 2"},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.input))
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.line) {
			t.Fatalf("%s: error %q does not name %s", tc.name, err, tc.line)
		}
	}
}

func TestFromScoreMatrix(t *testing.T) {
	scores := [][]float64{{1, -1}, {0.5, 0.2}}
	labels := []int{0, 1}
	names := []string{"farsi", "hindi"}
	recs := FromScoreMatrix("sys", 10, scores, labels, names, nil)
	if len(recs) != 4 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Model != "farsi" || recs[0].Truth != "farsi" || recs[0].Score != 1 {
		t.Fatalf("first record %+v", recs[0])
	}
	if recs[3].Model != "hindi" || recs[3].Truth != "hindi" {
		t.Fatalf("last record %+v", recs[3])
	}
	// Unlabeled variant.
	anon := FromScoreMatrix("sys", 10, scores, nil, names, []string{"a", "b"})
	if anon[0].Truth != "-" || anon[0].Segment != "a" {
		t.Fatalf("anon record %+v", anon[0])
	}
}

func TestToPairTrialsAndEER(t *testing.T) {
	// Round trip all the way into the metrics package.
	scores := [][]float64{{2, -2}, {-2, 2}}
	labels := []int{0, 1}
	names := []string{"farsi", "hindi"}
	recs := FromScoreMatrix("sys", 30, scores, labels, names, nil)
	idx := map[string]int{"farsi": 0, "hindi": 1}
	trials, err := ToPairTrials(recs, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 4 {
		t.Fatalf("%d trials", len(trials))
	}
	if eer := metrics.EER(metrics.PairTrialsToDetection(trials)); math.Abs(eer) > 1e-12 {
		t.Fatalf("EER = %v for perfect scores", eer)
	}
}

func TestToPairTrialsUnknownLanguage(t *testing.T) {
	recs := []Record{{Model: "klingon", Truth: "farsi", Score: 1}}
	if _, err := ToPairTrials(recs, map[string]int{"farsi": 0}); err == nil {
		t.Fatal("accepted unknown model language")
	}
	recs2 := []Record{{Model: "farsi", Truth: "klingon", Score: 1}}
	if _, err := ToPairTrials(recs2, map[string]int{"farsi": 0}); err == nil {
		t.Fatal("accepted unknown truth language")
	}
}

func TestToPairTrialsSkipsUnlabeled(t *testing.T) {
	recs := []Record{
		{Model: "farsi", Truth: "-", Score: 1},
		{Model: "farsi", Truth: "farsi", Score: 1},
	}
	trials, err := ToPairTrials(recs, map[string]int{"farsi": 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 1 {
		t.Fatalf("%d trials", len(trials))
	}
}

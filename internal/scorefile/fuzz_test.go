package scorefile

import (
	"bytes"
	"strings"
	"testing"
)

const fuzzHeader = "system\tduration_s\tmodel\tsegment\ttruth\tscore"

// FuzzRead: the score-file reader must never panic on arbitrary bytes,
// and anything it accepts must survive a Write→Read→Write cycle with the
// second write byte-identical to the first (the writer is the format's
// normal form, so one normalization pass must be a fixed point).
func FuzzRead(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(fuzzHeader))
	f.Add([]byte(fuzzHeader + "\nPR-HU\t30\talpha\tseg_0001\talpha\t-1.25\n"))
	f.Add([]byte(fuzzHeader + "\nPR-HU\t30\talpha\tseg_0001\t-\tNaN\n\n"))
	f.Add([]byte(fuzzHeader + "\nPR-HU\t30\talpha\tseg_0001\talpha\t+Inf\n"))
	f.Add([]byte(fuzzHeader + "\r\nsys\t1e-3\tm\ts\tt\t0\r\n"))
	f.Add([]byte(fuzzHeader + "\ntoo\tfew\tfields\n"))
	f.Add([]byte(fuzzHeader + "\na\tnot-a-number\tm\ts\tt\t0\n"))
	f.Add([]byte("wrong header\na\t1\tm\ts\tt\t0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var w1 strings.Builder
		if err := Write(&w1, recs); err != nil {
			t.Fatalf("writing accepted records: %v", err)
		}
		recs2, err := Read(strings.NewReader(w1.String()))
		if err != nil {
			t.Fatalf("re-reading written records: %v\n%s", err, w1.String())
		}
		if len(recs2) != len(recs) {
			t.Fatalf("roundtrip changed record count: %d -> %d", len(recs), len(recs2))
		}
		var w2 strings.Builder
		if err := Write(&w2, recs2); err != nil {
			t.Fatal(err)
		}
		if w1.String() != w2.String() {
			t.Fatalf("normalization is not a fixed point:\nfirst:  %q\nsecond: %q", w1.String(), w2.String())
		}
	})
}

// Package scorefile reads and writes LRE-style detection score files —
// one line per (model language, test utterance) trial — so scores from
// this system can be exchanged with external scoring tools (and vice
// versa: externally produced scores can be evaluated with this
// repository's EER/Cavg/DET code).
//
// The format is tab-separated with a header line:
//
//	system	duration_s	model	segment	truth	score
//	baseline	30	farsi	seg00042	farsi	1.2345
//
// "truth" may be "-" when unknown (open evaluation); such trials load
// with Truth = -1.
package scorefile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// Record is one trial line.
type Record struct {
	System    string
	DurationS float64
	// Model and Truth are language names; Segment identifies the test
	// utterance.
	Model   string
	Segment string
	Truth   string // "-" when unknown
	Score   float64
}

// Write emits records with the header.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "system\tduration_s\tmodel\tsegment\ttruth\tscore"); err != nil {
		return err
	}
	for _, r := range records {
		truth := r.Truth
		if truth == "" {
			truth = "-"
		}
		if _, err := fmt.Fprintf(bw, "%s\t%g\t%s\t%s\t%s\t%.8g\n",
			r.System, r.DurationS, r.Model, r.Segment, truth, r.Score); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a score file, validating the header and every line.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("scorefile: empty input")
	}
	header := strings.TrimSpace(sc.Text())
	if header != "system\tduration_s\tmodel\tsegment\ttruth\tscore" {
		return nil, fmt.Errorf("scorefile: unexpected header %q", header)
	}
	var out []Record
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 6 {
			return nil, fmt.Errorf("scorefile: line %d has %d fields", lineNo, len(parts))
		}
		dur, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("scorefile: line %d duration: %w", lineNo, err)
		}
		score, err := strconv.ParseFloat(parts[5], 64)
		if err != nil {
			return nil, fmt.Errorf("scorefile: line %d score: %w", lineNo, err)
		}
		out = append(out, Record{
			System:    parts[0],
			DurationS: dur,
			Model:     parts[2],
			Segment:   parts[3],
			Truth:     parts[4],
			Score:     score,
		})
	}
	return out, sc.Err()
}

// FromScoreMatrix flattens a score matrix into records. labels maps test
// index → true-language index; names maps language index → name; segIDs
// maps test index → segment identifier (generated when nil).
func FromScoreMatrix(system string, durationS float64, scores [][]float64,
	labels []int, names []string, segIDs []string) []Record {

	var out []Record
	for j, row := range scores {
		if row == nil {
			continue
		}
		seg := fmt.Sprintf("seg%05d", j)
		if segIDs != nil {
			seg = segIDs[j]
		}
		truth := "-"
		if labels != nil {
			truth = names[labels[j]]
		}
		for k, s := range row {
			out = append(out, Record{
				System:    system,
				DurationS: durationS,
				Model:     names[k],
				Segment:   seg,
				Truth:     truth,
				Score:     s,
			})
		}
	}
	return out
}

// ToPairTrials converts labeled records into metric trials. Records with
// unknown truth are skipped; nameIndex maps language names to indices.
func ToPairTrials(records []Record, nameIndex map[string]int) ([]metrics.PairTrial, error) {
	var out []metrics.PairTrial
	for i, r := range records {
		if r.Truth == "-" || r.Truth == "" {
			continue
		}
		model, ok := nameIndex[r.Model]
		if !ok {
			return nil, fmt.Errorf("scorefile: record %d has unknown model language %q", i, r.Model)
		}
		truth, ok := nameIndex[r.Truth]
		if !ok {
			return nil, fmt.Errorf("scorefile: record %d has unknown truth language %q", i, r.Truth)
		}
		out = append(out, metrics.PairTrial{Model: model, True: truth, Score: r.Score})
	}
	return out, nil
}

// Package persist saves and loads trained models with encoding/gob: SVM
// language models, GMMs (including the UBM and acoustic emissions), TFLLR
// scalers, phone language models, and fusion backends. A production
// deployment trains once and scores many times; this package is the
// boundary between the two.
package persist

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/faultinject"
)

// magic versions the on-disk format.
const magic = "repro-model-v1"

// SaveTo writes a model to a writer.
func SaveTo(w io.Writer, v any) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(magic); err != nil {
		return fmt.Errorf("persist: header: %w", err)
	}
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("persist: body: %w", err)
	}
	return nil
}

// LoadFrom reads a model from a reader into v (a pointer).
func LoadFrom(r io.Reader, v any) error {
	dec := gob.NewDecoder(r)
	var got string
	if err := dec.Decode(&got); err != nil {
		return fmt.Errorf("persist: header: %w", err)
	}
	if got != magic {
		return fmt.Errorf("persist: bad magic %q (want %q)", got, magic)
	}
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("persist: body: %w", err)
	}
	return nil
}

// Save writes a model to a file (atomically via a temp file + rename).
func Save(path string, v any) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := SaveTo(bw, v); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Chaos hook: a fault here models a crash after the temp file is fully
	// written but before it is published — the atomic-save contract says
	// the destination must be untouched.
	if err := faultinject.At("persist.save"); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a model from a file into v (a pointer). The read stream runs
// through the persist.load.read fault site, so chaos plans can simulate
// partial reads and torn files; decoding such a stream must fail cleanly,
// never panic or succeed with garbage.
func Load(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadFrom(faultinject.Reader("persist.load.read", bufio.NewReader(f)), v)
}

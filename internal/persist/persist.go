// Package persist saves and loads trained models with encoding/gob: SVM
// language models, GMMs (including the UBM and acoustic emissions), TFLLR
// scalers, phone language models, and fusion backends. A production
// deployment trains once and scores many times; this package is the
// boundary between the two.
//
// Files written by Save are *sealed*: the gob stream carries a v2 header
// and the file ends in a CRC32 + SHA-256 + length integrity footer (see
// footer.go), so a flipped byte or a torn tail is detected at load time
// as a typed ErrCorrupt instead of decoding into garbage. Legacy v1 files
// (no footer) still load. internal/checkpoint reuses the same sealed
// format for pipeline snapshots.
package persist

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/faultinject"
)

// magic versions the on-disk format: v1 is the legacy footerless stream,
// v2 declares that an integrity footer follows the gob body. A v2 header
// with no valid footer means the file lost its tail.
const (
	magic       = "repro-model-v1"
	magicSealed = "repro-model-v2"
)

// encodeTo writes the versioned gob stream (header + body) to w.
func encodeTo(w io.Writer, header string, v any) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("persist: header: %w", err)
	}
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("persist: body: %w", err)
	}
	return nil
}

// SaveTo writes a model to a writer as a legacy (footerless) v1 stream —
// for pipes and embedded streams where a trailing footer has no tail to
// live in. Files should go through Save, which seals them.
func SaveTo(w io.Writer, v any) error {
	return encodeTo(w, magic, v)
}

// LoadFrom reads a model from a reader into v (a pointer). Both v1 and v2
// headers are accepted; any trailing footer bytes are left unread, so a
// sealed file can be streamed through LoadFrom (without integrity
// verification — use Load for that).
func LoadFrom(r io.Reader, v any) error {
	dec := gob.NewDecoder(r)
	var got string
	if err := dec.Decode(&got); err != nil {
		return fmt.Errorf("persist: header: %w (%w)", err, ErrCorrupt)
	}
	if got != magic && got != magicSealed {
		return fmt.Errorf("persist: bad magic %q (want %q or %q)", got, magic, magicSealed)
	}
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("persist: body: %w (%w)", err, ErrCorrupt)
	}
	return nil
}

// Save writes a model to a file: sealed gob bytes (v2 header + integrity
// footer) published atomically via a temp file + rename. The persist.save
// fault site sits between the complete temp file and the rename, modeling
// a crash after the bytes are written but before they are published — the
// atomic-save contract says the destination must be untouched.
func Save(path string, v any) error {
	data, err := MarshalSealed(v)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data, "persist.save")
}

// Load reads a model from a file into v (a pointer). The read stream runs
// through the persist.load.read fault site, so chaos plans can simulate
// partial reads and torn files; a sealed file that fails its footer check
// — flipped byte, torn tail, truncation — returns a wrapped ErrCorrupt,
// never a panic or garbage decode. Legacy v1 files load without a footer
// check (their decode failures are still reported as ErrCorrupt).
func Load(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := io.ReadAll(faultinject.Reader("persist.load.read", bufio.NewReader(f)))
	if err != nil {
		return fmt.Errorf("persist: read %s: %w", path, err)
	}
	return unseal(data, v)
}

// unseal decodes a complete file image: footer-verified when sealed,
// legacy path when the v1 header says no footer ever existed.
func unseal(data []byte, v any) error {
	if hasFooter(data) {
		payload, err := Unseal(data)
		if err != nil {
			return err
		}
		return LoadFrom(bytes.NewReader(payload), v)
	}
	// No footer at the tail: either a legacy v1 file, or a sealed file
	// whose tail was torn off. The header tells them apart.
	dec := gob.NewDecoder(bytes.NewReader(data))
	var got string
	if err := dec.Decode(&got); err != nil {
		return fmt.Errorf("persist: header: %w (%w)", err, ErrCorrupt)
	}
	switch got {
	case magicSealed:
		return fmt.Errorf("%w: sealed file lost its integrity footer (torn tail)", ErrCorrupt)
	case magic:
		if err := dec.Decode(v); err != nil {
			return fmt.Errorf("persist: body: %w (%w)", err, ErrCorrupt)
		}
		return nil
	}
	return fmt.Errorf("persist: bad magic %q (want %q or %q)", got, magic, magicSealed)
}

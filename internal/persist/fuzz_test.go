package persist

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"repro/internal/proj"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// fuzzQuantSeed builds a small, valid compressed payload (quantized
// kernel + packed projection) for the fuzz corpus.
func fuzzQuantSeed() []byte {
	enc := func(v int8) byte { return byte(v) }
	q := &svm.Quantized{
		NumClasses: 2, Dim: 3,
		W8:    []byte{enc(1), enc(-2), enc(3), enc(-4), enc(5), enc(-6)},
		Scale: []float64{0.5, 0.25},
		Zero:  []float64{0, 0},
		Bias:  []float64{0.1, -0.1},
	}
	pk := &proj.Packed{
		Dim: 4, Rank: 3, Precision: "int8",
		Q8:    bytes.Repeat([]byte{enc(7)}, 12),
		Scale: []float64{1, 2, 3},
	}
	var buf bytes.Buffer
	e := gob.NewEncoder(&buf)
	if err := e.Encode(q); err != nil {
		panic(err)
	}
	if err := e.Encode(pk); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func fuzzProbe() *sparse.Vector {
	return &sparse.Vector{
		Idx: []int32{0, 1, 2, 5, 1000},
		Val: []float64{0.5, -1, 2, 0.25, 1},
	}
}

// FuzzQuantizedDecode: the quantized-weight decode path (gob bytes →
// svm.Quantized + proj.Packed → Validate) must never panic on arbitrary
// input — truncation, NaN scales, zero-point overflow, and length lies
// must all come back as a decode error or a Validate error. Anything
// that survives both must then score and apply without panicking: these
// are the exact structures an untrusted bundle file feeds the serving
// hot path.
func FuzzQuantizedDecode(f *testing.F) {
	seed := fuzzQuantSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated mid-stream
	f.Add([]byte{})
	// A bit-flipped seed steers the mutator toward near-valid streams
	// whose NaN scales / oversized zero points survive gob (well-formed
	// floats) and must die in Validate.
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		var q svm.Quantized
		if err := dec.Decode(&q); err != nil {
			return
		}
		qOK := q.Validate() == nil
		var pk proj.Packed
		pkErr := dec.Decode(&pk)
		pkOK := pkErr == nil && pk.Validate() == nil

		// Whatever validated must be safe to run: score/apply a probe
		// with in-range and far-out-of-range indices.
		x := fuzzProbe()
		if qOK {
			out := make([]float64, q.NumClasses)
			q.ScoresInto(x, out)
			for _, v := range out {
				if math.IsNaN(v) {
					t.Fatal("validated quantized kernel produced NaN on a finite probe")
				}
			}
		}
		if pkOK {
			out := make([]float64, pk.Rank)
			pk.ApplyInto(x, out)
		}
	})
}

// FuzzCompressedBundleUnseal: the sealed-bundle decode path must reject
// arbitrary mutations of a compressed bundle cleanly — UnmarshalSealed
// either errors (torn tail, flipped bytes → ErrCorrupt via the footer)
// or yields a bundle that Validate accepts or rejects without panicking.
func FuzzCompressedBundleUnseal(f *testing.F) {
	b := fuzzCompressedBundle()
	sealed, err := MarshalSealed(b)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add(sealed[:len(sealed)-3]) // torn tail
	f.Add(sealed[:16])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var lb Bundle
		if err := UnmarshalSealed(data, &lb); err != nil {
			return
		}
		if err := lb.Validate(); err != nil {
			return
		}
		// A bundle that decodes and validates must score without
		// panicking through the precision-dispatch path.
		x := fuzzProbe()
		for i := range lb.FrontEnds {
			fe := &lb.FrontEnds[i]
			v := x
			if fe.Proj != nil {
				v = fe.Proj.Apply(x)
			}
			fe.Scores(v)
		}
	})
}

// fuzzCompressedBundle builds a tiny valid int8 compressed bundle.
func fuzzCompressedBundle() *Bundle {
	enc := func(v int8) byte { return byte(v) }
	const dim, rank, K = 6, 2, 2 // NumPhones 2, Order 2 → 2+4 = 6
	q := &svm.Quantized{
		NumClasses: K, Dim: rank,
		W8:    []byte{enc(100), enc(-100), enc(50), enc(-50)},
		Scale: []float64{0.01, 0.02},
		Zero:  []float64{0, 0},
		Bias:  []float64{0.1, -0.1},
	}
	pk := &proj.Packed{
		Dim: dim, Rank: rank, Precision: "int8",
		Q8:    bytes.Repeat([]byte{enc(9)}, dim*rank),
		Scale: []float64{0.5, 0.25},
	}
	return &Bundle{
		Languages: []string{"aa", "bb"},
		FrontEnds: []FrontEndModel{{
			Name: "FE0", NumPhones: 2, Order: 2,
			Proj: pk, Quant: q, Precision: "int8",
		}},
	}
}

package persist

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/fusion"
	"repro/internal/gmm"
	"repro/internal/lm"
	"repro/internal/ngram"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
)

func TestRoundTripSVMOneVsRest(t *testing.T) {
	r := rng.New(1)
	var xs []*sparse.Vector
	var ys []int
	for i := 0; i < 60; i++ {
		x := make([]float64, 10)
		k := i % 3
		x[k*3] = 2 + r.Norm()
		xs = append(xs, sparse.FromDense(x))
		ys = append(ys, k)
	}
	ovr := svm.TrainOneVsRest(xs, ys, 3, 10, svm.DefaultOptions())

	path := filepath.Join(t.TempDir(), "ovr.gob")
	if err := Save(path, ovr); err != nil {
		t.Fatal(err)
	}
	var loaded svm.OneVsRest
	if err := Load(path, &loaded); err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[:10] {
		a, b := ovr.Scores(x), loaded.Scores(x)
		for k := range a {
			if a[k] != b[k] {
				t.Fatal("scores differ after round trip")
			}
		}
	}
}

func TestRoundTripGMMRestoresCaches(t *testing.T) {
	r := rng.New(2)
	data := make([][]float64, 300)
	for i := range data {
		data[i] = []float64{r.Norm(), r.Norm() + 3}
	}
	g := gmm.Train(r, data, 2, 3, 5, 5)

	var buf bytes.Buffer
	if err := SaveTo(&buf, g); err != nil {
		t.Fatal(err)
	}
	var loaded gmm.GMM
	if err := LoadFrom(&buf, &loaded); err != nil {
		t.Fatal(err)
	}
	// LogProb uses the rebuilt cache — must match exactly and be finite.
	for _, x := range data[:20] {
		a, b := g.LogProb(x), loaded.LogProb(x)
		if math.IsNaN(b) || a != b {
			t.Fatalf("LogProb after load: %v vs %v", b, a)
		}
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripTFLLR(t *testing.T) {
	vecs := []*sparse.Vector{sparse.FromMap(map[int32]float64{0: 0.5, 3: 0.5})}
	tf := ngram.EstimateTFLLR(vecs, 6, 1e-5)
	var buf bytes.Buffer
	if err := SaveTo(&buf, tf); err != nil {
		t.Fatal(err)
	}
	var loaded ngram.TFLLR
	if err := LoadFrom(&buf, &loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.Dim() != 6 {
		t.Fatalf("Dim after load = %d", loaded.Dim())
	}
	for q := int32(0); q < 6; q++ {
		if tf.Scale(q) != loaded.Scale(q) {
			t.Fatal("scales differ after round trip")
		}
	}
}

func TestRoundTripBigramLM(t *testing.T) {
	m := lm.TrainKneserNey(5, [][]int{{0, 1, 2, 3, 4, 0, 1}}, 0.75)
	var buf bytes.Buffer
	if err := SaveTo(&buf, m); err != nil {
		t.Fatal(err)
	}
	var loaded lm.Bigram
	if err := LoadFrom(&buf, &loaded); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if m.LogProb(a, b) != loaded.LogProb(a, b) {
				t.Fatal("LM probabilities differ after round trip")
			}
		}
	}
}

func TestRoundTripFusionBackend(t *testing.T) {
	r := rng.New(3)
	var x [][]float64
	var labels []int
	for i := 0; i < 200; i++ {
		k := i % 2
		x = append(x, []float64{float64(2*k) + 0.3*r.Norm(), r.Norm(), r.Norm()})
		labels = append(labels, k)
	}
	b, err := fusion.Train(x, labels, 2, fusion.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTo(&buf, b); err != nil {
		t.Fatal(err)
	}
	var loaded fusion.Backend
	if err := LoadFrom(&buf, &loaded); err != nil {
		t.Fatal(err)
	}
	for _, xi := range x[:10] {
		a, c := b.Score(xi), loaded.Score(xi)
		for k := range a {
			if a[k] != c[k] {
				t.Fatal("fusion scores differ after round trip")
			}
		}
	}
}

func TestBadMagicRejected(t *testing.T) {
	var buf bytes.Buffer
	// Write a gob stream with a wrong header string.
	if err := SaveTo(&buf, 42); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the header by flipping a byte inside the magic string.
	idx := bytes.Index(data, []byte("repro-model"))
	if idx < 0 {
		t.Fatal("magic not found in stream")
	}
	data[idx] ^= 0xff
	var v int
	if err := LoadFrom(bytes.NewReader(data), &v); err == nil {
		t.Fatal("accepted corrupted header")
	}
}

func TestLoadMissingFile(t *testing.T) {
	var v int
	if err := Load(filepath.Join(t.TempDir(), "nope.gob"), &v); err == nil {
		t.Fatal("accepted missing file")
	}
}

func TestSaveAtomicOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := Save(path, 1); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, 2); err != nil {
		t.Fatal(err)
	}
	var v int
	if err := Load(path, &v); err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("loaded %d, want 2", v)
	}
}

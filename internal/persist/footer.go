package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/faultinject"
)

// ErrCorrupt marks every integrity failure this package can detect: a
// checksum mismatch, a torn tail on a sealed file, or a gob stream that
// does not decode. Callers distinguish "the data on disk is bad" (fall
// back to an older copy, recompute, quarantine) from environmental
// errors (missing file, permissions) with errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("persist: data corrupt")

// footerMagic terminates every sealed file. Putting the magic at the very
// end makes sealed files self-describing from the tail: a file that does
// not end in the magic either predates the footer (legacy v1) or lost its
// tail to a torn write.
const footerMagic = "RPRSEAL1"

// footerSize is the fixed footer layout appended after the payload:
//
//	[ CRC32-IEEE(payload)  4 bytes LE ]
//	[ SHA-256(payload)    32 bytes    ]
//	[ len(payload)         8 bytes LE ]
//	[ footerMagic          8 bytes    ]
//
// CRC32 is the cheap first-line check; SHA-256 catches the multi-bit and
// splice corruptions CRC32 can alias on.
const footerSize = 4 + sha256.Size + 8 + 8

// Seal appends the integrity footer to a payload. The result is what
// sealed writers put on disk; Unseal verifies and strips it.
func Seal(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+footerSize)
	out = append(out, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	out = append(out, crc[:]...)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(payload)))
	out = append(out, n[:]...)
	return append(out, footerMagic...)
}

// hasFooter reports whether data ends in the sealed-file magic.
func hasFooter(data []byte) bool {
	return len(data) >= footerSize && string(data[len(data)-8:]) == footerMagic
}

// Unseal verifies a sealed byte stream and returns the payload. Every
// failure mode — missing footer, length mismatch, CRC32 or SHA-256
// mismatch — is reported as a wrapped ErrCorrupt.
func Unseal(data []byte) ([]byte, error) {
	if !hasFooter(data) {
		return nil, fmt.Errorf("%w: integrity footer missing (torn tail?)", ErrCorrupt)
	}
	payload := data[:len(data)-footerSize]
	foot := data[len(data)-footerSize:]
	wantCRC := binary.LittleEndian.Uint32(foot[:4])
	wantSHA := foot[4 : 4+sha256.Size]
	wantLen := binary.LittleEndian.Uint64(foot[4+sha256.Size : 4+sha256.Size+8])
	if wantLen != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: footer says %d payload bytes, file holds %d", ErrCorrupt, wantLen, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, fmt.Errorf("%w: CRC32 mismatch", ErrCorrupt)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], wantSHA) {
		return nil, fmt.Errorf("%w: SHA-256 mismatch", ErrCorrupt)
	}
	return payload, nil
}

// MarshalSealed gob-encodes a value (with the sealed-format header) and
// appends the integrity footer — the byte-for-byte content of a file
// written by Save.
func MarshalSealed(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := encodeTo(&buf, magicSealed, v); err != nil {
		return nil, err
	}
	return Seal(buf.Bytes()), nil
}

// UnmarshalSealed verifies and decodes bytes produced by MarshalSealed.
func UnmarshalSealed(data []byte, v any) error {
	return unseal(data, v)
}

// WriteFileAtomic publishes data at path with the write-rename protocol:
// the bytes land in a sibling temp file first, so readers only ever see
// the previous complete file or the new one. faultSite, when non-empty,
// names a faultinject site checked after the temp file is complete but
// before the rename — a fired fault models a crash-before-publish, and
// the destination must be untouched.
func WriteFileAtomic(path string, data []byte, faultSite string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if faultSite != "" {
		if err := faultinject.At(faultSite); err != nil {
			os.Remove(tmp)
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cascade"
	"repro/internal/fusion"
	"repro/internal/ngram"
	"repro/internal/svm"
)

// BundleFormatVersion versions the on-disk bundle layout (manifest.json +
// bundle.gob). Loaders reject other versions instead of guessing.
const BundleFormatVersion = 1

// ManifestName is the JSON sidecar a bundle directory must contain. It is
// written last (atomically), so a directory with a readable manifest always
// holds a complete bundle — reloaders key on it.
const ManifestName = "manifest.json"

// defaultBundleFile is the gob file a manifest points at by default.
const defaultBundleFile = "bundle.gob"

// FrontEndModel is one front-end's complete scoring artifacts: enough to
// turn a phone lattice over that front-end's inventory into a supervector
// (NumPhones/Order rebuild the ngram.Space) and score it (TFLLR + OVR).
type FrontEndModel struct {
	Name      string
	NumPhones int
	Order     int
	// TFLLR is nil when background scaling was disabled at training time.
	TFLLR *ngram.TFLLR
	OVR   *svm.OneVsRest
}

// Bundle is everything the online scoring service loads: the per-front-end
// models plus the optional trial-level fusion backend (trained on dev
// trials with one feature per front-end; class 1 = target).
type Bundle struct {
	Languages []string
	FrontEnds []FrontEndModel
	Fusion    *fusion.Backend
	// Cascade is the optional tier-1 fast-path artifact (designated
	// front-end PRLM + per-duration-tier exit policy; see
	// internal/cascade). Nil when the bundle was exported without one —
	// gob leaves absent fields nil, so legacy bundles load with the
	// cascade disabled. The cascade model carries its own format version,
	// checked by Validate.
	Cascade *cascade.Model
}

// Validate checks the internal consistency a scoring process relies on.
func (b *Bundle) Validate() error {
	if len(b.Languages) == 0 {
		return fmt.Errorf("persist: bundle has no languages")
	}
	if len(b.FrontEnds) == 0 {
		return fmt.Errorf("persist: bundle has no front-ends")
	}
	seen := make(map[string]bool, len(b.FrontEnds))
	for i := range b.FrontEnds {
		fe := &b.FrontEnds[i]
		if fe.Name == "" {
			return fmt.Errorf("persist: front-end %d has no name", i)
		}
		if seen[fe.Name] {
			return fmt.Errorf("persist: duplicate front-end %q", fe.Name)
		}
		seen[fe.Name] = true
		if fe.NumPhones <= 0 || fe.Order < 1 {
			return fmt.Errorf("persist: front-end %q has invalid space %d^%d", fe.Name, fe.NumPhones, fe.Order)
		}
		if fe.OVR == nil || len(fe.OVR.Models) == 0 {
			return fmt.Errorf("persist: front-end %q has no language models", fe.Name)
		}
		if fe.OVR.NumClasses != len(b.Languages) {
			return fmt.Errorf("persist: front-end %q scores %d classes, bundle lists %d languages",
				fe.Name, fe.OVR.NumClasses, len(b.Languages))
		}
	}
	if c := b.Cascade; c != nil {
		if err := c.Validate(); err != nil {
			return err
		}
		if len(c.LM.Models) != len(b.Languages) {
			return fmt.Errorf("persist: cascade scores %d languages, bundle lists %d",
				len(c.LM.Models), len(b.Languages))
		}
		found := false
		for i := range b.FrontEnds {
			if b.FrontEnds[i].Name == c.FrontEnd {
				if b.FrontEnds[i].NumPhones != c.NumPhones {
					return fmt.Errorf("persist: cascade front-end %q has %d phones, bundle's has %d",
						c.FrontEnd, c.NumPhones, b.FrontEnds[i].NumPhones)
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("persist: cascade names front-end %q, not in the bundle", c.FrontEnd)
		}
	}
	return nil
}

// Manifest is the human- and ops-readable description of a bundle
// directory: where the models came from and what they contain.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	CreatedAt     string `json:"created_at,omitempty"` // RFC 3339
	// Training provenance.
	Seed        uint64 `json:"seed"`
	Scale       string `json:"scale,omitempty"`
	GitDescribe string `json:"git_describe,omitempty"`
	// Contents summary (filled by SaveBundle from the bundle itself).
	FrontEnds    []string `json:"front_ends"`
	NumLanguages int      `json:"num_languages"`
	Fusion       bool     `json:"fusion"`
	// Cascade names the tier-1 fast path's designated front-end when the
	// bundle carries a cascade model; empty otherwise.
	Cascade    string `json:"cascade,omitempty"`
	BundleFile string `json:"bundle_file"`
	// BundleSHA256 is the hex SHA-256 of the complete (sealed) bundle
	// file, recorded at export time; LoadBundle re-verifies it, so a
	// manifest/bundle mismatch (partial copy, wrong file swapped in) is
	// caught even when each file is individually well-formed. Empty in
	// bundles written before the field existed — then only the bundle
	// file's own integrity footer applies.
	BundleSHA256 string `json:"bundle_sha256,omitempty"`
	// Cluster shard provenance (zero/empty outside internal/cluster
	// deployments). ClusterGeneration is the coordinator fleet generation
	// this bundle was distributed under — shard workers refuse scoring
	// requests routed for a different generation, so a scatter–gather
	// request never fuses scores from mixed model generations. ShardOf
	// names the coordinator's bundle (its SHA-256) the shard was split
	// from.
	ClusterGeneration int64  `json:"cluster_generation,omitempty"`
	ShardOf           string `json:"shard_of,omitempty"`
}

// SaveBundle writes a bundle directory: bundle.gob first, manifest.json
// last (both atomically), so concurrent readers either see the previous
// complete bundle or the new one, never a torn mix. The manifest's
// contents-summary fields are overwritten from the bundle.
func SaveBundle(dir string, b *Bundle, m Manifest) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: bundle dir: %w", err)
	}
	m.FormatVersion = BundleFormatVersion
	m.BundleFile = defaultBundleFile
	m.FrontEnds = m.FrontEnds[:0]
	for i := range b.FrontEnds {
		m.FrontEnds = append(m.FrontEnds, b.FrontEnds[i].Name)
	}
	m.NumLanguages = len(b.Languages)
	m.Fusion = b.Fusion != nil
	m.Cascade = ""
	if b.Cascade != nil {
		m.Cascade = b.Cascade.FrontEnd
	}
	sealed, err := MarshalSealed(b)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(sealed)
	m.BundleSHA256 = hex.EncodeToString(sum[:])
	if err := WriteFileAtomic(filepath.Join(dir, m.BundleFile), sealed, "persist.save"); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: manifest: %w", err)
	}
	if err := WriteFileAtomic(filepath.Join(dir, ManifestName), append(data, '\n'), ""); err != nil {
		return fmt.Errorf("persist: manifest: %w", err)
	}
	return nil
}

// LoadBundle reads and validates a bundle directory written by SaveBundle.
func LoadBundle(dir string) (*Bundle, *Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, nil, fmt.Errorf("persist: manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, nil, fmt.Errorf("persist: manifest: %w", err)
	}
	if m.FormatVersion != BundleFormatVersion {
		return nil, nil, fmt.Errorf("persist: bundle format %d (want %d)", m.FormatVersion, BundleFormatVersion)
	}
	file := m.BundleFile
	if file == "" {
		file = defaultBundleFile
	}
	if m.BundleSHA256 != "" {
		raw, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			return nil, nil, fmt.Errorf("persist: bundle %s: %w", file, err)
		}
		sum := sha256.Sum256(raw)
		if hex.EncodeToString(sum[:]) != m.BundleSHA256 {
			return nil, nil, fmt.Errorf("persist: bundle %s does not match the manifest's SHA-256 (%w)", file, ErrCorrupt)
		}
	}
	var b Bundle
	if err := Load(filepath.Join(dir, file), &b); err != nil {
		return nil, nil, fmt.Errorf("persist: bundle %s: %w", file, err)
	}
	if err := b.Validate(); err != nil {
		return nil, nil, err
	}
	return &b, &m, nil
}

package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cascade"
	"repro/internal/fusion"
	"repro/internal/ngram"
	"repro/internal/proj"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// BundleFormatVersion versions the on-disk bundle layout (manifest.json +
// bundle.gob). Loaders reject other versions instead of guessing.
const BundleFormatVersion = 1

// ManifestName is the JSON sidecar a bundle directory must contain. It is
// written last (atomically), so a directory with a readable manifest always
// holds a complete bundle — reloaders key on it.
const ManifestName = "manifest.json"

// defaultBundleFile is the gob file a manifest points at by default.
const defaultBundleFile = "bundle.gob"

// FrontEndModel is one front-end's complete scoring artifacts: enough to
// turn a phone lattice over that front-end's inventory into a supervector
// (NumPhones/Order rebuild the ngram.Space) and score it (TFLLR + OVR).
type FrontEndModel struct {
	Name      string
	NumPhones int
	Order     int
	// TFLLR is nil when background scaling was disabled at training time.
	TFLLR *ngram.TFLLR
	// OVR holds the float64 one-vs-rest models. In a compressed int8
	// bundle it is nil — Quant replaces it — and in a projected
	// float64/float32 bundle its weights live in the rank-r space (so
	// they are tiny; the basis in Proj dominates). All three compression
	// fields are gob-additive: bundles written before they existed decode
	// with them nil and score exactly as they always did.
	OVR *svm.OneVsRest
	// Proj, when non-nil, is the trained low-rank projection applied to
	// TFLLR-scaled supervectors before scoring; the weight space is then
	// Proj.Rank-dimensional.
	Proj *proj.Packed
	// Quant is the int8 quantized scoring kernel (precision "int8"); the
	// bundle then ships no float64 weights for this front-end.
	Quant *svm.Quantized
	// Precision is the scoring precision ("" or "float64", "float32",
	// "int8") the bundle was exported for; the serve layer dispatches the
	// packed kernel on it.
	Precision string
}

// SpaceDim returns the raw supervector dimensionality of the front-end's
// n-gram space (what a request's supervector indices are checked
// against, whether or not the bundle projects).
func (fe *FrontEndModel) SpaceDim() int {
	return ngram.NewSpace(fe.NumPhones, fe.Order).Dim()
}

// WeightDim returns the dimensionality of the scoring weight space:
// Proj.Rank for projected bundles, the raw space dimension otherwise.
func (fe *FrontEndModel) WeightDim() int {
	if fe.Proj != nil {
		return fe.Proj.Rank
	}
	return fe.SpaceDim()
}

// NumClasses returns how many languages the front-end scores.
func (fe *FrontEndModel) NumClasses() int {
	if fe.Quant != nil {
		return fe.Quant.NumClasses
	}
	if fe.OVR != nil {
		return fe.OVR.NumClasses
	}
	return 0
}

// ScoresInto scores a supervector already in the front-end's weight
// space (projected if Proj is set) against every language, dispatching
// on the bundle's precision: the int8 kernel when Quant is present,
// otherwise the float64/float32 packed OVR kernel. out must have
// NumClasses elements.
func (fe *FrontEndModel) ScoresInto(x *sparse.Vector, out []float64) []float64 {
	if fe.Quant != nil {
		return fe.Quant.ScoresInto(x, out)
	}
	prec, err := svm.ParsePrecision(fe.Precision)
	if err != nil {
		prec = svm.Float64 // Validate rejects unknown precisions at load
	}
	return fe.OVR.ScoresAtInto(prec, x, out)
}

// Scores is ScoresInto with a fresh output row.
func (fe *FrontEndModel) Scores(x *sparse.Vector) []float64 {
	return fe.ScoresInto(x, make([]float64, fe.NumClasses()))
}

// PackedBytes reports the in-memory footprint of the front-end's scoring
// artifacts once packed (projection basis + weight kernel), for the
// serve layer's model-footprint gauges.
func (fe *FrontEndModel) PackedBytes() int {
	n := fe.Proj.Bytes()
	if fe.Quant != nil {
		n += fe.Quant.Bytes()
	} else if fe.OVR != nil {
		// The packed float64 block the kernel builds lazily.
		n += fe.WeightDim()*fe.OVR.NumClasses*8 + fe.OVR.NumClasses*8
	}
	return n
}

// Bundle is everything the online scoring service loads: the per-front-end
// models plus the optional trial-level fusion backend (trained on dev
// trials with one feature per front-end; class 1 = target).
type Bundle struct {
	Languages []string
	FrontEnds []FrontEndModel
	Fusion    *fusion.Backend
	// Cascade is the optional tier-1 fast-path artifact (designated
	// front-end PRLM + per-duration-tier exit policy; see
	// internal/cascade). Nil when the bundle was exported without one —
	// gob leaves absent fields nil, so legacy bundles load with the
	// cascade disabled. The cascade model carries its own format version,
	// checked by Validate.
	Cascade *cascade.Model
}

// Validate checks the internal consistency a scoring process relies on.
func (b *Bundle) Validate() error {
	if len(b.Languages) == 0 {
		return fmt.Errorf("persist: bundle has no languages")
	}
	if len(b.FrontEnds) == 0 {
		return fmt.Errorf("persist: bundle has no front-ends")
	}
	seen := make(map[string]bool, len(b.FrontEnds))
	for i := range b.FrontEnds {
		fe := &b.FrontEnds[i]
		if fe.Name == "" {
			return fmt.Errorf("persist: front-end %d has no name", i)
		}
		if seen[fe.Name] {
			return fmt.Errorf("persist: duplicate front-end %q", fe.Name)
		}
		seen[fe.Name] = true
		if fe.NumPhones <= 0 || fe.Order < 1 {
			return fmt.Errorf("persist: front-end %q has invalid space %d^%d", fe.Name, fe.NumPhones, fe.Order)
		}
		prec, err := svm.ParsePrecision(fe.Precision)
		if err != nil {
			return fmt.Errorf("persist: front-end %q: %w", fe.Name, err)
		}
		if fe.Quant != nil {
			if err := fe.Quant.Validate(); err != nil {
				return fmt.Errorf("persist: front-end %q: %w", fe.Name, err)
			}
			if prec != svm.Int8 {
				return fmt.Errorf("persist: front-end %q carries an int8 kernel but precision %q", fe.Name, fe.Precision)
			}
			if fe.Quant.NumClasses != len(b.Languages) {
				return fmt.Errorf("persist: front-end %q scores %d classes, bundle lists %d languages",
					fe.Name, fe.Quant.NumClasses, len(b.Languages))
			}
		} else {
			if prec == svm.Int8 {
				return fmt.Errorf("persist: front-end %q declares int8 precision but has no quantized kernel", fe.Name)
			}
			if fe.OVR == nil || len(fe.OVR.Models) == 0 {
				return fmt.Errorf("persist: front-end %q has no language models", fe.Name)
			}
			if fe.OVR.NumClasses != len(b.Languages) {
				return fmt.Errorf("persist: front-end %q scores %d classes, bundle lists %d languages",
					fe.Name, fe.OVR.NumClasses, len(b.Languages))
			}
		}
		if fe.Proj != nil {
			if err := fe.Proj.Validate(); err != nil {
				return fmt.Errorf("persist: front-end %q: %w", fe.Name, err)
			}
			if d := fe.SpaceDim(); fe.Proj.Dim != d {
				return fmt.Errorf("persist: front-end %q projection covers a %d-dim space, front-end's is %d-dim",
					fe.Name, fe.Proj.Dim, d)
			}
		}
		// The weight space must match what scoring will feed it — a
		// rank/dimension mismatch here would otherwise surface as silent
		// truncation (the packed kernels break at their Dim) or a panic.
		if fe.Quant != nil {
			if fe.Quant.Dim != fe.WeightDim() {
				return fmt.Errorf("persist: front-end %q int8 kernel expects %d-dim inputs, scoring will feed %d",
					fe.Name, fe.Quant.Dim, fe.WeightDim())
			}
		} else {
			for c, mdl := range fe.OVR.Models {
				if mdl == nil {
					return fmt.Errorf("persist: front-end %q class %d model missing", fe.Name, c)
				}
				if len(mdl.W) != fe.WeightDim() {
					return fmt.Errorf("persist: front-end %q class %d weights are %d-dim, scoring will feed %d",
						fe.Name, c, len(mdl.W), fe.WeightDim())
				}
			}
		}
	}
	if c := b.Cascade; c != nil {
		if err := c.Validate(); err != nil {
			return err
		}
		if len(c.LM.Models) != len(b.Languages) {
			return fmt.Errorf("persist: cascade scores %d languages, bundle lists %d",
				len(c.LM.Models), len(b.Languages))
		}
		found := false
		for i := range b.FrontEnds {
			if b.FrontEnds[i].Name == c.FrontEnd {
				if b.FrontEnds[i].NumPhones != c.NumPhones {
					return fmt.Errorf("persist: cascade front-end %q has %d phones, bundle's has %d",
						c.FrontEnd, c.NumPhones, b.FrontEnds[i].NumPhones)
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("persist: cascade names front-end %q, not in the bundle", c.FrontEnd)
		}
	}
	return nil
}

// Manifest is the human- and ops-readable description of a bundle
// directory: where the models came from and what they contain.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	CreatedAt     string `json:"created_at,omitempty"` // RFC 3339
	// Training provenance.
	Seed        uint64 `json:"seed"`
	Scale       string `json:"scale,omitempty"`
	GitDescribe string `json:"git_describe,omitempty"`
	// Contents summary (filled by SaveBundle from the bundle itself).
	FrontEnds    []string `json:"front_ends"`
	NumLanguages int      `json:"num_languages"`
	Fusion       bool     `json:"fusion"`
	// Cascade names the tier-1 fast path's designated front-end when the
	// bundle carries a cascade model; empty otherwise.
	Cascade string `json:"cascade,omitempty"`
	// FrontEndDims records each front-end's feature-space geometry: the
	// raw supervector dimensionality, the projection rank (0 when the
	// bundle is unprojected), and the scoring precision. LoadBundle
	// cross-checks these against the decoded bundle, so a manifest paired
	// with the wrong bundle — or a bundle whose projection rank disagrees
	// with what the manifest (and hence the registry's active generation)
	// advertises — is rejected at load instead of surfacing as silent
	// truncation or a kernel panic at score time. Empty in manifests
	// written before the field existed.
	FrontEndDims []FrontEndDims `json:"front_end_dims,omitempty"`
	BundleFile   string         `json:"bundle_file"`
	// BundleSHA256 is the hex SHA-256 of the complete (sealed) bundle
	// file, recorded at export time; LoadBundle re-verifies it, so a
	// manifest/bundle mismatch (partial copy, wrong file swapped in) is
	// caught even when each file is individually well-formed. Empty in
	// bundles written before the field existed — then only the bundle
	// file's own integrity footer applies.
	BundleSHA256 string `json:"bundle_sha256,omitempty"`
	// AdaptFile names the self-training sidecar (adapt.gob) exported
	// alongside the bundle: frozen train/holdout supervectors, vote
	// calibration, and the pinned referee scores internal/adapt's gates
	// check candidates against. Empty in bundles exported without one —
	// such bundles serve normally but cannot self-train.
	AdaptFile string `json:"adapt_file,omitempty"`
	// AdaptGeneration is the online-adaptation generation this bundle was
	// promoted as (see internal/adapt); zero for base exports.
	AdaptGeneration int64 `json:"adapt_generation,omitempty"`
	// Cluster shard provenance (zero/empty outside internal/cluster
	// deployments). ClusterGeneration is the coordinator fleet generation
	// this bundle was distributed under — shard workers refuse scoring
	// requests routed for a different generation, so a scatter–gather
	// request never fuses scores from mixed model generations. ShardOf
	// names the coordinator's bundle (its SHA-256) the shard was split
	// from.
	ClusterGeneration int64  `json:"cluster_generation,omitempty"`
	ShardOf           string `json:"shard_of,omitempty"`
}

// FrontEndDims is one front-end's feature-space geometry in the
// manifest: the contract a scoring process checks requests and weight
// kernels against.
type FrontEndDims struct {
	Name string `json:"name"`
	// Dim is the raw supervector dimensionality of the n-gram space.
	Dim int `json:"dim"`
	// Rank is the low-rank projection's output dimension; 0 means the
	// bundle scores in the raw space.
	Rank int `json:"rank,omitempty"`
	// Precision is the scoring precision ("float64" when unset in the
	// bundle).
	Precision string `json:"precision,omitempty"`
}

// StampContents overwrites the manifest's contents-summary fields
// (front-end list, language count, fusion/cascade flags, per-front-end
// dims) from the bundle. SaveBundle calls it; the cluster coordinator
// reuses it when it cuts per-worker sub-bundles so every shard manifest
// advertises exactly the geometry of the shard it accompanies.
func (m *Manifest) StampContents(b *Bundle) {
	m.FrontEnds = m.FrontEnds[:0]
	m.FrontEndDims = m.FrontEndDims[:0]
	for i := range b.FrontEnds {
		fe := &b.FrontEnds[i]
		m.FrontEnds = append(m.FrontEnds, fe.Name)
		d := FrontEndDims{Name: fe.Name, Dim: fe.SpaceDim(), Precision: precisionOf(fe)}
		if fe.Proj != nil {
			d.Rank = fe.Proj.Rank
		}
		m.FrontEndDims = append(m.FrontEndDims, d)
	}
	m.NumLanguages = len(b.Languages)
	m.Fusion = b.Fusion != nil
	m.Cascade = ""
	if b.Cascade != nil {
		m.Cascade = b.Cascade.FrontEnd
	}
}

// precisionOf normalizes a front-end's precision for the manifest
// (legacy bundles leave the field empty, which means float64).
func precisionOf(fe *FrontEndModel) string {
	if fe.Precision == "" {
		return svm.Float64.String()
	}
	return fe.Precision
}

// checkDims verifies a manifest's recorded geometry against the decoded
// bundle. A mismatch means the manifest belongs to a different bundle
// (partial copy, wrong generation swapped in) — rejected as corruption,
// because scoring against it would truncate or panic.
func checkDims(m *Manifest, b *Bundle) error {
	if len(m.FrontEndDims) == 0 {
		return nil // pre-field manifest: only the SHA/footer checks apply
	}
	if len(m.FrontEndDims) != len(b.FrontEnds) {
		return fmt.Errorf("persist: manifest records %d front-end geometries, bundle has %d (%w)",
			len(m.FrontEndDims), len(b.FrontEnds), ErrCorrupt)
	}
	for i := range b.FrontEnds {
		fe := &b.FrontEnds[i]
		d := m.FrontEndDims[i]
		if d.Name != fe.Name {
			return fmt.Errorf("persist: manifest front-end %d is %q, bundle has %q (%w)", i, d.Name, fe.Name, ErrCorrupt)
		}
		if d.Dim != fe.SpaceDim() {
			return fmt.Errorf("persist: front-end %q: manifest records a %d-dim space, bundle's is %d-dim (%w)",
				fe.Name, d.Dim, fe.SpaceDim(), ErrCorrupt)
		}
		rank := 0
		if fe.Proj != nil {
			rank = fe.Proj.Rank
		}
		if d.Rank != rank {
			return fmt.Errorf("persist: front-end %q: manifest records projection rank %d, bundle carries %d (%w)",
				fe.Name, d.Rank, rank, ErrCorrupt)
		}
		if d.Precision != "" && d.Precision != precisionOf(fe) {
			return fmt.Errorf("persist: front-end %q: manifest records precision %s, bundle carries %s (%w)",
				fe.Name, d.Precision, precisionOf(fe), ErrCorrupt)
		}
	}
	return nil
}

// SaveBundle writes a bundle directory: bundle.gob first, manifest.json
// last (both atomically), so concurrent readers either see the previous
// complete bundle or the new one, never a torn mix. The manifest's
// contents-summary fields are overwritten from the bundle.
func SaveBundle(dir string, b *Bundle, m Manifest) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: bundle dir: %w", err)
	}
	m.FormatVersion = BundleFormatVersion
	m.BundleFile = defaultBundleFile
	m.StampContents(b)
	sealed, err := MarshalSealed(b)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(sealed)
	m.BundleSHA256 = hex.EncodeToString(sum[:])
	if err := WriteFileAtomic(filepath.Join(dir, m.BundleFile), sealed, "persist.save"); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: manifest: %w", err)
	}
	if err := WriteFileAtomic(filepath.Join(dir, ManifestName), append(data, '\n'), ""); err != nil {
		return fmt.Errorf("persist: manifest: %w", err)
	}
	return nil
}

// LoadBundle reads and validates a bundle directory written by SaveBundle.
func LoadBundle(dir string) (*Bundle, *Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, nil, fmt.Errorf("persist: manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, nil, fmt.Errorf("persist: manifest: %w", err)
	}
	if m.FormatVersion != BundleFormatVersion {
		return nil, nil, fmt.Errorf("persist: bundle format %d (want %d)", m.FormatVersion, BundleFormatVersion)
	}
	file := m.BundleFile
	if file == "" {
		file = defaultBundleFile
	}
	if m.BundleSHA256 != "" {
		raw, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			return nil, nil, fmt.Errorf("persist: bundle %s: %w", file, err)
		}
		sum := sha256.Sum256(raw)
		if hex.EncodeToString(sum[:]) != m.BundleSHA256 {
			return nil, nil, fmt.Errorf("persist: bundle %s does not match the manifest's SHA-256 (%w)", file, ErrCorrupt)
		}
	}
	var b Bundle
	if err := Load(filepath.Join(dir, file), &b); err != nil {
		return nil, nil, fmt.Errorf("persist: bundle %s: %w", file, err)
	}
	if err := b.Validate(); err != nil {
		return nil, nil, err
	}
	if err := checkDims(&m, &b); err != nil {
		return nil, nil, err
	}
	return &b, &m, nil
}

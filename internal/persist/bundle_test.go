package persist

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fusion"
	"repro/internal/ngram"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/svm"
)

// trainedBundle builds a small but fully populated bundle — every type a
// scoring process loads (TFLLR scalers, OVR sets, fusion backend) — plus
// held-out vectors to compare scores on after the round trip.
func trainedBundle(t *testing.T, seed uint64) (*Bundle, []*sparse.Vector) {
	t.Helper()
	const (
		numPhones = 4
		order     = 2
		langs     = 3
	)
	space := ngram.NewSpace(numPhones, order)
	r := rng.New(seed)
	b := &Bundle{Languages: []string{"aa", "bb", "cc"}}
	var probes []*sparse.Vector
	var feScores [][][]float64
	var labels []int
	for f := 0; f < 2; f++ {
		var xs []*sparse.Vector
		labels = labels[:0]
		for i := 0; i < 45; i++ {
			k := i % langs
			xs = append(xs, sparse.FromMap(map[int32]float64{
				int32(k * 5):                   2 + 0.3*r.Norm(),
				int32(r.Intn(space.Dim())):     r.Float64(),
				int32((k*5 + f) % space.Dim()): 1,
			}))
			labels = append(labels, k)
		}
		tf := ngram.EstimateTFLLR(xs, space.Dim(), 1e-5)
		for _, v := range xs {
			tf.Apply(v)
		}
		b.FrontEnds = append(b.FrontEnds, FrontEndModel{
			Name:      "FE" + string(rune('A'+f)),
			NumPhones: numPhones,
			Order:     order,
			TFLLR:     tf,
			OVR:       svm.TrainOneVsRest(xs, labels, langs, space.Dim(), svm.DefaultOptions()),
		})
		if f == 0 {
			probes = xs[:8]
		}
		rows := make([][]float64, len(xs))
		for i, v := range xs {
			rows[i] = b.FrontEnds[f].OVR.Scores(v)
		}
		feScores = append(feScores, rows)
	}
	var devX [][]float64
	var devY []int
	for i := range labels {
		for k := 0; k < langs; k++ {
			devX = append(devX, []float64{feScores[0][i][k], feScores[1][i][k]})
			y := 0
			if labels[i] == k {
				y = 1
			}
			devY = append(devY, y)
		}
	}
	bk, err := fusion.Train(devX, devY, 2, fusion.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.Fusion = bk
	return b, probes
}

func TestBundleRoundTripAllTypes(t *testing.T) {
	b, probes := trainedBundle(t, 1)
	dir := t.TempDir()
	if err := SaveBundle(dir, b, Manifest{Seed: 1, Scale: "test", GitDescribe: "abc123"}); err != nil {
		t.Fatal(err)
	}

	lb, m, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Manifest: provenance preserved, contents summary derived.
	if m.FormatVersion != BundleFormatVersion {
		t.Fatalf("format version %d", m.FormatVersion)
	}
	if m.Seed != 1 || m.Scale != "test" || m.GitDescribe != "abc123" {
		t.Fatalf("provenance lost: %+v", m)
	}
	if len(m.FrontEnds) != 2 || m.NumLanguages != 3 || !m.Fusion {
		t.Fatalf("contents summary wrong: %+v", m)
	}

	// Bundle: structure intact.
	if len(lb.Languages) != 3 || len(lb.FrontEnds) != 2 || lb.Fusion == nil {
		t.Fatal("bundle structure lost in round trip")
	}
	for f := range b.FrontEnds {
		want, got := &b.FrontEnds[f], &lb.FrontEnds[f]
		if got.Name != want.Name || got.NumPhones != want.NumPhones || got.Order != want.Order {
			t.Fatalf("front-end %d metadata changed: %+v", f, got)
		}
		if got.TFLLR == nil {
			t.Fatalf("front-end %d lost its TFLLR scaler", f)
		}
	}

	// Every loaded type must score identically to the original.
	for _, v := range probes {
		for f := range b.FrontEnds {
			a, c := b.FrontEnds[f].OVR.Scores(v), lb.FrontEnds[f].OVR.Scores(v)
			for k := range a {
				if a[k] != c[k] {
					t.Fatalf("front-end %d OVR scores differ after round trip", f)
				}
			}
		}
		raw := v.Clone()
		b.FrontEnds[0].TFLLR.Apply(raw)
		raw2 := v.Clone()
		lb.FrontEnds[0].TFLLR.Apply(raw2)
		if len(raw.Val) != len(raw2.Val) {
			t.Fatal("TFLLR output shape changed")
		}
		for i := range raw.Val {
			if raw.Val[i] != raw2.Val[i] {
				t.Fatal("TFLLR scaling differs after round trip")
			}
		}
	}
	x := []float64{0.4, -0.2}
	a, c := b.Fusion.Score(x), lb.Fusion.Score(x)
	for k := range a {
		if a[k] != c[k] {
			t.Fatal("fusion scores differ after round trip")
		}
	}
}

func TestBundleTruncatedFileIsWrappedError(t *testing.T) {
	b, _ := trainedBundle(t, 2)
	dir := t.TempDir()
	if err := SaveBundle(dir, b, Manifest{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bundle.gob")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the gob body mid-stream (past the header so the magic check
	// passes) at several depths: every cut must surface as a wrapped
	// "persist:" error, never a panic.
	for _, frac := range []float64{0.3, 0.7, 0.95} {
		n := int(float64(len(data)) * frac)
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := LoadBundle(dir)
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes loaded successfully", n, len(data))
		}
		if !strings.Contains(err.Error(), "persist:") {
			t.Fatalf("truncation error not wrapped: %v", err)
		}
	}
}

func TestBundleCorruptByteIsErrCorrupt(t *testing.T) {
	b, _ := trainedBundle(t, 7)
	dir := t.TempDir()
	if err := SaveBundle(dir, b, Manifest{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bundle.gob")
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte at several depths — payload, near the footer, inside
	// the footer. Each must be detected as ErrCorrupt (by the manifest's
	// bundle SHA-256 and again by the file's own footer).
	for _, frac := range []float64{0.1, 0.5, 0.999} {
		data := append([]byte(nil), orig...)
		data[int(float64(len(data))*frac)] ^= 0x20
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := LoadBundle(dir)
		if err == nil {
			t.Fatalf("flipped byte at %.0f%% loaded successfully", frac*100)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flipped byte at %.0f%%: error %v is not ErrCorrupt", frac*100, err)
		}
	}
}

func TestBundleTornTailIsErrCorrupt(t *testing.T) {
	b, _ := trainedBundle(t, 8)
	dir := t.TempDir()
	if err := SaveBundle(dir, b, Manifest{Seed: 8}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bundle.gob")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadBundle(dir)
	if err == nil {
		t.Fatal("torn bundle loaded successfully")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn-tail error %v is not ErrCorrupt", err)
	}
}

func TestBundleLegacyManifestWithoutSHALoads(t *testing.T) {
	// Bundles exported before BundleSHA256 existed have no hash in the
	// manifest; they must still load (the file's own footer still applies).
	b, _ := trainedBundle(t, 9)
	dir := t.TempDir()
	if err := SaveBundle(dir, b, Manifest{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "bundle_sha256")
	stripped, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, stripped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadBundle(dir); err != nil {
		t.Fatalf("manifest without bundle_sha256 failed to load: %v", err)
	}
}

func TestLoadBundleRejectsBadFormatVersion(t *testing.T) {
	b, _ := trainedBundle(t, 3)
	dir := t.TempDir()
	if err := SaveBundle(dir, b, Manifest{}); err != nil {
		t.Fatal(err)
	}
	mf := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), `"format_version": 1`, `"format_version": 99`, 1)
	if bad == string(data) {
		t.Fatal("manifest fixture did not contain the format version")
	}
	if err := os.WriteFile(mf, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadBundle(dir); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("format version 99 accepted: %v", err)
	}
}

func TestLoadBundleMissingPieces(t *testing.T) {
	// No manifest at all.
	if _, _, err := LoadBundle(t.TempDir()); err == nil {
		t.Fatal("empty directory loaded as a bundle")
	}
	// Manifest present but bundle file missing.
	b, _ := trainedBundle(t, 4)
	dir := t.TempDir()
	if err := SaveBundle(dir, b, Manifest{}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "bundle.gob")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadBundle(dir); err == nil || !strings.Contains(err.Error(), "persist:") {
		t.Fatalf("missing bundle file: %v", err)
	}
}

func TestSaveBundleRejectsInvalid(t *testing.T) {
	b, _ := trainedBundle(t, 5)
	dir := t.TempDir()
	bad := &Bundle{Languages: b.Languages} // no front-ends
	if err := SaveBundle(dir, bad, Manifest{}); err == nil {
		t.Fatal("bundle without front-ends saved")
	}
	// Class-count mismatch between OVR and the language list.
	bad2 := &Bundle{Languages: []string{"only-one"}, FrontEnds: b.FrontEnds}
	if err := SaveBundle(dir, bad2, Manifest{}); err == nil {
		t.Fatal("class/language mismatch saved")
	}
}

package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// saveGen exports one trained bundle into root/<name> (or the root for
// BaseGenDir), the layout a promotion stages.
func saveGen(t *testing.T, root, name string, seed uint64) {
	t.Helper()
	b, _ := trainedBundle(t, seed)
	dir := root
	if name != BaseGenDir {
		dir = filepath.Join(root, name)
	}
	if err := SaveBundle(dir, b, Manifest{Seed: seed, Scale: "test"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenPointerRoundTrip(t *testing.T) {
	root := t.TempDir()
	want := GenPointer{Generation: 3, Dir: GenDirName(3), BundleSHA256: "abc", LastKnownGood: GenDirName(2)}
	if err := WriteCurrent(root, want, ""); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCurrent(root)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip %+v != %+v", got, want)
	}
}

func TestReadCurrentMissingAndCorrupt(t *testing.T) {
	root := t.TempDir()
	if _, err := ReadCurrent(root); !os.IsNotExist(err) {
		t.Fatalf("missing CURRENT: %v, want not-exist", err)
	}
	// A torn pointer (truncated mid-seal) is ErrCorrupt, not garbage.
	if err := WriteCurrent(root, GenPointer{Generation: 1, Dir: GenDirName(1)}, ""); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, CurrentName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCurrent(root); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn CURRENT: %v, want ErrCorrupt", err)
	}
	if err := WriteCurrent(root, GenPointer{Generation: 1, Dir: ""}, ""); err == nil {
		t.Fatal("pointer naming no directory accepted")
	}
}

func TestParseGeneration(t *testing.T) {
	cases := []struct {
		name string
		gen  int64
		ok   bool
	}{
		{GenDirName(7), 7, true},
		{"quarantine-" + GenDirName(12), 12, true},
		{"gen-", 0, false},
		{"gen-x", 0, false},
		{"bundle.gob", 0, false},
		{BaseGenDir, 0, false},
	}
	for _, tc := range cases {
		g, ok := ParseGeneration(tc.name)
		if ok != tc.ok || (ok && g != tc.gen) {
			t.Errorf("ParseGeneration(%q) = %d,%v, want %d,%v", tc.name, g, ok, tc.gen, tc.ok)
		}
	}
}

func TestResolveBundleLegacyRoot(t *testing.T) {
	root := t.TempDir()
	saveGen(t, root, BaseGenDir, 1)
	_, _, info, err := ResolveBundle(root)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 0 || info.DirName != BaseGenDir || info.Fallback {
		t.Fatalf("legacy root resolved as %+v", info)
	}
}

func TestResolveBundlePointerTarget(t *testing.T) {
	root := t.TempDir()
	saveGen(t, root, BaseGenDir, 1)
	saveGen(t, root, GenDirName(1), 2)
	if err := WriteCurrent(root, GenPointer{Generation: 1, Dir: GenDirName(1), LastKnownGood: BaseGenDir}, ""); err != nil {
		t.Fatal(err)
	}
	_, m, info, err := ResolveBundle(root)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 || info.DirName != GenDirName(1) || info.Fallback {
		t.Fatalf("resolved %+v", info)
	}
	if info.LastKnownGood != BaseGenDir {
		t.Fatalf("last-known-good %q", info.LastKnownGood)
	}
	if m.Seed != 2 {
		t.Fatalf("loaded seed %d, want the generation's bundle", m.Seed)
	}
}

func TestResolveBundleFallsBackToLastKnownGood(t *testing.T) {
	root := t.TempDir()
	saveGen(t, root, BaseGenDir, 1)
	saveGen(t, root, GenDirName(1), 2)
	// The pointer names a generation that was never written (torn
	// promotion); its recorded last-known-good must serve.
	if err := WriteCurrent(root, GenPointer{Generation: 2, Dir: GenDirName(2), LastKnownGood: GenDirName(1)}, ""); err != nil {
		t.Fatal(err)
	}
	_, m, info, err := ResolveBundle(root)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fallback || info.Generation != 1 || m.Seed != 2 {
		t.Fatalf("resolved %+v (seed %d), want fallback to gen 1", info, m.Seed)
	}
}

func TestResolveBundleCorruptPointerFallsBackNewestFirst(t *testing.T) {
	root := t.TempDir()
	saveGen(t, root, BaseGenDir, 1)
	saveGen(t, root, GenDirName(1), 2)
	saveGen(t, root, GenDirName(2), 3)
	if err := os.WriteFile(filepath.Join(root, CurrentName), []byte("not a sealed pointer"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, m, info, err := ResolveBundle(root)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fallback || info.Generation != 2 || m.Seed != 3 {
		t.Fatalf("resolved %+v (seed %d), want newest generation", info, m.Seed)
	}
}

func TestResolveBundleFallsBackToBase(t *testing.T) {
	root := t.TempDir()
	saveGen(t, root, BaseGenDir, 1)
	// Pointer to a missing generation, no LKG, no other generations.
	if err := WriteCurrent(root, GenPointer{Generation: 5, Dir: GenDirName(5)}, ""); err != nil {
		t.Fatal(err)
	}
	_, _, info, err := ResolveBundle(root)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fallback || info.Generation != 0 || info.DirName != BaseGenDir {
		t.Fatalf("resolved %+v, want base fallback", info)
	}
	// Nothing loadable anywhere is an error, not a nil bundle.
	empty := t.TempDir()
	if err := WriteCurrent(empty, GenPointer{Generation: 1, Dir: GenDirName(1)}, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ResolveBundle(empty); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty root resolved: %v", err)
	}
}

func TestQuarantineGeneration(t *testing.T) {
	root := t.TempDir()
	saveGen(t, root, GenDirName(1), 1)
	q, err := QuarantineGeneration(root, GenDirName(1))
	if err != nil {
		t.Fatal(err)
	}
	if q != "quarantine-"+GenDirName(1) {
		t.Fatalf("quarantined as %q", q)
	}
	if got := ListGenerations(root); len(got) != 0 {
		t.Fatalf("quarantined generation still listed: %v", got)
	}
	if _, err := QuarantineGeneration(root, q); err == nil {
		t.Fatal("double quarantine accepted")
	}
	if _, err := QuarantineGeneration(root, "bundle.gob"); err == nil {
		t.Fatal("non-generation name accepted")
	}
}

func TestNextGenerationNeverReusesNumbers(t *testing.T) {
	root := t.TempDir()
	if got := NextGeneration(root); got != 1 {
		t.Fatalf("empty root next gen %d, want 1", got)
	}
	if err := os.MkdirAll(filepath.Join(root, GenDirName(2)), 0o755); err != nil {
		t.Fatal(err)
	}
	if got := NextGeneration(root); got != 3 {
		t.Fatalf("next gen %d, want 3", got)
	}
	// A quarantined candidate's number stays burned.
	if err := os.Rename(filepath.Join(root, GenDirName(2)), filepath.Join(root, "quarantine-"+GenDirName(2))); err != nil {
		t.Fatal(err)
	}
	if got := NextGeneration(root); got != 3 {
		t.Fatalf("next gen after quarantine %d, want 3", got)
	}
	// The pointer alone also counts (its target may have been pruned).
	if err := WriteCurrent(root, GenPointer{Generation: 6, Dir: GenDirName(6)}, ""); err != nil {
		t.Fatal(err)
	}
	if got := NextGeneration(root); got != 7 {
		t.Fatalf("next gen from pointer %d, want 7", got)
	}
}

func TestPruneGenerationsPinsSurvive(t *testing.T) {
	root := t.TempDir()
	for g := int64(1); g <= 5; g++ {
		if err := os.MkdirAll(filepath.Join(root, GenDirName(g)), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// keep=1 with gens 5 (serving) and 1 (an old LKG) pinned: 4 is the one
	// kept, 3 and 2 go.
	removed, err := PruneGenerations(root, 1, GenDirName(5), GenDirName(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v", removed)
	}
	var left []string
	for _, e := range ListGenerations(root) {
		left = append(left, e.Name)
	}
	want := []string{GenDirName(5), GenDirName(4), GenDirName(1)}
	if len(left) != len(want) {
		t.Fatalf("surviving %v, want %v", left, want)
	}
	for i := range want {
		if left[i] != want[i] {
			t.Fatalf("surviving %v, want %v", left, want)
		}
	}
}

func TestPruneBoundsQuarantine(t *testing.T) {
	root := t.TempDir()
	for g := int64(1); g <= 4; g++ {
		if err := os.MkdirAll(filepath.Join(root, "quarantine-"+GenDirName(g)), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := PruneGenerations(root, 2); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	// Newest two quarantined candidates survive for forensics.
	want := []string{"quarantine-" + GenDirName(3), "quarantine-" + GenDirName(4)}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("after prune: %v, want %v", names, want)
	}
}

package persist

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cascade"
	"repro/internal/rng"
)

// cascadeFor trains a tiny tier-1 model compatible with trainedBundle's
// fixture (4 phones, 3 languages, front-end "FEA").
func cascadeFor(t *testing.T, b *Bundle) *cascade.Model {
	t.Helper()
	r := rng.New(11)
	numPhones := b.FrontEnds[0].NumPhones
	gen := func(lang, length int) []int {
		seq := make([]int, length)
		for i := range seq {
			if r.Float64() < 0.75 {
				seq[i] = lang % numPhones
			} else {
				seq[i] = r.Intn(numPhones)
			}
		}
		return seq
	}
	train := make([][][]int, len(b.Languages))
	var dev []cascade.DevExample
	for k := range b.Languages {
		for i := 0; i < 12; i++ {
			train[k] = append(train[k], gen(k, 50))
		}
		for i := 0; i < 8; i++ {
			dev = append(dev, cascade.DevExample{Seq: gen(k, 60), Label: k, Tier: 0})
			dev = append(dev, cascade.DevExample{Seq: gen(k, 10), Label: k, Tier: 1})
		}
	}
	m, err := cascade.Train(b.FrontEnds[0].Name, numPhones, train, []string{"30s", "3s"}, dev, cascade.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBundleCascadeRoundTrip(t *testing.T) {
	b, _ := trainedBundle(t, 7)
	b.Cascade = cascadeFor(t, b)
	dir := t.TempDir()
	if err := SaveBundle(dir, b, Manifest{Seed: 7, Scale: "test"}); err != nil {
		t.Fatal(err)
	}
	lb, m, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cascade != b.Cascade.FrontEnd {
		t.Fatalf("manifest cascade %q, want %q", m.Cascade, b.Cascade.FrontEnd)
	}
	if lb.Cascade == nil {
		t.Fatal("cascade lost in round trip")
	}
	if err := lb.Cascade.Validate(); err != nil {
		t.Fatal(err)
	}
	// Decisions — scores, margins, tier assignment, exits — must be
	// bit-identical after the round trip at several thresholds.
	r := rng.New(13)
	for trial := 0; trial < 20; trial++ {
		seq := make([]int, 5+r.Intn(70))
		for i := range seq {
			seq[i] = r.Intn(b.Cascade.NumPhones)
		}
		for _, th := range []float64{math.Inf(-1), -0.1, 0, 0.1, math.Inf(1)} {
			want := b.Cascade.Decide(seq, th)
			got := lb.Cascade.Decide(seq, th)
			if want.Exit != got.Exit || want.Tier != got.Tier || want.Margin != got.Margin ||
				want.Required != got.Required || want.Best != got.Best || want.Reason != got.Reason {
				t.Fatalf("decision differs after round trip: %+v vs %+v", want, got)
			}
			for k := range want.Scores {
				if want.Scores[k] != got.Scores[k] {
					t.Fatalf("tier-1 scores differ after round trip")
				}
			}
		}
	}
}

// A bundle saved without a cascade — the pre-cascade format — must load
// with the cascade disabled (nil), not error: the gob layout is purely
// additive.
func TestBundleWithoutCascadeLoadsDisabled(t *testing.T) {
	b, _ := trainedBundle(t, 8)
	dir := t.TempDir()
	if err := SaveBundle(dir, b, Manifest{Seed: 8}); err != nil {
		t.Fatal(err)
	}
	lb, m, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Cascade != nil {
		t.Fatal("cascade materialized out of nowhere")
	}
	if m.Cascade != "" {
		t.Fatalf("manifest cascade %q for a cascade-less bundle", m.Cascade)
	}
}

// Torn-tail detection must keep working on the extended (cascade-bearing)
// bundle image: the integrity footer covers the whole gob stream.
func TestBundleCascadeTornTailIsErrCorrupt(t *testing.T) {
	b, _ := trainedBundle(t, 9)
	b.Cascade = cascadeFor(t, b)
	dir := t.TempDir()
	if err := SaveBundle(dir, b, Manifest{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bundle.gob")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	// The manifest SHA-256 catches it first; strip the cross-check to
	// prove the file's own footer also does.
	mpath := filepath.Join(dir, ManifestName)
	mdata, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(mdata, &raw); err != nil {
		t.Fatal(err)
	}
	delete(raw, "bundle_sha256")
	stripped, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, stripped, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadBundle(dir)
	if err == nil {
		t.Fatal("torn cascade bundle loaded")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestBundleValidateCascadeConsistency(t *testing.T) {
	b, _ := trainedBundle(t, 10)
	c := cascadeFor(t, b)

	b.Cascade = &cascade.Model{}
	*b.Cascade = *c
	b.Cascade.FrontEnd = "NOPE"
	if err := b.Validate(); err == nil {
		t.Fatal("cascade naming an unknown front-end accepted")
	}

	*b.Cascade = *c
	b.Cascade.NumPhones = c.NumPhones + 1
	if err := b.Validate(); err == nil {
		t.Fatal("cascade phone-inventory mismatch accepted")
	}

	*b.Cascade = *c
	b.Cascade.LM.Models = b.Cascade.LM.Models[:2]
	if err := b.Validate(); err == nil {
		t.Fatal("cascade language-count mismatch accepted")
	}
}
